#!/usr/bin/env bash
# Kill-and-resume integrity check for the checkpoint subsystem (src/ckpt).
#
#   1. Run a checkpointed perf_sweep to completion (reference fingerprint).
#   2. Start the same sweep in a fresh checkpoint directory and SIGKILL it
#      mid-run, once a few cell snapshots have been persisted.
#   3. Resume the killed sweep with --resume.
#   4. Fail unless the resumed sweep's fingerprint is bit-identical to the
#      uninterrupted reference.
#
# Usage: resume_integrity.sh [path-to-perf_sweep] [work-dir]
#   CELLS (env) — sweep size; larger values widen the kill window.
set -euo pipefail

BIN="${1:-./build/bench/perf_sweep}"
WORK="${2:-resume-integrity}"
CELLS="${CELLS:-400}"

rm -rf "$WORK"
mkdir -p "$WORK"

fingerprint() {
  grep -o '"fingerprint": [0-9]*' "$1" | grep -o '[0-9]*$'
}

cells_persisted() {
  find "$1" -name '*.gsck' 2>/dev/null | wc -l | tr -d ' '
}

echo "== reference run (uninterrupted, $CELLS cells) =="
"$BIN" --cells "$CELLS" --checkpoint-dir "$WORK/ref-ckpt" \
    --out "$WORK/ref.json"
REF_FP="$(fingerprint "$WORK/ref.json")"
echo "reference fingerprint: $REF_FP"

echo "== interrupted run (SIGKILL mid-sweep) =="
"$BIN" --cells "$CELLS" --checkpoint-dir "$WORK/kill-ckpt" \
    --out "$WORK/interrupted.json" &
PID=$!
# Wait for the first few cell snapshots to land, then kill -9: the process
# gets no chance to clean up, exactly like a preempted batch job.
for _ in $(seq 1 200); do
  n="$(cells_persisted "$WORK/kill-ckpt")"
  [ "${n:-0}" -ge 5 ] && break
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.05
done
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

DONE="$(cells_persisted "$WORK/kill-ckpt")"
echo "cells persisted at kill: ${DONE:-0} of $CELLS"
if [ "${DONE:-0}" -ge "$CELLS" ]; then
  echo "warning: the sweep finished before the kill landed; the resume" \
       "below still checks the full-restore path, but consider raising" \
       "CELLS to widen the kill window"
fi

echo "== resumed run =="
"$BIN" --cells "$CELLS" --checkpoint-dir "$WORK/kill-ckpt" --resume \
    --out "$WORK/resumed.json"
RES_FP="$(fingerprint "$WORK/resumed.json")"
RESUMED="$(grep -o '"cells_resumed": [0-9]*' "$WORK/resumed.json" \
    | grep -o '[0-9]*$')"
echo "resumed fingerprint:   $RES_FP (cells resumed: $RESUMED)"

if [ "$REF_FP" != "$RES_FP" ]; then
  echo "FAIL: resumed sweep fingerprint differs from the uninterrupted" \
       "reference ($RES_FP != $REF_FP)"
  exit 1
fi
echo "PASS: kill-and-resume reproduced the reference bit-for-bit"
