#!/usr/bin/env bash
# Kill-and-resume integrity check for the checkpoint subsystem (src/ckpt).
#
# For each lane (baseline, and a --storm lane with correlated fault storms
# plus health-aware Hybrid recovery):
#
#   1. Run a checkpointed perf_sweep to completion (reference fingerprint).
#   2. Start the same sweep in a fresh checkpoint directory and SIGKILL it
#      mid-run, once a few cell snapshots have been persisted.
#   3. Resume the killed sweep with --resume.
#   4. Fail unless the resumed sweep's fingerprint is bit-identical to the
#      uninterrupted reference.
#
# The storm lane makes the kill land inside active storm windows, so the
# resume path must reconstruct the StormModel, the per-class correlated
# edge detectors and the health-extended Q-table exactly.
#
# A further multi-process lane drives the same campaign with two
# cooperating sweep_worker processes (sim/sweep_mp: lease-file cell
# claiming over a shared checkpoint directory), SIGKILLs one of them
# mid-campaign, lets the survivor reclaim its stale leases, and requires
# the merged fingerprint to equal the single-process reference
# bit-for-bit.
#
# Usage: resume_integrity.sh [path-to-perf_sweep] [work-dir]
#   CELLS (env)       — baseline sweep size; larger widens the kill window.
#   STORM_CELLS (env) — storm-lane sweep size (storm cells run slower).
#   MP_CELLS (env)    — multi-process lane sweep size.
#   WORKER (env)      — sweep_worker binary (default: next to perf_sweep).
set -euo pipefail

BIN="${1:-./build/bench/perf_sweep}"
WORK="${2:-resume-integrity}"
CELLS="${CELLS:-400}"
STORM_CELLS="${STORM_CELLS:-120}"
MP_CELLS="${MP_CELLS:-200}"
WORKER="${WORKER:-$(dirname "$BIN")/../tools/sweep_worker}"

rm -rf "$WORK"
mkdir -p "$WORK"

fingerprint() {
  grep -o '"fingerprint": [0-9]*' "$1" | grep -o '[0-9]*$'
}

cells_persisted() {
  find "$1" -name '*.gsck' 2>/dev/null | wc -l | tr -d ' '
}

# run_lane <label> <cells> [extra perf_sweep flags...]
run_lane() {
  local label="$1" cells="$2"
  shift 2

  echo "== [$label] reference run (uninterrupted, $cells cells) =="
  "$BIN" --cells "$cells" "$@" --checkpoint-dir "$WORK/$label-ref-ckpt" \
      --out "$WORK/$label-ref.json"
  local ref_fp
  ref_fp="$(fingerprint "$WORK/$label-ref.json")"
  echo "[$label] reference fingerprint: $ref_fp"

  echo "== [$label] interrupted run (SIGKILL mid-sweep) =="
  "$BIN" --cells "$cells" "$@" --checkpoint-dir "$WORK/$label-kill-ckpt" \
      --out "$WORK/$label-interrupted.json" &
  local pid=$!
  # Wait for the first few cell snapshots to land, then kill -9: the
  # process gets no chance to clean up, exactly like a preempted batch job.
  for _ in $(seq 1 200); do
    local n
    n="$(cells_persisted "$WORK/$label-kill-ckpt")"
    [ "${n:-0}" -ge 5 ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.05
  done
  kill -9 "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true

  local persisted
  persisted="$(cells_persisted "$WORK/$label-kill-ckpt")"
  echo "[$label] cells persisted at kill: ${persisted:-0} of $cells"
  if [ "${persisted:-0}" -ge "$cells" ]; then
    echo "warning: the sweep finished before the kill landed; the resume" \
         "below still checks the full-restore path, but consider raising" \
         "the cell count to widen the kill window"
  fi

  echo "== [$label] resumed run =="
  "$BIN" --cells "$cells" "$@" --checkpoint-dir "$WORK/$label-kill-ckpt" \
      --resume --out "$WORK/$label-resumed.json"
  local res_fp resumed
  res_fp="$(fingerprint "$WORK/$label-resumed.json")"
  resumed="$(grep -o '"cells_resumed": [0-9]*' "$WORK/$label-resumed.json" \
      | grep -o '[0-9]*$')"
  echo "[$label] resumed fingerprint:   $res_fp (cells resumed: $resumed)"

  if [ "$ref_fp" != "$res_fp" ]; then
    echo "FAIL[$label]: resumed sweep fingerprint differs from the" \
         "uninterrupted reference ($res_fp != $ref_fp)"
    exit 1
  fi
  echo "PASS[$label]: kill-and-resume reproduced the reference bit-for-bit"
}

# run_mp_lane <label> <cells> [shared grid flags...]
#
# Two sweep_worker processes cooperate on one checkpoint directory; one is
# SIGKILLed once a few cells have been persisted (leaving a stale lease
# behind with high probability). The survivor must finish the whole
# campaign, and the merged fingerprint must equal the single-process
# reference.
run_mp_lane() {
  local label="$1" cells="$2"
  shift 2

  echo "== [$label] reference run (single process, $cells cells) =="
  "$BIN" --cells "$cells" "$@" --checkpoint-dir "$WORK/$label-ref-ckpt" \
      --out "$WORK/$label-ref.json"
  local ref_fp
  ref_fp="$(fingerprint "$WORK/$label-ref.json")"
  echo "[$label] reference fingerprint: $ref_fp"

  echo "== [$label] 2-worker multi-process run, one worker SIGKILLed =="
  local dir="$WORK/$label-mp-ckpt"
  "$WORKER" --dir "$dir" --cells "$cells" "$@" &
  local victim=$!
  "$WORKER" --dir "$dir" --cells "$cells" "$@" &
  local survivor=$!
  for _ in $(seq 1 200); do
    local n
    n="$(cells_persisted "$dir")"
    [ "${n:-0}" -ge 3 ] && break
    kill -0 "$victim" 2>/dev/null || break
    sleep 0.05
  done
  kill -9 "$victim" 2>/dev/null || true
  wait "$victim" 2>/dev/null || true
  wait "$survivor"

  echo "== [$label] merge =="
  "$BIN" --cells "$cells" "$@" --checkpoint-dir "$dir" --resume \
      --out "$WORK/$label-merged.json"
  local mp_fp
  mp_fp="$(fingerprint "$WORK/$label-merged.json")"
  echo "[$label] merged fingerprint:    $mp_fp"

  if [ "$ref_fp" != "$mp_fp" ]; then
    echo "FAIL[$label]: multi-process merge differs from the" \
         "single-process reference ($mp_fp != $ref_fp)"
    exit 1
  fi
  echo "PASS[$label]: 2-worker sweep with a SIGKILLed worker merged" \
       "bit-for-bit"
}

run_lane baseline "$CELLS"
run_lane storm "$STORM_CELLS" --storm
run_mp_lane mp "$MP_CELLS"

echo "PASS: all lanes reproduced their references bit-for-bit"
