#!/usr/bin/env bash
# End-to-end integrity check for greensprintd (src/serve).
#
#   1. Batch reference: greensprintd --batch runs the campaign in-process
#      (plain run_days) and prints the reference fingerprint.
#   2. gs_feed --gen renders the exact per-epoch feed the batch engine
#      would synthesize into a replayable trace file.
#   3. Segment 1: start the daemon wall-clock paced (--sim-speed) with
#      periodic checkpoints, replay the trace up to --until, then SIGTERM
#      it mid-campaign. Queued-but-unconsumed events are dropped by
#      design; the stop-path checkpoint lands wherever the epoch thread
#      actually got to.
#   4. Segment 2: restart --resume from that checkpoint and replay the
#      FULL trace. The client skips epochs the hello reply reports as
#      consumed; the daemon's Stale admission drops any overlap. Mid-run
#      the replay issues no-op control commands (strategy hybrid on an
#      already-Hybrid campaign, fault-inject all=0, stat) so the command
#      path is exercised without perturbing the result, and finishes with
#      `drain`.
#   5. Fail unless the drain-reply fingerprint is bit-identical to the
#      uninterrupted batch fingerprint.
#
# Usage: daemon_e2e.sh [path-to-greensprintd] [path-to-gs_feed] [work-dir]
#   DAYS (env)      — campaign length in days (default 1).
#   SIM_SPEED (env) — segment-1 pacing; sim-seconds per wall-second
#                     (default 6000: one 60 s epoch every 10 ms).
#   UNTIL (env)     — epoch at which segment 1 stops feeding (default 700).
#   GRACE (env)     — segment-1 --stall-grace in epochs. Generous by
#                     default so the EWMA fallback cannot fire while the
#                     replayer is still connecting on a slow runner
#                     (fallback determinism has its own unit tests).
set -euo pipefail

DAEMON="${1:-./build/tools/greensprintd}"
FEED="${2:-./build/tools/gs_feed}"
WORK="${3:-daemon-e2e}"
FSCK="${FSCK:-./build/tools/gs_fsck}"
DAYS="${DAYS:-1}"
SIM_SPEED="${SIM_SPEED:-6000}"
UNTIL="${UNTIL:-700}"
GRACE="${GRACE:-200}"

rm -rf "$WORK"
mkdir -p "$WORK"
SOCK="$WORK/gsd.sock"
CKPT="$WORK/gsd.gsck"
TRACE="$WORK/feed.trace"

DPID=""
cleanup() {
  [ -n "$DPID" ] && kill -KILL "$DPID" 2>/dev/null || true
}
trap cleanup EXIT

echo "== batch reference ($DAYS day(s)) =="
"$DAEMON" --batch --days "$DAYS" | tee "$WORK/batch.log"
BATCH_FP="$(grep -o 'batch fp [0-9a-f]*' "$WORK/batch.log" | awk '{print $3}')"
[ -n "$BATCH_FP" ] || { echo "daemon_e2e: no batch fingerprint" >&2; exit 1; }
echo "reference fingerprint: $BATCH_FP"

echo "== trace generation =="
"$FEED" --gen --trace "$TRACE" --days "$DAYS"

echo "== segment 1: paced daemon, SIGTERM at epoch ~$UNTIL =="
"$DAEMON" --socket "$SOCK" --sim-speed "$SIM_SPEED" \
  --stall-grace "$GRACE" \
  --checkpoint "$CKPT" --checkpoint-every 200 --days "$DAYS" \
  > "$WORK/segment1.log" 2>&1 &
DPID=$!
# gs_feed's connector retries with backoff, so no socket-poll loop: the
# replay starts the moment the daemon binds.
"$FEED" --play --trace "$TRACE" --socket "$SOCK" --until "$UNTIL"
# The replayer outruns the pacing, so wait (by observed epoch, not
# wall-clock) until the epoch thread has worked through a few hundred
# queued events: the stop checkpoint is then genuinely mid-campaign, and
# the events still queued at the kill are dropped by design (the
# segment-2 replay recovers them).
"$FEED" --wait-epoch $((UNTIL / 2)) --socket "$SOCK" --timeout 60
kill -TERM "$DPID"
wait "$DPID"
DPID=""
cat "$WORK/segment1.log"
# The checkpoint is a rotated family: generation files plus a pointer,
# never the bare base path.
ls "$WORK"/gsd.g*.gsck >/dev/null 2>&1 || {
  echo "daemon_e2e: no stop checkpoint generation" >&2
  exit 1
}
if [ -x "$FSCK" ]; then
  echo "== gs_fsck after SIGTERM =="
  "$FSCK" "$WORK"
fi
grep -q 'greensprintd: stopped' "$WORK/segment1.log" || {
  echo "daemon_e2e: segment 1 did not stop cleanly" >&2
  exit 1
}

echo "== segment 2: resume + full replay + live commands + drain =="
"$DAEMON" --socket "$SOCK" --resume "$CKPT" --checkpoint "$CKPT" \
  --days "$DAYS" > "$WORK/segment2.log" 2>&1 &
DPID=$!
"$FEED" --play --trace "$TRACE" --socket "$SOCK" \
  --strategy-at 800:hybrid --fault-at 900:all=0 --stat-at 1000 \
  --drain | tee "$WORK/replay.log"
wait "$DPID"
DPID=""
cat "$WORK/segment2.log"

DRAIN_FP="$(grep -o 'ok drain .* fp [0-9a-f]*' "$WORK/replay.log" \
  | awk '{for (i = 1; i < NF; i++) if ($i == "fp") print $(i + 1)}')"
[ -n "$DRAIN_FP" ] || { echo "daemon_e2e: no drain fingerprint" >&2; exit 1; }

echo "batch fp: $BATCH_FP   drain fp: $DRAIN_FP"
if [ "$DRAIN_FP" != "$BATCH_FP" ]; then
  echo "daemon_e2e: FINGERPRINT MISMATCH after SIGTERM + resume" >&2
  exit 1
fi
echo "daemon_e2e: PASS (bit-identical across SIGTERM + resume)"
