#!/usr/bin/env bash
# Build googletest + google-benchmark into an install prefix so CI can
# cache them (actions/cache keyed on the pinned versions below) instead
# of rebuilding both on every run. Usage: build_deps.sh <prefix>
set -euo pipefail

PREFIX="${1:?usage: build_deps.sh <install-prefix>}"
GTEST_VERSION="${GTEST_VERSION:-v1.14.0}"
BENCHMARK_VERSION="${BENCHMARK_VERSION:-v1.8.3}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

build() {
  local url="$1" tag="$2" dir="$3"
  shift 3
  git clone --depth 1 --branch "$tag" "$url" "$WORK/$dir"
  cmake -S "$WORK/$dir" -B "$WORK/$dir/build" \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_INSTALL_PREFIX="$PREFIX" \
    "$@"
  cmake --build "$WORK/$dir/build" -j "$(nproc)"
  cmake --install "$WORK/$dir/build"
}

build https://github.com/google/googletest.git "$GTEST_VERSION" googletest
build https://github.com/google/benchmark.git "$BENCHMARK_VERSION" benchmark \
  -DBENCHMARK_ENABLE_TESTING=OFF \
  -DBENCHMARK_ENABLE_GTEST_TESTS=OFF
