#!/usr/bin/env bash
# Randomized crash-consistency (chaos) lane for the failpoint subsystem
# (src/common/failpoint, src/common/io, src/ckpt/rotation).
#
# Each seed derives a deterministic failpoint schedule — induced crashes
# (_exit mid-write), torn writes (the firmware lies: success reported,
# half the bytes on disk), EIO/ENOSPC storms — and aims it at one of
# three durability surfaces:
#
#   sweep   checkpointed perf_sweep: cell snapshots + rotated manifest
#   mp      two cooperating sweep_worker processes: lease claims/steals
#           on top of the same snapshot writes
#   daemon  wall-clock-paced greensprintd replay: rotated periodic
#           checkpoints, the drain checkpoint, and (seed-dependent) the
#           tsdb WAL
#
# After every induced failure the victim is restarted with --resume and
# must pick up from the last-known-good checkpoint generation. A seed
# passes only if
#
#   1. the campaign completes within MAX_ATTEMPTS restarts,
#   2. gs_fsck finds nothing `corrupt` in the storm-battered work dir
#      (torn artifacts must classify as salvageable, never corrupt),
#   3. a final run with failpoints DISARMED resumes from whatever the
#      storm left behind and reproduces the clean reference fingerprint
#      bit-for-bit.
#
# Exit code 121 is the failpoint crash contract (failpoint::kCrashExitCode);
# anything else nonzero except an induced-IO exit (1) fails the seed hard.
#
# Usage: chaos.sh [build-dir] [work-dir]
#   SEEDS (env)        — schedule ids to run (default "1 2 3 4 5 6 7 8").
#   SWEEP_CELLS (env)  — sweep/mp campaign size (default 64).
#   DAYS (env)         — daemon campaign length in days (default 1).
#   SIM_SPEED (env)    — daemon pacing, sim-seconds per wall-second.
#   MAX_ATTEMPTS (env) — restart budget per seed (default 30).
set -euo pipefail

BUILD="${1:-./build}"
WORK="${2:-chaos}"
SWEEP="$BUILD/bench/perf_sweep"
WORKER="$BUILD/tools/sweep_worker"
DAEMON="$BUILD/tools/greensprintd"
FEED="$BUILD/tools/gs_feed"
FSCK="$BUILD/tools/gs_fsck"
SEEDS="${SEEDS:-1 2 3 4 5 6 7 8}"
SWEEP_CELLS="${SWEEP_CELLS:-64}"
DAYS="${DAYS:-1}"
SIM_SPEED="${SIM_SPEED:-6000}"
MAX_ATTEMPTS="${MAX_ATTEMPTS:-30}"
KCRASH=121  # failpoint::kCrashExitCode

rm -rf "$WORK"
mkdir -p "$WORK"

DPID=""
cleanup() {
  [ -n "$DPID" ] && kill -KILL "$DPID" 2>/dev/null || true
}
trap cleanup EXIT

fingerprint() {
  grep -o '"fingerprint": [0-9]*' "$1" | grep -o '[0-9]*$'
}

# The seed -> (lane, spec) table. Specs are deterministic: an integer
# seed fully determines when every trigger fires (see failpoint.hpp), so
# a failing seed replays exactly.
lane_of() {
  case "$1" in
    1|2|3|4) echo sweep ;;
    5)       echo mp ;;
    *)       echo daemon ;;
  esac
}
spec_of() {
  case "$1" in
    1) echo "ckpt.snapshot.write=crash@every:6" ;;
    2) echo "ckpt.snapshot.write=torn@p:0.25" ;;
    3) echo "ckpt.snapshot.write=eio@p:0.2" ;;
    4) echo "ckpt.snapshot.write=short@every:5" ;;
    5) echo "sweep.lease.claim=eio@p:0.15;ckpt.snapshot.write=crash@every:9" ;;
    6) echo "ckpt.snapshot.write=crash@every:4" ;;
    7) echo "ckpt.snapshot.write=torn@every:3;serve.drain.checkpoint=enospc@hit:1" ;;
# Seed 8 pairs a WAL-append crash with flaky checkpoint writes. The crash
# threshold must exceed one checkpoint interval's worth of burst appends
# (8 per burst epoch), or no attempt can reach the next checkpoint and the
# storm livelocks instead of converging.
    8) echo "tsdb.wal.append=crash@every:400;ckpt.snapshot.write=eio@p:0.5" ;;
    *) echo "ckpt.snapshot.write=crash@p:0.1" ;;
  esac
}

fsck_gate() {
  local report="$1/fsck.txt"
  if "$FSCK" "$1" > "$report"; then
    echo "-- gs_fsck gate: $(tail -1 "$report")"
  else
    cat "$report"
    echo "FAIL[seed $2]: gs_fsck found corrupt artifacts after the storm"
    exit 1
  fi
}

# --- sweep lane -------------------------------------------------------------

SWEEP_REF_FP=""
sweep_reference() {
  [ -n "$SWEEP_REF_FP" ] && return 0
  echo "== sweep reference (clean, $SWEEP_CELLS cells) =="
  "$SWEEP" --cells "$SWEEP_CELLS" --checkpoint-dir "$WORK/sweep-ref-ckpt" \
      --out "$WORK/sweep-ref.json"
  SWEEP_REF_FP="$(fingerprint "$WORK/sweep-ref.json")"
  echo "sweep reference fingerprint: $SWEEP_REF_FP"
}

run_sweep_seed() {
  local seed="$1" spec="$2"
  local dir="$WORK/sweep-$seed"
  local attempt=0 rc=0
  while :; do
    attempt=$((attempt + 1))
    if [ "$attempt" -gt "$MAX_ATTEMPTS" ]; then
      echo "FAIL[seed $seed]: campaign incomplete after $MAX_ATTEMPTS attempts"
      exit 1
    fi
    rc=0
    "$SWEEP" --cells "$SWEEP_CELLS" --checkpoint-dir "$dir" --resume \
        --failpoints "$spec" --failpoint-seed "$seed" \
        --out "$WORK/sweep-$seed-storm.json" \
        >> "$WORK/sweep-$seed.log" 2>&1 || rc=$?
    case "$rc" in
      0) break ;;
      1|"$KCRASH") ;;  # induced IO failure / induced crash: resume
      *) echo "FAIL[seed $seed]: unexpected exit $rc (attempt $attempt)"
         tail -5 "$WORK/sweep-$seed.log"
         exit 1 ;;
    esac
  done
  echo "-- storm completed after $attempt attempt(s)"
  fsck_gate "$dir" "$seed"
  # Disarmed resume over the battered directory: torn cells and manifest
  # generations must be detected and recomputed, bit-identically.
  "$SWEEP" --cells "$SWEEP_CELLS" --checkpoint-dir "$dir" --resume \
      --out "$WORK/sweep-$seed-final.json" >> "$WORK/sweep-$seed.log" 2>&1
  local fp
  fp="$(fingerprint "$WORK/sweep-$seed-final.json")"
  if [ "$fp" != "$SWEEP_REF_FP" ]; then
    echo "FAIL[seed $seed]: fingerprint $fp != reference $SWEEP_REF_FP"
    exit 1
  fi
  echo "PASS[seed $seed]: bit-identical after storm ($fp)"
}

# --- mp lane ----------------------------------------------------------------

run_mp_seed() {
  local seed="$1" spec="$2"
  local dir="$WORK/mp-$seed"
  local attempt=0
  while :; do
    attempt=$((attempt + 1))
    if [ "$attempt" -gt "$MAX_ATTEMPTS" ]; then
      echo "FAIL[seed $seed]: mp campaign incomplete after $MAX_ATTEMPTS attempts"
      exit 1
    fi
    local rc1=0 rc2=0
    "$WORKER" --dir "$dir" --cells "$SWEEP_CELLS" --stale-after 1 \
        --failpoints "$spec" --failpoint-seed "$seed" \
        >> "$WORK/mp-$seed.log" 2>&1 &
    local w1=$!
    "$WORKER" --dir "$dir" --cells "$SWEEP_CELLS" --stale-after 1 \
        --failpoints "$spec" --failpoint-seed "$((seed + 1))" \
        >> "$WORK/mp-$seed.log" 2>&1 &
    local w2=$!
    wait "$w1" || rc1=$?
    wait "$w2" || rc2=$?
    local bad=0
    for rc in "$rc1" "$rc2"; do
      case "$rc" in
        0|1|"$KCRASH") ;;
        *) bad="$rc" ;;
      esac
    done
    if [ "$bad" != 0 ]; then
      echo "FAIL[seed $seed]: unexpected worker exit $bad (attempt $attempt)"
      tail -5 "$WORK/mp-$seed.log"
      exit 1
    fi
    [ "$rc1" = 0 ] && [ "$rc2" = 0 ] && break
  done
  echo "-- mp storm completed after $attempt attempt(s)"
  fsck_gate "$dir" "$seed"
  # Disarmed merge must equal the single-process reference.
  "$SWEEP" --cells "$SWEEP_CELLS" --checkpoint-dir "$dir" --resume \
      --out "$WORK/mp-$seed-final.json" >> "$WORK/mp-$seed.log" 2>&1
  local fp
  fp="$(fingerprint "$WORK/mp-$seed-final.json")"
  if [ "$fp" != "$SWEEP_REF_FP" ]; then
    echo "FAIL[seed $seed]: mp fingerprint $fp != reference $SWEEP_REF_FP"
    exit 1
  fi
  echo "PASS[seed $seed]: mp merge bit-identical after storm ($fp)"
}

# --- daemon lane ------------------------------------------------------------

BATCH_FP=""
TRACE="$WORK/feed.trace"
daemon_reference() {
  [ -n "$BATCH_FP" ] && return 0
  echo "== daemon batch reference ($DAYS day(s)) =="
  "$DAEMON" --batch --days "$DAYS" | tee "$WORK/batch.log"
  BATCH_FP="$(grep -o 'batch fp [0-9a-f]*' "$WORK/batch.log" | awk '{print $3}')"
  [ -n "$BATCH_FP" ] || { echo "chaos: no batch fingerprint"; exit 1; }
  "$FEED" --gen --trace "$TRACE" --days "$DAYS"
}

# replay_once <seed> <log> [daemon flags...]: start the daemon (resuming
# when a checkpoint generation exists), replay the full trace, drain.
# Echoes "fp HEX" on a completed drain; returns the daemon's exit code.
replay_once() {
  local seed="$1" log="$2"
  shift 2
  local dir="$WORK/daemon-$seed"
  local sock="$dir/gsd.sock" base="$dir/gsd.gsck"
  local resume=()
  ls "$dir"/gsd.g*.gsck >/dev/null 2>&1 && resume=(--resume "$base")
  "$DAEMON" --socket "$sock" --sim-speed "$SIM_SPEED" --stall-grace 400 \
      --checkpoint "$base" --checkpoint-every 150 --days "$DAYS" \
      "${resume[@]}" "$@" >> "$log" 2>&1 &
  DPID=$!
  # The feed's connector retries with backoff; exit 3 (connection lost)
  # just means the daemon crashed mid-replay — the restart loop handles it.
  "$FEED" --play --trace "$TRACE" --socket "$sock" --drain \
      > "$WORK/daemon-$seed-replay.log" 2>&1 || true
  local drc=0
  wait "$DPID" || drc=$?
  DPID=""
  grep -o 'ok drain .* fp [0-9a-f]*' "$WORK/daemon-$seed-replay.log" \
    | awk '{for (i = 1; i < NF; i++) if ($i == "fp") print "fp", $(i + 1)}' \
    | tail -1
  return "$drc"
}

run_daemon_seed() {
  local seed="$1" spec="$2"
  local dir="$WORK/daemon-$seed"
  local log="$WORK/daemon-$seed.log"
  mkdir -p "$dir"
  local extra=()
  case "$spec" in
    *tsdb.wal*) mkdir -p "$dir/tsdb"; extra=(--tsdb wal --tsdb-dir "$dir/tsdb") ;;
  esac
  local attempt=0 drc=0 out=""
  while :; do
    attempt=$((attempt + 1))
    if [ "$attempt" -gt "$MAX_ATTEMPTS" ]; then
      echo "FAIL[seed $seed]: daemon campaign incomplete after $MAX_ATTEMPTS attempts"
      exit 1
    fi
    drc=0
    out="$(replay_once "$seed" "$log" \
        --failpoints "$spec" --failpoint-seed "$seed" "${extra[@]}")" || drc=$?
    if [ "$drc" = 0 ] && [ -n "$out" ]; then
      break
    fi
    case "$drc" in
      0|1|"$KCRASH") ;;  # crashed or failed mid-campaign: restart + resume
      *) echo "FAIL[seed $seed]: unexpected daemon exit $drc (attempt $attempt)"
         tail -5 "$log"
         exit 1 ;;
    esac
  done
  echo "-- daemon storm completed after $attempt attempt(s)"
  fsck_gate "$dir" "$seed"
  local storm_fp="${out#fp }"
  if [ "$storm_fp" != "$BATCH_FP" ]; then
    echo "FAIL[seed $seed]: storm drain fp $storm_fp != batch $BATCH_FP"
    exit 1
  fi
  # Disarmed resume from whatever generations the storm left behind.
  drc=0
  out="$(replay_once "$seed" "$log" "${extra[@]}")" || drc=$?
  if [ "$drc" != 0 ] || [ -z "$out" ]; then
    echo "FAIL[seed $seed]: disarmed resume failed (exit $drc)"
    tail -5 "$log"
    exit 1
  fi
  local fp="${out#fp }"
  if [ "$fp" != "$BATCH_FP" ]; then
    echo "FAIL[seed $seed]: disarmed resume fp $fp != batch $BATCH_FP"
    exit 1
  fi
  echo "PASS[seed $seed]: daemon bit-identical after storm ($fp)"
}

# --- driver -----------------------------------------------------------------

for seed in $SEEDS; do
  lane="$(lane_of "$seed")"
  spec="$(spec_of "$seed")"
  echo ""
  echo "== seed $seed [$lane]: $spec =="
  case "$lane" in
    sweep)  sweep_reference; run_sweep_seed "$seed" "$spec" ;;
    mp)     sweep_reference; run_mp_seed "$seed" "$spec" ;;
    daemon) daemon_reference; run_daemon_seed "$seed" "$spec" ;;
  esac
done

echo ""
echo "PASS: all chaos seeds recovered bit-identically ($SEEDS)"
