#!/usr/bin/env bash
# Stage pinned clang-tidy / clang-format binaries into the dependency
# prefix that build_deps.sh populates, so one actions/cache entry covers
# gtest, google-benchmark, and the LLVM tools and warm runs skip apt
# entirely.
#
# Usage: get_llvm_tools.sh <prefix> [llvm-major]
set -euo pipefail

PREFIX="${1:?usage: get_llvm_tools.sh <prefix> [llvm-major]}"
LLVM_MAJOR="${2:-18}"
mkdir -p "$PREFIX/bin"

if [[ -x "$PREFIX/bin/clang-tidy" && -x "$PREFIX/bin/clang-format" ]]; then
  echo "llvm tools already staged in $PREFIX/bin (cache hit)"
  "$PREFIX/bin/clang-tidy" --version | head -n 2
  exit 0
fi

apt_updated=0
for tool in clang-tidy clang-format; do
  src="$(command -v "${tool}-${LLVM_MAJOR}" || true)"
  if [[ -z "$src" ]]; then
    if [[ "$apt_updated" -eq 0 ]]; then
      sudo apt-get update -qq
      apt_updated=1
    fi
    sudo apt-get install -y -qq "${tool}-${LLVM_MAJOR}"
    src="$(command -v "${tool}-${LLVM_MAJOR}")"
  fi
  cp "$src" "$PREFIX/bin/$tool"
done

"$PREFIX/bin/clang-tidy" --version | head -n 2
"$PREFIX/bin/clang-format" --version
