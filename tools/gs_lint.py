#!/usr/bin/env python3
"""gs-lint: repo-specific concurrency & determinism rule pack.

Compatibility shim: the historical rules (raw-thread, raw-mutex,
mutex-annotations, raw-random, wall-clock, use-gs-assert,
ckpt-schema-version, correlated-faults, tsdb-chunk-version,
serve-protocol-version, hot-path-alloc) now run inside the
tools/analyze engine, matched against
a real C++ token stream instead of line regexes — so a pattern inside a
string literal or comment can no longer fire, and stale allow() comments
are reported as errors. Rule names, messages, suppression placement and
the CLI surface are unchanged:

  tools/gs_lint.py [--list-rules] [PATH ...]   (default PATH: src)

The full engine (checkpoint schema lock, fingerprint coverage, lock-order
and RNG stream-ownership passes) is tools/gs_analyze; see
tools/analyze/__init__.py. Exits non-zero if any finding remains.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from analyze import cli  # noqa: E402


def main(argv: list[str]) -> int:
    return cli.main(["--legacy-only", *argv])


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
