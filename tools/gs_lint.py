#!/usr/bin/env python3
"""gs-lint: repo-specific concurrency & determinism rule pack.

Enforces the invariants clang-tidy cannot express for this codebase:

  raw-thread        std::thread / std::jthread / std::async belong only in
                    common/thread_pool.* — everything else fans work through
                    the pool so sweeps stay schedulable and deterministic.
  raw-mutex         <mutex> primitives (std::mutex, lock_guard, ...) belong
                    only in common/thread_annotations.hpp; the rest of src/
                    uses the capability-annotated gs::Mutex / gs::MutexLock
                    so clang -Wthread-safety can prove lock discipline.
  mutex-annotations a gs::Mutex member must actually guard something: the
                    declaring file needs at least one GS_GUARDED_BY /
                    GS_REQUIRES / GS_ACQUIRE referencing it.
  raw-random        rand()/srand(), std:: engines, std::random_device and
                    std:: distributions are forbidden outside common/rng.hpp:
                    sweep_fingerprint guarantees bit-identical sweeps, which
                    only holds when every sample comes from gs::Rng streams.
  wall-clock        time(nullptr) / std::chrono::system_clock in simulation
                    code breaks replayability; simulated time comes from the
                    scenario clock (wall timing lives in bench/, not src/).
  use-gs-assert     <cassert>/assert() abort without a message and vanish
                    under NDEBUG; src/ uses GS_REQUIRE / GS_ENSURE from
                    common/assert.hpp, which throw gs::ContractError.
  ckpt-schema-version
                    a header that declares save_state/load_state must also
                    declare a kStateVersion schema field; versioned sections
                    are what lets a resumed campaign reject snapshots written
                    by an older layout instead of misreading them.
  correlated-faults FaultSchedule::generate() outside faults/fault_schedule
                    bypasses the correlation layer; call generate_correlated
                    (a disabled CorrelationSpec is the identity), so every
                    caller honors a scenario's storm configuration.
  tsdb-chunk-version
                    a src/tsdb file that touches the on-disk formats (page
                    encode/decode, WAL records/replay) must reference the
                    format-version constant (kChunkFormatVersion /
                    kWalFormatVersion) it is coupled to, so layout changes
                    cannot land without a version bump in view.
  hot-path-alloc    a file carrying a `// gs:hot-path` banner promises an
                    allocation-free steady state; heap allocation (new,
                    make_unique/make_shared, container growth via push_back /
                    emplace_back / resize / reserve / assign / insert) is
                    flagged so it cannot creep in unnoticed. One-time setup
                    (constructors, arena warm-up) carries an explicit
                    allow() comment saying why it is off the epoch path.

Suppress a finding by appending `// gs-lint: allow(<rule>)` to the line,
with a comment explaining why. Usage:

  tools/gs_lint.py [--list-rules] [PATH ...]   (default PATH: src)

Exits non-zero if any finding remains.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

ALLOW_RE = re.compile(r"gs-lint:\s*allow\(([a-z\-, ]+)\)")


class Rule:
    def __init__(self, name, message, pattern, exempt=()):
        self.name = name
        self.message = message
        self.pattern = re.compile(pattern)
        self.exempt = tuple(exempt)

    def applies_to(self, path: str) -> bool:
        return not any(path.endswith(e) for e in self.exempt)


RULES = [
    Rule(
        "raw-thread",
        "raw std::thread/std::async outside common/thread_pool; submit work "
        "to gs::ThreadPool / parallel_for instead",
        r"std::(thread|jthread|async)\b",
        exempt=(
            "common/thread_pool.hpp",
            "common/thread_pool.cpp",
        ),
    ),
    Rule(
        "raw-mutex",
        "raw <mutex>/<condition_variable> primitive outside "
        "common/thread_annotations.hpp; use the capability-annotated "
        "gs::Mutex / gs::MutexLock / gs::CondVar",
        r"std::(mutex|recursive_mutex|shared_mutex|timed_mutex|"
        r"recursive_timed_mutex|lock_guard|unique_lock|scoped_lock|"
        r"shared_lock|condition_variable|condition_variable_any)\b",
        exempt=("common/thread_annotations.hpp",),
    ),
    Rule(
        "raw-random",
        "non-gs randomness outside common/rng.hpp; derive a gs::Rng stream "
        "(determinism guard for sweep_fingerprint)",
        r"std::(mt19937(_64)?|minstd_rand0?|default_random_engine|ranlux\w+|"
        r"knuth_b|random_device|(uniform_int|uniform_real|normal|poisson|"
        r"exponential|bernoulli|geometric)_distribution)\b"
        r"|(?<![\w_])s?rand\s*\(",
        exempt=("common/rng.hpp",),
    ),
    Rule(
        "wall-clock",
        "wall-clock time in simulation code; simulated time comes from the "
        "scenario clock (wall timing belongs in bench/)",
        r"std::chrono::system_clock\b|(?<![\w_])time\s*\(\s*(nullptr|NULL|0)"
        r"\s*\)",
    ),
    Rule(
        "use-gs-assert",
        "<cassert>/assert() in src/; use GS_REQUIRE / GS_ENSURE from "
        "common/assert.hpp (throws gs::ContractError, active in release)",
        r"#\s*include\s*<(cassert|assert\.h)>|(?<![\w_.])assert\s*\(",
    ),
    Rule(
        "correlated-faults",
        "direct FaultSchedule::generate() bypasses the correlation-aware "
        "entry point; call FaultSchedule::generate_correlated (a disabled "
        "CorrelationSpec is the identity)",
        r"FaultSchedule::generate\s*\(",
        exempt=(
            "faults/fault_schedule.hpp",
            "faults/fault_schedule.cpp",
        ),
    ),
]

MUTEX_MEMBER_RE = re.compile(r"\bMutex\s+(\w+_)\s*;")

HOT_PATH_BANNER_RE = re.compile(r"//\s*gs:hot-path\b")

HOT_PATH_ALLOC_RE = re.compile(
    r"(?<![\w_])new\b(?!\s*\()"  # `new T`, not the rare `operator new(...)`
    r"|std::make_(?:unique|shared)\b"
    r"|\.(?:push_back|emplace_back|resize|reserve|assign|insert|"
    r"emplace)\s*\("
)

CKPT_DECL_RE = re.compile(r"\b(?:save_state|load_state)\s*\(")

TSDB_FORMAT_MARKER_RE = re.compile(
    r"\b(?:encode_page|decode_page|replay_wal|WalRecord)\b"
)

TSDB_VERSION_RE = re.compile(r"\bk(?:Chunk|Wal)FormatVersion\b")


def strip_comments(text: str) -> str:
    """Blank out comments, preserving line structure and column offsets."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # string / char literal
            if c == "\\":
                out.append(c)
                out.append(nxt)
                i += 2
                continue
            if (state == "string" and c == '"') or (
                state == "char" and c == "'"
            ):
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


def allowed_rules(raw_line: str) -> set[str]:
    m = ALLOW_RE.search(raw_line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


def lint_file(path: Path, rel: str) -> list[str]:
    raw = path.read_text(encoding="utf-8")
    code = strip_comments(raw)
    raw_lines = raw.splitlines()
    code_lines = code.splitlines()
    findings = []

    for rule in RULES:
        if not rule.applies_to(rel):
            continue
        for lineno, line in enumerate(code_lines, 1):
            if not rule.pattern.search(line):
                continue
            if rule.name in allowed_rules(raw_lines[lineno - 1]):
                continue
            findings.append(f"{rel}:{lineno}: [{rule.name}] {rule.message}")

    # mutex-annotations: every gs::Mutex member must be referenced by a
    # capability annotation somewhere in the file that declares it.
    for lineno, line in enumerate(code_lines, 1):
        m = MUTEX_MEMBER_RE.search(line)
        if not m:
            continue
        name = m.group(1)
        ann = re.compile(
            r"GS_(GUARDED_BY|PT_GUARDED_BY|REQUIRES|ACQUIRE|RELEASE|"
            r"TRY_ACQUIRE|EXCLUDES|RETURN_CAPABILITY)\(\s*" + name + r"\s*"
        )
        if ann.search(code):
            continue
        if "mutex-annotations" in allowed_rules(raw_lines[lineno - 1]):
            continue
        findings.append(
            f"{rel}:{lineno}: [mutex-annotations] gs::Mutex member '{name}' "
            "has no GS_GUARDED_BY/GS_REQUIRES/... referencing it; annotate "
            "what it guards"
        )

    # ckpt-schema-version: a header that declares save_state/load_state
    # must declare kStateVersion so every snapshot section is schema-
    # versioned (allow() the declaration when the version is inherited
    # from a base class).
    if rel.endswith(".hpp") and not re.search(r"\bkStateVersion\b", code):
        decl_lines = [
            lineno
            for lineno, line in enumerate(code_lines, 1)
            if CKPT_DECL_RE.search(line)
        ]
        # File-level rule, file-level suppression: an allow() comment
        # anywhere in the header waives it (e.g. version inherited from a
        # base class).
        suppressed = any(
            "ckpt-schema-version" in allowed_rules(raw_line)
            for raw_line in raw_lines
        )
        if decl_lines and not suppressed:
            findings.append(
                f"{rel}:{decl_lines[0]}: [ckpt-schema-version] save_state/"
                "load_state declared without a kStateVersion schema field; "
                "snapshot sections must be versioned (ckpt/state_io.hpp)"
            )

    # hot-path-alloc: a `// gs:hot-path` banner is a contract — the file's
    # steady state allocates nothing. Flag every heap-allocation idiom so a
    # stray std::vector growth or make_unique cannot land silently; the
    # deliberate ones (ctor-time sizing, arena warm-up) each carry an
    # allow() comment explaining why they are off the epoch path.
    if HOT_PATH_BANNER_RE.search(raw):
        for lineno, line in enumerate(code_lines, 1):
            if not HOT_PATH_ALLOC_RE.search(line):
                continue
            # The 80-column limit often leaves no room for a trailing
            # allow(); one on the line directly above works too.
            prev = raw_lines[lineno - 2] if lineno >= 2 else ""
            if "hot-path-alloc" in (
                allowed_rules(raw_lines[lineno - 1]) | allowed_rules(prev)
            ):
                continue
            findings.append(
                f"{rel}:{lineno}: [hot-path-alloc] heap allocation in a "
                "gs:hot-path file; keep the epoch loop allocation-free "
                "(use the arena / pre-sized arrays) or justify with an "
                "allow() comment"
            )

    # tsdb-chunk-version: telemetry-engine files that touch the on-disk
    # formats (chunk pages, WAL segments) must keep the owning format-
    # version constant in view, so a layout change cannot land without the
    # bump. File-level rule, file-level allow() suppression (e.g. a caller
    # that only routes bytes and defers validation to chunk.cpp/wal.cpp).
    if "tsdb/" in rel and not TSDB_VERSION_RE.search(code):
        marker_lines = [
            lineno
            for lineno, line in enumerate(code_lines, 1)
            if TSDB_FORMAT_MARKER_RE.search(line)
        ]
        suppressed = any(
            "tsdb-chunk-version" in allowed_rules(raw_line)
            for raw_line in raw_lines
        )
        if marker_lines and not suppressed:
            findings.append(
                f"{rel}:{marker_lines[0]}: [tsdb-chunk-version] on-disk "
                "format marker (page/WAL encode, decode, or replay) without "
                "a kChunkFormatVersion/kWalFormatVersion reference; bump the "
                "format version with any layout change"
            )
    return findings


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", default=["src"])
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.name}: {rule.message}")
        print(
            "mutex-annotations: gs::Mutex members must be referenced by a "
            "capability annotation in the declaring file"
        )
        print(
            "ckpt-schema-version: headers declaring save_state/load_state "
            "must declare a kStateVersion schema field"
        )
        print(
            "tsdb-chunk-version: src/tsdb files touching the on-disk "
            "page/WAL formats must reference the owning format-version "
            "constant"
        )
        print(
            "hot-path-alloc: files with a `// gs:hot-path` banner must not "
            "heap-allocate (new/make_unique/container growth) without an "
            "allow() justification"
        )
        return 0

    root = Path(__file__).resolve().parent.parent
    files = []
    for p in args.paths or ["src"]:
        path = Path(p)
        if path.is_file():
            files.append(path)
        else:
            files.extend(sorted(path.rglob("*.hpp")))
            files.extend(sorted(path.rglob("*.cpp")))

    findings = []
    for f in files:
        try:
            rel = str(f.resolve().relative_to(root))
        except ValueError:
            rel = str(f)
        findings.extend(lint_file(f, rel.replace("\\", "/")))

    for finding in sorted(findings):
        print(finding)
    if findings:
        print(f"gs-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"gs-lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
