"""rng-stream-ownership: one subsystem per named gs::Rng stream.

Determinism in the sweep rests on stream splitting: every draw site
derives its own generator via Rng::stream(seed, {tag, ...}) and the tag
namespace keeps subsystems statistically independent. If two files reuse
one tag value, their draws come from the SAME stream — correlated numbers
and a silent bias, the exact failure stream splitting exists to prevent.

This pass extracts every Rng::stream call in src/, resolves the leading
tag of the identifier list (literal or constexpr constant), and reports:

  rng-stream-ownership   one tag value drawn from more than one file, or
                         a leading tag that cannot be resolved to a
                         compile-time value (untracked stream identity).

Multiple draw sites in ONE file sharing a tag are fine (the file owns the
stream and disambiguates with the trailing identifiers).
"""

from __future__ import annotations

from dataclasses import dataclass

from . import lexer
from .findings import Report
from .model import Project, match_paren, parse_int

RULE = "rng-stream-ownership"


@dataclass(frozen=True)
class StreamSite:
    rel: str
    line: int
    tag_text: str
    tag_value: int | None


def run(project: Project, report: Report) -> None:
    sites = collect_sites(project)
    by_value: dict[int, list[StreamSite]] = {}
    for s in sites:
        sf = project.files.get(s.rel)
        if s.tag_value is None:
            if sf is None or not sf.allowed(RULE, s.line, line_above=True):
                report.add(
                    RULE, s.rel, s.line,
                    f"Rng::stream tag '{s.tag_text}' does not resolve to "
                    "a compile-time constant; name the stream with a "
                    "constexpr tag so ownership can be tracked",
                )
            continue
        by_value.setdefault(s.tag_value, []).append(s)

    for value, group in sorted(by_value.items()):
        files = sorted({s.rel for s in group})
        if len(files) <= 1:
            continue
        for s in group:
            sf = project.files.get(s.rel)
            if sf is not None and sf.allowed(RULE, s.line, line_above=True):
                continue
            others = ", ".join(f for f in files if f != s.rel)
            report.add(
                RULE, s.rel, s.line,
                f"Rng stream tag {value:#x} ('{s.tag_text}') is also "
                f"drawn in {others}; two subsystems sharing one stream "
                "produce correlated draws — pick a fresh tag",
            )


def collect_sites(project: Project) -> list[StreamSite]:
    sites: list[StreamSite] = []
    for rel, toks in project.code_tokens.items():
        n = len(toks)
        for i, t in enumerate(toks):
            if t.text != "Rng" or i + 3 >= n:
                continue
            if toks[i + 1].text != "::" or toks[i + 2].text != "stream" \
                    or toks[i + 3].text != "(":
                continue
            close = match_paren(toks, i + 3)
            # Leading tag: first element of the first braced list inside
            # the argument list.
            tag_toks = []
            j = i + 4
            while j < close and toks[j].text != "{":
                j += 1
            depth = 0
            while j < close:
                tt = toks[j]
                if tt.text in ("{", "(", "["):
                    depth += 1
                elif tt.text in ("}", ")", "]"):
                    depth -= 1
                    if depth == 0:
                        break
                elif tt.text == "," and depth == 1:
                    break
                elif depth >= 1:
                    tag_toks.append(tt)
                j += 1
            tag_text = "".join(x.text for x in tag_toks)
            sites.append(StreamSite(
                rel=rel, line=t.line, tag_text=tag_text,
                tag_value=_resolve_tag(project, tag_toks),
            ))
    return sites


def _resolve_tag(project: Project, tag_toks) -> int | None:
    if not tag_toks:
        return None
    if len(tag_toks) == 1:
        t = tag_toks[0]
        if t.kind == lexer.NUM:
            return parse_int(t.text)
        if t.kind == lexer.ID:
            return project.resolve_constant(t.text, None)
    # Casts / expressions like std::uint64_t(kTag): resolve the single
    # NUM or the last identifier argument if unambiguous.
    nums = [t for t in tag_toks if t.kind == lexer.NUM]
    if len(nums) == 1:
        return parse_int(nums[0].text)
    ids = [
        t for t in tag_toks
        if t.kind == lexer.ID and not t.text.startswith("std")
        and t.text not in ("uint64_t", "uint32_t", "size_t")
    ]
    if len(ids) == 1:
        return project.resolve_constant(ids[0].text, None)
    return None
