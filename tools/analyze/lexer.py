"""C++ lexer for gs_analyze.

Produces a flat token stream with line numbers, classifying comments,
string/char literals (including raw strings), preprocessor directives, and
code tokens. The legacy gs_lint regexes matched rule patterns inside string
literals and comments (e.g. a "std::mutex" inside a log message); every
pass in this package consumes tokens instead, so literal and comment text
can never produce a code finding.

The lexer is tolerant: it never raises on malformed input, it just emits
what it sees. That is the right trade-off for an analysis tool that must
not crash the CI lane on a half-edited file.
"""

from __future__ import annotations

from dataclasses import dataclass

# Token kinds.
ID = "id"  # identifiers and keywords
NUM = "num"  # numeric literals (incl. hex, digit separators, suffixes)
STR = "str"  # string literal (value excludes quotes; raw strings handled)
CHAR = "char"  # character literal
PUNCT = "punct"  # operators and punctuation (multi-char ops kept whole)
COMMENT = "comment"  # // or /* */ comment, text without delimiters
PP = "pp"  # one whole preprocessor directive (continuations joined)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int  # 1-based line where the token starts


# Multi-character operators, longest first so maximal munch works.
_OPERATORS = (
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>", "<=",
    ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=", "##",
)

_ID_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$"
)
_ID_CONT = _ID_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")


def lex(text: str) -> list[Token]:
    """Tokenize C++ source. Never raises; unterminated constructs are
    emitted as a final token covering the rest of the input."""
    toks: list[Token] = []
    i, n = 0, len(text)
    line = 1
    at_line_start = True  # only whitespace seen since the last newline

    while i < n:
        c = text[i]

        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue

        # Preprocessor directive: '#' first on the line; consume through
        # backslash continuations so the whole directive is one token.
        if c == "#" and at_line_start:
            start, start_line = i, line
            while i < n:
                if text[i] == "\n":
                    if i > 0 and text[i - 1] == "\\":
                        line += 1
                        i += 1
                        continue
                    break
                i += 1
            toks.append(Token(PP, text[start:i], start_line))
            at_line_start = False
            continue
        at_line_start = False

        # Comments.
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            toks.append(Token(COMMENT, text[i + 2 : j], line))
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            end = n if j == -1 else j
            body = text[i + 2 : end]
            toks.append(Token(COMMENT, body, line))
            line += body.count("\n")
            i = n if j == -1 else j + 2
            continue

        # Raw string literal: R"delim( ... )delim" with optional encoding
        # prefix (u8R, uR, UR, LR).
        if c in "RuUL" and _looks_like_raw_string(text, i):
            start_line = line
            q = text.find('"', i)
            k = text.find("(", q)
            delim = text[q + 1 : k]
            closer = ")" + delim + '"'
            j = text.find(closer, k + 1)
            end = n if j == -1 else j
            body = text[k + 1 : end]
            toks.append(Token(STR, body, start_line))
            line += text.count("\n", i, end if j == -1 else j + len(closer))
            i = n if j == -1 else j + len(closer)
            continue

        # Ordinary string / char literal (skip encoding prefixes).
        if c in "uUL" and _prefix_quote(text, i) is not None:
            i = _prefix_quote(text, i)  # type: ignore[assignment]
            c = text[i]
        if c == '"' or c == "'":
            quote = c
            start_line = line
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                if text[j] == "\n":
                    break  # unterminated on this line; be tolerant
                j += 1
            body = text[i + 1 : min(j, n)]
            toks.append(Token(STR if quote == '"' else CHAR, body, start_line))
            i = min(j, n) + 1
            continue

        # Identifier / keyword.
        if c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            toks.append(Token(ID, text[i:j], line))
            i = j
            continue

        # Number (handles 0x1p-3, 1'000'000, 1e-9, suffixes; also .5).
        if c in _DIGITS or (
            c == "." and i + 1 < n and text[i + 1] in _DIGITS
        ):
            j = i + 1
            while j < n:
                ch = text[j]
                if ch in _ID_CONT or ch in ".'":
                    j += 1
                elif ch in "+-" and text[j - 1] in "eEpP":
                    j += 1
                else:
                    break
            toks.append(Token(NUM, text[i:j], line))
            i = j
            continue

        # Operator / punctuation.
        for op in _OPERATORS:
            if text.startswith(op, i):
                toks.append(Token(PUNCT, op, line))
                i += len(op)
                break
        else:
            toks.append(Token(PUNCT, c, line))
            i += 1

    return toks


def _looks_like_raw_string(text: str, i: int) -> bool:
    """True when text[i:] starts a raw string literal (R"..., u8R"..., ...).

    Requires the character before i to not be an identifier character, so
    an identifier like FOOBAR"x" is not misread."""
    if i > 0 and text[i - 1] in _ID_CONT:
        return False
    for prefix in ("R", "u8R", "uR", "UR", "LR"):
        if text.startswith(prefix + '"', i):
            q = i + len(prefix)
            k = text.find("(", q)
            nl = text.find("\n", q)
            # The delimiter must close with '(' before any newline and be
            # a plausible (short, paren-free) delimiter.
            if k != -1 and (nl == -1 or k < nl) and k - q <= 17:
                return True
    return False


def _prefix_quote(text: str, i: int) -> int | None:
    """If text[i:] is an encoding prefix (u8, u, U, L) directly followed by
    a quote, return the index of the quote; else None."""
    if i > 0 and text[i - 1] in _ID_CONT:
        return None
    for prefix in ("u8", "u", "U", "L"):
        if text.startswith(prefix, i):
            j = i + len(prefix)
            if j < len(text) and text[j] in "\"'":
                return j
    return None
