"""Project model: classes, fields, constants, and function definitions.

Built once per run from the token streams, then shared by every pass. The
parser is a pragmatic structural scanner, not a full C++ front end: it
tracks namespace/class/function brace nesting, splits class bodies into
member statements, and recognizes function definitions by the
`name (params) [qualifiers] [ctor-inits] {` shape. That is enough to
answer the questions the passes ask (which class declares kStateVersion,
which tokens form a save_state body, which methods acquire a mutex) while
staying tolerant of code it does not understand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import lexer
from .lexer import Token
from .source import SourceFile

# Keywords that can precede a parenthesized expression followed by '{'
# without introducing a function definition.
_CONTROL = frozenset(
    {"if", "for", "while", "switch", "catch", "return", "do", "else",
     "sizeof", "alignof", "decltype", "new", "delete", "case", "co_await",
     "co_return", "co_yield", "static_assert", "alignas", "noexcept",
     "throw", "requires"}
)

_QUALIFIERS = frozenset(
    {"const", "noexcept", "override", "final", "mutable", "volatile",
     "try", "requires"}
)

_SKIP_STMT_HEADS = frozenset(
    {"using", "typedef", "friend", "template", "static_assert", "public",
     "private", "protected", "extern"}
)


@dataclass
class Field:
    name: str
    line: int
    type_text: str  # joined declaration tokens before the name
    annotations: str  # GS_* annotation macros present in the statement


@dataclass
class MethodDecl:
    name: str
    line: int
    # Mutex names referenced by GS_EXCLUDES/GS_REQUIRES/GS_ACQUIRE/... in
    # the declaration statement.
    annotated_mutexes: frozenset[str]
    has_lock_annotation: bool
    # Mutexes the caller must already hold (GS_REQUIRES) or that the method
    # itself takes (GS_ACQUIRE) — the lock-order pass's held-at-entry set.
    requires_mutexes: frozenset[str] = frozenset()


@dataclass
class ClassInfo:
    name: str
    rel: str
    line: int
    bases: list[str] = field(default_factory=list)
    fields: list[Field] = field(default_factory=list)
    mutex_members: dict[str, int] = field(default_factory=dict)
    constants: dict[str, str] = field(default_factory=dict)  # name -> value
    methods: dict[str, MethodDecl] = field(default_factory=dict)


@dataclass
class FunctionDef:
    name: str  # unqualified
    qualname: str  # e.g. Battery::save_state
    class_name: str | None
    rel: str
    line: int
    # Spans into the file's code-token list.
    header: tuple[int, int]  # [open paren .. body '{'), params + qualifiers
    body: tuple[int, int]  # (body '{' .. matching '}'], exclusive of braces


@dataclass
class Project:
    files: dict[str, SourceFile] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    # Free (namespace-scope) constexpr constants: name -> (value, rel).
    constants: dict[str, tuple[str, str]] = field(default_factory=dict)
    functions: list[FunctionDef] = field(default_factory=list)
    # Per-file code-token lists, index-aligned with FunctionDef spans.
    code_tokens: dict[str, list[Token]] = field(default_factory=dict)

    def resolve_constant(self, name: str, class_hint: str | None) -> int | None:
        """Resolve a constant like kStateVersion to an integer, looking in
        the hinted class, then its base-class chain, then free constants,
        then any class that declares it uniquely."""
        seen: set[str] = set()
        cls = class_hint
        while cls and cls in self.classes and cls not in seen:
            seen.add(cls)
            info = self.classes[cls]
            if name in info.constants:
                return parse_int(info.constants[name])
            cls = info.bases[0] if info.bases else None
        if name in self.constants:
            return parse_int(self.constants[name][0])
        owners = [c for c in self.classes.values() if name in c.constants]
        if len(owners) == 1:
            return parse_int(owners[0].constants[name])
        return None


def parse_int(text: str) -> int | None:
    t = text.strip().rstrip("uUlL")
    try:
        return int(t, 0)
    except ValueError:
        return None


def match_paren(toks: list[Token], i: int) -> int:
    """Index of the ')' matching the '(' at i (or len(toks) if unmatched)."""
    depth = 0
    for j in range(i, len(toks)):
        t = toks[j].text
        if t == "(":
            depth += 1
        elif t == ")":
            depth -= 1
            if depth == 0:
                return j
    return len(toks)


def match_brace(toks: list[Token], i: int) -> int:
    """Index of the '}' matching the '{' at i (or len(toks) if unmatched)."""
    depth = 0
    for j in range(i, len(toks)):
        t = toks[j].text
        if t == "{":
            depth += 1
        elif t == "}":
            depth -= 1
            if depth == 0:
                return j
    return len(toks)


def _skip_balanced(toks: list[Token], i: int) -> int:
    """From an opening ( { or [, return the index just past its match."""
    opener = toks[i].text
    closer = {"(": ")", "{": "}", "[": "]"}[opener]
    depth = 0
    for j in range(i, len(toks)):
        if toks[j].text == opener:
            depth += 1
        elif toks[j].text == closer:
            depth -= 1
            if depth == 0:
                return j + 1
    return len(toks)


def _is_annotation_macro(name: str) -> bool:
    return name.startswith("GS_") and name.isupper()


def _function_at(toks: list[Token], i: int):
    """If toks[i] is a '(' opening a function-definition parameter list,
    return (name_start, close_paren, body_open) else None. toks must be
    code tokens (no comments/preprocessor)."""
    if toks[i].text != "(":
        return None
    # The declarator name directly precedes '('.
    j = i - 1
    if j < 0 or toks[j].kind != lexer.ID or toks[j].text in _CONTROL:
        return None
    if _is_annotation_macro(toks[j].text):
        return None
    # Walk the qualified-name chain backwards: A::B::name, ~Dtor.
    name_start = j
    k = j - 1
    while k >= 1 and toks[k].text in ("::", "~") and (
        toks[k - 1].kind == lexer.ID or toks[k].text == "~"
    ):
        if toks[k].text == "~":
            name_start = k
            k -= 1
            continue
        name_start = k - 1
        k -= 2
    close = match_paren(toks, i)
    if close >= len(toks):
        return None
    # Skim qualifiers / annotations / ctor-inits / trailing return.
    p = close + 1
    n = len(toks)
    while p < n:
        t = toks[p]
        if t.text == "{":
            return (name_start, close, p)
        if t.text == ";":
            return None  # declaration only
        if t.kind == lexer.ID and t.text in _QUALIFIERS:
            p += 1
            # noexcept(...) / requires(...)
            if p < n and toks[p].text == "(":
                p = _skip_balanced(toks, p)
            continue
        if t.kind == lexer.ID and _is_annotation_macro(t.text):
            p += 1
            if p < n and toks[p].text == "(":
                p = _skip_balanced(toks, p)
            continue
        if t.text == "->":  # trailing return type
            p += 1
            while p < n and toks[p].text not in ("{", ";"):
                if toks[p].text in ("(", "[", "<"):
                    if toks[p].text == "<":
                        p += 1  # tolerate bare '<'; rare enough
                    else:
                        p = _skip_balanced(toks, p)
                else:
                    p += 1
            continue
        if t.text == ":":  # constructor initializer list
            p += 1
            while p < n:
                # identifier chain, then a ( ) or { } group
                while p < n and (
                    toks[p].kind == lexer.ID or toks[p].text in ("::", "<", ">", ",")
                ):
                    if toks[p].text == ",":
                        p += 1
                        break
                    p += 1
                if p < n and toks[p].text in ("(", "{"):
                    grp_open = p
                    after = _skip_balanced(toks, p)
                    if toks[grp_open].text == "{" and (
                        after >= n or toks[after].text not in (",",)
                    ):
                        # Could be the body itself if the '{' follows the
                        # ':' pattern end; decide: body iff the group is
                        # not followed by ',' and the previous token is
                        # not an identifier (i.e. nothing initialized).
                        if toks[grp_open - 1].text == ":":
                            return (name_start, close, grp_open)
                    p = after
                    if p < n and toks[p].text == ",":
                        p += 1
                        continue
                    if p < n and toks[p].text == "{":
                        return (name_start, close, p)
                    break
                else:
                    break
            # Fall through: if we stopped on '{' the loop above returned.
            if p < n and toks[p].text == "{":
                return (name_start, close, p)
            return None
        return None
    return None


class _FileParser:
    """Structural scan of one file's code tokens."""

    def __init__(self, project: Project, sf: SourceFile):
        self.project = project
        self.sf = sf
        self.toks = sf.code_tokens()
        self.class_stack: list[ClassInfo] = []

    def run(self) -> None:
        self.project.code_tokens[self.sf.rel] = self.toks
        self._scan_region(0, len(self.toks))

    # --- region scanning ---------------------------------------------------

    def _scan_region(self, start: int, end: int) -> None:
        """Scan [start, end) for namespaces, classes, constants and
        function definitions. Function bodies are recorded and skipped;
        class bodies recurse through _scan_class."""
        i = start
        toks = self.toks
        while i < end:
            t = toks[i]
            if t.kind != lexer.ID:
                if t.text == "{":  # stray block (e.g. array initializer)
                    i = _skip_balanced(toks, i)
                    continue
                if t.text == "(":
                    fn = _function_at(toks, i)
                    if fn:
                        i = self._record_function(*fn)
                        continue
                i += 1
                continue
            if t.text == "namespace":
                j = i + 1
                while j < end and toks[j].text != "{" and toks[j].text != ";":
                    j += 1
                if j < end and toks[j].text == "{":
                    close = match_brace(toks, j)
                    self._scan_region(j + 1, close)
                    i = close + 1
                    continue
                i = j + 1
                continue
            if t.text in ("class", "struct"):
                nxt = self._class_definition_at(i, end)
                if nxt is not None:
                    i = nxt
                    continue
                i += 1
                continue
            if t.text == "enum":
                j = i + 1
                while j < end and toks[j].text not in ("{", ";"):
                    j += 1
                if j < end and toks[j].text == "{":
                    j = _skip_balanced(toks, j) - 1
                i = j + 1
                continue
            if t.text == "constexpr":
                self._maybe_constant(i)
                i += 1
                continue
            i += 1

    def _class_definition_at(self, i: int, end: int) -> int | None:
        """If a class/struct definition starts at i, record it, scan its
        body, and return the index past it; else None."""
        toks = self.toks
        j = i + 1
        name = None
        while j < end:
            t = toks[j]
            if t.text in ("{", ";", "(", ")", ",", ">", "="):
                break
            if t.text == ":":
                break
            if t.kind == lexer.ID and not _is_annotation_macro(t.text) \
                    and t.text not in ("final", "alignas", "export"):
                name = t.text
            j += 1
        if j >= end or name is None:
            return None
        bases: list[str] = []
        if toks[j].text == ":":
            k = j + 1
            while k < end and toks[k].text != "{" and toks[k].text != ";":
                if toks[k].kind == lexer.ID and toks[k].text not in (
                    "public", "private", "protected", "virtual"
                ):
                    bases.append(toks[k].text)
                if toks[k].text == "<":
                    # drop template args from the base list
                    depth = 1
                    k += 1
                    while k < end and depth:
                        if toks[k].text == "<":
                            depth += 1
                        elif toks[k].text == ">":
                            depth -= 1
                        k += 1
                    continue
                k += 1
            j = k
        if j >= end or toks[j].text != "{":
            return None  # forward declaration or variable of class type
        close = match_brace(toks, j)
        info = ClassInfo(name=name, rel=self.sf.rel, line=toks[i].line,
                         bases=bases)
        # First definition wins; redefinitions across files are rare and
        # benign for our queries.
        self.project.classes.setdefault(name, info)
        self.class_stack.append(info)
        self._scan_class(j + 1, close, info)
        self.class_stack.pop()
        # Skip past any trailing declarator (e.g. `} instance;`).
        k = close + 1
        while k < end and toks[k].text != ";":
            k += 1
        return k + 1

    def _scan_class(self, start: int, end: int, info: ClassInfo) -> None:
        """Scan a class body: fields, constants, methods, nested types."""
        toks = self.toks
        i = start
        stmt_start = i
        while i < end:
            t = toks[i]
            if t.kind == lexer.ID and t.text in ("class", "struct"):
                # Nested type (or elaborated type in a declaration).
                nxt = self._class_definition_at(i, end)
                if nxt is not None:
                    i = nxt
                    stmt_start = i
                    continue
            if t.kind == lexer.ID and t.text == "enum":
                j = i + 1
                while j < end and toks[j].text not in ("{", ";"):
                    j += 1
                if j < end and toks[j].text == "{":
                    j = _skip_balanced(toks, j) - 1
                while j < end and toks[j].text != ";":
                    j += 1
                i = j + 1
                stmt_start = i
                continue
            if t.text == ":" and i > start and toks[i - 1].kind == lexer.ID \
                    and toks[i - 1].text in ("public", "private", "protected"):
                i += 1
                stmt_start = i
                continue
            if t.text == "(":
                fn = _function_at(toks, i)
                if fn:
                    i = self._record_function(*fn)
                    stmt_start = i
                    continue
                i = _skip_balanced(toks, i)
                continue
            if t.text == "{":
                i = _skip_balanced(toks, i)
                continue
            if t.text == ";":
                self._class_statement(stmt_start, i, info)
                i += 1
                stmt_start = i
                continue
            i += 1

    def _class_statement(self, start: int, end: int, info: ClassInfo) -> None:
        """Classify one class-body statement (ends at ';') as a field,
        constant, or method declaration."""
        toks = self.toks[start:end]
        if not toks:
            return
        head = toks[0]
        if head.kind == lexer.ID and head.text in _SKIP_STMT_HEADS:
            return
        # Collect annotation macros present anywhere in the statement.
        ann_names: list[str] = []
        ann_mutexes: set[str] = set()
        req_mutexes: set[str] = set()
        has_lock_ann = False
        for idx, t in enumerate(toks):
            if t.kind == lexer.ID and _is_annotation_macro(t.text):
                ann_names.append(t.text)
                if t.text in ("GS_EXCLUDES", "GS_REQUIRES", "GS_ACQUIRE",
                              "GS_RELEASE", "GS_TRY_ACQUIRE",
                              "GS_GUARDED_BY", "GS_PT_GUARDED_BY",
                              "GS_RETURN_CAPABILITY"):
                    has_lock_ann = True
                    j = idx + 1
                    if j < len(toks) and toks[j].text == "(":
                        close = match_paren(toks, j)
                        for a in toks[j + 1 : close]:
                            if a.kind == lexer.ID:
                                ann_mutexes.add(a.text)
                                if t.text in ("GS_REQUIRES", "GS_ACQUIRE"):
                                    req_mutexes.add(a.text)
        # Find the declarator name: last depth-0 identifier before an
        # initializer, skipping annotation macros and their argument lists.
        name_idx = None
        i = 0
        n = len(toks)
        while i < n:
            t = toks[i]
            if t.text in ("=",):
                break
            if t.text == "{":
                break
            if t.kind == lexer.ID and _is_annotation_macro(t.text):
                i += 1
                if i < n and toks[i].text == "(":
                    i = _skip_balanced(toks, i)
                continue
            if t.text in ("(", "[", "<"):
                if t.text == "<":
                    # skip template argument group
                    depth = 1
                    i += 1
                    while i < n and depth:
                        if toks[i].text == "<":
                            depth += 1
                        elif toks[i].text == ">":
                            depth -= 1
                        i += 1
                    continue
                # A '(' directly after the current candidate name means
                # this is a function declaration.
                if t.text == "(" and name_idx is not None and \
                        i == name_idx + 1:
                    m = MethodDecl(
                        name=toks[name_idx].text,
                        line=toks[name_idx].line,
                        annotated_mutexes=frozenset(ann_mutexes),
                        has_lock_annotation=has_lock_ann,
                        requires_mutexes=frozenset(req_mutexes),
                    )
                    info.methods.setdefault(m.name, m)
                    return
                i = _skip_balanced(toks, i)
                continue
            if t.kind == lexer.ID and t.text not in ("static", "mutable",
                                                     "inline", "explicit",
                                                     "virtual", "constexpr",
                                                     "const"):
                name_idx = i
            i += 1
        if name_idx is None:
            return
        name = toks[name_idx].text
        line = toks[name_idx].line
        type_text = " ".join(
            t.text for t in toks[:name_idx] if t.kind != lexer.COMMENT
        )
        # Constant?
        is_constexpr = any(
            t.kind == lexer.ID and t.text == "constexpr" for t in toks
        )
        eq = next((i for i, t in enumerate(toks) if t.text == "="), None)
        if is_constexpr and eq is not None:
            info.constants[name] = " ".join(t.text for t in toks[eq + 1 :])
            return
        fld = Field(name=name, line=line, type_text=type_text,
                    annotations=" ".join(ann_names))
        info.fields.append(fld)
        # Mutex member? The declared type's last identifier is Mutex, and
        # the member owns it (a Mutex& / Mutex* member borrows someone
        # else's lock and is annotated at the owner instead).
        type_ids = [t for t in toks[:name_idx] if t.kind == lexer.ID and
                    t.text not in ("static", "mutable", "inline", "const")]
        owns = not any(t.text in ("&", "*") for t in toks[:name_idx]
                       if t.kind == lexer.PUNCT)
        if owns and type_ids and type_ids[-1].text == "Mutex":
            info.mutex_members[name] = line

    def _record_function(self, name_start: int, close: int,
                         body_open: int) -> int:
        toks = self.toks
        body_close = match_brace(toks, body_open)
        # The '(' opening the parameter list: first '(' after the name.
        j = name_start
        while j < len(toks) and toks[j].text != "(":
            j += 1
        open_paren = j
        chain = toks[name_start:open_paren]
        name = chain[-1].text if chain else "?"
        qual_ids = [t.text for t in chain if t.kind == lexer.ID]
        class_name: str | None = None
        if len(qual_ids) >= 2:
            class_name = qual_ids[-2]
        elif self.class_stack:
            class_name = self.class_stack[-1].name
        qualname = (class_name + "::" + name) if class_name else name
        self.project.functions.append(FunctionDef(
            name=name,
            qualname=qualname,
            class_name=class_name,
            rel=self.sf.rel,
            line=toks[name_start].line,
            header=(open_paren, body_open),
            body=(body_open + 1, body_close),
        ))
        # Record the method on the class so inline definitions count as
        # declarations too (annotation lookup).
        if class_name and class_name in self.project.classes:
            info = self.project.classes[class_name]
            if name not in info.methods:
                ann_mutexes: set[str] = set()
                req_mutexes: set[str] = set()
                has_lock_ann = False
                for idx in range(open_paren, body_open):
                    t = toks[idx]
                    if t.kind == lexer.ID and _is_annotation_macro(t.text):
                        if t.text.startswith("GS_"):
                            has_lock_ann = True
                            k = idx + 1
                            if k < len(toks) and toks[k].text == "(":
                                pclose = match_paren(toks, k)
                                for a in toks[k + 1 : pclose]:
                                    if a.kind == lexer.ID:
                                        ann_mutexes.add(a.text)
                                        if t.text in ("GS_REQUIRES",
                                                      "GS_ACQUIRE"):
                                            req_mutexes.add(a.text)
                info.methods[name] = MethodDecl(
                    name=name, line=toks[name_start].line,
                    annotated_mutexes=frozenset(ann_mutexes),
                    has_lock_annotation=has_lock_ann,
                    requires_mutexes=frozenset(req_mutexes),
                )
        return body_close + 1

    def _maybe_constant(self, i: int) -> None:
        """Record a namespace-scope `constexpr ... name = value;`."""
        if self.class_stack:
            return
        toks = self.toks
        j = i
        name = None
        while j < len(toks) and toks[j].text not in (";", "{", "("):
            if toks[j].text == "=":
                if name:
                    self.project.constants.setdefault(
                        name, (" ".join(
                            t.text for t in toks[j + 1 : _stmt_end(toks, j)]
                        ), self.sf.rel)
                    )
                return
            if toks[j].kind == lexer.ID:
                name = toks[j].text
            j += 1


def _stmt_end(toks: list[Token], i: int) -> int:
    j = i
    while j < len(toks) and toks[j].text != ";":
        j += 1
    return j


def build(files: dict[str, SourceFile]) -> Project:
    project = Project(files=files)
    for sf in files.values():
        _FileParser(project, sf).run()
    return project
