"""The ten legacy gs-lint rules, ported onto the lexer.

Same rule names, same messages, same suppression placement as
tools/gs_lint.py historically enforced — but matched against the token
stream, so occurrences inside string literals, character literals and
comments (the legacy regex pack's false-positive class) can no longer
fire, and occurrences split across lines can no longer hide.
"""

from __future__ import annotations

from . import lexer
from .findings import Report
from .model import Project
from .source import SourceFile

LEGACY_RULES = (
    "raw-thread",
    "raw-mutex",
    "raw-random",
    "wall-clock",
    "use-gs-assert",
    "correlated-faults",
    "mutex-annotations",
    "ckpt-schema-version",
    "tsdb-chunk-version",
    "serve-protocol-version",
    "hot-path-alloc",
)

_RAW_THREAD = frozenset({"thread", "jthread", "async"})
_RAW_THREAD_MSG = (
    "raw std::thread/std::async outside common/thread_pool; submit work "
    "to gs::ThreadPool / parallel_for instead"
)
_RAW_THREAD_EXEMPT = ("common/thread_pool.hpp", "common/thread_pool.cpp")

_RAW_MUTEX = frozenset({
    "mutex", "recursive_mutex", "shared_mutex", "timed_mutex",
    "recursive_timed_mutex", "lock_guard", "unique_lock", "scoped_lock",
    "shared_lock", "condition_variable", "condition_variable_any",
})
_RAW_MUTEX_MSG = (
    "raw <mutex>/<condition_variable> primitive outside "
    "common/thread_annotations.hpp; use the capability-annotated "
    "gs::Mutex / gs::MutexLock / gs::CondVar"
)
_RAW_MUTEX_EXEMPT = ("common/thread_annotations.hpp",)

_RAW_RANDOM = frozenset({
    "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
    "default_random_engine", "ranlux24", "ranlux48", "ranlux24_base",
    "ranlux48_base", "knuth_b", "random_device",
    "uniform_int_distribution", "uniform_real_distribution",
    "normal_distribution", "poisson_distribution",
    "exponential_distribution", "bernoulli_distribution",
    "geometric_distribution",
})
_RAW_RANDOM_MSG = (
    "non-gs randomness outside common/rng.hpp; derive a gs::Rng stream "
    "(determinism guard for sweep_fingerprint)"
)
_RAW_RANDOM_EXEMPT = ("common/rng.hpp",)

_WALL_CLOCK_MSG = (
    "wall-clock time in simulation code; simulated time comes from the "
    "scenario clock (wall timing belongs in bench/)"
)

_USE_GS_ASSERT_MSG = (
    "<cassert>/assert() in src/; use GS_REQUIRE / GS_ENSURE from "
    "common/assert.hpp (throws gs::ContractError, active in release)"
)

_CORRELATED_FAULTS_MSG = (
    "direct FaultSchedule::generate() bypasses the correlation-aware "
    "entry point; call FaultSchedule::generate_correlated (a disabled "
    "CorrelationSpec is the identity)"
)
_CORRELATED_FAULTS_EXEMPT = (
    "faults/fault_schedule.hpp", "faults/fault_schedule.cpp",
)

_TSDB_MARKERS = frozenset({
    "encode_page", "decode_page", "replay_wal", "WalRecord",
})
_TSDB_VERSIONS = frozenset({"kChunkFormatVersion", "kWalFormatVersion"})

_SERVE_MARKERS = frozenset({
    "encode_frame", "FrameDecoder", "parse_request", "format_feed",
})
_SERVE_VERSION = "kProtocolVersion"

_GROWTH_CALLS = frozenset({
    "push_back", "emplace_back", "resize", "reserve", "assign", "insert",
    "emplace",
})

_LOCK_ANNOTATIONS = frozenset({
    "GS_GUARDED_BY", "GS_PT_GUARDED_BY", "GS_REQUIRES", "GS_ACQUIRE",
    "GS_RELEASE", "GS_TRY_ACQUIRE", "GS_EXCLUDES", "GS_RETURN_CAPABILITY",
})


def _applies(rel: str, exempt: tuple[str, ...]) -> bool:
    return not any(rel.endswith(e) for e in exempt)


def _emit(report: Report, sf: SourceFile, rule: str, line: int,
          message: str, line_above: bool = False) -> None:
    if not sf.allowed(rule, line, line_above=line_above):
        report.add(rule, sf.rel, line, message)


def run(project: Project, report: Report) -> None:
    for sf in project.files.values():
        _lint_file(project, sf, report)


def _lint_file(project: Project, sf: SourceFile, report: Report) -> None:
    rel = sf.rel
    toks = project.code_tokens.get(rel) or sf.code_tokens()
    n = len(toks)

    saw_save_load = None  # first save_state/load_state declaration line
    saw_state_version = False
    tsdb_marker_line = None
    saw_tsdb_version = False
    serve_marker_line = None
    saw_serve_version = False

    for i, t in enumerate(toks):
        nxt = toks[i + 1] if i + 1 < n else None
        prv = toks[i - 1] if i > 0 else None

        # std::<something> patterns.
        if t.text == "std" and nxt is not None and nxt.text == "::" and \
                i + 2 < n:
            member = toks[i + 2]
            if member.kind == lexer.ID:
                if member.text in _RAW_THREAD and \
                        _applies(rel, _RAW_THREAD_EXEMPT):
                    _emit(report, sf, "raw-thread", t.line, _RAW_THREAD_MSG)
                elif member.text in _RAW_MUTEX and \
                        _applies(rel, _RAW_MUTEX_EXEMPT):
                    _emit(report, sf, "raw-mutex", t.line, _RAW_MUTEX_MSG)
                elif member.text in _RAW_RANDOM and \
                        _applies(rel, _RAW_RANDOM_EXEMPT):
                    _emit(report, sf, "raw-random", t.line, _RAW_RANDOM_MSG)
                elif member.text == "chrono" and i + 4 < n and \
                        toks[i + 3].text == "::" and \
                        toks[i + 4].text == "system_clock":
                    _emit(report, sf, "wall-clock", t.line, _WALL_CLOCK_MSG)

        # rand( / srand( — not a member access, not qualified.
        if t.kind == lexer.ID and t.text in ("rand", "srand") and \
                nxt is not None and nxt.text == "(" and \
                (prv is None or prv.text not in (".", "->", "::")) and \
                _applies(rel, _RAW_RANDOM_EXEMPT):
            _emit(report, sf, "raw-random", t.line, _RAW_RANDOM_MSG)

        # time(nullptr) / time(NULL) / time(0) — qualified or not, matching
        # the legacy rule (std::time(nullptr) also fired).
        if t.kind == lexer.ID and t.text == "time" and nxt is not None and \
                nxt.text == "(" and i + 3 < n and \
                toks[i + 2].text in ("nullptr", "NULL", "0") and \
                toks[i + 3].text == ")" and \
                (prv is None or prv.text not in (".", "->")):
            _emit(report, sf, "wall-clock", t.line, _WALL_CLOCK_MSG)

        # assert( — tokenization already separates static_assert.
        if t.kind == lexer.ID and t.text == "assert" and nxt is not None \
                and nxt.text == "(" and \
                (prv is None or prv.text not in (".", "->", "::")):
            _emit(report, sf, "use-gs-assert", t.line, _USE_GS_ASSERT_MSG)

        # FaultSchedule::generate(
        if t.text == "FaultSchedule" and nxt is not None and \
                nxt.text == "::" and i + 3 < n and \
                toks[i + 2].text == "generate" and \
                toks[i + 3].text == "(" and \
                _applies(rel, _CORRELATED_FAULTS_EXEMPT):
            _emit(report, sf, "correlated-faults", t.line,
                  _CORRELATED_FAULTS_MSG)

        # File-level bookkeeping for ckpt-schema-version /
        # tsdb-chunk-version.
        if t.kind == lexer.ID:
            if t.text in ("save_state", "load_state") and nxt is not None \
                    and nxt.text == "(" and saw_save_load is None:
                saw_save_load = t.line
            if t.text == "kStateVersion":
                saw_state_version = True
            if t.text in _TSDB_MARKERS and tsdb_marker_line is None:
                tsdb_marker_line = t.line
            if t.text in _TSDB_VERSIONS:
                saw_tsdb_version = True
            if t.text in _SERVE_MARKERS and serve_marker_line is None:
                serve_marker_line = t.line
            if t.text == _SERVE_VERSION:
                saw_serve_version = True

        # hot-path-alloc.
        if sf.hot_path:
            if t.kind == lexer.ID and t.text == "new" and \
                    (nxt is None or nxt.text != "(") and \
                    (prv is None or prv.text != "operator"):
                _emit(report, sf, "hot-path-alloc", t.line,
                      _hot_path_msg(), line_above=True)
            elif t.text == "std" and nxt is not None and nxt.text == "::" \
                    and i + 2 < n and toks[i + 2].text in (
                        "make_unique", "make_shared"):
                _emit(report, sf, "hot-path-alloc", t.line,
                      _hot_path_msg(), line_above=True)
            elif t.text in (".", "->") and nxt is not None and \
                    nxt.kind == lexer.ID and nxt.text in _GROWTH_CALLS and \
                    i + 2 < n and (
                        toks[i + 2].text == "(" or (
                            toks[i + 2].text == "<" and
                            _template_call_follows(toks, i + 2)
                        )
                    ):
                _emit(report, sf, "hot-path-alloc", nxt.line,
                      _hot_path_msg(), line_above=True)

    # Include-based assert detection (preprocessor tokens).
    for t in sf.tokens:
        if t.kind == lexer.PP and (
            "<cassert>" in t.text or "<assert.h>" in t.text
        ) and "include" in t.text:
            _emit(report, sf, "use-gs-assert", t.line, _USE_GS_ASSERT_MSG)

    # mutex-annotations: every gs::Mutex member must be referenced by a
    # capability annotation somewhere in the declaring file.
    annotated = _annotated_mutex_names(toks)
    for cls in project.classes.values():
        if cls.rel != rel:
            continue
        for name, line in cls.mutex_members.items():
            if name in annotated:
                continue
            if sf.allowed("mutex-annotations", line):
                continue
            report.add(
                "mutex-annotations", rel, line,
                f"gs::Mutex member '{name}' has no GS_GUARDED_BY/"
                "GS_REQUIRES/... referencing it; annotate what it guards",
            )

    # ckpt-schema-version: headers declaring save_state/load_state must
    # declare kStateVersion (file-level allow, e.g. version inherited from
    # a base class or the enclosing engine section).
    if sf.is_header and saw_save_load is not None and not saw_state_version:
        if not sf.allowed_anywhere("ckpt-schema-version"):
            report.add(
                "ckpt-schema-version", rel, saw_save_load,
                "save_state/load_state declared without a kStateVersion "
                "schema field; snapshot sections must be versioned "
                "(ckpt/state_io.hpp)",
            )

    # tsdb-chunk-version: on-disk format code must keep the owning
    # format-version constant in view (file-level allow).
    if "tsdb/" in rel and tsdb_marker_line is not None and \
            not saw_tsdb_version:
        if not sf.allowed_anywhere("tsdb-chunk-version"):
            report.add(
                "tsdb-chunk-version", rel, tsdb_marker_line,
                "on-disk format marker (page/WAL encode, decode, or "
                "replay) without a kChunkFormatVersion/kWalFormatVersion "
                "reference; bump the format version with any layout change",
            )

    # serve-protocol-version: wire-format code (the GSRV framing codec or
    # request grammar) must keep kProtocolVersion in view (file-level
    # allow) so any grammar/framing change confronts the version bump.
    if "serve/" in rel and serve_marker_line is not None and \
            not saw_serve_version:
        if not sf.allowed_anywhere("serve-protocol-version"):
            report.add(
                "serve-protocol-version", rel, serve_marker_line,
                "GSRV wire-format marker (encode_frame, FrameDecoder, "
                "parse_request, or format_feed) without a "
                "kProtocolVersion reference; bump the protocol version "
                "with any framing or grammar change",
            )


def _hot_path_msg() -> str:
    return (
        "heap allocation in a gs:hot-path file; keep the epoch loop "
        "allocation-free (use the arena / pre-sized arrays) or justify "
        "with an allow() comment"
    )


def _template_call_follows(toks, i) -> bool:
    """True when toks[i] == '<' opens template args followed by '(' —
    e.g. .emplace<T>(...)."""
    depth = 0
    for j in range(i, min(i + 32, len(toks))):
        if toks[j].text == "<":
            depth += 1
        elif toks[j].text == ">":
            depth -= 1
            if depth == 0:
                return j + 1 < len(toks) and toks[j + 1].text == "("
    return False


def _annotated_mutex_names(toks) -> set[str]:
    names: set[str] = set()
    for i, t in enumerate(toks):
        if t.kind == lexer.ID and t.text in _LOCK_ANNOTATIONS and \
                i + 1 < len(toks) and toks[i + 1].text == "(":
            j = i + 1
            depth = 0
            while j < len(toks):
                if toks[j].text == "(":
                    depth += 1
                elif toks[j].text == ")":
                    depth -= 1
                    if depth == 0:
                        break
                elif toks[j].kind == lexer.ID:
                    names.add(toks[j].text)
                j += 1
    return names
