"""Per-file view: tokens plus the comment-borne metadata the passes need.

Suppression grammar (both spellings accepted everywhere):

  // gs-lint: allow(<rule>[, <rule>...])      legacy spelling
  // gs-analyze: allow(<rule>[, <rule>...])   engine spelling

Placement follows the legacy semantics: a suppression applies to findings
on its own line; for hot-path-alloc also to the line directly below (the
80-column limit often leaves no room on the flagged line); file-level rules
(ckpt-schema-version, tsdb-chunk-version) accept an allow() anywhere in the
file.

Fingerprint-coverage exemptions use their own markers so intent stays
readable at the struct field:

  // gs-analyze: fingerprint-exempt(<why>)    field does not shape results
  // gs-analyze: fingerprint-via(<how>)       field is mixed in indirectly
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

from . import lexer
from .lexer import Token

ALLOW_RE = re.compile(r"gs-(?:lint|analyze):\s*allow\(([\w\-, ]+)\)")
FP_EXEMPT_RE = re.compile(
    r"gs-analyze:\s*fingerprint-(?:exempt|via)\(([^)]*)\)"
)
HOT_PATH_BANNER_RE = re.compile(r"gs:hot-path\b")
DURABLE_IO_BANNER_RE = re.compile(r"gs:durable-io\b")


@dataclass
class Suppression:
    line: int  # line the allow() comment starts on
    rules: frozenset[str]
    used: bool = False  # set when it actually silences a finding


@dataclass
class SourceFile:
    path: Path
    rel: str  # repo-relative path with forward slashes
    text: str
    tokens: list[Token]
    # Comment text joined per starting line (a block comment is attributed
    # to the line it starts on).
    comments_by_line: dict[int, str]
    suppressions: list[Suppression]
    fingerprint_exempt_lines: set[int]
    hot_path: bool
    durable_io: bool
    n_lines: int

    @property
    def is_header(self) -> bool:
        return self.rel.endswith((".hpp", ".h"))

    def code_tokens(self) -> list[Token]:
        """Tokens with comments and preprocessor directives removed."""
        return [
            t
            for t in self.tokens
            if t.kind not in (lexer.COMMENT, lexer.PP)
        ]

    # --- suppression queries -------------------------------------------------

    def _suppressions_at(self, lines: tuple[int, ...]) -> list[Suppression]:
        return [s for s in self.suppressions if s.line in lines]

    def allowed(self, rule: str, line: int, line_above: bool = False) -> bool:
        """Is `rule` suppressed for a finding on `line`? Marks the matching
        suppression as used. `line_above` additionally accepts an allow()
        on the preceding line (hot-path-alloc semantics)."""
        lines = (line, line - 1) if line_above else (line,)
        hit = False
        for s in self._suppressions_at(lines):
            if rule in s.rules:
                s.used = True
                hit = True
        return hit

    def allowed_anywhere(self, rule: str) -> bool:
        """File-level suppression: an allow(rule) on any line."""
        hit = False
        for s in self.suppressions:
            if rule in s.rules:
                s.used = True
                hit = True
        return hit


def load(path: Path, rel: str) -> SourceFile:
    text = path.read_text(encoding="utf-8")
    tokens = lexer.lex(text)

    comments: dict[int, str] = {}
    for t in tokens:
        if t.kind == lexer.COMMENT:
            comments[t.line] = (
                comments[t.line] + " " + t.text if t.line in comments
                else t.text
            )

    suppressions: list[Suppression] = []
    fp_exempt: set[int] = set()
    hot_path = False
    durable_io = False
    for line, ctext in comments.items():
        m = ALLOW_RE.search(ctext)
        if m:
            rules = frozenset(
                r.strip() for r in m.group(1).split(",") if r.strip()
            )
            suppressions.append(Suppression(line, rules))
        if FP_EXEMPT_RE.search(ctext):
            fp_exempt.add(line)
        if HOT_PATH_BANNER_RE.search(ctext):
            hot_path = True
        if DURABLE_IO_BANNER_RE.search(ctext):
            durable_io = True

    return SourceFile(
        path=path,
        rel=rel,
        text=text,
        tokens=tokens,
        comments_by_line=comments,
        suppressions=suppressions,
        fingerprint_exempt_lines=fp_exempt,
        hot_path=hot_path,
        durable_io=durable_io,
        n_lines=text.count("\n") + 1,
    )
