"""Command line for gs_analyze (and the gs_lint compatibility shim).

  tools/gs_analyze [PATH ...]            analyze src/ (or the given paths)
  tools/gs_analyze --json out.json       also write machine-readable output
  tools/gs_analyze --write-lock          regenerate tools/ckpt_schema.lock
  tools/gs_analyze --list-rules          print the rule names and exit

Exit codes: 0 clean, 1 findings, 2 --write-lock refused (the tree carries
an un-bumped schema change; locking it would bless the violation).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import engine, rules_legacy

_RULE_SUMMARIES = {
    "raw-thread": "std::thread/async only in common/thread_pool",
    "raw-mutex": "raw <mutex> primitives only in thread_annotations.hpp",
    "raw-random": "non-gs randomness only in common/rng.hpp",
    "wall-clock": "no wall-clock time in simulation code",
    "use-gs-assert": "GS_REQUIRE/GS_ENSURE instead of assert()",
    "correlated-faults":
        "FaultSchedule::generate_correlated over generate()",
    "mutex-annotations":
        "every gs::Mutex member referenced by a GS_* annotation",
    "ckpt-schema-version":
        "save_state/load_state headers declare kStateVersion",
    "tsdb-chunk-version":
        "tsdb on-disk format code keeps its format-version constant in "
        "view",
    "serve-protocol-version":
        "GSRV wire-format code keeps kProtocolVersion in view",
    "hot-path-alloc": "no heap allocation in gs:hot-path files",
    "ckpt-schema-lock":
        "serialized field lists cannot change without a version bump "
        "(tools/ckpt_schema.lock)",
    "ckpt-schema-lock-stale":
        "tools/ckpt_schema.lock out of date; regenerate with --write-lock",
    "ckpt-save-load-mismatch":
        "save_state and load_state agree on every section's byte layout",
    "fingerprint-coverage":
        "every scenario-shaping field reaches scenario_fingerprint()",
    "lock-order-cycle": "the static mutex acquisition graph is acyclic",
    "lock-order-reentry": "no re-acquisition of a held non-recursive "
                          "gs::Mutex",
    "lock-order-annotation":
        "lock-taking methods carry GS_EXCLUDES/GS_REQUIRES declarations",
    "rng-stream-ownership": "each named Rng stream drawn by one subsystem",
    "stale-suppression": "allow() comments that silence nothing are "
                         "errors",
}


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="gs_analyze", description=__doc__.splitlines()[0]
    )
    ap.add_argument("paths", nargs="*",
                    help="files or directories to analyze (default: src)")
    ap.add_argument("--json", metavar="PATH",
                    help="write the findings as JSON to PATH ('-' for "
                    "stdout)")
    ap.add_argument("--write-lock", action="store_true",
                    help="regenerate tools/ckpt_schema.lock from the tree")
    ap.add_argument("--lock", metavar="PATH",
                    help="schema lock file (default: tools/"
                    "ckpt_schema.lock)")
    ap.add_argument("--root", metavar="PATH",
                    help="repository root (default: the tools/ parent)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--legacy-only", action="store_true",
                    help="run only the ten legacy gs-lint rules (the "
                    "gs_lint.py compatibility surface)")
    args = ap.parse_args(argv)

    if args.list_rules:
        rules = rules_legacy.LEGACY_RULES if args.legacy_only else \
            engine.ALL_RULES
        for rule in rules:
            print(f"{rule}: {_RULE_SUMMARIES.get(rule, '')}")
        return 0

    root = Path(args.root).resolve() if args.root else \
        Path(__file__).resolve().parent.parent.parent
    lock_path = Path(args.lock) if args.lock else None
    if lock_path is not None and not lock_path.is_absolute():
        lock_path = root / lock_path
    paths = args.paths or None

    if args.write_lock:
        blockers, written = engine.write_lock(root, lock_path, paths)
        if not written:
            print("gs-analyze: refusing to write the schema lock — the "
                  "tree has un-bumped schema changes:", file=sys.stderr)
            for f in blockers.sorted_findings():
                print("  " + f.text(), file=sys.stderr)
            return 2
        target = lock_path or root / engine.DEFAULT_LOCK
        print(f"gs-analyze: wrote {target}")
        return 0

    report, _ = engine.analyze(root, paths, lock_path,
                               legacy_only=args.legacy_only)
    if args.json:
        payload = report.render_json()
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n", encoding="utf-8")

    name = "gs-lint" if args.legacy_only else "gs-analyze"
    # With JSON on stdout, the human rendering moves to stderr so the
    # stream stays parseable.
    human = sys.stderr if args.json == "-" else sys.stdout
    text = report.render_text()
    if text:
        print(text, file=human)
    if report.findings:
        print(f"{name}: {len(report.findings)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"{name}: clean ({report.files_analyzed} files, "
          f"{len(report.rules_run)} rules)", file=human)
    return 0
