"""lock-order: static gs::Mutex acquisition graph, cycle- and gap-checked.

Three findings families over the project's MutexLock/GS_* usage:

  lock-order-cycle       the acquisition graph (edges: mutex A is held when
                         mutex B is taken) contains a cycle — two threads
                         walking the cycle from different entry points can
                         deadlock.
  lock-order-reentry     a function takes MutexLock on a mutex expression
                         it already holds in the same scope chain; gs::Mutex
                         is non-recursive, so this self-deadlocks on the
                         first call.
  lock-order-annotation  a member function acquires a class mutex member
                         but its declaration carries no GS_EXCLUDES /
                         GS_REQUIRES / GS_ACQUIRE annotation, so clang
                         -Wthread-safety cannot check its callers.

Held-set tracking is lexical: a MutexLock local is held from its
declaration to the end of its enclosing brace scope; GS_REQUIRES /
GS_ACQUIRE on the function declaration seed the entry held-set. Call edges
are added one level deep: a call made while holding A, to a project
function whose own entry acquires B (uniquely resolvable by name), adds
edge A -> B. Mutexes are named Class::member for member mutexes and
qualname::name for locals, so the graph is per-lock-object class, matching
how deadlocks actually manifest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import lexer
from .findings import Report
from .model import FunctionDef, Project, match_paren


@dataclass
class _Acq:
    """One MutexLock site inside a function body."""

    node: str  # normalized mutex name (Class::member or qualname::local)
    expr: str  # the literal mutex expression, for reentry detection
    line: int
    depth: int  # brace depth at acquisition (scope it lives in)
    on_this: bool  # expression is an unqualified member / local


@dataclass
class _FnLocks:
    fn: FunctionDef
    entry: set[str] = field(default_factory=set)  # held at entry (GS_*)
    # Mutexes this function TAKES itself on behalf of the caller
    # (GS_ACQUIRE) — unlike GS_REQUIRES, calling it while holding the
    # mutex deadlocks.
    entry_takes: set[str] = field(default_factory=set)
    acquisitions: list[_Acq] = field(default_factory=list)
    # node -> (line, holder-node) edges discovered inside this function
    edges: list[tuple[str, str, int]] = field(default_factory=list)


def run(project: Project, report: Report) -> None:
    per_fn = [_scan_function(project, fn) for fn in project.functions]
    per_fn = [f for f in per_fn if f is not None]

    # Mutexes a function TAKES at entry (top-level MutexLock or
    # GS_ACQUIRE), keyed by bare name for one-level call edges. GS_REQUIRES
    # mutexes are deliberately NOT here: the caller already holds them, so
    # calling the helper under the lock is the intended pattern. Only names
    # with a single consistent resolution are used.
    entry_acquired: dict[str, set[str] | None] = {}
    for fl in per_fn:
        taken = {
            a.node for a in fl.acquisitions
            if a.depth == 0 and a.on_this
        } | set(fl.entry_takes)
        if not taken:
            continue
        if fl.fn.name in entry_acquired and \
                entry_acquired[fl.fn.name] != taken:
            entry_acquired[fl.fn.name] = None  # ambiguous name: drop
        else:
            entry_acquired.setdefault(fl.fn.name, taken)

    edges: dict[tuple[str, str], tuple[str, int]] = {}
    for fl in per_fn:
        _collect_edges(project, fl, entry_acquired, report)
        for a, b, line in fl.edges:
            edges.setdefault((a, b), (fl.fn.rel, line))

    _report_cycles(edges, report)
    _check_annotations(project, per_fn, report)


def _scan_function(project: Project, fn: FunctionDef) -> _FnLocks | None:
    toks = project.code_tokens[fn.rel]
    lo, hi = fn.body
    fl = _FnLocks(fn=fn)

    # Held at entry: GS_REQUIRES/GS_ACQUIRE on the header span (inline
    # definitions) or on the declaration recorded for the class.
    for idx in range(*fn.header):
        t = toks[idx]
        if t.kind == lexer.ID and t.text in ("GS_REQUIRES", "GS_ACQUIRE") \
                and idx + 1 < len(toks) and toks[idx + 1].text == "(":
            close = match_paren(toks, idx + 1)
            for a in toks[idx + 2 : close]:
                if a.kind == lexer.ID:
                    node = _normalize(project, fn, a.text)
                    fl.entry.add(node)
                    if t.text == "GS_ACQUIRE":
                        fl.entry_takes.add(node)
    if fn.class_name and fn.class_name in project.classes:
        decl = project.classes[fn.class_name].methods.get(fn.name)
        if decl is not None:
            for m in decl.requires_mutexes:
                fl.entry.add(_normalize(project, fn, m))

    local_mutexes: set[str] = set()
    depth = 0
    i = lo
    while i < hi:
        t = toks[i]
        if t.text == "{":
            depth += 1
        elif t.text == "}":
            depth -= 1
        elif t.kind == lexer.ID and t.text == "Mutex" and i + 1 < hi and \
                toks[i + 1].kind == lexer.ID and \
                (i == lo or toks[i - 1].text not in (".", "->", "::", ",")):
            local_mutexes.add(toks[i + 1].text)
        elif t.kind == lexer.ID and t.text == "MutexLock" and \
                i + 1 < hi and toks[i + 1].kind == lexer.ID and \
                i + 2 < hi and toks[i + 2].text == "(":
            close = match_paren(toks, i + 2)
            expr_toks = toks[i + 3 : close]
            expr = "".join(x.text for x in expr_toks)
            node, on_this = _normalize_expr(
                project, fn, expr_toks, local_mutexes
            )
            fl.acquisitions.append(
                _Acq(node=node, expr=expr, line=t.line, depth=depth,
                     on_this=on_this)
            )
            i = close + 1
            continue
        i += 1
    if not fl.acquisitions and not fl.entry:
        return None
    return fl


def _normalize(project: Project, fn: FunctionDef, name: str) -> str:
    if fn.class_name and fn.class_name in project.classes and \
            name in project.classes[fn.class_name].mutex_members:
        return f"{fn.class_name}::{name}"
    # Not a member of the enclosing class: a namespace-scope mutex — one
    # shared object, so its identity must not be function-scoped.
    return name


def _normalize_expr(project: Project, fn: FunctionDef, expr_toks,
                    local_mutexes: set[str]) -> tuple[str, bool]:
    ids = [t.text for t in expr_toks if t.kind == lexer.ID]
    if not ids:
        return (f"{fn.qualname}::?", False)
    member = ids[-1]
    bare = len(expr_toks) == 1 or (
        len(ids) == 1 and all(
            t.kind == lexer.ID or t.text == "::" for t in expr_toks
        )
    )
    if bare and member in local_mutexes:
        return (f"{fn.qualname}::{member}", True)
    if bare:
        return (_normalize(project, fn, member), True)
    # Qualified expression (obj.mu_, other->mu_): attribute to the unique
    # owning class when there is one.
    owners = [
        c.name for c in project.classes.values()
        if member in c.mutex_members
    ]
    if len(owners) == 1:
        return (f"{owners[0]}::{member}", False)
    return (f"?::{member}", False)


def _collect_edges(project: Project, fl: _FnLocks,
                   entry_acquired: dict[str, set[str] | None],
                   report: Report) -> None:
    """Nesting edges, reentry findings, and one-level call edges."""
    toks = project.code_tokens[fl.fn.rel]
    lo, hi = fl.fn.body
    sf = project.files.get(fl.fn.rel)

    # Lexical replay: held stack of (node, expr, depth).
    held: list[_Acq] = []
    entry_nodes = sorted(fl.entry)
    acq_by_pos = {(a.line, a.expr): a for a in fl.acquisitions}
    depth = 0
    i = lo
    while i < hi:
        t = toks[i]
        if t.text == "{":
            depth += 1
        elif t.text == "}":
            depth -= 1
            held = [a for a in held if a.depth <= depth]
        elif t.kind == lexer.ID and t.text == "MutexLock" and \
                i + 1 < hi and toks[i + 1].kind == lexer.ID and \
                i + 2 < hi and toks[i + 2].text == "(":
            close = match_paren(toks, i + 2)
            expr = "".join(x.text for x in toks[i + 3 : close])
            acq = acq_by_pos.get((t.line, expr))
            if acq is not None:
                for holder in entry_nodes:
                    if holder != acq.node:
                        fl.edges.append((holder, acq.node, acq.line))
                for h in held:
                    if h.expr == acq.expr or h.node == acq.node:
                        _emit(report, sf, "lock-order-reentry", acq.line,
                              f"{fl.fn.qualname} re-acquires '{expr}' "
                              f"(already held since line {h.line}); "
                              "gs::Mutex is non-recursive, this "
                              "self-deadlocks")
                    else:
                        fl.edges.append((h.node, acq.node, acq.line))
                if acq.node in fl.entry:
                    _emit(report, sf, "lock-order-reentry", acq.line,
                          f"{fl.fn.qualname} acquires '{expr}' which its "
                          "GS_REQUIRES/GS_ACQUIRE annotation says is "
                          "already held at entry")
                held.append(acq)
            i = close + 1
            continue
        elif t.kind == lexer.ID and i + 1 < hi and \
                toks[i + 1].text == "(" and (held or entry_nodes) and \
                t.text != "MutexLock":
            callee = entry_acquired.get(t.text)
            if callee:
                holders = {h.node for h in held} | fl.entry
                # A call through a different object of the same class is a
                # real A->A ordering only across objects; still record it
                # as an edge (cycle A->A is reported as an ordering hazard
                # by the cycle pass only when the call is unqualified it
                # would be reentry — skip self-loops from qualified calls).
                prv = toks[i - 1] if i > lo else None
                qualified = prv is not None and prv.text in (".", "->")
                for inner in callee:
                    for holder in holders:
                        if holder == inner:
                            if not qualified:
                                _emit(
                                    report, sf, "lock-order-reentry",
                                    t.line,
                                    f"{fl.fn.qualname} calls {t.text}() "
                                    f"which acquires '{inner}' while "
                                    "already holding it; gs::Mutex is "
                                    "non-recursive, this self-deadlocks",
                                )
                        else:
                            fl.edges.append((holder, inner, t.line))
        i += 1


def _emit(report: Report, sf, rule: str, line: int, message: str) -> None:
    if sf is not None and sf.allowed(rule, line, line_above=True):
        return
    report.add(rule, sf.rel if sf else "?", line, message)


def _report_cycles(edges: dict[tuple[str, str], tuple[str, int]],
                   report: Report) -> None:
    graph: dict[str, set[str]] = {}
    for (a, b), _ in edges.items():
        if a != b:
            graph.setdefault(a, set()).add(b)

    reported: set[frozenset[str]] = set()

    def dfs(node: str, stack: list[str], on_stack: set[str],
            done: set[str]) -> None:
        on_stack.add(node)
        stack.append(node)
        for nxt in sorted(graph.get(node, ())):
            if nxt in on_stack:
                cycle = stack[stack.index(nxt):] + [nxt]
                key = frozenset(cycle)
                if key not in reported:
                    reported.add(key)
                    a, b = cycle[0], cycle[1]
                    rel, line = edges.get((a, b), ("?", 0))
                    report.add(
                        "lock-order-cycle", rel, line,
                        "lock acquisition cycle: "
                        + " -> ".join(cycle)
                        + "; impose one global order (or collapse to one "
                        "mutex) to rule out deadlock",
                    )
            elif nxt not in done:
                dfs(nxt, stack, on_stack, done)
        on_stack.discard(node)
        stack.pop()
        done.add(node)

    done: set[str] = set()
    for node in sorted(graph):
        if node not in done:
            dfs(node, [], set(), done)


def _check_annotations(project: Project, per_fn: list[_FnLocks],
                       report: Report) -> None:
    """A member function taking a class mutex member must advertise it
    (GS_EXCLUDES on the declaration) so -Wthread-safety sees callers."""
    for fl in per_fn:
        fn = fl.fn
        if not fn.class_name or fn.class_name not in project.classes:
            continue
        # Constructors/destructors run before/after any concurrent caller
        # can exist; clang does not expect capability annotations on them.
        if fn.name == fn.class_name or fn.name.startswith("~"):
            continue
        info = project.classes[fn.class_name]
        decl = info.methods.get(fn.name)
        member_acqs = [
            a for a in fl.acquisitions
            if a.on_this and a.node.startswith(fn.class_name + "::")
        ]
        if not member_acqs:
            continue
        if decl is not None and decl.has_lock_annotation:
            continue
        sf = project.files.get(fn.rel)
        a = member_acqs[0]
        _emit(
            report, sf, "lock-order-annotation", a.line,
            f"{fn.qualname} acquires {a.node} but its declaration has no "
            "GS_EXCLUDES/GS_REQUIRES annotation; annotate it so clang "
            "-Wthread-safety can check call sites",
        )
