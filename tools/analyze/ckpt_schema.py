"""ckpt-schema-lock: the serialized-layout invariant, proven at commit time.

Every checkpoint section is a `begin_section(name, version)` call followed
by an ordered sequence of writer ops (`w.f64(...)`, nested component
saves, shared helpers like `ckpt::save_rng`). PRs 4-7 enforced "bump
kStateVersion whenever that sequence changes" by hand review; this pass
extracts the sequence for every site, snapshots it in
tools/ckpt_schema.lock, and fails when a committed field list drifts
without its version value changing.

Three findings families:

  ckpt-schema-lock        a section's op list changed while its resolved
                          version value stayed the same (the bug class),
                          or a section-less shared helper changed while an
                          embedding section kept its version.
  ckpt-schema-lock-stale  the tree and the lock disagree for a benign
                          reason (version bumped, section added/removed/
                          moved); regenerate with --write-lock and commit.
  ckpt-save-load-mismatch the save-side and load-side op sequences of one
                          section disagree (a PR-6-style serialization
                          bug), or two sites writing the same section name
                          disagree on layout or version.

`write_lock()` refuses to regenerate over an un-bumped change, so the lock
cannot be silently "fixed" into an inconsistent state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import lexer
from .findings import Report
from .model import FunctionDef, Project, match_paren

LOCK_HEADER = (
    "# gs_analyze ckpt schema lock v1\n"
    "# One entry per checkpoint-section site (save side) and per shared\n"
    "# serialization helper; ops are the ordered writer calls that define\n"
    "# the byte layout. Regenerate after an INTENTIONAL schema change\n"
    "# (with its version bump) via: tools/gs_analyze --write-lock\n"
)

_PRIMS = frozenset({"u8", "u32", "u64", "i64", "f64", "boolean", "str"})
_NESTED = frozenset({
    "save_state", "load_state", "save_state_element", "load_state_element",
})
# Files owned by the codec itself, not schema sites.
_EXCLUDED_FILES = ("ckpt/state_io.hpp", "ckpt/state_io.cpp")


@dataclass(frozen=True)
class Op:
    kind: str  # prim name | "nested" | "helper"
    detail: str  # field expr / object expr / normalized helper name
    args: str = ""  # extra helper args (normalized), lock rendering only

    def render(self) -> str:
        if self.kind in _PRIMS:
            return f"{self.kind} {self.detail}" if self.detail else self.kind
        if self.kind == "nested":
            return f"nested {self.detail}"
        return f"helper {self.detail}" + (f" {self.args}" if self.args else "")

    def sym_key(self) -> tuple[str, str]:
        """Save/load comparison key: prim kinds match positionally; nested
        and helper ops match on their normalized target. A trailing '_' is
        stripped so a member (`storm_`) pairs with the load-side local
        (`storm`)."""
        if self.kind in _PRIMS:
            return (self.kind, "")
        return (self.kind, self.detail.rstrip("_"))


@dataclass
class Entry:
    kind: str  # "section" | "helper"
    key: str  # stable identity (qualname[@section])
    qualname: str
    rel: str
    line: int
    side: str  # "save" | "load"
    section: str = ""  # section name (sections only)
    version_expr: str = ""
    version_value: str = ""  # resolved int as str, or the raw expr
    ops: list[Op] = field(default_factory=list)

    def ops_rendered(self) -> list[str]:
        return [op.render() for op in self.ops]


def _normalize_helper(name: str) -> str:
    for prefix in ("save_", "load_", "write_", "read_"):
        if name.startswith(prefix):
            return name[len(prefix):]
    return name


def _param_names(project: Project, fn: FunctionDef, type_name: str
                 ) -> set[str]:
    """Names of parameters of the given type in fn's header span."""
    toks = project.code_tokens[fn.rel]
    names: set[str] = set()
    lo, hi = fn.header
    for i in range(lo, hi):
        if toks[i].kind == lexer.ID and toks[i].text == type_name:
            j = i + 1
            while j < hi and toks[j].text in ("&", "*", "const"):
                j += 1
            if j < hi and toks[j].kind == lexer.ID:
                names.add(toks[j].text)
    return names


def _local_names(project: Project, fn: FunctionDef, type_name: str
                 ) -> set[str]:
    """Names of locals declared `[ckpt::]TypeName name ...` in fn's body."""
    toks = project.code_tokens[fn.rel]
    names: set[str] = set()
    lo, hi = fn.body
    for i in range(lo, hi):
        if toks[i].kind == lexer.ID and toks[i].text == type_name and \
                i + 1 < hi and toks[i + 1].kind == lexer.ID:
            names.add(toks[i + 1].text)
    return names


def _expr_before(toks, i: int, lo: int) -> str:
    """Render the postfix object expression ending just before index i (the
    '.' or '->' of a member call). Walks back over components (identifiers,
    subscript/call groups) joined by '.'/'->'/'::' — and nothing else, so
    a preceding `if (...)` or `for (...)` header is never swallowed."""
    parts: list[str] = []
    j = i - 1
    expect_component = True
    while j >= lo:
        t = toks[j]
        if expect_component:
            if t.text in (")", "]"):
                closer = t.text
                opener = "(" if closer == ")" else "["
                depth = 0
                k = j
                while k >= lo:
                    if toks[k].text == closer:
                        depth += 1
                    elif toks[k].text == opener:
                        depth -= 1
                        if depth == 0:
                            break
                    k -= 1
                # A group must belong to the chain: preceded by an
                # identifier (call/subscript) or another group.
                prev = toks[k - 1] if k - 1 >= lo else None
                if prev is None or (
                    prev.kind != lexer.ID and prev.text not in (")", "]")
                ):
                    break
                parts.append("".join(x.text for x in toks[k : j + 1]))
                j = k - 1
                continue
            if t.kind == lexer.ID:
                parts.append(t.text)
                j -= 1
                expect_component = False
                continue
            break
        if t.text in (".", "->", "::"):
            parts.append(t.text)
            j -= 1
            expect_component = True
            continue
        break
    return "".join(reversed(parts))


def _call_args_text(toks, open_paren: int, skip: frozenset[str]) -> str:
    """Top-level argument expressions of the call at open_paren, joined,
    with identifiers in `skip` (the writer/reader) and a leading 'ckpt::'
    dropped, and save_/load_ prefixes normalized."""
    close = match_paren(toks, open_paren)
    args: list[str] = []
    cur: list[str] = []
    depth = 0
    for i in range(open_paren + 1, close):
        t = toks[i]
        if t.text in ("(", "[", "{"):
            depth += 1
        elif t.text in (")", "]", "}"):
            depth -= 1
        if t.text == "," and depth == 0:
            args.append("".join(cur))
            cur = []
            continue
        if t.kind == lexer.ID and t.text in skip and depth == 0:
            continue
        cur.append(_normalize_helper(t.text) if t.kind == lexer.ID else
                   t.text)
    if cur:
        args.append("".join(cur))
    return ",".join(a for a in (x.strip(",") for x in args) if a)


def extract(project: Project) -> tuple[list[Entry], Report]:
    """Extract every schema entry in the tree. The returned report carries
    extraction-time findings (unresolvable versions, nesting errors)."""
    report = Report()
    entries: list[Entry] = []
    for fn in project.functions:
        if any(fn.rel.endswith(e) for e in _EXCLUDED_FILES):
            continue
        writers = _param_names(project, fn, "StateWriter") | \
            _local_names(project, fn, "StateWriter")
        readers = _param_names(project, fn, "StateReader") | \
            _local_names(project, fn, "StateReader")
        if not writers and not readers:
            continue
        entries.extend(
            _extract_function(project, fn, writers, readers, report)
        )
    return entries, report


def _extract_function(project: Project, fn: FunctionDef, writers: set[str],
                      readers: set[str], report: Report) -> list[Entry]:
    toks = project.code_tokens[fn.rel]
    lo, hi = fn.body
    side = "save" if writers else "load"
    handles = writers | readers

    out: list[Entry] = []
    # The implicit top-level entry collects ops outside any section (shared
    # helpers like save_rng have no section of their own).
    top = Entry(kind="helper", key=fn.qualname,
                qualname=fn.qualname, rel=fn.rel, line=fn.line, side=side)
    stack: list[Entry] = [top]

    i = lo
    while i < hi:
        t = toks[i]
        if t.kind != lexer.ID:
            i += 1
            continue
        prv = toks[i - 1] if i > lo else None
        nxt = toks[i + 1] if i + 1 < hi else None

        # Member call on the writer/reader handle: H . method ( ... )
        if t.text in handles and nxt is not None and \
                nxt.text in (".", "->") and i + 3 < hi and \
                toks[i + 2].kind == lexer.ID and toks[i + 3].text == "(":
            method = toks[i + 2].text
            open_paren = i + 3
            close = match_paren(toks, open_paren)
            if method == "begin_section":
                name_tok = toks[open_paren + 1]
                name = name_tok.text if name_tok.kind == lexer.STR else "?"
                # version expression: tokens after the first ','
                ver_toks = []
                depth = 0
                seen_comma = False
                for k in range(open_paren + 1, close):
                    tt = toks[k]
                    if tt.text in ("(", "[", "{"):
                        depth += 1
                    elif tt.text in (")", "]", "}"):
                        depth -= 1
                    elif tt.text == "," and depth == 0:
                        seen_comma = True
                        continue
                    if seen_comma:
                        ver_toks.append(tt.text)
                ver_expr = "".join(ver_toks)
                entry = Entry(
                    kind="section",
                    key=f"{fn.qualname}@{name}",
                    qualname=fn.qualname, rel=fn.rel, line=t.line,
                    side=side, section=name, version_expr=ver_expr,
                    version_value=_resolve_version(project, fn, ver_expr,
                                                   report, t.line),
                )
                stack.append(entry)
            elif method == "end_section":
                if len(stack) > 1:
                    out.append(stack.pop())
                else:
                    report.add(
                        "ckpt-schema-lock", fn.rel, t.line,
                        f"{fn.qualname}: end_section() without a matching "
                        "begin_section in this function",
                    )
            elif method in _PRIMS:
                detail = ""
                if t.text in writers:
                    detail = "".join(
                        x.text for x in toks[open_paren + 1 : close]
                    )
                stack[-1].ops.append(Op(method, detail))
            i = close + 1
            continue

        # Nested component save/load: expr . save_state ( H )
        if t.text in _NESTED and nxt is not None and nxt.text == "(" and \
                prv is not None and prv.text in (".", "->"):
            close = match_paren(toks, i + 1)
            arg_ids = {x.text for x in toks[i + 2 : close]
                       if x.kind == lexer.ID}
            if arg_ids & handles:
                obj = _expr_before(toks, i - 1, lo)
                stack[-1].ops.append(Op("nested", obj))
            i = close + 1
            continue

        # Free helper call: name ( ..., H, ... ) with H passed bare.
        if nxt is not None and nxt.text == "(" and t.text not in handles \
                and (prv is None or prv.text not in (".", "->")):
            open_paren = i + 1
            close = match_paren(toks, open_paren)
            passes_handle = False
            for k in range(open_paren + 1, close):
                if toks[k].kind == lexer.ID and toks[k].text in handles:
                    follow = toks[k + 1].text if k + 1 < close else ""
                    if follow not in (".", "->"):
                        passes_handle = True
                        break
            if passes_handle:
                stack[-1].ops.append(Op(
                    "helper", _normalize_helper(t.text),
                    _call_args_text(toks, open_paren, frozenset(handles)),
                ))
                i = close + 1
                continue
        i += 1

    while len(stack) > 1:
        entry = stack.pop()
        report.add(
            "ckpt-schema-lock", entry.rel, entry.line,
            f"{fn.qualname}: section '{entry.section}' is never closed "
            "with end_section() in this function",
        )
        out.append(entry)
    if top.ops:
        out.append(top)
    return out


def _resolve_version(project: Project, fn: FunctionDef, expr: str,
                     report: Report, line: int) -> str:
    expr = expr.strip()
    if not expr:
        return "?"
    # Literal?
    try:
        return str(int(expr.rstrip("uUlL"), 0))
    except ValueError:
        pass
    # Qualified constant Class::kName, or bare kName resolved through the
    # enclosing class and its bases.
    if "::" in expr:
        cls, _, name = expr.rpartition("::")
        value = project.resolve_constant(name.strip(), cls.strip())
    else:
        value = project.resolve_constant(expr, fn.class_name)
    if value is None:
        report.add(
            "ckpt-schema-lock", fn.rel, line,
            f"{fn.qualname}: cannot resolve schema version expression "
            f"'{expr}' to a value; declare it as a constexpr integer",
        )
        return expr
    return str(value)


# --- consistency checks (lock-independent) ---------------------------------


def check_consistency(entries: list[Entry], report: Report) -> None:
    """Save/load symmetry per section and helper, and cross-site layout
    agreement for sections sharing a name."""
    sections: dict[str, list[Entry]] = {}
    helpers: dict[str, list[Entry]] = {}
    for e in entries:
        if e.kind == "section":
            sections.setdefault(e.section, []).append(e)
        else:
            helpers.setdefault(_normalize_helper(
                e.qualname.rsplit("::", 1)[-1]), []).append(e)

    for name, group in sorted(sections.items()):
        saves = [e for e in group if e.side == "save"]
        loads = [e for e in group if e.side == "load"]
        if not saves or not loads:
            anchor = group[0]
            missing = "load" if not loads else "save"
            report.add(
                "ckpt-save-load-mismatch", anchor.rel, anchor.line,
                f"section '{name}' has no {missing}-side counterpart; "
                "checkpoints written here can never round-trip",
            )
            continue
        # All sites of one section name must agree on version and layout.
        ref = saves[0]
        for e in group[1:]:
            if e.version_value != ref.version_value:
                report.add(
                    "ckpt-save-load-mismatch", e.rel, e.line,
                    f"section '{name}' is written with version "
                    f"{ref.version_value} at {ref.qualname} but "
                    f"{e.version_value} at {e.qualname}; all sites of one "
                    "section must share one schema version",
                )
        for other in saves[1:]:
            _compare_ops(ref, other, name, report)
        for ld in loads:
            _compare_ops(ref, ld, name, report)

    for name, group in sorted(helpers.items()):
        saves = [e for e in group if e.side == "save"]
        loads = [e for e in group if e.side == "load"]
        if len(saves) == 1 and len(loads) == 1:
            _compare_ops(saves[0], loads[0], f"helper '{name}'", report)


def _compare_ops(a: Entry, b: Entry, what: str, report: Report) -> None:
    ka = [op.sym_key() for op in a.ops]
    kb = [op.sym_key() for op in b.ops]
    if ka == kb:
        return
    # Point at the first divergence for a debuggable message.
    idx = next(
        (i for i, (x, y) in enumerate(zip(ka, kb)) if x != y),
        min(len(ka), len(kb)),
    )
    da = a.ops[idx].render() if idx < len(a.ops) else "(end)"
    db = b.ops[idx].render() if idx < len(b.ops) else "(end)"
    report.add(
        "ckpt-save-load-mismatch", b.rel, b.line,
        f"{what}: op sequence of {b.qualname} diverges from "
        f"{a.qualname} at op {idx}: '{da}' vs '{db}' — writer and reader "
        "(or sibling writers) disagree on the byte layout",
    )


# --- lock rendering / parsing / comparison ---------------------------------


def render_lock(entries: list[Entry]) -> str:
    """Canonical lock text over the save-side entries."""
    lines = [LOCK_HEADER]
    for e in sorted((e for e in entries if e.side == "save"),
                    key=lambda e: e.key):
        if e.kind == "section":
            lines.append(f"section {e.section} v{e.version_value} "
                         f"@ {e.key} ({e.rel})")
        else:
            lines.append(f"helper @ {e.key} ({e.rel})")
        for op in e.ops:
            lines.append(f"  {op.render()}")
        lines.append("end")
    return "\n".join(lines) + "\n"


@dataclass
class LockEntry:
    kind: str
    key: str
    section: str
    version_value: str
    ops: list[str]


def parse_lock(text: str) -> dict[str, LockEntry]:
    entries: dict[str, LockEntry] = {}
    cur: LockEntry | None = None
    for raw in text.splitlines():
        line = raw.rstrip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("section "):
            rest = line[len("section "):]
            head, _, key_part = rest.partition(" @ ")
            name, _, ver = head.rpartition(" v")
            key = key_part.split(" (")[0]
            cur = LockEntry("section", key, name, ver, [])
            entries[key] = cur
        elif line.startswith("helper @ "):
            key = line[len("helper @ "):].split(" (")[0]
            cur = LockEntry("helper", key, "", "", [])
            entries[key] = cur
        elif line == "end":
            cur = None
        elif cur is not None and line.startswith("  "):
            cur.ops.append(line[2:])
    return entries


def _embedding_sections(entries: list[Entry], helper_key: str
                        ) -> list[Entry]:
    """Save-side sections whose op lists (transitively) reference the
    helper, matched on the normalized base name."""
    base = _normalize_helper(helper_key.rsplit("::", 1)[-1])
    by_name: dict[str, list[Entry]] = {}
    for e in entries:
        if e.side != "save":
            continue
        name = _normalize_helper(e.qualname.rsplit("::", 1)[-1])
        by_name.setdefault(name, []).append(e)

    def refs(entry: Entry, target: str, seen: frozenset[str]) -> bool:
        for op in entry.ops:
            hay = (op.detail + " " + op.args)
            if target in hay.replace(",", " ").replace("(", " ").split() or \
                    op.detail == target:
                return True
            if op.kind == "helper" and op.detail not in seen:
                for nested in by_name.get(op.detail, []):
                    if refs(nested, target, seen | {op.detail}):
                        return True
        return False

    return [
        e for e in entries
        if e.kind == "section" and e.side == "save" and
        refs(e, base, frozenset())
    ]


def compare_with_lock(entries: list[Entry], lock_text: str,
                      report: Report) -> None:
    """The commit-time invariant: layout drift without a version bump is an
    error; any other disagreement with the lock is stale-lock drift."""
    locked = parse_lock(lock_text)
    current = {
        e.key: e for e in entries if e.side == "save"
    }

    for key, e in sorted(current.items()):
        le = locked.get(key)
        if le is None:
            report.add(
                "ckpt-schema-lock-stale", e.rel, e.line,
                f"'{key}' is not in tools/ckpt_schema.lock; regenerate "
                "the lock (tools/gs_analyze --write-lock) and commit it",
            )
            continue
        ops_changed = le.ops != e.ops_rendered()
        if e.kind == "section":
            if ops_changed and le.version_value == e.version_value:
                report.add(
                    "ckpt-schema-lock", e.rel, e.line,
                    f"section '{e.section}' ({e.qualname}): serialized "
                    "field list changed but the schema version is still "
                    f"{e.version_value}; bump the version constant "
                    f"({e.version_expr or 'kStateVersion'}) and regenerate "
                    "the lock",
                )
            elif ops_changed or le.version_value != e.version_value:
                report.add(
                    "ckpt-schema-lock-stale", e.rel, e.line,
                    f"section '{e.section}' ({e.qualname}) changed with a "
                    "version bump; regenerate tools/ckpt_schema.lock "
                    "(tools/gs_analyze --write-lock) and commit it",
                )
        elif ops_changed:
            embeds = _embedding_sections(entries, key)
            unbumped = [
                s for s in embeds
                if locked.get(s.key) is not None and
                locked[s.key].version_value == s.version_value
            ]
            if unbumped:
                names = ", ".join(
                    f"'{s.section}' (v{s.version_value})" for s in unbumped
                )
                report.add(
                    "ckpt-schema-lock", e.rel, e.line,
                    f"shared serialization helper '{key}' changed its op "
                    f"list but embedding section(s) {names} kept their "
                    "schema version; bump them and regenerate the lock",
                )
            else:
                report.add(
                    "ckpt-schema-lock-stale", e.rel, e.line,
                    f"helper '{key}' changed alongside version bumps; "
                    "regenerate tools/ckpt_schema.lock and commit it",
                )

    for key, le in sorted(locked.items()):
        if key not in current:
            report.add(
                "ckpt-schema-lock-stale", "tools/ckpt_schema.lock", 1,
                f"'{key}' is in the lock but no longer in the tree; "
                "regenerate tools/ckpt_schema.lock and commit it",
            )


def lock_blockers(entries: list[Entry], lock_text: str) -> Report:
    """Findings that must block --write-lock: hard ckpt-schema-lock errors
    (un-bumped drift), not stale-lock drift."""
    report = Report()
    compare_with_lock(entries, lock_text, report)
    report.findings = [
        f for f in report.findings if f.rule == "ckpt-schema-lock"
    ]
    return report
