"""fingerprint-coverage: every scenario-shaping field reaches the digest.

scenario_fingerprint (src/sim/scenario.cpp) keys checkpoint cells and
resume-integrity checks; a config field that is added to Scenario (or any
struct it embeds) but never mixed into the digest silently aliases two
different experiments onto one checkpoint cell. This pass walks every field
of the fingerprinted struct family and requires that its name appears in
the fingerprint function's body, or that the declaration carries an
explicit marker:

  // gs-analyze: fingerprint-exempt(<why>)   field cannot shape results
  // gs-analyze: fingerprint-via(<how>)      field is mixed in indirectly
                                             (e.g. through an accessor loop)

Matching is by field name against the identifier set of the fingerprint
body — deliberately permissive (a same-named field of another struct also
matching is benign; a *missing* field never matches), so every finding is
real: the field text is nowhere in the digest.
"""

from __future__ import annotations

from .findings import Report
from .model import Project

RULE = "fingerprint-coverage"

# The digest entry point and the struct family it must cover: Scenario and
# everything Scenario embeds that parameterizes a run.
FINGERPRINT_FUNCTION = "scenario_fingerprint"
FINGERPRINTED_STRUCTS = (
    "Scenario",
    "GreenConfig",
    "AppDescriptor",
    "QosSpec",
    "FaultSpec",
    "CorrelationSpec",
)


def run(project: Project, report: Report) -> None:
    body_ids = _fingerprint_identifiers(project)
    if body_ids is None:
        # The digest function disappearing IS a finding — the whole
        # resume-integrity story hangs off it.
        report.add(
            RULE, "src/sim/scenario.cpp", 1,
            f"fingerprint function '{FINGERPRINT_FUNCTION}' not found; "
            "checkpoint cells are keyed by it (see sim/scenario.hpp)",
        )
        return
    for struct in FINGERPRINTED_STRUCTS:
        info = project.classes.get(struct)
        if info is None:
            report.add(
                RULE, "src/sim/scenario.hpp", 1,
                f"fingerprinted struct '{struct}' not found in src/; "
                "update FINGERPRINTED_STRUCTS in tools/analyze/"
                "fingerprint.py if it was renamed",
            )
            continue
        sf = project.files.get(info.rel)
        for fld in info.fields:
            if fld.name in body_ids:
                continue
            if sf is not None and _marked(sf, fld.line):
                continue
            report.add(
                RULE, info.rel, fld.line,
                f"{struct}::{fld.name} is not mixed into "
                f"{FINGERPRINT_FUNCTION}(); two scenarios differing only "
                "in this field would share a checkpoint cell. Mix it in, "
                "or mark the field '// gs-analyze: fingerprint-exempt"
                "(<why>)' / 'fingerprint-via(<how>)'",
            )


def _fingerprint_identifiers(project: Project) -> set[str] | None:
    for fn in project.functions:
        if fn.name == FINGERPRINT_FUNCTION and fn.class_name is None:
            toks = project.code_tokens[fn.rel]
            lo, hi = fn.body
            from . import lexer

            return {t.text for t in toks[lo:hi] if t.kind == lexer.ID}
    return None


def _marked(sf, line: int) -> bool:
    """Marker on the field's line (trailing comment) or the line above."""
    return bool(sf.fingerprint_exempt_lines & {line, line - 1})
