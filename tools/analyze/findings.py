"""Findings: one diagnostic per (rule, file, line), renderable as the
legacy human text format or as machine-readable JSON for CI annotations."""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    rule: str
    rel: str
    line: int
    message: str

    def text(self) -> str:
        return f"{self.rel}:{self.line}: [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "file": self.rel,
            "line": self.line,
            "message": self.message,
        }


@dataclass
class Report:
    findings: list[Finding] = field(default_factory=list)
    files_analyzed: int = 0
    rules_run: list[str] = field(default_factory=list)

    def add(self, rule: str, rel: str, line: int, message: str) -> None:
        self.findings.append(Finding(rule, rel, line, message))

    def sorted_findings(self) -> list[Finding]:
        return sorted(
            self.findings, key=lambda f: (f.rel, f.line, f.rule, f.message)
        )

    def render_text(self) -> str:
        lines = [f.text() for f in self.sorted_findings()]
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "tool": "gs_analyze",
                "files_analyzed": self.files_analyzed,
                "rules": self.rules_run,
                "finding_count": len(self.findings),
                "findings": [f.to_json() for f in self.sorted_findings()],
            },
            indent=2,
        )
