"""Analysis driver: load src/, build the project model, run every pass.

The engine owns pass ordering and the two whole-project invariants that
need it: the checkpoint schema lock (extraction feeds both the consistency
check and the lock comparison) and stale-suppression reporting (an allow()
comment that silenced nothing is itself a finding, so suppressions cannot
outlive the code they excused — this runs last, after every rule has had
the chance to mark its suppressions used).
"""

from __future__ import annotations

from pathlib import Path

from . import (
    ckpt_schema,
    durable_io,
    fingerprint,
    lock_order,
    rng_streams,
    rules_legacy,
    source,
)
from .findings import Report
from .model import build

DEFAULT_LOCK = Path("tools") / "ckpt_schema.lock"

NEW_RULES = (
    "ckpt-schema-lock",
    "ckpt-schema-lock-stale",
    "ckpt-save-load-mismatch",
    "durable-io-failpoint",
    "fingerprint-coverage",
    "lock-order-cycle",
    "lock-order-reentry",
    "lock-order-annotation",
    "rng-stream-ownership",
    "stale-suppression",
)
ALL_RULES = rules_legacy.LEGACY_RULES + NEW_RULES


def load_files(root: Path, paths: list[str] | None = None
               ) -> dict[str, source.SourceFile]:
    files: dict[str, source.SourceFile] = {}
    targets = [Path(p) for p in (paths or ["src"])]
    for target in targets:
        base = target if target.is_absolute() else root / target
        candidates = (
            [base] if base.is_file()
            else sorted(base.rglob("*.hpp")) + sorted(base.rglob("*.cpp"))
            + sorted(base.rglob("*.h"))
        )
        for p in candidates:
            try:
                rel = p.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = p.as_posix()
            files[rel] = source.load(p, rel)
    return files


def analyze(root: Path, paths: list[str] | None = None,
            lock_path: Path | None = None, legacy_only: bool = False
            ) -> tuple[Report, str]:
    """Run the pass stack. Returns (report, current lock text) — the lock
    text is what --write-lock would write, rendered whether or not the
    comparison passed."""
    files = load_files(root, paths)
    project = build(files)
    report = Report()
    report.files_analyzed = len(files)
    report.rules_run = list(
        rules_legacy.LEGACY_RULES if legacy_only else ALL_RULES
    )

    rules_legacy.run(project, report)

    lock_text = ""
    if not legacy_only:
        entries, extract_report = ckpt_schema.extract(project)
        report.findings.extend(extract_report.findings)
        ckpt_schema.check_consistency(entries, report)
        lock_text = ckpt_schema.render_lock(entries)

        lock_file = lock_path if lock_path is not None else \
            root / DEFAULT_LOCK
        if lock_file.exists():
            ckpt_schema.compare_with_lock(
                entries, lock_file.read_text(encoding="utf-8"), report
            )
        else:
            report.add(
                "ckpt-schema-lock-stale", DEFAULT_LOCK.as_posix(), 1,
                "tools/ckpt_schema.lock does not exist; generate it with "
                "tools/gs_analyze --write-lock and commit it",
            )

        durable_io.run(project, report)
        fingerprint.run(project, report)
        lock_order.run(project, report)
        rng_streams.run(project, report)

    _report_stale_suppressions(files, report, set(report.rules_run))
    return report, lock_text


def write_lock(root: Path, lock_path: Path | None = None,
               paths: list[str] | None = None) -> tuple[Report, bool]:
    """Regenerate the lock file. Refuses (returns written=False) when the
    tree carries hard ckpt-schema-lock violations — a layout change without
    its version bump must not be lockable."""
    files = load_files(root, paths)
    project = build(files)
    entries, extract_report = ckpt_schema.extract(project)

    lock_file = lock_path if lock_path is not None else root / DEFAULT_LOCK
    blockers = Report()
    blockers.findings.extend(extract_report.findings)
    ckpt_schema.check_consistency(entries, blockers)
    if lock_file.exists():
        blockers.findings.extend(
            ckpt_schema.lock_blockers(
                entries, lock_file.read_text(encoding="utf-8")
            ).findings
        )
    if blockers.findings:
        return blockers, False

    lock_file.parent.mkdir(parents=True, exist_ok=True)
    lock_file.write_text(ckpt_schema.render_lock(entries),
                         encoding="utf-8")
    return blockers, True


def _report_stale_suppressions(files: dict[str, source.SourceFile],
                               report: Report,
                               rules_run: set[str]) -> None:
    for sf in files.values():
        for sup in sf.suppressions:
            if sup.used:
                continue
            # Only judge suppressions whose rules actually ran (the legacy
            # shim must not call a new-engine suppression stale).
            if not sup.rules <= rules_run:
                continue
            rules = ", ".join(sorted(sup.rules))
            report.add(
                "stale-suppression", sf.rel, sup.line,
                f"allow({rules}) suppresses nothing — the finding it "
                "excused is gone; delete the comment so real findings "
                "cannot hide behind it",
            )
