"""gs_analyze: cross-file static analysis engine for the GreenSprint repo.

A proper C++ lexer (comments, string/char/raw-string literals, preprocessor
awareness) feeds a project-wide model (classes, functions, constants) over
which both the legacy line-local gs-lint rules and four cross-file passes
run:

  ckpt-schema-lock      every begin_section site's serialized field list is
                        snapshotted in tools/ckpt_schema.lock; changing a
                        field list without bumping its schema version fails.
  fingerprint-coverage  every field of the scenario/correlation/config
                        structs must be mixed into scenario_fingerprint or
                        carry an explicit exemption comment.
  lock-order            the static gs::Mutex acquisition graph must be
                        acyclic, and lock-taking methods must be annotated.
  rng-stream-ownership  each named gs::Rng stream tag is drawn by exactly
                        one file.

Entry points: tools/gs_analyze (CLI) and tools/gs_lint.py (legacy shim).
"""

__all__ = [
    "cli",
    "engine",
    "lexer",
    "model",
    "findings",
]
