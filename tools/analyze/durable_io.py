"""durable-io-failpoint: durability code must keep a failpoint in view.

Files bannered `// gs:durable-io` form the crash-consistency surface:
every write they make durable is exactly what the chaos lane needs to be
able to interrupt. A raw fsync/fdatasync/rename call in such a file that
has no failpoint site anywhere in view is a durability path the chaos
lane cannot exercise — route the write through gs::io (common/io.hpp),
whose entry points carry a site name, or consult a failpoint site
directly.

"In view" is file-level, like tsdb-chunk-version: any reference to the
failpoint machinery (the `failpoint` namespace, the GS_FAILPOINT macro,
or a kFailpoint* site constant) satisfies the rule for the whole file.
Matching runs on the token stream, so occurrences inside strings and
comments never fire.
"""

from __future__ import annotations

from . import lexer
from .findings import Report
from .model import Project
from .source import SourceFile

RULE = "durable-io-failpoint"

_DURABLE_CALLS = frozenset({"fsync", "fdatasync", "rename", "renameat"})

_MSG = (
    "raw {call}() in gs:durable-io code with no failpoint site in view; "
    "route the write through gs::io (common/io.hpp) or consult a "
    "failpoint site so the chaos lane can interrupt this durability path"
)


def run(project: Project, report: Report) -> None:
    for sf in project.files.values():
        if not sf.durable_io:
            continue
        _check_file(project, sf, report)


def _check_file(project: Project, sf: SourceFile, report: Report) -> None:
    toks = project.code_tokens.get(sf.rel) or sf.code_tokens()
    n = len(toks)

    calls: list[tuple[int, str]] = []  # (line, callee)
    failpoint_in_view = False
    for i, t in enumerate(toks):
        if t.kind != lexer.ID:
            continue
        if t.text == "failpoint" or t.text == "GS_FAILPOINT" or \
                t.text.startswith("kFailpoint"):
            failpoint_in_view = True
        if t.text in _DURABLE_CALLS and i + 1 < n and \
                toks[i + 1].text == "(":
            calls.append((t.line, t.text))

    if failpoint_in_view:
        return
    for line, callee in calls:
        if not sf.allowed(RULE, line):
            report.add(RULE, sf.rel, line, _MSG.format(call=callee))
