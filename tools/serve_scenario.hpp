// Shared scenario flags for greensprintd and gs_feed. Both tools must
// build byte-identical DayRunConfigs from the same flags — the feed trace
// gs_feed generates is only valid against a daemon configured for the
// same campaign (the hello fingerprint check enforces this at runtime).
//
//   --days N            campaign length in days           (default 1)
//   --servers N         green servers in the cluster      (default 3)
//   --strategy NAME     sprinting strategy                (default hybrid)
//   --panels N          PV panels                          (default 3)
//   --background F      background load fraction          (default 0.3)
//   --solar-seed N      irradiance noise seed             (default 42)
//   --faults SPEC       faults::FaultSpec::parse grammar  (default none)
#pragma once

#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "core/strategy.hpp"
#include "faults/fault_spec.hpp"
#include "sim/day_runner.hpp"

namespace gs::tools {

inline constexpr const char* kScenarioUsage =
    "[--days N] [--servers N] [--strategy NAME] [--panels N]\n"
    "  [--background F] [--solar-seed N] [--faults SPEC]";

/// Build the campaign config from scenario flags; exits(2) on a bad
/// strategy name so both tools fail the same way.
inline sim::DayRunConfig scenario_from_cli(const CliArgs& args) {
  sim::DayRunConfig cfg;
  cfg.days = args.get("days", cfg.days);
  cfg.cluster.servers = args.get("servers", cfg.cluster.servers);
  cfg.panels = args.get("panels", cfg.panels);
  cfg.background_load = args.get("background", cfg.background_load);
  cfg.solar_seed =
      std::uint64_t(args.get("solar-seed", int(cfg.solar_seed)));
  cfg.daily_bursts = sim::default_daily_bursts();
  const std::string name =
      args.get("strategy", std::string(core::to_string(cfg.cluster.strategy)));
  const auto kind = core::strategy_from_string(name);
  if (!kind) {
    std::fprintf(stderr, "unknown strategy '%s'\n", name.c_str());
    std::exit(2);
  }
  cfg.cluster.strategy = *kind;
  const std::string spec = args.get("faults", std::string());
  if (!spec.empty()) cfg.faults = faults::FaultSpec::parse(spec);
  return cfg;
}

}  // namespace gs::tools
