// gs_feed: feed-trace generator and replay client for greensprintd.
//
// Generate: gs_feed --gen --trace FILE [scenario flags]
//   Writes one GSRV/1 feed payload per line, produced by
//   sim::day_feed_plan() with shortest round-trip doubles — replaying the
//   file drives the daemon bit-identically to the batch run.
//
// Replay:  gs_feed --play --trace FILE --socket PATH [--until EPOCH]
//            [--strategy-at EPOCH:NAME] [--fault-at EPOCH:SPEC]
//            [--stat-at EPOCH] [--drain]
//   Connects, handshakes, and streams the trace from the daemon's current
//   epoch (the hello reply carries it, so replaying the full file after a
//   daemon restart just works — consumed epochs are skipped client-side
//   and would be Stale-dropped server-side anyway). --until stops before
//   the named epoch (partial segment ahead of a planned restart). The
//   *-at hooks inject one control command just before that epoch's feed.
//   --drain sends `drain` after the last event and waits for the reply,
//   printing the daemon's final fingerprint.
//
// Poll:    gs_feed --stat --socket PATH
//            one-shot: connect, print the daemon's stat reply, exit.
//          gs_feed --wait-epoch N --socket PATH [--timeout S]
//            poll stat until the daemon's next epoch reaches N (or the
//            campaign completes); replaces fixed sleeps in e2e scripts.
//
// All connecting modes retry the connect with exponential backoff and
// seeded jitter (--retry-seed), so callers can launch the daemon and the
// client concurrently without racing the socket bind.
//
// Exit codes: 0 ok, 2 usage, 3 connection lost mid-replay (daemon died),
// 4 --wait-epoch timed out.
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve_scenario.hpp"
#include "sim/day_runner.hpp"

namespace {

using namespace gs;

int connect_with_retry(const CliArgs& args, const std::string& path) {
  serve::ConnectRetryOptions opts;
  opts.seed = std::uint64_t(args.get("retry-seed", 0));
  const int fd = serve::connect_unix_retry(path, opts);
  if (fd < 0) {
    std::fprintf(stderr, "gs_feed: cannot connect %s: %s\n", path.c_str(),
                 std::strerror(errno));
  }
  return fd;
}

bool send_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += std::size_t(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Block until one complete frame arrives; nullopt on EOF/error.
std::optional<std::string> read_frame(int fd, serve::FrameDecoder& dec) {
  std::string payload;
  char buf[4096];
  for (;;) {
    if (dec.next(payload)) return payload;
    if (dec.error()) return std::nullopt;
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      dec.feed(std::string_view(buf, std::size_t(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return std::nullopt;
  }
}

/// "EPOCH:REST" hook argument.
struct Hook {
  std::uint64_t epoch = 0;
  std::string rest;
};

std::optional<Hook> parse_hook(const std::string& s, bool with_rest) {
  const auto colon = s.find(':');
  if (with_rest && colon == std::string::npos) return std::nullopt;
  const std::string head = s.substr(0, colon);
  const auto epoch = serve::parse_u64(head);
  if (!epoch) return std::nullopt;
  Hook h;
  h.epoch = *epoch;
  if (colon != std::string::npos) h.rest = s.substr(colon + 1);
  return h;
}

int generate(const CliArgs& args, const std::string& trace_path) {
  const sim::DayRunConfig cfg = tools::scenario_from_cli(args);
  const std::vector<sim::LiveEpoch> plan = sim::day_feed_plan(cfg);
  std::ofstream out(trace_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "gs_feed: cannot write %s\n", trace_path.c_str());
    return 1;
  }
  std::uint64_t seq = 0;
  for (const sim::LiveEpoch& e : plan) {
    serve::FeedEvent ev;
    ev.seq = seq++;
    ev.lambda = e.lambda;
    ev.irradiance = e.irradiance;
    ev.burst = e.in_burst;
    out << serve::format_feed(ev) << '\n';
  }
  out.flush();
  if (!out) {
    std::fprintf(stderr, "gs_feed: write to %s failed\n",
                 trace_path.c_str());
    return 1;
  }
  std::printf("gs_feed: wrote %llu epochs to %s\n",
              (unsigned long long)seq, trace_path.c_str());
  return 0;
}

int play(const CliArgs& args, const std::string& trace_path) {
  const std::string socket_path = args.get("socket", std::string());
  if (socket_path.empty()) {
    std::fprintf(stderr, "gs_feed: --play needs --socket\n");
    return 2;
  }
  std::ifstream in(trace_path);
  if (!in) {
    std::fprintf(stderr, "gs_feed: cannot read %s\n", trace_path.c_str());
    return 2;
  }
  std::optional<Hook> strategy_at, fault_at, stat_at;
  if (args.has("strategy-at")) {
    strategy_at = parse_hook(args.get("strategy-at", std::string()), true);
    if (!strategy_at) {
      std::fprintf(stderr, "gs_feed: --strategy-at wants EPOCH:NAME\n");
      return 2;
    }
  }
  if (args.has("fault-at")) {
    fault_at = parse_hook(args.get("fault-at", std::string()), true);
    if (!fault_at) {
      std::fprintf(stderr, "gs_feed: --fault-at wants EPOCH:SPEC\n");
      return 2;
    }
  }
  if (args.has("stat-at")) {
    stat_at = parse_hook(args.get("stat-at", std::string()), false);
    if (!stat_at) {
      std::fprintf(stderr, "gs_feed: --stat-at wants EPOCH\n");
      return 2;
    }
  }
  const std::uint64_t until =
      args.has("until")
          ? std::uint64_t(args.get("until", 0))
          : ~std::uint64_t(0);

  const int fd = connect_with_retry(args, socket_path);
  if (fd < 0) return 3;
  serve::FrameDecoder dec;
  if (!send_all(fd, serve::encode_frame("hello " + serve::protocol_id()))) {
    ::close(fd);
    return 3;
  }
  const auto hello = read_frame(fd, dec);
  if (!hello || hello->rfind("ok hello ", 0) != 0) {
    std::fprintf(stderr, "gs_feed: bad hello reply: %s\n",
                 hello ? hello->c_str() : "(connection lost)");
    ::close(fd);
    return 3;
  }
  std::printf("gs_feed: %s\n", hello->c_str());
  // "ok hello GSRV/1 epoch <k> fp <hex>"
  std::uint64_t resume_epoch = 0;
  {
    const std::string marker = " epoch ";
    const auto at = hello->find(marker);
    if (at != std::string::npos) {
      const auto start = at + marker.size();
      const auto end = hello->find(' ', start);
      const auto v = serve::parse_u64(hello->substr(start, end - start));
      if (v) resume_epoch = *v;
    }
  }

  std::uint64_t sent = 0;
  std::string line;
  bool lost = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const serve::ParseOutcome out = serve::parse_request(line);
    if (!out.request || out.request->kind != serve::Request::Kind::Feed) {
      std::fprintf(stderr, "gs_feed: bad trace line: %s\n", line.c_str());
      ::close(fd);
      return 2;
    }
    const std::uint64_t seq = out.request->feed.seq;
    if (seq >= until) break;
    if (seq < resume_epoch) continue;  // daemon already consumed it
    const auto hook = [&](const std::optional<Hook>& h, const char* verb,
                          bool wait_reply) -> bool {
      if (!h || h->epoch != seq) return true;
      std::string cmd = verb;
      if (!h->rest.empty()) cmd += " " + h->rest;
      if (!send_all(fd, serve::encode_frame(cmd))) return false;
      if (wait_reply) {
        const auto reply = read_frame(fd, dec);
        if (!reply) return false;
        std::printf("gs_feed: %s\n", reply->c_str());
      }
      return true;
    };
    if (!hook(strategy_at, "strategy", true) ||
        !hook(fault_at, "fault-inject", true) ||
        !hook(stat_at, "stat", true)) {
      lost = true;
      break;
    }
    if (!send_all(fd, serve::encode_frame(line))) {
      lost = true;
      break;
    }
    ++sent;
  }
  if (lost) {
    std::fprintf(stderr, "gs_feed: connection lost after %llu events\n",
                 (unsigned long long)sent);
    ::close(fd);
    return 3;
  }
  std::printf("gs_feed: sent %llu events\n", (unsigned long long)sent);

  if (args.flag("drain")) {
    if (!send_all(fd, serve::encode_frame("drain"))) {
      ::close(fd);
      return 3;
    }
    for (;;) {
      const auto reply = read_frame(fd, dec);
      if (!reply) {
        std::fprintf(stderr, "gs_feed: connection lost awaiting drain\n");
        ::close(fd);
        return 3;
      }
      std::printf("gs_feed: %s\n", reply->c_str());
      if (reply->rfind("ok drain ", 0) == 0) break;
    }
  }
  ::close(fd);
  return 0;
}

/// Connect + hello handshake for the polling modes; -1 on failure.
int open_session(const CliArgs& args, const std::string& socket_path,
                 serve::FrameDecoder& dec) {
  const int fd = connect_with_retry(args, socket_path);
  if (fd < 0) return -1;
  if (!send_all(fd, serve::encode_frame("hello " + serve::protocol_id()))) {
    ::close(fd);
    return -1;
  }
  const auto hello = read_frame(fd, dec);
  if (!hello || hello->rfind("ok hello ", 0) != 0) {
    std::fprintf(stderr, "gs_feed: bad hello reply: %s\n",
                 hello ? hello->c_str() : "(connection lost)");
    ::close(fd);
    return -1;
  }
  return fd;
}

/// "<key> <u64>" field from a stat reply; nullopt when absent.
std::optional<std::uint64_t> stat_field(const std::string& reply,
                                        const std::string& key) {
  const std::string marker = " " + key + " ";
  const auto at = reply.find(marker);
  if (at == std::string::npos) return std::nullopt;
  const auto start = at + marker.size();
  const auto end = reply.find(' ', start);
  return serve::parse_u64(reply.substr(start, end - start));
}

int stat_once(const CliArgs& args, const std::string& socket_path) {
  serve::FrameDecoder dec;
  const int fd = open_session(args, socket_path, dec);
  if (fd < 0) return 3;
  int rc = 3;
  if (send_all(fd, serve::encode_frame("stat"))) {
    const auto reply = read_frame(fd, dec);
    if (reply) {
      std::printf("gs_feed: %s\n", reply->c_str());
      rc = 0;
    }
  }
  ::close(fd);
  return rc;
}

/// Poll stat until the daemon's next epoch reaches `target` (or the
/// campaign completes — a finished daemon never advances further).
int wait_epoch(const CliArgs& args, const std::string& socket_path) {
  const auto target = std::uint64_t(args.get("wait-epoch", 0));
  const double timeout_s = args.get("timeout", 30.0);
  serve::FrameDecoder dec;
  const int fd = open_session(args, socket_path, dec);
  if (fd < 0) return 3;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  for (;;) {
    if (!send_all(fd, serve::encode_frame("stat"))) break;
    const auto reply = read_frame(fd, dec);
    if (!reply) break;
    const auto epoch = stat_field(*reply, "epoch");
    const auto completed = stat_field(*reply, "completed");
    if ((epoch && *epoch >= target) || (completed && *completed != 0)) {
      std::printf("gs_feed: %s\n", reply->c_str());
      ::close(fd);
      return 0;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr,
                   "gs_feed: timed out waiting for epoch %llu (at %llu)\n",
                   (unsigned long long)target,
                   (unsigned long long)(epoch ? *epoch : 0));
      ::close(fd);
      return 4;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "gs_feed: connection lost awaiting epoch %llu\n",
               (unsigned long long)target);
  ::close(fd);
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  const CliArgs args(argc, argv);
  const std::string trace = args.get("trace", std::string());
  const std::string socket_path = args.get("socket", std::string());
  if (args.flag("stat") || args.has("wait-epoch")) {
    if (socket_path.empty()) {
      std::fprintf(stderr, "gs_feed: --stat/--wait-epoch need --socket\n");
      return 2;
    }
    return args.flag("stat") ? stat_once(args, socket_path)
                             : wait_epoch(args, socket_path);
  }
  if (trace.empty() || (!args.flag("gen") && !args.flag("play"))) {
    std::fprintf(stderr,
                 "usage: %s --gen --trace FILE [scenario flags]\n"
                 "   or: %s --play --trace FILE --socket PATH "
                 "[--until EPOCH]\n        [--strategy-at EPOCH:NAME] "
                 "[--fault-at EPOCH:SPEC] [--stat-at EPOCH] [--drain]\n"
                 "   or: %s --stat --socket PATH\n"
                 "   or: %s --wait-epoch N --socket PATH [--timeout S]\n"
                 "scenario flags: %s\n",
                 argv[0], argv[0], argv[0], argv[0],
                 gs::tools::kScenarioUsage);
    return 2;
  }
  return args.flag("gen") ? generate(args, trace) : play(args, trace);
}
