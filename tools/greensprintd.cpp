// greensprintd: the live serving daemon. Hosts a DaySim campaign behind a
// GSRV/1 socket (src/serve), stepping one controller epoch per feed tick,
// wall-clock paced by --sim-speed, with tsdb telemetry queries and live
// control (strategy / fault-inject / checkpoint / stat / drain) over the
// same connection.
//
// Serve:  greensprintd --socket /tmp/gs.sock [--tcp PORT] [--sim-speed X]
//           [--stall-grace EPOCHS] [--checkpoint PATH]
//           [--checkpoint-every N] [--checkpoint-keep K] [--resume PATH]
//           [--tsdb memory|wal|compressed|cache] [--tsdb-dir DIR]
//           [--queue-cap N] [--failpoints SPEC] [--failpoint-seed N]
//           [scenario flags]
// Batch:  greensprintd --batch [scenario flags]
//           runs the same campaign inline (sim::run_days) and prints the
//           result fingerprint — the e2e reference the daemon must match.
//
// SIGTERM/SIGINT write to a self-pipe wired into DaemonConfig::stop_fd:
// the daemon drains its queue, flushes telemetry, writes the final
// checkpoint, and exits 0. A later --resume continues bit-identically.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include <unistd.h>

#include "common/failpoint.hpp"
#include "serve/daemon.hpp"
#include "serve_scenario.hpp"
#include "sim/day_runner.hpp"
#include "tsdb/strategy.hpp"

namespace {

int g_stop_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_stop_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gs;
  const CliArgs args(argc, argv);
  if (args.has("failpoints")) {
    try {
      failpoint::configure(
          args.get("failpoints", std::string()),
          std::uint64_t(args.get("failpoint-seed", 0)));
    } catch (const failpoint::SpecError& e) {
      std::fprintf(stderr, "greensprintd: --failpoints: %s\n", e.what());
      return 2;
    }
  }
  const sim::DayRunConfig day = tools::scenario_from_cli(args);

  if (args.flag("batch")) {
    const sim::DayRunResult res = sim::run_days(day);
    std::printf("batch fp %llx bursts %d\n",
                (unsigned long long)sim::day_result_fingerprint(res),
                res.bursts_served);
    return 0;
  }

  serve::DaemonConfig cfg;
  cfg.day = day;
  cfg.socket_path = args.get("socket", std::string());
  if (cfg.socket_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s --socket PATH [--tcp PORT] [--sim-speed X] "
                 "[--stall-grace EPOCHS]\n  [--checkpoint PATH] "
                 "[--checkpoint-every N] [--checkpoint-keep K] "
                 "[--resume PATH]\n  "
                 "[--tsdb memory|wal|compressed|cache] [--tsdb-dir DIR] "
                 "[--queue-cap N]\n  [--failpoints SPEC] "
                 "[--failpoint-seed N]\n  %s\n"
                 "   or: %s --batch [scenario flags]\n",
                 argv[0], tools::kScenarioUsage, argv[0]);
    return 2;
  }
  cfg.tcp_port = args.get("tcp", 0);
  cfg.sim_speed = args.get("sim-speed", 0.0);
  cfg.stall_grace_epochs = args.get("stall-grace", cfg.stall_grace_epochs);
  cfg.checkpoint_path = args.get("checkpoint", std::string());
  cfg.checkpoint_every =
      std::uint64_t(args.get("checkpoint-every", 0));
  cfg.checkpoint_keep =
      std::uint32_t(args.get("checkpoint-keep", int(cfg.checkpoint_keep)));
  cfg.resume_from = args.get("resume", std::string());
  cfg.queue_capacity =
      std::size_t(args.get("queue-cap", int(cfg.queue_capacity)));
  const std::string tsdb_name = args.get("tsdb", std::string("memory"));
  cfg.tsdb.strategy = tsdb::strategy_from_string(tsdb_name);
  cfg.tsdb.dir = args.get("tsdb-dir", std::string());
  if (cfg.tsdb.strategy != tsdb::Strategy::MEMORY && cfg.tsdb.dir.empty()) {
    std::fprintf(stderr, "--tsdb %s needs --tsdb-dir\n", tsdb_name.c_str());
    return 2;
  }

  if (::pipe(g_stop_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  cfg.stop_fd = g_stop_pipe[0];
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    const bool resumed = !cfg.resume_from.empty();
    serve::ServeDaemon daemon(std::move(cfg));
    std::printf("greensprintd: serving %s%s\n",
                args.get("socket", std::string()).c_str(),
                resumed ? " (resumed)" : "");
    std::fflush(stdout);
    const serve::DaemonReport rep = daemon.run();
    std::printf(
        "greensprintd: %s epochs %llu ingested %llu stale_epochs %llu "
        "completed %d fp %llx\n",
        rep.drained ? "drained" : "stopped",
        (unsigned long long)rep.epochs, (unsigned long long)rep.ingested,
        (unsigned long long)rep.stale_epochs, rep.completed ? 1 : 0,
        (unsigned long long)(rep.completed ? rep.result_fingerprint : 0));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "greensprintd: %s\n", e.what());
    return 1;
  }
}
