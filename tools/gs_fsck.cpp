// gs_fsck: offline verifier for every durability artifact GreenSprint
// writes. Point it at checkpoint / sweep / tsdb directories after a crash
// (or a chaos-lane run) and it reports, per artifact, whether recovery
// will sail through, absorb it automatically, or lose data:
//
//   ok           the artifact validates byte-for-byte
//   salvageable  damaged, but the recovery path handles it without data
//                loss (torn final WAL segment, corrupt rotation generation
//                with an intact sibling, stale lease, orphan .tmp file,
//                corrupt sweep cell — recomputed from the manifest, torn
//                series-catalog tail)
//   corrupt      recovery cannot reconstruct this artifact's contents
//
// Recognized artifacts (by filename, recursively):
//   *.gNNNNNN.gsck   rotation generations     *.gsck.current  pointers
//   cell-NNNNNN.gsck sweep cells              *.gsck          snapshots
//   wal-NNNNNN.gswal WAL segments             series.gscat    catalogs
//   *.gspage         sealed pages             *.lease         leases
//   *.tmp-* / *.stale.*  orphaned temporaries (always salvageable)
//
// Usage: gs_fsck DIR... [--json]
// Exit:  0 nothing corrupt, 1 at least one corrupt artifact, 2 usage.
#include <signal.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/rotation.hpp"
#include "ckpt/snapshot.hpp"
#include "tsdb/store.hpp"
#include "tsdb/wal.hpp"

namespace {

namespace fs = std::filesystem;
using namespace gs;

enum class Verdict { Ok, Salvageable, Corrupt };

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::Ok: return "ok";
    case Verdict::Salvageable: return "salvageable";
    case Verdict::Corrupt: return "corrupt";
  }
  return "?";
}

struct Finding {
  std::string path;
  std::string kind;
  Verdict verdict = Verdict::Ok;
  std::string detail;
};

/// True when `name` is digits only.
bool all_digits(std::string_view s) {
  return !s.empty() &&
         s.find_first_not_of("0123456789") == std::string_view::npos;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// "gsd.g000041.gsck" -> base "gsd.gsck" (any extension, e.g.
/// "sweep.g000001.manifest" -> "sweep.manifest"); nullopt otherwise.
std::optional<fs::path> generation_base(const fs::path& p) {
  const std::string ext = p.extension().string();
  const std::string stem = p.stem().string();
  const auto dot_g = stem.rfind(".g");
  if (dot_g == std::string::npos || ext.empty()) return std::nullopt;
  if (!all_digits(std::string_view(stem).substr(dot_g + 2))) {
    return std::nullopt;
  }
  return p.parent_path() / (stem.substr(0, dot_g) + ext);
}

bool is_sweep_cell(const fs::path& p) {
  const std::string name = p.filename().string();
  return name.rfind("cell-", 0) == 0 && ends_with(name, ".gsck") &&
         all_digits(std::string_view(name).substr(5, name.size() - 10));
}

/// Any sibling generation of `base` that validates (the rotation scan's
/// definition of recoverable).
bool has_intact_sibling_generation(const fs::path& base,
                                   const fs::path& damaged) {
  for (const auto& [gen, path] : ckpt::RotatingSnapshot::list_generations(
           base)) {
    if (path == damaged) continue;
    try {
      (void)ckpt::read_snapshot_file(path);
      return true;
    } catch (const ckpt::SnapshotError&) {
    }
  }
  return false;
}

Finding check_snapshot(const fs::path& p) {
  Finding f;
  f.path = p.string();
  const auto base = generation_base(p);
  const bool is_manifest =
      (base ? base->filename().string() : p.filename().string()) ==
      "sweep.manifest";
  f.kind = is_manifest ? "sweep-manifest"
           : base      ? "rotation-generation"
           : is_sweep_cell(p) ? "sweep-cell"
                              : "snapshot";
  try {
    (void)ckpt::read_snapshot_file(p);
    return f;
  } catch (const ckpt::SnapshotError& e) {
    f.detail = e.what();
  }
  if (base && has_intact_sibling_generation(*base, p)) {
    f.verdict = Verdict::Salvageable;
    f.detail += "; an intact sibling generation survives";
  } else if (is_manifest) {
    // The manifest is campaign-deterministic: ensure_manifest rewrites a
    // damaged one from the campaign definition.
    f.verdict = Verdict::Salvageable;
    f.detail += "; rewritten from the campaign definition on resume";
  } else if (is_sweep_cell(p)) {
    // A damaged cell is recomputed from the manifest on resume.
    f.verdict = Verdict::Salvageable;
    f.detail += "; resume recomputes this cell";
  } else {
    f.verdict = Verdict::Corrupt;
  }
  return f;
}

Finding check_pointer(const fs::path& p) {
  Finding f;
  f.path = p.string();
  f.kind = "rotation-pointer";
  const std::string name = p.filename().string();
  const fs::path base =
      p.parent_path() / name.substr(0, name.size() - std::strlen(".current"));
  const auto gen = ckpt::RotatingSnapshot::read_pointer(base);
  if (!gen) {
    // The last-known-good scan never trusts the pointer, so a damaged one
    // costs a directory scan, nothing more.
    f.verdict = Verdict::Salvageable;
    f.detail = "pointer fails validation; generation scan recovers";
    return f;
  }
  if (!fs::exists(ckpt::RotatingSnapshot::generation_path(base, *gen))) {
    f.verdict = Verdict::Salvageable;
    f.detail = "pointer names a missing generation; scan recovers";
  }
  return f;
}

/// WAL segments are checked as a set: a torn tail is survivable only in
/// the final (highest-numbered) segment of its directory.
void check_wal_dir(const fs::path& dir, const std::vector<fs::path>& segs,
                   std::vector<Finding>& out) {
  std::vector<fs::path> sorted = segs;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    Finding f;
    f.path = sorted[i].string();
    f.kind = "wal-segment";
    tsdb::WalSegmentCheck check;
    try {
      check = tsdb::check_wal_segment(sorted[i]);
    } catch (const std::exception& e) {
      f.verdict = Verdict::Corrupt;
      f.detail = e.what();
      out.push_back(std::move(f));
      continue;
    }
    switch (check.verdict) {
      case tsdb::WalSegmentCheck::Verdict::Ok:
        break;
      case tsdb::WalSegmentCheck::Verdict::TornTail:
        if (i + 1 == sorted.size()) {
          f.verdict = Verdict::Salvageable;
          f.detail = check.detail + "; replay repairs the final segment";
        } else {
          f.verdict = Verdict::Corrupt;
          f.detail = check.detail + "; torn tail in a non-final segment";
        }
        break;
      case tsdb::WalSegmentCheck::Verdict::Corrupt:
        f.verdict = Verdict::Corrupt;
        f.detail = check.detail;
        break;
    }
    out.push_back(std::move(f));
  }
  (void)dir;
}

Finding check_catalog(const fs::path& p) {
  Finding f;
  f.path = p.string();
  f.kind = "series-catalog";
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    f.verdict = Verdict::Corrupt;
    f.detail = "cannot open";
    return f;
  }
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::size_t at = 0;
  while (true) {
    const std::size_t nl = blob.find('\n', at);
    if (nl == std::string::npos) {
      if (at < blob.size()) {
        // Unterminated tail: the engine's replay truncates it away.
        f.verdict = Verdict::Salvageable;
        f.detail = "torn unterminated tail line; replay repairs it";
      }
      return f;
    }
    const std::string_view line(blob.data() + at, nl - at);
    at = nl + 1;
    // id \t rack \t server \t metric
    std::size_t tabs = 0;
    for (const char c : line) tabs += (c == '\t') ? 1u : 0u;
    if (tabs != 3 || line.empty() || line.back() == '\t') {
      f.verdict = Verdict::Corrupt;
      f.detail = "malformed complete catalog line";
      return f;
    }
  }
}

Finding check_page(const fs::path& p) {
  Finding f;
  f.path = p.string();
  f.kind = "sealed-page";
  try {
    (void)tsdb::read_page_file(p);
  } catch (const std::exception& e) {
    f.verdict = Verdict::Corrupt;
    f.detail = e.what();
  }
  return f;
}

Finding check_lease(const fs::path& p) {
  Finding f;
  f.path = p.string();
  f.kind = "lease";
  long pid = 0;
  if (std::FILE* in = std::fopen(p.c_str(), "r")) {
    if (std::fscanf(in, "%ld", &pid) != 1) pid = 0;
    std::fclose(in);
  }
  if (pid > 0 && ::kill(pid_t(pid), 0) == 0) {
    f.detail = "owner pid " + std::to_string(pid) + " is alive";
    return f;
  }
  f.verdict = Verdict::Salvageable;
  f.detail = pid > 0 ? "owner pid " + std::to_string(pid) +
                           " is gone; lease goes stale and is taken over"
                     : "unreadable owner; lease goes stale and is taken over";
  return f;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "usage: %s DIR... [--json]\n", argv[0]);
      return 2;
    } else {
      roots.emplace_back(argv[i]);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "usage: %s DIR... [--json]\n", argv[0]);
    return 2;
  }

  std::vector<Finding> findings;
  std::map<fs::path, std::vector<fs::path>> wal_dirs;
  for (const fs::path& root : roots) {
    if (!fs::is_directory(root)) {
      std::fprintf(stderr, "gs_fsck: %s is not a directory\n",
                   root.c_str());
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& p = entry.path();
      const std::string name = p.filename().string();
      if (name.find(".tmp-") != std::string::npos ||
          name.find(".stale.") != std::string::npos) {
        Finding f;
        f.path = p.string();
        f.kind = "orphan-temp";
        f.verdict = Verdict::Salvageable;
        f.detail = "leftover from an interrupted write; safe to delete";
        findings.push_back(std::move(f));
      } else if (ends_with(name, ".current")) {
        findings.push_back(check_pointer(p));
      } else if (ends_with(name, ".gsck") || name == "sweep.manifest" ||
                 generation_base(p)) {
        findings.push_back(check_snapshot(p));
      } else if (ends_with(name, ".gswal")) {
        wal_dirs[p.parent_path()].push_back(p);
      } else if (name == "series.gscat") {
        findings.push_back(check_catalog(p));
      } else if (ends_with(name, ".gspage")) {
        findings.push_back(check_page(p));
      } else if (ends_with(name, ".lease")) {
        findings.push_back(check_lease(p));
      }
    }
  }
  for (const auto& [dir, segs] : wal_dirs) {
    check_wal_dir(dir, segs, findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) { return a.path < b.path; });

  std::size_t n_ok = 0, n_salvageable = 0, n_corrupt = 0;
  for (const Finding& f : findings) {
    switch (f.verdict) {
      case Verdict::Ok: ++n_ok; break;
      case Verdict::Salvageable: ++n_salvageable; break;
      case Verdict::Corrupt: ++n_corrupt; break;
    }
  }

  if (json) {
    std::printf("{\"artifacts\":[");
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      std::printf(
          "%s{\"path\":\"%s\",\"kind\":\"%s\",\"verdict\":\"%s\","
          "\"detail\":\"%s\"}",
          i ? "," : "", json_escape(f.path).c_str(),
          json_escape(f.kind).c_str(), to_string(f.verdict),
          json_escape(f.detail).c_str());
    }
    std::printf("],\"ok\":%zu,\"salvageable\":%zu,\"corrupt\":%zu}\n", n_ok,
                n_salvageable, n_corrupt);
  } else {
    for (const Finding& f : findings) {
      std::printf("%-11s %-19s %s%s%s\n", to_string(f.verdict),
                  f.kind.c_str(), f.path.c_str(),
                  f.detail.empty() ? "" : "  -- ", f.detail.c_str());
    }
    std::printf("gs_fsck: %zu ok, %zu salvageable, %zu corrupt\n", n_ok,
                n_salvageable, n_corrupt);
  }
  return n_corrupt == 0 ? 0 : 1;
}
