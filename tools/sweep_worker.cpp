// Standalone cooperative sweep worker (sim/sweep_mp.hpp): builds the same
// fixed perf-sweep grid as bench/perf_sweep (sim/sweep_grid.hpp) and works
// through a shared checkpoint directory, claiming cells via atomic leases.
//
// The CI resume-integrity lane launches two of these against one
// directory, SIGKILLs one mid-cell, and then merges with
// `perf_sweep --checkpoint-dir DIR --resume`; the merged fingerprint must
// equal the uninterrupted single-process reference bit-for-bit.
//
// Usage: sweep_worker --dir DIR [--smoke] [--storm] [--cells N]
//                     [--stale-after SECONDS]
//                     [--failpoints SPEC] [--failpoint-seed N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/failpoint.hpp"
#include "sim/sweep_grid.hpp"
#include "sim/sweep_mp.hpp"

int main(int argc, char** argv) {
  using namespace gs;
  sim::SweepWorkerOptions opts;
  bool smoke = false;
  bool storm = false;
  std::size_t n_cells = 0;
  std::string failpoints;
  std::uint64_t failpoint_seed = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      opts.dir = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--storm") == 0) {
      storm = true;
    } else if (std::strcmp(argv[i], "--cells") == 0 && i + 1 < argc) {
      n_cells = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--stale-after") == 0 && i + 1 < argc) {
      opts.stale_after_s = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--failpoints") == 0 && i + 1 < argc) {
      failpoints = argv[++i];
    } else if (std::strcmp(argv[i], "--failpoint-seed") == 0 &&
               i + 1 < argc) {
      failpoint_seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s --dir DIR [--smoke] [--storm] [--cells N] "
                   "[--stale-after SECONDS]\n"
                   "       [--failpoints SPEC] [--failpoint-seed N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!failpoints.empty()) {
    try {
      failpoint::configure(failpoints, failpoint_seed);
    } catch (const failpoint::SpecError& e) {
      std::fprintf(stderr, "sweep_worker: --failpoints: %s\n", e.what());
      return 2;
    }
  }
  if (opts.dir.empty()) {
    std::fprintf(stderr, "sweep_worker: --dir is required\n");
    return 2;
  }

  auto grid = sim::perf_grid(smoke);
  if (n_cells > 0) grid = sim::replicate_grid(grid, n_cells);
  if (storm) sim::add_storms(grid);

  try {
    const auto stats = sim::run_sweep_worker(grid, opts);
    std::printf(
        "sweep_worker: cells=%zu run=%zu stale_leases_taken=%zu dir=%s\n",
        stats.cells_total, stats.cells_run, stats.leases_taken_over,
        opts.dir.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_worker: %s\n", e.what());
    return 1;
  }
  return 0;
}
