#include "workload/arrivals.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace gs::workload {

PoissonArrivals::PoissonArrivals(double rate) : rate_(rate) {
  GS_REQUIRE(rate > 0.0, "Poisson rate must be positive");
}

double PoissonArrivals::next_gap(Rng& rng) {
  return rng.exponential(rate_);
}

MmppArrivals::MmppArrivals(double low_rate, double high_rate,
                           Seconds low_sojourn, Seconds high_sojourn)
    : low_rate_(low_rate),
      high_rate_(high_rate),
      low_sojourn_s_(low_sojourn.value()),
      high_sojourn_s_(high_sojourn.value()) {
  GS_REQUIRE(low_rate > 0.0 && high_rate >= low_rate,
             "MMPP rates must satisfy 0 < low <= high");
  GS_REQUIRE(low_sojourn.value() > 0.0 && high_sojourn.value() > 0.0,
             "MMPP sojourns must be positive");
}

double MmppArrivals::next_gap(Rng& rng) {
  if (!primed_) {
    state_time_left_ = rng.exponential(1.0 / low_sojourn_s_);
    primed_ = true;
  }
  double gap = 0.0;
  for (;;) {
    const double rate = high_ ? high_rate_ : low_rate_;
    const double candidate = rng.exponential(rate);
    if (candidate <= state_time_left_) {
      state_time_left_ -= candidate;
      return gap + candidate;
    }
    // The modulating chain switches before the next arrival: advance time
    // to the switch and redraw in the new state (memorylessness makes the
    // redraw exact).
    gap += state_time_left_;
    high_ = !high_;
    state_time_left_ =
        rng.exponential(1.0 / (high_ ? high_sojourn_s_ : low_sojourn_s_));
  }
}

double MmppArrivals::mean_rate() const {
  const double wl = low_sojourn_s_;
  const double wh = high_sojourn_s_;
  return (low_rate_ * wl + high_rate_ * wh) / (wl + wh);
}

std::unique_ptr<MmppArrivals> make_bursty(double mean_rate, double burstiness,
                                          Seconds sojourn) {
  GS_REQUIRE(mean_rate > 0.0, "mean rate must be positive");
  GS_REQUIRE(burstiness >= 1.0, "burstiness must be >= 1");
  if (burstiness == 1.0) {
    return std::make_unique<MmppArrivals>(mean_rate, mean_rate, sojourn,
                                          sojourn);
  }
  // Fix the rates (low = mean/2, high = burstiness * mean) and solve the
  // sojourn split so the time-weighted mean lands exactly on mean_rate:
  //   wh / (wl + wh) = (mean - low) / (high - low).
  const double low = 0.5 * mean_rate;
  const double high = burstiness * mean_rate;
  const double frac_high = (mean_rate - low) / (high - low);
  const double total = 2.0 * sojourn.value();
  const double wh = total * frac_high;
  const double wl = total - wh;
  return std::make_unique<MmppArrivals>(low, high, Seconds(wl), Seconds(wh));
}

double draw_service(Rng& rng, ServiceDistribution dist, double mean_s,
                    double lognormal_cv) {
  GS_REQUIRE(mean_s > 0.0, "mean service time must be positive");
  switch (dist) {
    case ServiceDistribution::Exponential:
      return rng.exponential(1.0 / mean_s);
    case ServiceDistribution::LogNormal: {
      GS_REQUIRE(lognormal_cv > 0.0, "lognormal CV must be positive");
      // mean = exp(mu + sigma^2/2); cv^2 = exp(sigma^2) - 1.
      const double sigma2 = std::log(1.0 + lognormal_cv * lognormal_cv);
      const double mu = std::log(mean_s) - 0.5 * sigma2;
      return std::exp(mu + std::sqrt(sigma2) * rng.normal());
    }
  }
  GS_REQUIRE(false, "unknown service distribution");
  return 0.0;
}

}  // namespace gs::workload
