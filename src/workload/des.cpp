#include "workload/des.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "common/assert.hpp"
#include "common/stats.hpp"

namespace gs::workload {

DesResult simulate_epoch_process(Rng& rng, const AppDescriptor& app,
                                 const server::ServerSetting& setting,
                                 ArrivalProcess& arrivals, Seconds epoch,
                                 DesOptions options) {
  GS_REQUIRE(epoch.value() > 0.0, "epoch must be positive");
  GS_REQUIRE(options.service_derate > 0.0 && options.service_derate <= 1.0,
             "service derate must be in (0,1]");
  const double mu = app.service_rate(setting.frequency()) *
                    options.service_derate;
  const double mean_service = 1.0 / mu;
  const double horizon = epoch.value();

  DesResult res;

  // FCFS M/G/k-style dispatch: each arrival goes to the earliest-free
  // core. A min-heap of core free times implements this exactly for FCFS.
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (int c = 0; c < setting.cores; ++c) free_at.push(0.0);

  QuantileReservoir latencies;
  double busy_core_time = 0.0;
  double t = arrivals.next_gap(rng);
  while (t < horizon) {
    ++res.arrivals;
    const double core_free = free_at.top();
    // Admission control: shed the request if its queueing delay alone
    // would blow the admission budget.
    if (options.admit_wait_limit_s > 0.0 &&
        core_free - t > options.admit_wait_limit_s) {
      ++res.dropped;
      t += arrivals.next_gap(rng);
      continue;
    }
    free_at.pop();
    const double start = std::max(t, core_free);
    const double service = draw_service(rng, options.service, mean_service,
                                        options.lognormal_cv);
    const double done = start + service;
    free_at.push(done);
    if (done <= horizon) {
      ++res.completed;
      busy_core_time += service;
      const double latency = done - t;
      latencies.add(latency);
      if (latency <= app.qos.limit.value()) ++res.sla_met;
    }
    t += arrivals.next_gap(rng);
  }

  if (!latencies.empty()) {
    res.tail_latency = Seconds(latencies.quantile(app.qos.percentile));
  }
  res.goodput_rate = double(res.sla_met) / horizon;
  res.mean_utilization =
      busy_core_time / (double(setting.cores) * horizon);
  return res;
}

DesResult simulate_epoch(Rng& rng, const AppDescriptor& app,
                         const server::ServerSetting& setting, double lambda,
                         Seconds epoch, DesOptions options) {
  GS_REQUIRE(lambda >= 0.0, "arrival rate must be non-negative");
  GS_REQUIRE(epoch.value() > 0.0, "epoch must be positive");
  if (lambda == 0.0) return DesResult{};
  PoissonArrivals arrivals(lambda);
  return simulate_epoch_process(rng, app, setting, arrivals, epoch, options);
}

}  // namespace gs::workload
