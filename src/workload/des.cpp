// gs:hot-path — per-request epoch loop; no heap allocation inside.
#include "workload/des.hpp"

#include <algorithm>
#include <functional>

#include "common/arena.hpp"
#include "common/assert.hpp"
#include "common/stats.hpp"

namespace gs::workload {

namespace {

// Per-thread scratch reused across epochs: the sweep runner calls the DES
// once per epoch per cell, and the backing stores (core heap, latency
// samples) would otherwise be reallocated each call. Both live in a bump
// arena; begin_epoch() rewinds the arena and rebinds the views, so once
// the arena reaches its high-water mark the per-request loop performs
// zero heap allocation. thread_local keeps the reuse safe under the sweep
// pool without sharing state across cells.
struct DesScratch {
  Arena arena{std::size_t(1) << 12};
  ArenaVector<double> free_at{arena};    ///< Min-heap of core free times.
  ArenaVector<double> latencies{arena};  ///< Exact-tail latency samples.

  void begin_epoch() {
    arena.reset();
    free_at.rebind(arena);
    latencies.rebind(arena);
  }
};

DesScratch& des_scratch() {
  thread_local DesScratch scratch;
  return scratch;
}

}  // namespace

DesResult simulate_epoch_process(Rng& rng, const AppDescriptor& app,
                                 const server::ServerSetting& setting,
                                 ArrivalProcess& arrivals, Seconds epoch,
                                 DesOptions options) {
  GS_REQUIRE(epoch.value() > 0.0, "epoch must be positive");
  GS_REQUIRE(options.service_derate > 0.0 && options.service_derate <= 1.0,
             "service derate must be in (0,1]");
  const double mu = app.service_rate(setting.frequency()) *
                    options.service_derate;
  const double mean_service = 1.0 / mu;
  const double horizon = epoch.value();

  DesResult res;

  // FCFS M/G/k-style dispatch: each arrival goes to the earliest-free
  // core. A min-heap of core free times implements this exactly for FCFS;
  // the heap lives in reused scratch storage with std::push_heap /
  // std::pop_heap in place of a per-call std::priority_queue.
  auto& scratch = des_scratch();
  scratch.begin_epoch();
  auto& free_at = scratch.free_at;
  // Arena-backed: bump-allocates only until the high-water mark.
  // gs-lint: allow(hot-path-alloc)
  free_at.assign(std::size_t(setting.cores), 0.0);
  const auto heap_cmp = std::greater<>{};

  const bool exact_tail = options.tail_estimator == TailEstimator::Exact;
  auto& latencies = scratch.latencies;
  P2Quantile p2(app.qos.percentile);
  std::uint64_t n_latencies = 0;

  double busy_core_time = 0.0;
  double t = arrivals.next_gap(rng);
  while (t < horizon) {
    ++res.arrivals;
    const double core_free = free_at.front();
    // Admission control: shed the request if its queueing delay alone
    // would blow the admission budget.
    if (options.admit_wait_limit_s > 0.0 &&
        core_free - t > options.admit_wait_limit_s) {
      ++res.dropped;
      t += arrivals.next_gap(rng);
      continue;
    }
    std::pop_heap(free_at.begin(), free_at.end(), heap_cmp);
    const double start = std::max(t, core_free);
    const double service = draw_service(rng, options.service, mean_service,
                                        options.lognormal_cv);
    const double done = start + service;
    free_at.back() = done;
    std::push_heap(free_at.begin(), free_at.end(), heap_cmp);
    if (done <= horizon) {
      ++res.completed;
      busy_core_time += service;
      const double latency = done - t;
      if (exact_tail) {
        // Arena-backed sample store. gs-lint: allow(hot-path-alloc)
        latencies.push_back(latency);
      } else {
        p2.add(latency);
      }
      ++n_latencies;
      if (latency <= app.qos.limit.value()) ++res.sla_met;
    }
    t += arrivals.next_gap(rng);
  }

  if (n_latencies > 0) {
    double tail;
    if (exact_tail) {
      std::sort(latencies.begin(), latencies.end());
      tail = quantile_sorted(latencies.data(), latencies.size(),
                             app.qos.percentile);
    } else {
      tail = p2.value();
    }
    res.tail_latency = Seconds(tail);
  }
  res.goodput_rate = double(res.sla_met) / horizon;
  // Clamp like ServerDes does: service straddling the epoch boundary can
  // nudge the busy-time ratio past 1.
  res.mean_utilization = std::min(
      1.0, busy_core_time / (double(setting.cores) * horizon));
  return res;
}

DesResult simulate_epoch(Rng& rng, const AppDescriptor& app,
                         const server::ServerSetting& setting, double lambda,
                         Seconds epoch, DesOptions options) {
  GS_REQUIRE(lambda >= 0.0, "arrival rate must be non-negative");
  GS_REQUIRE(epoch.value() > 0.0, "epoch must be positive");
  if (lambda == 0.0) return DesResult{};
  PoissonArrivals arrivals(lambda);
  return simulate_epoch_process(rng, app, setting, arrivals, epoch, options);
}

}  // namespace gs::workload
