#include "workload/des.hpp"

#include <algorithm>
#include <functional>
#include <vector>

#include "common/assert.hpp"
#include "common/stats.hpp"

namespace gs::workload {

namespace {

// Per-thread scratch reused across epochs: the sweep runner calls the DES
// once per epoch per cell, and the backing stores (core heap, latency
// reservoir) would otherwise be reallocated each call. thread_local keeps
// the reuse safe under the sweep pool without sharing state across cells
// (the contents are fully reset at the top of every call).
std::vector<double>& core_heap_scratch() {
  thread_local std::vector<double> heap;
  return heap;
}

QuantileReservoir& latency_scratch() {
  thread_local QuantileReservoir reservoir;
  return reservoir;
}

}  // namespace

DesResult simulate_epoch_process(Rng& rng, const AppDescriptor& app,
                                 const server::ServerSetting& setting,
                                 ArrivalProcess& arrivals, Seconds epoch,
                                 DesOptions options) {
  GS_REQUIRE(epoch.value() > 0.0, "epoch must be positive");
  GS_REQUIRE(options.service_derate > 0.0 && options.service_derate <= 1.0,
             "service derate must be in (0,1]");
  const double mu = app.service_rate(setting.frequency()) *
                    options.service_derate;
  const double mean_service = 1.0 / mu;
  const double horizon = epoch.value();

  DesResult res;

  // FCFS M/G/k-style dispatch: each arrival goes to the earliest-free
  // core. A min-heap of core free times implements this exactly for FCFS;
  // the heap lives in reused scratch storage with std::push_heap /
  // std::pop_heap in place of a per-call std::priority_queue.
  auto& free_at = core_heap_scratch();
  free_at.clear();
  free_at.assign(std::size_t(setting.cores), 0.0);
  const auto heap_cmp = std::greater<>{};

  const bool exact_tail = options.tail_estimator == TailEstimator::Exact;
  auto& latencies = latency_scratch();
  latencies.clear();
  P2Quantile p2(app.qos.percentile);
  std::uint64_t n_latencies = 0;

  double busy_core_time = 0.0;
  double t = arrivals.next_gap(rng);
  while (t < horizon) {
    ++res.arrivals;
    const double core_free = free_at.front();
    // Admission control: shed the request if its queueing delay alone
    // would blow the admission budget.
    if (options.admit_wait_limit_s > 0.0 &&
        core_free - t > options.admit_wait_limit_s) {
      ++res.dropped;
      t += arrivals.next_gap(rng);
      continue;
    }
    std::pop_heap(free_at.begin(), free_at.end(), heap_cmp);
    const double start = std::max(t, core_free);
    const double service = draw_service(rng, options.service, mean_service,
                                        options.lognormal_cv);
    const double done = start + service;
    free_at.back() = done;
    std::push_heap(free_at.begin(), free_at.end(), heap_cmp);
    if (done <= horizon) {
      ++res.completed;
      busy_core_time += service;
      const double latency = done - t;
      if (exact_tail) {
        latencies.add(latency);
      } else {
        p2.add(latency);
      }
      ++n_latencies;
      if (latency <= app.qos.limit.value()) ++res.sla_met;
    }
    t += arrivals.next_gap(rng);
  }

  if (n_latencies > 0) {
    res.tail_latency = Seconds(exact_tail ? latencies.quantile(app.qos.percentile)
                                          : p2.value());
  }
  res.goodput_rate = double(res.sla_met) / horizon;
  // Clamp like ServerDes does: service straddling the epoch boundary can
  // nudge the busy-time ratio past 1.
  res.mean_utilization = std::min(
      1.0, busy_core_time / (double(setting.cores) * horizon));
  return res;
}

DesResult simulate_epoch(Rng& rng, const AppDescriptor& app,
                         const server::ServerSetting& setting, double lambda,
                         Seconds epoch, DesOptions options) {
  GS_REQUIRE(lambda >= 0.0, "arrival rate must be non-negative");
  GS_REQUIRE(epoch.value() > 0.0, "epoch must be positive");
  if (lambda == 0.0) return DesResult{};
  PoissonArrivals arrivals(lambda);
  return simulate_epoch_process(rng, app, setting, arrivals, epoch, options);
}

}  // namespace gs::workload
