// Quality-of-service target: a tail percentile and its latency limit
// (paper Table II: SPECjbb 99%ile <= 500 ms, Web-Search 90%ile <= 500 ms,
// Memcached 95%ile <= 10 ms).
#pragma once

#include "common/units.hpp"

namespace gs::workload {

struct QosSpec {
  double percentile = 0.99;     ///< e.g. 0.99 for a 99th-percentile target.
  Seconds limit{0.5};           ///< Latency the percentile must not exceed.
};

}  // namespace gs::workload
