// Closed-loop load generation (the paper drives its workloads with the
// Faban harness: a population of emulated clients that issue a request,
// wait for the response, think, and repeat). Unlike the open-loop Poisson
// model, a closed loop self-limits under overload — throughput follows the
// interactive response-time law X = N / (R + Z) — which is why saturated
// real systems do not collapse the way an open queue does.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"
#include "server/setting.hpp"
#include "workload/app.hpp"

namespace gs::workload {

struct ClosedLoopConfig {
  int clients = 100;         ///< Emulated user population (N).
  Seconds mean_think{1.0};   ///< Exponential think time (Z).
};

struct ClosedLoopResult {
  std::uint64_t completed = 0;
  std::uint64_t sla_met = 0;
  double throughput = 0.0;        ///< Completions/s (X).
  double goodput_rate = 0.0;      ///< SLA-met completions/s.
  Seconds mean_latency{0.0};      ///< Mean response time (R).
  Seconds tail_latency{0.0};      ///< QoS-percentile response time.
};

/// Simulate `epoch` seconds of a closed-loop client population against a
/// k-core FCFS server at the given setting. Clients start desynchronized
/// (first issue uniformly inside one think window).
[[nodiscard]] ClosedLoopResult simulate_closed_loop(
    Rng& rng, const AppDescriptor& app, const server::ServerSetting& setting,
    const ClosedLoopConfig& cfg, Seconds epoch);

}  // namespace gs::workload
