#include "workload/app.hpp"

#include "common/assert.hpp"

namespace gs::workload {

Gigahertz reference_frequency() { return Gigahertz(2.0); }

double AppDescriptor::speedup(Gigahertz f) const {
  GS_REQUIRE(f.value() > 0.0, "frequency must be positive");
  const double beta = freq_sensitivity;
  const double ratio = reference_frequency().value() / f.value();
  return 1.0 / ((1.0 - beta) + beta * ratio);
}

double AppDescriptor::service_rate(Gigahertz f) const {
  return speedup(f) / base_service_s;
}

namespace {
AppDescriptor make(std::string name, std::string metric, double mem_gb,
                   QosSpec qos, double service_s, double beta, double delta,
                   Watts normal_full, Watts sprint_peak) {
  AppDescriptor app;
  app.name = std::move(name);
  app.metric = std::move(metric);
  app.memory_gb = mem_gb;
  app.qos = qos;
  app.base_service_s = service_s;
  app.freq_sensitivity = beta;
  app.congestion_delta = delta;
  app.normal_full_power = normal_full;
  app.sprint_peak_power = sprint_peak;
  app.activity = server::calibrate(Watts(76.0), normal_full, sprint_peak);
  return app;
}
}  // namespace

AppDescriptor specjbb() {
  return make("SPECjbb", "jops", 10.0, {0.99, Seconds(0.5)},
              /*service_s=*/0.040, /*beta=*/0.70, /*delta=*/0.26,
              Watts(100.0), Watts(155.0));
}

AppDescriptor websearch() {
  return make("Web-Search", "ops", 20.0, {0.90, Seconds(0.5)},
              /*service_s=*/0.060, /*beta=*/0.95, /*delta=*/0.08,
              Watts(100.0), Watts(156.0));
}

AppDescriptor memcached() {
  return make("Memcached", "rps", 20.0, {0.95, Seconds(0.010)},
              /*service_s=*/0.001, /*beta=*/0.45, /*delta=*/0.36,
              Watts(97.0), Watts(146.0));
}

std::vector<AppDescriptor> all_apps() {
  return {specjbb(), websearch(), memcached()};
}

}  // namespace gs::workload
