// Analytic M/M/k queueing: Erlang-C waiting probability, response-time tail
// distribution, latency quantiles, and the SLA-constrained capacity of a
// server setting. This is the fast path the controller and the parameter
// sweeps use; the discrete-event simulator (des.hpp) cross-validates it.
#pragma once

#include "common/units.hpp"

namespace gs::workload {

/// Erlang-C: probability an arrival must queue in an M/M/k system with
/// offered load a = lambda / mu (requires a < k for stability).
[[nodiscard]] double erlang_c(int k, double offered_load);

/// P(response time > t) in a stable FCFS M/M/k with per-server rate mu.
[[nodiscard]] double response_tail(int k, double mu, double lambda, double t);

/// q-quantile (e.g. 0.99) of the response time; lambda must be < k * mu.
[[nodiscard]] Seconds latency_quantile(int k, double mu, double lambda,
                                       double q);

/// Largest arrival rate lambda such that the q-quantile of response time
/// stays within `limit`. Returns 0 if even an idle system violates the
/// limit (i.e. the bare service-time quantile exceeds it).
[[nodiscard]] double sla_capacity(int k, double mu, double q, Seconds limit);

/// Mean waiting time in queue (Erlang-C mean-value formula
/// W = C(k,a) / (k*mu - lambda)).
[[nodiscard]] Seconds mean_wait(int k, double mu, double lambda);

/// Mean response time W + 1/mu.
[[nodiscard]] Seconds mean_response(int k, double mu, double lambda);

/// Mean number of requests in the system (Little's law: L = lambda * T).
[[nodiscard]] double mean_in_system(int k, double mu, double lambda);

}  // namespace gs::workload
