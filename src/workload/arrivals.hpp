// Arrival and service processes beyond M/M/k for the discrete-event path.
//
// The paper's bursts are not perfectly Poisson: interactive traffic shows
// short-timescale burstiness. The MMPP (Markov-modulated Poisson process)
// arrival model captures that with a two-state rate modulation, and the
// lognormal service option captures heavier-tailed request costs than the
// exponential assumption. The analytic M/M/k path stays the control-plane
// model; these processes quantify its robustness (test suite + DES).
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace gs::workload {

/// Interface: a stateful point process emitting inter-arrival gaps.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  /// Next inter-arrival time (seconds).
  [[nodiscard]] virtual double next_gap(Rng& rng) = 0;
  /// Long-run mean arrival rate (req/s).
  [[nodiscard]] virtual double mean_rate() const = 0;
};

/// Plain Poisson arrivals at a fixed rate.
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate);
  [[nodiscard]] double next_gap(Rng& rng) override;
  [[nodiscard]] double mean_rate() const override { return rate_; }

 private:
  double rate_;
};

/// Two-state MMPP: the instantaneous Poisson rate alternates between a
/// low and a high value with exponentially distributed sojourn times.
class MmppArrivals final : public ArrivalProcess {
 public:
  /// rates: per-state arrival rates; sojourn: mean time spent in each
  /// state before switching.
  MmppArrivals(double low_rate, double high_rate, Seconds low_sojourn,
               Seconds high_sojourn);

  [[nodiscard]] double next_gap(Rng& rng) override;
  [[nodiscard]] double mean_rate() const override;
  [[nodiscard]] bool in_high_state() const { return high_; }

 private:
  double low_rate_;
  double high_rate_;
  double low_sojourn_s_;
  double high_sojourn_s_;
  bool high_ = false;
  double state_time_left_ = 0.0;
  bool primed_ = false;
};

/// Construct an MMPP with a given mean rate and burstiness factor:
/// high rate = burstiness * mean, low rate chosen to preserve the mean
/// with equal sojourns.
[[nodiscard]] std::unique_ptr<MmppArrivals> make_bursty(
    double mean_rate, double burstiness, Seconds sojourn);

/// Service-time distribution selector for the DES.
enum class ServiceDistribution {
  Exponential,  ///< Matches the analytic M/M/k model.
  LogNormal,    ///< Heavier tail; same mean, configurable CV.
};

/// Draw one service time with the given mean (seconds).
[[nodiscard]] double draw_service(Rng& rng, ServiceDistribution dist,
                                  double mean_s, double lognormal_cv = 1.5);

}  // namespace gs::workload
