// Stateful per-server discrete-event simulation across epochs.
//
// simulate_epoch() starts every epoch with an empty queue, which is exact
// for the first epoch of a burst but optimistic afterwards: an overloaded
// Normal-mode server accumulates backlog that the next epoch inherits.
// ServerDes keeps the queue and in-flight work across epochs (and across
// setting changes, since the PMK retunes cores/frequency every epoch), so
// multi-epoch latency dynamics — buildup, drain after an upgrade — are
// captured. Used by the fidelity path and the queue-dynamics tests.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "ckpt/fwd.hpp"
#include "common/stats.hpp"
#include "workload/des.hpp"

namespace gs::workload {

class ServerDes {
 public:
  explicit ServerDes(AppDescriptor app);

  /// Simulate one epoch at the given setting with Poisson(lambda)
  /// arrivals. Queue state carries over from previous calls.
  DesResult run_epoch(Rng& rng, const server::ServerSetting& setting,
                      double lambda, Seconds epoch, DesOptions opts = {});

  /// Requests waiting (not yet started) at the last epoch boundary.
  [[nodiscard]] std::size_t backlog() const { return waiting_.size(); }
  /// Drop all queued work and idle every core (service restart).
  void reset();

  [[nodiscard]] const AppDescriptor& app() const { return app_; }

  // --- Checkpoint/restore (src/ckpt): the cross-epoch queue state (waiting
  // arrivals, per-core busy times, in-flight requests). The scratch
  // buffers are re-initialized by run_epoch and are not part of the state.
  static constexpr std::uint32_t kStateVersion = 1;
  void save_state(ckpt::StateWriter& w) const;
  void load_state(ckpt::StateReader& r);

 private:
  struct Request {
    double arrival;  ///< Relative to the next epoch's start (<= 0).
    double done;     ///< Completion time, same origin.
  };

  AppDescriptor app_;
  /// Arrival timestamps (relative to the next epoch's start; <= 0 for
  /// requests that have already waited across a boundary).
  std::deque<double> waiting_;
  /// Per-core times at which the current request finishes (relative to
  /// the next epoch's start; may exceed the epoch length). Doubles as the
  /// dispatch min-heap's backing store during an epoch.
  std::vector<double> core_free_;
  /// Requests started but not finished at the boundary.
  std::vector<Request> in_flight_;
  /// Reused scratch (run_epoch resets them): survivors of the in-flight
  /// filter, and the exact-tail latency reservoir.
  std::vector<Request> scratch_running_;
  QuantileReservoir latencies_;
};

}  // namespace gs::workload
