#include "workload/server_des.hpp"

#include <algorithm>
#include <functional>

#include "ckpt/state_io.hpp"
#include "common/assert.hpp"

namespace gs::workload {

ServerDes::ServerDes(AppDescriptor app) : app_(std::move(app)) {}

void ServerDes::reset() {
  waiting_.clear();
  core_free_.clear();
  in_flight_.clear();
}

DesResult ServerDes::run_epoch(Rng& rng, const server::ServerSetting& setting,
                               double lambda, Seconds epoch,
                               DesOptions opts) {
  GS_REQUIRE(lambda >= 0.0, "arrival rate must be non-negative");
  GS_REQUIRE(epoch.value() > 0.0, "epoch must be positive");
  GS_REQUIRE(opts.service_derate > 0.0 && opts.service_derate <= 1.0,
             "service derate must be in (0,1]");
  const double horizon = epoch.value();
  // Faults derate the stateful path exactly like the stateless one: a
  // straggling server serves at a fraction of the healthy rate all epoch.
  const double mu = app_.service_rate(setting.frequency()) *
                    opts.service_derate;
  const double mean_service = 1.0 / mu;
  const auto heap_cmp = std::greater<>{};

  DesResult res;
  const bool exact_tail = opts.tail_estimator == TailEstimator::Exact;
  latencies_.clear();  // reused backing store; epochs allocate nothing
  P2Quantile p2(app_.qos.percentile);
  std::uint64_t n_latencies = 0;
  const auto record_completion = [&](double latency) {
    if (exact_tail) {
      latencies_.add(latency);
    } else {
      p2.add(latency);
    }
    ++n_latencies;
    if (latency <= app_.qos.limit.value()) ++res.sla_met;
  };
  double busy_core_time = 0.0;

  // 1) Requests that were in flight at the boundary: those finishing
  //    inside this epoch complete now (their latency spans epochs).
  scratch_running_.clear();
  for (const auto& r : in_flight_) {
    if (r.done <= horizon) {
      ++res.completed;
      busy_core_time += std::max(0.0, r.done);
      record_completion(r.done - r.arrival);
    } else {
      scratch_running_.push_back(r);
    }
  }
  std::swap(in_flight_, scratch_running_);

  // 2) Re-heap the persisted core times for this epoch's core count. Extra
  //    cores come up idle; when the count shrinks, the busiest cores are
  //    parked — an approximation FCFS absorbs by keeping the earliest-free
  //    cores. core_free_ itself is the heap's backing store (no per-epoch
  //    priority_queue rebuild).
  std::sort(core_free_.begin(), core_free_.end());
  core_free_.resize(std::size_t(setting.cores), 0.0);
  std::make_heap(core_free_.begin(), core_free_.end(), heap_cmp);

  auto dispatch = [&](double arrival) {
    const double core_free = core_free_.front();
    std::pop_heap(core_free_.begin(), core_free_.end(), heap_cmp);
    const double start = std::max(arrival, core_free);
    const double service =
        draw_service(rng, opts.service, mean_service, opts.lognormal_cv);
    const double done = start + service;
    core_free_.back() = done;
    std::push_heap(core_free_.begin(), core_free_.end(), heap_cmp);
    if (done <= horizon) {
      ++res.completed;
      busy_core_time += service;
      record_completion(done - arrival);
    } else {
      // Straddles the boundary: completes (and is accounted) next epoch.
      busy_core_time += std::max(0.0, horizon - std::max(start, 0.0));
      in_flight_.push_back({arrival - horizon, done - horizon});
    }
  };

  // 3) Backlogged queue goes first (arrival stamps are <= 0), then fresh
  //    arrivals; anything the cores cannot reach this epoch stays queued.
  //    The carried prefix is consumed from the deque's front in place;
  //    re-queued stamps go to the back, past the prefix.
  const std::size_t n_carried = waiting_.size();
  for (std::size_t i = 0; i < n_carried; ++i) {
    const double arrival = waiting_.front();
    waiting_.pop_front();
    if (core_free_.front() >= horizon) {
      waiting_.push_back(arrival - horizon);
    } else {
      dispatch(arrival);
    }
  }
  if (lambda > 0.0) {
    double t = rng.exponential(lambda);
    while (t < horizon) {
      ++res.arrivals;
      if (core_free_.front() >= horizon) {
        waiting_.push_back(t - horizon);
      } else {
        dispatch(t);
      }
      t += rng.exponential(lambda);
    }
  }

  // 4) Rebase the persisted core times to the next epoch's origin (step 2
  //    re-sorts, so the heap layout needn't be preserved here).
  for (double& v : core_free_) v = std::max(0.0, v - horizon);

  if (n_latencies > 0) {
    res.tail_latency = Seconds(
        exact_tail ? latencies_.quantile(app_.qos.percentile) : p2.value());
  }
  res.goodput_rate = double(res.sla_met) / horizon;
  res.mean_utilization = std::min(
      1.0, busy_core_time / (double(setting.cores) * horizon));
  return res;
}

void ServerDes::save_state(ckpt::StateWriter& w) const {
  w.begin_section("server_des", kStateVersion);
  w.u64(waiting_.size());
  for (const double t : waiting_) w.f64(t);
  w.u64(core_free_.size());
  for (const double t : core_free_) w.f64(t);
  w.u64(in_flight_.size());
  for (const Request& rq : in_flight_) {
    w.f64(rq.arrival);
    w.f64(rq.done);
  }
  w.end_section();
}

void ServerDes::load_state(ckpt::StateReader& r) {
  r.begin_section("server_des", kStateVersion);
  waiting_.clear();
  const auto n_wait = std::size_t(r.u64());
  for (std::size_t i = 0; i < n_wait; ++i) waiting_.push_back(r.f64());
  core_free_.clear();
  const auto n_core = std::size_t(r.u64());
  core_free_.reserve(n_core);
  for (std::size_t i = 0; i < n_core; ++i) core_free_.push_back(r.f64());
  in_flight_.clear();
  const auto n_fly = std::size_t(r.u64());
  in_flight_.reserve(n_fly);
  for (std::size_t i = 0; i < n_fly; ++i) {
    Request rq{};
    rq.arrival = r.f64();
    rq.done = r.f64();
    in_flight_.push_back(rq);
  }
  r.end_section();
}

}  // namespace gs::workload
