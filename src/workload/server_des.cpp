#include "workload/server_des.hpp"

#include <algorithm>
#include <queue>

#include "common/assert.hpp"
#include "common/stats.hpp"

namespace gs::workload {

ServerDes::ServerDes(AppDescriptor app) : app_(std::move(app)) {}

void ServerDes::reset() {
  waiting_.clear();
  core_free_.clear();
  in_flight_.clear();
}

DesResult ServerDes::run_epoch(Rng& rng, const server::ServerSetting& setting,
                               double lambda, Seconds epoch,
                               DesOptions opts) {
  GS_REQUIRE(lambda >= 0.0, "arrival rate must be non-negative");
  GS_REQUIRE(epoch.value() > 0.0, "epoch must be positive");
  const double horizon = epoch.value();
  const double mu = app_.service_rate(setting.frequency());
  const double mean_service = 1.0 / mu;

  DesResult res;
  QuantileReservoir latencies;
  double busy_core_time = 0.0;

  // 1) Requests that were in flight at the boundary: those finishing
  //    inside this epoch complete now (their latency spans epochs).
  std::vector<Request> still_running;
  for (const auto& r : in_flight_) {
    if (r.done <= horizon) {
      ++res.completed;
      busy_core_time += std::max(0.0, r.done);
      const double latency = r.done - r.arrival;
      latencies.add(latency);
      if (latency <= app_.qos.limit.value()) ++res.sla_met;
    } else {
      still_running.push_back(r);
    }
  }
  in_flight_ = std::move(still_running);

  // 2) Rebuild the core heap for this epoch's core count. Extra cores come
  //    up idle; when the count shrinks, the busiest cores are parked — an
  //    approximation FCFS absorbs by keeping the earliest-free cores.
  std::sort(core_free_.begin(), core_free_.end());
  core_free_.resize(std::size_t(setting.cores), 0.0);
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at(
      core_free_.begin(), core_free_.end());

  auto dispatch = [&](double arrival) {
    const double core_free = free_at.top();
    free_at.pop();
    const double start = std::max(arrival, core_free);
    const double service =
        draw_service(rng, opts.service, mean_service, opts.lognormal_cv);
    const double done = start + service;
    free_at.push(done);
    if (done <= horizon) {
      ++res.completed;
      busy_core_time += service;
      const double latency = done - arrival;
      latencies.add(latency);
      if (latency <= app_.qos.limit.value()) ++res.sla_met;
    } else {
      // Straddles the boundary: completes (and is accounted) next epoch.
      busy_core_time += std::max(0.0, horizon - std::max(start, 0.0));
      in_flight_.push_back({arrival - horizon, done - horizon});
    }
  };

  // 3) Backlogged queue goes first (arrival stamps are <= 0), then fresh
  //    arrivals; anything the cores cannot reach this epoch stays queued.
  std::deque<double> carried;
  std::swap(carried, waiting_);
  for (double arrival : carried) {
    if (free_at.top() >= horizon) {
      waiting_.push_back(arrival - horizon);
    } else {
      dispatch(arrival);
    }
  }
  if (lambda > 0.0) {
    double t = rng.exponential(lambda);
    while (t < horizon) {
      ++res.arrivals;
      if (free_at.top() >= horizon) {
        waiting_.push_back(t - horizon);
      } else {
        dispatch(t);
      }
      t += rng.exponential(lambda);
    }
  }

  // 4) Persist core state rebased to the next epoch's origin.
  core_free_.clear();
  while (!free_at.empty()) {
    core_free_.push_back(std::max(0.0, free_at.top() - horizon));
    free_at.pop();
  }

  if (!latencies.empty()) {
    res.tail_latency = Seconds(latencies.quantile(app_.qos.percentile));
  }
  res.goodput_rate = double(res.sla_met) / horizon;
  res.mean_utilization = std::min(
      1.0, busy_core_time / (double(setting.cores) * horizon));
  return res;
}

}  // namespace gs::workload
