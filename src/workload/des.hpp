// Discrete-event per-request simulation of one epoch on one server: Poisson
// arrivals, exponential service on k cores, FCFS. This is the fidelity
// path; tests cross-validate it against the analytic M/M/k model and the
// epoch simulator can run on it instead of the analytic goodput.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "server/setting.hpp"
#include "workload/app.hpp"
#include "workload/arrivals.hpp"

namespace gs::workload {

struct DesResult {
  std::uint64_t arrivals = 0;
  std::uint64_t completed = 0;   ///< Finished within the epoch.
  std::uint64_t sla_met = 0;     ///< Completed within the QoS latency limit.
  std::uint64_t dropped = 0;     ///< Shed by admission control.
  Seconds tail_latency{0.0};     ///< QoS-percentile latency of completions.
  double goodput_rate = 0.0;     ///< sla_met / epoch length (req/s).
  double mean_utilization = 0.0; ///< Busy core-time / (k * epoch).
};

/// How completion latencies are tracked for the tail-latency estimate.
enum class TailEstimator {
  /// Store every completion latency and take the exact order statistic.
  /// Memory grows with the request count; the backing store is reused
  /// across epochs, so steady-state epochs allocate nothing.
  Exact,
  /// Constant-space P-square estimate (common/stats.hpp). Use for
  /// long-horizon / million-request runs where storing-and-sorting every
  /// sample would dominate; the estimate converges to the exact quantile
  /// but individual epochs can differ in the last few percent. Below the
  /// estimator's 5-sample marker warmup it falls back to the exact
  /// interpolated quantile over the buffered samples.
  P2,
};

struct DesOptions {
  ServiceDistribution service = ServiceDistribution::Exponential;
  double lognormal_cv = 1.5;
  /// Admission control: shed an arrival whose queueing delay would exceed
  /// this many seconds (0 = unbounded queue). Interactive services bound
  /// their queues so admitted requests finish near the SLA; an unbounded
  /// overloaded queue serves almost nothing within SLA.
  double admit_wait_limit_s = 0.0;
  /// Straggler fault (src/faults): service rate multiplier in (0, 1]. A
  /// straggling server completes requests at `service_derate` of the
  /// healthy rate for the epoch.
  double service_derate = 1.0;
  /// Tail-latency tracking policy (Exact keeps results bit-identical to
  /// the historical behavior).
  TailEstimator tail_estimator = TailEstimator::Exact;
};

/// Simulate `epoch` seconds of a k-core server under Poisson(lambda)
/// arrivals with per-core service rate app.service_rate(f). The queue
/// starts empty (bursts arrive at an idle sprint configuration) and
/// requests still in flight at the epoch end are counted as arrivals but
/// not completions.
[[nodiscard]] DesResult simulate_epoch(Rng& rng, const AppDescriptor& app,
                                       const server::ServerSetting& setting,
                                       double lambda, Seconds epoch,
                                       DesOptions options = {});

/// Generalized epoch simulation: arbitrary arrival process and service
/// distribution. simulate_epoch() is the Poisson/exponential special case.
[[nodiscard]] DesResult simulate_epoch_process(
    Rng& rng, const AppDescriptor& app, const server::ServerSetting& setting,
    ArrivalProcess& arrivals, Seconds epoch, DesOptions options = {});

}  // namespace gs::workload
