// SLA-constrained performance model of one server running one app.
//
// Given a server setting S and offered load lambda, the model reports:
//  * capacity(S)      — raw service capacity n * mu(f) (req/s),
//  * sla_capacity(S)  — the largest lambda whose tail latency meets the
//                       app's QoS target (the paper's "*-constrained"
//                       throughput metric),
//  * goodput(S, L)    — requests/s served within SLA. Below sla_capacity
//                       all offered load is good; past it the service
//                       degrades with the congestion-collapse law
//                       c / (1 + delta * (lambda/c - 1)) that models
//                       timeout/retry churn of saturated interactive apps,
//  * latency(S, L)    — achieved tail-latency estimate used by the Hybrid
//                       strategy's QoS reward.
//
// sla_capacity involves an 80-step bisection over the M/M/k tail, so the
// model memoizes it per setting.
#pragma once

#include <array>
#include <optional>

#include "server/setting.hpp"
#include "workload/app.hpp"
#include "workload/queueing.hpp"

namespace gs::workload {

class PerfModel {
 public:
  explicit PerfModel(AppDescriptor app);

  [[nodiscard]] const AppDescriptor& app() const { return app_; }

  /// Raw capacity of the setting in requests/s.
  [[nodiscard]] double capacity(const server::ServerSetting& s) const;

  /// SLA-constrained capacity (memoized).
  [[nodiscard]] double sla_capacity(const server::ServerSetting& s) const;

  /// Requests/s served within the QoS target at offered load lambda.
  [[nodiscard]] double goodput(const server::ServerSetting& s,
                               double lambda) const;

  /// Achieved tail latency estimate (clamped, monotone in lambda); in
  /// overload it grows linearly past the SLA so rewards stay finite.
  [[nodiscard]] Seconds latency(const server::ServerSetting& s,
                                double lambda) const;

  /// Per-core utilization at offered load lambda (for the power model).
  [[nodiscard]] double utilization(const server::ServerSetting& s,
                                   double lambda) const;

  /// Offered load corresponding to burst intensity "Int=k": the processing
  /// capability of k cores at maximum frequency (paper Section IV-D).
  [[nodiscard]] double intensity_load(int int_cores) const;

 private:
  AppDescriptor app_;
  // One slot per lattice setting; filled lazily.
  mutable std::array<std::optional<double>,
                     std::size_t(server::kNumCoreCounts) *
                         server::kNumFreqStates>
      sla_cache_{};
};

}  // namespace gs::workload
