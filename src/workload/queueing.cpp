#include "workload/queueing.hpp"

#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "common/assert.hpp"
#include "common/keyed_cache.hpp"

namespace gs::workload {

namespace {

// Memo for the 80-iteration bisections below. latency_quantile and
// sla_capacity are pure functions of their (exact-bit) arguments, and the
// epoch loop re-evaluates them at a small set of (setting, lambda) points
// thousands of times per sweep cell — the plateau burst shape repeats the
// same arrival rate epoch after epoch. Keys compare by exact bit pattern,
// so a hit returns the identical double a fresh bisection would produce:
// memoization is invisible to fingerprints. thread_local keeps the maps
// unsynchronized; any thread computes the same value for the same key.
struct QueueKey {
  int k;
  double a;
  double b;
  double c;
  bool operator==(const QueueKey&) const = default;
};

struct QueueKeyHash {
  std::size_t operator()(const QueueKey& key) const {
    std::uint64_t h = hash_combine(0x71e5e11aull, std::uint64_t(key.k));
    h = hash_combine(h, key.a);
    h = hash_combine(h, key.b);
    h = hash_combine(h, key.c);
    return std::size_t(h);
  }
};

using QueueMemo = std::unordered_map<QueueKey, double, QueueKeyHash>;

/// Memo lookup with a size backstop: a long-running daemon sweeping ever-
/// fresh arrival rates must not grow the map without bound, so the cache
/// is dropped wholesale at the cap and rebuilt (steady-state sweeps stay
/// far below it).
template <typename Fn>
double memoized(QueueMemo& memo, const QueueKey& key, Fn&& compute) {
  if (const auto it = memo.find(key); it != memo.end()) return it->second;
  const double v = compute();
  constexpr std::size_t kMaxEntries = std::size_t(1) << 16;
  if (memo.size() >= kMaxEntries) memo.clear();
  memo.emplace(key, v);
  return v;
}

}  // namespace

double erlang_c(int k, double a) {
  GS_REQUIRE(k >= 1, "need at least one server");
  GS_REQUIRE(a >= 0.0, "offered load must be non-negative");
  GS_REQUIRE(a < double(k), "Erlang-C requires a stable system (a < k)");
  if (a == 0.0) return 0.0;
  // Erlang-B via the stable recurrence, then convert to Erlang-C.
  double b = 1.0;
  for (int j = 1; j <= k; ++j) {
    b = a * b / (double(j) + a * b);
  }
  const double rho = a / double(k);
  return b / (1.0 - rho * (1.0 - b));
}

double response_tail(int k, double mu, double lambda, double t) {
  GS_REQUIRE(mu > 0.0, "service rate must be positive");
  GS_REQUIRE(lambda >= 0.0, "arrival rate must be non-negative");
  GS_REQUIRE(lambda < double(k) * mu, "response_tail requires stability");
  if (t <= 0.0) return 1.0;
  const double a = lambda / mu;
  const double pq = erlang_c(k, a);
  const double theta = double(k) * mu - lambda;  // waiting-time decay rate
  // T = W + S with P(W = 0) = 1 - pq, P(W > w) = pq * exp(-theta * w),
  // S ~ Exp(mu) independent of W. Convolving:
  //   P(T > t) = (1 - pq) e^{-mu t}
  //            + pq [ theta (e^{-theta t} - e^{-mu t}) / (mu - theta)
  //                   + e^{-theta t} ]            (mu != theta)
  // and the mu == theta limit P(T > t) = (1-pq) e^{-mu t}
  //                                      + pq (1 + mu t) e^{-mu t}.
  const double es = std::exp(-mu * t);
  if (std::abs(mu - theta) < 1e-9 * mu) {
    return (1.0 - pq) * es + pq * (1.0 + mu * t) * es;
  }
  const double et = std::exp(-theta * t);
  const double tail =
      (1.0 - pq) * es + pq * (theta * (et - es) / (mu - theta) + et);
  // Clamp tiny negative values from cancellation.
  return tail < 0.0 ? 0.0 : (tail > 1.0 ? 1.0 : tail);
}

namespace {

double latency_quantile_bisect(int k, double mu, double lambda, double q) {
  const double target = 1.0 - q;
  // Bracket: the quantile is at least the service-time quantile and the
  // tail decays at rate min(mu, theta).
  double lo = 0.0;
  double hi = -std::log(target) / mu;
  while (response_tail(k, mu, lambda, hi) > target) {
    lo = hi;
    hi *= 2.0;
    GS_ENSURE(hi < 1e9, "latency quantile bracket blew up");
  }
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (response_tail(k, mu, lambda, mid) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

Seconds latency_quantile(int k, double mu, double lambda, double q) {
  GS_REQUIRE(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
  GS_REQUIRE(lambda < double(k) * mu, "latency_quantile requires stability");
  thread_local QueueMemo memo;
  return Seconds(memoized(memo, QueueKey{k, mu, lambda, q}, [&] {
    return latency_quantile_bisect(k, mu, lambda, q);
  }));
}

Seconds mean_wait(int k, double mu, double lambda) {
  GS_REQUIRE(mu > 0.0, "service rate must be positive");
  GS_REQUIRE(lambda >= 0.0 && lambda < double(k) * mu,
             "mean_wait requires a stable system");
  if (lambda == 0.0) return Seconds(0.0);
  const double pq = erlang_c(k, lambda / mu);
  return Seconds(pq / (double(k) * mu - lambda));
}

Seconds mean_response(int k, double mu, double lambda) {
  return mean_wait(k, mu, lambda) + Seconds(1.0 / mu);
}

double mean_in_system(int k, double mu, double lambda) {
  return lambda * mean_response(k, mu, lambda).value();
}

double sla_capacity(int k, double mu, double q, Seconds limit) {
  GS_REQUIRE(limit.value() > 0.0, "SLA limit must be positive");
  thread_local QueueMemo memo;
  return memoized(memo, QueueKey{k, mu, q, limit.value()}, [&] {
    // Even an empty system has latency = service time; if its q-quantile
    // exceeds the limit no load can be served within SLA.
    const double idle_quantile = -std::log(1.0 - q) / mu;
    if (idle_quantile > limit.value()) return 0.0;
    double lo = 0.0;
    double hi = double(k) * mu * (1.0 - 1e-9);
    for (int i = 0; i < 80; ++i) {
      const double mid = 0.5 * (lo + hi);
      const double tail = response_tail(k, mu, mid, limit.value());
      if (tail <= 1.0 - q) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo;
  });
}

}  // namespace gs::workload
