#include "workload/loadgen.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "common/assert.hpp"
#include "common/stats.hpp"

namespace gs::workload {

ClosedLoopResult simulate_closed_loop(Rng& rng, const AppDescriptor& app,
                                      const server::ServerSetting& setting,
                                      const ClosedLoopConfig& cfg,
                                      Seconds epoch) {
  GS_REQUIRE(cfg.clients > 0, "need at least one client");
  GS_REQUIRE(cfg.mean_think.value() >= 0.0,
             "think time must be non-negative");
  GS_REQUIRE(epoch.value() > 0.0, "epoch must be positive");

  const double mu = app.service_rate(setting.frequency());
  const double horizon = epoch.value();
  const double think_rate =
      cfg.mean_think.value() > 0.0 ? 1.0 / cfg.mean_think.value() : 0.0;

  // Issue events, chronological. Clients desynchronize over the first
  // think window.
  std::priority_queue<double, std::vector<double>, std::greater<>> issues;
  for (int c = 0; c < cfg.clients; ++c) {
    issues.push(rng.uniform() * std::max(1e-3, cfg.mean_think.value()));
  }
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (int c = 0; c < setting.cores; ++c) free_at.push(0.0);

  ClosedLoopResult res;
  QuantileReservoir latencies;
  RunningStats latency_stats;
  while (!issues.empty()) {
    const double t = issues.top();
    issues.pop();
    if (t >= horizon) continue;  // client retired for this epoch
    const double core_free = free_at.top();
    free_at.pop();
    const double start = std::max(t, core_free);
    const double service = rng.exponential(mu);
    const double done = start + service;
    free_at.push(done);
    if (done <= horizon) {
      ++res.completed;
      const double latency = done - t;
      latencies.add(latency);
      latency_stats.add(latency);
      if (latency <= app.qos.limit.value()) ++res.sla_met;
      const double think =
          think_rate > 0.0 ? rng.exponential(think_rate) : 0.0;
      issues.push(done + think);
    }
    // Requests unfinished at the horizon retire their client.
  }

  res.throughput = double(res.completed) / horizon;
  res.goodput_rate = double(res.sla_met) / horizon;
  if (!latencies.empty()) {
    res.mean_latency = Seconds(latency_stats.mean());
    res.tail_latency = Seconds(latencies.quantile(app.qos.percentile));
  }
  return res;
}

}  // namespace gs::workload
