// Application descriptors for the paper's three interactive workloads
// (Table II), with the service-model and power-model parameters our
// simulated substrate needs in place of the real binaries.
//
// Service model: a request needs `base_service_s` seconds of one core at
// the reference frequency (2.0 GHz). A fraction `freq_sensitivity` of that
// work scales with frequency (compute-bound part); the rest is
// memory/IO-bound and does not:
//
//   speedup(f) = 1 / ((1 - beta) + beta * f_ref / f)
//
// `congestion_delta` models the goodput collapse of a saturated interactive
// service (timeouts, retries, queue churn); it is calibrated so that the
// max-sprint/Normal gain at full burst intensity lands at the paper's
// measured 4.8x / 4.1x / 4.7x.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "server/power_model.hpp"
#include "workload/qos.hpp"

namespace gs::workload {

struct AppDescriptor {
  std::string name;
  std::string metric;  ///< Throughput metric name the paper reports.
  double memory_gb = 0.0;
  QosSpec qos;

  /// Seconds of one reference-frequency (2.0 GHz) core per request.
  double base_service_s = 0.05;
  /// Fraction of service time that scales with core frequency (beta).
  double freq_sensitivity = 0.7;
  /// Goodput-collapse coefficient under overload (see perf_model.hpp).
  double congestion_delta = 0.25;

  /// Measured power anchors used to calibrate the power model.
  Watts normal_full_power{100.0};
  Watts sprint_peak_power{155.0};
  /// Derived from the two anchors above; carries no information of its
  /// own. gs-analyze: fingerprint-exempt(recomputed from mixed anchors)
  server::ActivityProfile activity;

  /// Per-core service speedup at frequency f relative to the reference.
  [[nodiscard]] double speedup(Gigahertz f) const;

  /// Per-core service rate (requests/s) at frequency f.
  [[nodiscard]] double service_rate(Gigahertz f) const;
};

/// Reference frequency the service demand is expressed at.
[[nodiscard]] Gigahertz reference_frequency();

/// SPECjbb 2013: Java business benchmark, jops @ 99%ile <= 500 ms.
[[nodiscard]] AppDescriptor specjbb();
/// CloudSuite Web-Search: query serving, ops @ 90%ile <= 500 ms.
[[nodiscard]] AppDescriptor websearch();
/// Memcached: in-memory KV cache, rps @ 95%ile <= 10 ms.
[[nodiscard]] AppDescriptor memcached();

/// All three paper workloads.
[[nodiscard]] std::vector<AppDescriptor> all_apps();

}  // namespace gs::workload
