#include "workload/perf_model.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace gs::workload {

namespace {
std::size_t slot(const server::ServerSetting& s) {
  return std::size_t(s.cores - server::kMinCores) * server::kNumFreqStates +
         std::size_t(s.freq_idx);
}
}  // namespace

PerfModel::PerfModel(AppDescriptor app) : app_(std::move(app)) {}

double PerfModel::capacity(const server::ServerSetting& s) const {
  return double(s.cores) * app_.service_rate(s.frequency());
}

double PerfModel::sla_capacity(const server::ServerSetting& s) const {
  auto& cached = sla_cache_[slot(s)];
  if (!cached) {
    const double mu = app_.service_rate(s.frequency());
    cached = workload::sla_capacity(s.cores, mu, app_.qos.percentile,
                                    app_.qos.limit);
  }
  return *cached;
}

double PerfModel::goodput(const server::ServerSetting& s,
                          double lambda) const {
  GS_REQUIRE(lambda >= 0.0, "offered load must be non-negative");
  const double c = sla_capacity(s);
  if (c <= 0.0) return 0.0;
  if (lambda <= c) return lambda;
  return c / (1.0 + app_.congestion_delta * (lambda / c - 1.0));
}

Seconds PerfModel::latency(const server::ServerSetting& s,
                           double lambda) const {
  const double mu = app_.service_rate(s.frequency());
  const double cap = capacity(s);
  // Evaluate the analytic quantile up to 98% of raw capacity; past that,
  // steady state does not exist, so extrapolate linearly in overload depth.
  const double stable = 0.98 * cap;
  if (lambda < stable) {
    return latency_quantile(s.cores, mu, lambda, app_.qos.percentile);
  }
  const Seconds at_edge =
      latency_quantile(s.cores, mu, stable, app_.qos.percentile);
  const double overload = lambda / cap - 0.98;
  return at_edge + app_.qos.limit * (10.0 * overload);
}

double PerfModel::utilization(const server::ServerSetting& s,
                              double lambda) const {
  const double cap = capacity(s);
  return std::clamp(lambda / cap, 0.0, 1.0);
}

double PerfModel::intensity_load(int int_cores) const {
  GS_REQUIRE(int_cores > 0, "intensity cores must be positive");
  return double(int_cores) * app_.service_rate(reference_frequency());
}

}  // namespace gs::workload
