#include "faults/fault_spec.hpp"

#include <array>
#include <sstream>

#include "common/assert.hpp"

namespace gs::faults {

namespace {

constexpr std::array<FaultClass, kNumFaultClasses> kAllClasses = {
    FaultClass::GridBrownout,   FaultClass::PanelDropout,
    FaultClass::CloudTransient, FaultClass::BatteryFade,
    FaultClass::ChargeLoss,     FaultClass::PssStuck,
    FaultClass::PssLatency,     FaultClass::ServerCrash,
    FaultClass::ServerStraggler, FaultClass::SensorNoise,
    FaultClass::SensorDropout,
};

}  // namespace

const std::array<FaultClass, kNumFaultClasses>& all_fault_classes() {
  return kAllClasses;
}

const char* to_string(FaultClass c) {
  switch (c) {
    case FaultClass::GridBrownout:
      return "GridBrownout";
    case FaultClass::PanelDropout:
      return "PanelDropout";
    case FaultClass::CloudTransient:
      return "CloudTransient";
    case FaultClass::BatteryFade:
      return "BatteryFade";
    case FaultClass::ChargeLoss:
      return "ChargeLoss";
    case FaultClass::PssStuck:
      return "PssStuck";
    case FaultClass::PssLatency:
      return "PssLatency";
    case FaultClass::ServerCrash:
      return "ServerCrash";
    case FaultClass::ServerStraggler:
      return "ServerStraggler";
    case FaultClass::SensorNoise:
      return "SensorNoise";
    case FaultClass::SensorDropout:
      return "SensorDropout";
  }
  return "?";
}

const char* spec_key(FaultClass c) {
  switch (c) {
    case FaultClass::GridBrownout:
      return "brownout";
    case FaultClass::PanelDropout:
      return "panel";
    case FaultClass::CloudTransient:
      return "cloud";
    case FaultClass::BatteryFade:
      return "fade";
    case FaultClass::ChargeLoss:
      return "charge";
    case FaultClass::PssStuck:
      return "pss_stuck";
    case FaultClass::PssLatency:
      return "pss_latency";
    case FaultClass::ServerCrash:
      return "crash";
    case FaultClass::ServerStraggler:
      return "straggler";
    case FaultClass::SensorNoise:
      return "sensor_noise";
    case FaultClass::SensorDropout:
      return "sensor_dropout";
  }
  return "?";
}

bool FaultSpec::any() const {
  for (FaultClass c : kAllClasses) {
    if (intensity(c) > 0.0) return true;
  }
  return false;
}

double FaultSpec::intensity(FaultClass c) const {
  switch (c) {
    case FaultClass::GridBrownout:
      return brownout;
    case FaultClass::PanelDropout:
      return panel;
    case FaultClass::CloudTransient:
      return cloud;
    case FaultClass::BatteryFade:
      return fade;
    case FaultClass::ChargeLoss:
      return charge;
    case FaultClass::PssStuck:
      return pss_stuck;
    case FaultClass::PssLatency:
      return pss_latency;
    case FaultClass::ServerCrash:
      return crash;
    case FaultClass::ServerStraggler:
      return straggler;
    case FaultClass::SensorNoise:
      return sensor_noise;
    case FaultClass::SensorDropout:
      return sensor_dropout;
  }
  return 0.0;
}

void FaultSpec::set_intensity(FaultClass c, double v) {
  GS_REQUIRE(v >= 0.0 && v <= 1.0, "fault intensity must be in [0,1]");
  switch (c) {
    case FaultClass::GridBrownout:
      brownout = v;
      return;
    case FaultClass::PanelDropout:
      panel = v;
      return;
    case FaultClass::CloudTransient:
      cloud = v;
      return;
    case FaultClass::BatteryFade:
      fade = v;
      return;
    case FaultClass::ChargeLoss:
      charge = v;
      return;
    case FaultClass::PssStuck:
      pss_stuck = v;
      return;
    case FaultClass::PssLatency:
      pss_latency = v;
      return;
    case FaultClass::ServerCrash:
      crash = v;
      return;
    case FaultClass::ServerStraggler:
      straggler = v;
      return;
    case FaultClass::SensorNoise:
      sensor_noise = v;
      return;
    case FaultClass::SensorDropout:
      sensor_dropout = v;
      return;
  }
}

FaultSpec FaultSpec::uniform(double intensity, std::uint64_t seed) {
  FaultSpec s;
  for (FaultClass c : kAllClasses) s.set_intensity(c, intensity);
  s.seed = seed;
  return s;
}

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    GS_REQUIRE(eq != std::string::npos,
               "fault spec entry '" + item + "' is not key=value");
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    double num = 0.0;
    try {
      num = std::stod(val);
    } catch (...) {
      GS_REQUIRE(false, "fault spec value '" + val + "' is not a number");
    }
    if (key == "seed") {
      GS_REQUIRE(num >= 0.0, "fault seed must be non-negative");
      spec.seed = std::uint64_t(num);
      continue;
    }
    if (key == "all") {
      GS_REQUIRE(num >= 0.0 && num <= 1.0,
                 "fault intensity must be in [0,1]");
      for (FaultClass c : kAllClasses) spec.set_intensity(c, num);
      continue;
    }
    bool known = false;
    for (FaultClass c : kAllClasses) {
      if (key == spec_key(c)) {
        spec.set_intensity(c, num);
        known = true;
        break;
      }
    }
    GS_REQUIRE(known, "unknown fault class '" + key + "' in fault spec");
  }
  return spec;
}

std::string FaultSpec::to_string() const {
  std::ostringstream out;
  bool first = true;
  for (FaultClass c : kAllClasses) {
    const double v = intensity(c);
    if (v <= 0.0) continue;
    if (!first) out << ",";
    out << spec_key(c) << "=" << v;
    first = false;
  }
  if (seed != 0) {
    if (!first) out << ",";
    out << "seed=" << seed;
  }
  return out.str();
}

}  // namespace gs::faults
