// Deterministic, seed-driven fault event schedule.
//
// The generator draws a fixed population of *candidate* events per fault
// class from Rng::stream(seed, {class}) — starts, durations, severities and
// targets are sampled independently of the spec's intensities. A candidate
// activates iff its activation draw falls below the class intensity, and
// its applied magnitude scales with the intensity. Two consequences:
//
//  * identical (spec, horizon, epoch, servers) inputs replay the identical
//    event stream (the determinism acceptance criterion), and
//  * schedules are *nested* in intensity — the events active at 0.2 are a
//    subset of those active at 0.4, with weaker magnitudes — so the
//    resilience bench's QoS-vs-intensity curves degrade monotonically
//    instead of resampling an unrelated failure history per point.
//
// Schedules serialize to CSV so a replayed incident can be attached to a
// bug report and re-run exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/fwd.hpp"
#include "common/units.hpp"
#include "faults/fault_spec.hpp"

namespace gs::faults {

/// One timed fault: [start, start + duration) at the given severity.
/// `target` selects a green server for ServerCrash / ServerStraggler
/// events and is -1 for component-wide classes.
struct FaultEvent {
  FaultClass cls = FaultClass::GridBrownout;
  Seconds start{0.0};
  Seconds duration{0.0};
  double magnitude = 0.0;  ///< Severity in [0,1] (fraction lost / derated).
  int target = -1;

  [[nodiscard]] bool covers(Seconds t) const {
    return t.value() >= start.value() &&
           t.value() < start.value() + duration.value();
  }
};

class FaultSchedule {
 public:
  FaultSchedule() = default;  ///< Empty schedule (no faults).

  /// Generate the event stream for a run of length `horizon` with
  /// scheduling epoch `epoch` over `servers` green servers. Times are
  /// run-relative (t = 0 is the first fault-injected epoch).
  [[nodiscard]] static FaultSchedule generate(const FaultSpec& spec,
                                              Seconds horizon, Seconds epoch,
                                              int servers);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Combined severity of a class at time t (events overlap via the
  /// complement product: two 50% droops give 75%). Classes with a target
  /// only match events for that target.
  [[nodiscard]] double magnitude_at(FaultClass c, Seconds t,
                                    int target = -1) const;
  [[nodiscard]] bool active(FaultClass c, Seconds t, int target = -1) const;

  /// CSV round-trip for replaying a recorded incident.
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] static FaultSchedule from_csv(const std::string& text);

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }

  // --- Checkpoint/restore (src/ckpt): binary round-trip of the spec and
  // the full event stream (bit-exact, unlike the human-readable CSV).
  static constexpr std::uint32_t kStateVersion = 1;
  void save_state(ckpt::StateWriter& w) const;
  void load_state(ckpt::StateReader& r);

 private:
  std::vector<FaultEvent> events_;
  FaultSpec spec_;
};

}  // namespace gs::faults
