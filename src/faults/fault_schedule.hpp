// Deterministic, seed-driven fault event schedule.
//
// The generator draws a fixed population of *candidate* events per fault
// class from Rng::stream(seed, {class}) — starts, durations, severities and
// targets are sampled independently of the spec's intensities. A candidate
// activates iff its activation draw falls below the class intensity, and
// its applied magnitude scales with the intensity. Two consequences:
//
//  * identical (spec, horizon, epoch, servers) inputs replay the identical
//    event stream (the determinism acceptance criterion), and
//  * schedules are *nested* in intensity — the events active at 0.2 are a
//    subset of those active at 0.4, with weaker magnitudes — so the
//    resilience bench's QoS-vs-intensity curves degrade monotonically
//    instead of resampling an unrelated failure history per point.
//
// generate_correlated() layers the latent processes of faults/correlation.hpp
// on top: the *same* candidate population and draw order, with only the
// activation threshold modulated per candidate, plus a single-generation
// rack-cascade pass. With a disabled CorrelationSpec it returns generate()'s
// schedule bit for bit.
//
// Schedules serialize to CSV so a replayed incident can be attached to a
// bug report and re-run exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/fwd.hpp"
#include "common/units.hpp"
#include "faults/correlation.hpp"
#include "faults/fault_spec.hpp"

namespace gs::faults {

/// Provenance of an event: drawn independently, activated only because a
/// latent storm process boosted its class, or propagated by a rack cascade.
enum class FaultOrigin : std::uint8_t {
  Independent = 0,
  Storm = 1,
  Cascade = 2,
};

[[nodiscard]] const char* to_string(FaultOrigin o);

/// One timed fault: [start, start + duration) at the given severity.
/// `target` selects a green server for ServerCrash / ServerStraggler
/// events and is -1 for component-wide classes.
struct FaultEvent {
  FaultClass cls = FaultClass::GridBrownout;
  Seconds start{0.0};
  Seconds duration{0.0};
  double magnitude = 0.0;  ///< Severity in [0,1] (fraction lost / derated).
  int target = -1;
  FaultOrigin origin = FaultOrigin::Independent;

  [[nodiscard]] bool covers(Seconds t) const {
    return t.value() >= start.value() &&
           t.value() < start.value() + duration.value();
  }
};

class FaultSchedule {
 public:
  FaultSchedule() = default;  ///< Empty schedule (no faults).

  /// Generate the event stream for a run of length `horizon` with
  /// scheduling epoch `epoch` over `servers` green servers. Times are
  /// run-relative (t = 0 is the first fault-injected epoch).
  [[nodiscard]] static FaultSchedule generate(const FaultSpec& spec,
                                              Seconds horizon, Seconds epoch,
                                              int servers);

  /// Correlation-aware entry point: realizes a StormModel from `corr` and
  /// modulates each candidate's activation probability by its latent
  /// weather-front and regime factors, then runs one rack-cascade
  /// propagation pass over the trigger events. When `corr` is disabled
  /// (the default spec) this is generate() bit for bit.
  [[nodiscard]] static FaultSchedule generate_correlated(
      const FaultSpec& spec, const CorrelationSpec& corr, Seconds horizon,
      Seconds epoch, int servers);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Combined severity of a class at time t (events overlap via the
  /// complement product: two 50% droops give 75%). Classes with a target
  /// only match events for that target.
  [[nodiscard]] double magnitude_at(FaultClass c, Seconds t,
                                    int target = -1) const;
  [[nodiscard]] bool active(FaultClass c, Seconds t, int target = -1) const;

  /// active() restricted to correlated events (origin Storm or Cascade),
  /// for the Monitor's correlated-burst telemetry.
  [[nodiscard]] bool correlated_active(FaultClass c, Seconds t,
                                       int target = -1) const;

  /// CSV round-trip for replaying a recorded incident. The trailing
  /// `origin` column is optional on input (older captures omit it).
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] static FaultSchedule from_csv(const std::string& text);

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  /// The correlation knobs this schedule was realized under (disabled for
  /// generate() / from_csv() schedules).
  [[nodiscard]] const CorrelationSpec& correlation() const {
    return storm_.spec();
  }
  /// The realized latent processes (inert unless generate_correlated ran
  /// with an enabled spec).
  [[nodiscard]] const StormModel& storm() const { return storm_; }

  // --- Checkpoint/restore (src/ckpt): binary round-trip of the spec, the
  // realized storm model and the full event stream (bit-exact, unlike the
  // human-readable CSV). v2 adds per-event origins and the storm model.
  static constexpr std::uint32_t kStateVersion = 2;
  void save_state(ckpt::StateWriter& w) const;
  void load_state(ckpt::StateReader& r);

 private:
  std::vector<FaultEvent> events_;
  FaultSpec spec_;
  StormModel storm_;
};

}  // namespace gs::faults
