#include "faults/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "ckpt/state_io.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"

namespace gs::faults {

namespace {

// Latent-process streams are disjoint from the base generator's candidate
// streams (faults/fault_schedule.cpp uses 0xfa170), so enabling correlation
// never advances — and therefore never perturbs — the candidate draws.
constexpr std::uint64_t kFrontStreamTag = 0xf207ull;
constexpr std::uint64_t kRegimeStreamTag = 0x4e91ull;

}  // namespace

bool is_weather_class(FaultClass c) {
  return c == FaultClass::PanelDropout || c == FaultClass::CloudTransient ||
         c == FaultClass::GridBrownout;
}

int RackTopology::rack_of(int server) const {
  GS_REQUIRE(server >= 0 && server < servers,
             "server index outside rack topology");
  return server / std::max(1, servers_per_rack);
}

bool RackTopology::same_rack(int a, int b) const {
  return rack_of(a) == rack_of(b);
}

bool CorrelationSpec::enabled() const {
  return storm_intensity > 0.0 || cascade_hazard > 0.0 || regime_on > 0.0;
}

CorrelationSpec CorrelationSpec::parse(const std::string& text) {
  CorrelationSpec spec;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    GS_REQUIRE(eq != std::string::npos,
               "correlation spec entry '" + item + "' is not key=value");
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    double num = 0.0;
    try {
      num = std::stod(val);
    } catch (...) {
      GS_REQUIRE(false,
                 "correlation spec value '" + val + "' is not a number");
    }
    if (key == "storm") {
      GS_REQUIRE(num >= 0.0 && num <= 1.0, "storm must be in [0,1]");
      spec.storm_intensity = num;
    } else if (key == "front_spacing") {
      GS_REQUIRE(num > 0.0, "front_spacing must be positive");
      spec.front_spacing_epochs = num;
    } else if (key == "front_min") {
      GS_REQUIRE(num >= 1.0, "front_min must be >= 1 epoch");
      spec.front_min_epochs = int(num);
    } else if (key == "front_max") {
      GS_REQUIRE(num >= 1.0, "front_max must be >= 1 epoch");
      spec.front_max_epochs = int(num);
    } else if (key == "front_boost") {
      GS_REQUIRE(num > 0.0, "front_boost must be positive");
      spec.front_boost = num;
    } else if (key == "cascade") {
      GS_REQUIRE(num >= 0.0 && num <= 1.0, "cascade must be in [0,1]");
      spec.cascade_hazard = num;
    } else if (key == "cascade_window") {
      GS_REQUIRE(num >= 1.0, "cascade_window must be >= 1 epoch");
      spec.cascade_window_epochs = int(num);
    } else if (key == "rack") {
      GS_REQUIRE(num >= 1.0, "rack (servers per rack) must be >= 1");
      spec.servers_per_rack = int(num);
    } else if (key == "regime_on") {
      GS_REQUIRE(num >= 0.0 && num <= 1.0, "regime_on must be in [0,1]");
      spec.regime_on = num;
    } else if (key == "regime_off") {
      GS_REQUIRE(num > 0.0 && num <= 1.0, "regime_off must be in (0,1]");
      spec.regime_off = num;
    } else if (key == "regime_boost") {
      GS_REQUIRE(num > 0.0, "regime_boost must be positive");
      spec.regime_boost = num;
    } else if (key == "regime_damp") {
      GS_REQUIRE(num >= 0.0, "regime_damp must be non-negative");
      spec.regime_damp = num;
    } else if (key == "seed") {
      GS_REQUIRE(num >= 0.0, "correlation seed must be non-negative");
      spec.seed = std::uint64_t(num);
    } else {
      GS_REQUIRE(false, "unknown key '" + key + "' in correlation spec");
    }
  }
  GS_REQUIRE(spec.front_min_epochs <= spec.front_max_epochs,
             "front_min must not exceed front_max");
  return spec;
}

std::string CorrelationSpec::to_string() const {
  const CorrelationSpec def;
  std::ostringstream out;
  bool first = true;
  const auto emit = [&](const char* key, auto v, auto dv) {
    if (v == dv) return;
    if (!first) out << ",";
    out << key << "=" << v;
    first = false;
  };
  emit("storm", storm_intensity, def.storm_intensity);
  emit("front_spacing", front_spacing_epochs, def.front_spacing_epochs);
  emit("front_min", front_min_epochs, def.front_min_epochs);
  emit("front_max", front_max_epochs, def.front_max_epochs);
  emit("front_boost", front_boost, def.front_boost);
  emit("cascade", cascade_hazard, def.cascade_hazard);
  emit("cascade_window", cascade_window_epochs, def.cascade_window_epochs);
  emit("rack", servers_per_rack, def.servers_per_rack);
  emit("regime_on", regime_on, def.regime_on);
  emit("regime_off", regime_off, def.regime_off);
  emit("regime_boost", regime_boost, def.regime_boost);
  emit("regime_damp", regime_damp, def.regime_damp);
  emit("seed", seed, def.seed);
  return out.str();
}

StormModel::StormModel(const FaultSpec& spec, const CorrelationSpec& corr,
                       Seconds horizon, Seconds epoch)
    : corr_(corr) {
  GS_REQUIRE(horizon.value() >= 0.0, "storm horizon must be non-negative");
  GS_REQUIRE(epoch.value() > 0.0, "storm epoch must be positive");
  GS_REQUIRE(corr.front_min_epochs >= 1 &&
                 corr.front_max_epochs >= corr.front_min_epochs,
             "front length bounds must satisfy 1 <= min <= max");
  if (!corr.enabled() || horizon.value() <= 0.0) return;
  const std::uint64_t seed = corr.seed != 0 ? corr.seed : spec.seed;
  const double n_epochs = horizon.value() / epoch.value();

  if (corr.storm_intensity > 0.0) {
    Rng rng = Rng::stream(seed, {kFrontStreamTag});
    const auto n_fronts = std::max<std::uint64_t>(
        1, std::uint64_t(n_epochs / corr.front_spacing_epochs));
    const auto span =
        std::uint64_t(corr.front_max_epochs - corr.front_min_epochs + 1);
    for (std::uint64_t i = 0; i < n_fronts; ++i) {
      // Unconditional draws, like the base generator's candidates: the
      // front population is intensity-independent, so fronts nest in
      // storm_intensity and the stream position never depends on which
      // fronts activate.
      const double start_frac = rng.uniform();
      const auto len_epochs =
          corr.front_min_epochs + std::int64_t(rng.uniform_int(span));
      const double latent = rng.uniform(0.3, 1.0);
      const double activation = rng.uniform();
      if (activation >= corr.storm_intensity) continue;
      StormFront f;
      f.start = Seconds(start_frac * horizon.value());
      f.duration = epoch * double(len_epochs);
      f.intensity = latent;
      fronts_.push_back(f);
    }
    std::stable_sort(fronts_.begin(), fronts_.end(),
                     [](const StormFront& a, const StormFront& b) {
                       return a.start.value() < b.start.value();
                     });
  }

  if (corr.regime_on > 0.0) {
    // Two-state Markov chain iterated once per epoch; a single draw per
    // epoch serves both transition tests, so the realized windows are a
    // pure function of (seed, regime_on, regime_off, horizon, epoch).
    Rng rng = Rng::stream(seed, {kRegimeStreamTag});
    bool stormy = false;
    Seconds open{0.0};
    const auto total = std::uint64_t(std::ceil(n_epochs));
    for (std::uint64_t k = 0; k < total; ++k) {
      const double u = rng.uniform();
      const Seconds t = epoch * double(k);
      if (!stormy && u < corr.regime_on) {
        stormy = true;
        open = t;
      } else if (stormy && u < corr.regime_off) {
        stormy = false;
        regimes_.push_back({open, t});
      }
    }
    if (stormy) regimes_.push_back({open, horizon});
  }
}

double StormModel::weather_boost(FaultClass c, Seconds t) const {
  if (!is_weather_class(c) || fronts_.empty()) return 1.0;
  double boost = 1.0;
  for (const StormFront& f : fronts_) {
    if (f.covers(t)) boost *= 1.0 + (corr_.front_boost - 1.0) * f.intensity;
  }
  return boost;
}

double StormModel::regime_factor(Seconds t) const {
  if (corr_.regime_on <= 0.0) return 1.0;
  for (const RegimeWindow& w : regimes_) {
    if (w.covers(t)) return corr_.regime_boost;
  }
  return corr_.regime_damp;
}

void StormModel::save_state(ckpt::StateWriter& w) const {
  w.begin_section("storm_model", kStateVersion);
  w.f64(corr_.storm_intensity);
  w.f64(corr_.front_spacing_epochs);
  w.i64(corr_.front_min_epochs);
  w.i64(corr_.front_max_epochs);
  w.f64(corr_.front_boost);
  w.f64(corr_.cascade_hazard);
  w.i64(corr_.cascade_window_epochs);
  w.i64(corr_.servers_per_rack);
  w.f64(corr_.regime_on);
  w.f64(corr_.regime_off);
  w.f64(corr_.regime_boost);
  w.f64(corr_.regime_damp);
  w.u64(corr_.seed);
  w.u64(fronts_.size());
  for (const StormFront& f : fronts_) {
    w.f64(f.start.value());
    w.f64(f.duration.value());
    w.f64(f.intensity);
  }
  w.u64(regimes_.size());
  for (const RegimeWindow& rw : regimes_) {
    w.f64(rw.start.value());
    w.f64(rw.end.value());
  }
  w.end_section();
}

void StormModel::load_state(ckpt::StateReader& r) {
  r.begin_section("storm_model", kStateVersion);
  CorrelationSpec corr;
  corr.storm_intensity = r.f64();
  corr.front_spacing_epochs = r.f64();
  corr.front_min_epochs = int(r.i64());
  corr.front_max_epochs = int(r.i64());
  corr.front_boost = r.f64();
  corr.cascade_hazard = r.f64();
  corr.cascade_window_epochs = int(r.i64());
  corr.servers_per_rack = int(r.i64());
  corr.regime_on = r.f64();
  corr.regime_off = r.f64();
  corr.regime_boost = r.f64();
  corr.regime_damp = r.f64();
  corr.seed = r.u64();
  std::vector<StormFront> fronts;
  const auto n_fronts = std::size_t(r.u64());
  fronts.reserve(n_fronts);
  for (std::size_t i = 0; i < n_fronts; ++i) {
    StormFront f;
    f.start = Seconds(r.f64());
    f.duration = Seconds(r.f64());
    f.intensity = r.f64();
    fronts.push_back(f);
  }
  std::vector<RegimeWindow> regimes;
  const auto n_regimes = std::size_t(r.u64());
  regimes.reserve(n_regimes);
  for (std::size_t i = 0; i < n_regimes; ++i) {
    RegimeWindow rw;
    rw.start = Seconds(r.f64());
    rw.end = Seconds(r.f64());
    regimes.push_back(rw);
  }
  r.end_section();
  corr_ = corr;
  fronts_ = std::move(fronts);
  regimes_ = std::move(regimes);
}

}  // namespace gs::faults
