// Correlated fault processes layered over the independent FaultSchedule
// generator (robustness extension; see DESIGN.md §12).
//
// Real incidents cluster: a storm front cuts panel output *and* browns out
// the feeder *and* crashes rack-adjacent machines. Three deterministic,
// seeded latent processes reproduce that structure:
//
//  * weather fronts  — time-windowed latent intensities that jointly scale
//    the activation probability of the supply-side weather classes
//    (PanelDropout, CloudTransient, GridBrownout);
//  * rack cascades   — a ServerCrash (or shared-PSS PssStuck) event raises
//    the crash hazard of its rack neighbours for a bounded propagation
//    window, using a static rack topology map;
//  * burst regimes   — a two-state Markov chain (quiet/stormy) modulates
//    every class's activation probability, replacing the independent
//    per-candidate Bernoulli draws with clustered on/off episodes.
//
// Correlation is strictly opt-in: a default CorrelationSpec is disabled and
// FaultSchedule::generate_correlated returns the plain independent schedule
// bit-for-bit, so existing schedules, CSV replays and sweep fingerprints
// are unchanged. The latent processes draw from their own Rng::stream tags,
// never advancing the candidate streams of the base generator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/fwd.hpp"
#include "common/units.hpp"
#include "faults/fault_spec.hpp"

namespace gs::faults {

/// The supply-side classes a weather front modulates jointly.
[[nodiscard]] bool is_weather_class(FaultClass c);

/// Static rack topology: servers are assigned to racks in contiguous
/// blocks of `servers_per_rack` (server / servers_per_rack = rack index).
struct RackTopology {
  int servers = 1;
  int servers_per_rack = 4;

  [[nodiscard]] int rack_of(int server) const;
  [[nodiscard]] bool same_rack(int a, int b) const;
};

/// Knobs of the three latent processes. All-zero process gains (the
/// default) disable correlation entirely.
struct CorrelationSpec {
  // --- Weather fronts -------------------------------------------------------
  /// Activation probability of each candidate front in [0,1]; 0 disables.
  double storm_intensity = 0.0;
  /// Mean spacing between candidate fronts, in epochs.
  double front_spacing_epochs = 60.0;
  /// Front length bounds, in epochs.
  int front_min_epochs = 5;
  int front_max_epochs = 30;
  /// Peak joint multiplier on the weather classes' activation probability
  /// (scaled by each front's latent intensity in [0.3, 1]).
  double front_boost = 3.0;

  // --- Rack cascades --------------------------------------------------------
  /// Probability a trigger (ServerCrash/PssStuck) propagates a crash to
  /// each rack neighbour within the window; 0 disables.
  double cascade_hazard = 0.0;
  /// Propagation window after the trigger start, in epochs.
  int cascade_window_epochs = 3;
  /// Rack topology map: servers per rack (contiguous blocks).
  int servers_per_rack = 4;

  // --- Burst regimes (Markov-modulated activation) --------------------------
  /// Per-epoch quiet->stormy transition probability; 0 disables.
  double regime_on = 0.0;
  /// Per-epoch stormy->quiet transition probability.
  double regime_off = 0.25;
  /// Activation multiplier while the chain is stormy...
  double regime_boost = 2.0;
  /// ...and while it is quiet (faults cluster into the stormy episodes).
  double regime_damp = 0.25;

  /// Latent-process seed; 0 reuses the FaultSpec seed, so one seed knob
  /// moves candidates and storms together by default.
  std::uint64_t seed = 0;

  /// Any latent process active? False for a default-constructed spec:
  /// generate_correlated is then bit-identical to generate().
  [[nodiscard]] bool enabled() const;

  /// Parse "storm=0.6,cascade=0.5,regime_on=0.1,...,seed=9" (keys:
  /// storm, front_spacing, front_min, front_max, front_boost, cascade,
  /// cascade_window, rack, regime_on, regime_off, regime_boost,
  /// regime_damp, seed). Throws gs::ContractError on unknown keys or
  /// out-of-range values.
  [[nodiscard]] static CorrelationSpec parse(const std::string& text);
  /// Inverse of parse(); emits only non-default fields.
  [[nodiscard]] std::string to_string() const;
};

/// One realized weather front: while it covers t, the weather classes'
/// activation probabilities are jointly multiplied.
struct StormFront {
  Seconds start{0.0};
  Seconds duration{0.0};
  double intensity = 0.0;  ///< Latent strength in [0.3, 1].

  [[nodiscard]] bool covers(Seconds t) const {
    return t.value() >= start.value() &&
           t.value() < start.value() + duration.value();
  }
};

/// One stormy interval of the Markov regime chain: [start, end).
struct RegimeWindow {
  Seconds start{0.0};
  Seconds end{0.0};

  [[nodiscard]] bool covers(Seconds t) const {
    return t.value() >= start.value() && t.value() < end.value();
  }
};

/// The realized latent processes of one run. Construction is a pure
/// function of (seed, spec, horizon, epoch) — same inputs, same fronts and
/// regime windows — and the model is immutable afterwards, so a schedule
/// can carry it for telemetry and checkpoint round-trips.
class StormModel {
 public:
  StormModel() = default;  ///< Inert (disabled spec, no fronts).
  StormModel(const FaultSpec& spec, const CorrelationSpec& corr,
             Seconds horizon, Seconds epoch);

  [[nodiscard]] const CorrelationSpec& spec() const { return corr_; }
  [[nodiscard]] const std::vector<StormFront>& fronts() const {
    return fronts_;
  }
  [[nodiscard]] const std::vector<RegimeWindow>& regimes() const {
    return regimes_;
  }

  /// Joint weather-front multiplier on class c's activation probability at
  /// time t (1.0 for non-weather classes and uncovered times).
  [[nodiscard]] double weather_boost(FaultClass c, Seconds t) const;
  /// Markov-regime multiplier at time t (1.0 when the chain is disabled).
  [[nodiscard]] double regime_factor(Seconds t) const;
  /// Combined activation-probability multiplier for class c at time t.
  [[nodiscard]] double activation_scale(FaultClass c, Seconds t) const {
    return weather_boost(c, t) * regime_factor(t);
  }

  // --- Checkpoint/restore (src/ckpt): the spec plus the realized fronts
  // and regime windows, bit-exact.
  static constexpr std::uint32_t kStateVersion = 1;
  void save_state(ckpt::StateWriter& w) const;
  void load_state(ckpt::StateReader& r);

 private:
  CorrelationSpec corr_;
  std::vector<StormFront> fronts_;
  std::vector<RegimeWindow> regimes_;
};

}  // namespace gs::faults
