#include "faults/fault_schedule.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <sstream>

#include "ckpt/state_io.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"

namespace gs::faults {

namespace {

constexpr std::uint64_t kFaultStreamTag = 0xfa170ull;
// Per-(trigger, neighbour) cascade draws; disjoint from the candidate and
// latent-process streams so cascades never perturb either.
constexpr std::uint64_t kCascadeStreamTag = 0xca5cull;

/// Boolean classes are either fully in effect or absent.
bool is_boolean(FaultClass c) {
  return c == FaultClass::PssStuck || c == FaultClass::ServerCrash ||
         c == FaultClass::SensorDropout;
}

bool is_server_targeted(FaultClass c) {
  return c == FaultClass::ServerCrash || c == FaultClass::ServerStraggler;
}

/// Mean spacing between candidate events, in epochs. Wear-like classes
/// (fade, charge loss) occur rarely but persist long.
double candidate_spacing_epochs(FaultClass c) {
  switch (c) {
    case FaultClass::BatteryFade:
    case FaultClass::ChargeLoss:
      return 16.0;
    case FaultClass::CloudTransient:
    case FaultClass::SensorNoise:
      return 4.0;
    default:
      return 8.0;
  }
}

/// Duration of one candidate, in epochs (uniform in [lo, hi]).
std::pair<int, int> duration_epochs(FaultClass c) {
  switch (c) {
    case FaultClass::BatteryFade:
    case FaultClass::ChargeLoss:
      return {4, 20};
    case FaultClass::PssLatency:
    case FaultClass::SensorNoise:
    case FaultClass::SensorDropout:
      return {1, 3};
    default:
      return {1, 8};
  }
}

FaultClass class_from_name(const std::string& name) {
  for (FaultClass c : all_fault_classes()) {
    if (name == to_string(c)) return c;
  }
  GS_REQUIRE(false, "unknown fault class name '" + name + "'");
  return FaultClass::GridBrownout;
}

}  // namespace

const char* to_string(FaultOrigin o) {
  switch (o) {
    case FaultOrigin::Independent:
      return "Independent";
    case FaultOrigin::Storm:
      return "Storm";
    case FaultOrigin::Cascade:
      return "Cascade";
  }
  return "?";
}

FaultSchedule FaultSchedule::generate(const FaultSpec& spec, Seconds horizon,
                                      Seconds epoch, int servers) {
  GS_REQUIRE(horizon.value() >= 0.0, "fault horizon must be non-negative");
  GS_REQUIRE(epoch.value() > 0.0, "fault epoch must be positive");
  GS_REQUIRE(servers >= 1, "fault schedule needs at least one server");
  FaultSchedule sched;
  sched.spec_ = spec;
  if (!spec.any() || horizon.value() <= 0.0) return sched;

  const double n_epochs = horizon.value() / epoch.value();
  for (FaultClass c : all_fault_classes()) {
    const double intensity = spec.intensity(c);
    // Candidate population is intensity-independent so that schedules at
    // different intensities of the same seed nest (see header).
    Rng rng = Rng::stream(spec.seed, {kFaultStreamTag, std::uint64_t(c)});
    const auto n_candidates = std::max<std::uint64_t>(
        1, std::uint64_t(n_epochs / candidate_spacing_epochs(c)));
    const auto [dur_lo, dur_hi] = duration_epochs(c);
    for (std::uint64_t i = 0; i < n_candidates; ++i) {
      // Draw every field unconditionally: the stream position must not
      // depend on which candidates activate.
      const double start_frac = rng.uniform();
      const auto dur_epochs =
          dur_lo + std::int64_t(rng.uniform_int(
                       std::uint64_t(dur_hi - dur_lo + 1)));
      const double severity_base = rng.uniform(0.3, 1.0);
      const double activation = rng.uniform();
      const int target =
          is_server_targeted(c) ? int(rng.uniform_int(std::uint64_t(servers)))
                                : -1;
      if (intensity <= 0.0 || activation >= intensity) continue;
      FaultEvent ev;
      ev.cls = c;
      ev.start = Seconds(start_frac * horizon.value());
      ev.duration = epoch * double(dur_epochs);
      ev.magnitude =
          is_boolean(c) ? 1.0 : std::min(0.95, severity_base * intensity);
      ev.target = target;
      sched.events_.push_back(ev);
    }
  }
  std::stable_sort(sched.events_.begin(), sched.events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.start.value() < b.start.value();
                   });
  return sched;
}

FaultSchedule FaultSchedule::generate_correlated(const FaultSpec& spec,
                                                 const CorrelationSpec& corr,
                                                 Seconds horizon, Seconds epoch,
                                                 int servers) {
  // Disabled correlation must be the identity: existing schedules, CSV
  // replays and sweep fingerprints stay bit-identical.
  if (!corr.enabled()) return generate(spec, horizon, epoch, servers);
  GS_REQUIRE(horizon.value() >= 0.0, "fault horizon must be non-negative");
  GS_REQUIRE(epoch.value() > 0.0, "fault epoch must be positive");
  GS_REQUIRE(servers >= 1, "fault schedule needs at least one server");
  FaultSchedule sched;
  sched.spec_ = spec;
  sched.storm_ = StormModel(spec, corr, horizon, epoch);
  // A zero spec stays fault-free: correlation modulates intensities, it
  // cannot conjure faults from none.
  if (!spec.any() || horizon.value() <= 0.0) return sched;

  const double n_epochs = horizon.value() / epoch.value();
  for (FaultClass c : all_fault_classes()) {
    const double intensity = spec.intensity(c);
    // Same candidate population and draw order as generate(): correlation
    // reshapes only the activating *subset* (and the applied magnitudes),
    // never the candidates themselves, so schedules still nest.
    Rng rng = Rng::stream(spec.seed, {kFaultStreamTag, std::uint64_t(c)});
    const auto n_candidates = std::max<std::uint64_t>(
        1, std::uint64_t(n_epochs / candidate_spacing_epochs(c)));
    const auto [dur_lo, dur_hi] = duration_epochs(c);
    for (std::uint64_t i = 0; i < n_candidates; ++i) {
      const double start_frac = rng.uniform();
      const auto dur_epochs =
          dur_lo + std::int64_t(rng.uniform_int(
                       std::uint64_t(dur_hi - dur_lo + 1)));
      const double severity_base = rng.uniform(0.3, 1.0);
      const double activation = rng.uniform();
      const int target =
          is_server_targeted(c) ? int(rng.uniform_int(std::uint64_t(servers)))
                                : -1;
      const Seconds start{start_frac * horizon.value()};
      const double eff = std::clamp(
          intensity * sched.storm_.activation_scale(c, start), 0.0, 1.0);
      if (eff <= 0.0 || activation >= eff) continue;
      FaultEvent ev;
      ev.cls = c;
      ev.start = start;
      ev.duration = epoch * double(dur_epochs);
      ev.magnitude = is_boolean(c) ? 1.0 : std::min(0.95, severity_base * eff);
      ev.target = target;
      // Would the candidate have fired without the latent boost?
      ev.origin = activation < intensity ? FaultOrigin::Independent
                                         : FaultOrigin::Storm;
      sched.events_.push_back(ev);
    }
  }

  if (corr.cascade_hazard > 0.0) {
    // Single-generation propagation: only the base events above trigger,
    // cascade crashes never re-trigger, so the storm is bounded by
    // construction (at most servers-1 children per trigger, each within
    // cascade_window_epochs of its trigger's start).
    const std::uint64_t seed = corr.seed != 0 ? corr.seed : spec.seed;
    const RackTopology topo{servers, corr.servers_per_rack};
    std::vector<FaultEvent> cascades;
    std::uint64_t trigger_idx = 0;
    for (const FaultEvent& trig : sched.events_) {
      const bool rack_trigger = trig.cls == FaultClass::ServerCrash;
      const bool pss_trigger = trig.cls == FaultClass::PssStuck;
      if (!rack_trigger && !pss_trigger) continue;
      for (int s = 0; s < servers; ++s) {
        // A crash endangers its rack neighbours; a stuck PSS is shared
        // infrastructure and endangers every server.
        if (rack_trigger && trig.target >= 0 &&
            (s == trig.target || !topo.same_rack(s, trig.target))) {
          continue;
        }
        Rng rng = Rng::stream(
            seed, {kCascadeStreamTag, trigger_idx, std::uint64_t(s)});
        const auto window = std::uint64_t(corr.cascade_window_epochs);
        const auto delay_epochs = 1 + std::int64_t(rng.uniform_int(window));
        const auto crash_epochs = 1 + std::int64_t(rng.uniform_int(window));
        const double activation = rng.uniform();
        if (activation >= corr.cascade_hazard) continue;
        const Seconds start = trig.start + epoch * double(delay_epochs);
        if (start.value() >= horizon.value()) continue;
        FaultEvent ev;
        ev.cls = FaultClass::ServerCrash;
        ev.start = start;
        ev.duration = epoch * double(crash_epochs);
        ev.magnitude = 1.0;
        ev.target = s;
        ev.origin = FaultOrigin::Cascade;
        cascades.push_back(ev);
      }
      ++trigger_idx;
    }
    sched.events_.insert(sched.events_.end(), cascades.begin(),
                         cascades.end());
  }

  std::stable_sort(sched.events_.begin(), sched.events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.start.value() < b.start.value();
                   });
  return sched;
}

double FaultSchedule::magnitude_at(FaultClass c, Seconds t, int target) const {
  double survive = 1.0;
  for (const auto& ev : events_) {
    if (ev.cls != c || !ev.covers(t)) continue;
    if (ev.target >= 0 && target >= 0 && ev.target != target) continue;
    survive *= 1.0 - ev.magnitude;
  }
  return 1.0 - survive;
}

bool FaultSchedule::active(FaultClass c, Seconds t, int target) const {
  for (const auto& ev : events_) {
    if (ev.cls != c || !ev.covers(t)) continue;
    if (ev.target >= 0 && target >= 0 && ev.target != target) continue;
    return true;
  }
  return false;
}

bool FaultSchedule::correlated_active(FaultClass c, Seconds t,
                                      int target) const {
  for (const auto& ev : events_) {
    if (ev.origin == FaultOrigin::Independent) continue;
    if (ev.cls != c || !ev.covers(t)) continue;
    if (ev.target >= 0 && target >= 0 && ev.target != target) continue;
    return true;
  }
  return false;
}

std::string FaultSchedule::to_csv() const {
  std::ostringstream out;
  // Shortest-exact doubles: a replayed incident must re-run bit for bit.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "class,start_s,duration_s,magnitude,target,origin\n";
  for (const auto& ev : events_) {
    out << to_string(ev.cls) << "," << ev.start.value() << ","
        << ev.duration.value() << "," << ev.magnitude << "," << ev.target
        << "," << int(ev.origin) << "\n";
  }
  return out.str();
}

FaultSchedule FaultSchedule::from_csv(const std::string& text) {
  FaultSchedule sched;
  std::istringstream in(text);
  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (header) {
      header = false;
      continue;
    }
    std::istringstream fields(line);
    std::string cls, start, dur, mag, target, origin;
    GS_REQUIRE(std::getline(fields, cls, ',') &&
                   std::getline(fields, start, ',') &&
                   std::getline(fields, dur, ',') &&
                   std::getline(fields, mag, ',') &&
                   std::getline(fields, target, ','),
               "fault schedule CSV row needs 5 fields: " + line);
    // The origin column is optional: pre-correlation captures lack it.
    const bool has_origin = bool(std::getline(fields, origin, ','));
    FaultEvent ev;
    ev.cls = class_from_name(cls);
    int origin_num = 0;
    try {
      ev.start = Seconds(std::stod(start));
      ev.duration = Seconds(std::stod(dur));
      ev.magnitude = std::stod(mag);
      ev.target = std::stoi(target);
      if (has_origin) origin_num = std::stoi(origin);
    } catch (...) {
      GS_REQUIRE(false, "bad numeric field in fault schedule CSV: " + line);
    }
    GS_REQUIRE(origin_num >= 0 && origin_num <= int(FaultOrigin::Cascade),
               "fault origin out of range in CSV: " + line);
    ev.origin = FaultOrigin(origin_num);
    GS_REQUIRE(ev.magnitude >= 0.0 && ev.magnitude <= 1.0,
               "fault magnitude must be in [0,1]");
    sched.events_.push_back(ev);
  }
  return sched;
}

void FaultSchedule::save_state(ckpt::StateWriter& w) const {
  w.begin_section("fault_schedule", kStateVersion);
  for (const FaultClass c : all_fault_classes()) w.f64(spec_.intensity(c));
  w.u64(spec_.seed);
  const bool correlated = storm_.spec().enabled();
  w.boolean(correlated);
  if (correlated) storm_.save_state(w);
  w.u64(events_.size());
  for (const FaultEvent& ev : events_) {
    w.u8(std::uint8_t(ev.cls));
    w.f64(ev.start.value());
    w.f64(ev.duration.value());
    w.f64(ev.magnitude);
    w.i64(ev.target);
    w.u8(std::uint8_t(ev.origin));
  }
  w.end_section();
}

void FaultSchedule::load_state(ckpt::StateReader& r) {
  r.begin_section("fault_schedule", kStateVersion);
  FaultSpec spec;
  for (const FaultClass c : all_fault_classes()) {
    spec.set_intensity(c, r.f64());
  }
  spec.seed = r.u64();
  StormModel storm;
  if (r.boolean()) storm.load_state(r);
  const auto n = std::size_t(r.u64());
  std::vector<FaultEvent> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    FaultEvent ev;
    const std::uint8_t cls = r.u8();
    if (cls >= std::uint8_t(kNumFaultClasses)) {
      throw ckpt::SnapshotError("fault schedule snapshot holds invalid "
                                "class " + std::to_string(int(cls)));
    }
    ev.cls = FaultClass(cls);
    ev.start = Seconds(r.f64());
    ev.duration = Seconds(r.f64());
    ev.magnitude = r.f64();
    ev.target = int(r.i64());
    const std::uint8_t origin = r.u8();
    if (origin > std::uint8_t(FaultOrigin::Cascade)) {
      throw ckpt::SnapshotError("fault schedule snapshot holds invalid "
                                "origin " + std::to_string(int(origin)));
    }
    ev.origin = FaultOrigin(origin);
    events.push_back(ev);
  }
  r.end_section();
  spec_ = spec;
  storm_ = std::move(storm);
  events_ = std::move(events);
}

}  // namespace gs::faults
