#include "faults/fault_schedule.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <sstream>

#include "ckpt/state_io.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"

namespace gs::faults {

namespace {

constexpr std::uint64_t kFaultStreamTag = 0xfa170ull;

/// Boolean classes are either fully in effect or absent.
bool is_boolean(FaultClass c) {
  return c == FaultClass::PssStuck || c == FaultClass::ServerCrash ||
         c == FaultClass::SensorDropout;
}

bool is_server_targeted(FaultClass c) {
  return c == FaultClass::ServerCrash || c == FaultClass::ServerStraggler;
}

/// Mean spacing between candidate events, in epochs. Wear-like classes
/// (fade, charge loss) occur rarely but persist long.
double candidate_spacing_epochs(FaultClass c) {
  switch (c) {
    case FaultClass::BatteryFade:
    case FaultClass::ChargeLoss:
      return 16.0;
    case FaultClass::CloudTransient:
    case FaultClass::SensorNoise:
      return 4.0;
    default:
      return 8.0;
  }
}

/// Duration of one candidate, in epochs (uniform in [lo, hi]).
std::pair<int, int> duration_epochs(FaultClass c) {
  switch (c) {
    case FaultClass::BatteryFade:
    case FaultClass::ChargeLoss:
      return {4, 20};
    case FaultClass::PssLatency:
    case FaultClass::SensorNoise:
    case FaultClass::SensorDropout:
      return {1, 3};
    default:
      return {1, 8};
  }
}

FaultClass class_from_name(const std::string& name) {
  for (FaultClass c : all_fault_classes()) {
    if (name == to_string(c)) return c;
  }
  GS_REQUIRE(false, "unknown fault class name '" + name + "'");
  return FaultClass::GridBrownout;
}

}  // namespace

FaultSchedule FaultSchedule::generate(const FaultSpec& spec, Seconds horizon,
                                      Seconds epoch, int servers) {
  GS_REQUIRE(horizon.value() >= 0.0, "fault horizon must be non-negative");
  GS_REQUIRE(epoch.value() > 0.0, "fault epoch must be positive");
  GS_REQUIRE(servers >= 1, "fault schedule needs at least one server");
  FaultSchedule sched;
  sched.spec_ = spec;
  if (!spec.any() || horizon.value() <= 0.0) return sched;

  const double n_epochs = horizon.value() / epoch.value();
  for (FaultClass c : all_fault_classes()) {
    const double intensity = spec.intensity(c);
    // Candidate population is intensity-independent so that schedules at
    // different intensities of the same seed nest (see header).
    Rng rng = Rng::stream(spec.seed, {kFaultStreamTag, std::uint64_t(c)});
    const auto n_candidates = std::max<std::uint64_t>(
        1, std::uint64_t(n_epochs / candidate_spacing_epochs(c)));
    const auto [dur_lo, dur_hi] = duration_epochs(c);
    for (std::uint64_t i = 0; i < n_candidates; ++i) {
      // Draw every field unconditionally: the stream position must not
      // depend on which candidates activate.
      const double start_frac = rng.uniform();
      const auto dur_epochs =
          dur_lo + std::int64_t(rng.uniform_int(
                       std::uint64_t(dur_hi - dur_lo + 1)));
      const double severity_base = rng.uniform(0.3, 1.0);
      const double activation = rng.uniform();
      const int target =
          is_server_targeted(c) ? int(rng.uniform_int(std::uint64_t(servers)))
                                : -1;
      if (intensity <= 0.0 || activation >= intensity) continue;
      FaultEvent ev;
      ev.cls = c;
      ev.start = Seconds(start_frac * horizon.value());
      ev.duration = epoch * double(dur_epochs);
      ev.magnitude =
          is_boolean(c) ? 1.0 : std::min(0.95, severity_base * intensity);
      ev.target = target;
      sched.events_.push_back(ev);
    }
  }
  std::stable_sort(sched.events_.begin(), sched.events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.start.value() < b.start.value();
                   });
  return sched;
}

double FaultSchedule::magnitude_at(FaultClass c, Seconds t, int target) const {
  double survive = 1.0;
  for (const auto& ev : events_) {
    if (ev.cls != c || !ev.covers(t)) continue;
    if (ev.target >= 0 && target >= 0 && ev.target != target) continue;
    survive *= 1.0 - ev.magnitude;
  }
  return 1.0 - survive;
}

bool FaultSchedule::active(FaultClass c, Seconds t, int target) const {
  for (const auto& ev : events_) {
    if (ev.cls != c || !ev.covers(t)) continue;
    if (ev.target >= 0 && target >= 0 && ev.target != target) continue;
    return true;
  }
  return false;
}

std::string FaultSchedule::to_csv() const {
  std::ostringstream out;
  // Shortest-exact doubles: a replayed incident must re-run bit for bit.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "class,start_s,duration_s,magnitude,target\n";
  for (const auto& ev : events_) {
    out << to_string(ev.cls) << "," << ev.start.value() << ","
        << ev.duration.value() << "," << ev.magnitude << "," << ev.target
        << "\n";
  }
  return out.str();
}

FaultSchedule FaultSchedule::from_csv(const std::string& text) {
  FaultSchedule sched;
  std::istringstream in(text);
  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (header) {
      header = false;
      continue;
    }
    std::istringstream fields(line);
    std::string cls, start, dur, mag, target;
    GS_REQUIRE(std::getline(fields, cls, ',') &&
                   std::getline(fields, start, ',') &&
                   std::getline(fields, dur, ',') &&
                   std::getline(fields, mag, ',') &&
                   std::getline(fields, target, ','),
               "fault schedule CSV row needs 5 fields: " + line);
    FaultEvent ev;
    ev.cls = class_from_name(cls);
    try {
      ev.start = Seconds(std::stod(start));
      ev.duration = Seconds(std::stod(dur));
      ev.magnitude = std::stod(mag);
      ev.target = std::stoi(target);
    } catch (...) {
      GS_REQUIRE(false, "bad numeric field in fault schedule CSV: " + line);
    }
    GS_REQUIRE(ev.magnitude >= 0.0 && ev.magnitude <= 1.0,
               "fault magnitude must be in [0,1]");
    sched.events_.push_back(ev);
  }
  return sched;
}

void FaultSchedule::save_state(ckpt::StateWriter& w) const {
  w.begin_section("fault_schedule", kStateVersion);
  for (const FaultClass c : all_fault_classes()) w.f64(spec_.intensity(c));
  w.u64(spec_.seed);
  w.u64(events_.size());
  for (const FaultEvent& ev : events_) {
    w.u8(std::uint8_t(ev.cls));
    w.f64(ev.start.value());
    w.f64(ev.duration.value());
    w.f64(ev.magnitude);
    w.i64(ev.target);
  }
  w.end_section();
}

void FaultSchedule::load_state(ckpt::StateReader& r) {
  r.begin_section("fault_schedule", kStateVersion);
  FaultSpec spec;
  for (const FaultClass c : all_fault_classes()) {
    spec.set_intensity(c, r.f64());
  }
  spec.seed = r.u64();
  const auto n = std::size_t(r.u64());
  std::vector<FaultEvent> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    FaultEvent ev;
    const std::uint8_t cls = r.u8();
    if (cls >= std::uint8_t(kNumFaultClasses)) {
      throw ckpt::SnapshotError("fault schedule snapshot holds invalid "
                                "class " + std::to_string(int(cls)));
    }
    ev.cls = FaultClass(cls);
    ev.start = Seconds(r.f64());
    ev.duration = Seconds(r.f64());
    ev.magnitude = r.f64();
    ev.target = int(r.i64());
    events.push_back(ev);
  }
  r.end_section();
  spec_ = spec;
  events_ = std::move(events);
}

}  // namespace gs::faults
