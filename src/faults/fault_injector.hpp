// FaultInjector: evaluates the FaultSchedule at component boundaries.
//
// Runners query `at(t)` once per epoch and get an EpochFaults bundle of
// multiplicative derates and boolean outages to apply to the substrate:
// grid budget, solar output, battery capacity / charge efficiency, PSS
// path health, per-server crash/straggle state, and telemetry quality.
// A default-constructed (or all-zero-spec) injector is `enabled() ==
// false` and returns the neutral bundle — runners must gate every
// mutation on enabled() so that fault-free runs stay bit-identical to a
// build without the subsystem.
#pragma once

#include <cstdint>
#include <vector>

#include "ckpt/fwd.hpp"
#include "common/units.hpp"
#include "faults/fault_schedule.hpp"

namespace gs::faults {

/// The fault state in effect for one epoch. All factors are neutral (1.0 /
/// false / 0.0) when nothing is active.
struct EpochFaults {
  double grid_budget_factor = 1.0;        ///< Grid budget multiplier.
  double solar_factor = 1.0;              ///< Solar AC output multiplier.
  double battery_capacity_factor = 1.0;   ///< Usable-capacity multiplier.
  double charge_efficiency_factor = 1.0;  ///< Charge-efficiency multiplier.
  bool battery_offline = false;           ///< PSS stuck: battery unreachable.
  double switch_latency_fraction = 0.0;   ///< Epoch fraction lost switching.
  double sensor_load_factor = 1.0;        ///< Multiplier on the load sample.
  bool sensor_dropout = false;            ///< Telemetry stale this epoch.
  std::vector<bool> server_crashed;       ///< Per green server.
  std::vector<double> server_speed;       ///< Per-server service multiplier.

  [[nodiscard]] bool crashed(int server) const {
    return server >= 0 && std::size_t(server) < server_crashed.size() &&
           server_crashed[std::size_t(server)];
  }
  [[nodiscard]] double speed(int server) const {
    return server >= 0 && std::size_t(server) < server_speed.size()
               ? server_speed[std::size_t(server)]
               : 1.0;
  }
  /// Anything non-neutral this epoch?
  [[nodiscard]] bool any() const;
};

class FaultInjector {
 public:
  FaultInjector() = default;  ///< Disabled: at() always returns neutral.

  /// Build the schedule for a run: `horizon` is the faulted span, `epoch`
  /// the scheduling quantum, `servers` the green-server count. Times
  /// passed to at() are run-relative (0 = first faulted epoch).
  FaultInjector(const FaultSpec& spec, Seconds horizon, Seconds epoch,
                int servers);

  /// As above with correlated fault processes layered on (weather fronts,
  /// rack cascades, burst regimes); a disabled `corr` makes this identical
  /// to the plain spec constructor.
  FaultInjector(const FaultSpec& spec, const CorrelationSpec& corr,
                Seconds horizon, Seconds epoch, int servers);

  /// Adopt a pre-built (e.g. CSV-replayed) schedule.
  FaultInjector(FaultSchedule schedule, int servers);

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] const FaultSchedule& schedule() const { return schedule_; }

  /// Fault state for the epoch starting at run-relative time t. The
  /// sensor-noise multiplier is drawn from a per-epoch hashed stream so
  /// the result depends only on (spec.seed, t) — replays are exact.
  [[nodiscard]] EpochFaults at(Seconds t) const;

  // --- Checkpoint/restore (src/ckpt). at(t) draws from per-epoch hashed
  // streams (no cursor), so the snapshot is the schedule + wiring; a
  // restored injector replays exactly by construction.
  static constexpr std::uint32_t kStateVersion = 1;
  void save_state(ckpt::StateWriter& w) const;
  void load_state(ckpt::StateReader& r);

 private:
  FaultSchedule schedule_;
  int servers_ = 0;
  bool enabled_ = false;
};

}  // namespace gs::faults
