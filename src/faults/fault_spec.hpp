// Fault model specification (the knobs of the resilience evaluation).
//
// The paper's prototype assumes healthy infrastructure; GreenSprint's
// premise — riding out volatility — only holds if the controller also
// survives *component* failures. A FaultSpec names one intensity in [0,1]
// per fault class; 0 disables the class and an all-zero spec disables the
// whole subsystem (the runners then behave bit-identically to a build
// without it). Specs are parseable from a compact `key=value,...` string
// so CLI flags and bench sweeps can express them, and carry their own seed
// so (scenario seed, fault seed) pairs replay exactly.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace gs::faults {

/// The component-boundary fault classes injected by the FaultInjector.
enum class FaultClass {
  GridBrownout,     ///< Grid budget droop (utility brownout).
  PanelDropout,     ///< Solar panels offline (connector / inverter string).
  CloudTransient,   ///< Extra derating of solar output (soiling, icing).
  BatteryFade,      ///< Capacity fade (aged / hot cells).
  ChargeLoss,       ///< Charge-efficiency loss (sulfation).
  PssStuck,         ///< PSS stuck on the grid path: battery unreachable.
  PssLatency,       ///< PSS switch latency: a slice of the epoch unpowered.
  ServerCrash,      ///< Green server down for the event.
  ServerStraggler,  ///< Green server serving at derated speed.
  SensorNoise,      ///< Multiplicative noise on Monitor load samples.
  SensorDropout,    ///< Stale telemetry: the Monitor repeats its last sample.
};

inline constexpr int kNumFaultClasses = 11;

[[nodiscard]] const char* to_string(FaultClass c);
/// Short spec-string key for a class ("brownout", "panel", ...).
[[nodiscard]] const char* spec_key(FaultClass c);
/// All classes, in declaration order (for iteration).
[[nodiscard]] const std::array<FaultClass, kNumFaultClasses>&
all_fault_classes();

/// Per-class fault intensities in [0,1] plus the schedule seed. Every
/// intensity reaches scenario_fingerprint through the all_fault_classes()
/// intensity() loop, hence the per-field fingerprint-via markers.
struct FaultSpec {
  double brownout = 0.0;     // gs-analyze: fingerprint-via(intensity loop)
  double panel = 0.0;        // gs-analyze: fingerprint-via(intensity loop)
  double cloud = 0.0;        // gs-analyze: fingerprint-via(intensity loop)
  double fade = 0.0;         // gs-analyze: fingerprint-via(intensity loop)
  double charge = 0.0;       // gs-analyze: fingerprint-via(intensity loop)
  double pss_stuck = 0.0;    // gs-analyze: fingerprint-via(intensity loop)
  double pss_latency = 0.0;  // gs-analyze: fingerprint-via(intensity loop)
  double crash = 0.0;        // gs-analyze: fingerprint-via(intensity loop)
  double straggler = 0.0;    // gs-analyze: fingerprint-via(intensity loop)
  double sensor_noise = 0.0;  // gs-analyze: fingerprint-via(intensity loop)
  double sensor_dropout = 0.0;  // gs-analyze: fingerprint-via(intensity
                                // loop)
  std::uint64_t seed = 0;

  /// Any class enabled? An all-zero spec keeps every runner on the
  /// pre-fault code path.
  [[nodiscard]] bool any() const;

  [[nodiscard]] double intensity(FaultClass c) const;
  void set_intensity(FaultClass c, double v);

  /// All classes at the same intensity (the resilience bench's x-axis).
  [[nodiscard]] static FaultSpec uniform(double intensity,
                                         std::uint64_t seed = 0);

  /// Parse "brownout=0.3,panel=0.2,seed=7" (keys per spec_key(); "all="
  /// sets every class). Throws gs::ContractError on unknown keys or
  /// out-of-range intensities.
  [[nodiscard]] static FaultSpec parse(const std::string& text);

  /// Inverse of parse(): only non-zero fields are emitted.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace gs::faults
