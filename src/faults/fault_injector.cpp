#include "faults/fault_injector.hpp"

#include <algorithm>
#include <cmath>

#include "ckpt/state_io.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"

namespace gs::faults {

bool EpochFaults::any() const {
  if (grid_budget_factor < 1.0 || solar_factor < 1.0 ||
      battery_capacity_factor < 1.0 || charge_efficiency_factor < 1.0 ||
      battery_offline || switch_latency_fraction > 0.0 ||
      sensor_load_factor != 1.0 || sensor_dropout) {
    return true;
  }
  for (bool c : server_crashed) {
    if (c) return true;
  }
  for (double s : server_speed) {
    if (s < 1.0) return true;
  }
  return false;
}

FaultInjector::FaultInjector(const FaultSpec& spec, Seconds horizon,
                             Seconds epoch, int servers)
    : FaultInjector(spec, CorrelationSpec{}, horizon, epoch, servers) {}

FaultInjector::FaultInjector(const FaultSpec& spec,
                             const CorrelationSpec& corr, Seconds horizon,
                             Seconds epoch, int servers)
    : schedule_(FaultSchedule::generate_correlated(spec, corr, horizon, epoch,
                                                   servers)),
      servers_(servers),
      // Correlation only modulates the spec's intensities; an all-zero spec
      // stays disabled like the plain constructor.
      enabled_(spec.any()) {}

FaultInjector::FaultInjector(FaultSchedule schedule, int servers)
    : schedule_(std::move(schedule)),
      servers_(servers),
      enabled_(!schedule_.empty()) {
  GS_REQUIRE(servers >= 1, "fault injector needs at least one server");
}

EpochFaults FaultInjector::at(Seconds t) const {
  EpochFaults f;
  if (!enabled_) return f;
  f.grid_budget_factor =
      1.0 - schedule_.magnitude_at(FaultClass::GridBrownout, t);
  f.solar_factor =
      (1.0 - schedule_.magnitude_at(FaultClass::PanelDropout, t)) *
      (1.0 - schedule_.magnitude_at(FaultClass::CloudTransient, t));
  f.battery_capacity_factor =
      1.0 - schedule_.magnitude_at(FaultClass::BatteryFade, t);
  f.charge_efficiency_factor =
      1.0 - schedule_.magnitude_at(FaultClass::ChargeLoss, t);
  f.battery_offline = schedule_.active(FaultClass::PssStuck, t);
  // A settlement still needs a sliver of the epoch: cap the lost slice.
  f.switch_latency_fraction =
      std::min(0.5, schedule_.magnitude_at(FaultClass::PssLatency, t));
  f.sensor_dropout = schedule_.active(FaultClass::SensorDropout, t);
  const double noise_sigma =
      schedule_.magnitude_at(FaultClass::SensorNoise, t);
  if (noise_sigma > 0.0) {
    // Per-epoch hashed stream: the draw depends only on (seed, t), not on
    // how many epochs were queried before this one.
    Rng noise = Rng::stream(
        schedule_.spec().seed,
        {0x5e45ull, std::uint64_t(std::llround(t.value() * 1000.0))});
    f.sensor_load_factor =
        std::max(0.0, 1.0 + 0.5 * noise_sigma * noise.normal());
  }
  f.server_crashed.resize(std::size_t(std::max(servers_, 0)), false);
  f.server_speed.resize(std::size_t(std::max(servers_, 0)), 1.0);
  for (int s = 0; s < servers_; ++s) {
    f.server_crashed[std::size_t(s)] =
        schedule_.active(FaultClass::ServerCrash, t, s);
    f.server_speed[std::size_t(s)] =
        1.0 - schedule_.magnitude_at(FaultClass::ServerStraggler, t, s);
  }
  return f;
}

void FaultInjector::save_state(ckpt::StateWriter& w) const {
  w.begin_section("fault_injector", kStateVersion);
  schedule_.save_state(w);
  w.i64(servers_);
  w.boolean(enabled_);
  w.end_section();
}

void FaultInjector::load_state(ckpt::StateReader& r) {
  r.begin_section("fault_injector", kStateVersion);
  schedule_.load_state(r);
  servers_ = int(r.i64());
  enabled_ = r.boolean();
  r.end_section();
}

}  // namespace gs::faults
