// CSV import/export for solar production traces.
//
// The paper replays NREL Measurement-and-Instrumentation-Data-Center
// irradiance traces (1-minute resolution). When real data is available,
// load_solar_csv() ingests it — either an already-normalized
// "seconds,fraction" pair per line, or raw irradiance values that are
// normalized to the file's peak. save_solar_csv() round-trips synthetic
// traces for external plotting.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/solar.hpp"

namespace gs::trace {

struct SolarCsvOptions {
  Seconds sample_period{60.0};
  /// Value at or above which the input is treated as raw irradiance
  /// (W/m^2) and normalized to the observed peak instead of being
  /// interpreted as a fraction.
  double raw_threshold = 2.0;
  char delimiter = ',';
  bool has_header = false;
};

/// Parse a trace from a stream. Accepts one or two columns per line: a
/// single value column, or "time,value" where the time column is ignored
/// (samples are assumed uniformly spaced at sample_period). Throws
/// gs::ContractError on malformed rows or an empty file.
[[nodiscard]] SolarTrace load_solar_csv(std::istream& in,
                                        const SolarCsvOptions& opts = {});

/// Load from a file path.
[[nodiscard]] SolarTrace load_solar_csv_file(const std::string& path,
                                             const SolarCsvOptions& opts = {});

/// Write "seconds,fraction" rows.
void save_solar_csv(std::ostream& out, const SolarTrace& trace);
void save_solar_csv_file(const std::string& path, const SolarTrace& trace);

}  // namespace gs::trace
