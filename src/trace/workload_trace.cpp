#include "trace/workload_trace.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace gs::trace {

const char* to_string(BurstShape s) {
  switch (s) {
    case BurstShape::Plateau:
      return "Plateau";
    case BurstShape::Ramp:
      return "Ramp";
    case BurstShape::Spike:
      return "Spike";
    case BurstShape::Wave:
      return "Wave";
  }
  return "?";
}

double burst_shape_factor(BurstShape shape, double progress) {
  GS_REQUIRE(progress >= 0.0 && progress <= 1.0,
             "burst progress must be in [0,1]");
  switch (shape) {
    case BurstShape::Plateau:
      return 1.0;
    case BurstShape::Ramp:
      return 0.5 + 0.5 * progress;
    case BurstShape::Spike:
      return (progress >= 1.0 / 3.0 && progress < 2.0 / 3.0) ? 1.0 : 0.6;
    case BurstShape::Wave:
      return 0.9 + 0.1 * std::sin(4.0 * std::numbers::pi * progress);
  }
  return 1.0;
}

DiurnalTrace::DiurnalTrace(const DiurnalConfig& cfg, Seconds duration,
                           std::vector<BurstPattern> bursts)
    : bursts_(std::move(bursts)) {
  GS_REQUIRE(duration.value() > 0.0, "trace duration must be positive");
  Rng rng(cfg.seed);
  const auto n = std::size_t(duration.value() / period_.value()) + 1;
  samples_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = double(i) * period_.value();
    const double hour = std::fmod(t / 3600.0, 24.0);
    const double phase =
        2.0 * std::numbers::pi * (hour - cfg.peak_hour) / 24.0;
    double v = cfg.base_level + cfg.swing * std::cos(phase) +
               cfg.noise * rng.normal();
    for (const auto& b : bursts_) {
      if (t >= b.start.value() && t < b.start.value() + b.duration.value()) {
        v = std::max(v, b.intensity);
      }
    }
    samples_.push_back(std::max(0.0, v));
  }
}

double DiurnalTrace::at(Seconds t) const {
  const double idx = t.value() / period_.value();
  const auto i = idx <= 0.0 ? std::size_t{0}
                            : std::min(samples_.size() - 1, std::size_t(idx));
  return samples_[i];
}

Seconds DiurnalTrace::duration() const {
  return Seconds(double(samples_.size()) * period_.value());
}

}  // namespace gs::trace
