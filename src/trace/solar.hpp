// Synthetic solar production traces.
//
// The paper replays one-week, 1-minute-resolution NREL irradiance traces
// through a simulated solar generator. We have no NREL data offline, so we
// synthesize traces with the same character: a deterministic clear-sky
// diurnal envelope modulated by a stochastic cloud-transmittance process
// with per-day weather regimes (clear / variable / overcast). The output is
// a normalized production fraction in [0, 1] of the array's DC peak; the
// SolarArray model scales it to watts. Traces are seedable and reproducible.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/keyed_cache.hpp"
#include "common/units.hpp"

namespace gs::trace {

/// Weather regime for one simulated day.
enum class DayType { Clear, Variable, Overcast };

struct SolarTraceConfig {
  int days = 7;
  Seconds sample_period = Seconds(60.0);
  /// Local solar time of sunrise / sunset (hours).
  double sunrise_h = 6.0;
  double sunset_h = 18.0;
  /// Clear-sky envelope sharpness (1 = pure half-sine).
  double envelope_exponent = 1.2;
  /// Mean transmittance per day type.
  double clear_mean = 0.95;
  double variable_mean = 0.60;
  double overcast_mean = 0.18;
  /// AR(1) persistence of the minute-scale cloud process.
  double cloud_persistence = 0.95;
  /// Innovation scale per day type.
  double clear_sigma = 0.01;
  double variable_sigma = 0.10;
  double overcast_sigma = 0.04;
  /// Probability of staying in the same weather regime on the next day.
  double regime_persistence = 0.5;
  std::uint64_t seed = 42;
};

/// A sampled normalized production trace (fraction of DC peak, in [0,1]).
class SolarTrace {
 public:
  SolarTrace(std::vector<double> samples, Seconds period);

  /// Production fraction at absolute time t (clamped to the trace range,
  /// piecewise-constant per sample as a replayed meter reading would be).
  [[nodiscard]] double at(Seconds t) const;

  /// Mean fraction over [start, start + len).
  [[nodiscard]] double mean(Seconds start, Seconds len) const;

  [[nodiscard]] Seconds duration() const;
  [[nodiscard]] Seconds period() const { return period_; }
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  Seconds period_;
};

/// Configs are substrate-cache keys: equal iff every field (including the
/// seed) is bit-identical, so a cache hit replays the exact same weather.
[[nodiscard]] bool operator==(const SolarTraceConfig& a,
                              const SolarTraceConfig& b);

struct SolarTraceConfigHash {
  [[nodiscard]] std::size_t operator()(const SolarTraceConfig& cfg) const;
};

/// Generate a synthetic trace. The generator guarantees at least one clear
/// day and one overcast day per week so that all three availability classes
/// (min / med / max) exist in every trace.
[[nodiscard]] SolarTrace generate_solar_trace(const SolarTraceConfig& cfg);

/// Memoized generate_solar_trace: sweep cells sharing a trace config reuse
/// one immutable instance through a process-wide thread-safe cache instead
/// of regenerating the week per cell.
[[nodiscard]] std::shared_ptr<const SolarTrace> shared_solar_trace(
    const SolarTraceConfig& cfg);

/// Cache bookkeeping (tests and the perf bench): combined hit/miss counts
/// over the trace and window caches, and a full reset (entries already
/// handed out stay alive; later lookups rebuild).
[[nodiscard]] CacheStats solar_cache_stats();
void clear_solar_cache();

/// Deterministic clear-sky envelope at an hour of day (0..24): the maximum
/// normalized production a cloudless sky would allow. Exposed for the
/// clear-sky-indexed forecaster (core/forecaster.hpp).
[[nodiscard]] double clear_sky_envelope(double hour_of_day,
                                        const SolarTraceConfig& cfg =
                                            SolarTraceConfig{});

/// Availability classes used throughout the paper's evaluation (Fig. 5).
enum class Availability { Min, Med, Max };

[[nodiscard]] const char* to_string(Availability a);

/// Classification thresholds on the mean production fraction of a window.
/// The bands are expressed against the array's peak output; "Medium" is
/// placed where the supply hovers around the green group's sprint demand
/// (~0.73 of peak for 3 servers at 155 W each), matching the medium
/// annotations of the paper's Fig. 5.
struct AvailabilityBands {
  double min_below = 0.05;  ///< mean fraction <= this  -> Min
  double med_low = 0.45;    ///< Med if mean in [med_low, med_high]
  double med_high = 0.75;
  double max_above = 0.80;  ///< mean fraction >= this -> Max
};

/// Find the start of a window of length `len` whose mean production
/// fraction falls in the requested class. Scans at sample granularity.
/// Returns nullopt if the trace contains no such window.
[[nodiscard]] std::optional<Seconds> find_window(const SolarTrace& trace,
                                                 Seconds len, Availability a,
                                                 const AvailabilityBands& bands =
                                                     AvailabilityBands{});

/// Memoized trace generation + window search for one substrate config. The
/// window scan is linear in the week; a sweep grid asks for the same
/// (seed, duration, availability) triple once per strategy, so the scan is
/// paid once and the answer shared.
[[nodiscard]] std::optional<Seconds> shared_solar_window(
    const SolarTraceConfig& cfg, Seconds len, Availability a,
    const AvailabilityBands& bands = AvailabilityBands{});

}  // namespace gs::trace
