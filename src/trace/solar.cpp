#include "trace/solar.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace gs::trace {

SolarTrace::SolarTrace(std::vector<double> samples, Seconds period)
    : samples_(std::move(samples)), period_(period) {
  GS_REQUIRE(!samples_.empty(), "solar trace needs at least one sample");
  GS_REQUIRE(period.value() > 0.0, "solar trace period must be positive");
}

double SolarTrace::at(Seconds t) const {
  const double idx = t.value() / period_.value();
  const auto i = idx <= 0.0 ? std::size_t{0}
                            : std::min(samples_.size() - 1, std::size_t(idx));
  return samples_[i];
}

double SolarTrace::mean(Seconds start, Seconds len) const {
  GS_REQUIRE(len.value() > 0.0, "window length must be positive");
  const auto first = std::size_t(std::max(0.0, start.value()) /
                                 period_.value());
  auto last = std::size_t((start.value() + len.value()) / period_.value());
  last = std::min(last, samples_.size());
  if (first >= last) return at(start);
  double sum = 0.0;
  for (std::size_t i = first; i < last; ++i) sum += samples_[i];
  return sum / double(last - first);
}

Seconds SolarTrace::duration() const {
  return Seconds(double(samples_.size()) * period_.value());
}

namespace {

struct Regime {
  double mean;
  double sigma;
};

Regime regime_for(DayType t, const SolarTraceConfig& cfg) {
  switch (t) {
    case DayType::Clear:
      return {cfg.clear_mean, cfg.clear_sigma};
    case DayType::Variable:
      return {cfg.variable_mean, cfg.variable_sigma};
    case DayType::Overcast:
      return {cfg.overcast_mean, cfg.overcast_sigma};
  }
  return {cfg.variable_mean, cfg.variable_sigma};
}

/// Pick the per-day weather regimes: a sticky three-state chain, with the
/// first day forced Clear and the second Overcast so every weekly trace
/// contains max- and min-availability daylight windows.
std::vector<DayType> pick_regimes(const SolarTraceConfig& cfg, Rng& rng) {
  std::vector<DayType> days(std::size_t(std::max(1, cfg.days)));
  for (std::size_t d = 0; d < days.size(); ++d) {
    if (d == 0) {
      days[d] = DayType::Clear;
    } else if (d == 1) {
      days[d] = DayType::Overcast;
    } else if (rng.uniform() < cfg.regime_persistence) {
      days[d] = days[d - 1];
    } else {
      days[d] = DayType(rng.uniform_int(3));
    }
  }
  return days;
}

}  // namespace

double clear_sky_envelope(double hour_of_day, const SolarTraceConfig& cfg) {
  const double hour = std::fmod(std::fmod(hour_of_day, 24.0) + 24.0, 24.0);
  if (hour <= cfg.sunrise_h || hour >= cfg.sunset_h) return 0.0;
  const double phase =
      (hour - cfg.sunrise_h) / (cfg.sunset_h - cfg.sunrise_h);
  return std::pow(std::sin(phase * 3.14159265358979323846),
                  cfg.envelope_exponent);
}

SolarTrace generate_solar_trace(const SolarTraceConfig& cfg) {
  GS_REQUIRE(cfg.days >= 1, "trace needs at least one day");
  GS_REQUIRE(cfg.sunset_h > cfg.sunrise_h, "sunset must follow sunrise");
  Rng rng(cfg.seed);
  const auto regimes = pick_regimes(cfg, rng);

  const double period_s = cfg.sample_period.value();
  const auto samples_per_day = std::size_t(86400.0 / period_s);
  std::vector<double> out;
  out.reserve(samples_per_day * std::size_t(cfg.days));

  for (int d = 0; d < cfg.days; ++d) {
    const Regime reg = regime_for(regimes[std::size_t(d)], cfg);
    double transmittance = reg.mean;
    for (std::size_t s = 0; s < samples_per_day; ++s) {
      const double hour = double(s) * period_s / 3600.0;
      const double envelope = clear_sky_envelope(hour, cfg);
      transmittance = cfg.cloud_persistence * transmittance +
                      (1.0 - cfg.cloud_persistence) * reg.mean +
                      reg.sigma * rng.normal();
      transmittance = std::clamp(transmittance, 0.0, 1.0);
      out.push_back(std::clamp(envelope * transmittance, 0.0, 1.0));
    }
  }
  return SolarTrace(std::move(out), cfg.sample_period);
}

bool operator==(const SolarTraceConfig& a, const SolarTraceConfig& b) {
  return a.days == b.days &&
         a.sample_period.value() == b.sample_period.value() &&
         a.sunrise_h == b.sunrise_h && a.sunset_h == b.sunset_h &&
         a.envelope_exponent == b.envelope_exponent &&
         a.clear_mean == b.clear_mean && a.variable_mean == b.variable_mean &&
         a.overcast_mean == b.overcast_mean &&
         a.cloud_persistence == b.cloud_persistence &&
         a.clear_sigma == b.clear_sigma &&
         a.variable_sigma == b.variable_sigma &&
         a.overcast_sigma == b.overcast_sigma &&
         a.regime_persistence == b.regime_persistence && a.seed == b.seed;
}

std::size_t SolarTraceConfigHash::operator()(
    const SolarTraceConfig& cfg) const {
  std::uint64_t h = cfg.seed;
  h = hash_combine(h, std::uint64_t(cfg.days));
  h = hash_combine(h, cfg.sample_period.value());
  h = hash_combine(h, cfg.sunrise_h);
  h = hash_combine(h, cfg.sunset_h);
  h = hash_combine(h, cfg.envelope_exponent);
  h = hash_combine(h, cfg.clear_mean);
  h = hash_combine(h, cfg.variable_mean);
  h = hash_combine(h, cfg.overcast_mean);
  h = hash_combine(h, cfg.cloud_persistence);
  h = hash_combine(h, cfg.clear_sigma);
  h = hash_combine(h, cfg.variable_sigma);
  h = hash_combine(h, cfg.overcast_sigma);
  h = hash_combine(h, cfg.regime_persistence);
  return std::size_t(h);
}

namespace {

struct WindowKey {
  SolarTraceConfig cfg;
  double len_s;
  Availability avail;
  AvailabilityBands bands;

  bool operator==(const WindowKey& o) const {
    return cfg == o.cfg && len_s == o.len_s && avail == o.avail &&
           bands.min_below == o.bands.min_below &&
           bands.med_low == o.bands.med_low &&
           bands.med_high == o.bands.med_high &&
           bands.max_above == o.bands.max_above;
  }
};

struct WindowKeyHash {
  std::size_t operator()(const WindowKey& k) const {
    std::uint64_t h = SolarTraceConfigHash{}(k.cfg);
    h = hash_combine(h, k.len_s);
    h = hash_combine(h, std::uint64_t(k.avail));
    h = hash_combine(h, k.bands.min_below);
    h = hash_combine(h, k.bands.med_low);
    h = hash_combine(h, k.bands.med_high);
    h = hash_combine(h, k.bands.max_above);
    return std::size_t(h);
  }
};

// Process-wide substrate caches. A week-long default trace is ~80 KB, a
// window result one double: capacities are sized for the biggest multi-seed
// replicate sweeps in bench/ with room to spare.
//
// Thread safety: the function-local statics initialize race-free
// ([stmt.dcl]) and KeyedCache is internally synchronized behind a
// capability-annotated gs::Mutex, so sweep cells on the thread pool may
// call these accessors freely; the TSan CI lane runs the sweep
// bit-identity tests over exactly these paths.
KeyedCache<SolarTraceConfig, SolarTrace, SolarTraceConfigHash>& trace_cache() {
  static KeyedCache<SolarTraceConfig, SolarTrace, SolarTraceConfigHash> cache(
      64);
  return cache;
}

KeyedCache<WindowKey, std::optional<Seconds>, WindowKeyHash>& window_cache() {
  static KeyedCache<WindowKey, std::optional<Seconds>, WindowKeyHash> cache(
      512);
  return cache;
}

}  // namespace

std::shared_ptr<const SolarTrace> shared_solar_trace(
    const SolarTraceConfig& cfg) {
  return trace_cache().get_or_create(
      cfg, [&cfg] { return generate_solar_trace(cfg); });
}

std::optional<Seconds> shared_solar_window(const SolarTraceConfig& cfg,
                                           Seconds len, Availability a,
                                           const AvailabilityBands& bands) {
  const WindowKey key{cfg, len.value(), a, bands};
  const auto result = window_cache().get_or_create(key, [&] {
    return find_window(*shared_solar_trace(cfg), len, a, bands);
  });
  return *result;
}

CacheStats solar_cache_stats() {
  const CacheStats t = trace_cache().stats();
  const CacheStats w = window_cache().stats();
  return {t.hits + w.hits, t.misses + w.misses};
}

void clear_solar_cache() {
  trace_cache().clear();
  window_cache().clear();
}

const char* to_string(Availability a) {
  switch (a) {
    case Availability::Min:
      return "Min";
    case Availability::Med:
      return "Med";
    case Availability::Max:
      return "Max";
  }
  return "?";
}

std::optional<Seconds> find_window(const SolarTrace& trace, Seconds len,
                                   Availability a,
                                   const AvailabilityBands& bands) {
  GS_REQUIRE(len.value() > 0.0, "window length must be positive");
  const double period = trace.period().value();
  const auto n = trace.samples().size();
  const auto win = std::size_t(std::max(1.0, len.value() / period));
  if (win > n) return std::nullopt;

  // Sliding-window mean/variance at sample granularity. Among all windows
  // matching the class, pick the most representative one: the darkest for
  // Min, the brightest for Max, and — for Med — the most *intermittent*
  // (highest in-window variance). Medium availability in the paper is the
  // challenging regime where clouds swing the supply around the sprint
  // demand; a smooth ramp with the same mean would not exercise the PSS.
  double sum = 0.0;
  double sumsq = 0.0;
  for (std::size_t i = 0; i < win; ++i) {
    sum += trace.samples()[i];
    sumsq += trace.samples()[i] * trace.samples()[i];
  }
  std::optional<std::size_t> best;
  double best_score = 0.0;
  for (std::size_t start = 0;; ++start) {
    const double mean = sum / double(win);
    const double var = std::max(0.0, sumsq / double(win) - mean * mean);
    bool match = false;
    double score = 0.0;  // lower is better
    switch (a) {
      case Availability::Min:
        match = mean <= bands.min_below;
        score = mean;
        break;
      case Availability::Med:
        match = mean >= bands.med_low && mean <= bands.med_high;
        score = -var;
        break;
      case Availability::Max:
        match = mean >= bands.max_above;
        score = -mean;
        break;
    }
    if (match && (!best || score < best_score)) {
      best = start;
      best_score = score;
    }
    if (start + win >= n) break;
    const double out = trace.samples()[start];
    const double in = trace.samples()[start + win];
    sum += in - out;
    sumsq += in * in - out * out;
  }
  if (!best) return std::nullopt;
  return Seconds(double(*best) * period);
}

}  // namespace gs::trace
