#include "trace/csv_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace gs::trace {

namespace {

/// Parse the value column of one CSV row (last column wins).
double parse_row(const std::string& line, char delimiter, std::size_t lineno) {
  const auto pos = line.rfind(delimiter);
  const std::string field =
      pos == std::string::npos ? line : line.substr(pos + 1);
  try {
    std::size_t consumed = 0;
    const double v = std::stod(field, &consumed);
    // Allow trailing whitespace / CR only.
    for (std::size_t i = consumed; i < field.size(); ++i) {
      GS_REQUIRE(std::isspace(static_cast<unsigned char>(field[i])),
                 "trailing garbage in CSV value at line " +
                     std::to_string(lineno));
    }
    return v;
  } catch (const std::invalid_argument&) {
    GS_REQUIRE(false,
               "malformed CSV value at line " + std::to_string(lineno));
  } catch (const std::out_of_range&) {
    GS_REQUIRE(false,
               "out-of-range CSV value at line " + std::to_string(lineno));
  }
  return 0.0;
}

}  // namespace

SolarTrace load_solar_csv(std::istream& in, const SolarCsvOptions& opts) {
  std::vector<double> values;
  std::string line;
  std::size_t lineno = 0;
  bool skipped_header = !opts.has_header;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip CR from CRLF files.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (!skipped_header) {
      skipped_header = true;
      continue;
    }
    values.push_back(parse_row(line, opts.delimiter, lineno));
  }
  GS_REQUIRE(!values.empty(), "CSV trace contains no samples");

  const double peak = *std::max_element(values.begin(), values.end());
  if (peak >= opts.raw_threshold) {
    // Raw irradiance: normalize to the observed peak.
    for (auto& v : values) v = std::max(0.0, v) / peak;
  } else {
    for (auto& v : values) {
      GS_REQUIRE(v >= 0.0 && v <= 1.0,
                 "normalized CSV sample out of [0,1]");
    }
  }
  return SolarTrace(std::move(values), opts.sample_period);
}

SolarTrace load_solar_csv_file(const std::string& path,
                               const SolarCsvOptions& opts) {
  std::ifstream in(path);
  GS_REQUIRE(in.good(), "cannot open CSV trace file: " + path);
  return load_solar_csv(in, opts);
}

void save_solar_csv(std::ostream& out, const SolarTrace& trace) {
  const double period = trace.period().value();
  for (std::size_t i = 0; i < trace.samples().size(); ++i) {
    out << double(i) * period << ',' << trace.samples()[i] << '\n';
  }
}

void save_solar_csv_file(const std::string& path, const SolarTrace& trace) {
  std::ofstream out(path);
  GS_REQUIRE(out.good(), "cannot open CSV trace file for writing: " + path);
  save_solar_csv(out, trace);
}

}  // namespace gs::trace
