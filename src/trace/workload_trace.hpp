// Workload-intensity traces.
//
// Figure 1 of the paper overlays a Google data-center diurnal load pattern
// (with several intra-day bursts that exceed the grid power budget) on the
// renewable supply. DiurnalTrace synthesizes that shape; BurstPattern
// describes the injected bursts used by the evaluation (Section IV injects
// bursts of 10/15/30/60 minutes at intensity levels Int=7..12, where Int=k
// means the peak load equals the processing capability of k cores at the
// maximum frequency).
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace gs::trace {

/// One workload burst: a plateau of `intensity` (normalized load in [0,1]
/// of the cluster's maximum sprint capacity) lasting `duration`.
struct BurstPattern {
  Seconds start{0.0};
  Seconds duration{600.0};
  /// Fraction of maximum-sprint processing capacity demanded at the peak.
  double intensity = 1.0;
};

/// Temporal shape of a burst's offered load. The paper's evaluation uses
/// plateaus ("we inject the workloads to deliberately induce power
/// bursts"); real spikes ramp and oscillate, which stresses the load
/// predictor differently (bench/abl_burst_shape).
enum class BurstShape {
  Plateau,  ///< Constant peak for the whole burst (the paper's method).
  Ramp,     ///< Linear climb from half load to the peak.
  Spike,    ///< Peak in the middle third, 60% shoulders.
  Wave,     ///< Sinusoidal oscillation around 90% of the peak.
};

[[nodiscard]] const char* to_string(BurstShape s);

/// Load multiplier (of the burst's peak) at `progress` in [0,1] through
/// the burst.
[[nodiscard]] double burst_shape_factor(BurstShape shape, double progress);

struct DiurnalConfig {
  /// Mean load as a fraction of normal (non-sprint) capacity.
  double base_level = 0.55;
  /// Amplitude of the day/night swing.
  double swing = 0.30;
  /// Hour of the diurnal peak.
  double peak_hour = 14.0;
  /// Minute-scale noise amplitude.
  double noise = 0.03;
  std::uint64_t seed = 7;
};

/// Smooth diurnal load curve plus optional bursts, sampled per minute.
class DiurnalTrace {
 public:
  DiurnalTrace(const DiurnalConfig& cfg, Seconds duration,
               std::vector<BurstPattern> bursts = {});

  /// Normalized workload intensity at time t (>= 0; may exceed 1 during
  /// bursts, meaning the offered load exceeds normal capacity).
  [[nodiscard]] double at(Seconds t) const;

  [[nodiscard]] Seconds duration() const;
  [[nodiscard]] const std::vector<BurstPattern>& bursts() const {
    return bursts_;
  }

 private:
  std::vector<double> samples_;
  Seconds period_{60.0};
  std::vector<BurstPattern> bursts_;
};

}  // namespace gs::trace
