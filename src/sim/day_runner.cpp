#include "sim/day_runner.hpp"

#include <algorithm>
#include <cmath>

#include "ckpt/state_io.hpp"
#include "common/assert.hpp"
#include "common/keyed_cache.hpp"
#include "sim/tsdb_sink.hpp"

namespace gs::sim {

std::vector<trace::BurstPattern> default_daily_bursts() {
  using gs::Seconds;
  return {
      {Seconds(9.0 * 3600.0), Seconds(1200.0), 1.0},
      {Seconds(13.5 * 3600.0), Seconds(1800.0), 1.0},
      {Seconds(19.5 * 3600.0), Seconds(900.0), 1.0},
  };
}

std::uint64_t day_run_fingerprint(const DayRunConfig& cfg) {
  std::uint64_t h = 0xda15c0deull;
  h = hash_combine(h, std::uint64_t(cfg.days));
  h = hash_combine(h, std::uint64_t(cfg.cluster.servers));
  h = hash_combine(h, cfg.cluster.battery_per_server.value());
  h = hash_combine(h, std::uint64_t(cfg.cluster.strategy));
  h = hash_combine(h, std::uint64_t(cfg.cluster.allocation));
  h = hash_combine(h, cfg.cluster.epoch.value());
  h = hash_combine(h, std::uint64_t(cfg.cluster.grid_charging));
  h = hash_combine(h, std::uint64_t(cfg.panels));
  h = hash_combine(h, std::uint64_t(cfg.daily_bursts.size()));
  for (const trace::BurstPattern& b : cfg.daily_bursts) {
    h = hash_combine(h, b.start.value());
    h = hash_combine(h, b.duration.value());
    h = hash_combine(h, b.intensity);
  }
  h = hash_combine(h, cfg.diurnal.base_level);
  h = hash_combine(h, cfg.diurnal.swing);
  h = hash_combine(h, cfg.diurnal.peak_hour);
  h = hash_combine(h, cfg.diurnal.noise);
  h = hash_combine(h, cfg.diurnal.seed);
  h = hash_combine(h, cfg.solar_seed);
  h = hash_combine(h, cfg.background_load);
  for (const faults::FaultClass cls : faults::all_fault_classes()) {
    h = hash_combine(h, cfg.faults.intensity(cls));
  }
  h = hash_combine(h, cfg.faults.seed);
  return h;
}

std::uint64_t day_result_fingerprint(const DayRunResult& r) {
  std::uint64_t h = 0xda15f00dull;
  h = hash_combine(h, r.simulated.value());
  h = hash_combine(h, r.sprint_time.value());
  h = hash_combine(h, r.sprint_hours_per_server);
  h = hash_combine(h, r.mean_burst_goodput);
  h = hash_combine(h, r.normal_goodput);
  h = hash_combine(h, r.burst_speedup);
  h = hash_combine(h, r.re_energy.value());
  h = hash_combine(h, r.batt_energy.value());
  h = hash_combine(h, r.grid_energy.value());
  h = hash_combine(h, r.battery_cycles);
  h = hash_combine(h, std::uint64_t(r.bursts_served));
  h = hash_combine(h, std::uint64_t(r.crash_epochs));
  h = hash_combine(h, std::uint64_t(r.degraded_epochs));
  return h;
}

std::vector<LiveEpoch> day_feed_plan(const DayRunConfig& cfg) {
  DaySim sim(cfg);
  std::vector<LiveEpoch> plan;
  const double n = sim.horizon().value() / sim.epoch().value();
  plan.reserve(std::size_t(n) + 1);
  for (Seconds t{0.0}; t < sim.horizon(); t += sim.epoch()) {
    plan.push_back(sim.planned_epoch(t));
  }
  return plan;
}

namespace {

DayRunConfig validated(DayRunConfig cfg) {
  GS_REQUIRE(cfg.days >= 1, "need at least one day");
  return cfg;
}

trace::SolarTraceConfig day_solar_config(const DayRunConfig& cfg) {
  trace::SolarTraceConfig solar_cfg;
  solar_cfg.seed = cfg.solar_seed;
  solar_cfg.days = std::max(cfg.days, 1);
  return solar_cfg;
}

}  // namespace

DaySim::DaySim(const DayRunConfig& cfg)
    : cfg_(validated(cfg)),
      solar_(trace::shared_solar_trace(day_solar_config(cfg_))),
      array_({cfg_.panels, Watts(275.0), 0.77}),
      cluster_(workload::specjbb(), cfg_.cluster),
      lambda_burst_(cluster_.perf().intensity_load(server::kMaxCores)),
      lambda_background_(cfg_.background_load *
                         cluster_.perf().capacity(server::normal_mode())),
      epoch_(cfg_.cluster.epoch),
      horizon_(double(cfg_.days) * 86400.0),
      live_faults_(cfg_.faults),
      injector_(cfg_.faults, horizon_, epoch_, cfg_.cluster.servers) {
  out_.normal_goodput =
      cluster_.perf().goodput(server::normal_mode(), lambda_burst_);
  out_.simulated = horizon_;
}

void DaySim::step() { step_live(planned_epoch(t_)); }

LiveEpoch DaySim::planned_epoch(Seconds t) const {
  const double day_offset = std::fmod(t.value(), 86400.0);
  const bool in_burst = std::any_of(
      cfg_.daily_bursts.begin(), cfg_.daily_bursts.end(),
      [&](const trace::BurstPattern& b) {
        return day_offset >= b.start.value() &&
               day_offset < b.start.value() + b.duration.value();
      });
  return {in_burst ? lambda_burst_ : lambda_background_, solar_->at(t),
          in_burst};
}

void DaySim::step_live(const LiveEpoch& in) {
  GS_REQUIRE(!done(), "step() past the campaign horizon");
  const Seconds t = t_;
  faults::EpochFaults ef;
  const faults::EpochFaults* ef_ptr = nullptr;
  Watts re_total = array_.ac_output(in.irradiance);
  if (injector_.enabled()) {
    ef = injector_.at(t);
    ef_ptr = &ef;
    re_total = re_total * ef.solar_factor;
    cluster_.apply_component_faults(ef);
  }
  if (in.in_burst) {
    if (!in_burst_prev_) ++out_.bursts_served;
    const auto ep = cluster_.step(re_total, in.lambda, true, ef_ptr);
    burst_goodput_sum_ += ep.total_goodput / double(cluster_.servers());
    ++burst_epochs_;
    out_.sprint_time += epoch_ * double(ep.servers_sprinting);
    out_.re_energy += ep.re_used * epoch_;
    out_.batt_energy += ep.batt_used * epoch_;
    out_.grid_energy += ep.grid_used * epoch_;
    out_.crash_epochs += std::size_t(ep.servers_crashed);
    out_.degraded_epochs += std::size_t(ep.servers_degraded);
    if (tsdb_ != nullptr) {
      record_cluster_epoch(*tsdb_, tsdb_rack_, t.value(), ep);
    }
  } else {
    cluster_.idle_step(re_total, in.lambda);
  }
  in_burst_prev_ = in.in_burst;
  t_ += epoch_;
}

void DaySim::set_faults(const faults::FaultSpec& spec) {
  bool same = spec.seed == live_faults_.seed;
  for (const faults::FaultClass cls : faults::all_fault_classes()) {
    same = same && spec.intensity(cls) == live_faults_.intensity(cls);
  }
  if (same) return;
  live_faults_ = spec;
  injector_ =
      faults::FaultInjector(spec, horizon_, epoch_, cfg_.cluster.servers);
}

DayRunResult DaySim::finish() {
  GS_REQUIRE(done(), "finish() before the campaign completed");
  if (burst_epochs_ > 0) {
    out_.mean_burst_goodput = burst_goodput_sum_ / double(burst_epochs_);
    out_.burst_speedup = out_.mean_burst_goodput / out_.normal_goodput;
  }
  out_.sprint_hours_per_server =
      out_.sprint_time.value() / 3600.0 / double(cluster_.servers());
  out_.battery_cycles = cluster_.total_equivalent_cycles();
  return out_;
}

void DaySim::save_state(ckpt::StateWriter& w) const {
  w.begin_section("day_sim", kStateVersion);
  w.u64(day_run_fingerprint(cfg_));
  w.f64(t_.value());
  w.boolean(in_burst_prev_);
  w.f64(burst_goodput_sum_);
  w.u64(burst_epochs_);
  w.f64(out_.sprint_time.value());
  w.f64(out_.re_energy.value());
  w.f64(out_.batt_energy.value());
  w.f64(out_.grid_energy.value());
  w.i64(out_.bursts_served);
  w.u64(out_.crash_epochs);
  w.u64(out_.degraded_epochs);
  // v2: live overrides, restored before the cluster state so the
  // controllers are rebuilt for the right strategy kind first.
  w.u8(std::uint8_t(cluster_.config().strategy));
  for (const faults::FaultClass cls : faults::all_fault_classes()) {
    w.f64(live_faults_.intensity(cls));
  }
  w.u64(live_faults_.seed);
  cluster_.save_state(w);
  w.end_section();
}

void DaySim::load_state(ckpt::StateReader& r) {
  r.begin_section("day_sim", kStateVersion);
  if (r.u64() != day_run_fingerprint(cfg_)) {
    throw ckpt::SnapshotError(
        "day snapshot was taken under a different campaign config "
        "(fingerprint mismatch)");
  }
  t_ = Seconds(r.f64());
  in_burst_prev_ = r.boolean();
  burst_goodput_sum_ = r.f64();
  burst_epochs_ = std::size_t(r.u64());
  out_.sprint_time = Seconds(r.f64());
  out_.re_energy = Joules(r.f64());
  out_.batt_energy = Joules(r.f64());
  out_.grid_energy = Joules(r.f64());
  out_.bursts_served = int(r.i64());
  out_.crash_epochs = std::size_t(r.u64());
  out_.degraded_epochs = std::size_t(r.u64());
  const std::uint8_t kind = r.u8();
  if (kind > std::uint8_t(core::StrategyKind::Efficiency)) {
    throw ckpt::SnapshotError("day snapshot holds invalid strategy kind " +
                              std::to_string(int(kind)));
  }
  faults::FaultSpec live;
  for (const faults::FaultClass cls : faults::all_fault_classes()) {
    live.set_intensity(cls, r.f64());
  }
  live.seed = r.u64();
  cluster_.set_strategy(core::StrategyKind(kind));
  set_faults(live);
  cluster_.load_state(r);
  r.end_section();
}

DayRunResult run_days(const DayRunConfig& cfg) {
  DaySim sim(cfg);
  while (!sim.done()) sim.step();
  return sim.finish();
}

double yearly_sprint_hours(const DayRunResult& r) {
  GS_REQUIRE(r.simulated.value() > 0.0, "empty run");
  const double days = r.simulated.value() / 86400.0;
  return r.sprint_hours_per_server * 365.0 / days;
}

}  // namespace gs::sim
