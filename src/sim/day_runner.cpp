#include "sim/day_runner.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "faults/fault_injector.hpp"
#include "power/solar_array.hpp"

namespace gs::sim {

std::vector<trace::BurstPattern> default_daily_bursts() {
  using gs::Seconds;
  return {
      {Seconds(9.0 * 3600.0), Seconds(1200.0), 1.0},
      {Seconds(13.5 * 3600.0), Seconds(1800.0), 1.0},
      {Seconds(19.5 * 3600.0), Seconds(900.0), 1.0},
  };
}

DayRunResult run_days(const DayRunConfig& cfg) {
  GS_REQUIRE(cfg.days >= 1, "need at least one day");
  trace::SolarTraceConfig solar_cfg;
  solar_cfg.seed = cfg.solar_seed;
  solar_cfg.days = std::max(cfg.days, 1);
  const auto solar_ptr = trace::shared_solar_trace(solar_cfg);
  const trace::SolarTrace& solar = *solar_ptr;
  const power::SolarArray array({cfg.panels, Watts(275.0), 0.77});

  GreenCluster cluster(workload::specjbb(), cfg.cluster);
  const auto& perf = cluster.perf();
  const double lambda_burst = perf.intensity_load(server::kMaxCores);
  const double lambda_background =
      cfg.background_load * perf.capacity(server::normal_mode());
  const double normal_goodput =
      perf.goodput(server::normal_mode(), lambda_burst);

  DayRunResult out;
  out.normal_goodput = normal_goodput;
  const Seconds epoch = cfg.cluster.epoch;
  const Seconds horizon(double(cfg.days) * 86400.0);
  out.simulated = horizon;

  const faults::FaultInjector injector(cfg.faults, horizon, epoch,
                                       cfg.cluster.servers);

  double burst_goodput_sum = 0.0;
  std::size_t burst_epochs = 0;
  bool in_burst_prev = false;

  for (Seconds t(0.0); t < horizon; t += epoch) {
    const double day_offset = std::fmod(t.value(), 86400.0);
    const bool in_burst = std::any_of(
        cfg.daily_bursts.begin(), cfg.daily_bursts.end(),
        [&](const trace::BurstPattern& b) {
          return day_offset >= b.start.value() &&
                 day_offset < b.start.value() + b.duration.value();
        });
    faults::EpochFaults ef;
    const faults::EpochFaults* ef_ptr = nullptr;
    Watts re_total = array.ac_output(solar.at(t));
    if (injector.enabled()) {
      ef = injector.at(t);
      ef_ptr = &ef;
      re_total = re_total * ef.solar_factor;
      cluster.apply_component_faults(ef);
    }
    if (in_burst) {
      if (!in_burst_prev) ++out.bursts_served;
      const auto ep = cluster.step(re_total, lambda_burst, true, ef_ptr);
      burst_goodput_sum += ep.total_goodput / double(cluster.servers());
      ++burst_epochs;
      out.sprint_time += epoch * double(ep.servers_sprinting);
      out.re_energy += ep.re_used * epoch;
      out.batt_energy += ep.batt_used * epoch;
      out.grid_energy += ep.grid_used * epoch;
      out.crash_epochs += std::size_t(ep.servers_crashed);
      out.degraded_epochs += std::size_t(ep.servers_degraded);
    } else {
      cluster.idle_step(re_total, lambda_background);
    }
    in_burst_prev = in_burst;
  }

  if (burst_epochs > 0) {
    out.mean_burst_goodput = burst_goodput_sum / double(burst_epochs);
    out.burst_speedup = out.mean_burst_goodput / normal_goodput;
  }
  out.sprint_hours_per_server =
      out.sprint_time.value() / 3600.0 / double(cluster.servers());
  out.battery_cycles = cluster.total_equivalent_cycles();
  return out;
}

double yearly_sprint_hours(const DayRunResult& r) {
  GS_REQUIRE(r.simulated.value() > 0.0, "empty run");
  const double days = r.simulated.value() / 86400.0;
  return r.sprint_hours_per_server * 365.0 / days;
}

}  // namespace gs::sim
