// The Monitor component of the GreenSprint architecture (Fig. 3): collects
// workload performance (latency, throughput) and power telemetry (battery
// energy, renewable power, server power) per scheduling epoch, keeps a
// bounded history for the Predictor, and aggregates burst statistics.
#pragma once

#include <array>
#include <cstddef>

#include "common/ring_buffer.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "faults/fault_spec.hpp"
#include "power/pss.hpp"
#include "server/setting.hpp"

namespace gs::sim {

/// One epoch's telemetry sample.
struct MonitorSample {
  Seconds time{0.0};
  server::ServerSetting setting;
  power::PowerCase power_case = power::PowerCase::Idle;
  double offered_load = 0.0;
  double goodput = 0.0;
  Seconds latency{0.0};
  Watts demand{0.0};
  Watts re_used{0.0};
  Watts batt_used{0.0};
  Watts grid_used{0.0};
  double battery_soc = 1.0;
};

class Monitor {
 public:
  explicit Monitor(std::size_t history = 256);

  void record(const MonitorSample& s);

  [[nodiscard]] std::size_t epochs() const { return count_; }
  [[nodiscard]] const RingBuffer<MonitorSample>& history() const {
    return history_;
  }
  /// Most recent sample; requires at least one record().
  [[nodiscard]] const MonitorSample& last() const;

  // Aggregates over the whole recording (not just retained history).
  [[nodiscard]] const RunningStats& goodput_stats() const { return goodput_; }
  [[nodiscard]] const RunningStats& latency_stats() const { return latency_; }
  [[nodiscard]] const RunningStats& demand_stats() const { return demand_; }
  [[nodiscard]] Joules re_energy() const { return re_energy_; }
  [[nodiscard]] Joules batt_energy() const { return batt_energy_; }
  [[nodiscard]] Joules grid_energy() const { return grid_energy_; }
  /// Seconds spent in each sprinting state above Normal mode.
  [[nodiscard]] Seconds sprint_time() const { return sprint_time_; }

  // --- Fault telemetry (src/faults) ---------------------------------------

  /// Account one epoch during which `cls` was actively degrading service.
  void record_fault(faults::FaultClass cls);
  /// Account one epoch spent with the controller clamped to Normal.
  void record_degraded_epoch();
  /// Account one epoch of total outage (crashed green server).
  void record_crash_epoch();

  /// Downtime attributed to a fault class (epochs x epoch length).
  [[nodiscard]] Seconds fault_downtime(faults::FaultClass cls) const;
  /// Downtime summed over every fault class.
  [[nodiscard]] Seconds total_fault_downtime() const;
  [[nodiscard]] std::size_t degraded_epochs() const {
    return degraded_epochs_;
  }
  [[nodiscard]] std::size_t crash_epochs() const { return crash_epochs_; }

  /// Record epoch duration used for energy integration.
  void set_epoch(Seconds epoch) { epoch_ = epoch; }
  [[nodiscard]] Seconds epoch() const { return epoch_; }

 private:
  RingBuffer<MonitorSample> history_;
  std::size_t count_ = 0;
  Seconds epoch_{60.0};
  RunningStats goodput_;
  RunningStats latency_;
  RunningStats demand_;
  Joules re_energy_{0.0};
  Joules batt_energy_{0.0};
  Joules grid_energy_{0.0};
  Seconds sprint_time_{0.0};
  std::array<Seconds, faults::kNumFaultClasses> fault_downtime_{};
  std::size_t degraded_epochs_ = 0;
  std::size_t crash_epochs_ = 0;
};

}  // namespace gs::sim
