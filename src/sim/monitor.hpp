// The Monitor component of the GreenSprint architecture (Fig. 3): collects
// workload performance (latency, throughput) and power telemetry (battery
// energy, renewable power, server power) per scheduling epoch, keeps a
// bounded history for the Predictor, and aggregates burst statistics.
//
// Thread safety: all recording and query paths are internally synchronized
// (clang -Wthread-safety enforces the lock discipline), so one Monitor can
// be shared by concurrently simulated servers — e.g. a rack runner fanning
// epochs across the thread pool. Queries return snapshots by value; there
// are no references into guarded state.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "ckpt/fwd.hpp"
#include "common/ring_buffer.hpp"
#include "common/stats.hpp"
#include "common/thread_annotations.hpp"
#include "common/units.hpp"
#include "faults/fault_spec.hpp"
#include "power/pss.hpp"
#include "server/setting.hpp"
#include "sim/tsdb_sink.hpp"

namespace gs::sim {

/// One epoch's telemetry sample.
struct MonitorSample {
  Seconds time{0.0};
  server::ServerSetting setting;
  power::PowerCase power_case = power::PowerCase::Idle;
  double offered_load = 0.0;
  double goodput = 0.0;
  Seconds latency{0.0};
  Watts demand{0.0};
  Watts re_used{0.0};
  Watts batt_used{0.0};
  Watts grid_used{0.0};
  double battery_soc = 1.0;
  // Epoch condition flags (mirrors EpochRecord, so the telemetry engine
  // sees the full CSV column set).
  bool downgraded = false;  ///< Emergency PMK downgrade fired.
  bool faulted = false;     ///< Any fault event active this epoch.
  bool crashed = false;     ///< Green server down this epoch.
  bool degraded = false;    ///< Controller clamped to Normal.
};

class Monitor {
 public:
  explicit Monitor(std::size_t history = 256);

  void record(const MonitorSample& s) GS_EXCLUDES(mu_);

  [[nodiscard]] std::size_t epochs() const GS_EXCLUDES(mu_);
  /// Snapshot of the retained history (index 0 is the oldest sample).
  [[nodiscard]] RingBuffer<MonitorSample> history() const GS_EXCLUDES(mu_);
  /// Most recent sample; requires at least one record().
  [[nodiscard]] MonitorSample last() const GS_EXCLUDES(mu_);

  // Aggregates over the whole recording (not just retained history).
  [[nodiscard]] RunningStats goodput_stats() const GS_EXCLUDES(mu_);
  [[nodiscard]] RunningStats latency_stats() const GS_EXCLUDES(mu_);
  [[nodiscard]] RunningStats demand_stats() const GS_EXCLUDES(mu_);
  [[nodiscard]] Joules re_energy() const GS_EXCLUDES(mu_);
  [[nodiscard]] Joules batt_energy() const GS_EXCLUDES(mu_);
  [[nodiscard]] Joules grid_energy() const GS_EXCLUDES(mu_);
  /// Seconds spent in each sprinting state above Normal mode.
  [[nodiscard]] Seconds sprint_time() const GS_EXCLUDES(mu_);

  // --- Fault telemetry (src/faults) ---------------------------------------

  /// Account one epoch during which `cls` was actively degrading service.
  void record_fault(faults::FaultClass cls) GS_EXCLUDES(mu_);
  /// Account one *incident* of `cls`: the rising edge where the class went
  /// from inactive to active (the runner detects the edge; the Monitor
  /// just counts). Incident counts + downtime give MTTR/MTBF.
  void record_fault_incident(faults::FaultClass cls) GS_EXCLUDES(mu_);
  /// Account one epoch spent with the controller clamped to Normal.
  void record_degraded_epoch() GS_EXCLUDES(mu_);
  /// Account one epoch of total outage (crashed green server).
  void record_crash_epoch() GS_EXCLUDES(mu_);
  /// Account one correlated burst of `cls`: the rising edge of an epoch
  /// where a Storm- or Cascade-origin event of the class was active
  /// (faults/correlation.hpp). Subset of record_fault_incident edges.
  void record_correlated_burst(faults::FaultClass cls) GS_EXCLUDES(mu_);
  /// Account one epoch spent in controller health state `state`
  /// (core::HealthState as an int in [0,3): Healthy/Degraded/Recovering).
  void record_health_epoch(int state) GS_EXCLUDES(mu_);
  /// Account one epoch driven by the EWMA fallback because the live feed
  /// had stalled (serve daemon `feed_stale` health flag; batch runs never
  /// record any).
  void record_feed_stale_epoch() GS_EXCLUDES(mu_);

  /// Downtime attributed to a fault class (epochs x epoch length).
  [[nodiscard]] Seconds fault_downtime(faults::FaultClass cls) const
      GS_EXCLUDES(mu_);
  /// Downtime summed over every fault class.
  [[nodiscard]] Seconds total_fault_downtime() const GS_EXCLUDES(mu_);
  /// Incidents (activation edges) of a fault class.
  [[nodiscard]] std::size_t fault_incidents(faults::FaultClass cls) const
      GS_EXCLUDES(mu_);
  [[nodiscard]] std::size_t total_fault_incidents() const GS_EXCLUDES(mu_);
  [[nodiscard]] std::size_t degraded_epochs() const GS_EXCLUDES(mu_);
  [[nodiscard]] std::size_t crash_epochs() const GS_EXCLUDES(mu_);
  /// Epochs the serve daemon synthesized from the EWMA fallback.
  [[nodiscard]] std::size_t feed_stale_epochs() const GS_EXCLUDES(mu_);
  /// Correlated bursts (Storm/Cascade rising edges) of a fault class.
  [[nodiscard]] std::size_t correlated_bursts(faults::FaultClass cls) const
      GS_EXCLUDES(mu_);
  [[nodiscard]] std::size_t total_correlated_bursts() const GS_EXCLUDES(mu_);
  /// Epochs spent in a controller health state (index = HealthState).
  [[nodiscard]] std::size_t health_epochs(int state) const GS_EXCLUDES(mu_);
  /// health_epochs(state) x epoch length.
  [[nodiscard]] Seconds time_in_health(int state) const GS_EXCLUDES(mu_);

  /// Record epoch duration used for energy integration.
  void set_epoch(Seconds epoch) GS_EXCLUDES(mu_);
  [[nodiscard]] Seconds epoch() const GS_EXCLUDES(mu_);

  /// Attach a telemetry-engine sink: every record()ed sample is also
  /// appended to the sink's fifteen metric series. Pass a
  /// default-constructed sink to detach. The sink is runtime plumbing, not
  /// state: it is not checkpointed and must be re-attached after a
  /// restore.
  void set_tsdb_sink(TsdbSink sink) GS_EXCLUDES(mu_);

  /// Number of tracked health states (mirrors core::HealthState).
  static constexpr std::size_t kNumHealthStates = 3;

  // --- Checkpoint/restore (src/ckpt). v2 appends the correlated-burst
  // counters and the time-in-health-state histogram; v3 appends the epoch
  // condition flags to each retained sample; v4 appends the feed-stale
  // epoch counter (serve daemon).
  static constexpr std::uint32_t kStateVersion = 4;
  void save_state(ckpt::StateWriter& w) const GS_EXCLUDES(mu_);
  void load_state(ckpt::StateReader& r) GS_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  RingBuffer<MonitorSample> history_ GS_GUARDED_BY(mu_);
  std::size_t count_ GS_GUARDED_BY(mu_) = 0;
  Seconds epoch_ GS_GUARDED_BY(mu_){60.0};
  RunningStats goodput_ GS_GUARDED_BY(mu_);
  RunningStats latency_ GS_GUARDED_BY(mu_);
  RunningStats demand_ GS_GUARDED_BY(mu_);
  Joules re_energy_ GS_GUARDED_BY(mu_){0.0};
  Joules batt_energy_ GS_GUARDED_BY(mu_){0.0};
  Joules grid_energy_ GS_GUARDED_BY(mu_){0.0};
  Seconds sprint_time_ GS_GUARDED_BY(mu_){0.0};
  std::array<Seconds, faults::kNumFaultClasses> fault_downtime_
      GS_GUARDED_BY(mu_){};
  std::array<std::size_t, faults::kNumFaultClasses> fault_incidents_
      GS_GUARDED_BY(mu_){};
  std::size_t degraded_epochs_ GS_GUARDED_BY(mu_) = 0;
  std::size_t crash_epochs_ GS_GUARDED_BY(mu_) = 0;
  std::array<std::size_t, faults::kNumFaultClasses> correlated_bursts_
      GS_GUARDED_BY(mu_){};
  std::array<std::size_t, kNumHealthStates> health_epochs_
      GS_GUARDED_BY(mu_){};
  std::size_t feed_stale_epochs_ GS_GUARDED_BY(mu_) = 0;
  TsdbSink tsdb_sink_ GS_GUARDED_BY(mu_);
};

}  // namespace gs::sim
