#include "sim/tsdb_sink.hpp"

#include "common/assert.hpp"
#include "sim/green_cluster.hpp"
#include "sim/monitor.hpp"
#include "tsdb/engine.hpp"

namespace gs::sim {

const std::array<const char*, kNumTsdbEpochMetrics> kTsdbEpochMetrics = {
    "cores",     "freq_ghz",     "power_case", "demand_w",
    "re_w",      "batt_w",       "grid_w",     "soc",
    "offered_load", "goodput",   "latency_s",  "downgraded",
    "faulted",   "crashed",      "degraded",
};

double tsdb_epoch_metric_value(const MonitorSample& s, std::size_t metric) {
  switch (metric) {
    case 0: return double(s.setting.cores);
    case 1: return s.setting.frequency().value();
    case 2: return double(std::uint8_t(s.power_case));
    case 3: return s.demand.value();
    case 4: return s.re_used.value();
    case 5: return s.batt_used.value();
    case 6: return s.grid_used.value();
    case 7: return s.battery_soc;
    case 8: return s.offered_load;
    case 9: return s.goodput;
    case 10: return s.latency.value();
    case 11: return s.downgraded ? 1.0 : 0.0;
    case 12: return s.faulted ? 1.0 : 0.0;
    case 13: return s.crashed ? 1.0 : 0.0;
    case 14: return s.degraded ? 1.0 : 0.0;
    default: break;
  }
  GS_REQUIRE(false, "tsdb epoch metric index out of range");
  return 0.0;
}

TsdbSink::TsdbSink(tsdb::Engine* engine, std::uint32_t rack,
                   std::uint32_t server)
    : engine_(engine), rack_(rack), server_(server) {
  GS_REQUIRE(engine_ != nullptr, "tsdb sink needs an engine");
  for (std::size_t m = 0; m < kNumTsdbEpochMetrics; ++m) {
    ids_[m] = engine_->series(kTsdbEpochMetrics[m], rack_, server_);
  }
}

void TsdbSink::record(const MonitorSample& s) const {
  GS_REQUIRE(engine_ != nullptr, "record() on a disabled tsdb sink");
  const tsdb::Timestamp t = tsdb::to_timestamp(s.time);
  for (std::size_t m = 0; m < kNumTsdbEpochMetrics; ++m) {
    engine_->append_at(ids_[m], t, tsdb_epoch_metric_value(s, m));
  }
}

const std::array<const char*, kNumTsdbClusterMetrics> kTsdbClusterMetrics = {
    "cluster_goodput",   "cluster_demand_w", "cluster_re_w",
    "cluster_batt_w",    "cluster_grid_w",   "servers_sprinting",
    "servers_crashed",   "servers_degraded",
};

void record_cluster_epoch(tsdb::Engine& engine, std::uint32_t rack,
                          double t_s, const ClusterEpoch& ep) {
  const std::array<double, kNumTsdbClusterMetrics> values = {
      ep.total_goodput,
      ep.total_demand.value(),
      ep.re_used.value(),
      ep.batt_used.value(),
      ep.grid_used.value(),
      double(ep.servers_sprinting),
      double(ep.servers_crashed),
      double(ep.servers_degraded),
  };
  const tsdb::Timestamp t = tsdb::to_timestamp(t_s);
  for (std::size_t m = 0; m < kNumTsdbClusterMetrics; ++m) {
    engine.append_at(
        engine.series(kTsdbClusterMetrics[m], rack, kTsdbAggregateServer), t,
        values[m]);
  }
}

}  // namespace gs::sim
