// gs:durable-io
#include "sim/sweep_mp.hpp"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fcntl.h>
#include <filesystem>
#include <string>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

#include "common/assert.hpp"
#include "common/io.hpp"
#include "sim/sweep_ckpt.hpp"

namespace gs::sim {

namespace {

namespace fs = std::filesystem;

/// Failpoint sites on the lease protocol (see DESIGN.md §17).
constexpr const char* kFailpointLeaseClaim = "sweep.lease.claim";
constexpr const char* kFailpointLeaseSteal = "sweep.lease.steal";

std::string lease_file_name(std::size_t i) {
  std::string idx = std::to_string(i);
  while (idx.size() < 6) idx.insert(idx.begin(), '0');
  return "cell-" + idx + ".lease";
}

fs::path lease_path(const std::string& dir, std::size_t i) {
  return fs::path(dir) / lease_file_name(i);
}

/// Atomic test-and-set: O_CREAT|O_EXCL succeeds for exactly one claimant.
/// The lease body is the owner's pid (ASCII) for liveness probes. An
/// injected I/O failure (chaos lane) counts as a lost claim: the worker
/// moves on and the cell is picked up by someone else — or by this
/// worker's next pass, once the half-created lease goes stale.
bool try_claim_lease(const fs::path& lease) {
  try {
    const std::string body = std::to_string(::getpid()) + "\n";
    return io::exclusive_create(lease, body, kFailpointLeaseClaim);
  } catch (const io::IoError&) {
    return false;
  }
}

/// Owner pid recorded in the lease, or 0 when unreadable.
long lease_owner_pid(const fs::path& lease) {
  std::FILE* f = std::fopen(lease.c_str(), "r");
  if (f == nullptr) return 0;
  long pid = 0;
  if (std::fscanf(f, "%ld", &pid) != 1) pid = 0;
  std::fclose(f);
  return pid;
}

/// A lease is stale when its recorded owner is provably dead, or when it
/// has sat untouched longer than stale_after_s (the cross-host fallback —
/// pid probes only see this machine).
bool lease_is_stale(const fs::path& lease, double stale_after_s) {
  const long pid = lease_owner_pid(lease);
  if (pid > 0) {
    if (::kill(pid_t(pid), 0) == 0) {
      // Owner alive: stale only by age.
    } else if (errno == ESRCH) {
      return true;  // owner is gone
    }
  } else if (pid == 0) {
    return true;  // unreadable or half-written body
  }
  struct stat st {};
  if (::stat(lease.c_str(), &st) != 0) return false;  // raced away
  // Lease aging is wall-clock by nature: it measures how long a real OS
  // process has been silent, not simulated time.
  const std::time_t now = std::time(nullptr);  // gs-lint: allow(wall-clock)
  const double age_s = std::difftime(now, st.st_mtime);
  return age_s > stale_after_s;
}

/// Take over a stale lease: atomically rename it aside to a name unique
/// to this (pid, sequence), so exactly one of several concurrent
/// claimants wins the rename (the losers get ENOENT). The winner unlinks
/// the aside file and is then free to re-claim through try_claim_lease —
/// which it still races for fairly.
bool steal_stale_lease(const fs::path& lease, std::uint64_t seq) {
  const fs::path aside = lease.string() + ".stale." +
                         std::to_string(::getpid()) + "." +
                         std::to_string(seq);
  try {
    io::rename_file(lease, aside, kFailpointLeaseSteal);
  } catch (const io::IoError&) {
    // Lost the rename race (ENOENT) or an injected failure: either way
    // someone else owns the takeover.
    return false;
  }
  ::unlink(aside.c_str());
  return true;
}

}  // namespace

SweepWorkerStats run_sweep_worker(const std::vector<Scenario>& scenarios,
                                  const SweepWorkerOptions& opts) {
  GS_REQUIRE(!opts.dir.empty(), "sweep worker needs a directory");
  GS_REQUIRE(opts.stale_after_s > 0.0, "stale lease age must be positive");
  sweep_ckpt::ensure_manifest(opts.dir, scenarios, /*resume=*/true);

  SweepWorkerStats stats;
  stats.cells_total = scenarios.size();
  std::vector<char> done(scenarios.size(), 0);
  std::uint64_t steal_seq = 0;
  for (;;) {
    std::size_t remaining = 0;
    bool progressed = false;
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      if (done[i]) continue;
      if (sweep_ckpt::cell_exists(opts.dir, i)) {
        // Finished by us on an earlier pass or by another worker; any
        // orphan lease beside it is irrelevant — the cell file wins.
        done[i] = 1;
        continue;
      }
      const fs::path lease = lease_path(opts.dir, i);
      bool claimed = try_claim_lease(lease);
      if (!claimed && lease_is_stale(lease, opts.stale_after_s)) {
        if (steal_stale_lease(lease, steal_seq++)) {
          ++stats.leases_taken_over;
        }
        claimed = try_claim_lease(lease);
      }
      if (!claimed) {
        // A live worker owns this cell; revisit on the next pass.
        ++remaining;
        continue;
      }
      const BurstResult result = run_burst(scenarios[i]);
      sweep_ckpt::write_cell(opts.dir, i, scenarios[i], result);
      ::unlink(lease.c_str());
      done[i] = 1;
      ++stats.cells_run;
      progressed = true;
    }
    if (remaining == 0) return stats;
    if (!progressed) {
      // Every remaining cell is leased by a live worker: wait for its
      // snapshot to appear (or its lease to go stale) and rescan.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

std::vector<BurstResult> run_sweep_multiprocess(
    const std::vector<Scenario>& scenarios, const SweepMpOptions& opts,
    SweepCheckpointStats* stats) {
  GS_REQUIRE(!opts.dir.empty(), "multi-process sweep needs a directory");
  GS_REQUIRE(opts.workers >= 1, "need at least one worker");
  sweep_ckpt::ensure_manifest(opts.dir, scenarios, opts.resume);

  // Cells already on disk before any worker starts are the true resumed
  // set; everything the workers (or the merge) produce afterwards was
  // computed by *this* invocation — the distinction the perf gate needs.
  std::size_t preexisting = 0;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (sweep_ckpt::cell_exists(opts.dir, i)) ++preexisting;
  }

  SweepWorkerOptions worker_opts;
  worker_opts.dir = opts.dir;
  worker_opts.stale_after_s = opts.stale_after_s;

  std::vector<pid_t> children;
  children.reserve(std::size_t(opts.workers));
  for (int w = 0; w < opts.workers; ++w) {
    const pid_t pid = ::fork();
    GS_ENSURE(pid >= 0, "fork failed for sweep worker");
    if (pid == 0) {
      // Worker child: compute cells, then exit without running parent
      // teardown (_exit skips atexit handlers and C++ destructors).
      int rc = 0;
      try {
        (void)run_sweep_worker(scenarios, worker_opts);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "sweep worker %d: %s\n", int(::getpid()),
                     e.what());
        rc = 1;
      } catch (...) {
        rc = 1;
      }
      ::_exit(rc);
    }
    children.push_back(pid);
  }
  for (const pid_t pid : children) {
    int status = 0;
    // Crashed or killed workers are fine: survivors reclaim their stale
    // leases, and whatever is still missing the merge recomputes inline.
    (void)::waitpid(pid, &status, 0);
  }

  SweepCheckpointOptions merge;
  merge.dir = opts.dir;
  merge.resume = true;  // load every worker-produced cell, compute the rest
  merge.every = 1;
  auto results = run_sweep_checkpointed(scenarios, merge, /*threads=*/1,
                                        stats);
  if (stats != nullptr) {
    stats->cells_resumed = preexisting;
    stats->cells_run = scenarios.size() - preexisting;
  }
  return results;
}

}  // namespace gs::sim
