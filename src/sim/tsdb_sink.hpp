// Bridge from the Monitor's epoch telemetry into the embedded time-series
// engine (src/tsdb). A sink binds one (rack, server) coordinate of one
// Engine and fans each MonitorSample out into the fifteen per-epoch metric
// series listed in kTsdbEpochMetrics — the exact column set (and order) of
// export_epochs_csv, so a CSV exported back out of the engine reproduces
// the legacy export byte for byte. Sample values are stored losslessly
// (doubles bit-exact, enums and flags as small exact integers) on the
// engine's order-preserving timestamp key, which is why the round trip is
// exact rather than approximate.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "tsdb/fwd.hpp"

namespace gs::sim {

struct MonitorSample;
struct ClusterEpoch;

inline constexpr std::size_t kNumTsdbEpochMetrics = 15;

/// Per-epoch metric names, in export_epochs_csv column order (after the
/// t_s time axis, which becomes the engine's timestamp).
extern const std::array<const char*, kNumTsdbEpochMetrics> kTsdbEpochMetrics;

/// Value of one metric column for a sample (index into kTsdbEpochMetrics).
[[nodiscard]] double tsdb_epoch_metric_value(const MonitorSample& s,
                                             std::size_t metric);

/// Copyable handle the Monitor forwards samples through. A
/// default-constructed sink is disabled (records nothing).
class TsdbSink {
 public:
  TsdbSink() = default;
  /// Interns the fifteen series for (rack, server) in `engine`, which must
  /// outlive the sink. `engine` may be shared by many sinks (the engine is
  /// internally synchronized).
  TsdbSink(tsdb::Engine* engine, std::uint32_t rack, std::uint32_t server);

  [[nodiscard]] explicit operator bool() const { return engine_ != nullptr; }
  [[nodiscard]] std::uint32_t rack() const { return rack_; }
  [[nodiscard]] std::uint32_t server() const { return server_; }

  /// Append the sample's metrics at its (absolute) epoch time.
  void record(const MonitorSample& s) const;

 private:
  tsdb::Engine* engine_ = nullptr;
  std::uint32_t rack_ = 0;
  std::uint32_t server_ = 0;
  std::array<tsdb::SeriesId, kNumTsdbEpochMetrics> ids_{};
};

// --- Cluster-aggregate telemetry (Day/Rack runners) -------------------------

/// Server coordinate for cluster-aggregate series: these describe the
/// whole green group, not one machine, so they live outside the real
/// server-id range.
inline constexpr std::uint32_t kTsdbAggregateServer = 0xffffffffu;

inline constexpr std::size_t kNumTsdbClusterMetrics = 8;

/// Cluster-aggregate metric names, in ClusterEpoch field order.
extern const std::array<const char*, kNumTsdbClusterMetrics>
    kTsdbClusterMetrics;

/// Append one ClusterEpoch's aggregates at time `t_s` seconds under
/// (rack, kTsdbAggregateServer).
void record_cluster_epoch(tsdb::Engine& engine, std::uint32_t rack,
                          double t_s, const ClusterEpoch& ep);

}  // namespace gs::sim
