// CSV exporters for simulation results, for external plotting of the
// paper's figures (each bench prints tables; these emit machine-readable
// series with the same columns).
#pragma once

#include <iosfwd>
#include <string>

#include "sim/burst_runner.hpp"

namespace gs::sim {

/// One row per epoch: time, setting, power case, per-source watts, SoC,
/// goodput, latency.
void export_epochs_csv(std::ostream& os, const BurstResult& result);
void export_epochs_csv_file(const std::string& path,
                            const BurstResult& result);

/// One summary row (appendable across scenarios): scenario descriptors
/// plus normalized performance and energy totals.
void export_summary_header(std::ostream& os);
void export_summary_row(std::ostream& os, const Scenario& scenario,
                        const BurstResult& result);

}  // namespace gs::sim
