// CSV exporters for simulation results, for external plotting of the
// paper's figures (each bench prints tables; these emit machine-readable
// series with the same columns).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/burst_runner.hpp"
#include "tsdb/fwd.hpp"

namespace gs::sim {

/// One row per epoch: time, setting, power case, per-source watts, SoC,
/// goodput, latency. Numbers are formatted with TextTable::exact, so the
/// CSV re-ingests without losing bits.
void export_epochs_csv(std::ostream& os, const BurstResult& result);
void export_epochs_csv_file(const std::string& path,
                            const BurstResult& result);

/// Same CSV, read back out of the telemetry engine: joins the fifteen
/// kTsdbEpochMetrics series recorded for (rack, server) on their shared
/// epoch timestamps. Because the sink stores every column losslessly on an
/// order-preserving time key, the output is byte-identical to
/// export_epochs_csv over the BurstResult the sink observed (`window_start`
/// is the result's window_start — the engine keys absolute time). Throws
/// tsdb::TsdbError if the fifteen series are absent or misaligned.
void export_epochs_csv(std::ostream& os, tsdb::Engine& engine,
                       std::uint32_t rack, std::uint32_t server,
                       Seconds window_start);

/// One summary row (appendable across scenarios): scenario descriptors
/// plus normalized performance and energy totals.
void export_summary_header(std::ostream& os);
void export_summary_row(std::ostream& os, const Scenario& scenario,
                        const BurstResult& result);

// --- Availability (MTTR/MTBF) reporting -----------------------------------

/// Availability of one fault class over a burst.
struct AvailabilityRow {
  faults::FaultClass cls = faults::FaultClass(0);
  std::size_t incidents = 0;   ///< Activation edges of the class.
  Seconds downtime{0.0};       ///< Epochs the class was active.
  Seconds mttr{0.0};           ///< downtime / incidents.
  Seconds mtbf{0.0};           ///< (observed - downtime) / incidents.
};

/// MTTR/MTBF summary derived from a BurstResult's per-class incident and
/// downtime telemetry. Downtime of concurrently-active classes is counted
/// once per class, so the class-summed `downtime` can exceed the
/// observation window; the aggregate availability therefore uses the
/// *union* of impaired time (epochs with any fault active or the server
/// crashed, from the epoch flags), like an SRE availability report.
struct AvailabilityReport {
  Seconds observed{0.0};       ///< Burst length (epochs x epoch).
  Seconds downtime{0.0};       ///< Summed over every class (may overlap).
  Seconds impaired{0.0};       ///< Union: epochs with any class active.
  std::size_t incidents = 0;
  double availability = 1.0;   ///< 1 - impaired/observed, in [0,1].
  Seconds mttr{0.0};
  Seconds mtbf{0.0};
  std::vector<AvailabilityRow> per_class;  ///< Classes with incidents only.
};

/// Build the report; `epoch` is the scenario's scheduling-epoch length
/// (the result records downtime in whole epochs).
[[nodiscard]] AvailabilityReport availability_report(const BurstResult& result,
                                                     Seconds epoch);

/// One row per fault class with incidents, plus a trailing "total" row.
void export_availability_csv(std::ostream& os, const AvailabilityReport& rep);
void export_availability_csv_file(const std::string& path,
                                  const AvailabilityReport& rep);

}  // namespace gs::sim
