// Per-server simulation of the green group: each green server owns its own
// battery (the paper adopts Google-style *server-level* batteries) and its
// own GreenSprint controller; the rack's renewable output is divided among
// them by an allocation policy.
//
//  * EqualShare — every green server receives RE/n (the paper's implicit
//    symmetric setup; burst_runner's single-representative-server model is
//    exact for this policy).
//  * Waterfall  — servers are filled in priority order: the first server
//    gets renewable power up to its demand, the remainder flows to the
//    next. Concentrates scarce supply in a few fully-sprinting servers
//    instead of spreading it thin. bench/abl_re_allocation quantifies the
//    difference.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ckpt/fwd.hpp"
#include "core/greensprint.hpp"
#include "faults/fault_injector.hpp"
#include "power/battery.hpp"
#include "power/grid.hpp"
#include "power/pss.hpp"
#include "sim/monitor.hpp"

namespace gs::sim {

enum class ReAllocation { EqualShare, Waterfall };

[[nodiscard]] const char* to_string(ReAllocation a);

struct GreenClusterConfig {
  int servers = 3;
  AmpHours battery_per_server{3.2};
  core::StrategyKind strategy = core::StrategyKind::Hybrid;
  ReAllocation allocation = ReAllocation::EqualShare;
  Seconds epoch{60.0};
  /// Recharge batteries from the grid between bursts (paper Case 3: "we
  /// charge the battery with grid power in anticipation of future
  /// sprints"). Off = renewable-only charging (greener, slower recovery;
  /// bench/abl_charge_policy).
  bool grid_charging = true;
  /// Forwarded into every per-server core::ControllerConfig: Hybrid
  /// controllers learn recovery actions from the health dimension instead
  /// of clamping to Normal while degraded. Default off (bit-identical).
  bool health_aware = false;
};

/// Result of one cluster epoch.
struct ClusterEpoch {
  std::vector<server::ServerSetting> settings;  ///< Per green server.
  double total_goodput = 0.0;
  Watts total_demand{0.0};
  Watts re_used{0.0};
  Watts batt_used{0.0};
  Watts grid_used{0.0};
  int servers_sprinting = 0;
  int servers_crashed = 0;   ///< Injected ServerCrash outages this epoch.
  int servers_degraded = 0;  ///< Controllers clamped to Normal.
};

class GreenCluster {
 public:
  GreenCluster(const workload::AppDescriptor& app, GreenClusterConfig cfg);

  /// Advance one epoch: per-server arrival rate `lambda`, rack-level
  /// renewable output `re_total`, `bursting` gates grid charging.
  /// `epoch_faults` (optional) is this epoch's injected fault state; null
  /// keeps the exact fault-free code path.
  ClusterEpoch step(Watts re_total, double lambda, bool bursting,
                    const faults::EpochFaults* epoch_faults = nullptr);

  /// Heterogeneous variant (paper Section III-B models per-server L_j and
  /// S_j): one arrival rate per green server. Waterfall allocation sizes
  /// each server's claim by its own maximal-sprint demand at its level.
  ClusterEpoch step_hetero(Watts re_total,
                           const std::vector<double>& lambdas,
                           bool bursting,
                           const faults::EpochFaults* epoch_faults = nullptr);

  /// Apply component-level fault factors (battery fade / charge derate on
  /// every green battery, grid brownout derate) for the coming epoch.
  /// Callers pass the neutral factors to clear them on recovery.
  void apply_component_faults(const faults::EpochFaults& epoch_faults);

  /// Idle epoch (no burst): servers at Normal on grid; surplus RE and the
  /// grid recharge the batteries.
  void idle_step(Watts re_total, double background_lambda);

  [[nodiscard]] int servers() const { return cfg_.servers; }
  [[nodiscard]] double mean_soc() const;
  [[nodiscard]] double total_equivalent_cycles() const;
  [[nodiscard]] const GreenClusterConfig& config() const { return cfg_; }
  [[nodiscard]] const workload::PerfModel& perf() const { return perf_; }

  // --- Checkpoint/restore (src/ckpt) --------------------------------------
  // The snapshot carries the dynamic state only (batteries, controllers,
  // grid, deficit flags); load_state requires a cluster constructed from
  // the same (app, config) and throws ckpt::SnapshotError on a server-count
  // mismatch.
  static constexpr std::uint32_t kStateVersion = 1;
  void save_state(ckpt::StateWriter& w) const;
  void load_state(ckpt::StateReader& r);

 private:
  /// RE split for this epoch according to the policy.
  [[nodiscard]] std::vector<Watts> allocate(Watts re_total,
                                            const std::vector<Watts>& want)
      const;

  GreenClusterConfig cfg_;
  workload::AppDescriptor app_;
  workload::PerfModel perf_;
  server::ServerPowerModel power_model_;
  core::ProfileTable profile_;
  power::PowerSourceSelector pss_;
  std::vector<power::Battery> batteries_;
  std::vector<std::unique_ptr<core::GreenSprintController>> controllers_;
  power::Grid grid_;
  /// Per-server shortfall flags from the previous faulted epoch (feeds the
  /// degraded-mode hysteresis; untouched on fault-free steps).
  std::vector<bool> prev_deficit_;
};

}  // namespace gs::sim
