// Per-server simulation of the green group: each green server owns its own
// battery (the paper adopts Google-style *server-level* batteries) and its
// own GreenSprint controller; the rack's renewable output is divided among
// them by an allocation policy.
//
//  * EqualShare — every green server receives RE/n (the paper's implicit
//    symmetric setup; burst_runner's single-representative-server model is
//    exact for this policy).
//  * Waterfall  — servers are filled in priority order: the first server
//    gets renewable power up to its demand, the remainder flows to the
//    next. Concentrates scarce supply in a few fully-sprinting servers
//    instead of spreading it thin. bench/abl_re_allocation quantifies the
//    difference.
//
// The epoch kernel is structure-of-arrays (sim/soa_cluster_state.hpp):
// per-server power draws, settings, shortfall flags and the battery bank
// live in contiguous parallel arrays, and the fault-free step runs as a
// sequence of branch-lean phase loops over them. A single-pass reference
// implementation of the historical loop is kept as the bit-identity
// oracle (tests/sim/test_green_cluster_soa.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ckpt/fwd.hpp"
#include "core/greensprint.hpp"
#include "faults/fault_injector.hpp"
#include "power/grid.hpp"
#include "power/pss.hpp"
#include "sim/monitor.hpp"
#include "sim/soa_cluster_state.hpp"

namespace gs::sim {

enum class ReAllocation { EqualShare, Waterfall };

[[nodiscard]] const char* to_string(ReAllocation a);

struct GreenClusterConfig {
  int servers = 3;
  AmpHours battery_per_server{3.2};
  core::StrategyKind strategy = core::StrategyKind::Hybrid;
  ReAllocation allocation = ReAllocation::EqualShare;
  Seconds epoch{60.0};
  /// Recharge batteries from the grid between bursts (paper Case 3: "we
  /// charge the battery with grid power in anticipation of future
  /// sprints"). Off = renewable-only charging (greener, slower recovery;
  /// bench/abl_charge_policy).
  bool grid_charging = true;
  /// Forwarded into every per-server core::ControllerConfig: Hybrid
  /// controllers learn recovery actions from the health dimension instead
  /// of clamping to Normal while degraded. Default off (bit-identical).
  bool health_aware = false;
};

/// Result of one cluster epoch.
struct ClusterEpoch {
  std::vector<server::ServerSetting> settings;  ///< Per green server.
  double total_goodput = 0.0;
  Watts total_demand{0.0};
  Watts re_used{0.0};
  Watts batt_used{0.0};
  Watts grid_used{0.0};
  int servers_sprinting = 0;
  int servers_crashed = 0;   ///< Injected ServerCrash outages this epoch.
  int servers_degraded = 0;  ///< Controllers clamped to Normal.
};

class GreenCluster {
 public:
  GreenCluster(const workload::AppDescriptor& app, GreenClusterConfig cfg);

  /// Advance one epoch: per-server arrival rate `lambda`, rack-level
  /// renewable output `re_total`, `bursting` gates grid charging.
  /// `epoch_faults` (optional) is this epoch's injected fault state; null
  /// keeps the exact fault-free code path.
  ClusterEpoch step(Watts re_total, double lambda, bool bursting,
                    const faults::EpochFaults* epoch_faults = nullptr);

  /// Heterogeneous variant (paper Section III-B models per-server L_j and
  /// S_j): one arrival rate per green server. Waterfall allocation sizes
  /// each server's claim by its own maximal-sprint demand at its level.
  ///
  /// Fault-free epochs run the phased SoA kernel; faulted epochs run the
  /// single-pass reference loop (fault branches stay out of the hot path).
  ClusterEpoch step_hetero(Watts re_total,
                           const std::vector<double>& lambdas,
                           bool bursting,
                           const faults::EpochFaults* epoch_faults = nullptr);

  /// The historical single-pass epoch loop, kept verbatim as the oracle
  /// for the SoA kernel: for any input, step_hetero and
  /// step_hetero_reference produce bit-identical ClusterEpoch results and
  /// leave the cluster in bit-identical state. Faulted step_hetero epochs
  /// delegate here, so the reference is also the production fault path.
  ClusterEpoch step_hetero_reference(
      Watts re_total, const std::vector<double>& lambdas, bool bursting,
      const faults::EpochFaults* epoch_faults = nullptr);

  /// Apply component-level fault factors (battery fade / charge derate on
  /// every green battery, grid brownout derate) for the coming epoch.
  /// Callers pass the neutral factors to clear them on recovery.
  void apply_component_faults(const faults::EpochFaults& epoch_faults);

  /// Idle epoch (no burst): servers at Normal on grid; surplus RE and the
  /// grid recharge the batteries.
  void idle_step(Watts re_total, double background_lambda);

  /// Live strategy switch across every green server's controller (the
  /// daemon's `strategy <name>` command). Same-kind requests are strict
  /// no-ops; a real switch rebuilds each controller's PMK from scratch
  /// (learned state starts over). Call between epochs only. Returns true
  /// when the kind changed.
  bool set_strategy(core::StrategyKind kind);

  [[nodiscard]] int servers() const { return cfg_.servers; }
  [[nodiscard]] double mean_soc() const;
  [[nodiscard]] double total_equivalent_cycles() const;
  [[nodiscard]] const GreenClusterConfig& config() const { return cfg_; }
  [[nodiscard]] const workload::PerfModel& perf() const { return perf_; }
  /// Read-only view of the per-server arrays (telemetry / tests).
  [[nodiscard]] const SoaClusterState& soa() const { return soa_; }

  // --- Checkpoint/restore (src/ckpt) --------------------------------------
  // The snapshot carries the dynamic state only (batteries, controllers,
  // grid, deficit flags); load_state requires a cluster constructed from
  // the same (app, config) and throws ckpt::SnapshotError on a server-count
  // mismatch. The battery bank writes per-element sections byte-identical
  // to the historical vector<Battery> layout, so snapshots interchange
  // across the SoA refactor.
  static constexpr std::uint32_t kStateVersion = 1;
  void save_state(ckpt::StateWriter& w) const;
  void load_state(ckpt::StateReader& r);

 private:
  /// Fill soa_.lambda / soa_.want_w and run the allocation policy into
  /// soa_.share_w for this epoch.
  void prepare_epoch(Watts re_total, const std::vector<double>& lambdas);
  /// RE split for this epoch according to the policy (want_w -> share_w).
  void allocate_into(Watts re_total);
  /// Phased branch-lean kernel (fault-free epochs only).
  ClusterEpoch step_servers_fast(bool bursting);
  /// Historical single-pass loop (handles faults; the oracle).
  ClusterEpoch step_servers_reference(bool bursting,
                                      const faults::EpochFaults* epoch_faults);

  GreenClusterConfig cfg_;
  workload::AppDescriptor app_;
  workload::PerfModel perf_;
  server::ServerPowerModel power_model_;
  core::ProfileTable profile_;
  power::PowerSourceSelector pss_;
  std::vector<std::unique_ptr<core::GreenSprintController>> controllers_;
  power::Grid grid_;
  /// Structure-of-arrays per-server state: epoch scratch arrays plus the
  /// checkpointed battery bank and prev-deficit flags.
  SoaClusterState soa_;
};

}  // namespace gs::sim
