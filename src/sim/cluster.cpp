#include "sim/cluster.hpp"

#include "common/assert.hpp"

namespace gs::sim {

server::ServerSetting best_setting_under_cap(
    const workload::PerfModel& perf, const server::ServerPowerModel& power,
    double lambda, Watts per_server_cap) {
  const server::SettingLattice lattice;
  server::ServerSetting best = server::normal_mode();
  double best_goodput = -1.0;
  for (const auto& s : lattice.all()) {
    const double u = perf.utilization(s, lambda);
    if (power.power(s, u, perf.app().activity) > per_server_cap) continue;
    const double g = perf.goodput(s, lambda);
    if (g > best_goodput) {
      best_goodput = g;
      best = s;
    }
  }
  GS_ENSURE(best_goodput >= 0.0,
            "even Normal mode exceeds the per-server grid cap");
  return best;
}

Watts grid_share_per_server(const ClusterConfig& cluster) {
  GS_REQUIRE(cluster.grid_servers() > 0, "cluster needs grid servers");
  return cluster.grid_budget / double(cluster.grid_servers());
}

Watts cluster_power(const workload::PerfModel& perf,
                    const server::ServerPowerModel& power,
                    const ClusterConfig& cluster,
                    const server::ServerSetting& green_setting,
                    double lambda) {
  const auto& act = perf.app().activity;
  const double ug = perf.utilization(green_setting, lambda);
  const Watts green =
      power.power(green_setting, ug, act) * double(cluster.green_servers);
  const auto grid_setting = best_setting_under_cap(
      perf, power, lambda, grid_share_per_server(cluster));
  const double un = perf.utilization(grid_setting, lambda);
  const Watts grid =
      power.power(grid_setting, un, act) * double(cluster.grid_servers());
  return green + grid;
}

}  // namespace gs::sim
