#include "sim/burst_runner.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "ckpt/common_state.hpp"
#include "ckpt/state_io.hpp"
#include "common/assert.hpp"
#include "workload/des.hpp"

namespace gs::sim {

namespace {

Scenario validated(Scenario sc) {
  GS_REQUIRE(sc.green.green_servers > 0, "scenario needs green servers");
  GS_REQUIRE(sc.burst_duration.value() >= sc.epoch.value(),
             "burst must span at least one epoch");
  GS_REQUIRE(!sc.use_des || sc.burst_shape == trace::BurstShape::Plateau,
             "DES mode currently supports plateau bursts only");
  return sc;
}

trace::SolarTraceConfig trace_config(const Scenario& sc) {
  trace::SolarTraceConfig cfg;
  cfg.seed = sc.seed;
  return cfg;
}

Seconds find_window(const Scenario& sc) {
  const auto window = trace::shared_solar_window(
      trace_config(sc), sc.burst_duration, sc.availability);
  GS_REQUIRE(window.has_value(),
             "solar trace has no window of the requested availability");
  return *window;
}

std::optional<power::Battery> make_battery(const Scenario& sc) {
  if (sc.green.battery.value() <= 0.0) return std::nullopt;
  power::BatteryConfig bc;
  bc.capacity = sc.green.battery;
  return power::Battery(bc);
}

power::Grid make_grid(const Scenario& sc) {
  // Per-green-server grid backstop: enough for Normal mode plus battery
  // recharge; the rest of the rack's budget carries the grid servers.
  power::GridConfig cfg;
  cfg.budget = sc.app.normal_full_power + Watts(80.0);
  return power::Grid(cfg);
}

thermal::PcmBuffer make_pcm(const Scenario& sc) {
  thermal::PcmConfig cfg;
  cfg.latent_capacity = Joules(sc.pcm_capacity_j);
  return thermal::PcmBuffer(cfg);
}

core::ControllerConfig controller_config(const Scenario& sc) {
  core::ControllerConfig cfg;
  cfg.strategy = sc.strategy;
  cfg.epoch = sc.epoch;
  cfg.health_aware = sc.health_aware;
  return cfg;
}

// v2 appends the correlated-burst and health-state telemetry.
constexpr std::uint32_t kBurstResultVersion = 2;

}  // namespace

Watts BurstSim::re_share(Seconds t) const {
  return array_.ac_output(solar_->at(t)) / double(sc_.green.green_servers);
}

BurstSim::BurstSim(const Scenario& scenario)
    // Trace, window and profile all come from process-wide memo caches:
    // every sweep cell sharing a (seed, app) substrate reuses one immutable
    // instance, and a cache hit is bit-identical to regenerating (the
    // generators are deterministic in their keys).
    : sc_(validated(scenario)),
      solar_(trace::shared_solar_trace(trace_config(sc_))),
      start_(find_window(sc_)),
      array_({sc_.green.panels, Watts(275.0), 0.77}),
      battery_(make_battery(sc_)),
      dummy_battery_({AmpHours(1e-9)}),
      perf_(sc_.app),
      pmodel_(Watts(76.0)),
      profile_(core::ProfileTable::shared(perf_, pmodel_)),
      controller_(sc_.app, *profile_, pmodel_.idle_power(),
                  controller_config(sc_)),
      grid_(make_grid(sc_)),
      normal_(server::normal_mode()),
      lambda_peak_(perf_.intensity_load(sc_.burst_intensity)),
      lambda_background_(sc_.background_load * perf_.capacity(normal_)),
      n_epochs_(std::size_t(sc_.burst_duration.value() / sc_.epoch.value())),
      des_rng_(Rng::stream(sc_.seed, {0xde5ull})),
      // Fault injection (strictly opt-in): with the default all-zero spec
      // the injector is disabled and every step below follows the exact
      // fault-free arithmetic. Fault times are burst-relative. A disabled
      // CorrelationSpec is the identity, so the default scenario still
      // produces the independent schedule bit-for-bit.
      injector_(sc_.faults, sc_.fault_correlation, sc_.burst_duration,
                sc_.epoch, /*servers=*/1),
      last_sensed_load_(lambda_background_),
      pcm_(make_pcm(sc_)) {
  monitor_.set_epoch(sc_.epoch);
  result_.window_start = start_;
  result_.epochs.reserve(n_epochs_);

  // Warmup: prime the forecasts on the pre-burst trace.
  const Seconds warm_start =
      Seconds(std::max(0.0, (start_ - sc_.warmup).value()));
  for (Seconds t = warm_start; t < start_; t += sc_.epoch) {
    controller_.observe_idle(lambda_background_, re_share(t));
  }
}

void BurstSim::step() {
  GS_REQUIRE(!done(), "step() past the end of the burst");
  const std::size_t e = epoch_;
  const Seconds t = start_ + sc_.epoch * double(e);
  const double progress = (double(e) + 0.5) / double(n_epochs_);
  const double lambda_burst =
      lambda_peak_ * trace::burst_shape_factor(sc_.burst_shape, progress);
  normal_goodput_sum_ += perf_.goodput(normal_, lambda_burst);

  // Fault state for this epoch, applied at the component boundaries
  // before anything is measured or decided.
  faults::EpochFaults ef;
  const Seconds rel_t = sc_.epoch * double(e);
  if (injector_.enabled()) {
    ef = injector_.at(rel_t);
    batt().set_capacity_fade(ef.battery_capacity_factor);
    batt().set_charge_derate(ef.charge_efficiency_factor);
    grid_.set_budget_derate(ef.grid_budget_factor);
    const bool corr_on = injector_.schedule().correlation().enabled();
    for (faults::FaultClass cls : faults::all_fault_classes()) {
      const bool active = injector_.schedule().active(cls, rel_t);
      if (active) {
        monitor_.record_fault(cls);
        // Rising edge = one incident of this class (MTTR/MTBF telemetry).
        if (!prev_fault_active_[std::size_t(cls)]) {
          monitor_.record_fault_incident(cls);
        }
      }
      prev_fault_active_[std::size_t(cls)] = active;
      // Same edge detector restricted to Storm/Cascade-origin activity,
      // feeding the correlated-burst telemetry.
      if (corr_on) {
        const bool corr_active =
            injector_.schedule().correlated_active(cls, rel_t);
        if (corr_active && !prev_corr_active_[std::size_t(cls)]) {
          monitor_.record_correlated_burst(cls);
        }
        prev_corr_active_[std::size_t(cls)] = corr_active;
      }
    }
  }

  Watts re_obs = re_share(t);
  if (injector_.enabled()) re_obs = re_obs * ef.solar_factor;

  // Crashed green server: the epoch is a total outage. Rack telemetry
  // keeps flowing and surplus renewable still charges the battery; the
  // reboot re-enters sprinting through the recovery hysteresis.
  if (injector_.enabled() && ef.crashed(0)) {
    controller_.observe_idle(lambda_burst, re_obs);
    const auto settle =
        pss_.settle(Watts(0.0), re_obs, batt(), grid_, sc_.epoch,
                    /*bursting=*/true, Watts(0.0));
    monitor_.record_crash_epoch();
    monitor_.record_health_epoch(int(controller_.health()));
    MonitorSample sample;
    sample.time = t;
    sample.setting = normal_;
    sample.power_case = settle.power_case;
    sample.offered_load = lambda_burst;
    sample.battery_soc = battery_ ? battery_->state_of_charge() : 0.0;
    sample.faulted = true;
    sample.crashed = true;
    monitor_.record(sample);
    EpochRecord rec;
    rec.time = t;
    rec.setting = normal_;
    rec.power_case = settle.power_case;
    rec.offered_load = lambda_burst;
    rec.re_available = re_obs;
    rec.battery_soc = sample.battery_soc;
    rec.faulted = true;
    rec.crashed = true;
    result_.epochs.push_back(rec);
    prev_disturbance_ = true;
    ++epoch_;
    return;
  }

  const Watts batt_capable =
      battery_ ? battery_->max_discharge_power(sc_.epoch) : Watts(0.0);
  const Watts batt_power =
      injector_.enabled() && ef.battery_offline ? Watts(0.0) : batt_capable;

  // Degraded-mode input: last epoch's supply shortfall plus this
  // epoch's telemetry quality. Never invoked on fault-free runs, so the
  // controller stays permanently Healthy there.
  double sensed_load = lambda_burst;
  if (injector_.enabled()) {
    controller_.notify_health(prev_disturbance_, ef.sensor_dropout);
    monitor_.record_health_epoch(int(controller_.health()));
    sensed_load = ef.sensor_dropout
                      ? last_sensed_load_
                      : lambda_burst * ef.sensor_load_factor;
  }
  if (!(injector_.enabled() && ef.sensor_dropout)) {
    last_sensed_load_ = sensed_load;
  }

  // The Monitor measures the arrival rate at the head of the epoch (a
  // queue-length spike is visible within seconds); renewable output over
  // the epoch remains a genuine forecast from past production (Eq. 1).
  server::ServerSetting setting =
      controller_.begin_epoch(sensed_load, batt_power);

  // Emergency downgrade: the supply that materialized may be below the
  // prediction; the PMK must keep the server within the actual budget.
  const Watts green_avail = re_obs + batt_power;
  bool downgraded = false;
  if (setting != normal_ &&
      controller_.demand(lambda_burst, setting) > green_avail) {
    setting = controller_.replan(green_avail);
    downgraded = true;
    // The strategy budgets at its *predicted* load level; when the
    // actual level still draws more than the supply, fall to the
    // grid-backed floor rather than browning out.
    if (setting != normal_ &&
        controller_.demand(lambda_burst, setting) > green_avail) {
      setting = normal_;
    }
  }
  // Thermal constraint: a saturated PCM buffer cannot absorb more
  // sprint heat, forcing Normal mode until it refreezes.
  if (sc_.thermal_model && thermal_limited_ && setting != normal_) {
    setting = normal_;
    downgraded = true;
  }
  const Watts demand = controller_.demand(lambda_burst, setting);
  GS_ENSURE(setting == normal_ || demand <= green_avail + Watts(1e-6),
            "PMK produced a setting beyond the green budget");

  const Watts grid_cap =
      setting == normal_ ? sc_.app.normal_full_power : Watts(0.0);
  power::PssFaultState pss_fault;
  if (injector_.enabled()) {
    pss_fault.battery_offline = ef.battery_offline;
    pss_fault.switch_latency_fraction = ef.switch_latency_fraction;
  }
  const auto settle = pss_.settle(demand, re_obs, batt(), grid_, sc_.epoch,
                                  /*bursting=*/true, grid_cap, pss_fault);

  // Workload evaluation for this epoch. In DES mode the service runs
  // with admission control sized to its SLA window (an interactive
  // service sheds load it cannot serve in time rather than queueing it
  // to death); the Normal baseline in finish() uses the same policy.
  auto des_options = [&](const server::ServerSetting& s) {
    workload::DesOptions o;
    // Budget the wait so that an admitted request plus a ~95th-percentile
    // service draw still lands near the SLA.
    const double mean_service = 1.0 / sc_.app.service_rate(s.frequency());
    o.admit_wait_limit_s =
        std::max(0.1 * sc_.app.qos.limit.value(),
                 sc_.app.qos.limit.value() - 3.0 * mean_service);
    if (injector_.enabled()) o.service_derate = ef.speed(0);
    return o;
  };
  double goodput = 0.0;
  Seconds latency{0.0};
  if (sc_.use_des) {
    const auto des =
        workload::simulate_epoch(des_rng_, sc_.app, setting, lambda_burst,
                                 sc_.epoch, des_options(setting));
    goodput = des.goodput_rate;
    latency = des.tail_latency;
  } else {
    goodput = perf_.goodput(setting, lambda_burst);
    latency = perf_.latency(setting, lambda_burst);
    // Straggler fault on the analytic path: completions scale with the
    // derated service rate (the DES path models it request-level).
    if (injector_.enabled() && ef.speed(0) < 1.0) {
      goodput *= ef.speed(0);
      latency = latency / ef.speed(0);
    }
  }
  if (settle.deficit()) {
    // Sources could not actually carry the chosen setting (e.g. breaker
    // tripped): the server browns out to Normal-mode service this epoch.
    goodput = std::min(goodput, perf_.goodput(normal_, lambda_burst));
  }

  if (sc_.thermal_model) {
    thermal_limited_ = !pcm_.absorb(demand, sc_.epoch) || pcm_.saturated();
  }

  controller_.end_epoch(re_obs, demand, green_avail, latency);

  const bool is_degraded = injector_.enabled() && controller_.degraded();
  if (is_degraded) monitor_.record_degraded_epoch();
  prev_disturbance_ = settle.deficit();

  // Telemetry.
  MonitorSample sample;
  sample.time = t;
  sample.setting = setting;
  sample.power_case = settle.power_case;
  sample.offered_load = lambda_burst;
  sample.goodput = goodput;
  sample.latency = latency;
  sample.demand = demand;
  sample.re_used = settle.re_used;
  sample.batt_used = settle.batt_used;
  sample.grid_used = settle.grid_used;
  sample.battery_soc = battery_ ? battery_->state_of_charge() : 0.0;
  sample.downgraded = downgraded;
  sample.faulted = injector_.enabled() && ef.any();
  sample.degraded = is_degraded;
  monitor_.record(sample);

  EpochRecord rec;
  rec.time = t;
  rec.setting = setting;
  rec.power_case = settle.power_case;
  rec.offered_load = lambda_burst;
  rec.goodput = goodput;
  rec.latency = latency;
  rec.demand = demand;
  rec.re_used = settle.re_used;
  rec.batt_used = settle.batt_used;
  rec.grid_used = settle.grid_used;
  rec.re_available = re_obs;
  rec.battery_soc = sample.battery_soc;
  rec.downgraded = downgraded;
  rec.faulted = injector_.enabled() && ef.any();
  rec.degraded = is_degraded;
  result_.epochs.push_back(rec);
  ++epoch_;
}

BurstResult BurstSim::finish() {
  GS_REQUIRE(done(), "finish() before the burst completed");
  result_.mean_goodput = monitor_.goodput_stats().mean();
  const double lambda_burst = lambda_peak_;  // DES baseline: plateau only
  if (sc_.use_des) {
    // Normalize DES runs by a DES-measured Normal baseline so both sides
    // of the ratio carry the same queueing/admission semantics.
    Rng base_rng = Rng::stream(sc_.seed, {0xba5e});
    workload::DesOptions base_opts;
    const double mean_service_normal =
        1.0 / sc_.app.service_rate(normal_.frequency());
    base_opts.admit_wait_limit_s =
        std::max(0.1 * sc_.app.qos.limit.value(),
                 sc_.app.qos.limit.value() - 3.0 * mean_service_normal);
    double sum = 0.0;
    constexpr int kBaselineEpochs = 5;
    for (int i = 0; i < kBaselineEpochs; ++i) {
      sum += workload::simulate_epoch(base_rng, sc_.app, normal_,
                                      lambda_burst, sc_.epoch, base_opts)
                 .goodput_rate;
    }
    result_.normal_goodput = sum / kBaselineEpochs;
  } else {
    // Baseline under the same (possibly time-varying) offered load.
    result_.normal_goodput = normal_goodput_sum_ / double(n_epochs_);
  }
  result_.normalized_perf = result_.normal_goodput > 0.0
                                ? result_.mean_goodput / result_.normal_goodput
                                : 0.0;
  result_.re_energy_used = monitor_.re_energy();
  result_.batt_energy_used = monitor_.batt_energy();
  result_.grid_energy_used = monitor_.grid_energy();
  if (battery_) {
    result_.final_battery_dod = battery_->depth_of_discharge();
    result_.battery_cycles = battery_->equivalent_cycles();
  }
  result_.degraded_epochs = monitor_.degraded_epochs();
  result_.crash_epochs = monitor_.crash_epochs();
  result_.fault_downtime = monitor_.total_fault_downtime();
  for (faults::FaultClass cls : faults::all_fault_classes()) {
    result_.fault_incidents[std::size_t(cls)] = monitor_.fault_incidents(cls);
    result_.fault_class_downtime[std::size_t(cls)] =
        monitor_.fault_downtime(cls);
    result_.correlated_bursts[std::size_t(cls)] =
        monitor_.correlated_bursts(cls);
  }
  for (std::size_t h = 0; h < Monitor::kNumHealthStates; ++h) {
    result_.health_state_epochs[h] = monitor_.health_epochs(int(h));
  }
  return std::move(result_);
}

void BurstSim::save_state(ckpt::StateWriter& w) const {
  w.begin_section("burst_sim", kStateVersion);
  w.u64(scenario_fingerprint(sc_));
  w.u64(epoch_);
  w.boolean(prev_disturbance_);
  w.f64(last_sensed_load_);
  w.boolean(thermal_limited_);
  w.f64(normal_goodput_sum_);
  ckpt::save_rng(w, des_rng_);
  w.boolean(battery_.has_value());
  batt().save_state(w);
  grid_.save_state(w);
  pss_.save_state(w);
  controller_.save_state(w);
  monitor_.save_state(w);
  pcm_.save_state(w);
  injector_.save_state(w);
  for (const bool a : prev_fault_active_) w.boolean(a);
  for (const bool a : prev_corr_active_) w.boolean(a);
  save_burst_result(w, result_);
  w.end_section();
}

void BurstSim::load_state(ckpt::StateReader& r) {
  r.begin_section("burst_sim", kStateVersion);
  const std::uint64_t fp = r.u64();
  if (fp != scenario_fingerprint(sc_)) {
    throw ckpt::SnapshotError(
        "burst snapshot was taken under a different scenario "
        "(fingerprint mismatch)");
  }
  const auto at = std::size_t(r.u64());
  if (at > n_epochs_) {
    throw ckpt::SnapshotError("burst snapshot epoch index " +
                              std::to_string(at) + " exceeds burst length " +
                              std::to_string(n_epochs_));
  }
  epoch_ = at;
  prev_disturbance_ = r.boolean();
  last_sensed_load_ = r.f64();
  thermal_limited_ = r.boolean();
  normal_goodput_sum_ = r.f64();
  ckpt::load_rng(r, des_rng_);
  if (r.boolean() != battery_.has_value()) {
    throw ckpt::SnapshotError(
        "burst snapshot battery provisioning does not match the scenario");
  }
  batt().load_state(r);
  grid_.load_state(r);
  pss_.load_state(r);
  controller_.load_state(r);
  monitor_.load_state(r);
  pcm_.load_state(r);
  injector_.load_state(r);
  for (bool& a : prev_fault_active_) a = r.boolean();
  for (bool& a : prev_corr_active_) a = r.boolean();
  result_ = load_burst_result(r);
  r.end_section();
}

BurstResult run_burst(const Scenario& sc) {
  BurstSim sim(sc);
  while (!sim.done()) sim.step();
  return sim.finish();
}

double normalized_performance(const Scenario& scenario) {
  return run_burst(scenario).normalized_perf;
}

void save_burst_result(ckpt::StateWriter& w, const BurstResult& r) {
  w.begin_section("burst_result", kBurstResultVersion);
  w.u64(r.epochs.size());
  for (const EpochRecord& e : r.epochs) {
    w.f64(e.time.value());
    w.i64(e.setting.cores);
    w.i64(e.setting.freq_idx);
    w.u8(std::uint8_t(e.power_case));
    w.f64(e.offered_load);
    w.f64(e.goodput);
    w.f64(e.latency.value());
    w.f64(e.demand.value());
    w.f64(e.re_used.value());
    w.f64(e.batt_used.value());
    w.f64(e.grid_used.value());
    w.f64(e.re_available.value());
    w.f64(e.battery_soc);
    w.boolean(e.downgraded);
    w.boolean(e.faulted);
    w.boolean(e.crashed);
    w.boolean(e.degraded);
  }
  w.f64(r.mean_goodput);
  w.f64(r.normal_goodput);
  w.f64(r.normalized_perf);
  w.f64(r.final_battery_dod);
  w.f64(r.battery_cycles);
  w.f64(r.re_energy_used.value());
  w.f64(r.batt_energy_used.value());
  w.f64(r.grid_energy_used.value());
  w.f64(r.window_start.value());
  w.u64(r.degraded_epochs);
  w.u64(r.crash_epochs);
  w.f64(r.fault_downtime.value());
  for (const std::size_t n : r.fault_incidents) w.u64(n);
  for (const Seconds& s : r.fault_class_downtime) w.f64(s.value());
  for (const std::size_t n : r.correlated_bursts) w.u64(n);
  for (const std::size_t n : r.health_state_epochs) w.u64(n);
  w.end_section();
}

BurstResult load_burst_result(ckpt::StateReader& r) {
  BurstResult out;
  r.begin_section("burst_result", kBurstResultVersion);
  const auto n = std::size_t(r.u64());
  out.epochs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    EpochRecord e;
    e.time = Seconds(r.f64());
    e.setting.cores = int(r.i64());
    e.setting.freq_idx = int(r.i64());
    const std::uint8_t pc = r.u8();
    if (pc > std::uint8_t(power::PowerCase::GridFallback)) {
      throw ckpt::SnapshotError("burst result holds invalid power case " +
                                std::to_string(int(pc)));
    }
    e.power_case = power::PowerCase(pc);
    e.offered_load = r.f64();
    e.goodput = r.f64();
    e.latency = Seconds(r.f64());
    e.demand = Watts(r.f64());
    e.re_used = Watts(r.f64());
    e.batt_used = Watts(r.f64());
    e.grid_used = Watts(r.f64());
    e.re_available = Watts(r.f64());
    e.battery_soc = r.f64();
    e.downgraded = r.boolean();
    e.faulted = r.boolean();
    e.crashed = r.boolean();
    e.degraded = r.boolean();
    out.epochs.push_back(e);
  }
  out.mean_goodput = r.f64();
  out.normal_goodput = r.f64();
  out.normalized_perf = r.f64();
  out.final_battery_dod = r.f64();
  out.battery_cycles = r.f64();
  out.re_energy_used = Joules(r.f64());
  out.batt_energy_used = Joules(r.f64());
  out.grid_energy_used = Joules(r.f64());
  out.window_start = Seconds(r.f64());
  out.degraded_epochs = std::size_t(r.u64());
  out.crash_epochs = std::size_t(r.u64());
  out.fault_downtime = Seconds(r.f64());
  for (std::size_t& v : out.fault_incidents) v = std::size_t(r.u64());
  for (Seconds& s : out.fault_class_downtime) s = Seconds(r.f64());
  for (std::size_t& v : out.correlated_bursts) v = std::size_t(r.u64());
  for (std::size_t& v : out.health_state_epochs) v = std::size_t(r.u64());
  r.end_section();
  return out;
}

}  // namespace gs::sim
