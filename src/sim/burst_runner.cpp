#include "sim/burst_runner.hpp"

#include <algorithm>
#include <optional>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "core/greensprint.hpp"
#include "faults/fault_injector.hpp"
#include "power/battery.hpp"
#include "power/grid.hpp"
#include "power/solar_array.hpp"
#include "server/power_model.hpp"
#include "sim/monitor.hpp"
#include "thermal/pcm.hpp"
#include "workload/des.hpp"
#include "workload/perf_model.hpp"

namespace gs::sim {

namespace {

/// Green power available per green server at trace time t.
Watts re_share(const power::SolarArray& array, const trace::SolarTrace& tr,
               Seconds t, int green_servers) {
  return array.ac_output(tr.at(t)) / double(green_servers);
}

}  // namespace

BurstResult run_burst(const Scenario& sc) {
  GS_REQUIRE(sc.green.green_servers > 0, "scenario needs green servers");
  GS_REQUIRE(sc.burst_duration.value() >= sc.epoch.value(),
             "burst must span at least one epoch");

  // --- Substrate setup ----------------------------------------------------
  // Trace, window and profile all come from process-wide memo caches: every
  // sweep cell sharing a (seed, app) substrate reuses one immutable
  // instance, and a cache hit is bit-identical to regenerating (the
  // generators are deterministic in their keys).
  trace::SolarTraceConfig trace_cfg;
  trace_cfg.seed = sc.seed;
  const auto solar_ptr = trace::shared_solar_trace(trace_cfg);
  const trace::SolarTrace& solar = *solar_ptr;
  const auto window = trace::shared_solar_window(trace_cfg, sc.burst_duration,
                                                 sc.availability);
  GS_REQUIRE(window.has_value(),
             "solar trace has no window of the requested availability");
  const Seconds start = *window;

  power::SolarArray array({sc.green.panels, Watts(275.0), 0.77});

  std::optional<power::Battery> battery;
  if (sc.green.battery.value() > 0.0) {
    power::BatteryConfig bc;
    bc.capacity = sc.green.battery;
    battery.emplace(bc);
  }
  power::Battery dummy_battery({AmpHours(1e-9)});
  power::Battery& batt = battery ? *battery : dummy_battery;

  const workload::PerfModel perf(sc.app);
  const server::ServerPowerModel pmodel(Watts(76.0));
  const auto profile_ptr = core::ProfileTable::shared(perf, pmodel);
  const core::ProfileTable& profile = *profile_ptr;
  core::GreenSprintController controller(
      sc.app, profile, pmodel.idle_power(),
      {sc.strategy, core::PredictorConfig{}, sc.epoch});

  // Per-green-server grid backstop: enough for Normal mode plus battery
  // recharge; the rest of the rack's budget carries the grid servers.
  power::GridConfig grid_cfg;
  grid_cfg.budget = sc.app.normal_full_power + Watts(80.0);
  power::Grid grid(grid_cfg);
  const power::PowerSourceSelector pss;

  const server::ServerSetting normal = server::normal_mode();
  const double lambda_peak = perf.intensity_load(sc.burst_intensity);
  const double lambda_background =
      sc.background_load * perf.capacity(normal);
  GS_REQUIRE(!sc.use_des || sc.burst_shape == trace::BurstShape::Plateau,
             "DES mode currently supports plateau bursts only");

  // --- Warmup: prime the forecasts on the pre-burst trace -----------------
  const Seconds warm_start =
      Seconds(std::max(0.0, (start - sc.warmup).value()));
  for (Seconds t = warm_start; t < start; t += sc.epoch) {
    controller.observe_idle(
        lambda_background,
        re_share(array, solar, t, sc.green.green_servers));
  }

  // --- Burst epochs -------------------------------------------------------
  BurstResult result;
  result.window_start = start;
  const auto n_epochs =
      std::size_t(sc.burst_duration.value() / sc.epoch.value());
  result.epochs.reserve(n_epochs);

  Monitor monitor;
  monitor.set_epoch(sc.epoch);
  Rng des_rng = Rng::stream(sc.seed, {0xde5ull});

  // Fault injection (strictly opt-in): with the default all-zero spec the
  // injector is disabled and every step below follows the exact fault-free
  // arithmetic. Fault times are burst-relative.
  const faults::FaultInjector injector(sc.faults, sc.burst_duration,
                                       sc.epoch, /*servers=*/1);
  bool prev_disturbance = false;
  double last_sensed_load = lambda_background;

  thermal::PcmConfig pcm_cfg;
  pcm_cfg.latent_capacity = Joules(sc.pcm_capacity_j);
  thermal::PcmBuffer pcm(pcm_cfg);
  bool thermal_limited = false;

  double normal_goodput_sum = 0.0;
  for (std::size_t e = 0; e < n_epochs; ++e) {
    const Seconds t = start + sc.epoch * double(e);
    const double progress = (double(e) + 0.5) / double(n_epochs);
    const double lambda_burst =
        lambda_peak * trace::burst_shape_factor(sc.burst_shape, progress);
    normal_goodput_sum += perf.goodput(normal, lambda_burst);

    // Fault state for this epoch, applied at the component boundaries
    // before anything is measured or decided.
    faults::EpochFaults ef;
    const Seconds rel_t = sc.epoch * double(e);
    if (injector.enabled()) {
      ef = injector.at(rel_t);
      batt.set_capacity_fade(ef.battery_capacity_factor);
      batt.set_charge_derate(ef.charge_efficiency_factor);
      grid.set_budget_derate(ef.grid_budget_factor);
      for (faults::FaultClass cls : faults::all_fault_classes()) {
        if (injector.schedule().active(cls, rel_t)) monitor.record_fault(cls);
      }
    }

    Watts re_obs = re_share(array, solar, t, sc.green.green_servers);
    if (injector.enabled()) re_obs = re_obs * ef.solar_factor;

    // Crashed green server: the epoch is a total outage. Rack telemetry
    // keeps flowing and surplus renewable still charges the battery; the
    // reboot re-enters sprinting through the recovery hysteresis.
    if (injector.enabled() && ef.crashed(0)) {
      controller.observe_idle(lambda_burst, re_obs);
      const auto settle =
          pss.settle(Watts(0.0), re_obs, batt, grid, sc.epoch,
                     /*bursting=*/true, Watts(0.0));
      monitor.record_crash_epoch();
      MonitorSample sample;
      sample.time = t;
      sample.setting = normal;
      sample.power_case = settle.power_case;
      sample.offered_load = lambda_burst;
      sample.battery_soc = battery ? battery->state_of_charge() : 0.0;
      monitor.record(sample);
      EpochRecord rec;
      rec.time = t;
      rec.setting = normal;
      rec.power_case = settle.power_case;
      rec.offered_load = lambda_burst;
      rec.re_available = re_obs;
      rec.battery_soc = sample.battery_soc;
      rec.faulted = true;
      rec.crashed = true;
      result.epochs.push_back(rec);
      prev_disturbance = true;
      continue;
    }

    const Watts batt_capable =
        battery ? battery->max_discharge_power(sc.epoch) : Watts(0.0);
    const Watts batt_power =
        injector.enabled() && ef.battery_offline ? Watts(0.0) : batt_capable;

    // Degraded-mode input: last epoch's supply shortfall plus this
    // epoch's telemetry quality. Never invoked on fault-free runs, so the
    // controller stays permanently Healthy there.
    double sensed_load = lambda_burst;
    if (injector.enabled()) {
      controller.notify_health(prev_disturbance, ef.sensor_dropout);
      sensed_load = ef.sensor_dropout
                        ? last_sensed_load
                        : lambda_burst * ef.sensor_load_factor;
    }
    if (!(injector.enabled() && ef.sensor_dropout)) {
      last_sensed_load = sensed_load;
    }

    // The Monitor measures the arrival rate at the head of the epoch (a
    // queue-length spike is visible within seconds); renewable output over
    // the epoch remains a genuine forecast from past production (Eq. 1).
    server::ServerSetting setting =
        controller.begin_epoch(sensed_load, batt_power);

    // Emergency downgrade: the supply that materialized may be below the
    // prediction; the PMK must keep the server within the actual budget.
    const Watts green_avail = re_obs + batt_power;
    bool downgraded = false;
    if (setting != normal &&
        controller.demand(lambda_burst, setting) > green_avail) {
      setting = controller.replan(green_avail);
      downgraded = true;
      // The strategy budgets at its *predicted* load level; when the
      // actual level still draws more than the supply, fall to the
      // grid-backed floor rather than browning out.
      if (setting != normal &&
          controller.demand(lambda_burst, setting) > green_avail) {
        setting = normal;
      }
    }
    // Thermal constraint: a saturated PCM buffer cannot absorb more
    // sprint heat, forcing Normal mode until it refreezes.
    if (sc.thermal_model && thermal_limited && setting != normal) {
      setting = normal;
      downgraded = true;
    }
    const Watts demand = controller.demand(lambda_burst, setting);
    GS_ENSURE(setting == normal || demand <= green_avail + Watts(1e-6),
              "PMK produced a setting beyond the green budget");

    const Watts grid_cap =
        setting == normal ? sc.app.normal_full_power : Watts(0.0);
    power::PssFaultState pss_fault;
    if (injector.enabled()) {
      pss_fault.battery_offline = ef.battery_offline;
      pss_fault.switch_latency_fraction = ef.switch_latency_fraction;
    }
    const auto settle = pss.settle(demand, re_obs, batt, grid, sc.epoch,
                                   /*bursting=*/true, grid_cap, pss_fault);

    // Workload evaluation for this epoch. In DES mode the service runs
    // with admission control sized to its SLA window (an interactive
    // service sheds load it cannot serve in time rather than queueing it
    // to death); the Normal baseline below uses the same policy.
    auto des_options = [&](const server::ServerSetting& s) {
      workload::DesOptions o;
      // Budget the wait so that an admitted request plus a ~95th-percentile
      // service draw still lands near the SLA.
      const double mean_service =
          1.0 / sc.app.service_rate(s.frequency());
      o.admit_wait_limit_s =
          std::max(0.1 * sc.app.qos.limit.value(),
                   sc.app.qos.limit.value() - 3.0 * mean_service);
      if (injector.enabled()) o.service_derate = ef.speed(0);
      return o;
    };
    double goodput = 0.0;
    Seconds latency{0.0};
    if (sc.use_des) {
      const auto des =
          workload::simulate_epoch(des_rng, sc.app, setting, lambda_burst,
                                   sc.epoch, des_options(setting));
      goodput = des.goodput_rate;
      latency = des.tail_latency;
    } else {
      goodput = perf.goodput(setting, lambda_burst);
      latency = perf.latency(setting, lambda_burst);
      // Straggler fault on the analytic path: completions scale with the
      // derated service rate (the DES path models it request-level).
      if (injector.enabled() && ef.speed(0) < 1.0) {
        goodput *= ef.speed(0);
        latency = latency / ef.speed(0);
      }
    }
    if (settle.deficit()) {
      // Sources could not actually carry the chosen setting (e.g. breaker
      // tripped): the server browns out to Normal-mode service this epoch.
      goodput = std::min(goodput, perf.goodput(normal, lambda_burst));
    }

    if (sc.thermal_model) {
      thermal_limited = !pcm.absorb(demand, sc.epoch) || pcm.saturated();
    }

    controller.end_epoch(re_obs, demand, green_avail, latency);

    const bool is_degraded = injector.enabled() && controller.degraded();
    if (is_degraded) monitor.record_degraded_epoch();
    prev_disturbance = settle.deficit();

    // Telemetry.
    MonitorSample sample;
    sample.time = t;
    sample.setting = setting;
    sample.power_case = settle.power_case;
    sample.offered_load = lambda_burst;
    sample.goodput = goodput;
    sample.latency = latency;
    sample.demand = demand;
    sample.re_used = settle.re_used;
    sample.batt_used = settle.batt_used;
    sample.grid_used = settle.grid_used;
    sample.battery_soc = battery ? battery->state_of_charge() : 0.0;
    monitor.record(sample);

    EpochRecord rec;
    rec.time = t;
    rec.setting = setting;
    rec.power_case = settle.power_case;
    rec.offered_load = lambda_burst;
    rec.goodput = goodput;
    rec.latency = latency;
    rec.demand = demand;
    rec.re_used = settle.re_used;
    rec.batt_used = settle.batt_used;
    rec.grid_used = settle.grid_used;
    rec.re_available = re_obs;
    rec.battery_soc = sample.battery_soc;
    rec.downgraded = downgraded;
    rec.faulted = injector.enabled() && ef.any();
    rec.degraded = is_degraded;
    result.epochs.push_back(rec);
  }

  result.mean_goodput = monitor.goodput_stats().mean();
  const double lambda_burst = lambda_peak;  // DES baseline: plateau only
  if (sc.use_des) {
    // Normalize DES runs by a DES-measured Normal baseline so both sides
    // of the ratio carry the same queueing/admission semantics.
    Rng base_rng = Rng::stream(sc.seed, {0xba5e});
    workload::DesOptions base_opts;
    const double mean_service_normal =
        1.0 / sc.app.service_rate(normal.frequency());
    base_opts.admit_wait_limit_s =
        std::max(0.1 * sc.app.qos.limit.value(),
                 sc.app.qos.limit.value() - 3.0 * mean_service_normal);
    double sum = 0.0;
    constexpr int kBaselineEpochs = 5;
    for (int i = 0; i < kBaselineEpochs; ++i) {
      sum += workload::simulate_epoch(base_rng, sc.app, normal,
                                      lambda_burst, sc.epoch, base_opts)
                 .goodput_rate;
    }
    result.normal_goodput = sum / kBaselineEpochs;
  } else {
    // Baseline under the same (possibly time-varying) offered load.
    result.normal_goodput = normal_goodput_sum / double(n_epochs);
  }
  result.normalized_perf =
      result.normal_goodput > 0.0 ? result.mean_goodput / result.normal_goodput
                                  : 0.0;
  result.re_energy_used = monitor.re_energy();
  result.batt_energy_used = monitor.batt_energy();
  result.grid_energy_used = monitor.grid_energy();
  if (battery) {
    result.final_battery_dod = battery->depth_of_discharge();
    result.battery_cycles = battery->equivalent_cycles();
  }
  result.degraded_epochs = monitor.degraded_epochs();
  result.crash_epochs = monitor.crash_epochs();
  result.fault_downtime = monitor.total_fault_downtime();
  return result;
}

double normalized_performance(const Scenario& scenario) {
  return run_burst(scenario).normalized_perf;
}

}  // namespace gs::sim
