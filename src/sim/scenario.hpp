// Experiment scenarios: the green-provision options of Table I and the
// burst parameters swept in Section IV (availability x duration x strategy
// x intensity x application).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "core/strategy.hpp"
#include "faults/correlation.hpp"
#include "faults/fault_spec.hpp"
#include "trace/solar.hpp"
#include "trace/workload_trace.hpp"
#include "workload/app.hpp"

namespace gs::sim {

/// One row of Table I. 'S' prefixes mean small provision: SBatt = 3.2 Ah
/// server-level batteries, SRE = two panels instead of three feeding the
/// green group (max 423.5 W AC, paper Section IV).
struct GreenConfig {
  std::string name;
  int green_servers = 3;   ///< Servers on the green bus (30% of 10).
  int panels = 3;          ///< 275 W-DC panels (one per green server; SRE=2).
  AmpHours battery{10.0};  ///< Server-level battery capacity (0 = none).
};

[[nodiscard]] GreenConfig re_batt();     ///< 30% servers, 10 Ah.
[[nodiscard]] GreenConfig re_only();     ///< 30% servers, no battery.
[[nodiscard]] GreenConfig re_sbatt();    ///< 30% servers, 3.2 Ah.
[[nodiscard]] GreenConfig sre_sbatt();   ///< small RE (2 panels), 3.2 Ah.
[[nodiscard]] std::vector<GreenConfig> table1_configs();

/// Full description of one evaluation run.
struct Scenario {
  workload::AppDescriptor app;
  GreenConfig green;
  core::StrategyKind strategy = core::StrategyKind::Hybrid;
  trace::Availability availability = trace::Availability::Max;
  Seconds burst_duration{600.0};
  /// Burst intensity Int=k: offered load equals the capability of k cores
  /// at maximum frequency (paper Section IV-D; 12 = saturating burst).
  int burst_intensity = 12;
  /// Temporal shape of the burst's offered load (paper uses plateaus).
  trace::BurstShape burst_shape = trace::BurstShape::Plateau;
  Seconds epoch{60.0};
  /// Pre-burst warmup that primes the predictor and exercises charging.
  Seconds warmup{3600.0};
  /// Pre-burst background load as a fraction of Normal-mode capacity.
  double background_load = 0.3;
  std::uint64_t seed = 1;
  /// Evaluate epochs with the per-request discrete-event simulator instead
  /// of the analytic queueing model.
  bool use_des = false;
  /// Enforce the chip-level thermal constraint through the PCM buffer
  /// (paper Section II assumes the package absorbs sprint heat; enabling
  /// this checks the assumption — a saturated buffer forces Normal mode).
  bool thermal_model = false;
  /// PCM latent-heat budget when thermal_model is on (J). The default
  /// package (1.2 MJ, ~6 kg paraffin equivalent) carries hour-scale
  /// maximal sprints, per the paper's "delay thermal limits by hours".
  double pcm_capacity_j = 1.2e6;
  /// Fault-injection spec (src/faults). The all-zero default disables
  /// injection entirely: the run is bit-identical to a fault-free build.
  /// Fault times are burst-relative (t = 0 at the first burst epoch), so
  /// the same spec replays the same failure history across availability
  /// windows and scenario seeds.
  faults::FaultSpec faults;
  /// Correlated fault processes layered over `faults` (weather fronts,
  /// rack cascades, burst regimes — faults/correlation.hpp). The disabled
  /// default leaves the schedule, and the run's fingerprint, bit-identical
  /// to independent draws.
  faults::CorrelationSpec fault_correlation;
  /// Learned health-aware recovery (core::ControllerConfig::health_aware);
  /// meaningful only with the Hybrid strategy.
  bool health_aware = false;
};

/// Order-sensitive digest over every field that influences a run. Burst
/// snapshots embed it so that loading a checkpoint against a different
/// scenario fails loudly instead of resuming into the wrong simulation;
/// the checkpointed sweep keys its per-cell files the same way.
[[nodiscard]] std::uint64_t scenario_fingerprint(const Scenario& sc);

}  // namespace gs::sim
