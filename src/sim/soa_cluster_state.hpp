// gs:hot-path — structure-of-arrays per-server state for the epoch kernel.
//
// SoaClusterState packs everything GreenCluster::step_hetero touches per
// server into contiguous parallel arrays: power draws (claim, renewable
// share, sustainable battery power, chosen demand), the chosen setting,
// delivered goodput, a queue-depth proxy, shortfall flags, and — through
// the embedded BatteryBank — the per-battery charge / Peukert state. The
// epoch kernel runs phase loops over these arrays (allocation, battery
// headroom, controller decisions, settlement, accumulation) instead of
// walking one heap-allocated Server/Battery object graph at a time, so
// the compiler can vectorize across the servers of a rack.
//
// Lifetime rules: the arrays are sized once at cluster construction and
// never resized; every epoch rewrites them in place, so steady-state
// epochs perform no heap allocation. Only `prev_deficit` and the battery
// bank carry state across epochs (both are checkpointed); everything else
// is scratch that the next epoch fully overwrites.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "power/battery_bank.hpp"
#include "server/setting.hpp"

namespace gs::sim {

struct SoaClusterState {
  SoaClusterState(power::BatteryConfig battery_cfg, std::size_t n)
      : lambda(n, 0.0),
        want_w(n, 0.0),
        share_w(n, 0.0),
        batt_w(n, 0.0),
        demand_w(n, 0.0),
        goodput(n, 0.0),
        queue_depth(n, 0.0),
        setting(n),
        crashed(n, 0),
        shortfall(n, 0),
        prev_deficit(n, 0),
        batteries(battery_cfg, n) {}

  [[nodiscard]] std::size_t size() const { return lambda.size(); }

  // --- Epoch scratch (rewritten every step, index = server) ---------------
  std::vector<double> lambda;    ///< Per-server arrival rate.
  std::vector<double> want_w;    ///< Allocation claim (max-sprint demand).
  std::vector<double> share_w;   ///< Renewable share granted by the policy.
  std::vector<double> batt_w;    ///< Sustainable battery power this epoch.
  std::vector<double> demand_w;  ///< Chosen setting's profiled demand.
  std::vector<double> goodput;   ///< Delivered goodput.
  /// Offered load the server could not serve within SLA this epoch
  /// (requests/s) — the analytic path's queue-depth proxy.
  std::vector<double> queue_depth;
  std::vector<server::ServerSetting> setting;  ///< Chosen PMK setting.
  std::vector<std::uint8_t> crashed;    ///< Injected outage this epoch.
  std::vector<std::uint8_t> shortfall;  ///< Settlement reported a deficit.

  // --- Cross-epoch state (checkpointed) ------------------------------------
  /// Per-server shortfall flags from the previous faulted epoch (feeds the
  /// degraded-mode hysteresis; untouched on fault-free steps).
  std::vector<std::uint8_t> prev_deficit;
  /// Per-battery charge / Peukert state, structure-of-arrays.
  power::BatteryBank batteries;
};

}  // namespace gs::sim
