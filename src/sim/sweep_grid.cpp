#include "sim/sweep_grid.hpp"

#include "common/assert.hpp"
#include "faults/correlation.hpp"
#include "faults/fault_spec.hpp"

namespace gs::sim {

namespace {

Scenario perf_cell(workload::AppDescriptor app, core::StrategyKind k,
                   trace::Availability a, double minutes) {
  Scenario sc;
  sc.app = std::move(app);
  sc.green = re_sbatt();
  sc.strategy = k;
  sc.availability = a;
  sc.burst_duration = Seconds(minutes * 60.0);
  sc.burst_intensity = 12;
  return sc;
}

}  // namespace

std::vector<Scenario> perf_grid(bool smoke) {
  std::vector<workload::AppDescriptor> apps = {workload::specjbb()};
  std::vector<trace::Availability> avails = {trace::Availability::Min,
                                             trace::Availability::Med};
  std::vector<double> durations = {10.0};
  std::vector<std::uint64_t> seeds = {1ull};
  if (!smoke) {
    apps = {workload::specjbb(), workload::websearch(), workload::memcached()};
    avails.push_back(trace::Availability::Max);
    durations.push_back(30.0);
    seeds.push_back(2ull);
  }
  std::vector<Scenario> cells;
  for (const auto& app : apps) {
    for (auto a : avails) {
      for (auto k : core::sprinting_strategies()) {
        for (double minutes : durations) {
          for (std::uint64_t seed : seeds) {
            auto sc = perf_cell(app, k, a, minutes);
            sc.seed = seed;
            cells.push_back(sc);
          }
        }
      }
    }
  }
  return cells;
}

void add_storms(std::vector<Scenario>& cells) {
  const auto corr =
      faults::CorrelationSpec::parse("storm=0.8,cascade=0.5,regime_on=0.15");
  std::uint64_t i = 0;
  for (auto& sc : cells) {
    sc.faults = faults::FaultSpec::uniform(0.3, sc.seed + 31ull * i++);
    sc.fault_correlation = corr;
    sc.health_aware = true;
  }
}

std::vector<Scenario> replicate_grid(const std::vector<Scenario>& base,
                                     std::size_t n) {
  GS_REQUIRE(!base.empty(), "replicate_grid needs a non-empty base grid");
  std::vector<Scenario> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto sc = base[i % base.size()];
    sc.seed += std::uint64_t(i / base.size()) * 1000ull;
    out.push_back(sc);
  }
  return out;
}

}  // namespace gs::sim
