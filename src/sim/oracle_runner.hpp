// Runs the offline-optimal oracle (core/oracle.hpp) on the exact substrate
// a Scenario would see — same solar trace, window, array and battery — so
// its result is directly comparable to run_burst() of any online strategy.
#pragma once

#include "core/oracle.hpp"
#include "sim/scenario.hpp"

namespace gs::sim {

struct OracleResult {
  core::OraclePlan plan;
  double normal_goodput = 0.0;
  double normalized_perf = 0.0;  ///< mean goodput / Normal-mode goodput.
};

/// Oracle upper bound for the scenario (the strategy field is ignored).
[[nodiscard]] OracleResult run_oracle(const Scenario& scenario);

}  // namespace gs::sim
