// gs:durable-io
#include "sim/export.hpp"

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <system_error>

#include "common/assert.hpp"
#include "common/io.hpp"
#include "common/table.hpp"
#include "sim/tsdb_sink.hpp"
#include "tsdb/engine.hpp"
#include "tsdb/error.hpp"

namespace gs::sim {

namespace {

// Temp-file + rename, mirroring ckpt::write_snapshot_file: a crash (or
// disk-full failure) mid-export never leaves a truncated CSV at the
// destination path.
/// Failpoint site on every CSV export commit.
constexpr const char* kFailpointCsvWrite = "sim.export.write";

void write_csv_atomic(const std::string& path,
                      const std::function<void(std::ostream&)>& emit) {
  std::ostringstream body;
  emit(body);
  GS_REQUIRE(body.good(), "failed rendering export for: " + path);
  io::WriteOptions opts;
  // Bulk analysis exports are regenerable from the engine; they keep the
  // atomic rename but skip the fsync discipline checkpoints pay for.
  opts.durability = io::Durability::None;
  opts.site = kFailpointCsvWrite;
  io::atomic_write_file(std::filesystem::path(path),
                        std::filesystem::path(path + ".tmp"),
                        std::move(body).str(), opts);
}

const std::array<const char*, 16> kEpochCsvHeader = {
    "t_s",    "cores",        "freq_ghz", "power_case", "demand_w",
    "re_w",   "batt_w",       "grid_w",   "soc",        "offered_load",
    "goodput", "latency_s",   "downgraded", "faulted",  "crashed",
    "degraded"};

std::vector<std::string> header_row() {
  return std::vector<std::string>(kEpochCsvHeader.begin(),
                                  kEpochCsvHeader.end());
}

}  // namespace

void export_epochs_csv(std::ostream& os, const BurstResult& result) {
  CsvWriter csv(os);
  csv.row(header_row());
  for (const auto& e : result.epochs) {
    csv.row({TextTable::exact((e.time - result.window_start).value()),
             std::to_string(e.setting.cores),
             TextTable::exact(e.setting.frequency().value()),
             power::to_string(e.power_case),
             TextTable::exact(e.demand.value()),
             TextTable::exact(e.re_used.value()),
             TextTable::exact(e.batt_used.value()),
             TextTable::exact(e.grid_used.value()),
             TextTable::exact(e.battery_soc),
             TextTable::exact(e.offered_load),
             TextTable::exact(e.goodput),
             TextTable::exact(e.latency.value()),
             e.downgraded ? "1" : "0",
             e.faulted ? "1" : "0",
             e.crashed ? "1" : "0",
             e.degraded ? "1" : "0"});
  }
}

void export_epochs_csv_file(const std::string& path,
                            const BurstResult& result) {
  write_csv_atomic(path,
                   [&](std::ostream& os) { export_epochs_csv(os, result); });
}

void export_epochs_csv(std::ostream& os, tsdb::Engine& engine,
                       std::uint32_t rack, std::uint32_t server,
                       Seconds window_start) {
  // Pull each metric column into its own time-aligned vector. The sink
  // appends every column at the same epoch timestamp, so the columns must
  // agree sample-for-sample; anything else means the engine holds partial
  // or foreign telemetry for this coordinate.
  std::array<std::vector<tsdb::Sample>, kNumTsdbEpochMetrics> cols;
  for (std::size_t m = 0; m < kNumTsdbEpochMetrics; ++m) {
    tsdb::Cursor cur =
        engine.query(kTsdbEpochMetrics[m], rack, tsdb::kMinTimestamp,
                     tsdb::kMaxTimestamp, server);
    tsdb::CursorRow row;
    while (cur.next(row)) cols[m].push_back(row.sample);
    if (cols[m].size() != cols[0].size()) {
      throw tsdb::TsdbError(
          std::string("epoch telemetry misaligned: metric '") +
          kTsdbEpochMetrics[m] + "' has " + std::to_string(cols[m].size()) +
          " samples, expected " + std::to_string(cols[0].size()));
    }
  }
  CsvWriter csv(os);
  csv.row(header_row());
  for (std::size_t i = 0; i < cols[0].size(); ++i) {
    const tsdb::Timestamp t = cols[0][i].time;
    for (std::size_t m = 1; m < kNumTsdbEpochMetrics; ++m) {
      if (cols[m][i].time != t) {
        throw tsdb::TsdbError(
            std::string("epoch telemetry misaligned: metric '") +
            kTsdbEpochMetrics[m] + "' timestamp diverges at row " +
            std::to_string(i));
      }
    }
    // Columns 0..14 of cols are the post-t_s CSV columns in order (see
    // kTsdbEpochMetrics). cores and power_case were stored as small exact
    // integers; the flags as 0.0/1.0; everything else bit-exact, so each
    // formatter below reproduces the legacy column byte-for-byte.
    const auto v = [&](std::size_t m) { return cols[m][i].value; };
    csv.row({TextTable::exact(tsdb::to_seconds(t) - window_start.value()),
             std::to_string(int(v(0))),
             TextTable::exact(v(1)),
             power::to_string(power::PowerCase(int(v(2)))),
             TextTable::exact(v(3)),
             TextTable::exact(v(4)),
             TextTable::exact(v(5)),
             TextTable::exact(v(6)),
             TextTable::exact(v(7)),
             TextTable::exact(v(8)),
             TextTable::exact(v(9)),
             TextTable::exact(v(10)),
             v(11) != 0.0 ? "1" : "0",
             v(12) != 0.0 ? "1" : "0",
             v(13) != 0.0 ? "1" : "0",
             v(14) != 0.0 ? "1" : "0"});
  }
}

void export_summary_header(std::ostream& os) {
  CsvWriter csv(os);
  csv.row({"app", "config", "strategy", "availability", "minutes",
           "intensity", "normalized_perf", "mean_goodput", "re_wh",
           "batt_wh", "grid_wh", "battery_dod", "faults",
           "degraded_epochs", "crash_epochs", "fault_downtime_s"});
}

void export_summary_row(std::ostream& os, const Scenario& scenario,
                        const BurstResult& result) {
  CsvWriter csv(os);
  csv.row({scenario.app.name, scenario.green.name,
           core::to_string(scenario.strategy),
           trace::to_string(scenario.availability),
           TextTable::exact(scenario.burst_duration.value() / 60.0),
           std::to_string(scenario.burst_intensity),
           TextTable::exact(result.normalized_perf),
           TextTable::exact(result.mean_goodput),
           TextTable::exact(to_watt_hours(result.re_energy_used).value()),
           TextTable::exact(to_watt_hours(result.batt_energy_used).value()),
           TextTable::exact(to_watt_hours(result.grid_energy_used).value()),
           TextTable::exact(result.final_battery_dod),
           scenario.faults.any() ? scenario.faults.to_string() : "none",
           std::to_string(result.degraded_epochs),
           std::to_string(result.crash_epochs),
           TextTable::exact(result.fault_downtime.value())});
}

AvailabilityReport availability_report(const BurstResult& result,
                                       Seconds epoch) {
  GS_REQUIRE(epoch.value() > 0.0, "epoch must be positive");
  AvailabilityReport rep;
  rep.observed = epoch * double(result.epochs.size());
  for (const auto& e : result.epochs) {
    if (e.faulted || e.crashed) rep.impaired += epoch;
  }
  for (const faults::FaultClass cls : faults::all_fault_classes()) {
    const auto idx = std::size_t(cls);
    const std::size_t incidents = result.fault_incidents[idx];
    const Seconds downtime = result.fault_class_downtime[idx];
    rep.incidents += incidents;
    rep.downtime += downtime;
    if (incidents == 0) continue;
    AvailabilityRow row;
    row.cls = cls;
    row.incidents = incidents;
    row.downtime = downtime;
    row.mttr = Seconds(downtime.value() / double(incidents));
    row.mtbf = Seconds(
        std::max(0.0, (rep.observed - downtime).value()) / double(incidents));
    rep.per_class.push_back(row);
  }
  if (rep.observed.value() > 0.0) {
    rep.availability = std::clamp(
        1.0 - rep.impaired.value() / rep.observed.value(), 0.0, 1.0);
  }
  if (rep.incidents > 0) {
    rep.mttr = Seconds(rep.downtime.value() / double(rep.incidents));
    rep.mtbf = Seconds(std::max(0.0, (rep.observed - rep.downtime).value()) /
                       double(rep.incidents));
  }
  return rep;
}

void export_availability_csv(std::ostream& os, const AvailabilityReport& rep) {
  CsvWriter csv(os);
  csv.row({"fault_class", "incidents", "downtime_s", "mttr_s", "mtbf_s",
           "availability"});
  for (const AvailabilityRow& row : rep.per_class) {
    const double avail =
        rep.observed.value() > 0.0
            ? std::clamp(1.0 - row.downtime.value() / rep.observed.value(),
                         0.0, 1.0)
            : 1.0;
    csv.row({faults::to_string(row.cls), std::to_string(row.incidents),
             TextTable::exact(row.downtime.value()),
             TextTable::exact(row.mttr.value()),
             TextTable::exact(row.mtbf.value()),
             TextTable::exact(avail)});
  }
  // A zero-incident run has no repairs to average: MTTR/MTBF are
  // undefined, not 0.0 — report "no-failures" so downstream tooling does
  // not mistake a perfect run for an instantly-failing one.
  const bool failure_free = rep.incidents == 0;
  csv.row({"total", std::to_string(rep.incidents),
           TextTable::exact(rep.downtime.value()),
           failure_free ? "no-failures"
                        : TextTable::exact(rep.mttr.value()),
           failure_free ? "no-failures"
                        : TextTable::exact(rep.mtbf.value()),
           TextTable::exact(rep.availability)});
}

void export_availability_csv_file(const std::string& path,
                                  const AvailabilityReport& rep) {
  write_csv_atomic(
      path, [&](std::ostream& os) { export_availability_csv(os, rep); });
}

}  // namespace gs::sim
