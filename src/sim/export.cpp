#include "sim/export.hpp"

#include <algorithm>
#include <fstream>

#include "common/assert.hpp"
#include "common/table.hpp"

namespace gs::sim {

void export_epochs_csv(std::ostream& os, const BurstResult& result) {
  CsvWriter csv(os);
  csv.row({"t_s", "cores", "freq_ghz", "power_case", "demand_w", "re_w",
           "batt_w", "grid_w", "soc", "offered_load", "goodput",
           "latency_s", "downgraded", "faulted", "crashed", "degraded"});
  for (const auto& e : result.epochs) {
    csv.row({TextTable::num((e.time - result.window_start).value(), 0),
             std::to_string(e.setting.cores),
             TextTable::num(e.setting.frequency().value(), 1),
             power::to_string(e.power_case),
             TextTable::num(e.demand.value(), 2),
             TextTable::num(e.re_used.value(), 2),
             TextTable::num(e.batt_used.value(), 2),
             TextTable::num(e.grid_used.value(), 2),
             TextTable::num(e.battery_soc, 4),
             TextTable::num(e.offered_load, 2),
             TextTable::num(e.goodput, 2),
             TextTable::num(e.latency.value(), 5),
             e.downgraded ? "1" : "0",
             e.faulted ? "1" : "0",
             e.crashed ? "1" : "0",
             e.degraded ? "1" : "0"});
  }
}

void export_epochs_csv_file(const std::string& path,
                            const BurstResult& result) {
  std::ofstream out(path);
  GS_REQUIRE(out.good(), "cannot open export file: " + path);
  export_epochs_csv(out, result);
}

void export_summary_header(std::ostream& os) {
  CsvWriter csv(os);
  csv.row({"app", "config", "strategy", "availability", "minutes",
           "intensity", "normalized_perf", "mean_goodput", "re_wh",
           "batt_wh", "grid_wh", "battery_dod", "faults",
           "degraded_epochs", "crash_epochs", "fault_downtime_s"});
}

void export_summary_row(std::ostream& os, const Scenario& scenario,
                        const BurstResult& result) {
  CsvWriter csv(os);
  csv.row({scenario.app.name, scenario.green.name,
           core::to_string(scenario.strategy),
           trace::to_string(scenario.availability),
           TextTable::num(scenario.burst_duration.value() / 60.0, 0),
           std::to_string(scenario.burst_intensity),
           TextTable::num(result.normalized_perf, 4),
           TextTable::num(result.mean_goodput, 2),
           TextTable::num(to_watt_hours(result.re_energy_used).value(), 1),
           TextTable::num(to_watt_hours(result.batt_energy_used).value(), 1),
           TextTable::num(to_watt_hours(result.grid_energy_used).value(), 1),
           TextTable::num(result.final_battery_dod, 4),
           scenario.faults.any() ? scenario.faults.to_string() : "none",
           std::to_string(result.degraded_epochs),
           std::to_string(result.crash_epochs),
           TextTable::num(result.fault_downtime.value(), 0)});
}

AvailabilityReport availability_report(const BurstResult& result,
                                       Seconds epoch) {
  GS_REQUIRE(epoch.value() > 0.0, "epoch must be positive");
  AvailabilityReport rep;
  rep.observed = epoch * double(result.epochs.size());
  for (const auto& e : result.epochs) {
    if (e.faulted || e.crashed) rep.impaired += epoch;
  }
  for (const faults::FaultClass cls : faults::all_fault_classes()) {
    const auto idx = std::size_t(cls);
    const std::size_t incidents = result.fault_incidents[idx];
    const Seconds downtime = result.fault_class_downtime[idx];
    rep.incidents += incidents;
    rep.downtime += downtime;
    if (incidents == 0) continue;
    AvailabilityRow row;
    row.cls = cls;
    row.incidents = incidents;
    row.downtime = downtime;
    row.mttr = Seconds(downtime.value() / double(incidents));
    row.mtbf = Seconds(
        std::max(0.0, (rep.observed - downtime).value()) / double(incidents));
    rep.per_class.push_back(row);
  }
  if (rep.observed.value() > 0.0) {
    rep.availability = std::clamp(
        1.0 - rep.impaired.value() / rep.observed.value(), 0.0, 1.0);
  }
  if (rep.incidents > 0) {
    rep.mttr = Seconds(rep.downtime.value() / double(rep.incidents));
    rep.mtbf = Seconds(std::max(0.0, (rep.observed - rep.downtime).value()) /
                       double(rep.incidents));
  }
  return rep;
}

void export_availability_csv(std::ostream& os, const AvailabilityReport& rep) {
  CsvWriter csv(os);
  csv.row({"fault_class", "incidents", "downtime_s", "mttr_s", "mtbf_s",
           "availability"});
  for (const AvailabilityRow& row : rep.per_class) {
    const double avail =
        rep.observed.value() > 0.0
            ? std::clamp(1.0 - row.downtime.value() / rep.observed.value(),
                         0.0, 1.0)
            : 1.0;
    csv.row({faults::to_string(row.cls), std::to_string(row.incidents),
             TextTable::num(row.downtime.value(), 0),
             TextTable::num(row.mttr.value(), 1),
             TextTable::num(row.mtbf.value(), 1),
             TextTable::num(avail, 6)});
  }
  // A zero-incident run has no repairs to average: MTTR/MTBF are
  // undefined, not 0.0 — report "no-failures" so downstream tooling does
  // not mistake a perfect run for an instantly-failing one.
  const bool failure_free = rep.incidents == 0;
  csv.row({"total", std::to_string(rep.incidents),
           TextTable::num(rep.downtime.value(), 0),
           failure_free ? "no-failures" : TextTable::num(rep.mttr.value(), 1),
           failure_free ? "no-failures" : TextTable::num(rep.mtbf.value(), 1),
           TextTable::num(rep.availability, 6)});
}

void export_availability_csv_file(const std::string& path,
                                  const AvailabilityReport& rep) {
  std::ofstream out(path);
  GS_REQUIRE(out.good(), "cannot open export file: " + path);
  export_availability_csv(out, rep);
}

}  // namespace gs::sim
