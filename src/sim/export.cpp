#include "sim/export.hpp"

#include <fstream>

#include "common/assert.hpp"
#include "common/table.hpp"

namespace gs::sim {

void export_epochs_csv(std::ostream& os, const BurstResult& result) {
  CsvWriter csv(os);
  csv.row({"t_s", "cores", "freq_ghz", "power_case", "demand_w", "re_w",
           "batt_w", "grid_w", "soc", "offered_load", "goodput",
           "latency_s", "downgraded", "faulted", "crashed", "degraded"});
  for (const auto& e : result.epochs) {
    csv.row({TextTable::num((e.time - result.window_start).value(), 0),
             std::to_string(e.setting.cores),
             TextTable::num(e.setting.frequency().value(), 1),
             power::to_string(e.power_case),
             TextTable::num(e.demand.value(), 2),
             TextTable::num(e.re_used.value(), 2),
             TextTable::num(e.batt_used.value(), 2),
             TextTable::num(e.grid_used.value(), 2),
             TextTable::num(e.battery_soc, 4),
             TextTable::num(e.offered_load, 2),
             TextTable::num(e.goodput, 2),
             TextTable::num(e.latency.value(), 5),
             e.downgraded ? "1" : "0",
             e.faulted ? "1" : "0",
             e.crashed ? "1" : "0",
             e.degraded ? "1" : "0"});
  }
}

void export_epochs_csv_file(const std::string& path,
                            const BurstResult& result) {
  std::ofstream out(path);
  GS_REQUIRE(out.good(), "cannot open export file: " + path);
  export_epochs_csv(out, result);
}

void export_summary_header(std::ostream& os) {
  CsvWriter csv(os);
  csv.row({"app", "config", "strategy", "availability", "minutes",
           "intensity", "normalized_perf", "mean_goodput", "re_wh",
           "batt_wh", "grid_wh", "battery_dod", "faults",
           "degraded_epochs", "crash_epochs", "fault_downtime_s"});
}

void export_summary_row(std::ostream& os, const Scenario& scenario,
                        const BurstResult& result) {
  CsvWriter csv(os);
  csv.row({scenario.app.name, scenario.green.name,
           core::to_string(scenario.strategy),
           trace::to_string(scenario.availability),
           TextTable::num(scenario.burst_duration.value() / 60.0, 0),
           std::to_string(scenario.burst_intensity),
           TextTable::num(result.normalized_perf, 4),
           TextTable::num(result.mean_goodput, 2),
           TextTable::num(to_watt_hours(result.re_energy_used).value(), 1),
           TextTable::num(to_watt_hours(result.batt_energy_used).value(), 1),
           TextTable::num(to_watt_hours(result.grid_energy_used).value(), 1),
           TextTable::num(result.final_battery_dod, 4),
           scenario.faults.any() ? scenario.faults.to_string() : "none",
           std::to_string(result.degraded_epochs),
           std::to_string(result.crash_epochs),
           TextTable::num(result.fault_downtime.value(), 0)});
}

}  // namespace gs::sim
