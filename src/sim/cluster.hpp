// Cluster-level helpers: the prototype is 10 servers behind a 1000 W grid
// budget (Normal mode for all). During a burst the grid conservatively
// carries the non-green servers at the best uniform sub-optimal sprint that
// fits the budget (paper Section IV-A gives 12 cores @ 1.5 GHz or 7 cores
// @ 2.0 GHz as examples for 7 servers), while the green group sprints from
// the green bus.
#pragma once

#include "server/power_model.hpp"
#include "server/setting.hpp"
#include "workload/perf_model.hpp"

namespace gs::sim {

struct ClusterConfig {
  int total_servers = 10;
  int green_servers = 3;
  Watts grid_budget{1000.0};
  [[nodiscard]] int grid_servers() const {
    return total_servers - green_servers;
  }
};

/// Best-goodput uniform setting for the grid-powered servers under a
/// per-server power cap at the given offered load.
[[nodiscard]] server::ServerSetting best_setting_under_cap(
    const workload::PerfModel& perf, const server::ServerPowerModel& power,
    double lambda, Watts per_server_cap);

/// Per-server grid power available to the non-green servers during a burst
/// (the full budget spread over them; green servers are off-grid).
[[nodiscard]] Watts grid_share_per_server(const ClusterConfig& cluster);

/// Aggregate power of the whole cluster at a burst instant, for the Fig. 1
/// and Fig. 5 style series: green servers at `green_setting`, grid servers
/// at their best budget-constrained setting.
[[nodiscard]] Watts cluster_power(const workload::PerfModel& perf,
                                  const server::ServerPowerModel& power,
                                  const ClusterConfig& cluster,
                                  const server::ServerSetting& green_setting,
                                  double lambda);

}  // namespace gs::sim
