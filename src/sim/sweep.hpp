// Parallel parameter sweeps over burst scenarios. Each cell runs on the
// thread pool with results written to a preallocated slot, so the sweep is
// deterministic regardless of thread schedule (every scenario also derives
// its own RNG streams from its seed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "sim/burst_runner.hpp"
#include "tsdb/fwd.hpp"

namespace gs::sim {

/// Run every scenario; results align index-for-index with the input.
/// Cells are distributed work-stealing style (chunk = 1: cells are coarse
/// and uneven), and cells sharing a substrate reuse the process-wide trace
/// / window / profile caches, so a warm sweep skips per-cell setup
/// entirely. Results are bit-identical across thread counts and cache
/// states: every cell derives its own Rng streams from its seed and the
/// cached substrates are deterministic in their keys.
/// `telemetry` (optional) streams every cell's epoch telemetry into one
/// shared tsdb engine, cell i under rack coordinate i (the engine is
/// internally synchronized, so concurrent cells interleave safely). The
/// recorded series do not affect results or determinism.
[[nodiscard]] std::vector<BurstResult> run_sweep(
    const std::vector<Scenario>& scenarios, std::size_t threads = 0,
    tsdb::Engine* telemetry = nullptr);

/// Checkpointing for long sweeps (src/ckpt). The sweep directory holds a
/// `sweep.manifest` describing the campaign (cell count + per-cell scenario
/// fingerprints) and one `cell-NNNNNN.gsck` snapshot per completed cell,
/// each written atomically. A killed sweep restarted with `resume = true`
/// loads every intact cell snapshot and recomputes only the missing or
/// corrupt ones; because the cell encoding is bit-exact, the resumed
/// sweep's sweep_fingerprint() matches the uninterrupted run exactly (the
/// CI resume-integrity lane enforces this).
struct SweepCheckpointOptions {
  std::string dir;    ///< Checkpoint directory (created if missing).
  bool resume = false;  ///< Load completed cells before running the rest.
  /// Persist every Nth cell (by index). 1 = persist all completed cells;
  /// larger values trade resume coverage for less checkpoint IO (skipped
  /// cells are simply recomputed on resume).
  std::size_t every = 1;
};

/// Telemetry from a checkpointed sweep (how much work the resume skipped).
struct SweepCheckpointStats {
  std::size_t cells_total = 0;
  std::size_t cells_resumed = 0;
  std::size_t cells_run = 0;
};

/// run_sweep with kill-and-resume checkpointing. Results are bit-identical
/// to run_sweep over the same scenarios, whatever mix of resumed and
/// freshly-computed cells produced them. Throws ckpt::SnapshotError if
/// `resume` finds a manifest from a *different* campaign (changed cell
/// count or scenario fingerprints) — delete the directory to start over.
[[nodiscard]] std::vector<BurstResult> run_sweep_checkpointed(
    const std::vector<Scenario>& scenarios, const SweepCheckpointOptions& opts,
    std::size_t threads = 0, SweepCheckpointStats* stats = nullptr);

/// Order-sensitive 64-bit digest of every numeric field of every result
/// (per-epoch records included), hashed by bit pattern. Two sweeps are
/// bit-identical iff their fingerprints match; used by the determinism
/// tests and the perf bench's cross-thread-count check.
[[nodiscard]] std::uint64_t sweep_fingerprint(
    const std::vector<BurstResult>& results);

/// Normalized performance per scenario (the paper's y-axis).
[[nodiscard]] std::vector<double> sweep_normalized_perf(
    const std::vector<Scenario>& scenarios, std::size_t threads = 0);

/// Run the scenario under `replicas` different seeds (different synthetic
/// weather draws) and return the statistics of the normalized performance.
/// Seeds are base_seed, base_seed+1, ... so results are reproducible.
[[nodiscard]] RunningStats replicate_normalized_perf(
    Scenario scenario, int replicas, std::size_t threads = 0);

}  // namespace gs::sim
