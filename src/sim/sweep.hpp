// Parallel parameter sweeps over burst scenarios. Each cell runs on the
// thread pool with results written to a preallocated slot, so the sweep is
// deterministic regardless of thread schedule (every scenario also derives
// its own RNG streams from its seed).
#pragma once

#include <vector>

#include "common/stats.hpp"
#include "sim/burst_runner.hpp"

namespace gs::sim {

/// Run every scenario; results align index-for-index with the input.
[[nodiscard]] std::vector<BurstResult> run_sweep(
    const std::vector<Scenario>& scenarios, std::size_t threads = 0);

/// Normalized performance per scenario (the paper's y-axis).
[[nodiscard]] std::vector<double> sweep_normalized_perf(
    const std::vector<Scenario>& scenarios, std::size_t threads = 0);

/// Run the scenario under `replicas` different seeds (different synthetic
/// weather draws) and return the statistics of the normalized performance.
/// Seeds are base_seed, base_seed+1, ... so results are reproducible.
[[nodiscard]] RunningStats replicate_normalized_perf(
    Scenario scenario, int replicas, std::size_t threads = 0);

}  // namespace gs::sim
