// Parallel parameter sweeps over burst scenarios. Each cell runs on the
// thread pool with results written to a preallocated slot, so the sweep is
// deterministic regardless of thread schedule (every scenario also derives
// its own RNG streams from its seed).
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "sim/burst_runner.hpp"

namespace gs::sim {

/// Run every scenario; results align index-for-index with the input.
/// Cells are distributed work-stealing style (chunk = 1: cells are coarse
/// and uneven), and cells sharing a substrate reuse the process-wide trace
/// / window / profile caches, so a warm sweep skips per-cell setup
/// entirely. Results are bit-identical across thread counts and cache
/// states: every cell derives its own Rng streams from its seed and the
/// cached substrates are deterministic in their keys.
[[nodiscard]] std::vector<BurstResult> run_sweep(
    const std::vector<Scenario>& scenarios, std::size_t threads = 0);

/// Order-sensitive 64-bit digest of every numeric field of every result
/// (per-epoch records included), hashed by bit pattern. Two sweeps are
/// bit-identical iff their fingerprints match; used by the determinism
/// tests and the perf bench's cross-thread-count check.
[[nodiscard]] std::uint64_t sweep_fingerprint(
    const std::vector<BurstResult>& results);

/// Normalized performance per scenario (the paper's y-axis).
[[nodiscard]] std::vector<double> sweep_normalized_perf(
    const std::vector<Scenario>& scenarios, std::size_t threads = 0);

/// Run the scenario under `replicas` different seeds (different synthetic
/// weather draws) and return the statistics of the normalized performance.
/// Seeds are base_seed, base_seed+1, ... so results are reproducible.
[[nodiscard]] RunningStats replicate_normalized_perf(
    Scenario scenario, int replicas, std::size_t threads = 0);

}  // namespace gs::sim
