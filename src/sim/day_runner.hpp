// Multi-day simulation: replays a diurnal workload (Fig. 1) with injected
// bursts against a weekly solar trace on the per-server green cluster.
// Outside bursts the servers run Normal mode on the grid while the PSS
// recharges the batteries; during bursts the cluster sprints from the
// green bus. The run accounts sprint-hours, energy by source, battery
// wear, and the goodput uplift — the inputs of the paper's TCO analysis
// (Fig. 11), measured instead of assumed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "ckpt/fwd.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_spec.hpp"
#include "power/solar_array.hpp"
#include "sim/green_cluster.hpp"
#include "trace/solar.hpp"
#include "trace/workload_trace.hpp"
#include "tsdb/fwd.hpp"

namespace gs::sim {

struct DayRunConfig {
  int days = 1;
  GreenClusterConfig cluster;
  int panels = 3;
  /// Bursts injected per day (start times are within-day offsets).
  std::vector<trace::BurstPattern> daily_bursts;
  trace::DiurnalConfig diurnal;
  std::uint64_t solar_seed = 42;
  /// Background load fraction of Normal capacity between bursts.
  double background_load = 0.3;
  /// Fault-injection spec (src/faults). All-zero default = no injection
  /// and a bit-identical fault-free run. Fault times are run-relative
  /// (t = 0 at the first simulated epoch).
  faults::FaultSpec faults;
};

struct DayRunResult {
  Seconds simulated{0.0};
  Seconds sprint_time{0.0};          ///< Aggregate server-sprint time.
  double sprint_hours_per_server = 0.0;
  double mean_burst_goodput = 0.0;   ///< Per server, during bursts.
  double normal_goodput = 0.0;       ///< Baseline during the same bursts.
  double burst_speedup = 0.0;        ///< Ratio of the two.
  Joules re_energy{0.0};
  Joules batt_energy{0.0};
  Joules grid_energy{0.0};
  double battery_cycles = 0.0;       ///< Summed over the green servers.
  int bursts_served = 0;
  // Fault telemetry (zero on fault-free runs).
  std::size_t crash_epochs = 0;      ///< Server-epochs lost to crashes.
  std::size_t degraded_epochs = 0;   ///< Server-epochs clamped to Normal.
};

/// Returns the default burst schedule used by the examples: morning,
/// midday and evening bursts as in the paper's Fig. 1 narrative.
[[nodiscard]] std::vector<trace::BurstPattern> default_daily_bursts();

/// Digest over every DayRunConfig field that influences the run; day
/// snapshots embed it so a checkpoint cannot resume a different campaign.
[[nodiscard]] std::uint64_t day_run_fingerprint(const DayRunConfig& cfg);

/// Digest over every DayRunResult field, bit-exact on the doubles. Two
/// campaigns ran identically iff their result fingerprints match — the
/// daemon-e2e equivalence check (replayed feed, SIGTERM + resume, vs. one
/// uninterrupted batch run) compares exactly this.
[[nodiscard]] std::uint64_t day_result_fingerprint(const DayRunResult& r);

/// One epoch's exogenous inputs, exactly as DaySim::step() synthesizes
/// them internally: the per-server arrival rate, the solar trace output as
/// a capacity fraction (SolarArray::ac_output input), and the burst flag.
/// The serve daemon feeds these from a socket; feeding the planned values
/// back through step_live() reproduces the batch run bit-identically.
struct LiveEpoch {
  double lambda = 0.0;
  double irradiance = 0.0;
  bool in_burst = false;
};

/// The canonical feed of a campaign: the LiveEpoch the batch runner would
/// synthesize for every epoch, in order (horizon / epoch entries). This is
/// what `gs_feed --gen` serializes for replay against greensprintd.
[[nodiscard]] std::vector<LiveEpoch> day_feed_plan(const DayRunConfig& cfg);

/// Stepwise multi-day simulation behind run_days(): construct, step() one
/// epoch at a time until done(), then finish(). save_state/load_state
/// snapshot the full dynamic state (cluster batteries and controllers,
/// accumulators, clock), so a killed campaign resumes bit-identically on a
/// DaySim constructed from the same config (src/ckpt).
class DaySim {
 public:
  explicit DaySim(const DayRunConfig& cfg);

  [[nodiscard]] Seconds now() const { return t_; }
  [[nodiscard]] Seconds horizon() const { return horizon_; }
  [[nodiscard]] bool done() const { return !(t_ < horizon_); }

  /// Simulate the next epoch (burst or idle). Requires !done().
  /// Equivalent to step_live(planned_epoch(now())).
  void step();

  /// The exogenous inputs step() would synthesize for epoch time `t`
  /// (pure; does not advance the sim).
  [[nodiscard]] LiveEpoch planned_epoch(Seconds t) const;

  /// Simulate the next epoch from externally supplied inputs (the serve
  /// daemon's socket feed). Requires !done(). Feeding back planned_epoch
  /// values reproduces step() bit-identically; any other inputs simulate
  /// the cluster's closed-loop response to that live feed.
  void step_live(const LiveEpoch& in);

  /// Replace the live fault-injection spec from this epoch on (the
  /// daemon's `fault-inject <spec>` command). The schedule is rebuilt
  /// deterministically from the spec's own seed over the full horizon, so
  /// a checkpointed run restores the same remaining fault stream. The
  /// campaign config (and its fingerprint) is not touched. Injecting the
  /// currently active spec is a strict no-op.
  void set_faults(const faults::FaultSpec& spec);
  [[nodiscard]] const faults::FaultSpec& live_faults() const {
    return live_faults_;
  }

  /// Live strategy switch across the green cluster (see
  /// GreenCluster::set_strategy). Returns true when the kind changed.
  bool set_strategy(core::StrategyKind kind) {
    return cluster_.set_strategy(kind);
  }

  [[nodiscard]] const DayRunConfig& config() const { return cfg_; }
  [[nodiscard]] const GreenCluster& cluster() const { return cluster_; }
  [[nodiscard]] Seconds epoch() const { return epoch_; }
  [[nodiscard]] int bursts_served() const { return out_.bursts_served; }

  /// Stream every burst epoch's cluster aggregates into `engine` (which
  /// must outlive this sim) under `rack`. Runtime plumbing, not state:
  /// re-attach after a load_state() restore.
  void attach_tsdb(tsdb::Engine* engine, std::uint32_t rack = 0) {
    tsdb_ = engine;
    tsdb_rack_ = rack;
  }

  /// Aggregate the campaign statistics. Requires done().
  [[nodiscard]] DayRunResult finish();

  // --- Checkpoint/restore (src/ckpt). v2 appends the live overrides the
  // serve daemon can apply mid-run (active strategy kind, live fault
  // spec), so a daemon snapshot restores them before the cluster state.
  static constexpr std::uint32_t kStateVersion = 2;
  void save_state(ckpt::StateWriter& w) const;
  void load_state(ckpt::StateReader& r);

 private:
  DayRunConfig cfg_;
  std::shared_ptr<const trace::SolarTrace> solar_;
  power::SolarArray array_;
  GreenCluster cluster_;
  double lambda_burst_ = 0.0;
  double lambda_background_ = 0.0;
  Seconds epoch_{60.0};
  Seconds horizon_{0.0};
  faults::FaultSpec live_faults_;
  faults::FaultInjector injector_;
  Seconds t_{0.0};
  tsdb::Engine* tsdb_ = nullptr;
  std::uint32_t tsdb_rack_ = 0;
  bool in_burst_prev_ = false;
  double burst_goodput_sum_ = 0.0;
  std::size_t burst_epochs_ = 0;
  DayRunResult out_;
};

[[nodiscard]] DayRunResult run_days(const DayRunConfig& cfg);

/// Extrapolate a run's sprint activity to a year (for Fig. 11): yearly
/// sprint hours per KW of sprint (green) provision.
[[nodiscard]] double yearly_sprint_hours(const DayRunResult& r);

}  // namespace gs::sim
