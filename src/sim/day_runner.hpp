// Multi-day simulation: replays a diurnal workload (Fig. 1) with injected
// bursts against a weekly solar trace on the per-server green cluster.
// Outside bursts the servers run Normal mode on the grid while the PSS
// recharges the batteries; during bursts the cluster sprints from the
// green bus. The run accounts sprint-hours, energy by source, battery
// wear, and the goodput uplift — the inputs of the paper's TCO analysis
// (Fig. 11), measured instead of assumed.
#pragma once

#include <vector>

#include "faults/fault_spec.hpp"
#include "sim/green_cluster.hpp"
#include "trace/solar.hpp"
#include "trace/workload_trace.hpp"

namespace gs::sim {

struct DayRunConfig {
  int days = 1;
  GreenClusterConfig cluster;
  int panels = 3;
  /// Bursts injected per day (start times are within-day offsets).
  std::vector<trace::BurstPattern> daily_bursts;
  trace::DiurnalConfig diurnal;
  std::uint64_t solar_seed = 42;
  /// Background load fraction of Normal capacity between bursts.
  double background_load = 0.3;
  /// Fault-injection spec (src/faults). All-zero default = no injection
  /// and a bit-identical fault-free run. Fault times are run-relative
  /// (t = 0 at the first simulated epoch).
  faults::FaultSpec faults;
};

struct DayRunResult {
  Seconds simulated{0.0};
  Seconds sprint_time{0.0};          ///< Aggregate server-sprint time.
  double sprint_hours_per_server = 0.0;
  double mean_burst_goodput = 0.0;   ///< Per server, during bursts.
  double normal_goodput = 0.0;       ///< Baseline during the same bursts.
  double burst_speedup = 0.0;        ///< Ratio of the two.
  Joules re_energy{0.0};
  Joules batt_energy{0.0};
  Joules grid_energy{0.0};
  double battery_cycles = 0.0;       ///< Summed over the green servers.
  int bursts_served = 0;
  // Fault telemetry (zero on fault-free runs).
  std::size_t crash_epochs = 0;      ///< Server-epochs lost to crashes.
  std::size_t degraded_epochs = 0;   ///< Server-epochs clamped to Normal.
};

/// Returns the default burst schedule used by the examples: morning,
/// midday and evening bursts as in the paper's Fig. 1 narrative.
[[nodiscard]] std::vector<trace::BurstPattern> default_daily_bursts();

[[nodiscard]] DayRunResult run_days(const DayRunConfig& cfg);

/// Extrapolate a run's sprint activity to a year (for Fig. 11): yearly
/// sprint hours per KW of sprint (green) provision.
[[nodiscard]] double yearly_sprint_hours(const DayRunResult& r);

}  // namespace gs::sim
