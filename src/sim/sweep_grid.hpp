// The fixed perf-sweep scenario grid, shared by bench/perf_sweep and
// tools/sweep_worker. Both sides of a multi-process sweep must construct
// the *identical* cell list — the checkpoint manifest keys every cell by
// scenario_fingerprint — so the grid builder lives in the library instead
// of being copied into each binary.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/scenario.hpp"

namespace gs::sim {

/// The perf_sweep grid: 3 apps x 3 availabilities x 4 strategies x
/// 2 durations x 2 seeds = 144 cells (smoke: 1 app x 2 availabilities x
/// 4 strategies x 1 duration x 1 seed = 8 cells), all on the re_sbatt
/// green configuration at saturating intensity.
[[nodiscard]] std::vector<Scenario> perf_grid(bool smoke);

/// Overlay correlated fault storms on every cell: uniform faults whose
/// seed varies per cell, the full correlation spec (fronts + cascades +
/// regime bursts), and health-aware Hybrid recovery. Exercised by the
/// resume-integrity lane so kill-and-resume also crosses storm windows.
void add_storms(std::vector<Scenario>& cells);

/// Cycle the base grid out to exactly n cells, bumping the seed on each
/// pass so every cell is a distinct (substrate-cold) simulation.
[[nodiscard]] std::vector<Scenario> replicate_grid(
    const std::vector<Scenario>& base, std::size_t n);

}  // namespace gs::sim
