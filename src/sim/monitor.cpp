#include "sim/monitor.hpp"

#include "ckpt/common_state.hpp"
#include "common/assert.hpp"

namespace gs::sim {

Monitor::Monitor(std::size_t history) : history_(history) {}

void Monitor::record(const MonitorSample& s) {
  TsdbSink sink;
  {
    MutexLock lock(mu_);
    history_.push(s);
    ++count_;
    goodput_.add(s.goodput);
    latency_.add(s.latency.value());
    demand_.add(s.demand.value());
    re_energy_ += s.re_used * epoch_;
    batt_energy_ += s.batt_used * epoch_;
    grid_energy_ += s.grid_used * epoch_;
    if (s.setting != server::normal_mode()) sprint_time_ += epoch_;
    sink = tsdb_sink_;
  }
  // Forward outside the monitor lock: the engine has its own mutex, and
  // keeping the two disjoint rules out lock-order cycles by construction.
  if (sink) sink.record(s);
}

std::size_t Monitor::epochs() const {
  MutexLock lock(mu_);
  return count_;
}

RingBuffer<MonitorSample> Monitor::history() const {
  MutexLock lock(mu_);
  return history_;
}

MonitorSample Monitor::last() const {
  MutexLock lock(mu_);
  GS_REQUIRE(!history_.empty(), "Monitor has no samples yet");
  return history_.back();
}

RunningStats Monitor::goodput_stats() const {
  MutexLock lock(mu_);
  return goodput_;
}

RunningStats Monitor::latency_stats() const {
  MutexLock lock(mu_);
  return latency_;
}

RunningStats Monitor::demand_stats() const {
  MutexLock lock(mu_);
  return demand_;
}

Joules Monitor::re_energy() const {
  MutexLock lock(mu_);
  return re_energy_;
}

Joules Monitor::batt_energy() const {
  MutexLock lock(mu_);
  return batt_energy_;
}

Joules Monitor::grid_energy() const {
  MutexLock lock(mu_);
  return grid_energy_;
}

Seconds Monitor::sprint_time() const {
  MutexLock lock(mu_);
  return sprint_time_;
}

void Monitor::record_fault(faults::FaultClass cls) {
  MutexLock lock(mu_);
  fault_downtime_[std::size_t(cls)] += epoch_;
}

void Monitor::record_fault_incident(faults::FaultClass cls) {
  MutexLock lock(mu_);
  ++fault_incidents_[std::size_t(cls)];
}

void Monitor::record_degraded_epoch() {
  MutexLock lock(mu_);
  ++degraded_epochs_;
}

void Monitor::record_crash_epoch() {
  MutexLock lock(mu_);
  ++crash_epochs_;
}

void Monitor::record_correlated_burst(faults::FaultClass cls) {
  MutexLock lock(mu_);
  ++correlated_bursts_[std::size_t(cls)];
}

void Monitor::record_feed_stale_epoch() {
  MutexLock lock(mu_);
  ++feed_stale_epochs_;
}

void Monitor::record_health_epoch(int state) {
  GS_REQUIRE(state >= 0 && state < int(kNumHealthStates),
             "health state out of range");
  MutexLock lock(mu_);
  ++health_epochs_[std::size_t(state)];
}

Seconds Monitor::fault_downtime(faults::FaultClass cls) const {
  MutexLock lock(mu_);
  return fault_downtime_[std::size_t(cls)];
}

Seconds Monitor::total_fault_downtime() const {
  MutexLock lock(mu_);
  Seconds total{0.0};
  for (const Seconds& s : fault_downtime_) total += s;
  return total;
}

std::size_t Monitor::fault_incidents(faults::FaultClass cls) const {
  MutexLock lock(mu_);
  return fault_incidents_[std::size_t(cls)];
}

std::size_t Monitor::total_fault_incidents() const {
  MutexLock lock(mu_);
  std::size_t total = 0;
  for (const std::size_t n : fault_incidents_) total += n;
  return total;
}

std::size_t Monitor::degraded_epochs() const {
  MutexLock lock(mu_);
  return degraded_epochs_;
}

std::size_t Monitor::crash_epochs() const {
  MutexLock lock(mu_);
  return crash_epochs_;
}

std::size_t Monitor::correlated_bursts(faults::FaultClass cls) const {
  MutexLock lock(mu_);
  return correlated_bursts_[std::size_t(cls)];
}

std::size_t Monitor::total_correlated_bursts() const {
  MutexLock lock(mu_);
  std::size_t total = 0;
  for (const std::size_t n : correlated_bursts_) total += n;
  return total;
}

std::size_t Monitor::feed_stale_epochs() const {
  MutexLock lock(mu_);
  return feed_stale_epochs_;
}

std::size_t Monitor::health_epochs(int state) const {
  GS_REQUIRE(state >= 0 && state < int(kNumHealthStates),
             "health state out of range");
  MutexLock lock(mu_);
  return health_epochs_[std::size_t(state)];
}

Seconds Monitor::time_in_health(int state) const {
  GS_REQUIRE(state >= 0 && state < int(kNumHealthStates),
             "health state out of range");
  MutexLock lock(mu_);
  return epoch_ * double(health_epochs_[std::size_t(state)]);
}

void Monitor::set_epoch(Seconds epoch) {
  MutexLock lock(mu_);
  epoch_ = epoch;
}

Seconds Monitor::epoch() const {
  MutexLock lock(mu_);
  return epoch_;
}

void Monitor::set_tsdb_sink(TsdbSink sink) {
  MutexLock lock(mu_);
  tsdb_sink_ = sink;
}

namespace {

void save_sample(ckpt::StateWriter& w, const MonitorSample& s) {
  w.f64(s.time.value());
  w.i64(s.setting.cores);
  w.i64(s.setting.freq_idx);
  w.u8(std::uint8_t(s.power_case));
  w.f64(s.offered_load);
  w.f64(s.goodput);
  w.f64(s.latency.value());
  w.f64(s.demand.value());
  w.f64(s.re_used.value());
  w.f64(s.batt_used.value());
  w.f64(s.grid_used.value());
  w.f64(s.battery_soc);
  w.boolean(s.downgraded);
  w.boolean(s.faulted);
  w.boolean(s.crashed);
  w.boolean(s.degraded);
}

void load_sample(ckpt::StateReader& r, MonitorSample& s) {
  s.time = Seconds(r.f64());
  s.setting.cores = int(r.i64());
  s.setting.freq_idx = int(r.i64());
  const std::uint8_t pc = r.u8();
  if (pc > std::uint8_t(power::PowerCase::GridFallback)) {
    throw ckpt::SnapshotError("monitor snapshot holds invalid power case " +
                              std::to_string(int(pc)));
  }
  s.power_case = power::PowerCase(pc);
  s.offered_load = r.f64();
  s.goodput = r.f64();
  s.latency = Seconds(r.f64());
  s.demand = Watts(r.f64());
  s.re_used = Watts(r.f64());
  s.batt_used = Watts(r.f64());
  s.grid_used = Watts(r.f64());
  s.battery_soc = r.f64();
  s.downgraded = r.boolean();
  s.faulted = r.boolean();
  s.crashed = r.boolean();
  s.degraded = r.boolean();
}

}  // namespace

void Monitor::save_state(ckpt::StateWriter& w) const {
  MutexLock lock(mu_);
  w.begin_section("monitor", kStateVersion);
  ckpt::save_ring_buffer(w, history_, save_sample);
  w.u64(count_);
  w.f64(epoch_.value());
  ckpt::save_running_stats(w, goodput_);
  ckpt::save_running_stats(w, latency_);
  ckpt::save_running_stats(w, demand_);
  w.f64(re_energy_.value());
  w.f64(batt_energy_.value());
  w.f64(grid_energy_.value());
  w.f64(sprint_time_.value());
  for (const Seconds& s : fault_downtime_) w.f64(s.value());
  for (const std::size_t n : fault_incidents_) w.u64(n);
  w.u64(degraded_epochs_);
  w.u64(crash_epochs_);
  for (const std::size_t n : correlated_bursts_) w.u64(n);
  for (const std::size_t n : health_epochs_) w.u64(n);
  w.u64(feed_stale_epochs_);
  w.end_section();
}

void Monitor::load_state(ckpt::StateReader& r) {
  MutexLock lock(mu_);
  r.begin_section("monitor", kStateVersion);
  ckpt::load_ring_buffer(r, history_, load_sample);
  count_ = std::size_t(r.u64());
  epoch_ = Seconds(r.f64());
  ckpt::load_running_stats(r, goodput_);
  ckpt::load_running_stats(r, latency_);
  ckpt::load_running_stats(r, demand_);
  re_energy_ = Joules(r.f64());
  batt_energy_ = Joules(r.f64());
  grid_energy_ = Joules(r.f64());
  sprint_time_ = Seconds(r.f64());
  for (Seconds& s : fault_downtime_) s = Seconds(r.f64());
  for (std::size_t& n : fault_incidents_) n = std::size_t(r.u64());
  degraded_epochs_ = std::size_t(r.u64());
  crash_epochs_ = std::size_t(r.u64());
  for (std::size_t& n : correlated_bursts_) n = std::size_t(r.u64());
  for (std::size_t& n : health_epochs_) n = std::size_t(r.u64());
  feed_stale_epochs_ = std::size_t(r.u64());
  r.end_section();
}

}  // namespace gs::sim
