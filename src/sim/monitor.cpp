#include "sim/monitor.hpp"

#include "common/assert.hpp"

namespace gs::sim {

Monitor::Monitor(std::size_t history) : history_(history) {}

void Monitor::record(const MonitorSample& s) {
  history_.push(s);
  ++count_;
  goodput_.add(s.goodput);
  latency_.add(s.latency.value());
  demand_.add(s.demand.value());
  re_energy_ += s.re_used * epoch_;
  batt_energy_ += s.batt_used * epoch_;
  grid_energy_ += s.grid_used * epoch_;
  if (s.setting != server::normal_mode()) sprint_time_ += epoch_;
}

const MonitorSample& Monitor::last() const {
  GS_REQUIRE(!history_.empty(), "Monitor has no samples yet");
  return history_.back();
}

void Monitor::record_fault(faults::FaultClass cls) {
  fault_downtime_[std::size_t(cls)] += epoch_;
}

void Monitor::record_degraded_epoch() { ++degraded_epochs_; }

void Monitor::record_crash_epoch() { ++crash_epochs_; }

Seconds Monitor::fault_downtime(faults::FaultClass cls) const {
  return fault_downtime_[std::size_t(cls)];
}

Seconds Monitor::total_fault_downtime() const {
  Seconds total{0.0};
  for (const Seconds& s : fault_downtime_) total += s;
  return total;
}

}  // namespace gs::sim
