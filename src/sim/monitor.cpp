#include "sim/monitor.hpp"

#include "common/assert.hpp"

namespace gs::sim {

Monitor::Monitor(std::size_t history) : history_(history) {}

void Monitor::record(const MonitorSample& s) {
  MutexLock lock(mu_);
  history_.push(s);
  ++count_;
  goodput_.add(s.goodput);
  latency_.add(s.latency.value());
  demand_.add(s.demand.value());
  re_energy_ += s.re_used * epoch_;
  batt_energy_ += s.batt_used * epoch_;
  grid_energy_ += s.grid_used * epoch_;
  if (s.setting != server::normal_mode()) sprint_time_ += epoch_;
}

std::size_t Monitor::epochs() const {
  MutexLock lock(mu_);
  return count_;
}

RingBuffer<MonitorSample> Monitor::history() const {
  MutexLock lock(mu_);
  return history_;
}

MonitorSample Monitor::last() const {
  MutexLock lock(mu_);
  GS_REQUIRE(!history_.empty(), "Monitor has no samples yet");
  return history_.back();
}

RunningStats Monitor::goodput_stats() const {
  MutexLock lock(mu_);
  return goodput_;
}

RunningStats Monitor::latency_stats() const {
  MutexLock lock(mu_);
  return latency_;
}

RunningStats Monitor::demand_stats() const {
  MutexLock lock(mu_);
  return demand_;
}

Joules Monitor::re_energy() const {
  MutexLock lock(mu_);
  return re_energy_;
}

Joules Monitor::batt_energy() const {
  MutexLock lock(mu_);
  return batt_energy_;
}

Joules Monitor::grid_energy() const {
  MutexLock lock(mu_);
  return grid_energy_;
}

Seconds Monitor::sprint_time() const {
  MutexLock lock(mu_);
  return sprint_time_;
}

void Monitor::record_fault(faults::FaultClass cls) {
  MutexLock lock(mu_);
  fault_downtime_[std::size_t(cls)] += epoch_;
}

void Monitor::record_degraded_epoch() {
  MutexLock lock(mu_);
  ++degraded_epochs_;
}

void Monitor::record_crash_epoch() {
  MutexLock lock(mu_);
  ++crash_epochs_;
}

Seconds Monitor::fault_downtime(faults::FaultClass cls) const {
  MutexLock lock(mu_);
  return fault_downtime_[std::size_t(cls)];
}

Seconds Monitor::total_fault_downtime() const {
  MutexLock lock(mu_);
  Seconds total{0.0};
  for (const Seconds& s : fault_downtime_) total += s;
  return total;
}

std::size_t Monitor::degraded_epochs() const {
  MutexLock lock(mu_);
  return degraded_epochs_;
}

std::size_t Monitor::crash_epochs() const {
  MutexLock lock(mu_);
  return crash_epochs_;
}

void Monitor::set_epoch(Seconds epoch) {
  MutexLock lock(mu_);
  epoch_ = epoch;
}

Seconds Monitor::epoch() const {
  MutexLock lock(mu_);
  return epoch_;
}

}  // namespace gs::sim
