#include "sim/rack_runner.hpp"

#include "common/assert.hpp"
#include "sim/tsdb_sink.hpp"
#include "tsdb/engine.hpp"

namespace gs::sim {

namespace {
GreenClusterConfig green_config(const RackConfig& cfg) {
  GreenClusterConfig g = cfg.green;
  g.servers = cfg.cluster.green_servers;
  return g;
}
}  // namespace

RackRunner::RackRunner(const workload::AppDescriptor& app, RackConfig cfg)
    : cfg_(cfg),
      app_(app),
      perf_(app),
      power_model_(Watts(76.0)),
      green_(app, green_config(cfg)) {
  GS_REQUIRE(cfg_.cluster.grid_servers() > 0,
             "rack needs grid-powered servers");
}

RackEpoch RackRunner::step(Watts re_total, double lambda,
                           const faults::EpochFaults* epoch_faults) {
  RackEpoch out;
  // Grid side: the whole budget carries the non-green servers at the best
  // uniform setting that fits their per-server share. A brownout derates
  // that share the same way it derates the green group's grid backstop.
  Watts share = grid_share_per_server(cfg_.cluster);
  if (epoch_faults != nullptr) {
    share = share * epoch_faults->grid_budget_factor;
    green_.apply_component_faults(*epoch_faults);
  }
  out.grid_setting = best_setting_under_cap(perf_, power_model_, lambda,
                                            share);
  const double per_grid_goodput = perf_.goodput(out.grid_setting, lambda);
  const int n_grid = cfg_.cluster.grid_servers();
  out.grid_goodput = per_grid_goodput * double(n_grid);
  const double u = perf_.utilization(out.grid_setting, lambda);
  out.grid_servers_power =
      power_model_.power(out.grid_setting, u, app_.activity) *
      double(n_grid);

  // Green side: per-server controllers against the green bus.
  out.green = green_.step(re_total, lambda, /*bursting=*/true, epoch_faults);
  out.cluster_goodput = out.grid_goodput + out.green.total_goodput;
  out.rack_power = out.grid_servers_power + out.green.total_demand;

  if (tsdb_ != nullptr) {
    const double t_s =
        green_.config().epoch.value() * double(epochs_stepped_);
    record_cluster_epoch(*tsdb_, tsdb_rack_, t_s, out.green);
    const tsdb::Timestamp t = tsdb::to_timestamp(t_s);
    tsdb_->append_at(
        tsdb_->series("rack_power_w", tsdb_rack_, kTsdbAggregateServer), t,
        out.rack_power.value());
    tsdb_->append_at(
        tsdb_->series("grid_servers_w", tsdb_rack_, kTsdbAggregateServer), t,
        out.grid_servers_power.value());
    tsdb_->append_at(
        tsdb_->series("grid_goodput", tsdb_rack_, kTsdbAggregateServer), t,
        out.grid_goodput);
    tsdb_->append_at(
        tsdb_->series("rack_goodput", tsdb_rack_, kTsdbAggregateServer), t,
        out.cluster_goodput);
  }
  ++epochs_stepped_;
  return out;
}

void RackRunner::idle_step(Watts re_total, double background_lambda) {
  green_.idle_step(re_total, background_lambda);
  ++epochs_stepped_;
}

double RackRunner::normal_cluster_goodput(double lambda) const {
  return perf_.goodput(server::normal_mode(), lambda) *
         double(cfg_.cluster.total_servers);
}

}  // namespace gs::sim
