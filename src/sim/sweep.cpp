#include "sim/sweep.hpp"

#include <atomic>
#include <exception>
#include <mutex>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"

namespace gs::sim {

std::vector<BurstResult> run_sweep(const std::vector<Scenario>& scenarios,
                                   std::size_t threads) {
  std::vector<BurstResult> results(scenarios.size());
  if (scenarios.empty()) return results;
  ThreadPool pool(threads);
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  parallel_for(pool, scenarios.size(), [&](std::size_t i) {
    try {
      results[i] = run_burst(scenarios[i]);
    } catch (...) {
      std::lock_guard lock(error_mu);
      if (!failed.exchange(true)) first_error = std::current_exception();
    }
  });
  if (failed) std::rethrow_exception(first_error);
  return results;
}

std::vector<double> sweep_normalized_perf(
    const std::vector<Scenario>& scenarios, std::size_t threads) {
  const auto results = run_sweep(scenarios, threads);
  std::vector<double> perf;
  perf.reserve(results.size());
  for (const auto& r : results) perf.push_back(r.normalized_perf);
  return perf;
}

RunningStats replicate_normalized_perf(Scenario scenario, int replicas,
                                       std::size_t threads) {
  GS_REQUIRE(replicas >= 1, "need at least one replica");
  std::vector<Scenario> cells;
  cells.reserve(std::size_t(replicas));
  for (int i = 0; i < replicas; ++i) {
    cells.push_back(scenario);
    cells.back().seed = scenario.seed + std::uint64_t(i);
  }
  const auto perf = sweep_normalized_perf(cells, threads);
  RunningStats stats;
  for (double p : perf) stats.add(p);
  return stats;
}

}  // namespace gs::sim
