#include "sim/sweep.hpp"

#include <atomic>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <optional>

#include "ckpt/rotation.hpp"
#include "ckpt/snapshot.hpp"
#include "ckpt/state_io.hpp"
#include "common/assert.hpp"
#include "common/keyed_cache.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "sim/sweep_ckpt.hpp"

namespace gs::sim {

std::vector<BurstResult> run_sweep(const std::vector<Scenario>& scenarios,
                                   std::size_t threads,
                                   tsdb::Engine* telemetry) {
  std::vector<BurstResult> results(scenarios.size());
  if (scenarios.empty()) return results;
  ThreadPool pool(threads);
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  Mutex error_mu;  // guards first_error across worker threads
  parallel_for(
      pool, scenarios.size(),
      [&](std::size_t i) {
        try {
          if (telemetry != nullptr) {
            BurstSim sim(scenarios[i]);
            sim.attach_tsdb(telemetry, std::uint32_t(i));
            while (!sim.done()) sim.step();
            results[i] = sim.finish();
          } else {
            results[i] = run_burst(scenarios[i]);
          }
        } catch (...) {
          MutexLock lock(error_mu);
          if (!failed.exchange(true)) first_error = std::current_exception();
        }
      },
      /*chunk=*/1);
  if (failed) std::rethrow_exception(first_error);
  return results;
}

namespace sweep_ckpt {

namespace {

constexpr std::uint32_t kSweepManifestVersion = 1;
constexpr std::uint32_t kSweepCellVersion = 1;

/// The manifest is rotated (sweep.manifest.gNNNNNN + pointer) so a torn
/// or bit-rotted newest copy falls back to the previous generation
/// instead of condemning the campaign. Two generations suffice: the
/// manifest is campaign-deterministic, so any intact copy is *the* copy.
constexpr std::uint32_t kManifestKeep = 2;

ckpt::RotatingSnapshot manifest_rotation(const std::string& dir) {
  ckpt::RotationOptions opts;
  opts.keep = kManifestKeep;
  return ckpt::RotatingSnapshot(
      std::filesystem::path(dir) / "sweep.manifest", opts);
}

/// Newest intact manifest payload: rotation generations first, then a
/// plain pre-rotation `sweep.manifest` file. nullopt when nothing on
/// disk validates.
std::optional<std::string> manifest_payload(const std::string& dir) {
  if (auto loaded = manifest_rotation(dir).load_last_known_good()) {
    for (const std::string& note : loaded->notes) {
      std::fprintf(stderr, "sweep manifest recovery: %s\n", note.c_str());
    }
    return std::move(loaded->payload);
  }
  const std::filesystem::path legacy =
      std::filesystem::path(dir) / "sweep.manifest";
  if (std::filesystem::exists(legacy)) {
    try {
      return ckpt::read_snapshot_file(legacy);
    } catch (const ckpt::SnapshotError&) {
      return std::nullopt;
    }
  }
  return std::nullopt;
}

/// True when anything manifest-shaped (intact or not) is on disk.
bool manifest_present(const std::string& dir) {
  return ckpt::RotatingSnapshot::exists(
             std::filesystem::path(dir) / "sweep.manifest") ||
         std::filesystem::exists(std::filesystem::path(dir) /
                                 "sweep.manifest");
}

/// An *intact* manifest that belongs to a different campaign: never
/// self-healed, unlike corruption — the user pointed two sweeps at one
/// directory.
class ManifestMismatch : public ckpt::SnapshotError {
  using SnapshotError::SnapshotError;
};

/// Validate a decoded manifest payload against this campaign; throws
/// ManifestMismatch on a campaign mismatch, SnapshotError (from the
/// StateReader) on a malformed payload.
void check_manifest_payload(const std::string& payload,
                            const std::vector<Scenario>& scenarios) {
  ckpt::StateReader r(payload);
  r.begin_section("sweep_manifest", kSweepManifestVersion);
  const std::uint64_t cells = r.u64();
  if (cells != scenarios.size()) {
    throw ManifestMismatch(
        "sweep manifest describes " + std::to_string(cells) +
        " cells, the requested sweep has " +
        std::to_string(scenarios.size()));
  }
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (r.u64() != scenario_fingerprint(scenarios[i])) {
      throw ManifestMismatch(
          "sweep manifest cell " + std::to_string(i) +
          " was produced by a different scenario; delete the checkpoint "
          "directory to start a new campaign");
    }
  }
  r.end_section();
}

}  // namespace

std::string cell_file_name(std::size_t i) {
  std::string idx = std::to_string(i);
  while (idx.size() < 6) idx.insert(idx.begin(), '0');
  return "cell-" + idx + ".gsck";
}

void write_manifest(const std::string& dir,
                    const std::vector<Scenario>& scenarios) {
  ckpt::StateWriter w;
  w.begin_section("sweep_manifest", kSweepManifestVersion);
  w.u64(scenarios.size());
  for (const Scenario& sc : scenarios) w.u64(scenario_fingerprint(sc));
  w.end_section();
  manifest_rotation(dir).write(w.buffer());
}

void check_manifest(const std::string& dir,
                    const std::vector<Scenario>& scenarios) {
  const std::optional<std::string> payload = manifest_payload(dir);
  if (!payload) {
    throw ckpt::SnapshotError("no intact sweep manifest in " + dir);
  }
  check_manifest_payload(*payload, scenarios);
}

void ensure_manifest(const std::string& dir,
                     const std::vector<Scenario>& scenarios, bool resume) {
  namespace fs = std::filesystem;
  fs::create_directories(fs::path(dir));
  if (resume && manifest_present(dir)) {
    if (const std::optional<std::string> payload = manifest_payload(dir)) {
      // An intact manifest from a *different* campaign is a hard error;
      // a malformed payload is handled like corruption below.
      try {
        check_manifest_payload(*payload, scenarios);
        return;
      } catch (const ManifestMismatch&) {
        throw;
      } catch (const ckpt::SnapshotError& e) {
        std::fprintf(stderr,
                     "sweep manifest in %s is malformed (%s); rewriting "
                     "from the campaign definition\n",
                     dir.c_str(), e.what());
      }
    } else {
      // Every copy on disk is damaged. The manifest is derived entirely
      // from the campaign definition, so rewrite it instead of throwing
      // the checkpoint directory away; the per-cell fingerprints still
      // guard against foreign cells.
      std::fprintf(stderr,
                   "sweep manifest in %s is corrupt; rewriting from the "
                   "campaign definition\n",
                   dir.c_str());
    }
  }
  write_manifest(dir, scenarios);
}

void write_cell(const std::string& dir, std::size_t i, const Scenario& sc,
                const BurstResult& result) {
  ckpt::StateWriter w;
  w.begin_section("sweep_cell", kSweepCellVersion);
  w.u64(scenario_fingerprint(sc));
  save_burst_result(w, result);
  w.end_section();
  ckpt::write_snapshot_file(std::filesystem::path(dir) / cell_file_name(i),
                            w.buffer());
}

bool cell_exists(const std::string& dir, std::size_t i) {
  return std::filesystem::exists(std::filesystem::path(dir) /
                                 cell_file_name(i));
}

bool load_cell(const std::string& dir, std::size_t i, const Scenario& sc,
               BurstResult* out) {
  const std::filesystem::path cell =
      std::filesystem::path(dir) / cell_file_name(i);
  if (!std::filesystem::exists(cell)) return false;
  try {
    const std::string payload = ckpt::read_snapshot_file(cell);
    ckpt::StateReader r(payload);
    r.begin_section("sweep_cell", kSweepCellVersion);
    if (r.u64() != scenario_fingerprint(sc)) {
      throw ckpt::SnapshotError("sweep cell fingerprint mismatch");
    }
    *out = load_burst_result(r);
    r.end_section();
    return true;
  } catch (const ckpt::SnapshotError&) {
    // Missing, stale, or corrupt cell snapshot: the caller recomputes.
    return false;
  }
}

}  // namespace sweep_ckpt

std::vector<BurstResult> run_sweep_checkpointed(
    const std::vector<Scenario>& scenarios, const SweepCheckpointOptions& opts,
    std::size_t threads, SweepCheckpointStats* stats) {
  GS_REQUIRE(!opts.dir.empty(), "checkpointed sweep needs a directory");
  GS_REQUIRE(opts.every >= 1, "checkpoint interval must be >= 1");
  sweep_ckpt::ensure_manifest(opts.dir, scenarios, opts.resume);

  std::vector<BurstResult> results(scenarios.size());
  std::vector<char> loaded(scenarios.size(), 0);
  std::size_t resumed = 0;
  if (opts.resume) {
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      if (sweep_ckpt::load_cell(opts.dir, i, scenarios[i], &results[i])) {
        loaded[i] = 1;
        ++resumed;
      }
    }
  }
  if (stats) {
    stats->cells_total = scenarios.size();
    stats->cells_resumed = resumed;
    stats->cells_run = scenarios.size() - resumed;
  }
  if (scenarios.empty()) return results;

  ThreadPool pool(threads);
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  Mutex error_mu;  // guards first_error across worker threads
  parallel_for(
      pool, scenarios.size(),
      [&](std::size_t i) {
        if (loaded[i]) return;
        try {
          results[i] = run_burst(scenarios[i]);
          // Cells write to distinct paths and write_snapshot_file is
          // atomic (temp + rename), so workers need no coordination.
          if (i % opts.every == 0) {
            sweep_ckpt::write_cell(opts.dir, i, scenarios[i], results[i]);
          }
        } catch (...) {
          MutexLock lock(error_mu);
          if (!failed.exchange(true)) first_error = std::current_exception();
        }
      },
      /*chunk=*/1);
  if (failed) std::rethrow_exception(first_error);
  return results;
}

std::uint64_t sweep_fingerprint(const std::vector<BurstResult>& results) {
  std::uint64_t h = 0x5eedf00dull;
  const auto mix_d = [&h](double v) { h = hash_combine(h, v); };
  const auto mix_u = [&h](std::uint64_t v) { h = hash_combine(h, v); };
  mix_u(results.size());
  for (const auto& r : results) {
    mix_d(r.mean_goodput);
    mix_d(r.normal_goodput);
    mix_d(r.normalized_perf);
    mix_d(r.final_battery_dod);
    mix_d(r.battery_cycles);
    mix_d(r.re_energy_used.value());
    mix_d(r.batt_energy_used.value());
    mix_d(r.grid_energy_used.value());
    mix_d(r.window_start.value());
    mix_u(r.degraded_epochs);
    mix_u(r.crash_epochs);
    mix_d(r.fault_downtime.value());
    mix_u(r.epochs.size());
    for (const auto& e : r.epochs) {
      mix_d(e.time.value());
      mix_u(std::uint64_t(e.setting.cores));
      mix_d(e.setting.frequency().value());
      mix_u(std::uint64_t(e.power_case));
      mix_d(e.offered_load);
      mix_d(e.goodput);
      mix_d(e.latency.value());
      mix_d(e.demand.value());
      mix_d(e.re_used.value());
      mix_d(e.batt_used.value());
      mix_d(e.grid_used.value());
      mix_d(e.re_available.value());
      mix_d(e.battery_soc);
      mix_u((std::uint64_t(e.downgraded) << 3) |
            (std::uint64_t(e.faulted) << 2) | (std::uint64_t(e.crashed) << 1) |
            std::uint64_t(e.degraded));
    }
  }
  return h;
}

std::vector<double> sweep_normalized_perf(
    const std::vector<Scenario>& scenarios, std::size_t threads) {
  const auto results = run_sweep(scenarios, threads);
  std::vector<double> perf;
  perf.reserve(results.size());
  for (const auto& r : results) perf.push_back(r.normalized_perf);
  return perf;
}

RunningStats replicate_normalized_perf(Scenario scenario, int replicas,
                                       std::size_t threads) {
  GS_REQUIRE(replicas >= 1, "need at least one replica");
  std::vector<Scenario> cells;
  cells.reserve(std::size_t(replicas));
  for (int i = 0; i < replicas; ++i) {
    cells.push_back(scenario);
    cells.back().seed = scenario.seed + std::uint64_t(i);
  }
  const auto perf = sweep_normalized_perf(cells, threads);
  RunningStats stats;
  for (double p : perf) stats.add(p);
  return stats;
}

}  // namespace gs::sim
