#include "sim/sweep.hpp"

#include <atomic>
#include <exception>
#include <filesystem>

#include "ckpt/snapshot.hpp"
#include "ckpt/state_io.hpp"
#include "common/assert.hpp"
#include "common/keyed_cache.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "sim/sweep_ckpt.hpp"

namespace gs::sim {

std::vector<BurstResult> run_sweep(const std::vector<Scenario>& scenarios,
                                   std::size_t threads,
                                   tsdb::Engine* telemetry) {
  std::vector<BurstResult> results(scenarios.size());
  if (scenarios.empty()) return results;
  ThreadPool pool(threads);
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  Mutex error_mu;  // guards first_error across worker threads
  parallel_for(
      pool, scenarios.size(),
      [&](std::size_t i) {
        try {
          if (telemetry != nullptr) {
            BurstSim sim(scenarios[i]);
            sim.attach_tsdb(telemetry, std::uint32_t(i));
            while (!sim.done()) sim.step();
            results[i] = sim.finish();
          } else {
            results[i] = run_burst(scenarios[i]);
          }
        } catch (...) {
          MutexLock lock(error_mu);
          if (!failed.exchange(true)) first_error = std::current_exception();
        }
      },
      /*chunk=*/1);
  if (failed) std::rethrow_exception(first_error);
  return results;
}

namespace sweep_ckpt {

namespace {

constexpr std::uint32_t kSweepManifestVersion = 1;
constexpr std::uint32_t kSweepCellVersion = 1;

}  // namespace

std::string cell_file_name(std::size_t i) {
  std::string idx = std::to_string(i);
  while (idx.size() < 6) idx.insert(idx.begin(), '0');
  return "cell-" + idx + ".gsck";
}

void write_manifest(const std::string& dir,
                    const std::vector<Scenario>& scenarios) {
  ckpt::StateWriter w;
  w.begin_section("sweep_manifest", kSweepManifestVersion);
  w.u64(scenarios.size());
  for (const Scenario& sc : scenarios) w.u64(scenario_fingerprint(sc));
  w.end_section();
  ckpt::write_snapshot_file(std::filesystem::path(dir) / "sweep.manifest",
                            w.buffer());
}

void check_manifest(const std::string& dir,
                    const std::vector<Scenario>& scenarios) {
  const std::string payload = ckpt::read_snapshot_file(
      std::filesystem::path(dir) / "sweep.manifest");
  ckpt::StateReader r(payload);
  r.begin_section("sweep_manifest", kSweepManifestVersion);
  const std::uint64_t cells = r.u64();
  if (cells != scenarios.size()) {
    throw ckpt::SnapshotError(
        "sweep manifest describes " + std::to_string(cells) +
        " cells, the requested sweep has " +
        std::to_string(scenarios.size()));
  }
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (r.u64() != scenario_fingerprint(scenarios[i])) {
      throw ckpt::SnapshotError(
          "sweep manifest cell " + std::to_string(i) +
          " was produced by a different scenario; delete the checkpoint "
          "directory to start a new campaign");
    }
  }
  r.end_section();
}

void ensure_manifest(const std::string& dir,
                     const std::vector<Scenario>& scenarios, bool resume) {
  namespace fs = std::filesystem;
  fs::create_directories(fs::path(dir));
  if (resume && fs::exists(fs::path(dir) / "sweep.manifest")) {
    check_manifest(dir, scenarios);
  } else {
    write_manifest(dir, scenarios);
  }
}

void write_cell(const std::string& dir, std::size_t i, const Scenario& sc,
                const BurstResult& result) {
  ckpt::StateWriter w;
  w.begin_section("sweep_cell", kSweepCellVersion);
  w.u64(scenario_fingerprint(sc));
  save_burst_result(w, result);
  w.end_section();
  ckpt::write_snapshot_file(std::filesystem::path(dir) / cell_file_name(i),
                            w.buffer());
}

bool cell_exists(const std::string& dir, std::size_t i) {
  return std::filesystem::exists(std::filesystem::path(dir) /
                                 cell_file_name(i));
}

bool load_cell(const std::string& dir, std::size_t i, const Scenario& sc,
               BurstResult* out) {
  const std::filesystem::path cell =
      std::filesystem::path(dir) / cell_file_name(i);
  if (!std::filesystem::exists(cell)) return false;
  try {
    const std::string payload = ckpt::read_snapshot_file(cell);
    ckpt::StateReader r(payload);
    r.begin_section("sweep_cell", kSweepCellVersion);
    if (r.u64() != scenario_fingerprint(sc)) {
      throw ckpt::SnapshotError("sweep cell fingerprint mismatch");
    }
    *out = load_burst_result(r);
    r.end_section();
    return true;
  } catch (const ckpt::SnapshotError&) {
    // Missing, stale, or corrupt cell snapshot: the caller recomputes.
    return false;
  }
}

}  // namespace sweep_ckpt

std::vector<BurstResult> run_sweep_checkpointed(
    const std::vector<Scenario>& scenarios, const SweepCheckpointOptions& opts,
    std::size_t threads, SweepCheckpointStats* stats) {
  GS_REQUIRE(!opts.dir.empty(), "checkpointed sweep needs a directory");
  GS_REQUIRE(opts.every >= 1, "checkpoint interval must be >= 1");
  sweep_ckpt::ensure_manifest(opts.dir, scenarios, opts.resume);

  std::vector<BurstResult> results(scenarios.size());
  std::vector<char> loaded(scenarios.size(), 0);
  std::size_t resumed = 0;
  if (opts.resume) {
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      if (sweep_ckpt::load_cell(opts.dir, i, scenarios[i], &results[i])) {
        loaded[i] = 1;
        ++resumed;
      }
    }
  }
  if (stats) {
    stats->cells_total = scenarios.size();
    stats->cells_resumed = resumed;
    stats->cells_run = scenarios.size() - resumed;
  }
  if (scenarios.empty()) return results;

  ThreadPool pool(threads);
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  Mutex error_mu;  // guards first_error across worker threads
  parallel_for(
      pool, scenarios.size(),
      [&](std::size_t i) {
        if (loaded[i]) return;
        try {
          results[i] = run_burst(scenarios[i]);
          // Cells write to distinct paths and write_snapshot_file is
          // atomic (temp + rename), so workers need no coordination.
          if (i % opts.every == 0) {
            sweep_ckpt::write_cell(opts.dir, i, scenarios[i], results[i]);
          }
        } catch (...) {
          MutexLock lock(error_mu);
          if (!failed.exchange(true)) first_error = std::current_exception();
        }
      },
      /*chunk=*/1);
  if (failed) std::rethrow_exception(first_error);
  return results;
}

std::uint64_t sweep_fingerprint(const std::vector<BurstResult>& results) {
  std::uint64_t h = 0x5eedf00dull;
  const auto mix_d = [&h](double v) { h = hash_combine(h, v); };
  const auto mix_u = [&h](std::uint64_t v) { h = hash_combine(h, v); };
  mix_u(results.size());
  for (const auto& r : results) {
    mix_d(r.mean_goodput);
    mix_d(r.normal_goodput);
    mix_d(r.normalized_perf);
    mix_d(r.final_battery_dod);
    mix_d(r.battery_cycles);
    mix_d(r.re_energy_used.value());
    mix_d(r.batt_energy_used.value());
    mix_d(r.grid_energy_used.value());
    mix_d(r.window_start.value());
    mix_u(r.degraded_epochs);
    mix_u(r.crash_epochs);
    mix_d(r.fault_downtime.value());
    mix_u(r.epochs.size());
    for (const auto& e : r.epochs) {
      mix_d(e.time.value());
      mix_u(std::uint64_t(e.setting.cores));
      mix_d(e.setting.frequency().value());
      mix_u(std::uint64_t(e.power_case));
      mix_d(e.offered_load);
      mix_d(e.goodput);
      mix_d(e.latency.value());
      mix_d(e.demand.value());
      mix_d(e.re_used.value());
      mix_d(e.batt_used.value());
      mix_d(e.grid_used.value());
      mix_d(e.re_available.value());
      mix_d(e.battery_soc);
      mix_u((std::uint64_t(e.downgraded) << 3) |
            (std::uint64_t(e.faulted) << 2) | (std::uint64_t(e.crashed) << 1) |
            std::uint64_t(e.degraded));
    }
  }
  return h;
}

std::vector<double> sweep_normalized_perf(
    const std::vector<Scenario>& scenarios, std::size_t threads) {
  const auto results = run_sweep(scenarios, threads);
  std::vector<double> perf;
  perf.reserve(results.size());
  for (const auto& r : results) perf.push_back(r.normalized_perf);
  return perf;
}

RunningStats replicate_normalized_perf(Scenario scenario, int replicas,
                                       std::size_t threads) {
  GS_REQUIRE(replicas >= 1, "need at least one replica");
  std::vector<Scenario> cells;
  cells.reserve(std::size_t(replicas));
  for (int i = 0; i < replicas; ++i) {
    cells.push_back(scenario);
    cells.back().seed = scenario.seed + std::uint64_t(i);
  }
  const auto perf = sweep_normalized_perf(cells, threads);
  RunningStats stats;
  for (double p : perf) stats.add(p);
  return stats;
}

}  // namespace gs::sim
