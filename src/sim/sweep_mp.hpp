// Multi-process sweep driver: several OS processes cooperatively work
// through one checkpointed sweep directory with no shared memory and no
// server — the filesystem is the coordinator.
//
// Protocol (per cell i of the manifest):
//
//   1. A worker that finds no `cell-NNNNNN.gsck` snapshot tries to claim
//      the cell by creating `cell-NNNNNN.lease` with O_CREAT|O_EXCL — an
//      atomic test-and-set on any POSIX filesystem. The lease body records
//      the claimant's pid.
//   2. The claimant computes the cell and persists it with the existing
//      atomic snapshot discipline (temp + rename), then unlinks its lease.
//   3. A lease whose owner pid is dead (or whose file is older than
//      `stale_after_s`) is *stale*: a worker takes it over by atomically
//      renaming it aside to a unique name — rename is atomic, so exactly
//      one of several concurrent claimants wins; the losers see ENOENT and
//      move on — and then re-claiming through step 1.
//
// A worker SIGKILLed mid-cell leaves only a stale lease (the half-written
// snapshot is still a temp file, never the final name), so surviving
// workers finish its cell. A worker killed *between* snapshot rename and
// lease unlink leaves an orphan lease next to a finished cell; the cell
// file wins and the lease is ignored. Because every cell is a
// deterministic pure function of its scenario and cell snapshots are
// byte-exact, even a double-computed cell produces identical bytes —
// the merged sweep_fingerprint always equals single-process run_sweep.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/sweep.hpp"

namespace gs::sim {

struct SweepWorkerOptions {
  std::string dir;  ///< Shared checkpoint directory (manifest + cells).
  /// Age (mtime) past which a lease is considered stale even when its
  /// owner pid cannot be probed. Dead-pid leases are reclaimed
  /// immediately regardless of age.
  double stale_after_s = 30.0;
};

struct SweepWorkerStats {
  std::size_t cells_total = 0;
  std::size_t cells_run = 0;         ///< Computed (and persisted) by us.
  std::size_t leases_taken_over = 0; ///< Stale leases we reclaimed.
};

/// Work through the sweep directory as one cooperative worker: claim
/// unowned cells, compute them, persist them; return when every cell of
/// the campaign has a snapshot on disk. Writes the manifest if the
/// directory is fresh, validates it otherwise (throws ckpt::SnapshotError
/// on a campaign mismatch). Safe to run any number of workers
/// concurrently against the same directory, on the same or different
/// processes.
SweepWorkerStats run_sweep_worker(const std::vector<Scenario>& scenarios,
                                  const SweepWorkerOptions& opts);

struct SweepMpOptions {
  std::string dir;     ///< Checkpoint directory (created if missing).
  int workers = 2;     ///< Forked worker processes.
  double stale_after_s = 30.0;
  /// Validate an existing manifest instead of rewriting it (same meaning
  /// as SweepCheckpointOptions::resume).
  bool resume = false;
};

/// Fork `workers` processes that cooperatively compute the sweep through
/// run_sweep_worker, wait for them, then merge the cell snapshots into
/// the result vector (recomputing inline any cell every worker failed to
/// produce). The returned results — and hence sweep_fingerprint — are
/// bit-identical to single-process run_sweep over the same scenarios.
/// `stats` reports this invocation's work: cells_resumed = snapshots that
/// existed before the workers started, cells_run = cells computed by this
/// invocation (in a worker or inline by the merge).
[[nodiscard]] std::vector<BurstResult> run_sweep_multiprocess(
    const std::vector<Scenario>& scenarios, const SweepMpOptions& opts,
    SweepCheckpointStats* stats = nullptr);

}  // namespace gs::sim
