// The epoch-loop simulator that executes one burst scenario end to end:
// Monitor -> Predictor -> PSS case selection -> PMK strategy -> power
// settlement (battery / grid mutation) -> workload evaluation. It follows
// the paper's prototype methodology (Section IV):
//
//  * the burst saturates the cluster; the analysis focuses on the
//    green-provisioned servers, which sprint exclusively from the green
//    bus (renewable + server battery) while the grid conservatively
//    carries the rest of the rack,
//  * when the green sources cannot carry even Normal mode, the green
//    servers fall back to the grid at Normal mode,
//  * performance is the mean SLA-goodput over the burst, normalized to the
//    same burst executed entirely in Normal mode.
#pragma once

#include <vector>

#include "power/pss.hpp"
#include "sim/scenario.hpp"
#include "trace/solar.hpp"

namespace gs::sim {

/// Telemetry for one scheduling epoch of one green server.
struct EpochRecord {
  Seconds time{0.0};               ///< Start of the epoch (trace time).
  server::ServerSetting setting;
  power::PowerCase power_case = power::PowerCase::Idle;
  double offered_load = 0.0;       ///< Arrival rate (req/s).
  double goodput = 0.0;            ///< SLA-goodput (req/s).
  Seconds latency{0.0};            ///< Achieved tail latency.
  Watts demand{0.0};               ///< Server electrical demand.
  Watts re_used{0.0};
  Watts batt_used{0.0};
  Watts grid_used{0.0};
  Watts re_available{0.0};         ///< Green supply before settlement.
  double battery_soc = 1.0;
  bool downgraded = false;         ///< Emergency PMK downgrade fired.
  bool faulted = false;            ///< Any fault event active this epoch.
  bool crashed = false;            ///< Green server down this epoch.
  bool degraded = false;           ///< Controller clamped to Normal.
};

/// Result of one scenario run.
struct BurstResult {
  std::vector<EpochRecord> epochs;       ///< Burst epochs, per green server.
  double mean_goodput = 0.0;             ///< Over the burst (req/s/server).
  double normal_goodput = 0.0;           ///< Normal-mode baseline.
  double normalized_perf = 0.0;          ///< mean_goodput / normal_goodput.
  double final_battery_dod = 0.0;
  double battery_cycles = 0.0;           ///< Equivalent cycles consumed.
  Joules re_energy_used{0.0};
  Joules batt_energy_used{0.0};
  Joules grid_energy_used{0.0};
  Seconds window_start{0.0};             ///< Trace time the burst started.
  // Fault / degraded-mode telemetry (all zero on fault-free runs).
  std::size_t degraded_epochs = 0;       ///< Epochs clamped to Normal.
  std::size_t crash_epochs = 0;          ///< Epochs the server was down.
  Seconds fault_downtime{0.0};           ///< Downtime over all fault classes.
};

/// Execute the scenario. Throws gs::ContractError if the solar trace has
/// no window of the requested availability class (never happens with the
/// default generator, which forces one clear and one overcast day).
[[nodiscard]] BurstResult run_burst(const Scenario& scenario);

/// Convenience: normalized performance only.
[[nodiscard]] double normalized_performance(const Scenario& scenario);

}  // namespace gs::sim
