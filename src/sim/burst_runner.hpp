// The epoch-loop simulator that executes one burst scenario end to end:
// Monitor -> Predictor -> PSS case selection -> PMK strategy -> power
// settlement (battery / grid mutation) -> workload evaluation. It follows
// the paper's prototype methodology (Section IV):
//
//  * the burst saturates the cluster; the analysis focuses on the
//    green-provisioned servers, which sprint exclusively from the green
//    bus (renewable + server battery) while the grid conservatively
//    carries the rest of the rack,
//  * when the green sources cannot carry even Normal mode, the green
//    servers fall back to the grid at Normal mode,
//  * performance is the mean SLA-goodput over the burst, normalized to the
//    same burst executed entirely in Normal mode.
//
// The loop is exposed two ways: run_burst() executes a scenario in one
// call, and BurstSim is the stepwise form behind it — construct, step()
// per epoch, finish() — whose save_state/load_state snapshots make long
// campaigns resumable after a kill (src/ckpt).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "ckpt/fwd.hpp"
#include "common/rng.hpp"
#include "core/greensprint.hpp"
#include "faults/fault_injector.hpp"
#include "power/battery.hpp"
#include "power/grid.hpp"
#include "power/pss.hpp"
#include "power/solar_array.hpp"
#include "server/power_model.hpp"
#include "sim/monitor.hpp"
#include "sim/scenario.hpp"
#include "thermal/pcm.hpp"
#include "trace/solar.hpp"
#include "workload/perf_model.hpp"

namespace gs::sim {

/// Telemetry for one scheduling epoch of one green server.
struct EpochRecord {
  Seconds time{0.0};               ///< Start of the epoch (trace time).
  server::ServerSetting setting;
  power::PowerCase power_case = power::PowerCase::Idle;
  double offered_load = 0.0;       ///< Arrival rate (req/s).
  double goodput = 0.0;            ///< SLA-goodput (req/s).
  Seconds latency{0.0};            ///< Achieved tail latency.
  Watts demand{0.0};               ///< Server electrical demand.
  Watts re_used{0.0};
  Watts batt_used{0.0};
  Watts grid_used{0.0};
  Watts re_available{0.0};         ///< Green supply before settlement.
  double battery_soc = 1.0;
  bool downgraded = false;         ///< Emergency PMK downgrade fired.
  bool faulted = false;            ///< Any fault event active this epoch.
  bool crashed = false;            ///< Green server down this epoch.
  bool degraded = false;           ///< Controller clamped to Normal.
};

/// Result of one scenario run.
struct BurstResult {
  std::vector<EpochRecord> epochs;       ///< Burst epochs, per green server.
  double mean_goodput = 0.0;             ///< Over the burst (req/s/server).
  double normal_goodput = 0.0;           ///< Normal-mode baseline.
  double normalized_perf = 0.0;          ///< mean_goodput / normal_goodput.
  double final_battery_dod = 0.0;
  double battery_cycles = 0.0;           ///< Equivalent cycles consumed.
  Joules re_energy_used{0.0};
  Joules batt_energy_used{0.0};
  Joules grid_energy_used{0.0};
  Seconds window_start{0.0};             ///< Trace time the burst started.
  // Fault / degraded-mode telemetry (all zero on fault-free runs).
  std::size_t degraded_epochs = 0;       ///< Epochs clamped to Normal.
  std::size_t crash_epochs = 0;          ///< Epochs the server was down.
  Seconds fault_downtime{0.0};           ///< Downtime over all fault classes.
  /// Per-class availability telemetry: activation edges (incidents) and
  /// accumulated downtime. Feed export.hpp's availability_report for the
  /// MTTR/MTBF summary. Not part of sweep_fingerprint (which predates it).
  std::array<std::size_t, faults::kNumFaultClasses> fault_incidents{};
  std::array<Seconds, faults::kNumFaultClasses> fault_class_downtime{};
  /// Correlated-burst edges per class (Storm/Cascade-origin activity,
  /// faults/correlation.hpp) and epochs spent per controller health state
  /// (index = core::HealthState). Recorded only while fault injection is
  /// enabled; not part of sweep_fingerprint.
  std::array<std::size_t, faults::kNumFaultClasses> correlated_bursts{};
  std::array<std::size_t, 3> health_state_epochs{};
};

/// Stepwise burst simulation. Equivalent to run_burst() when driven to
/// completion; additionally checkpointable between epochs:
///
///   BurstSim sim(sc);                  // substrate setup + warmup
///   while (!sim.done()) sim.step();    // one scheduling epoch each
///   BurstResult r = sim.finish();
///
/// save_state() captures every mutable field (battery, grid, controller,
/// monitor, DES RNG, PCM, fault edges, epochs recorded so far); a fresh
/// BurstSim over the same Scenario + load_state() continues bit-identically,
/// which is the kill-at-any-epoch resume guarantee the ckpt subsystem and
/// the resume-integrity CI lane enforce. The snapshot embeds
/// scenario_fingerprint(), so loading against a different scenario throws
/// ckpt::SnapshotError.
class BurstSim {
 public:
  explicit BurstSim(const Scenario& scenario);

  [[nodiscard]] std::size_t epoch_index() const { return epoch_; }
  [[nodiscard]] std::size_t num_epochs() const { return n_epochs_; }
  [[nodiscard]] bool done() const { return epoch_ >= n_epochs_; }

  /// Simulate the next scheduling epoch. Requires !done().
  void step();

  /// Stream every subsequent epoch's telemetry into `engine` (which must
  /// outlive this sim) under fleet coordinate (rack, server). Not part of
  /// the checkpoint state: re-attach after a load_state() restore.
  void attach_tsdb(tsdb::Engine* engine, std::uint32_t rack = 0,
                   std::uint32_t server = 0) {
    monitor_.set_tsdb_sink(TsdbSink(engine, rack, server));
  }

  /// Aggregate the burst statistics. Requires done().
  [[nodiscard]] BurstResult finish();

  // --- Checkpoint/restore (src/ckpt). v2 adds the correlated-burst edge
  // detector state.
  static constexpr std::uint32_t kStateVersion = 2;
  void save_state(ckpt::StateWriter& w) const;
  void load_state(ckpt::StateReader& r);

 private:
  [[nodiscard]] Watts re_share(Seconds t) const;
  [[nodiscard]] power::Battery& batt() {
    return battery_ ? *battery_ : dummy_battery_;
  }
  [[nodiscard]] const power::Battery& batt() const {
    return battery_ ? *battery_ : dummy_battery_;
  }

  Scenario sc_;
  std::shared_ptr<const trace::SolarTrace> solar_;
  Seconds start_{0.0};
  power::SolarArray array_;
  std::optional<power::Battery> battery_;
  /// Stand-in when the scenario has no battery (RE-only provisioning);
  /// near-zero capacity so every settlement sees an exhausted source.
  power::Battery dummy_battery_;
  workload::PerfModel perf_;
  server::ServerPowerModel pmodel_;
  std::shared_ptr<const core::ProfileTable> profile_;
  core::GreenSprintController controller_;
  power::Grid grid_;
  power::PowerSourceSelector pss_;
  server::ServerSetting normal_;
  double lambda_peak_ = 0.0;
  double lambda_background_ = 0.0;
  std::size_t n_epochs_ = 0;
  std::size_t epoch_ = 0;

  Monitor monitor_;
  Rng des_rng_;
  faults::FaultInjector injector_;
  bool prev_disturbance_ = false;
  double last_sensed_load_ = 0.0;
  thermal::PcmBuffer pcm_;
  bool thermal_limited_ = false;
  double normal_goodput_sum_ = 0.0;
  /// Previous epoch's per-class activity, for incident (rising-edge)
  /// detection feeding the MTTR/MTBF telemetry.
  std::array<bool, faults::kNumFaultClasses> prev_fault_active_{};
  /// Same, restricted to correlated (Storm/Cascade-origin) activity.
  std::array<bool, faults::kNumFaultClasses> prev_corr_active_{};
  BurstResult result_;
};

/// Execute the scenario. Throws gs::ContractError if the solar trace has
/// no window of the requested availability class (never happens with the
/// default generator, which forces one clear and one overcast day).
[[nodiscard]] BurstResult run_burst(const Scenario& scenario);

/// Convenience: normalized performance only.
[[nodiscard]] double normalized_performance(const Scenario& scenario);

/// Binary round-trip of a finished BurstResult (the per-cell snapshot the
/// checkpointed sweep writes for completed cells).
void save_burst_result(ckpt::StateWriter& w, const BurstResult& r);
[[nodiscard]] BurstResult load_burst_result(ckpt::StateReader& r);

}  // namespace gs::sim
