#include "sim/green_cluster.hpp"

#include <algorithm>
#include <string>

#include "ckpt/state_io.hpp"
#include "common/assert.hpp"
#include "workload/perf_model.hpp"

namespace gs::sim {

const char* to_string(ReAllocation a) {
  switch (a) {
    case ReAllocation::EqualShare:
      return "EqualShare";
    case ReAllocation::Waterfall:
      return "Waterfall";
  }
  return "?";
}

namespace {

power::BatteryConfig battery_config(AmpHours capacity) {
  power::BatteryConfig bc;
  bc.capacity = capacity.value() > 0.0 ? capacity : AmpHours(1e-9);
  return bc;
}

power::GridConfig cluster_grid_config(const workload::AppDescriptor& app,
                                      int servers) {
  power::GridConfig gc;
  // Normal-mode backstop plus charging headroom for every green server.
  gc.budget = (app.normal_full_power + Watts(80.0)) * double(servers);
  return gc;
}

}  // namespace

GreenCluster::GreenCluster(const workload::AppDescriptor& app,
                           GreenClusterConfig cfg)
    : cfg_(cfg),
      app_(app),
      perf_(app),
      power_model_(Watts(76.0)),
      profile_(perf_, power_model_),
      pss_(power::PssConfig{cfg.grid_charging}),
      batteries_(),
      controllers_(),
      grid_(cluster_grid_config(app, cfg.servers)),
      prev_deficit_(std::size_t(std::max(cfg.servers, 0)), false) {
  GS_REQUIRE(cfg_.servers > 0, "cluster needs at least one green server");
  batteries_.reserve(std::size_t(cfg_.servers));
  controllers_.reserve(std::size_t(cfg_.servers));
  for (int i = 0; i < cfg_.servers; ++i) {
    batteries_.emplace_back(battery_config(cfg_.battery_per_server));
    core::ControllerConfig ctl_cfg;
    ctl_cfg.strategy = cfg_.strategy;
    ctl_cfg.epoch = cfg_.epoch;
    ctl_cfg.health_aware = cfg_.health_aware;
    controllers_.push_back(std::make_unique<core::GreenSprintController>(
        app_, profile_, power_model_.idle_power(), ctl_cfg));
  }
}

std::vector<Watts> GreenCluster::allocate(Watts re_total,
                                          const std::vector<Watts>& want)
    const {
  std::vector<Watts> share(want.size(), Watts(0.0));
  switch (cfg_.allocation) {
    case ReAllocation::EqualShare: {
      const Watts each = re_total / double(want.size());
      std::fill(share.begin(), share.end(), each);
      break;
    }
    case ReAllocation::Waterfall: {
      Watts left = re_total;
      for (std::size_t i = 0; i < want.size(); ++i) {
        share[i] = std::min(left, want[i]);
        left -= share[i];
      }
      // Any remainder (all demands met) goes to the first server's
      // charger.
      if (left.value() > 0.0 && !share.empty()) share[0] += left;
      break;
    }
  }
  return share;
}

ClusterEpoch GreenCluster::step(Watts re_total, double lambda,
                                bool bursting,
                                const faults::EpochFaults* epoch_faults) {
  return step_hetero(re_total,
                     std::vector<double>(std::size_t(cfg_.servers), lambda),
                     bursting, epoch_faults);
}

void GreenCluster::apply_component_faults(
    const faults::EpochFaults& epoch_faults) {
  for (auto& b : batteries_) {
    b.set_capacity_fade(epoch_faults.battery_capacity_factor);
    b.set_charge_derate(epoch_faults.charge_efficiency_factor);
  }
  grid_.set_budget_derate(epoch_faults.grid_budget_factor);
}

ClusterEpoch GreenCluster::step_hetero(Watts re_total,
                                       const std::vector<double>& lambdas,
                                       bool bursting,
                                       const faults::EpochFaults* epoch_faults) {
  GS_REQUIRE(re_total.value() >= 0.0, "RE supply must be non-negative");
  GS_REQUIRE(lambdas.size() == std::size_t(cfg_.servers),
             "one arrival rate per green server required");
  const auto n = std::size_t(cfg_.servers);
  ClusterEpoch out;
  out.settings.resize(n);

  // Allocation claims: each server's maximal-sprint demand at its own
  // workload level (EqualShare ignores them; Waterfall fills by demand).
  const auto max_idx = profile_.lattice().index_of(server::max_sprint());
  std::vector<Watts> want(n);
  for (std::size_t i = 0; i < n; ++i) {
    want[i] = profile_.power(profile_.level_for(lambdas[i]), max_idx);
  }
  const auto shares = allocate(re_total, want);

  const server::ServerSetting normal = server::normal_mode();
  if (epoch_faults != nullptr) apply_component_faults(*epoch_faults);
  for (std::size_t i = 0; i < n; ++i) {
    const double lambda = lambdas[i];
    auto& battery = batteries_[i];
    auto& controller = *controllers_[i];

    // Crashed green server: total outage for the epoch; its renewable
    // share still charges its battery through the PSS.
    if (epoch_faults != nullptr && epoch_faults->crashed(int(i))) {
      controller.observe_idle(lambda, shares[i]);
      const auto settle = pss_.settle(Watts(0.0), shares[i], battery, grid_,
                                      cfg_.epoch, bursting, Watts(0.0));
      out.settings[i] = normal;
      out.re_used += settle.re_used;
      ++out.servers_crashed;
      prev_deficit_[i] = true;  // reboot recovers through hysteresis
      continue;
    }

    power::PssFaultState pss_fault;
    if (epoch_faults != nullptr) {
      controller.notify_health(prev_deficit_[i], epoch_faults->sensor_dropout);
      pss_fault.battery_offline = epoch_faults->battery_offline;
      pss_fault.switch_latency_fraction =
          epoch_faults->switch_latency_fraction;
    }
    const Watts batt_power =
        epoch_faults != nullptr && epoch_faults->battery_offline
            ? Watts(0.0)
            : battery.max_discharge_power(cfg_.epoch);
    // Each controller forecasts its *own* share: it has been observing the
    // policy's per-server allocation epoch after epoch, so the EWMA tracks
    // whatever the allocation policy hands this server.
    server::ServerSetting setting = controller.begin_epoch(lambda,
                                                           batt_power);
    const Watts green_avail = shares[i] + batt_power;
    if (setting != normal &&
        controller.demand(lambda, setting) > green_avail) {
      setting = controller.replan(green_avail);
    }
    const Watts demand = controller.demand(lambda, setting);
    const Watts grid_cap =
        setting == normal ? app_.normal_full_power : Watts(0.0);
    const auto settle = pss_.settle(demand, shares[i], battery, grid_,
                                    cfg_.epoch, bursting, grid_cap,
                                    pss_fault);
    double goodput = perf_.goodput(setting, lambda);
    if (epoch_faults != nullptr && epoch_faults->speed(int(i)) < 1.0) {
      goodput *= epoch_faults->speed(int(i));
    }
    if (settle.deficit()) {
      goodput = std::min(goodput, perf_.goodput(normal, lambda));
    }
    controller.end_epoch(shares[i], demand, green_avail,
                         perf_.latency(setting, lambda));
    if (epoch_faults != nullptr) {
      prev_deficit_[i] = settle.deficit();
      if (controller.degraded()) ++out.servers_degraded;
    }

    out.settings[i] = setting;
    out.total_goodput += goodput;
    out.total_demand += demand;
    out.re_used += settle.re_used;
    out.batt_used += settle.batt_used;
    out.grid_used += settle.grid_used;
    if (setting != normal) ++out.servers_sprinting;
  }
  return out;
}

void GreenCluster::idle_step(Watts re_total, double background_lambda) {
  const auto n = std::size_t(cfg_.servers);
  // Forecast consistency: divide the idle supply by the same policy the
  // burst path uses (planned against maximum-sprint demand), so each
  // controller's renewable EWMA predicts the share it will actually get.
  const Watts max_demand = profile_.power(
      profile_.num_levels() - 1,
      profile_.lattice().index_of(server::max_sprint()));
  const std::vector<Watts> want(n, max_demand);
  const auto shares = allocate(re_total, want);
  for (std::size_t i = 0; i < n; ++i) {
    controllers_[i]->observe_idle(background_lambda, shares[i]);
    // Normal-mode power comes from the grid; all of the RE share plus the
    // grid charger can refill the battery.
    (void)pss_.settle(Watts(0.0), shares[i], batteries_[i], grid_,
                      cfg_.epoch, /*bursting=*/false, Watts(0.0));
  }
}

double GreenCluster::mean_soc() const {
  double sum = 0.0;
  for (const auto& b : batteries_) sum += b.state_of_charge();
  return sum / double(batteries_.size());
}

double GreenCluster::total_equivalent_cycles() const {
  double sum = 0.0;
  for (const auto& b : batteries_) sum += b.equivalent_cycles();
  return sum;
}

void GreenCluster::save_state(ckpt::StateWriter& w) const {
  w.begin_section("green_cluster", kStateVersion);
  w.u64(std::uint64_t(cfg_.servers));
  grid_.save_state(w);
  for (const power::Battery& b : batteries_) b.save_state(w);
  for (const auto& c : controllers_) c->save_state(w);
  for (std::size_t i = 0; i < prev_deficit_.size(); ++i) {
    w.boolean(prev_deficit_[i]);
  }
  w.end_section();
}

void GreenCluster::load_state(ckpt::StateReader& r) {
  r.begin_section("green_cluster", kStateVersion);
  const std::uint64_t servers = r.u64();
  if (servers != std::uint64_t(cfg_.servers)) {
    throw ckpt::SnapshotError(
        "cluster snapshot holds " + std::to_string(servers) +
        " green servers, cluster is configured for " +
        std::to_string(cfg_.servers));
  }
  grid_.load_state(r);
  for (power::Battery& b : batteries_) b.load_state(r);
  for (const auto& c : controllers_) c->load_state(r);
  for (std::size_t i = 0; i < prev_deficit_.size(); ++i) {
    prev_deficit_[i] = r.boolean();
  }
  r.end_section();
}

}  // namespace gs::sim
