// gs:hot-path — the per-epoch cluster kernel; no heap allocation in the
// steady-state phase loops (soa_ arrays are sized once at construction).
#include "sim/green_cluster.hpp"

#include <algorithm>
#include <string>

#include "ckpt/state_io.hpp"
#include "common/assert.hpp"
#include "workload/perf_model.hpp"

namespace gs::sim {

const char* to_string(ReAllocation a) {
  switch (a) {
    case ReAllocation::EqualShare:
      return "EqualShare";
    case ReAllocation::Waterfall:
      return "Waterfall";
  }
  return "?";
}

namespace {

power::BatteryConfig battery_config(AmpHours capacity) {
  power::BatteryConfig bc;
  bc.capacity = capacity.value() > 0.0 ? capacity : AmpHours(1e-9);
  return bc;
}

power::GridConfig cluster_grid_config(const workload::AppDescriptor& app,
                                      int servers) {
  power::GridConfig gc;
  // Normal-mode backstop plus charging headroom for every green server.
  gc.budget = (app.normal_full_power + Watts(80.0)) * double(servers);
  return gc;
}

}  // namespace

GreenCluster::GreenCluster(const workload::AppDescriptor& app,
                           GreenClusterConfig cfg)
    : cfg_(cfg),
      app_(app),
      perf_(app),
      power_model_(Watts(76.0)),
      profile_(perf_, power_model_),
      pss_(power::PssConfig{cfg.grid_charging}),
      controllers_(),
      grid_(cluster_grid_config(app, cfg.servers)),
      soa_(battery_config(cfg.battery_per_server),
           std::size_t(std::max(cfg.servers, 0))) {
  GS_REQUIRE(cfg_.servers > 0, "cluster needs at least one green server");
  // One-time construction; the epoch path never grows controllers_.
  // gs-lint: allow(hot-path-alloc)
  controllers_.reserve(std::size_t(cfg_.servers));
  for (int i = 0; i < cfg_.servers; ++i) {
    core::ControllerConfig ctl_cfg;
    ctl_cfg.strategy = cfg_.strategy;
    ctl_cfg.epoch = cfg_.epoch;
    ctl_cfg.health_aware = cfg_.health_aware;
    // gs-lint: allow(hot-path-alloc)
    controllers_.push_back(std::make_unique<core::GreenSprintController>(
        app_, profile_, power_model_.idle_power(), ctl_cfg));
  }
}

bool GreenCluster::set_strategy(core::StrategyKind kind) {
  if (kind == cfg_.strategy) return false;
  cfg_.strategy = kind;
  for (auto& ctl : controllers_) {
    ctl->set_strategy(kind, app_, power_model_.idle_power());
  }
  return true;
}

void GreenCluster::allocate_into(Watts re_total) {
  // Same arithmetic as the historical vector<Watts> allocate(): Watts is a
  // value wrapper, so the double expressions below are the identical
  // operation sequence on the identical operands.
  const std::size_t n = soa_.size();
  switch (cfg_.allocation) {
    case ReAllocation::EqualShare: {
      const double each = (re_total / double(n)).value();
      std::fill(soa_.share_w.begin(), soa_.share_w.end(), each);
      break;
    }
    case ReAllocation::Waterfall: {
      double left = re_total.value();
      for (std::size_t i = 0; i < n; ++i) {
        const double share = std::min(left, soa_.want_w[i]);
        soa_.share_w[i] = share;
        left -= share;
      }
      // Any remainder (all demands met) goes to the first server's
      // charger.
      if (left > 0.0 && n > 0) soa_.share_w[0] += left;
      break;
    }
  }
}

void GreenCluster::prepare_epoch(Watts re_total,
                                 const std::vector<double>& lambdas) {
  // Allocation claims: each server's maximal-sprint demand at its own
  // workload level (EqualShare ignores them; Waterfall fills by demand).
  const auto max_idx = profile_.lattice().index_of(server::max_sprint());
  const std::size_t n = soa_.size();
  for (std::size_t i = 0; i < n; ++i) {
    soa_.lambda[i] = lambdas[i];
    soa_.want_w[i] =
        profile_.power(profile_.level_for(lambdas[i]), max_idx).value();
  }
  allocate_into(re_total);
}

ClusterEpoch GreenCluster::step(Watts re_total, double lambda,
                                bool bursting,
                                const faults::EpochFaults* epoch_faults) {
  return step_hetero(re_total,
                     std::vector<double>(std::size_t(cfg_.servers), lambda),
                     bursting, epoch_faults);
}

void GreenCluster::apply_component_faults(
    const faults::EpochFaults& epoch_faults) {
  soa_.batteries.set_capacity_fade_all(epoch_faults.battery_capacity_factor);
  soa_.batteries.set_charge_derate_all(epoch_faults.charge_efficiency_factor);
  grid_.set_budget_derate(epoch_faults.grid_budget_factor);
}

ClusterEpoch GreenCluster::step_hetero(
    Watts re_total, const std::vector<double>& lambdas, bool bursting,
    const faults::EpochFaults* epoch_faults) {
  GS_REQUIRE(re_total.value() >= 0.0, "RE supply must be non-negative");
  GS_REQUIRE(lambdas.size() == std::size_t(cfg_.servers),
             "one arrival rate per green server required");
  prepare_epoch(re_total, lambdas);
  if (epoch_faults != nullptr) {
    apply_component_faults(*epoch_faults);
    // Faulted epochs take the single-pass reference path: the fault
    // branches stay out of the phased kernel, and the two paths are
    // bit-identical anyway (tests/sim/test_green_cluster_soa.cpp).
    return step_servers_reference(bursting, epoch_faults);
  }
  return step_servers_fast(bursting);
}

ClusterEpoch GreenCluster::step_hetero_reference(
    Watts re_total, const std::vector<double>& lambdas, bool bursting,
    const faults::EpochFaults* epoch_faults) {
  GS_REQUIRE(re_total.value() >= 0.0, "RE supply must be non-negative");
  GS_REQUIRE(lambdas.size() == std::size_t(cfg_.servers),
             "one arrival rate per green server required");
  prepare_epoch(re_total, lambdas);
  if (epoch_faults != nullptr) apply_component_faults(*epoch_faults);
  return step_servers_reference(bursting, epoch_faults);
}

// The phased SoA kernel. Bit-identity with the reference loop rests on
// two facts about the historical per-server iteration:
//  * the only *shared* mutable state inside the loop is the grid (drawn
//    during settlement) — batteries and controllers are strictly
//    per-server — so splitting the loop into phases that each run in
//    server index order preserves every operand of every FP operation;
//  * each ClusterEpoch accumulator is summed in ascending server order in
//    both forms, so the FP addition order per accumulator is unchanged.
ClusterEpoch GreenCluster::step_servers_fast(bool bursting) {
  const std::size_t n = soa_.size();
  ClusterEpoch out;
  // Caller-owned result (ClusterEpoch API), sized once per epoch.
  // gs-lint: allow(hot-path-alloc)
  out.settings.resize(n);
  const server::ServerSetting normal = server::normal_mode();
  auto& bank = soa_.batteries;

  // Phase 1: sustainable battery power — contiguous reads of the bank.
  for (std::size_t i = 0; i < n; ++i) {
    soa_.batt_w[i] = bank.max_discharge_power(i, cfg_.epoch).value();
  }

  // Phase 2: controller decisions (independent per server). Each
  // controller forecasts its *own* share: it has been observing the
  // policy's per-server allocation epoch after epoch, so the EWMA tracks
  // whatever the allocation policy hands this server.
  for (std::size_t i = 0; i < n; ++i) {
    const double lambda = soa_.lambda[i];
    auto& controller = *controllers_[i];
    const Watts batt_power(soa_.batt_w[i]);
    server::ServerSetting setting = controller.begin_epoch(lambda,
                                                           batt_power);
    const Watts green_avail = Watts(soa_.share_w[i]) + batt_power;
    if (setting != normal &&
        controller.demand(lambda, setting) > green_avail) {
      setting = controller.replan(green_avail);
    }
    soa_.setting[i] = setting;
    soa_.demand_w[i] = controller.demand(lambda, setting).value();
  }

  // Phase 3: power settlement, in server index order (the grid budget is
  // shared, so draw order is part of the contract).
  for (std::size_t i = 0; i < n; ++i) {
    const Watts grid_cap =
        soa_.setting[i] == normal ? app_.normal_full_power : Watts(0.0);
    power::BatteryRef battery(bank, i);
    const auto settle =
        pss_.settle(Watts(soa_.demand_w[i]), Watts(soa_.share_w[i]), battery,
                    grid_, cfg_.epoch, bursting, grid_cap);
    soa_.shortfall[i] = settle.deficit() ? 1 : 0;
    out.re_used += settle.re_used;
    out.batt_used += settle.batt_used;
    out.grid_used += settle.grid_used;
  }

  // Phase 4: delivered goodput and the queue-depth proxy (offered load
  // the server could not serve this epoch).
  for (std::size_t i = 0; i < n; ++i) {
    const double lambda = soa_.lambda[i];
    double goodput = perf_.goodput(soa_.setting[i], lambda);
    if (soa_.shortfall[i] != 0) {
      goodput = std::min(goodput, perf_.goodput(normal, lambda));
    }
    soa_.goodput[i] = goodput;
    const double backlog = lambda - goodput;
    soa_.queue_depth[i] = backlog > 0.0 ? backlog : 0.0;
  }

  // Phase 5: controller bookkeeping (independent per server).
  for (std::size_t i = 0; i < n; ++i) {
    const Watts green_avail = Watts(soa_.share_w[i]) + Watts(soa_.batt_w[i]);
    controllers_[i]->end_epoch(Watts(soa_.share_w[i]), Watts(soa_.demand_w[i]),
                               green_avail,
                               perf_.latency(soa_.setting[i], soa_.lambda[i]));
  }

  // Phase 6: accumulate the epoch result from the arrays.
  for (std::size_t i = 0; i < n; ++i) {
    out.settings[i] = soa_.setting[i];
    out.total_goodput += soa_.goodput[i];
    out.total_demand += Watts(soa_.demand_w[i]);
    if (soa_.setting[i] != normal) ++out.servers_sprinting;
    soa_.crashed[i] = 0;
  }
  return out;
}

ClusterEpoch GreenCluster::step_servers_reference(
    bool bursting, const faults::EpochFaults* epoch_faults) {
  const std::size_t n = soa_.size();
  ClusterEpoch out;
  // Caller-owned result (ClusterEpoch API), sized once per epoch.
  // gs-lint: allow(hot-path-alloc)
  out.settings.resize(n);
  const server::ServerSetting normal = server::normal_mode();

  for (std::size_t i = 0; i < n; ++i) {
    const double lambda = soa_.lambda[i];
    const Watts share(soa_.share_w[i]);
    power::BatteryRef battery(soa_.batteries, i);
    auto& controller = *controllers_[i];

    // Crashed green server: total outage for the epoch; its renewable
    // share still charges its battery through the PSS.
    if (epoch_faults != nullptr && epoch_faults->crashed(int(i))) {
      controller.observe_idle(lambda, share);
      const auto settle = pss_.settle(Watts(0.0), share, battery, grid_,
                                      cfg_.epoch, bursting, Watts(0.0));
      out.settings[i] = normal;
      out.re_used += settle.re_used;
      ++out.servers_crashed;
      soa_.crashed[i] = 1;
      soa_.setting[i] = normal;
      soa_.goodput[i] = 0.0;
      soa_.queue_depth[i] = lambda;
      soa_.shortfall[i] = 1;
      soa_.prev_deficit[i] = 1;  // reboot recovers through hysteresis
      continue;
    }
    soa_.crashed[i] = 0;

    power::PssFaultState pss_fault;
    if (epoch_faults != nullptr) {
      controller.notify_health(soa_.prev_deficit[i] != 0,
                               epoch_faults->sensor_dropout);
      pss_fault.battery_offline = epoch_faults->battery_offline;
      pss_fault.switch_latency_fraction =
          epoch_faults->switch_latency_fraction;
    }
    const Watts batt_power =
        epoch_faults != nullptr && epoch_faults->battery_offline
            ? Watts(0.0)
            : battery.max_discharge_power(cfg_.epoch);
    soa_.batt_w[i] = batt_power.value();
    server::ServerSetting setting = controller.begin_epoch(lambda,
                                                           batt_power);
    const Watts green_avail = share + batt_power;
    if (setting != normal &&
        controller.demand(lambda, setting) > green_avail) {
      setting = controller.replan(green_avail);
    }
    const Watts demand = controller.demand(lambda, setting);
    soa_.setting[i] = setting;
    soa_.demand_w[i] = demand.value();
    const Watts grid_cap =
        setting == normal ? app_.normal_full_power : Watts(0.0);
    const auto settle = pss_.settle(demand, share, battery, grid_,
                                    cfg_.epoch, bursting, grid_cap,
                                    pss_fault);
    double goodput = perf_.goodput(setting, lambda);
    if (epoch_faults != nullptr && epoch_faults->speed(int(i)) < 1.0) {
      goodput *= epoch_faults->speed(int(i));
    }
    if (settle.deficit()) {
      goodput = std::min(goodput, perf_.goodput(normal, lambda));
    }
    controller.end_epoch(share, demand, green_avail,
                         perf_.latency(setting, lambda));
    soa_.shortfall[i] = settle.deficit() ? 1 : 0;
    soa_.goodput[i] = goodput;
    const double backlog = lambda - goodput;
    soa_.queue_depth[i] = backlog > 0.0 ? backlog : 0.0;
    if (epoch_faults != nullptr) {
      soa_.prev_deficit[i] = settle.deficit() ? 1 : 0;
      if (controller.degraded()) ++out.servers_degraded;
    }

    out.settings[i] = setting;
    out.total_goodput += goodput;
    out.total_demand += demand;
    out.re_used += settle.re_used;
    out.batt_used += settle.batt_used;
    out.grid_used += settle.grid_used;
    if (setting != normal) ++out.servers_sprinting;
  }
  return out;
}

void GreenCluster::idle_step(Watts re_total, double background_lambda) {
  const std::size_t n = soa_.size();
  // Forecast consistency: divide the idle supply by the same policy the
  // burst path uses (planned against maximum-sprint demand), so each
  // controller's renewable EWMA predicts the share it will actually get.
  const Watts max_demand = profile_.power(
      profile_.num_levels() - 1,
      profile_.lattice().index_of(server::max_sprint()));
  for (std::size_t i = 0; i < n; ++i) {
    soa_.want_w[i] = max_demand.value();
  }
  allocate_into(re_total);
  for (std::size_t i = 0; i < n; ++i) {
    controllers_[i]->observe_idle(background_lambda, Watts(soa_.share_w[i]));
  }
  // Normal-mode power comes from the grid; all of the RE share plus the
  // grid charger can refill the battery. Settlement order = server order
  // (shared grid budget).
  for (std::size_t i = 0; i < n; ++i) {
    power::BatteryRef battery(soa_.batteries, i);
    (void)pss_.settle(Watts(0.0), Watts(soa_.share_w[i]), battery, grid_,
                      cfg_.epoch, /*bursting=*/false, Watts(0.0));
  }
}

double GreenCluster::mean_soc() const {
  return soa_.batteries.total_soc() / double(soa_.batteries.size());
}

double GreenCluster::total_equivalent_cycles() const {
  return soa_.batteries.total_equivalent_cycles();
}

void GreenCluster::save_state(ckpt::StateWriter& w) const {
  w.begin_section("green_cluster", kStateVersion);
  w.u64(std::uint64_t(cfg_.servers));
  grid_.save_state(w);
  for (std::size_t i = 0; i < soa_.batteries.size(); ++i) {
    soa_.batteries.save_state_element(w, i);
  }
  for (const auto& c : controllers_) c->save_state(w);
  for (std::size_t i = 0; i < soa_.prev_deficit.size(); ++i) {
    w.boolean(soa_.prev_deficit[i] != 0);
  }
  w.end_section();
}

void GreenCluster::load_state(ckpt::StateReader& r) {
  r.begin_section("green_cluster", kStateVersion);
  const std::uint64_t servers = r.u64();
  if (servers != std::uint64_t(cfg_.servers)) {
    throw ckpt::SnapshotError(
        "cluster snapshot holds " + std::to_string(servers) +
        " green servers, cluster is configured for " +
        std::to_string(cfg_.servers));
  }
  grid_.load_state(r);
  for (std::size_t i = 0; i < soa_.batteries.size(); ++i) {
    soa_.batteries.load_state_element(r, i);
  }
  for (const auto& c : controllers_) c->load_state(r);
  for (std::size_t i = 0; i < soa_.prev_deficit.size(); ++i) {
    soa_.prev_deficit[i] = r.boolean() ? 1 : 0;
  }
  r.end_section();
}

}  // namespace gs::sim
