// Checkpoint-directory primitives shared by the single-process
// checkpointed sweep (sim/sweep.cpp) and the multi-process driver
// (sim/sweep_mp.cpp). A sweep directory holds:
//
//   sweep.manifest     campaign identity (cell count + per-cell scenario
//                      fingerprints), written atomically
//   cell-NNNNNN.gsck   one snapshot per completed cell, written atomically
//                      (temp + rename) and keyed by scenario fingerprint
//
// Every writer uses the same byte encoding, so cells produced by any mix
// of threads, processes, and resumed runs are interchangeable and a merge
// is bit-identical to a single uninterrupted run_sweep.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/burst_runner.hpp"

namespace gs::sim::sweep_ckpt {

/// "cell-NNNNNN.gsck" (zero-padded to 6 digits).
[[nodiscard]] std::string cell_file_name(std::size_t i);

/// Write the campaign manifest (atomic).
void write_manifest(const std::string& dir,
                    const std::vector<Scenario>& scenarios);

/// Validate an existing manifest against this campaign; throws
/// ckpt::SnapshotError on cell-count or scenario mismatch.
void check_manifest(const std::string& dir,
                    const std::vector<Scenario>& scenarios);

/// Create the directory if missing, then check the manifest when resuming
/// into an existing one or (re)write it otherwise. Concurrent callers are
/// safe: the manifest write is atomic and campaign-deterministic, so
/// racing writers produce identical bytes.
void ensure_manifest(const std::string& dir,
                     const std::vector<Scenario>& scenarios, bool resume);

/// Persist cell i (atomic, keyed by scenario_fingerprint(sc)).
void write_cell(const std::string& dir, std::size_t i, const Scenario& sc,
                const BurstResult& result);

/// True when cell i exists on disk (cheap liveness probe; integrity is
/// checked by load_cell).
[[nodiscard]] bool cell_exists(const std::string& dir, std::size_t i);

/// Load cell i into *out; returns false when the snapshot is missing,
/// was produced by a different scenario, or is corrupt (callers recompute).
[[nodiscard]] bool load_cell(const std::string& dir, std::size_t i,
                             const Scenario& sc, BurstResult* out);

}  // namespace gs::sim::sweep_ckpt
