// Whole-rack co-simulation: the paper's 10-server prototype in one step
// loop. During a burst the 7 grid-powered servers sprint sub-optimally
// within the 1000 W grid budget (Section IV-A: "the grid can
// conservatively support the other 7 servers sprinting at sub-optimal
// performance") while the 3 green servers sprint from the green bus via
// GreenCluster. Reports cluster-level goodput and the rack's aggregate
// power draw — the quantities behind Fig. 1's emergency ovals and the
// cluster-wide speedup the per-green-server figures do not show.
#pragma once

#include <cstdint>

#include "faults/fault_injector.hpp"
#include "sim/cluster.hpp"
#include "sim/green_cluster.hpp"
#include "tsdb/fwd.hpp"

namespace gs::sim {

struct RackConfig {
  ClusterConfig cluster;       ///< 10 servers, 3 green, 1000 W budget.
  GreenClusterConfig green;    ///< Strategy/batteries of the green group
                               ///< (servers forced to cluster.green_servers).
  int panels = 3;
};

struct RackEpoch {
  server::ServerSetting grid_setting;  ///< Uniform sub-optimal sprint.
  ClusterEpoch green;                  ///< Per-server green-group epoch.
  double grid_goodput = 0.0;           ///< All grid servers together.
  double cluster_goodput = 0.0;        ///< Whole rack.
  Watts grid_servers_power{0.0};
  Watts rack_power{0.0};               ///< Grid servers + green group.
};

class RackRunner {
 public:
  RackRunner(const workload::AppDescriptor& app, RackConfig cfg);

  /// One burst epoch at per-server offered load `lambda` under rack-level
  /// renewable output `re_total`. `epoch_faults` (optional) is this epoch's
  /// injected fault state: a grid brownout shrinks the PDU share carrying
  /// the grid servers, and the green group sees the full per-server fault
  /// set through GreenCluster::step. Null keeps the exact fault-free path.
  RackEpoch step(Watts re_total, double lambda,
                 const faults::EpochFaults* epoch_faults = nullptr);

  /// Idle epoch: everything at Normal, batteries recharge.
  void idle_step(Watts re_total, double background_lambda);

  /// Whole-rack goodput if every server ran Normal mode (baseline).
  [[nodiscard]] double normal_cluster_goodput(double lambda) const;

  [[nodiscard]] const RackConfig& config() const { return cfg_; }
  [[nodiscard]] GreenCluster& green_cluster() { return green_; }

  /// Stream each burst epoch's rack and green-group aggregates into
  /// `engine` (which must outlive this runner) under `rack`. The runner
  /// has no external clock, so the time axis is epochs-stepped (burst or
  /// idle) times the green epoch length.
  void attach_tsdb(tsdb::Engine* engine, std::uint32_t rack = 0) {
    tsdb_ = engine;
    tsdb_rack_ = rack;
  }

 private:
  RackConfig cfg_;
  workload::AppDescriptor app_;
  workload::PerfModel perf_;
  server::ServerPowerModel power_model_;
  GreenCluster green_;
  tsdb::Engine* tsdb_ = nullptr;
  std::uint32_t tsdb_rack_ = 0;
  std::uint64_t epochs_stepped_ = 0;
};

}  // namespace gs::sim
