#include "sim/scenario.hpp"

#include "common/keyed_cache.hpp"

namespace gs::sim {

namespace {

std::uint64_t hash_string(std::uint64_t h, const std::string& s) {
  h = hash_combine(h, std::uint64_t(s.size()));
  for (const char c : s) h = hash_combine(h, std::uint64_t(std::uint8_t(c)));
  return h;
}

}  // namespace

std::uint64_t scenario_fingerprint(const Scenario& sc) {
  std::uint64_t h = 0x5ce9a610ull;
  h = hash_string(h, sc.app.name);
  h = hash_string(h, sc.app.metric);
  h = hash_combine(h, sc.app.memory_gb);
  h = hash_combine(h, sc.app.qos.percentile);
  h = hash_combine(h, sc.app.qos.limit.value());
  h = hash_combine(h, sc.app.base_service_s);
  h = hash_combine(h, sc.app.freq_sensitivity);
  h = hash_combine(h, sc.app.congestion_delta);
  h = hash_combine(h, sc.app.normal_full_power.value());
  h = hash_combine(h, sc.app.sprint_peak_power.value());
  h = hash_string(h, sc.green.name);
  h = hash_combine(h, std::uint64_t(sc.green.green_servers));
  h = hash_combine(h, std::uint64_t(sc.green.panels));
  h = hash_combine(h, sc.green.battery.value());
  h = hash_combine(h, std::uint64_t(sc.strategy));
  h = hash_combine(h, std::uint64_t(sc.availability));
  h = hash_combine(h, sc.burst_duration.value());
  h = hash_combine(h, std::uint64_t(sc.burst_intensity));
  h = hash_combine(h, std::uint64_t(sc.burst_shape));
  h = hash_combine(h, sc.epoch.value());
  h = hash_combine(h, sc.warmup.value());
  h = hash_combine(h, sc.background_load);
  h = hash_combine(h, sc.seed);
  h = hash_combine(h, std::uint64_t(sc.use_des));
  h = hash_combine(h, std::uint64_t(sc.thermal_model));
  h = hash_combine(h, sc.pcm_capacity_j);
  for (const faults::FaultClass cls : faults::all_fault_classes()) {
    h = hash_combine(h, sc.faults.intensity(cls));
  }
  h = hash_combine(h, sc.faults.seed);
  // Correlation and health-awareness are mixed in only when non-default so
  // every pre-existing scenario keeps its fingerprint (and its checkpoint
  // cell keys) unchanged.
  if (sc.fault_correlation.enabled() || sc.health_aware) {
    const faults::CorrelationSpec& c = sc.fault_correlation;
    h = hash_combine(h, std::uint64_t{0x0c0ffee1ull});
    h = hash_combine(h, c.storm_intensity);
    h = hash_combine(h, c.front_spacing_epochs);
    h = hash_combine(h, std::uint64_t(c.front_min_epochs));
    h = hash_combine(h, std::uint64_t(c.front_max_epochs));
    h = hash_combine(h, c.front_boost);
    h = hash_combine(h, c.cascade_hazard);
    h = hash_combine(h, std::uint64_t(c.cascade_window_epochs));
    h = hash_combine(h, std::uint64_t(c.servers_per_rack));
    h = hash_combine(h, c.regime_on);
    h = hash_combine(h, c.regime_off);
    h = hash_combine(h, c.regime_boost);
    h = hash_combine(h, c.regime_damp);
    h = hash_combine(h, c.seed);
    h = hash_combine(h, std::uint64_t(sc.health_aware));
  }
  return h;
}

GreenConfig re_batt() { return {"RE-Batt", 3, 3, AmpHours(10.0)}; }
GreenConfig re_only() { return {"REOnly", 3, 3, AmpHours(0.0)}; }
GreenConfig re_sbatt() { return {"RE-SBatt", 3, 3, AmpHours(3.2)}; }
GreenConfig sre_sbatt() { return {"SRE-SBatt", 3, 2, AmpHours(3.2)}; }

std::vector<GreenConfig> table1_configs() {
  return {re_batt(), re_only(), re_sbatt(), sre_sbatt()};
}

}  // namespace gs::sim
