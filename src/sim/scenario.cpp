#include "sim/scenario.hpp"

namespace gs::sim {

GreenConfig re_batt() { return {"RE-Batt", 3, 3, AmpHours(10.0)}; }
GreenConfig re_only() { return {"REOnly", 3, 3, AmpHours(0.0)}; }
GreenConfig re_sbatt() { return {"RE-SBatt", 3, 3, AmpHours(3.2)}; }
GreenConfig sre_sbatt() { return {"SRE-SBatt", 3, 2, AmpHours(3.2)}; }

std::vector<GreenConfig> table1_configs() {
  return {re_batt(), re_only(), re_sbatt(), sre_sbatt()};
}

}  // namespace gs::sim
