#include "sim/oracle_runner.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "faults/fault_injector.hpp"
#include "power/solar_array.hpp"
#include "server/power_model.hpp"
#include "workload/perf_model.hpp"

namespace gs::sim {

OracleResult run_oracle(const Scenario& sc) {
  GS_REQUIRE(sc.green.green_servers > 0, "scenario needs green servers");
  trace::SolarTraceConfig trace_cfg;
  trace_cfg.seed = sc.seed;
  const auto solar_ptr = trace::shared_solar_trace(trace_cfg);
  const trace::SolarTrace& solar = *solar_ptr;
  const auto window = trace::shared_solar_window(trace_cfg, sc.burst_duration,
                                                 sc.availability);
  GS_REQUIRE(window.has_value(),
             "solar trace has no window of the requested availability");

  const power::SolarArray array({sc.green.panels, Watts(275.0), 0.77});
  const workload::PerfModel perf(sc.app);
  const server::ServerPowerModel pmodel(Watts(76.0));
  const auto profile_ptr = core::ProfileTable::shared(perf, pmodel);
  const core::ProfileTable& profile = *profile_ptr;

  // Fault injection: the oracle is clairvoyant, so it plans against the
  // *faulted* renewable supply (per-epoch solar derate) and the worst
  // battery fade seen over the burst — the offline-optimal bound under the
  // same failure history the online strategies face. The all-zero default
  // spec keeps the exact fault-free arithmetic.
  const faults::FaultInjector injector(sc.faults, sc.burst_duration, sc.epoch,
                                       /*servers=*/1);
  double min_battery_factor = 1.0;

  const auto n_epochs =
      std::size_t(sc.burst_duration.value() / sc.epoch.value());
  std::vector<Watts> supply;
  supply.reserve(n_epochs);
  for (std::size_t e = 0; e < n_epochs; ++e) {
    const Seconds t = *window + sc.epoch * double(e);
    Watts s = array.ac_output(solar.at(t)) / double(sc.green.green_servers);
    if (injector.enabled()) {
      const faults::EpochFaults ef = injector.at(sc.epoch * double(e));
      s = s * ef.solar_factor;
      min_battery_factor =
          std::min(min_battery_factor, ef.battery_capacity_factor);
    }
    supply.push_back(s);
  }

  power::BatteryConfig bc;
  // A zero-capacity battery is represented by a vanishing unit (the DP
  // then has no battery energy to spend).
  bc.capacity = sc.green.battery.value() > 0.0 ? sc.green.battery
                                               : AmpHours(1e-9);
  if (injector.enabled()) {
    bc.capacity = AmpHours(bc.capacity.value() * min_battery_factor);
  }

  const double lambda = perf.intensity_load(sc.burst_intensity);
  OracleResult out;
  out.plan = core::oracle_plan(profile, supply, lambda, bc, sc.epoch,
                               sc.app.normal_full_power);
  out.normal_goodput = perf.goodput(server::normal_mode(), lambda);
  out.normalized_perf = out.normal_goodput > 0.0
                            ? out.plan.mean_goodput / out.normal_goodput
                            : 0.0;
  return out;
}

}  // namespace gs::sim
