// TCO / profit-on-investment model of Figure 11 (paper Section IV-F).
//
// Revenue from sprinting accrues at $0.28 per KW of sprint power per
// minute; against it stand the amortized capital costs of the green
// provision: PV at $4.74/W over a 25-year panel lifetime, batteries at
// $50/KW/year, and PCM wax at a negligible <0.1% of server cost. The
// paper's Fig. 11 plots the net benefit per KW per year against total
// yearly sprinting hours; the crossover lands around 14 h/yr.
#pragma once

#include <vector>

namespace gs::tco {

struct TcoParams {
  double revenue_per_kw_min = 0.28;   ///< $/KW/minute of sprint operation.
  double pv_capex_per_w = 4.74;       ///< $ per W of PV capacity.
  double pv_lifetime_years = 25.0;
  double battery_cost_per_kw_year = 50.0;
  /// PCM cost as a fraction of a ~$3000 server, per KW of sprint power.
  double pcm_cost_per_kw_year = 1.0;  ///< <0.1% of server cost; ~negligible.
};

/// Amortized yearly cost of 1 KW of green sprint provision ($/KW/yr).
[[nodiscard]] double yearly_cost_per_kw(const TcoParams& p);

/// Net benefit on revenue ($/KW/yr) for a given total of sprinting hours
/// in the year (Fig. 11 y-axis).
[[nodiscard]] double benefit_per_kw_year(const TcoParams& p,
                                         double sprint_hours_per_year);

/// Sprinting hours per year at which the investment breaks even.
[[nodiscard]] double breakeven_hours(const TcoParams& p);

/// The Fig. 11 series: benefit at each requested x-axis point.
[[nodiscard]] std::vector<double> benefit_series(
    const TcoParams& p, const std::vector<double>& hours);

/// Battery wear cost: VRLA units survive ~1300 cycles at 40% DoD
/// (Section II); each equivalent cycle consumes a share of the
/// replacement capex.
struct BatteryWearParams {
  double replacement_cost = 150.0;  ///< $ per server-level VRLA unit.
  double cycle_life = 1300.0;       ///< Cycles at the operating DoD.
};

/// Dollar cost of the given number of equivalent cycles.
[[nodiscard]] double wear_cost(const BatteryWearParams& p,
                               double equivalent_cycles);

/// Yearly wear cost from a measured cycles-per-day rate.
[[nodiscard]] double yearly_wear_cost(const BatteryWearParams& p,
                                      double cycles_per_day);

}  // namespace gs::tco
