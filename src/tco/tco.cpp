#include "tco/tco.hpp"

#include "common/assert.hpp"

namespace gs::tco {

double yearly_cost_per_kw(const TcoParams& p) {
  GS_REQUIRE(p.pv_lifetime_years > 0.0, "PV lifetime must be positive");
  const double pv = p.pv_capex_per_w * 1000.0 / p.pv_lifetime_years;
  return pv + p.battery_cost_per_kw_year + p.pcm_cost_per_kw_year;
}

double benefit_per_kw_year(const TcoParams& p, double sprint_hours) {
  GS_REQUIRE(sprint_hours >= 0.0, "sprint hours must be non-negative");
  const double revenue = p.revenue_per_kw_min * 60.0 * sprint_hours;
  return revenue - yearly_cost_per_kw(p);
}

double breakeven_hours(const TcoParams& p) {
  return yearly_cost_per_kw(p) / (p.revenue_per_kw_min * 60.0);
}

std::vector<double> benefit_series(const TcoParams& p,
                                   const std::vector<double>& hours) {
  std::vector<double> out;
  out.reserve(hours.size());
  for (double h : hours) out.push_back(benefit_per_kw_year(p, h));
  return out;
}

double wear_cost(const BatteryWearParams& p, double equivalent_cycles) {
  GS_REQUIRE(equivalent_cycles >= 0.0, "cycles must be non-negative");
  GS_REQUIRE(p.cycle_life > 0.0, "cycle life must be positive");
  return p.replacement_cost * equivalent_cycles / p.cycle_life;
}

double yearly_wear_cost(const BatteryWearParams& p, double cycles_per_day) {
  return wear_cost(p, cycles_per_day * 365.0);
}

}  // namespace gs::tco
