#include "tco/carbon.hpp"

#include "common/assert.hpp"

namespace gs::tco {

namespace {
double kwh(Joules e) { return e.value() / 3.6e6; }
}  // namespace

double co2_grams(const CarbonParams& p, Joules grid, Joules solar,
                 Joules battery, double battery_charge_grid_fraction) {
  GS_REQUIRE(grid.value() >= 0.0 && solar.value() >= 0.0 &&
                 battery.value() >= 0.0,
             "energies must be non-negative");
  GS_REQUIRE(battery_charge_grid_fraction >= 0.0 &&
                 battery_charge_grid_fraction <= 1.0,
             "charge fraction must be in [0,1]");
  const double battery_factor =
      battery_charge_grid_fraction * p.grid_g_per_kwh +
      (1.0 - battery_charge_grid_fraction) * p.solar_g_per_kwh +
      p.battery_adder_g_per_kwh;
  return kwh(grid) * p.grid_g_per_kwh + kwh(solar) * p.solar_g_per_kwh +
         kwh(battery) * battery_factor;
}

double co2_savings_grams(const CarbonParams& p, Joules displaced) {
  GS_REQUIRE(displaced.value() >= 0.0, "energy must be non-negative");
  return kwh(displaced) * (p.grid_g_per_kwh - p.solar_g_per_kwh);
}

double yearly_kg(double grams_per_day) {
  return grams_per_day * 365.0 / 1000.0;
}

}  // namespace gs::tco
