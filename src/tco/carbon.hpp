// Carbon accounting for the green provision. The paper motivates
// renewables partly by "the environmental challenges brought by power
// consumption and carbon emissions"; this module quantifies the claim:
// lifecycle emission factors per source, applied to the energy-by-source
// accounting the simulators already produce.
#pragma once

#include "common/units.hpp"

namespace gs::tco {

struct CarbonParams {
  /// Grid emission factor (gCO2e per kWh); ~400 is a typical fossil-heavy
  /// mix, ~50 a very clean one.
  double grid_g_per_kwh = 400.0;
  /// Lifecycle solar PV factor (manufacturing amortized), gCO2e/kWh.
  double solar_g_per_kwh = 45.0;
  /// Battery round-trip is charged at the emission factor of whatever
  /// charged it; this extra adder covers cell manufacturing amortization.
  double battery_adder_g_per_kwh = 20.0;
};

/// Grams CO2e emitted by the given energy drawn from each source
/// (battery energy is attributed to the mix that charged it via
/// `battery_charge_grid_fraction`).
[[nodiscard]] double co2_grams(const CarbonParams& p, Joules grid,
                               Joules solar, Joules battery,
                               double battery_charge_grid_fraction = 0.0);

/// CO2e avoided by serving `displaced` energy from solar instead of grid.
[[nodiscard]] double co2_savings_grams(const CarbonParams& p,
                                       Joules displaced);

/// Convenience: grams -> kilograms per year given a per-day measurement.
[[nodiscard]] double yearly_kg(double grams_per_day);

}  // namespace gs::tco
