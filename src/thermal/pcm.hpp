// Phase-change-material thermal buffer (paper Section II, "Thermal
// concerns"). The paper assumes servers carry a PCM package (Skach et al.,
// ISCA'15) that absorbs sprint heat and "can delay the onset of thermal
// limits by hours"; GreenSprint treats thermal headroom as given. We model
// the assumption so it is checkable: a lumped latent-heat reservoir that
// absorbs power above the sustained cooling capacity and releases it when
// load drops. An ablation bench explores how small the PCM mass can get
// before 60-minute sprints hit the thermal wall.
#pragma once

#include <cstdint>

#include "ckpt/fwd.hpp"
#include "common/units.hpp"

namespace gs::thermal {

struct PcmConfig {
  /// Heat the server's baseline cooling removes continuously. Sprint power
  /// above this must be buffered by the PCM.
  Watts sustained_cooling{105.0};
  /// Latent-heat budget of the PCM package. Paraffin-class PCM stores
  /// ~200 kJ/kg; a few kg per server buffers an hour-scale sprint
  /// (55 W excess * 3600 s = 198 kJ ~ 1 kg).
  Joules latent_capacity{1.2e6};
  /// Extra heat extraction while below sustained cooling (re-freeze rate).
  Watts refreeze_rate{40.0};
};

/// Lumped thermal buffer; absorb() advances one epoch and reports whether
/// the server stayed within thermal limits.
class PcmBuffer {
 public:
  explicit PcmBuffer(PcmConfig cfg);

  /// Advance dt with the server dissipating `power`. Returns false when the
  /// PCM is saturated and the chip would exceed its thermal limit (the
  /// sprint must stop).
  bool absorb(Watts power, Seconds dt);

  /// Stored sprint heat (0 = fully frozen).
  [[nodiscard]] Joules stored() const { return stored_; }
  [[nodiscard]] double fill_fraction() const;
  [[nodiscard]] bool saturated() const;

  /// Longest sprint at `power` starting from the current state.
  [[nodiscard]] Seconds time_to_saturation(Watts power) const;

  [[nodiscard]] const PcmConfig& config() const { return cfg_; }

  // --- Checkpoint/restore (src/ckpt) --------------------------------------
  static constexpr std::uint32_t kStateVersion = 1;
  void save_state(ckpt::StateWriter& w) const;
  void load_state(ckpt::StateReader& r);

 private:
  PcmConfig cfg_;
  Joules stored_{0.0};
};

}  // namespace gs::thermal
