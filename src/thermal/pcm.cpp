#include "thermal/pcm.hpp"

#include <algorithm>
#include <limits>

#include "ckpt/state_io.hpp"
#include "common/assert.hpp"

namespace gs::thermal {

PcmBuffer::PcmBuffer(PcmConfig cfg) : cfg_(cfg) {
  GS_REQUIRE(cfg_.latent_capacity.value() > 0.0,
             "PCM capacity must be positive");
  GS_REQUIRE(cfg_.sustained_cooling.value() > 0.0,
             "cooling capacity must be positive");
}

bool PcmBuffer::absorb(Watts power, Seconds dt) {
  GS_REQUIRE(power.value() >= 0.0, "power must be non-negative");
  GS_REQUIRE(dt.value() > 0.0, "dt must be positive");
  const Watts excess = power - cfg_.sustained_cooling;
  if (excess.value() > 0.0) {
    stored_ += excess * dt;
    if (stored_ > cfg_.latent_capacity) {
      stored_ = cfg_.latent_capacity;
      return false;
    }
    return true;
  }
  // Below sustained cooling: spare capacity plus the refreeze loop drains
  // the buffer.
  const Watts drain = Watts(-excess.value()) + cfg_.refreeze_rate;
  stored_ -= drain * dt;
  stored_ = std::max(stored_, Joules(0.0));
  return true;
}

double PcmBuffer::fill_fraction() const {
  return stored_ / cfg_.latent_capacity;
}

bool PcmBuffer::saturated() const {
  return stored_.value() >= cfg_.latent_capacity.value() * (1.0 - 1e-9);
}

Seconds PcmBuffer::time_to_saturation(Watts power) const {
  const Watts excess = power - cfg_.sustained_cooling;
  if (excess.value() <= 0.0) {
    return Seconds(std::numeric_limits<double>::infinity());
  }
  return (cfg_.latent_capacity - stored_) / excess;
}

void PcmBuffer::save_state(ckpt::StateWriter& w) const {
  w.begin_section("pcm", kStateVersion);
  w.f64(stored_.value());
  w.end_section();
}

void PcmBuffer::load_state(ckpt::StateReader& r) {
  r.begin_section("pcm", kStateVersion);
  stored_ = Joules(r.f64());
  r.end_section();
}

}  // namespace gs::thermal
