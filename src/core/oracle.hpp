// Offline-optimal sprint schedule (the "oracle"): given the *future*
// renewable supply of every epoch in a burst, compute the setting sequence
// that maximizes total SLA-goodput subject to the battery's Peukert-limited
// energy and DoD cap. Online strategies cannot beat this plan; the gap
// between each strategy and the oracle (regret) quantifies how much the
// intermittency of the supply actually costs — an ablation the paper
// motivates but does not report.
//
// Implementation: dynamic programming over (epoch, quantized battery
// state). Battery state is the effective (Peukert-corrected) Ah remaining
// before the DoD cap, discretized on a uniform grid; surplus renewable
// charging between sprint epochs is modeled like the PSS does.
#pragma once

#include <vector>

#include "core/profile_table.hpp"
#include "power/battery.hpp"

namespace gs::core {

struct OracleConfig {
  int battery_grid = 400;  ///< Discretization of the usable battery range.
};

struct OraclePlan {
  std::vector<server::ServerSetting> settings;  ///< One per epoch.
  double total_goodput = 0.0;   ///< Sum of per-epoch goodput (req/s units).
  double mean_goodput = 0.0;
};

/// Compute the optimal plan.
///  re_supply: green power available to the server in each epoch (W);
///  lambda:    offered load (req/s), constant over the burst;
///  battery:   configuration of the (initially full) server battery;
///  grid_backstop: grid power available when running Normal mode.
[[nodiscard]] OraclePlan oracle_plan(const ProfileTable& profile,
                                     const std::vector<Watts>& re_supply,
                                     double lambda,
                                     const power::BatteryConfig& battery,
                                     Seconds epoch, Watts grid_backstop,
                                     OracleConfig cfg = {});

}  // namespace gs::core
