#include "core/forecaster.hpp"

#include "common/assert.hpp"

namespace gs::core {

const char* to_string(ForecasterKind k) {
  switch (k) {
    case ForecasterKind::Ewma:
      return "EWMA";
    case ForecasterKind::Persistence:
      return "Persistence";
    case ForecasterKind::ClearSky:
      return "ClearSky";
  }
  return "?";
}

std::unique_ptr<RenewableForecaster> make_forecaster(
    ForecasterKind kind, ClearSkyForecaster::EnvelopeFn envelope,
    Watts peak) {
  switch (kind) {
    case ForecasterKind::Ewma:
      return std::make_unique<EwmaForecaster>();
    case ForecasterKind::Persistence:
      return std::make_unique<PersistenceForecaster>();
    case ForecasterKind::ClearSky:
      GS_REQUIRE(bool(envelope), "ClearSky forecaster needs an envelope");
      GS_REQUIRE(peak.value() > 0.0,
                 "ClearSky forecaster needs a positive peak");
      return std::make_unique<ClearSkyForecaster>(std::move(envelope), peak);
  }
  GS_REQUIRE(false, "unknown forecaster kind");
  return nullptr;
}

}  // namespace gs::core
