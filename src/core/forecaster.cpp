#include "core/forecaster.hpp"

#include "ckpt/common_state.hpp"
#include "common/assert.hpp"

namespace gs::core {

void EwmaForecaster::save_state(ckpt::StateWriter& w) const {
  w.begin_section("forecaster.ewma", kStateVersion);
  ckpt::save_ewma(w, ewma_);
  w.end_section();
}

void EwmaForecaster::load_state(ckpt::StateReader& r) {
  r.begin_section("forecaster.ewma", kStateVersion);
  ckpt::load_ewma(r, ewma_);
  r.end_section();
}

void PersistenceForecaster::save_state(ckpt::StateWriter& w) const {
  w.begin_section("forecaster.persistence", kStateVersion);
  w.f64(last_.value());
  w.end_section();
}

void PersistenceForecaster::load_state(ckpt::StateReader& r) {
  r.begin_section("forecaster.persistence", kStateVersion);
  last_ = Watts(r.f64());
  r.end_section();
}

void ClearSkyForecaster::save_state(ckpt::StateWriter& w) const {
  w.begin_section("forecaster.clearsky", kStateVersion);
  ckpt::save_ewma(w, index_);
  w.end_section();
}

void ClearSkyForecaster::load_state(ckpt::StateReader& r) {
  r.begin_section("forecaster.clearsky", kStateVersion);
  ckpt::load_ewma(r, index_);
  r.end_section();
}

const char* to_string(ForecasterKind k) {
  switch (k) {
    case ForecasterKind::Ewma:
      return "EWMA";
    case ForecasterKind::Persistence:
      return "Persistence";
    case ForecasterKind::ClearSky:
      return "ClearSky";
  }
  return "?";
}

std::unique_ptr<RenewableForecaster> make_forecaster(
    ForecasterKind kind, ClearSkyForecaster::EnvelopeFn envelope,
    Watts peak) {
  switch (kind) {
    case ForecasterKind::Ewma:
      return std::make_unique<EwmaForecaster>();
    case ForecasterKind::Persistence:
      return std::make_unique<PersistenceForecaster>();
    case ForecasterKind::ClearSky:
      GS_REQUIRE(bool(envelope), "ClearSky forecaster needs an envelope");
      GS_REQUIRE(peak.value() > 0.0,
                 "ClearSky forecaster needs a positive peak");
      return std::make_unique<ClearSkyForecaster>(std::move(envelope), peak);
  }
  GS_REQUIRE(false, "unknown forecaster kind");
  return nullptr;
}

}  // namespace gs::core
