#include "core/hybrid.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <string>

#include "ckpt/state_io.hpp"
#include "common/assert.hpp"
#include "common/keyed_cache.hpp"

namespace gs::core {

namespace {

/// Everything the seed bootstrap depends on. The profile is represented by
/// its content fingerprint, so two controllers over equal tables share one
/// seeded Q-table even if the ProfileTable instances differ.
struct SeedKey {
  std::uint64_t profile_fp;
  double idle_w;
  double peak_w;
  double qos_limit_s;
  double learning_rate;
  double discount;
  double supply_step;
  double max_violation;
  double max_qos_reward;
  int seed_sweeps;

  bool operator==(const SeedKey& o) const = default;
};

struct SeedKeyHash {
  std::size_t operator()(const SeedKey& k) const {
    std::uint64_t h = k.profile_fp;
    h = hash_combine(h, k.idle_w);
    h = hash_combine(h, k.peak_w);
    h = hash_combine(h, k.qos_limit_s);
    h = hash_combine(h, k.learning_rate);
    h = hash_combine(h, k.discount);
    h = hash_combine(h, k.supply_step);
    h = hash_combine(h, k.max_violation);
    h = hash_combine(h, k.max_qos_reward);
    h = hash_combine(h, std::uint64_t(k.seed_sweeps));
    return std::size_t(h);
  }
};

// Process-wide Algorithm-1 seed-table cache. Thread safety: race-free
// static initialization plus an internally synchronized
// (capability-annotated) KeyedCache; safe to call from concurrent sweep
// cells.
KeyedCache<SeedKey, QTable, SeedKeyHash>& seed_cache() {
  static KeyedCache<SeedKey, QTable, SeedKeyHash> cache(32);
  return cache;
}

}  // namespace

double algorithm1_reward(Watts power_supply, Watts power_demand,
                         Seconds qos_target, Seconds qos_current,
                         double max_violation, double max_qos_reward) {
  GS_REQUIRE(power_demand.value() > 0.0, "power demand must be positive");
  GS_REQUIRE(qos_target.value() > 0.0, "QoS target must be positive");
  const double r_power = power_supply / power_demand;
  if (r_power <= 1.0) {
    // Power supply cannot meet the demand: negative reward.
    return -r_power - 1.0;
  }
  // Guard against a zero-latency epoch (no requests): treat as satisfied.
  const double latency =
      std::max(qos_current.value(), 1e-9 * qos_target.value());
  const double r_qos = qos_target.value() / latency;
  if (r_qos > 1.0) {
    return r_power + std::min(r_qos, max_qos_reward) + 1.0;
  }
  const double violation = std::min(1.0 / r_qos, max_violation);
  return r_power - violation + 1.0;
}

QTable::QTable(std::size_t num_states, std::size_t num_actions)
    : states_(num_states),
      actions_(num_actions),
      q_(num_states * num_actions, 0.0) {
  GS_REQUIRE(num_states > 0 && num_actions > 0,
             "QTable dimensions must be positive");
}

double QTable::value(std::size_t state, std::size_t action) const {
  GS_REQUIRE(state < states_ && action < actions_, "QTable index range");
  return q_[state * actions_ + action];
}

void QTable::set(std::size_t state, std::size_t action, double v) {
  GS_REQUIRE(state < states_ && action < actions_, "QTable index range");
  q_[state * actions_ + action] = v;
  pristine_ = false;
}

void QTable::update(std::size_t state, std::size_t action, double reward,
                    std::size_t next_state, const QLearningConfig& cfg) {
  const double old = value(state, action);
  const double target = reward + cfg.discount * max_value(next_state);
  set(state, action, old + cfg.learning_rate * (target - old));
}

double QTable::max_value(std::size_t state) const {
  GS_REQUIRE(state < states_, "QTable state range");
  const auto* row = &q_[state * actions_];
  return *std::max_element(row, row + actions_);
}

bool QTable::all_zero() const {
  return std::all_of(q_.begin(), q_.end(), [](double v) { return v == 0.0; });
}

double* QTable::row_data(std::size_t state) {
  GS_REQUIRE(state < states_, "QTable state range");
  pristine_ = false;  // callers hold a mutable view
  return &q_[state * actions_];
}

const double* QTable::row_data(std::size_t state) const {
  GS_REQUIRE(state < states_, "QTable state range");
  return &q_[state * actions_];
}

std::size_t QTable::best_action(std::size_t state) const {
  GS_REQUIRE(state < states_, "QTable state range");
  const auto* row = &q_[state * actions_];
  return std::size_t(std::max_element(row, row + actions_) - row);
}

void QTable::save(std::ostream& os) const {
  os.precision(17);
  os << "gs-qtable 1\n" << states_ << ' ' << actions_ << '\n';
  for (std::size_t s = 0; s < states_; ++s) {
    for (std::size_t a = 0; a < actions_; ++a) {
      os << q_[s * actions_ + a] << (a + 1 < actions_ ? ' ' : '\n');
    }
  }
}

void QTable::load(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  GS_REQUIRE(is.good() && magic == "gs-qtable" && version == 1,
             "not a gs-qtable v1 stream");
  std::size_t states = 0, actions = 0;
  is >> states >> actions;
  GS_REQUIRE(is.good() && states == states_ && actions == actions_,
             "QTable dimensions do not match this controller");
  for (auto& v : q_) {
    is >> v;
    GS_REQUIRE(!is.fail(), "truncated or malformed QTable stream");
  }
  pristine_ = false;
}

HybridStrategy::HybridStrategy(const ProfileTable& profile,
                               const workload::AppDescriptor& app,
                               Watts idle_power, QLearningConfig cfg)
    : profile_(profile),
      app_(app),
      cfg_(cfg),
      idle_(idle_power),
      peak_(app.sprint_peak_power),
      buckets_(std::size_t(std::ceil(1.0 / cfg.supply_step)) + 1),
      q_(buckets_ * std::size_t(profile.num_levels()) * kNumHealthStates,
         profile.lattice().size()) {
  GS_REQUIRE(peak_ > idle_, "sprint peak must exceed idle power");
}

std::size_t HybridStrategy::supply_bucket(Watts supply) const {
  const double span = (peak_ - idle_).value();
  const double frac = (supply - idle_).value() / span;
  const auto b = frac <= 0.0
                     ? std::size_t{0}
                     : std::size_t(frac / cfg_.supply_step);
  return std::min(b, buckets_ - 1);
}

Watts HybridStrategy::bucket_supply(std::size_t bucket) const {
  const double span = (peak_ - idle_).value();
  const double frac = (double(bucket) + 0.5) * cfg_.supply_step;
  return idle_ + Watts(span * frac);
}

std::size_t HybridStrategy::state_index(Watts supply, double lambda,
                                        int health) const {
  const auto level = std::size_t(profile_.level_for(lambda));
  const auto h = std::size_t(
      std::clamp(health, 0, int(kNumHealthStates) - 1));
  return (supply_bucket(supply) * std::size_t(profile_.num_levels()) + level) *
             kNumHealthStates +
         h;
}

server::ServerSetting HybridStrategy::decide(const EpochContext& ctx) {
  const std::size_t state =
      state_index(ctx.supply, ctx.predicted_load, ctx.health);
  const int level = profile_.level_for(ctx.predicted_load);
  // Feasibility-masked argmax: the PMK cooperates with the PSS to stay
  // within the available supply.
  double best = -1e300;
  std::size_t best_action = profile_.lattice().index_of(server::normal_mode());
  bool found = false;
  for (std::size_t a = 0; a < profile_.lattice().size(); ++a) {
    if (profile_.power(level, a) > ctx.supply) continue;
    const double v = q_.value(state, a);
    if (!found || v > best) {
      best = v;
      best_action = a;
      found = true;
    }
  }
  return profile_.lattice().at(best_action);
}

void HybridStrategy::feedback(const EpochFeedback& fb) {
  const std::size_t state = state_index(
      fb.context.supply, fb.context.predicted_load, fb.context.health);
  const std::size_t action = profile_.lattice().index_of(fb.action);
  const double reward =
      algorithm1_reward(fb.actual_supply, fb.power_demand, app_.qos.limit,
                        fb.achieved_latency, cfg_.max_violation,
                        cfg_.max_qos_reward);
  const std::size_t next_state =
      state_index(fb.next_context.supply, fb.next_context.predicted_load,
                  fb.next_context.health);
  q_.update(state, action, reward, next_state, cfg_);
}

namespace {

// All seed_sweeps bootstrap passes over one Q-table row. Each update is
// exactly QTable::update(state, a, reward, state, cfg): the quasi-static
// bootstrap reads only its own row, so processing a row to completion
// before the next (instead of interleaving rows sweep-by-sweep) reorders
// independent operations and is bit-identical to the historical nesting.
// The row maximum is carried incrementally: a write can only raise the
// max (new value), keep it, or — when it overwrote the previous max —
// force one rescan; every value the update reads is therefore identical
// to what a fresh std::max_element scan would produce.
void seed_row(double* row, const double* rewards, std::size_t actions,
              int sweeps, const QLearningConfig& cfg) {
  double m = *std::max_element(row, row + actions);
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    for (std::size_t a = 0; a < actions; ++a) {
      const double old = row[a];
      const double target = rewards[a] + cfg.discount * m;
      const double v = old + cfg.learning_rate * (target - old);
      row[a] = v;
      if (v >= m) {
        m = v;
      } else if (old == m) {
        m = *std::max_element(row, row + actions);
      }
    }
  }
}

}  // namespace

void HybridStrategy::run_seed_sweeps(QTable& q) const {
  const auto levels = std::size_t(profile_.num_levels());
  const auto actions = profile_.lattice().size();
  // Fresh tables (the cache-miss path perf_sweep hits) start every health
  // slice of a (bucket, level) state at zero; identical rewards then drive
  // identical update sequences, so slice 0 is computed once and copied.
  // Seeding on top of learned values keeps per-slice differences: every
  // slice runs its own passes.
  const bool fresh = q.pristine();
  std::vector<double> rewards(actions);
  for (std::size_t b = 0; b < buckets_; ++b) {
    const Watts supply = bucket_supply(b);
    for (std::size_t l = 0; l < levels; ++l) {
      // The reward is a pure function of (bucket, level, action) — hoisted
      // out of the sweep and health loops, which repeat it unchanged.
      for (std::size_t a = 0; a < actions; ++a) {
        rewards[a] = algorithm1_reward(
            supply, profile_.power(int(l), a), app_.qos.limit,
            profile_.latency(int(l), a), cfg_.max_violation,
            cfg_.max_qos_reward);
      }
      const std::size_t base = (b * levels + l) * kNumHealthStates;
      // Profiling episodes carry no health signal, so every health slice
      // is seeded with the same update sequence: a health-unaware run
      // (always slice 0) behaves exactly as it did before the dimension
      // existed, and online feedback alone differentiates the slices.
      if (fresh) {
        double* row0 = q.row_data(base);
        seed_row(row0, rewards.data(), actions, cfg_.seed_sweeps, cfg_);
        for (std::size_t h = 1; h < kNumHealthStates; ++h) {
          std::copy(row0, row0 + actions, q.row_data(base + h));
        }
      } else {
        for (std::size_t h = 0; h < kNumHealthStates; ++h) {
          seed_row(q.row_data(base + h), rewards.data(), actions,
                   cfg_.seed_sweeps, cfg_);
        }
      }
    }
  }
}

void HybridStrategy::seed_from_profile() {
  if (!q_.pristine()) {
    // Seeding on top of learned / loaded values is order-dependent; run
    // the sweeps in place rather than use the fresh-table cache.
    run_seed_sweeps(q_);
    return;
  }
  const SeedKey key{profile_.fingerprint(),
                    idle_.value(),
                    peak_.value(),
                    app_.qos.limit.value(),
                    cfg_.learning_rate,
                    cfg_.discount,
                    cfg_.supply_step,
                    cfg_.max_violation,
                    cfg_.max_qos_reward,
                    cfg_.seed_sweeps};
  const auto seeded = seed_cache().get_or_create(key, [this] {
    QTable q(q_.num_states(), q_.num_actions());
    run_seed_sweeps(q);
    return q;
  });
  q_ = *seeded;
}

CacheStats HybridStrategy::seed_cache_stats() { return seed_cache().stats(); }

void HybridStrategy::clear_seed_cache() { seed_cache().clear(); }

void HybridStrategy::save_state(ckpt::StateWriter& w) const {
  w.begin_section("strategy.hybrid", kStateVersion);
  w.u64(q_.num_states());
  w.u64(q_.num_actions());
  for (std::size_t s = 0; s < q_.num_states(); ++s) {
    for (std::size_t a = 0; a < q_.num_actions(); ++a) {
      w.f64(q_.value(s, a));
    }
  }
  w.end_section();
}

void HybridStrategy::load_state(ckpt::StateReader& r) {
  r.begin_section("strategy.hybrid", kStateVersion);
  const auto states = std::size_t(r.u64());
  const auto actions = std::size_t(r.u64());
  if (states != q_.num_states() || actions != q_.num_actions()) {
    throw ckpt::SnapshotError(
        "hybrid Q-table dimension mismatch: snapshot " +
        std::to_string(states) + "x" + std::to_string(actions) +
        ", strategy " + std::to_string(q_.num_states()) + "x" +
        std::to_string(q_.num_actions()));
  }
  for (std::size_t s = 0; s < states; ++s) {
    for (std::size_t a = 0; a < actions; ++a) {
      q_.set(s, a, r.f64());
    }
  }
  r.end_section();
}

}  // namespace gs::core
