// Exhaustive (workload level, server setting) profile.
//
// The paper measures LoadPower_j(L, S) for every setting and intensity
// level "with a priori knowledge using an exhaustive method on real
// servers" (Section III-B). Our substrate evaluates the calibrated power
// and performance models over the same grid once and memoizes power,
// goodput and tail latency; the strategies and the Hybrid seeding read
// from this table exactly as the paper's PMK reads its profiling records.
#pragma once

#include <memory>
#include <vector>

#include "common/keyed_cache.hpp"
#include "server/power_model.hpp"
#include "server/setting.hpp"
#include "workload/perf_model.hpp"

namespace gs::core {

class ProfileTable {
 public:
  /// Levels L1..Lw partition [0, lambda_max] (paper uses w workload levels
  /// between the minimum and maximum intensity for the application).
  /// lambda_max defaults to the Int=12 burst load.
  ProfileTable(const workload::PerfModel& perf,
               const server::ServerPowerModel& power, int num_levels = 12,
               double lambda_max = 0.0);

  /// Memoized construction. Filling the table evaluates the SLA bisection
  /// over the full (level x setting) grid, which dominates per-cell setup
  /// in sweeps; cells whose app / power-model parameters match share one
  /// immutable table. Keyed on the AppDescriptor's model parameters (name
  /// included), the idle power, and the table shape.
  [[nodiscard]] static std::shared_ptr<const ProfileTable> shared(
      const workload::PerfModel& perf, const server::ServerPowerModel& power,
      int num_levels = 12, double lambda_max = 0.0);

  /// Cache bookkeeping for tests and the perf bench.
  [[nodiscard]] static CacheStats shared_cache_stats();
  static void clear_shared_cache();

  [[nodiscard]] int num_levels() const { return num_levels_; }
  [[nodiscard]] const server::SettingLattice& lattice() const {
    return lattice_;
  }

  /// Level index (0-based) for an offered load; clamps into range.
  [[nodiscard]] int level_for(double lambda) const;
  /// Representative offered load of a level (its upper edge).
  [[nodiscard]] double lambda_for(int level) const;
  [[nodiscard]] double lambda_max() const { return lambda_max_; }

  /// LoadPower(L, S): electrical demand at level `level`, setting index
  /// `setting` (utilization-dependent).
  [[nodiscard]] Watts power(int level, std::size_t setting) const;
  /// SLA-goodput (req/s) at the level/setting.
  [[nodiscard]] double goodput(int level, std::size_t setting) const;
  /// Achieved tail latency at the level/setting.
  [[nodiscard]] Seconds latency(int level, std::size_t setting) const;

  /// Content digest over the table shape and every profiled value,
  /// computed once at construction. Anything derived purely from the
  /// table (e.g. the Hybrid seed bootstrap) can use it as a cache key.
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  [[nodiscard]] std::size_t idx(int level, std::size_t setting) const;

  server::SettingLattice lattice_;
  int num_levels_;
  double lambda_max_;
  std::vector<double> power_w_;
  std::vector<double> goodput_;
  std::vector<double> latency_s_;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace gs::core
