// Power-management-knob strategies (paper Section III-B).
//
// Each scheduling epoch the PMK picks a sprinting intensity S = (cores,
// frequency) for the green servers from the predicted workload level and
// the plannable green power supply:
//
//  * Normal   — the non-sprinting baseline, S0 = 6 cores @ 1.2 GHz.
//  * Greedy   — all cores at the highest frequency whenever the supply
//               covers it; otherwise no sprint at all. No prediction of
//               future green energy ("aggressive power supply").
//  * Parallel — scales only the core count (frequency pinned at maximum).
//  * Pacing   — scales only the frequency (all 12 cores active).
//  * Hybrid   — Q-learning over the full (cores, frequency) lattice; see
//               hybrid.hpp.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "ckpt/fwd.hpp"
#include "common/units.hpp"
#include "core/profile_table.hpp"
#include "server/setting.hpp"

namespace gs::core {

/// Everything a strategy may look at when deciding an epoch's setting.
struct EpochContext {
  double predicted_load = 0.0;  ///< Predicted per-server arrival rate.
  Watts supply{0.0};            ///< Plannable green power per server.
  Seconds epoch{60.0};
  /// Quantized controller health (core::HealthState as an int: 0 Healthy,
  /// 1 Degraded, 2 Recovering). The controller feeds it only when running
  /// health-aware (ControllerConfig::health_aware with Hybrid); it stays 0
  /// otherwise, and non-learning strategies ignore it entirely.
  int health = 0;
};

/// Telemetry handed back after the epoch settles; only Hybrid learns from
/// it, the static strategies ignore it.
struct EpochFeedback {
  EpochContext context;            ///< Context the decision was made in.
  server::ServerSetting action;    ///< Setting actually run.
  Watts power_demand{0.0};         ///< LoadPower of the executed setting.
  Watts actual_supply{0.0};        ///< Green supply that materialized.
  Seconds achieved_latency{0.0};   ///< Tail latency of the epoch.
  double observed_load = 0.0;      ///< Arrival rate that materialized.
  EpochContext next_context;       ///< State entering the next epoch.
};

class Strategy {
 public:
  virtual ~Strategy() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Choose the sprint setting for the coming epoch.
  [[nodiscard]] virtual server::ServerSetting decide(
      const EpochContext& ctx) = 0;
  /// Online learning hook; default no-op.
  virtual void feedback(const EpochFeedback& fb) { (void)fb; }

  // --- Checkpoint/restore (src/ckpt) --------------------------------------
  // The default covers the stateless strategies: the section records only
  // the strategy name, and loading verifies the snapshot was produced by
  // the same kind of strategy. Learning strategies (Hybrid) override both
  // to carry their learned state. v2: the Hybrid Q-state gained the health
  // dimension, changing the table dimensions.
  static constexpr std::uint32_t kStateVersion = 2;
  virtual void save_state(ckpt::StateWriter& w) const;
  virtual void load_state(ckpt::StateReader& r);
};

/// Efficiency is the paper's "best-efficiency policy" contrast case
/// (Section III-B: at 70% burst intensity it serves at 466 ms where Greedy
/// serves at 270 ms, both inside the 500 ms SLA): the cheapest setting in
/// *energy per request* that still meets QoS at the predicted load.
enum class StrategyKind { Normal, Greedy, Parallel, Pacing, Hybrid,
                          Efficiency };

[[nodiscard]] const char* to_string(StrategyKind k);

/// Inverse of to_string(); case-insensitive so CLI flags and the daemon's
/// `strategy <name>` command accept "hybrid" as well as "Hybrid". Returns
/// nullopt for unknown names.
[[nodiscard]] std::optional<StrategyKind> strategy_from_string(
    std::string_view name);

/// The strategies evaluated in the paper, in its presentation order.
[[nodiscard]] std::vector<StrategyKind> sprinting_strategies();

/// Factory. The ProfileTable must outlive the strategy.
[[nodiscard]] std::unique_ptr<Strategy> make_strategy(
    StrategyKind kind, const ProfileTable& profile,
    const workload::AppDescriptor& app, Watts idle_power);

}  // namespace gs::core
