#include "core/strategy.hpp"

#include "ckpt/state_io.hpp"
#include "common/assert.hpp"
#include "core/hybrid.hpp"

namespace gs::core {

void Strategy::save_state(ckpt::StateWriter& w) const {
  w.begin_section("strategy", kStateVersion);
  w.str(name());
  w.end_section();
}

void Strategy::load_state(ckpt::StateReader& r) {
  r.begin_section("strategy", kStateVersion);
  const std::string saved = r.str();
  r.end_section();
  if (saved != name()) {
    throw ckpt::SnapshotError("strategy mismatch: snapshot holds '" + saved +
                              "', controller runs '" + std::string(name()) +
                              "'");
  }
}

const char* to_string(StrategyKind k) {
  switch (k) {
    case StrategyKind::Normal:
      return "Normal";
    case StrategyKind::Greedy:
      return "Greedy";
    case StrategyKind::Parallel:
      return "Parallel";
    case StrategyKind::Pacing:
      return "Pacing";
    case StrategyKind::Hybrid:
      return "Hybrid";
    case StrategyKind::Efficiency:
      return "Efficiency";
  }
  return "?";
}

std::optional<StrategyKind> strategy_from_string(std::string_view name) {
  const auto eq = [](std::string_view a, const char* b) {
    std::string_view bs(b);
    if (a.size() != bs.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const char ca = a[i] >= 'A' && a[i] <= 'Z' ? char(a[i] - 'A' + 'a') : a[i];
      const char cb =
          bs[i] >= 'A' && bs[i] <= 'Z' ? char(bs[i] - 'A' + 'a') : bs[i];
      if (ca != cb) return false;
    }
    return true;
  };
  for (const StrategyKind k :
       {StrategyKind::Normal, StrategyKind::Greedy, StrategyKind::Parallel,
        StrategyKind::Pacing, StrategyKind::Hybrid, StrategyKind::Efficiency}) {
    if (eq(name, to_string(k))) return k;
  }
  return std::nullopt;
}

std::vector<StrategyKind> sprinting_strategies() {
  return {StrategyKind::Greedy, StrategyKind::Parallel, StrategyKind::Pacing,
          StrategyKind::Hybrid};
}

namespace {

using server::ServerSetting;

class NormalStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "Normal"; }
  [[nodiscard]] ServerSetting decide(const EpochContext&) override {
    return server::normal_mode();
  }
};

/// Common helper: power demand and QoS status of a setting at the
/// predicted load level.
class ProfiledStrategy : public Strategy {
 protected:
  ProfiledStrategy(const ProfileTable& profile, workload::QosSpec qos)
      : profile_(profile), qos_(qos) {}

  [[nodiscard]] Watts demand(const EpochContext& ctx,
                             const ServerSetting& s) const {
    const int level = profile_.level_for(ctx.predicted_load);
    return profile_.power(level, profile_.lattice().index_of(s));
  }

  [[nodiscard]] bool fits(const EpochContext& ctx,
                          const ServerSetting& s) const {
    return demand(ctx, s) <= ctx.supply;
  }

  [[nodiscard]] bool meets_qos(const EpochContext& ctx,
                               const ServerSetting& s) const {
    const int level = profile_.level_for(ctx.predicted_load);
    return profile_.latency(level, profile_.lattice().index_of(s)) <=
           qos_.limit;
  }

  const ProfileTable& profile_;  // NOLINT: non-owning, outlives strategy
  workload::QosSpec qos_;
};

/// All-or-nothing maximal sprint.
class GreedyStrategy final : public ProfiledStrategy {
 public:
  GreedyStrategy(const ProfileTable& profile, workload::QosSpec qos)
      : ProfiledStrategy(profile, qos) {}
  [[nodiscard]] std::string_view name() const override { return "Greedy"; }
  [[nodiscard]] ServerSetting decide(const EpochContext& ctx) override {
    const ServerSetting max = server::max_sprint();
    return fits(ctx, max) ? max : server::normal_mode();
  }
};

/// Core-count scaling at the maximum frequency. Solves the paper's
/// Section III-B optimization along the core axis: the cheapest core count
/// that serves the predicted load within QoS (Eq. 2/3 with the QoS
/// constraint binding); when no feasible count satisfies QoS, the largest
/// count the supply allows.
class ParallelStrategy final : public ProfiledStrategy {
 public:
  ParallelStrategy(const ProfileTable& profile, workload::QosSpec qos)
      : ProfiledStrategy(profile, qos) {}
  [[nodiscard]] std::string_view name() const override { return "Parallel"; }
  [[nodiscard]] ServerSetting decide(const EpochContext& ctx) override {
    for (int cores = server::kMinCores; cores <= server::kMaxCores;
         ++cores) {
      const ServerSetting s{cores, server::kMaxFreqIndex};
      if (fits(ctx, s) && meets_qos(ctx, s)) return s;
    }
    for (int cores = server::kMaxCores; cores >= server::kMinCores;
         --cores) {
      const ServerSetting s{cores, server::kMaxFreqIndex};
      if (fits(ctx, s)) return s;
    }
    return server::normal_mode();
  }
};

/// Frequency scaling with all cores active; same optimization shape as
/// Parallel, along the DVFS axis.
class PacingStrategy final : public ProfiledStrategy {
 public:
  PacingStrategy(const ProfileTable& profile, workload::QosSpec qos)
      : ProfiledStrategy(profile, qos) {}
  [[nodiscard]] std::string_view name() const override { return "Pacing"; }
  [[nodiscard]] ServerSetting decide(const EpochContext& ctx) override {
    for (int f = server::kMinFreqIndex; f <= server::kMaxFreqIndex; ++f) {
      const ServerSetting s{server::kMaxCores, f};
      if (fits(ctx, s) && meets_qos(ctx, s)) return s;
    }
    for (int f = server::kMaxFreqIndex; f >= server::kMinFreqIndex; --f) {
      const ServerSetting s{server::kMaxCores, f};
      if (fits(ctx, s)) return s;
    }
    return server::normal_mode();
  }
};

/// The paper's best-efficiency contrast policy: among feasible settings
/// that meet QoS at the predicted level, pick the one with the best
/// goodput-per-watt; if none meets QoS, the feasible setting with the best
/// goodput-per-watt overall. Trades tail latency headroom for energy —
/// the opposite end of the spectrum from Greedy.
class EfficiencyStrategy final : public ProfiledStrategy {
 public:
  EfficiencyStrategy(const ProfileTable& profile, workload::QosSpec qos)
      : ProfiledStrategy(profile, qos) {}
  [[nodiscard]] std::string_view name() const override {
    return "Efficiency";
  }
  [[nodiscard]] ServerSetting decide(const EpochContext& ctx) override {
    const int level = profile_.level_for(ctx.predicted_load);
    ServerSetting best = server::normal_mode();
    double best_eff = -1.0;
    bool best_meets_qos = false;
    for (std::size_t a = 0; a < profile_.lattice().size(); ++a) {
      const auto& s = profile_.lattice().at(a);
      if (profile_.power(level, a) > ctx.supply &&
          s != server::normal_mode()) {
        continue;  // Normal stays eligible via the grid backstop.
      }
      const bool ok = profile_.latency(level, a) <= qos_.limit;
      const double eff =
          profile_.goodput(level, a) / profile_.power(level, a).value();
      // QoS-satisfying settings strictly dominate violating ones; within
      // a class, maximize goodput per watt.
      if ((ok && !best_meets_qos) ||
          (ok == best_meets_qos && eff > best_eff)) {
        best = s;
        best_eff = eff;
        best_meets_qos = ok;
      }
    }
    return best;
  }
};

}  // namespace

std::unique_ptr<Strategy> make_strategy(StrategyKind kind,
                                        const ProfileTable& profile,
                                        const workload::AppDescriptor& app,
                                        Watts idle_power) {
  switch (kind) {
    case StrategyKind::Normal:
      return std::make_unique<NormalStrategy>();
    case StrategyKind::Greedy:
      return std::make_unique<GreedyStrategy>(profile, app.qos);
    case StrategyKind::Parallel:
      return std::make_unique<ParallelStrategy>(profile, app.qos);
    case StrategyKind::Pacing:
      return std::make_unique<PacingStrategy>(profile, app.qos);
    case StrategyKind::Efficiency:
      return std::make_unique<EfficiencyStrategy>(profile, app.qos);
    case StrategyKind::Hybrid: {
      auto hybrid =
          std::make_unique<HybridStrategy>(profile, app, idle_power);
      hybrid->seed_from_profile();
      return hybrid;
    }
  }
  GS_REQUIRE(false, "unknown strategy kind");
  return nullptr;
}

}  // namespace gs::core
