#include "core/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/assert.hpp"

namespace gs::core {

namespace {

/// Peukert-corrected effective current for a power draw (mirrors
/// power::Battery's model; duplicated here because the DP works on raw
/// numbers, not on a stateful battery object).
double effective_amps(double watts, const power::BatteryConfig& bc) {
  if (watts <= 0.0) return 0.0;
  const double i = watts / bc.nominal_voltage.value();
  const double i_rated = bc.capacity.value() / bc.rated_hours;
  const double corr =
      std::max(1.0, std::pow(i / i_rated, bc.peukert_exponent - 1.0));
  return i * corr;
}

}  // namespace

OraclePlan oracle_plan(const ProfileTable& profile,
                       const std::vector<Watts>& re_supply, double lambda,
                       const power::BatteryConfig& battery, Seconds epoch,
                       Watts grid_backstop, OracleConfig cfg) {
  GS_REQUIRE(!re_supply.empty(), "oracle needs at least one epoch");
  GS_REQUIRE(cfg.battery_grid >= 1, "battery grid must be positive");
  const auto n_epochs = re_supply.size();
  const auto n_actions = profile.lattice().size();
  const int level = profile.level_for(lambda);
  const double dt_h = epoch.value() / 3600.0;

  const double usable_ah = battery.max_dod * battery.capacity.value();
  const auto grid_pts = std::size_t(cfg.battery_grid) + 1;
  const double ah_step = usable_ah > 0.0 ? usable_ah / cfg.battery_grid : 0.0;

  // Precompute per-action demand, goodput and whether Normal (grid-backed).
  const std::size_t normal_idx =
      profile.lattice().index_of(server::normal_mode());
  std::vector<double> demand_w(n_actions), goodput(n_actions);
  for (std::size_t a = 0; a < n_actions; ++a) {
    demand_w[a] = profile.power(level, a).value();
    goodput[a] = profile.goodput(level, a);
  }

  // value[g] = best total goodput from the current epoch onward with g
  // grid-points of usable battery left. Iterate epochs backwards.
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> value(grid_pts, 0.0), next(grid_pts, 0.0);
  // choice[e][g] = best action index.
  std::vector<std::vector<std::uint16_t>> choice(
      n_epochs, std::vector<std::uint16_t>(grid_pts, 0));

  const double charge_ah_cap = battery.max_charge_power.value() *
                               battery.charge_efficiency * dt_h /
                               battery.nominal_voltage.value();

  for (std::size_t e = n_epochs; e-- > 0;) {
    std::swap(value, next);
    const double re = re_supply[e].value();
    for (std::size_t g = 0; g < grid_pts; ++g) {
      const double ah_left = double(g) * ah_step;
      double best = kNegInf;
      std::uint16_t best_a = std::uint16_t(normal_idx);
      for (std::size_t a = 0; a < n_actions; ++a) {
        const bool is_normal = a == normal_idx;
        double from_green = demand_w[a];
        if (is_normal) {
          // Grid backstop covers Normal mode demand beyond the green bus.
          from_green = std::max(0.0, demand_w[a] -
                                         std::min(demand_w[a],
                                                  grid_backstop.value()));
        }
        const double shortfall = std::max(0.0, from_green - re);
        double g_after = double(g);
        if (shortfall > 0.0) {
          const double drain = effective_amps(shortfall, battery) * dt_h;
          if (drain > ah_left + 1e-12) continue;  // infeasible action
          g_after = (ah_left - drain) / (ah_step > 0.0 ? ah_step : 1.0);
        } else {
          // Surplus renewable charges the battery (bounded by the
          // charger and by full).
          const double surplus = re - from_green;
          const double gain = std::min(
              {surplus * dt_h / battery.nominal_voltage.value(),
               charge_ah_cap, usable_ah - ah_left});
          g_after = ah_step > 0.0 ? (ah_left + gain) / ah_step : 0.0;
        }
        // Round down: conservative on remaining energy.
        const auto g_next =
            std::min(grid_pts - 1, std::size_t(std::max(0.0, g_after)));
        const double v = goodput[a] + next[g_next];
        if (v > best) {
          best = v;
          best_a = std::uint16_t(a);
        }
      }
      value[g] = best;
      choice[e][g] = best_a;
    }
  }

  // Forward pass: execute the plan from a full battery, tracking the exact
  // (un-discretized) state the same way the DP modeled it.
  OraclePlan plan;
  plan.settings.reserve(n_epochs);
  double ah_left = usable_ah;
  for (std::size_t e = 0; e < n_epochs; ++e) {
    const auto g = std::size_t(
        std::min(double(cfg.battery_grid),
                 std::max(0.0, ah_step > 0.0 ? ah_left / ah_step : 0.0)));
    const auto a = choice[e][g];
    plan.settings.push_back(profile.lattice().at(a));
    plan.total_goodput += goodput[a];
    const double re = re_supply[e].value();
    const bool is_normal = a == normal_idx;
    double from_green = demand_w[a];
    if (is_normal) {
      from_green = std::max(
          0.0, demand_w[a] - std::min(demand_w[a], grid_backstop.value()));
    }
    const double shortfall = std::max(0.0, from_green - re);
    if (shortfall > 0.0) {
      ah_left = std::max(0.0, ah_left -
                                  effective_amps(shortfall, battery) * dt_h);
    } else {
      const double surplus = re - from_green;
      const double gain =
          std::min({surplus * dt_h / battery.nominal_voltage.value(),
                    charge_ah_cap, usable_ah - ah_left});
      ah_left += gain;
    }
  }
  plan.mean_goodput = plan.total_goodput / double(n_epochs);
  return plan;
}

}  // namespace gs::core
