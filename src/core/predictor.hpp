// The Predictor component of the GreenSprint architecture (Fig. 3): EWMA
// forecasts of renewable production (Equation 1) and workload intensity for
// the next scheduling epoch. The paper finds alpha = 0.3 most consistent.
#pragma once

#include "common/ewma.hpp"
#include "common/units.hpp"

namespace gs::core {

struct PredictorConfig {
  double renewable_alpha = 0.3;
  double load_alpha = 0.3;
};

class Predictor {
 public:
  explicit Predictor(PredictorConfig cfg = {})
      : re_(cfg.renewable_alpha), load_(cfg.load_alpha) {}

  /// Feed the renewable production observed over the finished epoch.
  void observe_renewable(Watts obs) { re_.observe(obs.value()); }
  /// Feed the workload arrival rate observed over the finished epoch.
  void observe_load(double lambda) { load_.observe(lambda); }

  /// Predicted renewable supply for the next epoch (RESupp(t) in Eq. 1).
  /// Falls back to 0 before the first observation.
  [[nodiscard]] Watts predicted_renewable() const {
    return Watts(re_.primed() ? re_.prediction() : 0.0);
  }

  /// Predicted per-server arrival rate for the next epoch.
  [[nodiscard]] double predicted_load() const {
    return load_.primed() ? load_.prediction() : 0.0;
  }

  [[nodiscard]] bool primed() const { return re_.primed() && load_.primed(); }

 private:
  Ewma re_;
  Ewma load_;
};

}  // namespace gs::core
