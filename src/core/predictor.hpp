// The Predictor component of the GreenSprint architecture (Fig. 3): EWMA
// forecasts of renewable production (Equation 1) and workload intensity for
// the next scheduling epoch. The paper finds alpha = 0.3 most consistent.
#pragma once

#include <cstdint>

#include "ckpt/common_state.hpp"
#include "common/ewma.hpp"
#include "common/units.hpp"

namespace gs::core {

struct PredictorConfig {
  double renewable_alpha = 0.3;
  double load_alpha = 0.3;
};

class Predictor {
 public:
  explicit Predictor(PredictorConfig cfg = {})
      : re_(cfg.renewable_alpha), load_(cfg.load_alpha) {}

  /// Feed the renewable production observed over the finished epoch.
  void observe_renewable(Watts obs) { re_.observe(obs.value()); }
  /// Feed the workload arrival rate observed over the finished epoch.
  void observe_load(double lambda) { load_.observe(lambda); }

  /// Predicted renewable supply for the next epoch (RESupp(t) in Eq. 1).
  /// Falls back to 0 before the first observation.
  [[nodiscard]] Watts predicted_renewable() const {
    return Watts(re_.primed() ? re_.prediction() : 0.0);
  }

  /// Predicted per-server arrival rate for the next epoch.
  [[nodiscard]] double predicted_load() const {
    return load_.primed() ? load_.prediction() : 0.0;
  }

  [[nodiscard]] bool primed() const { return re_.primed() && load_.primed(); }

  // --- Checkpoint/restore (src/ckpt) --------------------------------------
  static constexpr std::uint32_t kStateVersion = 1;

  void save_state(ckpt::StateWriter& w) const {
    w.begin_section("predictor", kStateVersion);
    ckpt::save_ewma(w, re_);
    ckpt::save_ewma(w, load_);
    w.end_section();
  }

  void load_state(ckpt::StateReader& r) {
    r.begin_section("predictor", kStateVersion);
    ckpt::load_ewma(r, re_);
    ckpt::load_ewma(r, load_);
    r.end_section();
  }

 private:
  Ewma re_;
  Ewma load_;
};

}  // namespace gs::core
