// GreenSprintController: the top-level control loop of the framework
// (paper Fig. 3) and the primary public API of this library.
//
// Per scheduling epoch the caller drives:
//
//   1. begin_epoch(observed_load, battery_power)
//        feeds the Monitor's arrival measurement to the Predictor,
//        completes the previous epoch's reinforcement-learning feedback
//        (the new context is the successor state), and returns the PMK's
//        sprint setting for this epoch;
//   2. replan(actual_supply)   [optional]
//        emergency downgrade when the supply that materialized is below
//        the prediction — the PMK must keep the server within budget;
//   3. <caller settles power through the PSS and runs the workload>
//   4. end_epoch(re_observed, demand, green_supply, latency)
//        records what happened for the next learning step and updates the
//        renewable forecast (Equation 1).
//
// The controller is deliberately ignorant of batteries, grids and traces:
// it sees only measurements and budgets, exactly like the paper's
// software PMK/PSS pair.
#pragma once

#include <cstdint>
#include <memory>

#include "ckpt/fwd.hpp"
#include "core/predictor.hpp"
#include "core/profile_table.hpp"
#include "core/strategy.hpp"

namespace gs::core {

struct ControllerConfig {
  StrategyKind strategy = StrategyKind::Hybrid;
  PredictorConfig predictor;
  Seconds epoch{60.0};
  /// Consecutive healthy epochs required to leave degraded mode (the
  /// recovery hysteresis of the fault-tolerant control loop).
  int recovery_epochs = 3;
  /// Health-aware recovery (Hybrid only): instead of clamping to Normal
  /// while degraded, feed the quantized HealthState into the Q-state so
  /// the learner chooses the recovery action — partial sprint under a
  /// fade, shed-then-resprint after a brownout. The feasibility mask and
  /// the runner's replan-against-actual-supply path remain the safety
  /// floor; non-Hybrid strategies keep the clamp regardless. Default off:
  /// behavior is bit-identical to the clamped controller.
  bool health_aware = false;
};

/// Degraded-mode state machine (fault handling):
///
///   Healthy ──(shortfall / stale telemetry)──▶ Degraded
///   Degraded ──(healthy epoch)──▶ Recovering
///   Recovering ──(recovery_epochs consecutive healthy)──▶ Healthy
///   Recovering ──(any disturbance)──▶ Degraded
///
/// While not Healthy, the PMK clamps to the safe Normal setting: the
/// server never plans a sprint against supply or telemetry it cannot
/// trust, and re-enters sprinting only after the hysteresis expires.
enum class HealthState { Healthy, Degraded, Recovering };

[[nodiscard]] const char* to_string(HealthState s);

class GreenSprintController {
 public:
  /// The profile table must outlive the controller.
  GreenSprintController(const workload::AppDescriptor& app,
                        const ProfileTable& profile, Watts idle_power,
                        ControllerConfig cfg);

  /// Start an epoch: returns the PMK's chosen sprint setting given the
  /// measured arrival rate and the battery power sustainable this epoch.
  [[nodiscard]] server::ServerSetting begin_epoch(double observed_load,
                                                  Watts battery_power);

  /// Re-decide against the green supply that actually materialized; call
  /// when the planned setting's demand exceeds it. Updates the pending
  /// learning record to the downgraded action.
  [[nodiscard]] server::ServerSetting replan(Watts actual_supply);

  /// Close the epoch with the settled telemetry.
  void end_epoch(Watts re_observed, Watts power_demand, Watts green_supply,
                 Seconds achieved_latency);

  /// Non-sprinting epoch (warmup, or between bursts): update the forecasts
  /// without making or learning from a decision.
  void observe_idle(double observed_load, Watts re_observed);

  /// Feed the degraded-mode state machine one epoch's health signals:
  /// `supply_shortfall` when the settled sources could not carry the
  /// chosen setting, `stale_telemetry` when the Monitor sample driving
  /// the Predictor was dropped or known-bad. Call once per epoch (before
  /// begin_epoch) while fault injection is active; never calling it
  /// leaves the controller permanently Healthy, preserving the exact
  /// fault-free behavior.
  void notify_health(bool supply_shortfall, bool stale_telemetry);

  [[nodiscard]] HealthState health() const { return health_; }
  /// True when the state machine is not Healthy. With health_aware off
  /// (or a non-Hybrid strategy) this clamps the PMK to Normal.
  [[nodiscard]] bool degraded() const {
    return health_ != HealthState::Healthy;
  }
  /// True when the learned health-aware recovery path is in effect (the
  /// config asks for it and the strategy can learn from the dimension).
  [[nodiscard]] bool health_aware_active() const {
    return cfg_.health_aware && cfg_.strategy == StrategyKind::Hybrid;
  }

  /// Electrical demand of a setting at an offered load (profile lookup).
  [[nodiscard]] Watts demand(double load, const server::ServerSetting& s) const;

  [[nodiscard]] Watts predicted_renewable() const {
    return predictor_.predicted_renewable();
  }
  [[nodiscard]] double predicted_load() const {
    return predictor_.predicted_load();
  }
  [[nodiscard]] const Strategy& strategy() const { return *strategy_; }
  [[nodiscard]] const ControllerConfig& config() const { return cfg_; }

  /// Live strategy switch (the daemon's `strategy <name>` command). A
  /// same-kind request is a strict no-op — the running strategy keeps its
  /// learned state and the epoch stream stays bit-identical. A real switch
  /// replaces the PMK with a freshly constructed strategy (learned state
  /// starts over, as after a config change) and drops any pending learning
  /// record so the new PMK never trains on the old one's decision. Call
  /// between epochs only. `app` and `idle_power` must be the values the
  /// controller was constructed with. Returns true when the kind changed.
  bool set_strategy(StrategyKind kind, const workload::AppDescriptor& app,
                    Watts idle_power);

  // --- Checkpoint/restore (src/ckpt) --------------------------------------
  // Covers the full control-loop state: predictor EWMAs, the pending
  // learning record, the degraded-mode state machine, and the strategy's
  // learned state. The controller must be reconstructed from the same
  // (app, profile, config) before load_state; the snapshot carries only
  // dynamic state. v2 adds the pending context's health dimension.
  static constexpr std::uint32_t kStateVersion = 2;
  void save_state(ckpt::StateWriter& w) const;
  void load_state(ckpt::StateReader& r);

 private:
  const ProfileTable& profile_;  // NOLINT: non-owning, outlives controller
  ControllerConfig cfg_;
  Predictor predictor_;
  std::unique_ptr<Strategy> strategy_;

  struct Pending {
    EpochContext ctx;
    server::ServerSetting action;
    Watts demand{0.0};
    Watts supply{0.0};
    Seconds latency{0.0};
    double observed_load = 0.0;
    bool armed = false;   ///< begin_epoch ran
    bool closed = false;  ///< end_epoch ran
  };
  Pending pending_;
  HealthState health_ = HealthState::Healthy;
  int healthy_streak_ = 0;
};

}  // namespace gs::core
