// The Hybrid strategy (paper Section III-B, Algorithm 1): tabular
// Q-learning over the full (core count, frequency) lattice.
//
// State  c_t: (quantized power supply, workload intensity level, controller
//         health). The paper quantizes supply from idle power to maximum
//         sprint power in 5% steps and reuses the workload levels L1..Lw.
//         The health dimension (robustness extension, DESIGN.md §12) lets a
//         health-aware controller learn recovery actions — partial sprint
//         under a battery fade, shed-then-resprint after a brownout —
//         instead of clamping to Normal. Every health slice is seeded
//         identically and a health-unaware controller only ever visits
//         slice 0, so behavior without the feature is bit-identical.
// Action a_t: a ServerSetting from the lattice S.
// Reward r_t: Algorithm 1, built from Rpower = PowerSupp/PowerCurr and
//         Rqos = QoStarget/QoScurrent.
//
// Deviation from the paper, documented in DESIGN.md: Algorithm 1 line 9
// sets r = Rpower - Rqos + 1 when QoS is violated, which *increases* the
// reward as latency gets worse (Rqos shrinks toward 0) — degenerate as
// written. We implement the evidently intended monotone penalty
// r = Rpower - QoScurrent/QoStarget + 1, which reduces the reward in
// proportion to the depth of the violation.
//
// The lookup table R(c,a) is seeded from the exhaustive profiling records
// (the paper seeds from data collected by Parallel and Pacing) by sweeping
// the Algorithm-1 update until the bootstrap settles, then continues to
// learn online from per-epoch feedback with alpha = 0.7, gamma = 0.9.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "core/profile_table.hpp"
#include "core/strategy.hpp"
#include "workload/app.hpp"

namespace gs::core {

struct QLearningConfig {
  double learning_rate = 0.7;   ///< alpha in Algorithm 1 line 15.
  double discount = 0.9;        ///< gamma.
  double supply_step = 0.05;    ///< 5% supply quantization.
  int seed_sweeps = 25;         ///< Bootstrap sweeps over the profile.
  double max_violation = 50.0;  ///< Cap on QoScurrent/QoStarget.
  /// Cap on Rqos once the target is met: an interactive service that meets
  /// its SLA gains nothing from being even faster, so past this point the
  /// power term decides and Hybrid picks the most power-efficient
  /// QoS-satisfying setting (the energy-efficiency goal of Section III-B).
  double max_qos_reward = 2.0;
};

/// Algorithm-1 reward (with the monotone QoS penalty described above).
[[nodiscard]] double algorithm1_reward(Watts power_supply, Watts power_demand,
                                       Seconds qos_target,
                                       Seconds qos_current,
                                       double max_violation = 50.0,
                                       double max_qos_reward = 2.0);

/// Dense (state, action) value table.
class QTable {
 public:
  QTable(std::size_t num_states, std::size_t num_actions);

  [[nodiscard]] double value(std::size_t state, std::size_t action) const;
  void set(std::size_t state, std::size_t action, double v);

  /// R(c,a) += alpha * (r + gamma * max_a' R(c',a') - R(c,a)).
  void update(std::size_t state, std::size_t action, double reward,
              std::size_t next_state, const QLearningConfig& cfg);

  [[nodiscard]] double max_value(std::size_t state) const;
  [[nodiscard]] std::size_t best_action(std::size_t state) const;

  [[nodiscard]] std::size_t num_states() const { return states_; }
  [[nodiscard]] std::size_t num_actions() const { return actions_; }

  /// True iff no value has been written (fresh table).
  [[nodiscard]] bool all_zero() const;

  /// O(1) conservative freshness check: true iff no write (set / update /
  /// load) has ever touched the table. pristine() implies all_zero(); a
  /// table whose writes happened to store only zeros reports non-pristine,
  /// which callers may treat as "maybe non-zero" (the slow path they fall
  /// back to is bit-identical on an all-zero table).
  [[nodiscard]] bool pristine() const { return pristine_; }

  /// Raw row access (num_actions() contiguous doubles) for the seed
  /// bootstrap kernel; state updates only ever read their own row, so the
  /// kernel can process rows independently.
  [[nodiscard]] double* row_data(std::size_t state);
  [[nodiscard]] const double* row_data(std::size_t state) const;

  /// Persist the table (text format: dimensions then row-major values).
  /// The paper's controller reuses profiling data across runs; this lets a
  /// deployment warm-start Hybrid from a previously learned policy.
  void save(std::ostream& os) const;
  /// Load a table previously written by save(). Throws gs::ContractError
  /// on malformed input or dimension mismatch with this table.
  void load(std::istream& is);

 private:
  std::size_t states_;
  std::size_t actions_;
  std::vector<double> q_;
  bool pristine_ = true;  ///< No write has touched the table yet.
};

class HybridStrategy final : public Strategy {
 public:
  HybridStrategy(const ProfileTable& profile,
                 const workload::AppDescriptor& app, Watts idle_power,
                 QLearningConfig cfg = {});

  [[nodiscard]] std::string_view name() const override { return "Hybrid"; }

  /// Feasibility-masked argmax over the lattice: the PMK must keep the
  /// server within the power budget, so actions whose profiled demand
  /// exceeds the supply are never selected (Normal is the floor).
  [[nodiscard]] server::ServerSetting decide(const EpochContext& ctx) override;

  /// Online Algorithm-1 update from the settled epoch.
  void feedback(const EpochFeedback& fb) override;

  /// Seed R(c,a) from the exhaustive profiling table. The bootstrap is a
  /// pure function of (profile contents, QoS/power anchors, config), so a
  /// freshly-constructed strategy copies a process-wide cached table
  /// instead of re-running the sweeps; seeding on top of an already
  /// non-zero table (e.g. after load_policy) runs the sweeps in place.
  void seed_from_profile();

  /// Persist / restore the learned policy (delegates to QTable).
  void save_policy(std::ostream& os) const { q_.save(os); }
  void load_policy(std::istream& is) { q_.load(is); }

  /// Checkpoint/restore: the learned Q-table, bit-exact (unlike the text
  /// save_policy round-trip). Dimensions are validated against this
  /// strategy's lattice on load.
  // Schema version inherited from Strategy::kStateVersion.
  // gs-lint: allow(ckpt-schema-version)
  void save_state(ckpt::StateWriter& w) const override;
  void load_state(ckpt::StateReader& r) override;

  /// Bookkeeping for the process-wide seeded-table cache (tests / bench).
  [[nodiscard]] static CacheStats seed_cache_stats();
  static void clear_seed_cache();

  /// Distinct values of the Q-state's health dimension (HealthState's
  /// Healthy / Degraded / Recovering).
  static constexpr std::size_t kNumHealthStates = 3;

  /// State index for a (supply, load, health) triple — exposed for tests.
  /// Out-of-range health is clamped into [0, kNumHealthStates).
  [[nodiscard]] std::size_t state_index(Watts supply, double lambda,
                                        int health = 0) const;
  [[nodiscard]] std::size_t num_supply_buckets() const { return buckets_; }
  [[nodiscard]] const QTable& table() const { return q_; }

 private:
  [[nodiscard]] std::size_t supply_bucket(Watts supply) const;
  /// Representative supply of a bucket (its midpoint).
  [[nodiscard]] Watts bucket_supply(std::size_t bucket) const;
  /// The Algorithm-1 bootstrap sweeps, applied to an arbitrary table.
  void run_seed_sweeps(QTable& q) const;

  const ProfileTable& profile_;  // NOLINT: non-owning, outlives strategy
  workload::AppDescriptor app_;
  QLearningConfig cfg_;
  Watts idle_;
  Watts peak_;
  std::size_t buckets_;
  QTable q_;
};

}  // namespace gs::core
