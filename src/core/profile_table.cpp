#include "core/profile_table.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace gs::core {

ProfileTable::ProfileTable(const workload::PerfModel& perf,
                           const server::ServerPowerModel& power,
                           int num_levels, double lambda_max)
    : num_levels_(num_levels),
      lambda_max_(lambda_max > 0.0 ? lambda_max
                                   : perf.intensity_load(server::kMaxCores)) {
  GS_REQUIRE(num_levels_ >= 1, "profile needs at least one level");
  const auto n_settings = lattice_.size();
  const auto total = std::size_t(num_levels_) * n_settings;
  power_w_.resize(total);
  goodput_.resize(total);
  latency_s_.resize(total);
  for (int l = 0; l < num_levels_; ++l) {
    const double lambda = lambda_for(l);
    for (std::size_t s = 0; s < n_settings; ++s) {
      const auto& setting = lattice_.at(s);
      const double u = perf.utilization(setting, lambda);
      power_w_[idx(l, s)] =
          power.power(setting, u, perf.app().activity).value();
      goodput_[idx(l, s)] = perf.goodput(setting, lambda);
      latency_s_[idx(l, s)] = perf.latency(setting, lambda).value();
    }
  }
}

int ProfileTable::level_for(double lambda) const {
  GS_REQUIRE(lambda >= 0.0, "load must be non-negative");
  const double frac = lambda / lambda_max_;
  const int level = int(std::ceil(frac * num_levels_)) - 1;
  return std::clamp(level, 0, num_levels_ - 1);
}

double ProfileTable::lambda_for(int level) const {
  GS_REQUIRE(level >= 0 && level < num_levels_, "level out of range");
  return lambda_max_ * double(level + 1) / double(num_levels_);
}

Watts ProfileTable::power(int level, std::size_t setting) const {
  return Watts(power_w_[idx(level, setting)]);
}

double ProfileTable::goodput(int level, std::size_t setting) const {
  return goodput_[idx(level, setting)];
}

Seconds ProfileTable::latency(int level, std::size_t setting) const {
  return Seconds(latency_s_[idx(level, setting)]);
}

std::size_t ProfileTable::idx(int level, std::size_t setting) const {
  GS_REQUIRE(level >= 0 && level < num_levels_, "level out of range");
  GS_REQUIRE(setting < lattice_.size(), "setting out of range");
  return std::size_t(level) * lattice_.size() + setting;
}

}  // namespace gs::core
