#include "core/profile_table.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/assert.hpp"

namespace gs::core {

namespace {

/// Everything the table's contents depend on: the app's service/power
/// parameters, the power model's idle anchor, and the table shape.
struct ProfileKey {
  std::string app_name;
  double base_service_s;
  double freq_sensitivity;
  double congestion_delta;
  double qos_percentile;
  double qos_limit_s;
  double normal_full_w;
  double sprint_peak_w;
  double core_static_w;
  double kappa;
  double idle_w;
  int num_levels;
  double lambda_max;

  bool operator==(const ProfileKey& o) const = default;
};

struct ProfileKeyHash {
  std::size_t operator()(const ProfileKey& k) const {
    std::uint64_t h = 0x9e0f11eull;
    for (char c : k.app_name) h = hash_combine(h, std::uint64_t(c));
    h = hash_combine(h, k.base_service_s);
    h = hash_combine(h, k.freq_sensitivity);
    h = hash_combine(h, k.congestion_delta);
    h = hash_combine(h, k.qos_percentile);
    h = hash_combine(h, k.qos_limit_s);
    h = hash_combine(h, k.normal_full_w);
    h = hash_combine(h, k.sprint_peak_w);
    h = hash_combine(h, k.core_static_w);
    h = hash_combine(h, k.kappa);
    h = hash_combine(h, k.idle_w);
    h = hash_combine(h, std::uint64_t(k.num_levels));
    h = hash_combine(h, k.lambda_max);
    return std::size_t(h);
  }
};

// Process-wide shared-table cache. Thread safety: race-free static
// initialization plus an internally synchronized (capability-annotated)
// KeyedCache; safe to call from concurrent sweep cells.
KeyedCache<ProfileKey, ProfileTable, ProfileKeyHash>& profile_cache() {
  static KeyedCache<ProfileKey, ProfileTable, ProfileKeyHash> cache(32);
  return cache;
}

ProfileKey make_key(const workload::AppDescriptor& app,
                    const server::ServerPowerModel& power, int num_levels,
                    double lambda_max) {
  return ProfileKey{app.name,
                    app.base_service_s,
                    app.freq_sensitivity,
                    app.congestion_delta,
                    app.qos.percentile,
                    app.qos.limit.value(),
                    app.normal_full_power.value(),
                    app.sprint_peak_power.value(),
                    app.activity.core_static_w,
                    app.activity.kappa,
                    power.idle_power().value(),
                    num_levels,
                    lambda_max};
}

}  // namespace

std::shared_ptr<const ProfileTable> ProfileTable::shared(
    const workload::PerfModel& perf, const server::ServerPowerModel& power,
    int num_levels, double lambda_max) {
  const ProfileKey key = make_key(perf.app(), power, num_levels, lambda_max);
  return profile_cache().get_or_create(key, [&] {
    return ProfileTable(perf, power, num_levels, lambda_max);
  });
}

CacheStats ProfileTable::shared_cache_stats() {
  return profile_cache().stats();
}

void ProfileTable::clear_shared_cache() { profile_cache().clear(); }

ProfileTable::ProfileTable(const workload::PerfModel& perf,
                           const server::ServerPowerModel& power,
                           int num_levels, double lambda_max)
    : num_levels_(num_levels),
      lambda_max_(lambda_max > 0.0 ? lambda_max
                                   : perf.intensity_load(server::kMaxCores)) {
  GS_REQUIRE(num_levels_ >= 1, "profile needs at least one level");
  const auto n_settings = lattice_.size();
  const auto total = std::size_t(num_levels_) * n_settings;
  power_w_.resize(total);
  goodput_.resize(total);
  latency_s_.resize(total);
  for (int l = 0; l < num_levels_; ++l) {
    const double lambda = lambda_for(l);
    for (std::size_t s = 0; s < n_settings; ++s) {
      const auto& setting = lattice_.at(s);
      const double u = perf.utilization(setting, lambda);
      power_w_[idx(l, s)] =
          power.power(setting, u, perf.app().activity).value();
      goodput_[idx(l, s)] = perf.goodput(setting, lambda);
      latency_s_[idx(l, s)] = perf.latency(setting, lambda).value();
    }
  }
  std::uint64_t h = 0x9e0f11e2ull;
  h = hash_combine(h, std::uint64_t(num_levels_));
  h = hash_combine(h, lambda_max_);
  h = hash_combine(h, std::uint64_t(n_settings));
  for (double v : power_w_) h = hash_combine(h, v);
  for (double v : goodput_) h = hash_combine(h, v);
  for (double v : latency_s_) h = hash_combine(h, v);
  fingerprint_ = h;
}

int ProfileTable::level_for(double lambda) const {
  GS_REQUIRE(lambda >= 0.0, "load must be non-negative");
  const double frac = lambda / lambda_max_;
  const int level = int(std::ceil(frac * num_levels_)) - 1;
  return std::clamp(level, 0, num_levels_ - 1);
}

double ProfileTable::lambda_for(int level) const {
  GS_REQUIRE(level >= 0 && level < num_levels_, "level out of range");
  return lambda_max_ * double(level + 1) / double(num_levels_);
}

Watts ProfileTable::power(int level, std::size_t setting) const {
  return Watts(power_w_[idx(level, setting)]);
}

double ProfileTable::goodput(int level, std::size_t setting) const {
  return goodput_[idx(level, setting)];
}

Seconds ProfileTable::latency(int level, std::size_t setting) const {
  return Seconds(latency_s_[idx(level, setting)]);
}

std::size_t ProfileTable::idx(int level, std::size_t setting) const {
  GS_REQUIRE(level >= 0 && level < num_levels_, "level out of range");
  GS_REQUIRE(setting < lattice_.size(), "setting out of range");
  return std::size_t(level) * lattice_.size() + setting;
}

}  // namespace gs::core
