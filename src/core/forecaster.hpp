// Alternative renewable-supply forecasters.
//
// The paper uses an EWMA (Equation 1) and remarks that "most solar
// prediction algorithms are accurate when weather conditions are stable".
// This header provides the comparison set that remark invites:
//
//  * EwmaForecaster       — the paper's Equation 1 (alpha = 0.3),
//  * PersistenceForecaster — tomorrow-equals-today at minute scale
//    (predict exactly the last observation; the classic baseline),
//  * ClearSkyForecaster   — EWMA on the *clear-sky index* obs/envelope(t):
//    the diurnal ramp is predicted deterministically from geometry and
//    only the cloud transmittance is smoothed. Standard practice in solar
//    forecasting; it removes the systematic lag EWMA shows at dawn/dusk.
//
// bench/abl_predictor quantifies the error differences on the synthetic
// traces; the controller keeps the paper's EWMA as the default.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>

#include "ckpt/fwd.hpp"
#include "common/ewma.hpp"
#include "common/units.hpp"

namespace gs::core {

/// Interface: observe production at an absolute trace time, predict the
/// next epoch's supply.
class RenewableForecaster {
 public:
  virtual ~RenewableForecaster() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  virtual void observe(Watts production, Seconds now) = 0;
  /// Forecast for the epoch starting at `next` (0 before any observation).
  [[nodiscard]] virtual Watts predict(Seconds next) const = 0;

  // --- Checkpoint/restore (src/ckpt): each forecaster writes a section
  // named after itself, so loading a snapshot into the wrong kind fails
  // with a clean SnapshotError.
  static constexpr std::uint32_t kStateVersion = 1;
  virtual void save_state(ckpt::StateWriter& w) const = 0;
  virtual void load_state(ckpt::StateReader& r) = 0;
};

class EwmaForecaster final : public RenewableForecaster {
 public:
  explicit EwmaForecaster(double alpha = 0.3) : ewma_(alpha) {}
  [[nodiscard]] std::string_view name() const override { return "EWMA"; }
  void observe(Watts production, Seconds) override {
    ewma_.observe(production.value());
  }
  [[nodiscard]] Watts predict(Seconds) const override {
    return Watts(ewma_.primed() ? ewma_.prediction() : 0.0);
  }

  void save_state(ckpt::StateWriter& w) const override;
  void load_state(ckpt::StateReader& r) override;

 private:
  Ewma ewma_;
};

class PersistenceForecaster final : public RenewableForecaster {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "Persistence";
  }
  void observe(Watts production, Seconds) override { last_ = production; }
  [[nodiscard]] Watts predict(Seconds) const override { return last_; }

  void save_state(ckpt::StateWriter& w) const override;
  void load_state(ckpt::StateReader& r) override;

 private:
  Watts last_{0.0};
};

/// EWMA over the clear-sky index. `envelope` maps an absolute time to the
/// cloudless normalized output in [0,1]; `peak` scales it to watts.
class ClearSkyForecaster final : public RenewableForecaster {
 public:
  using EnvelopeFn = std::function<double(Seconds)>;
  ClearSkyForecaster(EnvelopeFn envelope, Watts peak, double alpha = 0.3)
      : envelope_(std::move(envelope)), peak_(peak), index_(alpha) {}

  [[nodiscard]] std::string_view name() const override { return "ClearSky"; }

  void observe(Watts production, Seconds now) override {
    const double env = envelope_(now);
    if (env > 1e-3) {
      // Clamp: sensor noise can push the index slightly above 1.
      const double idx =
          std::min(1.5, production.value() / (peak_.value() * env));
      index_.observe(idx);
    }
    // Night samples carry no cloud information; the index persists.
  }

  [[nodiscard]] Watts predict(Seconds next) const override {
    const double env = envelope_(next);
    const double idx = index_.primed() ? index_.prediction() : 0.0;
    return Watts(peak_.value() * env * idx);
  }

  void save_state(ckpt::StateWriter& w) const override;
  void load_state(ckpt::StateReader& r) override;

 private:
  EnvelopeFn envelope_;
  Watts peak_;
  Ewma index_;
};

enum class ForecasterKind { Ewma, Persistence, ClearSky };

[[nodiscard]] const char* to_string(ForecasterKind k);

/// Factory. ClearSky needs the envelope + peak; the others ignore them.
[[nodiscard]] std::unique_ptr<RenewableForecaster> make_forecaster(
    ForecasterKind kind, ClearSkyForecaster::EnvelopeFn envelope = {},
    Watts peak = Watts(0.0));

}  // namespace gs::core
