#include "core/greensprint.hpp"

#include "ckpt/state_io.hpp"
#include "common/assert.hpp"
#include "server/setting.hpp"

namespace gs::core {

const char* to_string(HealthState s) {
  switch (s) {
    case HealthState::Healthy:
      return "Healthy";
    case HealthState::Degraded:
      return "Degraded";
    case HealthState::Recovering:
      return "Recovering";
  }
  return "?";
}

GreenSprintController::GreenSprintController(
    const workload::AppDescriptor& app, const ProfileTable& profile,
    Watts idle_power, ControllerConfig cfg)
    : profile_(profile),
      cfg_(cfg),
      predictor_(cfg.predictor),
      strategy_(make_strategy(cfg.strategy, profile, app, idle_power)) {}

bool GreenSprintController::set_strategy(StrategyKind kind,
                                         const workload::AppDescriptor& app,
                                         Watts idle_power) {
  if (kind == cfg_.strategy) return false;
  cfg_.strategy = kind;
  strategy_ = make_strategy(kind, profile_, app, idle_power);
  pending_ = Pending{};
  return true;
}

server::ServerSetting GreenSprintController::begin_epoch(
    double observed_load, Watts battery_power) {
  GS_REQUIRE(observed_load >= 0.0, "load must be non-negative");
  predictor_.observe_load(observed_load);
  const EpochContext ctx{predictor_.predicted_load(),
                         predictor_.predicted_renewable() + battery_power,
                         cfg_.epoch,
                         health_aware_active() ? int(health_) : 0};
  // The new context is the successor state of the previous epoch's
  // decision: complete that learning step now.
  if (pending_.armed && pending_.closed) {
    strategy_->feedback({pending_.ctx, pending_.action, pending_.demand,
                         pending_.supply, pending_.latency,
                         pending_.observed_load, ctx});
  }
  pending_ = Pending{};
  pending_.ctx = ctx;
  pending_.action = strategy_->decide(ctx);
  // Degraded mode: with untrusted supply or telemetry the only safe plan
  // is the grid-backed Normal floor. The clamped action is what executes,
  // so it is also what the learning step records. A health-aware Hybrid
  // instead sees the health state in its Q-state and learns the recovery
  // action itself (the feasibility mask and the runner's replan path stay
  // as the safety floor).
  if (degraded() && !health_aware_active()) {
    pending_.action = server::normal_mode();
  }
  pending_.observed_load = observed_load;
  pending_.armed = true;
  return pending_.action;
}

server::ServerSetting GreenSprintController::replan(Watts actual_supply) {
  GS_REQUIRE(pending_.armed, "replan before begin_epoch");
  EpochContext ctx = pending_.ctx;
  ctx.supply = actual_supply;
  pending_.action = strategy_->decide(ctx);
  if (degraded() && !health_aware_active()) {
    pending_.action = server::normal_mode();
  }
  return pending_.action;
}

void GreenSprintController::end_epoch(Watts re_observed, Watts power_demand,
                                      Watts green_supply,
                                      Seconds achieved_latency) {
  GS_REQUIRE(pending_.armed, "end_epoch before begin_epoch");
  predictor_.observe_renewable(re_observed);
  pending_.demand = power_demand;
  pending_.supply = green_supply;
  pending_.latency = achieved_latency;
  pending_.closed = true;
}

void GreenSprintController::observe_idle(double observed_load,
                                         Watts re_observed) {
  GS_REQUIRE(observed_load >= 0.0, "load must be non-negative");
  predictor_.observe_load(observed_load);
  predictor_.observe_renewable(re_observed);
  pending_ = Pending{};
}

void GreenSprintController::notify_health(bool supply_shortfall,
                                          bool stale_telemetry) {
  if (supply_shortfall || stale_telemetry) {
    health_ = HealthState::Degraded;
    healthy_streak_ = 0;
    return;
  }
  if (health_ == HealthState::Healthy) return;
  health_ = HealthState::Recovering;
  ++healthy_streak_;
  if (healthy_streak_ >= cfg_.recovery_epochs) {
    health_ = HealthState::Healthy;
    healthy_streak_ = 0;
  }
}

Watts GreenSprintController::demand(double load,
                                    const server::ServerSetting& s) const {
  const int level = profile_.level_for(load);
  return profile_.power(level, profile_.lattice().index_of(s));
}

void GreenSprintController::save_state(ckpt::StateWriter& w) const {
  w.begin_section("controller", kStateVersion);
  predictor_.save_state(w);
  w.f64(pending_.ctx.predicted_load);
  w.f64(pending_.ctx.supply.value());
  w.f64(pending_.ctx.epoch.value());
  w.i64(pending_.ctx.health);
  w.i64(pending_.action.cores);
  w.i64(pending_.action.freq_idx);
  w.f64(pending_.demand.value());
  w.f64(pending_.supply.value());
  w.f64(pending_.latency.value());
  w.f64(pending_.observed_load);
  w.boolean(pending_.armed);
  w.boolean(pending_.closed);
  w.u8(std::uint8_t(health_));
  w.i64(healthy_streak_);
  strategy_->save_state(w);
  w.end_section();
}

void GreenSprintController::load_state(ckpt::StateReader& r) {
  r.begin_section("controller", kStateVersion);
  predictor_.load_state(r);
  pending_.ctx.predicted_load = r.f64();
  pending_.ctx.supply = Watts(r.f64());
  pending_.ctx.epoch = Seconds(r.f64());
  pending_.ctx.health = int(r.i64());
  pending_.action.cores = int(r.i64());
  pending_.action.freq_idx = int(r.i64());
  pending_.demand = Watts(r.f64());
  pending_.supply = Watts(r.f64());
  pending_.latency = Seconds(r.f64());
  pending_.observed_load = r.f64();
  pending_.armed = r.boolean();
  pending_.closed = r.boolean();
  const std::uint8_t health = r.u8();
  if (health > std::uint8_t(HealthState::Recovering)) {
    throw ckpt::SnapshotError("controller snapshot holds invalid health "
                              "state " + std::to_string(int(health)));
  }
  health_ = HealthState(health);
  healthy_streak_ = int(r.i64());
  strategy_->load_state(r);
  r.end_section();
}

}  // namespace gs::core
