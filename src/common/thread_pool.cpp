#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace gs {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mu_);
  while (!tasks_.empty() || in_flight_ != 0) cv_idle_.wait(mu_);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && tasks_.empty()) cv_task_.wait(mu_);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      MutexLock lock(mu_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t chunk) {
  if (n == 0) return;
  const std::size_t workers = pool.thread_count();
  if (chunk == 0) {
    chunk = std::max<std::size_t>(1, n / (workers * 4));
  }
  const std::size_t chunks = (n + chunk - 1) / chunk;
  if (workers == 1 || chunks == 1) {
    // Nothing to parallelize: run inline and skip the task round-trip.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // One resident task per worker; each claims chunk-sized ranges from the
  // shared counter until the index space is exhausted. The counter and fn
  // outlive the tasks because wait_idle() blocks below.
  std::atomic<std::size_t> next{0};
  const std::size_t tasks = std::min(workers, chunks);
  for (std::size_t t = 0; t < tasks; ++t) {
    pool.submit([&next, &fn, n, chunk] {
      for (;;) {
        const std::size_t start = next.fetch_add(chunk);
        if (start >= n) return;
        const std::size_t end = std::min(n, start + chunk);
        for (std::size_t i = start; i < end; ++i) fn(i);
      }
    });
  }
  pool.wait_idle();
}

}  // namespace gs
