// Clang thread-safety (capability) annotations, plus the annotated mutex
// primitives the rest of the codebase must use instead of <mutex> directly.
//
// Clang's -Wthread-safety analysis proves lock discipline at compile time:
// members tagged GS_GUARDED_BY(mu_) may only be touched while mu_ is held,
// and functions tagged GS_REQUIRES(mu_) may only be called with it held.
// gcc ignores the attributes (the macros expand to nothing), so both CI
// compilers build the same source.
//
// libstdc++'s std::mutex / std::lock_guard carry no annotations, which
// blinds the analysis; gs::Mutex / gs::MutexLock wrap them with the
// attributes clang needs. gs-lint (tools/gs_lint.py) enforces that src/
// never uses the raw std types outside this header.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define GS_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define GS_THREAD_ANNOTATION__(x)
#endif

/// A type that acts as a lockable capability (clang: `capability`).
#define GS_CAPABILITY(x) GS_THREAD_ANNOTATION__(capability(x))
/// RAII type that acquires on construction and releases on destruction.
#define GS_SCOPED_CAPABILITY GS_THREAD_ANNOTATION__(scoped_lockable)
/// Data member readable/writable only while the capability is held.
#define GS_GUARDED_BY(x) GS_THREAD_ANNOTATION__(guarded_by(x))
/// Pointer member whose pointee is guarded by the capability.
#define GS_PT_GUARDED_BY(x) GS_THREAD_ANNOTATION__(pt_guarded_by(x))
/// Function acquires the capability and holds it on return.
#define GS_ACQUIRE(...) GS_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
/// Function releases the capability (must be held on entry).
#define GS_RELEASE(...) GS_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define GS_TRY_ACQUIRE(...) \
  GS_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
/// Caller must hold the capability across the call.
#define GS_REQUIRES(...) \
  GS_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (the function acquires it itself).
#define GS_EXCLUDES(...) GS_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define GS_RETURN_CAPABILITY(x) GS_THREAD_ANNOTATION__(lock_returned(x))
/// Escape hatch: suppress the analysis for one function (justify in a
/// comment; gs-lint does not exempt suppressed code from its own rules).
#define GS_NO_THREAD_SAFETY_ANALYSIS \
  GS_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace gs {

/// std::mutex with capability annotations. Lock it via MutexLock; the raw
/// lock()/unlock() exist for CondVar and the analysis attributes.
class GS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GS_ACQUIRE() { mu_.lock(); }
  void unlock() GS_RELEASE() { mu_.unlock(); }
  bool try_lock() GS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over gs::Mutex (annotated std::lock_guard equivalent).
class GS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() GS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over gs::Mutex. No predicate overload on purpose:
/// clang cannot propagate capabilities into a predicate lambda, so waits
/// are written as explicit `while (!cond) cv.wait(mu);` loops inside the
/// critical section, which the analysis checks directly.
class CondVar {
 public:
  /// Atomically releases `mu` and sleeps; re-acquires before returning.
  void wait(Mutex& mu) GS_REQUIRES(mu) { cv_.wait(mu); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace gs
