// gs:durable-io
// Durable file I/O shim: every byte the checkpoint/WAL/lease layer
// commits to disk flows through here, for two reasons.
//
//  1. Durability. atomic_write_file implements the full
//     tmp → write → fdatasync → rename → parent-dir-fsync discipline
//     (behind Durability so bulk CSV exports can opt out), closing the
//     "crash just after commit surfaces an empty or stale file" window
//     the bare tmp+rename writers left open.
//  2. Fault injection. Each entry point hosts a named gs::failpoint site,
//     so the chaos lane can deterministically fail, tear, or crash any
//     durable operation (see common/failpoint.hpp for the grammar).
//
// Error contract: all failures — real or injected — throw IoError. A
// TornWrite action is the one deliberate exception to "fail loudly": it
// persists a prefix and *returns success*, modeling firmware that lies.
#pragma once

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <string_view>

namespace gs::io {

/// How hard a committed write chases the platters.
enum class Durability : std::uint8_t {
  None,  ///< Buffered write + atomic rename only (bulk exports).
  Full,  ///< fdatasync the file, then fsync the parent directory.
};

/// Thrown on any failed or injected-failed I/O operation.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

struct WriteOptions {
  Durability durability = Durability::Full;
  /// Failpoint site consulted before the bytes move.
  const char* site = "io.atomic_write";
};

/// Atomically replace `path` with `bytes`: write to `tmp`, sync per
/// `opts.durability`, rename over `path`, fsync the parent directory.
/// Injected actions: Eio/Enospc throw before any byte lands; ShortWrite
/// persists a prefix under `tmp` and throws; TornWrite persists a prefix
/// under `path` (renamed!) and returns success; Crash _exits mid-write.
void atomic_write_file(const std::filesystem::path& path,
                       const std::filesystem::path& tmp,
                       std::string_view bytes, const WriteOptions& opts);

/// atomic_write_file with a self-derived temp name next to `path`.
void atomic_write_file(const std::filesystem::path& path,
                       std::string_view bytes, const WriteOptions& opts);

/// Buffered append-only stream (WAL segments, series catalog). Appends
/// accumulate in a user-space buffer flushed at a syscall-friendly
/// granularity; flush(Full) additionally fdatasyncs.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile();
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Open `path` truncated (fresh segment) or appending (catalog).
  /// `site` is the failpoint consulted on every append.
  void open_trunc(const std::filesystem::path& path, const char* site);
  void open_append(const std::filesystem::path& path, const char* site);

  /// Append bytes. Injected Eio/Enospc throw before any byte moves;
  /// ShortWrite/TornWrite flush the buffer, persist a *prefix* of
  /// `bytes` (torn mid-record), and throw; Crash _exits.
  void append(std::string_view bytes);

  void flush(Durability durability);
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  /// Flushed bytes + buffered bytes since open (append mode: since open,
  /// not file size).
  [[nodiscard]] std::uint64_t bytes_written() const { return written_; }
  void close();

 private:
  void open_mode(const std::filesystem::path& path, const char* site,
                 int flags);
  void flush_buffer();

  int fd_ = -1;
  std::string path_;
  const char* site_ = "io.append";
  std::string buf_;
  std::uint64_t written_ = 0;
};

/// O_CREAT|O_EXCL claim (sweep leases): true when this caller created the
/// file, false when it already exists. Injected Eio/Enospc throw;
/// TornWrite creates the file with a prefix of `body` and reports
/// success; Crash _exits after creation, leaving an orphan claim.
bool exclusive_create(const std::filesystem::path& path,
                      std::string_view body, const char* site);

/// rename(2) through a failpoint (lease steal, repairs). Any injected
/// write-shaping action degrades to Eio — a rename has no byte stream.
void rename_file(const std::filesystem::path& from,
                 const std::filesystem::path& to, const char* site);

/// truncate(2) through a failpoint (WAL torn-tail repair).
void truncate_file(const std::filesystem::path& path, std::uint64_t size,
                   const char* site);

/// fsync the directory containing `entry` so a just-renamed name survives
/// power loss. Filesystems that cannot fsync a directory are tolerated.
void fsync_parent_dir(const std::filesystem::path& entry);

}  // namespace gs::io
