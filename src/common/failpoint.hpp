// Deterministic failure injection for durability code paths.
//
// A *failpoint* is a named site in the I/O layer ("ckpt.snapshot.write",
// "tsdb.wal.append", ...) that normally does nothing and costs one relaxed
// atomic load. When armed — via GS_FAILPOINTS in the environment, a
// --failpoints CLI flag, or configure() in tests — a site fires a
// configured *action* (EIO, ENOSPC, short write, torn write, crash via
// _exit) under a deterministic *trigger* (always, nth hit, every kth hit,
// or seeded probability drawn from a dedicated Rng stream).
//
// Spec grammar (see DESIGN.md §17):
//
//   spec    := clause (';' clause)*
//   clause  := site '=' action ['@' trigger]
//   action  := eio | enospc | short | torn | crash | off
//   trigger := always | hit:N | every:K | p:X        (default: always)
//
// e.g. "ckpt.snapshot.write=crash@hit:3;tsdb.wal.append=eio@p:0.01".
//
// Determinism contract: with a fixed spec, seed, and sequence of consult()
// calls, the same hits fire — chaos schedules replay exactly. Probability
// triggers draw from Rng::stream(seed, {kFailpointStreamTag, fnv(site)}),
// so sites are statistically independent of each other and of every
// simulation stream.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace gs::failpoint {

/// Process exit code used by the `crash` action; chaos harnesses key on it
/// to distinguish an induced crash from a real failure.
inline constexpr int kCrashExitCode = 121;

/// What a fired site does to the I/O operation hosting it.
enum class ActionKind : std::uint8_t {
  None,        ///< Site disarmed or trigger did not fire.
  Eio,         ///< Fail the operation as if the device returned EIO.
  Enospc,      ///< Fail the operation as if the filesystem were full.
  ShortWrite,  ///< Persist a prefix of the bytes, then report failure.
  TornWrite,   ///< Persist a prefix of the bytes and report *success*.
  Crash,       ///< _exit(kCrashExitCode) at the site, mid-operation.
};

struct Action {
  ActionKind kind = ActionKind::None;

  [[nodiscard]] explicit operator bool() const {
    return kind != ActionKind::None;
  }
};

/// Thrown by configure() on a malformed spec string.
class SpecError : public std::runtime_error {
 public:
  explicit SpecError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown by trip() when a non-write site fires Eio/Enospc.
class InducedError : public std::runtime_error {
 public:
  explicit InducedError(const std::string& what)
      : std::runtime_error(what) {}
};

/// True when any site is configured. One relaxed atomic load after a
/// one-time bootstrap from the GS_FAILPOINTS / GS_FAILPOINT_SEED
/// environment, so disarmed hot paths pay essentially nothing.
[[nodiscard]] bool armed();

/// Replace the active configuration with `spec` (throws SpecError on a
/// malformed spec; an empty spec disarms everything). Hit counters reset.
void configure(std::string_view spec, std::uint64_t seed = 0);

/// configure() from GS_FAILPOINTS / GS_FAILPOINT_SEED; no-op when unset.
void configure_from_env();

/// Disarm every site and clear all counters.
void reset();

/// Evaluate `site` against the active configuration: counts the hit,
/// evaluates the trigger, and returns the action the caller must apply.
/// A fired Crash action never returns — it writes one line to stderr and
/// _exit(kCrashExitCode)s right here, mid-operation.
[[nodiscard]] Action consult(const char* site);

/// consult() for sites that host no byte stream: Eio/Enospc throw
/// InducedError, Crash exits, and the write-shaping actions (short/torn)
/// are ignored — there are no bytes to tear.
void trip(const char* site);

/// Times `site` was consulted while configured (0 when not configured).
[[nodiscard]] std::uint64_t hits(std::string_view site);

/// Times `site` actually fired its action.
[[nodiscard]] std::uint64_t fired(std::string_view site);

/// Canonical round-trip of the active spec ("" when disarmed).
[[nodiscard]] std::string describe();

}  // namespace gs::failpoint

/// Marker for failure sites outside the gs::io byte shims (lease steal,
/// daemon drain, ...): crash or fail here, never tear bytes.
#define GS_FAILPOINT(site)                          \
  do {                                              \
    if (::gs::failpoint::armed()) {                 \
      ::gs::failpoint::trip(site);                  \
    }                                               \
  } while (0)
