#include "common/failpoint.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_annotations.hpp"

namespace gs::failpoint {
namespace {

/// Leading Rng::stream tag owned by this file (rng-stream-ownership).
constexpr std::uint64_t kFailpointStreamTag = 0xfa11ull;

/// FNV-1a 64 over the site name: the per-site stream discriminator.
std::uint64_t site_hash(std::string_view site) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : site) {
    h ^= std::uint64_t(static_cast<unsigned char>(c));
    h *= 0x100000001b3ull;
  }
  return h;
}

enum class TriggerKind : std::uint8_t { Always, Hit, Every, Prob };

struct Trigger {
  TriggerKind kind = TriggerKind::Always;
  std::uint64_t n = 0;   ///< Hit / Every operand.
  double p = 0.0;        ///< Prob operand.
};

struct SiteState {
  ActionKind action = ActionKind::None;
  Trigger trigger;
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
  Rng rng;  ///< Only drawn from for Prob triggers.
};

struct Registry {
  Mutex mu;
  std::map<std::string, SiteState, std::less<>> sites GS_GUARDED_BY(mu);
  std::uint64_t seed GS_GUARDED_BY(mu) = 0;
};

std::atomic<bool> g_armed{false};

Registry& registry() {
  static Registry r;
  return r;
}

[[noreturn]] void crash_now(const char* site) {
  // stderr is unbuffered enough for the chaos harness to see the line
  // even though _exit skips every flush.
  std::fprintf(stderr, "failpoint %s: induced crash (_exit %d)\n", site,
               kCrashExitCode);
  ::_exit(kCrashExitCode);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

ActionKind parse_action(std::string_view word, std::string_view clause) {
  if (word == "eio") return ActionKind::Eio;
  if (word == "enospc") return ActionKind::Enospc;
  if (word == "short") return ActionKind::ShortWrite;
  if (word == "torn") return ActionKind::TornWrite;
  if (word == "crash") return ActionKind::Crash;
  if (word == "off") return ActionKind::None;
  throw SpecError("failpoint spec: unknown action '" + std::string(word) +
                  "' in clause '" + std::string(clause) + "'");
}

std::uint64_t parse_count(std::string_view digits, std::string_view clause) {
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string_view::npos) {
    throw SpecError("failpoint spec: bad count '" + std::string(digits) +
                    "' in clause '" + std::string(clause) + "'");
  }
  const std::uint64_t n = std::strtoull(std::string(digits).c_str(),
                                        nullptr, 10);
  if (n == 0) {
    throw SpecError("failpoint spec: count must be >= 1 in clause '" +
                    std::string(clause) + "'");
  }
  return n;
}

Trigger parse_trigger(std::string_view word, std::string_view clause) {
  Trigger t;
  if (word == "always") return t;
  if (word.rfind("hit:", 0) == 0) {
    t.kind = TriggerKind::Hit;
    t.n = parse_count(word.substr(4), clause);
    return t;
  }
  if (word.rfind("every:", 0) == 0) {
    t.kind = TriggerKind::Every;
    t.n = parse_count(word.substr(6), clause);
    return t;
  }
  if (word.rfind("p:", 0) == 0) {
    t.kind = TriggerKind::Prob;
    char* end = nullptr;
    const std::string num(word.substr(2));
    t.p = std::strtod(num.c_str(), &end);
    if (num.empty() || end == nullptr || *end != '\0' || t.p < 0.0 ||
        t.p > 1.0) {
      throw SpecError("failpoint spec: probability must be in [0, 1] in "
                      "clause '" + std::string(clause) + "'");
    }
    return t;
  }
  throw SpecError("failpoint spec: unknown trigger '" + std::string(word) +
                  "' in clause '" + std::string(clause) + "'");
}

const char* action_word(ActionKind k) {
  switch (k) {
    case ActionKind::Eio: return "eio";
    case ActionKind::Enospc: return "enospc";
    case ActionKind::ShortWrite: return "short";
    case ActionKind::TornWrite: return "torn";
    case ActionKind::Crash: return "crash";
    case ActionKind::None: break;
  }
  return "off";
}

std::string trigger_word(const Trigger& t) {
  switch (t.kind) {
    case TriggerKind::Always: return "always";
    case TriggerKind::Hit: return "hit:" + std::to_string(t.n);
    case TriggerKind::Every: return "every:" + std::to_string(t.n);
    case TriggerKind::Prob: {
      std::ostringstream os;
      os << "p:" << t.p;
      return std::move(os).str();
    }
  }
  return "always";
}

/// One-time bootstrap: the first armed() call in the process picks up the
/// environment, so tools need no explicit wiring to honor GS_FAILPOINTS.
void bootstrap_from_env_once() {
  static const bool done = [] {
    configure_from_env();
    return true;
  }();
  (void)done;
}

}  // namespace

bool armed() {
  bootstrap_from_env_once();
  return g_armed.load(std::memory_order_relaxed);
}

void configure(std::string_view spec, std::uint64_t seed) {
  std::map<std::string, SiteState, std::less<>> sites;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    const std::string_view clause =
        trim(semi == std::string_view::npos ? rest : rest.substr(0, semi));
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw SpecError("failpoint spec: expected 'site=action[@trigger]', "
                      "got '" + std::string(clause) + "'");
    }
    const std::string site(trim(clause.substr(0, eq)));
    std::string_view right = trim(clause.substr(eq + 1));
    const std::size_t at = right.find('@');
    SiteState st;
    st.action = parse_action(
        trim(at == std::string_view::npos ? right : right.substr(0, at)),
        clause);
    if (at != std::string_view::npos) {
      st.trigger = parse_trigger(trim(right.substr(at + 1)), clause);
    }
    if (st.action == ActionKind::None) {
      sites.erase(site);  // "off" removes an earlier clause for the site
      continue;
    }
    st.rng = Rng::stream(seed, {kFailpointStreamTag, site_hash(site)});
    sites.insert_or_assign(site, std::move(st));
  }

  Registry& r = registry();
  MutexLock lock(r.mu);
  r.sites = std::move(sites);
  r.seed = seed;
  g_armed.store(!r.sites.empty(), std::memory_order_relaxed);
}

void configure_from_env() {
  const char* spec = std::getenv("GS_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return;
  std::uint64_t seed = 0;
  if (const char* s = std::getenv("GS_FAILPOINT_SEED")) {
    seed = std::strtoull(s, nullptr, 10);
  }
  configure(spec, seed);
}

void reset() { configure("", 0); }

Action consult(const char* site) {
  if (!armed()) return {};
  Registry& r = registry();
  ActionKind kind = ActionKind::None;
  {
    MutexLock lock(r.mu);
    const auto it = r.sites.find(std::string_view(site));
    if (it == r.sites.end()) return {};
    SiteState& st = it->second;
    ++st.hits;
    bool fire = false;
    switch (st.trigger.kind) {
      case TriggerKind::Always: fire = true; break;
      case TriggerKind::Hit: fire = st.hits == st.trigger.n; break;
      case TriggerKind::Every: fire = st.hits % st.trigger.n == 0; break;
      case TriggerKind::Prob: fire = st.rng.uniform() < st.trigger.p; break;
    }
    if (!fire) return {};
    ++st.fired;
    kind = st.action;
  }
  if (kind == ActionKind::Crash) crash_now(site);
  return Action{kind};
}

void trip(const char* site) {
  const Action a = consult(site);
  switch (a.kind) {
    case ActionKind::Eio:
      throw InducedError(std::string("failpoint ") + site + ": injected EIO");
    case ActionKind::Enospc:
      throw InducedError(std::string("failpoint ") + site +
                         ": injected ENOSPC");
    case ActionKind::None:
    case ActionKind::ShortWrite:  // no byte stream at a trip() site
    case ActionKind::TornWrite:
    case ActionKind::Crash:  // consult() never returns Crash
      break;
  }
}

std::uint64_t hits(std::string_view site) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  const auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

std::uint64_t fired(std::string_view site) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  const auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.fired;
}

std::string describe() {
  Registry& r = registry();
  MutexLock lock(r.mu);
  std::string out;
  for (const auto& [site, st] : r.sites) {
    if (!out.empty()) out += ';';
    out += site;
    out += '=';
    out += action_word(st.action);
    out += '@';
    out += trigger_word(st.trigger);
  }
  return out;
}

}  // namespace gs::failpoint
