// Deterministic, stream-splittable random number generation.
//
// Experiment sweeps run cells in parallel on a thread pool; every cell
// derives its own Rng from (base_seed, cell identifiers) so the results are
// bit-identical regardless of thread schedule. The core generator is
// xoshiro256** seeded via SplitMix64, both public-domain algorithms.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <initializer_list>
#include <numbers>

#include "common/assert.hpp"

namespace gs {

/// SplitMix64 step: used for seeding and for hashing stream identifiers.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with distribution helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d2c5680u) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  /// Derive an independent stream from a base seed and a list of
  /// identifiers (e.g. {cell_index, server_index}).
  static Rng stream(std::uint64_t base,
                    std::initializer_list<std::uint64_t> ids) {
    std::uint64_t h = base;
    for (std::uint64_t id : ids) {
      h ^= splitmix64(id) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return Rng(h);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return double((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n) {
    GS_REQUIRE(n > 0, "uniform_int needs n > 0");
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = __uint128_t(x) * __uint128_t(n);
    auto lo = std::uint64_t(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = (*this)();
        m = __uint128_t(x) * __uint128_t(n);
        lo = std::uint64_t(m);
      }
    }
    return std::uint64_t(m >> 64);
  }

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) {
    GS_REQUIRE(rate > 0.0, "exponential needs rate > 0");
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
  }

  /// Standard normal via Box–Muller.
  double normal() {
    double u1;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Raw generator state, for checkpoint/restore: a restored Rng continues
  /// the stream bit-identically from where the saved one stopped.
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const {
    return s_;
  }

  void set_state(const std::array<std::uint64_t, 4>& s) { s_ = s; }

  /// Poisson count (Knuth for small means, normal approximation for large).
  std::uint64_t poisson(double mean) {
    GS_REQUIRE(mean >= 0.0, "poisson needs mean >= 0");
    if (mean == 0.0) return 0;
    if (mean < 64.0) {
      const double limit = std::exp(-mean);
      double prod = uniform();
      std::uint64_t n = 0;
      while (prod > limit) {
        prod *= uniform();
        ++n;
      }
      return n;
    }
    const double x = normal(mean, std::sqrt(mean));
    return x <= 0.0 ? 0 : std::uint64_t(x + 0.5);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace gs
