// Minimal fixed-size thread pool with a parallel index loop, used by the
// experiment runner to fan sweep cells across cores. Determinism does not
// depend on the schedule: every cell derives its own Rng stream.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace gs {

class ThreadPool {
 public:
  /// threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task; tasks must not throw (exceptions terminate the pool's
  /// worker). Wrap risky work and report errors via the captured state.
  void submit(std::function<void()> task) GS_EXCLUDES(mu_);

  /// Block until every submitted task has finished.
  void wait_idle() GS_EXCLUDES(mu_);

 private:
  void worker_loop() GS_EXCLUDES(mu_);

  std::vector<std::thread> workers_;  // written only by the ctor/dtor thread
  Mutex mu_;
  CondVar cv_task_;
  CondVar cv_idle_;
  std::queue<std::function<void()>> tasks_ GS_GUARDED_BY(mu_);
  std::size_t in_flight_ GS_GUARDED_BY(mu_) = 0;
  bool stop_ GS_GUARDED_BY(mu_) = false;
};

/// Run fn(i) for i in [0, n) across the pool; blocks until all complete.
/// fn must be safe to invoke concurrently for distinct i and must not
/// throw (report errors via captured state, as ThreadPool::submit requires).
///
/// Chunked execution: instead of one heap-allocated task per index, one
/// task per worker is submitted and workers claim `chunk`-sized index
/// ranges from a shared atomic counter until the range is exhausted. The
/// dynamic claim is the work-stealing tail: a worker stuck on a slow cell
/// simply claims fewer chunks while the others drain the rest, so uneven
/// cells don't straggle. chunk == 0 picks ~4 chunks per worker (good for
/// cheap uniform bodies); pass chunk == 1 for coarse uneven bodies such as
/// sweep cells. Results are index-addressed, so chunking never affects
/// determinism.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t chunk = 0);

}  // namespace gs
