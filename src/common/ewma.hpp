// Exponentially weighted moving average, the predictor primitive the paper
// uses for both renewable-supply and workload-intensity forecasting
// (Equation 1: pred(t) = alpha * pred(t-1) + (1-alpha) * obs(t)).
#pragma once

#include "common/assert.hpp"

namespace gs {

class Ewma {
 public:
  /// alpha weights the previous prediction; the paper finds alpha = 0.3
  /// (weighting towards the current observation) most consistent.
  explicit Ewma(double alpha) : alpha_(alpha) {
    GS_REQUIRE(alpha >= 0.0 && alpha <= 1.0, "EWMA alpha must be in [0,1]");
  }

  /// Feed an observation; returns the updated prediction for the next epoch.
  double observe(double obs) {
    if (!primed_) {
      value_ = obs;
      primed_ = true;
    } else {
      value_ = alpha_ * value_ + (1.0 - alpha_) * obs;
    }
    return value_;
  }

  /// Prediction for the next epoch; valid only after the first observation.
  [[nodiscard]] double prediction() const {
    GS_REQUIRE(primed_, "EWMA queried before any observation");
    return value_;
  }

  [[nodiscard]] bool primed() const { return primed_; }
  [[nodiscard]] double alpha() const { return alpha_; }

  void reset() { primed_ = false; value_ = 0.0; }

  /// Raw value regardless of primed state, for checkpoint/restore.
  [[nodiscard]] double raw_value() const { return value_; }

  /// Restore from checkpointed state; alpha stays as constructed.
  void restore(double value, bool primed) {
    value_ = value;
    primed_ = primed;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

}  // namespace gs
