// Strong unit types for the power / energy arithmetic that permeates
// GreenSprint. A Quantity<Tag> is a thin wrapper over double with the usual
// additive arithmetic; cross-unit products (W * s = J, V * A = W, ...) are
// defined explicitly so that mixing up power and energy is a compile error
// rather than a silent simulation bug.
#pragma once

#include <compare>
#include <ostream>

namespace gs {

template <class Tag>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : v_(v) {}

  [[nodiscard]] constexpr double value() const { return v_; }

  constexpr Quantity operator-() const { return Quantity(-v_); }
  constexpr Quantity& operator+=(Quantity o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    v_ -= o.v_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) {
    v_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    v_ /= s;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity(a.v_ + b.v_);
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity(a.v_ - b.v_);
  }
  friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity(a.v_ * s);
  }
  friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity(a.v_ * s);
  }
  friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity(a.v_ / s);
  }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Quantity a, Quantity b) {
    return a.v_ / b.v_;
  }
  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

  friend std::ostream& operator<<(std::ostream& os, Quantity q) {
    return os << q.v_;
  }

 private:
  double v_ = 0.0;
};

struct WattsTag {};
struct JoulesTag {};
struct WattHoursTag {};
struct AmpsTag {};
struct AmpHoursTag {};
struct VoltsTag {};
struct SecondsTag {};
struct GigahertzTag {};

using Watts = Quantity<WattsTag>;
using Joules = Quantity<JoulesTag>;
using WattHours = Quantity<WattHoursTag>;
using Amps = Quantity<AmpsTag>;
using AmpHours = Quantity<AmpHoursTag>;
using Volts = Quantity<VoltsTag>;
using Seconds = Quantity<SecondsTag>;
using Gigahertz = Quantity<GigahertzTag>;

// --- Cross-unit products / quotients -------------------------------------

constexpr Joules operator*(Watts p, Seconds t) {
  return Joules(p.value() * t.value());
}
constexpr Joules operator*(Seconds t, Watts p) { return p * t; }
constexpr Watts operator/(Joules e, Seconds t) {
  return Watts(e.value() / t.value());
}
constexpr Seconds operator/(Joules e, Watts p) {
  return Seconds(e.value() / p.value());
}

constexpr Watts operator*(Volts v, Amps i) {
  return Watts(v.value() * i.value());
}
constexpr Watts operator*(Amps i, Volts v) { return v * i; }
constexpr Amps operator/(Watts p, Volts v) {
  return Amps(p.value() / v.value());
}

/// Ah drained when a current flows for a duration (t in seconds).
constexpr AmpHours drained(Amps i, Seconds t) {
  return AmpHours(i.value() * t.value() / 3600.0);
}

constexpr WattHours to_watt_hours(Joules e) { return WattHours(e.value() / 3600.0); }
constexpr Joules to_joules(WattHours e) { return Joules(e.value() * 3600.0); }

/// Energy held in a battery: capacity (Ah) at a nominal voltage.
constexpr WattHours energy(AmpHours c, Volts v) {
  return WattHours(c.value() * v.value());
}

// --- Literals --------------------------------------------------------------

namespace literals {
constexpr Watts operator""_W(long double v) { return Watts(double(v)); }
constexpr Watts operator""_W(unsigned long long v) { return Watts(double(v)); }
constexpr Seconds operator""_s(long double v) { return Seconds(double(v)); }
constexpr Seconds operator""_s(unsigned long long v) {
  return Seconds(double(v));
}
constexpr Seconds operator""_min(long double v) {
  return Seconds(double(v) * 60.0);
}
constexpr Seconds operator""_min(unsigned long long v) {
  return Seconds(double(v) * 60.0);
}
constexpr Seconds operator""_h(long double v) {
  return Seconds(double(v) * 3600.0);
}
constexpr Seconds operator""_h(unsigned long long v) {
  return Seconds(double(v) * 3600.0);
}
constexpr AmpHours operator""_Ah(long double v) { return AmpHours(double(v)); }
constexpr AmpHours operator""_Ah(unsigned long long v) {
  return AmpHours(double(v));
}
constexpr Volts operator""_V(long double v) { return Volts(double(v)); }
constexpr Volts operator""_V(unsigned long long v) { return Volts(double(v)); }
constexpr Gigahertz operator""_GHz(long double v) {
  return Gigahertz(double(v));
}
}  // namespace literals

}  // namespace gs
