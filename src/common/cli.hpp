// Minimal command-line option parser for the examples and tools:
// supports --key=value, --key value, and bare --flag forms, with typed
// accessors and defaults. Unknown keys are collected so a tool can reject
// typos explicitly.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace gs {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Value of --key; nullopt when absent or given as a bare flag.
  [[nodiscard]] std::optional<std::string> value(const std::string& key) const;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] double get(const std::string& key, double fallback) const;
  [[nodiscard]] int get(const std::string& key, int fallback) const;
  [[nodiscard]] bool flag(const std::string& key) const { return has(key); }

  /// Non-option (positional) arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  /// All parsed option keys (to detect unknown options).
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::optional<std::string>> options_;
  std::vector<std::string> positional_;
};

inline CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    GS_REQUIRE(!body.empty(), "empty option name");
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[body] = std::string(argv[++i]);
    } else {
      options_[body] = std::nullopt;  // bare flag
    }
  }
}

inline bool CliArgs::has(const std::string& key) const {
  return options_.count(key) > 0;
}

inline std::optional<std::string> CliArgs::value(
    const std::string& key) const {
  const auto it = options_.find(key);
  return it == options_.end() ? std::nullopt : it->second;
}

inline std::string CliArgs::get(const std::string& key,
                                const std::string& fallback) const {
  const auto v = value(key);
  return v ? *v : fallback;
}

inline double CliArgs::get(const std::string& key, double fallback) const {
  const auto v = value(key);
  if (!v) return fallback;
  try {
    return std::stod(*v);
  } catch (...) {
    GS_REQUIRE(false, "option --" + key + " expects a number, got '" + *v +
                          "'");
  }
  return fallback;
}

inline int CliArgs::get(const std::string& key, int fallback) const {
  const auto v = value(key);
  if (!v) return fallback;
  try {
    return std::stoi(*v);
  } catch (...) {
    GS_REQUIRE(false, "option --" + key + " expects an integer, got '" +
                          *v + "'");
  }
  return fallback;
}

inline std::vector<std::string> CliArgs::keys() const {
  std::vector<std::string> out;
  out.reserve(options_.size());
  for (const auto& [k, v] : options_) out.push_back(k);
  return out;
}

}  // namespace gs
