// Small thread-safe memo cache for immutable, deterministically-derivable
// values (solar traces, availability windows, profile tables). Sweep cells
// sharing a substrate key reuse one shared instance instead of rebuilding
// it per cell. Values are handed out as shared_ptr<const V>, so an entry
// evicted mid-sweep stays alive for every cell still holding it.
//
// Concurrency: lookups hold the mutex; factories run outside it so a slow
// build (a 10k-sample trace) never blocks threads resolving other keys. Two
// threads missing the same key may both build — the first insert wins and
// both receive the same deterministic value, so results are unaffected.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/assert.hpp"
#include "common/thread_annotations.hpp"

namespace gs {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class KeyedCache {
 public:
  /// Capacity bounds the map; least-recently-used entries are evicted
  /// (handed-out shared_ptrs keep evicted values alive until released).
  explicit KeyedCache(std::size_t capacity = 64) : capacity_(capacity) {
    GS_REQUIRE(capacity >= 1, "cache capacity must be positive");
  }

  /// Return the cached value for `key`, building it with `make()` on miss.
  template <typename Factory>
  std::shared_ptr<const Value> get_or_create(const Key& key, Factory&& make)
      GS_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      auto it = map_.find(key);
      if (it != map_.end()) {
        ++stats_.hits;
        it->second.last_used = ++tick_;
        return it->second.value;
      }
      ++stats_.misses;
    }
    auto built = std::make_shared<const Value>(make());
    MutexLock lock(mu_);
    auto [it, inserted] = map_.try_emplace(key, Entry{built, ++tick_});
    if (!inserted) {
      // Lost a build race: keep the incumbent so all holders share one
      // instance (both builds are deterministic and equal).
      it->second.last_used = tick_;
      return it->second.value;
    }
    if (map_.size() > capacity_) evict_lru();
    return built;
  }

  [[nodiscard]] std::size_t size() const GS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return map_.size();
  }

  [[nodiscard]] CacheStats stats() const GS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return stats_;
  }

  void clear() GS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    map_.clear();
    stats_ = CacheStats{};
  }

 private:
  struct Entry {
    std::shared_ptr<const Value> value;
    std::uint64_t last_used = 0;
  };

  void evict_lru() GS_REQUIRES(mu_) {
    auto victim = map_.begin();
    for (auto it = map_.begin(); it != map_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    map_.erase(victim);
  }

  mutable Mutex mu_;
  std::unordered_map<Key, Entry, Hash> map_ GS_GUARDED_BY(mu_);
  CacheStats stats_ GS_GUARDED_BY(mu_);
  std::uint64_t tick_ GS_GUARDED_BY(mu_) = 0;
  const std::size_t capacity_;  // immutable after construction: unguarded
};

namespace detail {
constexpr std::uint64_t splitmix_step(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace detail

/// Order-dependent 64-bit hash combiner (SplitMix64-mixed), shared by the
/// substrate cache key hashers.
constexpr std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  return h ^ (detail::splitmix_step(v) + 0x9e3779b97f4a7c15ull + (h << 6) +
              (h >> 2));
}

/// Hash a double by bit pattern (cache keys compare floats exactly: two
/// configs are "the same substrate" only when every parameter is
/// bit-identical, which is also what the determinism guarantee needs).
inline std::uint64_t hash_combine(std::uint64_t h, double v) {
  return hash_combine(h, std::bit_cast<std::uint64_t>(v));
}

}  // namespace gs
