// gs:durable-io
#include "common/io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <system_error>

#include "common/failpoint.hpp"

namespace gs::io {
namespace {

/// Append-buffer flush granularity: large enough that a 24-byte WAL
/// record costs no syscall, small enough that a kill loses little.
constexpr std::size_t kAppendBufferBytes = std::size_t(64) * 1024;

std::string errno_message(int err) {
  return std::error_code(err, std::generic_category()).message();
}

[[noreturn]] void throw_errno(const std::string& what, int err) {
  throw IoError(what + ": " + errno_message(err));
}

[[noreturn]] void throw_injected(const char* site,
                                 failpoint::ActionKind kind) {
  const char* what =
      kind == failpoint::ActionKind::Enospc ? "ENOSPC" : "EIO";
  throw IoError(std::string("failpoint ") + site + ": injected " + what);
}

/// write(2) until every byte is down (or a real error).
void write_all(int fd, const char* data, std::size_t size,
               const std::string& path) {
  std::size_t at = 0;
  while (at < size) {
    const ::ssize_t n = ::write(fd, data + at, size - at);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw_errno("write to " + path + " failed", err);
    }
    at += std::size_t(n);
  }
}

/// The prefix a short/torn write persists: half the payload, cutting
/// mid-"record" for any record size > 1.
std::size_t torn_prefix(std::size_t size) { return size / 2; }

int open_or_throw(const std::filesystem::path& path, int flags) {
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) throw_errno("cannot open " + path.string(), errno);
  return fd;
}

void fdatasync_or_throw(int fd, const std::string& path) {
  if (::fdatasync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    throw_errno("fdatasync of " + path + " failed", err);
  }
}

}  // namespace

void fsync_parent_dir(const std::filesystem::path& entry) {
  std::filesystem::path dir = entry.parent_path();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // e.g. a filesystem without directory handles
  // Directory fsync is advisory on some filesystems; a failure here
  // cannot un-commit the rename, so it is deliberately not fatal.
  (void)::fsync(fd);
  ::close(fd);
}

void atomic_write_file(const std::filesystem::path& path,
                       const std::filesystem::path& tmp,
                       std::string_view bytes, const WriteOptions& opts) {
  const failpoint::Action action = failpoint::consult(opts.site);
  if (action.kind == failpoint::ActionKind::Eio ||
      action.kind == failpoint::ActionKind::Enospc) {
    throw_injected(opts.site, action.kind);
  }
  const bool shorted = action.kind == failpoint::ActionKind::ShortWrite;
  const bool torn = action.kind == failpoint::ActionKind::TornWrite;
  const std::size_t persist =
      (shorted || torn) ? torn_prefix(bytes.size()) : bytes.size();

  const int fd = open_or_throw(tmp, O_WRONLY | O_CREAT | O_TRUNC);
  write_all(fd, bytes.data(), persist, tmp.string());
  if (shorted) {
    ::close(fd);
    throw IoError(std::string("failpoint ") + opts.site +
                  ": injected short write to " + tmp.string());
  }
  if (opts.durability == Durability::Full) {
    fdatasync_or_throw(fd, tmp.string());
  }
  if (::close(fd) != 0) {
    throw_errno("close of " + tmp.string() + " failed", errno);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw_errno("cannot rename " + tmp.string() + " over " + path.string(),
                err);
  }
  if (opts.durability == Durability::Full) fsync_parent_dir(path);
  // A TornWrite falls out here reporting success: the committed file
  // holds only a prefix, exactly like storage that acked a lost write.
}

void atomic_write_file(const std::filesystem::path& path,
                       std::string_view bytes, const WriteOptions& opts) {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  const std::filesystem::path tmp =
      path.string() + ".tmp-p" + std::to_string(::getpid()) + "." +
      std::to_string(n);
  atomic_write_file(path, tmp, bytes, opts);
}

AppendFile::~AppendFile() {
  if (fd_ < 0) return;
  try {
    flush_buffer();
  } catch (const IoError&) {
    // Destructor: the data is already lost; close what we can.
  }
  ::close(fd_);
}

void AppendFile::open_mode(const std::filesystem::path& path,
                           const char* site, int flags) {
  close();
  fd_ = open_or_throw(path, flags);
  path_ = path.string();
  site_ = site;
  buf_.clear();
  written_ = 0;
}

void AppendFile::open_trunc(const std::filesystem::path& path,
                            const char* site) {
  open_mode(path, site, O_WRONLY | O_CREAT | O_TRUNC);
}

void AppendFile::open_append(const std::filesystem::path& path,
                             const char* site) {
  open_mode(path, site, O_WRONLY | O_CREAT | O_APPEND);
}

void AppendFile::append(std::string_view bytes) {
  if (fd_ < 0) throw IoError("append to closed file " + path_);
  const failpoint::Action action = failpoint::consult(site_);
  switch (action.kind) {
    case failpoint::ActionKind::Eio:
    case failpoint::ActionKind::Enospc:
      throw_injected(site_, action.kind);
    case failpoint::ActionKind::ShortWrite:
    case failpoint::ActionKind::TornWrite: {
      // Persist everything buffered plus a prefix of this record, then
      // fail the append: the on-disk tail ends mid-record.
      flush_buffer();
      const std::size_t prefix = torn_prefix(bytes.size());
      write_all(fd_, bytes.data(), prefix, path_);
      written_ += prefix;
      throw IoError(std::string("failpoint ") + site_ +
                    ": injected torn append to " + path_);
    }
    case failpoint::ActionKind::None:
    case failpoint::ActionKind::Crash:  // consult() never returns Crash
      break;
  }
  buf_.append(bytes.data(), bytes.size());
  written_ += bytes.size();
  if (buf_.size() >= kAppendBufferBytes) flush_buffer();
}

void AppendFile::flush_buffer() {
  if (fd_ < 0 || buf_.empty()) return;
  write_all(fd_, buf_.data(), buf_.size(), path_);
  buf_.clear();
}

void AppendFile::flush(Durability durability) {
  if (fd_ < 0) throw IoError("flush of closed file " + path_);
  flush_buffer();
  if (durability == Durability::Full) {
    if (::fdatasync(fd_) != 0) {
      throw_errno("fdatasync of " + path_ + " failed", errno);
    }
  }
}

void AppendFile::close() {
  if (fd_ < 0) return;
  flush_buffer();
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) {
    throw_errno("close of " + path_ + " failed", errno);
  }
}

bool exclusive_create(const std::filesystem::path& path,
                      std::string_view body, const char* site) {
  const failpoint::Action action = failpoint::consult(site);
  if (action.kind == failpoint::ActionKind::Eio ||
      action.kind == failpoint::ActionKind::Enospc) {
    throw_injected(site, action.kind);
  }
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) {
    if (errno == EEXIST) return false;
    throw_errno("cannot create " + path.string(), errno);
  }
  const bool shaped =
      action.kind == failpoint::ActionKind::ShortWrite ||
      action.kind == failpoint::ActionKind::TornWrite;
  const std::size_t persist =
      shaped ? torn_prefix(body.size()) : body.size();
  write_all(fd, body.data(), persist, path.string());
  ::close(fd);
  if (action.kind == failpoint::ActionKind::ShortWrite) {
    // The claim exists with a half-written body this caller does not
    // own: to every worker it is a stale lease waiting to be stolen.
    throw IoError(std::string("failpoint ") + site +
                  ": injected short write to " + path.string());
  }
  return true;
}

void rename_file(const std::filesystem::path& from,
                 const std::filesystem::path& to, const char* site) {
  const failpoint::Action action = failpoint::consult(site);
  if (action) throw_injected(site, failpoint::ActionKind::Eio);
  if (::rename(from.c_str(), to.c_str()) != 0) {
    throw_errno("cannot rename " + from.string() + " to " + to.string(),
                errno);
  }
}

void truncate_file(const std::filesystem::path& path, std::uint64_t size,
                   const char* site) {
  const failpoint::Action action = failpoint::consult(site);
  if (action) throw_injected(site, failpoint::ActionKind::Eio);
  if (::truncate(path.c_str(), ::off_t(size)) != 0) {
    throw_errno("cannot truncate " + path.string(), errno);
  }
}

}  // namespace gs::io
