#include "common/table.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <iomanip>
#include <sstream>

#include "common/assert.hpp"

namespace gs {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  GS_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  GS_REQUIRE(row.size() == header_.size(),
             "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::exact(double v) {
  // Shortest round-trip form: 32 chars covers the worst case (17
  // significant digits, sign, decimal point, e-308 exponent).
  std::array<char, 32> buf{};
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  GS_REQUIRE(res.ec == std::errc(), "double formatting failed");
  return std::string(buf.data(), res.ptr);
}

void TextTable::render(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(int(widths[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string TextTable::str() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    const auto& f = fields[i];
    const bool needs_quote = f.find_first_of(",\"\n") != std::string::npos;
    if (needs_quote) {
      os_ << '"';
      for (char ch : f) {
        if (ch == '"') os_ << '"';
        os_ << ch;
      }
      os_ << '"';
    } else {
      os_ << f;
    }
    if (i + 1 < fields.size()) os_ << ',';
  }
  os_ << '\n';
}

}  // namespace gs
