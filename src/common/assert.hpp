// Contract-checking macros used across GreenSprint.
//
// GS_REQUIRE  - precondition on public API arguments; always on.
// GS_ENSURE   - postcondition / internal invariant; always on.
// Violations throw gs::ContractError so tests can assert on them and
// long-running sweeps fail loudly instead of silently corrupting results.
#pragma once

#include <stdexcept>
#include <string>

namespace gs {

/// Thrown when a GS_REQUIRE / GS_ENSURE contract is violated.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::string s = std::string(kind) + " failed: (" + expr + ") at " + file +
                  ":" + std::to_string(line);
  if (!msg.empty()) s += " — " + msg;
  throw ContractError(s);
}
}  // namespace detail

}  // namespace gs

#define GS_REQUIRE(expr, msg)                                              \
  do {                                                                     \
    if (!(expr))                                                           \
      ::gs::detail::contract_fail("GS_REQUIRE", #expr, __FILE__, __LINE__, \
                                  (msg));                                  \
  } while (0)

#define GS_ENSURE(expr, msg)                                              \
  do {                                                                    \
    if (!(expr))                                                          \
      ::gs::detail::contract_fail("GS_ENSURE", #expr, __FILE__, __LINE__, \
                                  (msg));                                 \
  } while (0)
