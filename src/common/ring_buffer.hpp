// Fixed-capacity ring buffer used by the Monitor for bounded history
// (recent power / latency samples feeding the Predictor).
#pragma once

#include <cstddef>
#include <vector>

#include "common/assert.hpp"

namespace gs {

template <class T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : data_(capacity) {
    GS_REQUIRE(capacity > 0, "RingBuffer capacity must be positive");
  }

  void push(T value) {
    data_[head_] = std::move(value);
    head_ = (head_ + 1) % data_.size();
    if (size_ < data_.size()) ++size_;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == data_.size(); }

  /// Element i where 0 is the oldest retained sample.
  [[nodiscard]] const T& operator[](std::size_t i) const {
    GS_REQUIRE(i < size_, "RingBuffer index out of range");
    const std::size_t start = (head_ + data_.size() - size_) % data_.size();
    return data_[(start + i) % data_.size()];
  }

  /// Most recently pushed element.
  [[nodiscard]] const T& back() const {
    GS_REQUIRE(size_ > 0, "back() on empty RingBuffer");
    return data_[(head_ + data_.size() - 1) % data_.size()];
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> data_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace gs
