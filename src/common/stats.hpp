// Streaming statistics used by the Monitor and the workload QoS trackers:
// running mean/variance (Welford) and quantile estimation (exact reservoir
// and the constant-space P-square estimator for long DES runs).
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "common/assert.hpp"

namespace gs {

/// Welford running mean / variance / extrema.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / double(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / double(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * double(n_); }

  /// Raw Welford accumulators, for checkpoint/restore (mean()/min()/max()
  /// mask the n == 0 sentinels, so round-tripping needs the raw fields).
  [[nodiscard]] double raw_mean() const { return mean_; }
  [[nodiscard]] double raw_m2() const { return m2_; }
  [[nodiscard]] double raw_min() const { return min_; }
  [[nodiscard]] double raw_max() const { return max_; }

  void restore(std::size_t n, double mean, double m2, double mn, double mx) {
    n_ = n;
    mean_ = mean;
    m2_ = m2;
    min_ = mn;
    max_ = mx;
  }

  void merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double delta = o.mean_ - mean_;
    const auto n = double(n_ + o.n_);
    m2_ += o.m2_ + delta * delta * double(n_) * double(o.n_) / n;
    mean_ += delta * double(o.n_) / n;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact quantile of an ascending-sorted sample: linear interpolation
/// between order statistics. Shared by QuantileReservoir, the arena-backed
/// DES latency scratch, and the P2 warmup fallback so all three produce
/// bit-identical values for the same sample.
[[nodiscard]] inline double quantile_sorted(const double* data, std::size_t n,
                                            double q) {
  GS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  GS_REQUIRE(n > 0, "quantile of empty sample");
  if (n == 1) return data[0];
  const double pos = q * double(n - 1);
  const auto lo = std::size_t(pos);
  const double frac = pos - double(lo);
  if (lo + 1 >= n) return data[n - 1];
  return data[lo] * (1.0 - frac) + data[lo + 1] * frac;
}

/// Exact quantiles over a stored sample (sorts lazily on query).
class QuantileReservoir {
 public:
  void add(double x) {
    data_.push_back(x);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  /// q in [0,1]; linear interpolation between order statistics.
  [[nodiscard]] double quantile(double q) {
    GS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
    GS_REQUIRE(!data_.empty(), "quantile of empty reservoir");
    if (!sorted_) {
      std::sort(data_.begin(), data_.end());
      sorted_ = true;
    }
    return quantile_sorted(data_.data(), data_.size(), q);
  }

  /// clear() keeps the backing store, so a reservoir reused across DES
  /// epochs reaches a steady state where add() never allocates.
  void clear() {
    data_.clear();
    sorted_ = false;
  }

  void reserve(std::size_t n) { data_.reserve(n); }

 private:
  std::vector<double> data_;
  bool sorted_ = false;
};

/// P-square single-quantile estimator (Jain & Chlamtac 1985): constant
/// space, suitable for million-request DES runs.
class P2Quantile {
 public:
  explicit P2Quantile(double q) : q_(q) {
    GS_REQUIRE(q > 0.0 && q < 1.0, "P2 quantile must be in (0,1)");
  }

  void add(double x) {
    if (n_ < 5) {
      initial_[n_++] = x;
      if (n_ == 5) {
        std::sort(initial_.begin(), initial_.end());
        for (int i = 0; i < 5; ++i) {
          heights_[i] = initial_[std::size_t(i)];
          positions_[i] = i + 1;
        }
        desired_[0] = 1;
        desired_[1] = 1 + 2 * q_;
        desired_[2] = 1 + 4 * q_;
        desired_[3] = 3 + 2 * q_;
        desired_[4] = 5;
      }
      return;
    }
    int k;
    if (x < heights_[0]) {
      heights_[0] = x;
      k = 0;
    } else if (x >= heights_[4]) {
      heights_[4] = x;
      k = 3;
    } else {
      k = 0;
      while (k < 3 && x >= heights_[k + 1]) ++k;
    }
    for (int i = k + 1; i < 5; ++i) ++positions_[i];
    desired_[1] += q_ / 2;
    desired_[2] += q_;
    desired_[3] += (1 + q_) / 2;
    desired_[4] += 1;
    for (int i = 1; i <= 3; ++i) adjust(i);
  }

  /// Below kWarmupSamples the five markers are not initialized yet, so the
  /// estimator falls back to the exact interpolated quantile over the
  /// buffered warmup samples (bit-identical to QuantileReservoir on the
  /// same data) instead of extrapolating from a nearest-rank pick.
  static constexpr std::size_t kWarmupSamples = 5;

  [[nodiscard]] double value() const {
    if (n_ == 0) return 0.0;
    if (n_ < kWarmupSamples) {
      // Insertion sort over the (at most 4) warmup samples. std::sort here
      // trips a gcc-12 -Warray-bounds false positive when inlined into
      // large callers; for this size insertion sort is also faster.
      const std::size_t n = std::min(n_, kWarmupSamples - 1);
      std::array<double, 5> tmp = initial_;
      for (std::size_t i = 1; i < n; ++i) {
        const double x = tmp[i];
        std::size_t j = i;
        for (; j > 0 && tmp[j - 1] > x; --j) tmp[j] = tmp[j - 1];
        tmp[j] = x;
      }
      return quantile_sorted(tmp.data(), n, q_);
    }
    return heights_[2];
  }

  [[nodiscard]] double q() const { return q_; }

  /// Forget all samples; the estimator can be reused for a fresh stream.
  void reset() { *this = P2Quantile(q_); }

 private:
  void adjust(int i) {
    const double d = desired_[i] - positions_[i];
    if ((d >= 1 && positions_[i + 1] - positions_[i] > 1) ||
        (d <= -1 && positions_[i - 1] - positions_[i] < -1)) {
      const int sign = d >= 0 ? 1 : -1;
      const double parabolic = heights_[i] +
          double(sign) / (positions_[i + 1] - positions_[i - 1]) *
              ((positions_[i] - positions_[i - 1] + sign) *
                   (heights_[i + 1] - heights_[i]) /
                   (positions_[i + 1] - positions_[i]) +
               (positions_[i + 1] - positions_[i] - sign) *
                   (heights_[i] - heights_[i - 1]) /
                   (positions_[i] - positions_[i - 1]));
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        heights_[i] += double(sign) * (heights_[i + sign] - heights_[i]) /
                       (positions_[i + sign] - positions_[i]);
      }
      positions_[i] += sign;
    }
  }

  double q_;
  std::size_t n_ = 0;
  std::array<double, 5> initial_{};
  std::array<double, 5> heights_{};
  std::array<double, 5> positions_{};
  std::array<double, 5> desired_{};
};

}  // namespace gs
