// Console table / CSV emitters used by every bench binary to print the
// paper's rows and series in a uniform, diff-friendly format.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace gs {

/// Column-aligned text table: add a header, then rows; render pads columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 2);

  /// Shortest decimal string that parses back to exactly `v` (std::to_chars
  /// round-trip). The CSV exporters use this so files re-ingest without
  /// losing bits: "2" for 2.0, "0.1" for 0.1, full digits only when needed.
  static std::string exact(double v);

  void render(std::ostream& os) const;
  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Minimal CSV writer (quotes fields containing separators).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}
  void row(const std::vector<std::string>& fields);

 private:
  std::ostream& os_;
};

}  // namespace gs
