// Bump arena for hot-path scratch (ISSUE 7: the epoch kernel must not heap
// allocate). An Arena owns a chain of geometrically-growing blocks and
// hands out raw storage with pointer arithmetic; reset() rewinds to the
// first block without releasing memory, so a steady-state caller — the DES
// event loop, the SoA epoch kernel — reaches a fixed footprint after which
// no allocation path touches the system allocator again.
//
// ArenaVector<T> is the typed view the hot paths use: a std::vector-shaped
// container (push_back / clear / operator[] / iteration) whose backing
// storage comes from an Arena. Growth relocates into a fresh arena span
// (the abandoned span is reclaimed wholesale by the next reset()), and
// clear() keeps the current span, so reuse across epochs allocates nothing
// once the high-water mark is reached. T must be trivially copyable and
// trivially destructible — the arena never runs destructors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/assert.hpp"

namespace gs {

class Arena {
 public:
  /// `first_block` is the initial capacity in bytes; later blocks double.
  explicit Arena(std::size_t first_block = 4096)
      : next_block_size_(first_block > 0 ? first_block : 4096) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw storage for `n` objects of type T, aligned for T. The storage is
  /// uninitialized and lives until the next reset().
  template <typename T>
  [[nodiscard]] T* allocate(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage never runs destructors");
    if (n == 0) return nullptr;
    const std::size_t bytes = n * sizeof(T);
    return static_cast<T*>(allocate_bytes(bytes, alignof(T)));
  }

  /// Rewind every block. Previously returned storage is invalidated;
  /// the blocks themselves are kept for reuse (no free / re-malloc churn).
  void reset() {
    block_ = 0;
    offset_ = 0;
  }

  /// Total bytes owned (capacity, not live allocations) — test hook for
  /// the "steady state allocates nothing" property.
  [[nodiscard]] std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const auto& b : blocks_) total += b.size;
    return total;
  }

  [[nodiscard]] std::size_t num_blocks() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* allocate_bytes(std::size_t bytes, std::size_t align) {
    // Find room in the current or any later existing block.
    while (block_ < blocks_.size()) {
      const std::size_t base =
          reinterpret_cast<std::uintptr_t>(blocks_[block_].data.get());
      const std::size_t aligned = (base + offset_ + align - 1) & ~(align - 1);
      const std::size_t new_offset = aligned - base + bytes;
      if (new_offset <= blocks_[block_].size) {
        offset_ = new_offset;
        return reinterpret_cast<void*>(aligned);
      }
      ++block_;
      offset_ = 0;
    }
    // Grow: one fresh block, at least double the last and big enough for
    // this request plus worst-case alignment padding.
    std::size_t want = next_block_size_;
    while (want < bytes + align) want *= 2;
    next_block_size_ = want * 2;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(want), want});
    block_ = blocks_.size() - 1;
    offset_ = 0;
    return allocate_bytes(bytes, align);
  }

  std::vector<Block> blocks_;
  std::size_t block_ = 0;        ///< Block the next allocation tries first.
  std::size_t offset_ = 0;       ///< Bump offset within blocks_[block_].
  std::size_t next_block_size_;  ///< Size of the next block to carve.
};

/// Vector-shaped view over arena storage. Holds a non-owning Arena
/// reference; the caller guarantees the arena outlives the container and
/// that reset() is not called while the contents are live.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "ArenaVector requires trivial T");

 public:
  explicit ArenaVector(Arena& arena) : arena_(&arena) {}

  void push_back(const T& v) {
    if (size_ == capacity_) grow(capacity_ == 0 ? 16 : capacity_ * 2);
    data_[size_++] = v;
  }

  /// Set the size, value-initializing every element (matches
  /// std::vector::assign(n, T{}) as the DES core-heap reset needs).
  void assign(std::size_t n, const T& v) {
    if (n > capacity_) grow(n);
    size_ = n;
    for (std::size_t i = 0; i < n; ++i) data_[i] = v;
  }

  void clear() { size_ = 0; }

  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] T& front() { return data_[0]; }
  [[nodiscard]] const T& front() const { return data_[0]; }
  [[nodiscard]] T& back() { return data_[size_ - 1]; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] T* begin() { return data_; }
  [[nodiscard]] T* end() { return data_ + size_; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }
  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }

  /// Detach from the current span without giving it back (the arena
  /// reclaims it wholesale on reset()). Used when the owner rebinds the
  /// container to a freshly reset arena between epochs.
  void rebind(Arena& arena) {
    arena_ = &arena;
    data_ = nullptr;
    size_ = 0;
    capacity_ = 0;
  }

 private:
  void grow(std::size_t want) {
    T* fresh = arena_->allocate<T>(want);
    if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    data_ = fresh;
    capacity_ = want;
  }

  Arena* arena_;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace gs
