// Calibrated server power model.
//
// The paper measures per-(workload, setting) power exhaustively on real
// servers; we replace the measurement with an analytic model
//
//   P(n, f, u) = P_idle + n * (p_act + u * kappa * f * V(f)^2)
//
// where n is the active core count, u in [0,1] the per-core utilization,
// p_act the static cost of keeping a core powered, and kappa the
// application-specific switching-activity coefficient. (p_act, kappa) are
// calibrated per application from two measured anchor points the paper
// reports: full-load power in Normal mode (implied ~100 W by the 1000 W
// grid budget for 10 servers) and the maximum sprint power (155 / 156 /
// 146 W for SPECjbb / Web-Search / Memcached).
#pragma once

#include "common/units.hpp"
#include "server/setting.hpp"

namespace gs::server {

/// Application-specific activity coefficients (see calibrate()).
struct ActivityProfile {
  double core_static_w = 2.684;  ///< p_act: W per powered core.
  double kappa = 1.354;          ///< W per core per (GHz * V^2) at u = 1.
};

class ServerPowerModel {
 public:
  explicit ServerPowerModel(Watts idle = Watts(76.0)) : idle_(idle) {}

  /// Electrical power at a setting and per-core utilization.
  [[nodiscard]] Watts power(const ServerSetting& s, double utilization,
                            const ActivityProfile& app) const;

  /// Power at full utilization (the sprint-planning upper bound).
  [[nodiscard]] Watts peak_power(const ServerSetting& s,
                                 const ActivityProfile& app) const;

  [[nodiscard]] Watts idle_power() const { return idle_; }

 private:
  Watts idle_;
};

/// Solve (p_act, kappa) so that the model reproduces two anchor
/// measurements: P(Normal=6c@1.2GHz, u=1) = normal_full and
/// P(MaxSprint=12c@2.0GHz, u=1) = sprint_peak, with the given idle power.
[[nodiscard]] ActivityProfile calibrate(Watts idle, Watts normal_full,
                                        Watts sprint_peak);

}  // namespace gs::server
