#include "server/setting.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace gs::server {

ServerSetting normal_mode() { return {kMinCores, kMinFreqIndex}; }
ServerSetting max_sprint() { return {kMaxCores, kMaxFreqIndex}; }

std::string to_string(const ServerSetting& s) {
  std::ostringstream os;
  os << s.cores << "c@" << s.frequency().value() << "GHz";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const ServerSetting& s) {
  return os << to_string(s);
}

SettingLattice::SettingLattice() {
  settings_.reserve(std::size_t(kNumCoreCounts) * kNumFreqStates);
  for (int c = kMinCores; c <= kMaxCores; ++c) {
    for (int f = 0; f < kNumFreqStates; ++f) {
      settings_.push_back({c, f});
    }
  }
}

const ServerSetting& SettingLattice::at(std::size_t i) const {
  GS_REQUIRE(i < settings_.size(), "setting index out of range");
  return settings_[i];
}

std::size_t SettingLattice::index_of(const ServerSetting& s) const {
  GS_REQUIRE(s.cores >= kMinCores && s.cores <= kMaxCores,
             "core count out of range");
  GS_REQUIRE(s.freq_idx >= 0 && s.freq_idx < kNumFreqStates,
             "freq index out of range");
  return std::size_t(s.cores - kMinCores) * kNumFreqStates +
         std::size_t(s.freq_idx);
}

}  // namespace gs::server
