#include "server/dvfs.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace gs::server {

namespace {
constexpr double kFreqMin = 1.2;
constexpr double kFreqMax = 2.0;
constexpr double kFreqStep = (kFreqMax - kFreqMin) / (kNumFreqStates - 1);
constexpr double kVoltMin = 0.9;
constexpr double kVoltMax = 1.2;
}  // namespace

Gigahertz frequency(int idx) {
  GS_REQUIRE(idx >= 0 && idx < kNumFreqStates, "DVFS index out of range");
  return Gigahertz(kFreqMin + kFreqStep * idx);
}

int frequency_index(Gigahertz f) {
  const double raw = (f.value() - kFreqMin) / kFreqStep;
  const int idx = int(std::floor(raw + 1e-9));
  return std::clamp(idx, 0, kMaxFreqIndex);
}

Volts voltage(Gigahertz f) {
  const double t =
      std::clamp((f.value() - kFreqMin) / (kFreqMax - kFreqMin), 0.0, 1.0);
  return Volts(kVoltMin + (kVoltMax - kVoltMin) * t);
}

double switching_factor(Gigahertz f) {
  const double v = voltage(f).value();
  return f.value() * v * v;
}

}  // namespace gs::server
