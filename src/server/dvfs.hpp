// DVFS table of the testbed server (paper Section IV): two 6-core Intel
// Xeon E5-2620 sockets (12 cores total), 9 frequency states spanning
// 1.2-2.0 GHz, idle power ~76 W. Voltage follows an affine V(f) curve so
// dynamic power scales with f * V(f)^2.
#pragma once

#include "common/units.hpp"

namespace gs::server {

inline constexpr int kNumFreqStates = 9;
inline constexpr int kMinFreqIndex = 0;
inline constexpr int kMaxFreqIndex = kNumFreqStates - 1;

/// Frequency of DVFS state `idx` (0 -> 1.2 GHz ... 8 -> 2.0 GHz).
[[nodiscard]] Gigahertz frequency(int idx);

/// Index of the DVFS state closest to (and not above) `f`; clamps to range.
[[nodiscard]] int frequency_index(Gigahertz f);

/// Core supply voltage at frequency f (affine model, 0.9 V at 1.2 GHz up to
/// 1.2 V at 2.0 GHz).
[[nodiscard]] Volts voltage(Gigahertz f);

/// The switching-power factor f * V(f)^2 in GHz*V^2, the quantity dynamic
/// power is proportional to.
[[nodiscard]] double switching_factor(Gigahertz f);

}  // namespace gs::server
