// The sprinting-intensity lattice S (paper Section III-B): a server setting
// is a (core count, frequency state) pair, ordered from S0 = Normal mode
// (6 cores @ 1.2 GHz) to Sr = maximum sprint (12 cores @ 2.0 GHz).
#pragma once

#include <compare>
#include <ostream>
#include <string>
#include <vector>

#include "server/dvfs.hpp"

namespace gs::server {

inline constexpr int kMinCores = 6;   ///< Normal mode: one socket active.
inline constexpr int kMaxCores = 12;  ///< Full sprint: all cores on.
inline constexpr int kNumCoreCounts = kMaxCores - kMinCores + 1;

struct ServerSetting {
  int cores = kMinCores;
  int freq_idx = kMinFreqIndex;

  [[nodiscard]] Gigahertz frequency() const {
    return gs::server::frequency(freq_idx);
  }

  friend constexpr auto operator<=>(const ServerSetting&,
                                    const ServerSetting&) = default;
};

[[nodiscard]] ServerSetting normal_mode();
[[nodiscard]] ServerSetting max_sprint();

[[nodiscard]] std::string to_string(const ServerSetting& s);
std::ostream& operator<<(std::ostream& os, const ServerSetting& s);

/// Enumeration of all valid settings, in (cores, freq) lexicographic order
/// so that index 0 is Normal mode and the last index is the maximum sprint.
class SettingLattice {
 public:
  SettingLattice();

  [[nodiscard]] std::size_t size() const { return settings_.size(); }
  [[nodiscard]] const ServerSetting& at(std::size_t i) const;
  [[nodiscard]] std::size_t index_of(const ServerSetting& s) const;
  [[nodiscard]] const std::vector<ServerSetting>& all() const {
    return settings_;
  }

 private:
  std::vector<ServerSetting> settings_;
};

}  // namespace gs::server
