#include "server/power_model.hpp"

#include "common/assert.hpp"

namespace gs::server {

Watts ServerPowerModel::power(const ServerSetting& s, double utilization,
                              const ActivityProfile& app) const {
  GS_REQUIRE(utilization >= 0.0 && utilization <= 1.0,
             "utilization must be in [0,1]");
  GS_REQUIRE(s.cores >= kMinCores && s.cores <= kMaxCores,
             "core count out of range");
  const double sf = switching_factor(s.frequency());
  const double dynamic =
      double(s.cores) * (app.core_static_w + utilization * app.kappa * sf);
  return idle_ + Watts(dynamic);
}

Watts ServerPowerModel::peak_power(const ServerSetting& s,
                                   const ActivityProfile& app) const {
  return power(s, 1.0, app);
}

ActivityProfile calibrate(Watts idle, Watts normal_full, Watts sprint_peak) {
  GS_REQUIRE(normal_full > idle, "normal-mode power must exceed idle");
  GS_REQUIRE(sprint_peak > normal_full,
             "sprint power must exceed normal-mode power");
  const ServerSetting nm = normal_mode();
  const ServerSetting ms = max_sprint();
  const double sf_n = switching_factor(nm.frequency());
  const double sf_m = switching_factor(ms.frequency());
  // Two equations in (p_act, kappa):
  //   p_act + kappa * sf_n = (normal_full - idle) / n_normal
  //   p_act + kappa * sf_m = (sprint_peak - idle) / n_max
  const double rhs_n = (normal_full - idle).value() / double(nm.cores);
  const double rhs_m = (sprint_peak - idle).value() / double(ms.cores);
  const double kappa = (rhs_m - rhs_n) / (sf_m - sf_n);
  const double p_act = rhs_n - kappa * sf_n;
  GS_ENSURE(kappa > 0.0, "calibration produced non-positive kappa");
  GS_ENSURE(p_act >= 0.0, "calibration produced negative core static power");
  return {p_act, kappa};
}

}  // namespace gs::server
