#include "serve/live_feed.hpp"

#include "ckpt/state_io.hpp"

namespace gs::serve {

LiveFeed::Admit LiveFeed::admit(const FeedEvent& ev) {
  if (ev.seq < next_seq_) {
    ++stale_drops_;
    return Admit::Stale;
  }
  if (ev.seq > next_seq_) {
    ++gap_drops_;
    return Admit::Gap;
  }
  ++next_seq_;
  ++accepted_;
  lambda_ewma_.observe(ev.lambda);
  last_irradiance_ = ev.irradiance;
  return Admit::Accepted;
}

sim::LiveEpoch LiveFeed::fallback() {
  ++next_seq_;
  ++stale_epochs_;
  const double lambda =
      lambda_ewma_.primed() ? lambda_ewma_.prediction() : 0.0;
  return {lambda, last_irradiance_, false};
}

void LiveFeed::save_state(ckpt::StateWriter& w) const {
  w.begin_section("live_feed", kStateVersion);
  w.u64(next_seq_);
  w.f64(lambda_ewma_.raw_value());
  w.boolean(lambda_ewma_.primed());
  w.f64(last_irradiance_);
  w.u64(accepted_);
  w.u64(stale_drops_);
  w.u64(gap_drops_);
  w.u64(stale_epochs_);
  w.end_section();
}

void LiveFeed::load_state(ckpt::StateReader& r) {
  r.begin_section("live_feed", kStateVersion);
  next_seq_ = r.u64();
  const double value = r.f64();
  const bool primed = r.boolean();
  lambda_ewma_.restore(value, primed);
  last_irradiance_ = r.f64();
  accepted_ = r.u64();
  stale_drops_ = r.u64();
  gap_drops_ = r.u64();
  stale_epochs_ = r.u64();
  r.end_section();
}

}  // namespace gs::serve
