#include "serve/protocol.hpp"

#include <charconv>
#include <vector>

namespace gs::serve {

std::string protocol_id() {
  return "GSRV/" + std::to_string(kProtocolVersion);
}

const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::BadFrame:
      return "bad-frame";
    case ErrorCode::BadVersion:
      return "bad-version";
    case ErrorCode::NeedHello:
      return "need-hello";
    case ErrorCode::UnknownCommand:
      return "unknown-command";
    case ErrorCode::BadArgument:
      return "bad-argument";
    case ErrorCode::FeedGap:
      return "feed-gap";
    case ErrorCode::ShuttingDown:
      return "shutting-down";
    case ErrorCode::Internal:
      return "internal";
  }
  return "?";
}

std::optional<ErrorCode> error_code_from_string(std::string_view s) {
  for (const ErrorCode c :
       {ErrorCode::BadFrame, ErrorCode::BadVersion, ErrorCode::NeedHello,
        ErrorCode::UnknownCommand, ErrorCode::BadArgument, ErrorCode::FeedGap,
        ErrorCode::ShuttingDown, ErrorCode::Internal}) {
    if (s == to_string(c)) return c;
  }
  return std::nullopt;
}

std::string make_error(ErrorCode c, std::string_view detail) {
  std::string out = "err ";
  out += to_string(c);
  if (!detail.empty()) {
    out += ' ';
    out += detail;
  }
  return out;
}

std::string encode_frame(std::string_view payload) {
  static constexpr char kHex[] = "0123456789abcdef";
  const std::size_t n = payload.size();
  std::string out;
  out.reserve(kFrameHeaderBytes + n);
  for (int shift = 20; shift >= 0; shift -= 4) {
    out += kHex[(n >> shift) & 0xf];
  }
  out += ' ';
  out += payload;
  return out;
}

void FrameDecoder::feed(std::string_view bytes) {
  if (error_) return;
  // Compact the consumed prefix before growing; keeps the buffer bounded
  // by one frame plus whatever the socket read brought in.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > kMaxFrameBytes) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes);
}

bool FrameDecoder::next(std::string& payload) {
  if (error_) return false;
  if (buf_.size() - pos_ < kFrameHeaderBytes) return false;
  std::size_t len = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    const char c = buf_[pos_ + i];
    std::size_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = std::size_t(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = std::size_t(c - 'a') + 10;
    } else {
      error_ = "frame header is not six hex digits";
      return false;
    }
    len = (len << 4) | digit;
  }
  if (buf_[pos_ + 6] != ' ') {
    error_ = "frame header missing length/payload separator";
    return false;
  }
  if (len > kMaxFrameBytes) {
    error_ = "frame payload of " + std::to_string(len) +
             " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
             "-byte ceiling";
    return false;
  }
  if (buf_.size() - pos_ - kFrameHeaderBytes < len) return false;
  payload.assign(buf_, pos_ + kFrameHeaderBytes, len);
  pos_ += kFrameHeaderBytes + len;
  return true;
}

std::string format_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

std::optional<double> parse_double(std::string_view s) {
  double v = 0.0;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), v);
  if (res.ec != std::errc() || res.ptr != s.data() + s.size()) {
    return std::nullopt;
  }
  return v;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  std::uint64_t v = 0;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), v);
  if (res.ec != std::errc() || res.ptr != s.data() + s.size()) {
    return std::nullopt;
  }
  return v;
}

std::string format_feed(const FeedEvent& ev) {
  std::string out = "feed ";
  out += std::to_string(ev.seq);
  out += ' ';
  out += format_double(ev.lambda);
  out += ' ';
  out += format_double(ev.irradiance);
  out += ev.burst ? " 1" : " 0";
  return out;
}

namespace {

/// Split on single spaces; empty tokens (doubled spaces) are themselves
/// a grammar violation surfaced by the per-verb arity checks.
std::vector<std::string_view> tokenize(std::string_view payload) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= payload.size()) {
    const std::size_t sp = payload.find(' ', start);
    if (sp == std::string_view::npos) {
      out.push_back(payload.substr(start));
      break;
    }
    out.push_back(payload.substr(start, sp - start));
    start = sp + 1;
  }
  return out;
}

ParseOutcome fail(ErrorCode c, std::string detail) {
  ParseOutcome out;
  out.error = c;
  out.detail = std::move(detail);
  return out;
}

ParseOutcome done(Request req) {
  ParseOutcome out;
  out.request = std::move(req);
  return out;
}

}  // namespace

ParseOutcome parse_request(std::string_view payload) {
  if (payload.empty()) return fail(ErrorCode::BadFrame, "empty payload");
  const auto tok = tokenize(payload);
  const std::string_view verb = tok[0];
  Request req;
  if (verb == "hello") {
    if (tok.size() != 2) return fail(ErrorCode::BadArgument, "hello GSRV/<n>");
    const std::string_view id = tok[1];
    if (id.substr(0, 5) != "GSRV/") {
      return fail(ErrorCode::BadVersion, "unknown protocol family");
    }
    const auto ver = parse_u64(id.substr(5));
    if (!ver) return fail(ErrorCode::BadVersion, "unparsable version");
    if (*ver != kProtocolVersion) {
      return fail(ErrorCode::BadVersion,
                  "daemon speaks " + protocol_id() + " only");
    }
    req.kind = Request::Kind::Hello;
    req.hello_version = std::uint32_t(*ver);
    return done(req);
  }
  if (verb == "feed") {
    if (tok.size() != 5) {
      return fail(ErrorCode::BadArgument,
                  "feed <seq> <lambda> <irradiance> <burst>");
    }
    const auto seq = parse_u64(tok[1]);
    const auto lambda = parse_double(tok[2]);
    const auto irr = parse_double(tok[3]);
    if (!seq || !lambda || !irr || (tok[4] != "0" && tok[4] != "1")) {
      return fail(ErrorCode::BadArgument, "unparsable feed operands");
    }
    req.kind = Request::Kind::Feed;
    req.feed = {*seq, *lambda, *irr, tok[4] == "1"};
    return done(req);
  }
  if (verb == "strategy" || verb == "fault-inject" || verb == "checkpoint" ||
      verb == "query") {
    if (tok.size() < 2 || tok[1].empty()) {
      return fail(ErrorCode::BadArgument,
                  std::string(verb) + " needs an operand");
    }
    req.arg = std::string(tok[1]);
    if (verb == "strategy") {
      if (tok.size() != 2) return fail(ErrorCode::BadArgument, "one operand");
      req.kind = Request::Kind::Strategy;
    } else if (verb == "fault-inject") {
      if (tok.size() != 2) return fail(ErrorCode::BadArgument, "one operand");
      req.kind = Request::Kind::FaultInject;
    } else if (verb == "checkpoint") {
      // Paths may contain spaces: the operand is the payload remainder.
      req.arg = std::string(payload.substr(payload.find(' ') + 1));
      req.kind = Request::Kind::Checkpoint;
    } else {
      req.kind = Request::Kind::Query;
      if (tok.size() == 4) {
        const auto lo = parse_double(tok[2]);
        const auto hi = parse_double(tok[3]);
        if (!lo || !hi) {
          return fail(ErrorCode::BadArgument, "unparsable query range");
        }
        req.lo = *lo;
        req.hi = *hi;
        req.has_range = true;
      } else if (tok.size() != 2) {
        return fail(ErrorCode::BadArgument, "query <metric> [<lo> <hi>]");
      }
    }
    return done(req);
  }
  if (verb == "stat" || verb == "drain" || verb == "bye") {
    if (tok.size() != 1) {
      return fail(ErrorCode::BadArgument,
                  std::string(verb) + " takes no operands");
    }
    req.kind = verb == "stat"    ? Request::Kind::Stat
               : verb == "drain" ? Request::Kind::Drain
                                 : Request::Kind::Bye;
    return done(req);
  }
  return fail(ErrorCode::UnknownCommand, std::string(verb));
}

}  // namespace gs::serve
