// Lock-free single-producer/single-consumer ring (the northport per-core
// queue idiom): the daemon's IO thread pushes decoded feed events, the
// epoch thread pops them. Exactly one producer thread and one consumer
// thread; all other access is a data race by contract.
//
// The ring uses monotonically increasing head/tail counters (slot = index
// mod capacity), so full/empty are unambiguous without a wasted slot.
// push() publishes with a release store matched by the consumer's acquire
// load (and vice versa for pop), which is the entire synchronization — no
// mutex anywhere on the feed path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace gs::serve {

template <typename T>
class SpscQueue {
 public:
  /// Capacity must be a power of two (slot masking instead of modulo).
  explicit SpscQueue(std::size_t capacity)
      : slots_(capacity), mask_(capacity - 1) {
    GS_REQUIRE(capacity >= 2 && (capacity & (capacity - 1)) == 0,
               "SpscQueue capacity must be a power of two >= 2");
  }

  /// Producer side. False when full (caller applies backpressure).
  bool push(const T& v) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == slots_.size()) {
      return false;
    }
    slots_[tail & mask_] = v;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when empty.
  bool pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == head) return false;
    out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Racy snapshot; exact only from the producer or consumer thread.
  [[nodiscard]] std::size_t size() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return std::size_t(tail - head);
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<T> slots_;
  std::size_t mask_;
  // Separate cache lines: the producer writes tail_ and reads head_, the
  // consumer the reverse; sharing a line would false-share every push/pop.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

}  // namespace gs::serve
