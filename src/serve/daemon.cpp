#include "serve/daemon.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <thread>
#include <unordered_map>
#include <utility>

#include "ckpt/rotation.hpp"
#include "ckpt/snapshot.hpp"
#include "ckpt/state_io.hpp"
#include "common/assert.hpp"
#include "common/failpoint.hpp"
#include "core/strategy.hpp"
#include "sim/tsdb_sink.hpp"

namespace gs::serve {

namespace {

using SteadyClock = std::chrono::steady_clock;

std::string hex_u64(std::uint64_t v) {
  char buf[17];
  const auto res = std::to_chars(buf, buf + sizeof buf, v, 16);
  return std::string(buf, res.ptr);
}

/// Rows returned per query reply; the total row count is always reported,
/// so truncation is visible to the client.
constexpr std::uint64_t kQueryMaxRows = 256;

/// Failpoint site on the drain/stop-path final checkpoint: a crash here
/// is the worst case the e2e recovery contract must absorb.
constexpr const char* kFailpointDrainCheckpoint = "serve.drain.checkpoint";

}  // namespace

ServeDaemon::ServeDaemon(DaemonConfig cfg)
    : cfg_(std::move(cfg)),
      engine_(std::make_unique<tsdb::Engine>(cfg_.tsdb)),
      sim_(cfg_.day),
      queue_(cfg_.queue_capacity) {
  GS_REQUIRE(!cfg_.socket_path.empty(), "daemon needs a unix socket path");
  monitor_.set_epoch(sim_.epoch());
  if (!cfg_.resume_from.empty()) {
    // StateReader views its argument; keep the payload alive beside it.
    const std::string payload = load_resume_payload(cfg_.resume_from);
    ckpt::StateReader r(payload);
    load_state(r);
  }
  sim_.attach_tsdb(engine_.get(), 0);
  stale_series_ =
      engine_->series("feed_stale", 0, sim::kTsdbAggregateServer);
  epoch_hint_.store(feed_.next_seq(), std::memory_order_relaxed);
  finish_if_done();
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  GS_ENSURE(wake_fd_ >= 0, "eventfd() failed");
}

ServeDaemon::~ServeDaemon() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

void ServeDaemon::save_state(ckpt::StateWriter& w) const {
  w.begin_section("serve_daemon", kStateVersion);
  w.u32(kProtocolVersion);
  w.u64(report_.epochs);
  w.boolean(report_.completed);
  feed_.save_state(w);
  sim_.save_state(w);
  engine_->save_state(w);
  w.end_section();
}

void ServeDaemon::load_state(ckpt::StateReader& r) {
  r.begin_section("serve_daemon", kStateVersion);
  const std::uint32_t proto = r.u32();
  if (proto != kProtocolVersion) {
    throw ckpt::SnapshotError(
        "daemon snapshot speaks GSRV/" + std::to_string(proto) +
        ", this daemon speaks " + protocol_id());
  }
  report_.epochs = r.u64();
  const bool completed = r.boolean();
  (void)completed;  // recomputed by finish_if_done() after the sim loads
  feed_.load_state(r);
  sim_.load_state(r);
  engine_->load_state(r);
  r.end_section();
}

void ServeDaemon::request_stop() {
  terminate_.store(true, std::memory_order_relaxed);
  wake_io();
}

void ServeDaemon::wake_io() {
  const std::uint64_t one = 1;
  // Failure only means the counter is saturated — a wakeup is pending.
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_, &one, sizeof one);
}

void ServeDaemon::post_reply(std::uint64_t conn_id, std::string payload) {
  {
    MutexLock lock(mu_);
    outbox_.push_back({conn_id, std::move(payload)});
  }
  wake_io();
}

void ServeDaemon::finish_if_done() {
  if (!sim_.done() || report_.completed) return;
  report_.result = sim_.finish();
  report_.result_fingerprint = sim::day_result_fingerprint(report_.result);
  report_.completed = true;
}

std::string ServeDaemon::load_resume_payload(const std::string& from) {
  // A plain file is a pre-rotation snapshot (or an explicit generation
  // file); anything else is treated as a rotation base and resolved to
  // its newest intact generation.
  if (std::filesystem::is_regular_file(from)) {
    return ckpt::read_snapshot_file(from);
  }
  auto loaded =
      ckpt::RotatingSnapshot(std::filesystem::path(from))
          .load_last_known_good();
  if (!loaded) {
    throw ckpt::SnapshotError("no intact checkpoint generation at " + from);
  }
  for (const std::string& note : loaded->notes) {
    std::fprintf(stderr, "greensprintd: checkpoint recovery: %s\n",
                 note.c_str());
  }
  if (loaded->fell_back) {
    std::fprintf(stderr,
                 "greensprintd: resumed from last-known-good generation "
                 "%llu at %s\n",
                 static_cast<unsigned long long>(loaded->generation),
                 from.c_str());
  }
  return std::move(loaded->payload);
}

void ServeDaemon::write_checkpoint(const std::string& path) {
  ckpt::StateWriter w;
  save_state(w);
  ckpt::RotationOptions opts;
  opts.keep = cfg_.checkpoint_keep;
  ckpt::RotatingSnapshot(std::filesystem::path(path), opts)
      .write(w.buffer());
}

// --- Epoch thread -----------------------------------------------------------

void ServeDaemon::process_commands() {
  std::deque<Command> cmds;
  {
    MutexLock lock(mu_);
    cmds.swap(commands_);
  }
  for (const Command& c : cmds) handle_command(c);
}

std::string ServeDaemon::stat_reply() const {
  const std::uint64_t horizon_epochs =
      std::uint64_t(sim_.horizon().value() / sim_.epoch().value());
  std::string s = "ok stat epoch ";
  s += std::to_string(feed_.next_seq());
  s += " of ";
  s += std::to_string(horizon_epochs);
  s += " completed ";
  s += report_.completed ? '1' : '0';
  s += " strategy ";
  s += core::to_string(sim_.cluster().config().strategy);
  s += " ingested ";
  s += std::to_string(feed_.accepted());
  s += " stale_drops ";
  s += std::to_string(feed_.stale_drops());
  s += " gap_drops ";
  s += std::to_string(feed_.gap_drops());
  s += " stale_epochs ";
  s += std::to_string(feed_.stale_epochs());
  s += " queue ";
  s += std::to_string(queue_.size());
  s += " bursts_served ";
  s += std::to_string(sim_.bursts_served());
  s += " mean_soc ";
  s += format_double(sim_.cluster().mean_soc());
  s += " faults ";
  const std::string spec = sim_.live_faults().to_string();
  s += spec.empty() ? "none" : spec;
  return s;
}

std::string ServeDaemon::query_reply(const Request& req) {
  const tsdb::Timestamp lo =
      req.has_range ? tsdb::to_timestamp(req.lo) : tsdb::kMinTimestamp;
  const tsdb::Timestamp hi =
      req.has_range ? tsdb::to_timestamp(req.hi) : tsdb::kMaxTimestamp;
  tsdb::Cursor cur = engine_->query(req.arg, 0, lo, hi);
  std::string rows;
  std::uint64_t total = 0;
  tsdb::CursorRow row;
  while (cur.next(row)) {
    if (total < kQueryMaxRows) {
      rows += ' ';
      rows += format_double(tsdb::to_seconds(row.sample.time));
      rows += ':';
      rows += format_double(row.sample.value);
    }
    ++total;
  }
  std::string s = "ok query ";
  s += req.arg;
  s += " total ";
  s += std::to_string(total);
  s += " rows ";
  s += std::to_string(total < kQueryMaxRows ? total : kQueryMaxRows);
  s += rows;
  return s;
}

void ServeDaemon::handle_command(const Command& cmd) {
  const Request& req = cmd.req;
  switch (req.kind) {
    case Request::Kind::Stat:
      post_reply(cmd.conn_id, stat_reply());
      return;
    case Request::Kind::Query:
      post_reply(cmd.conn_id, query_reply(req));
      return;
    default:
      break;
  }
  if (draining_.load(std::memory_order_relaxed)) {
    post_reply(cmd.conn_id, make_error(ErrorCode::ShuttingDown,
                                       "daemon is draining"));
    return;
  }
  switch (req.kind) {
    case Request::Kind::Strategy: {
      const auto kind = core::strategy_from_string(req.arg);
      if (!kind) {
        post_reply(cmd.conn_id, make_error(ErrorCode::BadArgument,
                                           "unknown strategy " + req.arg));
        return;
      }
      const bool changed = sim_.set_strategy(*kind);
      post_reply(cmd.conn_id, std::string("ok strategy ") +
                                  core::to_string(*kind) + " changed " +
                                  (changed ? "1" : "0"));
      return;
    }
    case Request::Kind::FaultInject: {
      faults::FaultSpec spec;
      try {
        spec = faults::FaultSpec::parse(req.arg);
      } catch (const ContractError& e) {
        post_reply(cmd.conn_id,
                   make_error(ErrorCode::BadArgument, e.what()));
        return;
      }
      sim_.set_faults(spec);
      post_reply(cmd.conn_id, std::string("ok fault-inject active ") +
                                  (spec.any() ? "1" : "0"));
      return;
    }
    case Request::Kind::Checkpoint: {
      try {
        write_checkpoint(req.arg);
      } catch (const std::exception& e) {
        post_reply(cmd.conn_id, make_error(ErrorCode::Internal, e.what()));
        return;
      }
      post_reply(cmd.conn_id, "ok checkpoint " + req.arg + " epoch " +
                                  std::to_string(feed_.next_seq()));
      return;
    }
    case Request::Kind::Drain:
      draining_.store(true, std::memory_order_relaxed);
      drain_conn_ = cmd.conn_id;
      return;
    default:
      post_reply(cmd.conn_id,
                 make_error(ErrorCode::Internal, "unroutable command"));
      return;
  }
}

void ServeDaemon::drain_feed_queue() {
  QueuedFeed qf;
  while (queue_.pop(qf)) {
    if (sim_.done()) continue;
    if (feed_.admit(qf.ev) == LiveFeed::Admit::Accepted) {
      sim_.step_live(LiveFeed::live(qf.ev));
      ++report_.epochs;
      epoch_hint_.store(feed_.next_seq(), std::memory_order_relaxed);
      maybe_periodic_checkpoint();
    }
  }
}

void ServeDaemon::maybe_periodic_checkpoint() {
  if (cfg_.checkpoint_every == 0 || cfg_.checkpoint_path.empty() ||
      feed_.next_seq() % cfg_.checkpoint_every != 0) {
    return;
  }
  try {
    write_checkpoint(cfg_.checkpoint_path);
  } catch (const std::exception& e) {
    // A failed periodic checkpoint must not take the serving loop down:
    // the previous generation still stands and the next interval retries.
    std::fprintf(stderr, "greensprintd: periodic checkpoint failed: %s\n",
                 e.what());
  }
}

void ServeDaemon::epoch_loop() {
  const bool paced = cfg_.sim_speed > 0.0;
  const auto to_duration = [](double seconds) {
    return std::chrono::duration_cast<SteadyClock::duration>(
        std::chrono::duration<double>(seconds));
  };
  const auto epoch_wall =
      paced ? to_duration(sim_.epoch().value() / cfg_.sim_speed)
            : SteadyClock::duration::zero();
  const auto grace = paced ? to_duration(sim_.epoch().value() /
                                         cfg_.sim_speed *
                                         cfg_.stall_grace_epochs)
                           : SteadyClock::duration::zero();
  const auto start = SteadyClock::now();
  const std::uint64_t k0 = feed_.next_seq();
  QueuedFeed qf;
  while (!terminate_.load(std::memory_order_relaxed)) {
    process_commands();
    if (draining_.load(std::memory_order_relaxed)) break;
    if (sim_.done()) {
      finish_if_done();
      std::this_thread::sleep_for(std::chrono::microseconds(500));
      continue;
    }
    const std::uint64_t k = feed_.next_seq();
    const auto deadline = start + epoch_wall * std::int64_t(k - k0 + 1);
    if (paced && SteadyClock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }
    // The tick is due: consume queue entries until epoch k is stepped,
    // either from its admitted feed event or — paced only, after the
    // grace window — from the EWMA fallback.
    bool stepped = false;
    while (!stepped && !terminate_.load(std::memory_order_relaxed) &&
           !draining_.load(std::memory_order_relaxed)) {
      if (queue_.pop(qf)) {
        switch (feed_.admit(qf.ev)) {
          case LiveFeed::Admit::Accepted:
            sim_.step_live(LiveFeed::live(qf.ev));
            last_admit_gap_ = false;
            stepped = true;
            break;
          case LiveFeed::Admit::Gap:
            // Edge-triggered reply: tell the feeder once per gap run.
            if (!last_admit_gap_) {
              post_reply(qf.conn_id,
                         make_error(ErrorCode::FeedGap,
                                    "expected seq " +
                                        std::to_string(feed_.next_seq())));
            }
            last_admit_gap_ = true;
            break;
          case LiveFeed::Admit::Stale:
            last_admit_gap_ = false;
            break;
        }
        continue;
      }
      if (paced && SteadyClock::now() >= deadline + grace) {
        const double t_s = sim_.now().value();
        sim_.step_live(feed_.fallback());
        monitor_.record_feed_stale_epoch();
        engine_->append(stale_series_, t_s, 1.0);
        stepped = true;
        break;
      }
      process_commands();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    if (!stepped) continue;
    ++report_.epochs;
    epoch_hint_.store(feed_.next_seq(), std::memory_order_relaxed);
    finish_if_done();
    maybe_periodic_checkpoint();
  }

  if (draining_.load(std::memory_order_relaxed)) {
    drain_feed_queue();
    finish_if_done();
  }
  engine_->seal_all();
  engine_->flush();
  std::string checkpoint_note = "none";
  if (!cfg_.checkpoint_path.empty()) {
    try {
      GS_FAILPOINT(kFailpointDrainCheckpoint);
      write_checkpoint(cfg_.checkpoint_path);
      checkpoint_note = cfg_.checkpoint_path;
    } catch (const std::exception&) {
      checkpoint_note = "failed";
    }
  }
  if (draining_.load(std::memory_order_relaxed)) {
    report_.drained = true;
    std::string s = "ok drain epochs ";
    s += std::to_string(report_.epochs);
    s += " completed ";
    s += report_.completed ? '1' : '0';
    s += " fp ";
    s += report_.completed ? hex_u64(report_.result_fingerprint) : "0";
    s += " checkpoint ";
    s += checkpoint_note;
    post_reply(drain_conn_, std::move(s));
  }
  stopped_.store(true, std::memory_order_release);
  wake_io();
}

// --- IO thread --------------------------------------------------------------

struct ServeDaemon::Conn {
  int fd = -1;
  std::uint64_t id = 0;
  FrameDecoder decoder;
  bool hello_done = false;
  bool closing = false;  ///< close once outbuf flushes (bye / bad frame)
  std::string outbuf;
};

struct ServeDaemon::IoState {
  int epfd = -1;
  int listen_unix = -1;
  int listen_tcp = -1;
  std::unordered_map<int, Conn> conns;
  std::uint64_t next_conn_id = 1;
};

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  GS_ENSURE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
            "fcntl(O_NONBLOCK) failed");
}

void epoll_add(int epfd, int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  GS_ENSURE(::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev) == 0,
            "epoll_ctl(ADD) failed");
}

void epoll_mod(int epfd, int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  GS_ENSURE(::epoll_ctl(epfd, EPOLL_CTL_MOD, fd, &ev) == 0,
            "epoll_ctl(MOD) failed");
}

int listen_unix_socket(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  GS_ENSURE(fd >= 0, "socket(AF_UNIX) failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  GS_REQUIRE(path.size() < sizeof addr.sun_path,
             "unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // the daemon owns the path
  GS_ENSURE(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr) == 0,
            "bind(" + path + ") failed: " + std::strerror(errno));
  GS_ENSURE(::listen(fd, 16) == 0, "listen failed");
  set_nonblocking(fd);
  return fd;
}

int listen_tcp_socket(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  GS_ENSURE(fd >= 0, "socket(AF_INET) failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(std::uint16_t(port));
  GS_ENSURE(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr) == 0,
            "bind(127.0.0.1:" + std::to_string(port) +
                ") failed: " + std::strerror(errno));
  GS_ENSURE(::listen(fd, 16) == 0, "listen failed");
  set_nonblocking(fd);
  return fd;
}

/// Write as much of the outbuf as the socket takes; false on a dead peer.
bool flush_outbuf(int fd, std::string& outbuf) {
  while (!outbuf.empty()) {
    const ssize_t n = ::write(fd, outbuf.data(), outbuf.size());
    if (n > 0) {
      outbuf.erase(0, std::size_t(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;  // EPIPE / ECONNRESET / ...
  }
  return true;
}

}  // namespace

DaemonReport ServeDaemon::run() {
  IoState io;
  io.epfd = ::epoll_create1(0);
  GS_ENSURE(io.epfd >= 0, "epoll_create1 failed");
  io.listen_unix = listen_unix_socket(cfg_.socket_path);
  epoll_add(io.epfd, io.listen_unix, EPOLLIN);
  if (cfg_.tcp_port > 0) {
    io.listen_tcp = listen_tcp_socket(cfg_.tcp_port);
    epoll_add(io.epfd, io.listen_tcp, EPOLLIN);
  }
  epoll_add(io.epfd, wake_fd_, EPOLLIN);
  if (cfg_.stop_fd >= 0) epoll_add(io.epfd, cfg_.stop_fd, EPOLLIN);

  // The epoch thread is the single consumer of the feed ring; this thread
  // stays on the sockets. A pool makes no sense for one pinned consumer.
  std::thread epoch_thread(  // gs-lint: allow(raw-thread)
      [this] { epoch_loop(); });

  io_loop(io);
  epoch_thread.join();

  for (auto& [fd, conn] : io.conns) {
    flush_outbuf(fd, conn.outbuf);
    ::close(fd);
  }
  if (io.listen_unix >= 0) ::close(io.listen_unix);
  if (io.listen_tcp >= 0) ::close(io.listen_tcp);
  ::close(io.epfd);
  ::unlink(cfg_.socket_path.c_str());

  report_.ingested = feed_.accepted();
  report_.stale_drops = feed_.stale_drops();
  report_.gap_drops = feed_.gap_drops();
  report_.stale_epochs = feed_.stale_epochs();
  return report_;
}

void ServeDaemon::handle_payload(Conn& conn, const std::string& payload) {
  const auto send = [&](std::string reply) {
    conn.outbuf += encode_frame(reply);
  };
  const ParseOutcome out = parse_request(payload);
  if (!out.request) {
    send(make_error(out.error, out.detail));
    return;
  }
  const Request& req = *out.request;
  if (req.kind == Request::Kind::Hello) {
    conn.hello_done = true;
    std::string s = "ok hello ";
    s += protocol_id();
    s += " epoch ";
    s += std::to_string(epoch_hint_.load(std::memory_order_relaxed));
    s += " fp ";
    s += hex_u64(sim::day_run_fingerprint(cfg_.day));
    send(std::move(s));
    return;
  }
  if (!conn.hello_done) {
    send(make_error(ErrorCode::NeedHello, "hello first"));
    return;
  }
  switch (req.kind) {
    case Request::Kind::Feed: {
      if (draining_.load(std::memory_order_relaxed) ||
          stopped_.load(std::memory_order_relaxed)) {
        send(make_error(ErrorCode::ShuttingDown, "daemon is draining"));
        return;
      }
      const QueuedFeed qf{conn.id, req.feed};
      // Backpressure: park until the epoch thread makes room. The socket
      // buffer (and ultimately the feeder) absorbs the stall; no event is
      // ever dropped here.
      while (!queue_.push(qf)) {
        if (terminate_.load(std::memory_order_relaxed) ||
            stopped_.load(std::memory_order_relaxed)) {
          return;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      return;
    }
    case Request::Kind::Bye:
      send("ok bye");
      conn.closing = true;
      return;
    default: {
      MutexLock lock(mu_);
      commands_.push_back({conn.id, req});
      return;
    }
  }
}

void ServeDaemon::io_loop(IoState& io) {
  std::vector<epoll_event> events(64);
  std::vector<int> dead;
  char buf[16384];
  for (;;) {
    // Deliver epoch-thread replies into per-connection buffers.
    std::deque<Outgoing> out;
    {
      MutexLock lock(mu_);
      out.swap(outbox_);
    }
    for (Outgoing& o : out) {
      for (auto& [fd, conn] : io.conns) {
        if (conn.id == o.conn_id) {
          conn.outbuf += encode_frame(o.payload);
          break;
        }
      }
    }
    dead.clear();
    bool pending_writes = false;
    for (auto& [fd, conn] : io.conns) {
      if (!flush_outbuf(fd, conn.outbuf)) {
        dead.push_back(fd);
        continue;
      }
      if (conn.closing && conn.outbuf.empty()) {
        dead.push_back(fd);
        continue;
      }
      pending_writes = pending_writes || !conn.outbuf.empty();
      epoll_mod(io.epfd, fd,
                std::uint32_t(EPOLLIN) |
                    (conn.outbuf.empty() ? 0u : std::uint32_t(EPOLLOUT)));
    }
    for (const int fd : dead) {
      ::close(fd);
      io.conns.erase(fd);
      ::epoll_ctl(io.epfd, EPOLL_CTL_DEL, fd, nullptr);
    }
    if (stopped_.load(std::memory_order_acquire)) {
      bool outbox_empty;
      {
        MutexLock lock(mu_);
        outbox_empty = outbox_.empty();
      }
      if (outbox_empty && !pending_writes) break;
    }

    const int n = ::epoll_wait(io.epfd, events.data(), int(events.size()),
                               20);
    if (n < 0) {
      if (errno == EINTR) continue;
      GS_ENSURE(false, "epoll_wait failed");
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == io.listen_unix || fd == io.listen_tcp) {
        for (;;) {
          const int cfd = ::accept(fd, nullptr, nullptr);
          if (cfd < 0) break;
          set_nonblocking(cfd);
          Conn conn;
          conn.fd = cfd;
          conn.id = io.next_conn_id++;
          io.conns.emplace(cfd, std::move(conn));
          epoll_add(io.epfd, cfd, EPOLLIN);
        }
        continue;
      }
      if (fd == wake_fd_) {
        std::uint64_t counter = 0;
        [[maybe_unused]] const ssize_t rd =
            ::read(wake_fd_, &counter, sizeof counter);
        continue;
      }
      if (fd == cfg_.stop_fd) {
        char sink[64];
        [[maybe_unused]] const ssize_t rd =
            ::read(cfg_.stop_fd, sink, sizeof sink);
        terminate_.store(true, std::memory_order_relaxed);
        continue;
      }
      const auto it = io.conns.find(fd);
      if (it == io.conns.end()) continue;
      Conn& conn = it->second;
      bool drop = false;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) drop = true;
      if (!drop && (events[i].events & EPOLLIN) != 0) {
        for (;;) {
          const ssize_t rd = ::read(fd, buf, sizeof buf);
          if (rd > 0) {
            conn.decoder.feed(std::string_view(buf, std::size_t(rd)));
            continue;
          }
          if (rd < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (rd < 0 && errno == EINTR) continue;
          drop = true;  // EOF or hard error
          break;
        }
        std::string payload;
        while (conn.decoder.next(payload)) {
          handle_payload(conn, payload);
        }
        if (conn.decoder.error()) {
          conn.outbuf +=
              encode_frame(make_error(ErrorCode::BadFrame,
                                      *conn.decoder.error()));
          conn.closing = true;
        }
      }
      if (drop) {
        ::close(fd);
        io.conns.erase(it);
        ::epoll_ctl(io.epfd, EPOLL_CTL_DEL, fd, nullptr);
      }
    }
  }
}

}  // namespace gs::serve
