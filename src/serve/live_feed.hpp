// Feed sequencing and stall fallback for the serve daemon, factored out of
// the event loop so the policy is deterministic and unit-testable without
// sockets or wall clocks.
//
// Every feed event names the epoch it drives (seq == epoch index). The
// LiveFeed admits exactly the next expected epoch, drops duplicates and
// late arrivals as Stale (a restarted feeder replays from its file start;
// the hello reply tells it where to resume, this is the backstop), and
// rejects events from the future as Gap (the feeder skipped epochs —
// admitting them would silently desynchronize feed and sim).
//
// When the feed stalls in paced mode, the daemon keeps the control loop
// ticking from the EWMA workload predictor (paper Equation 1, alpha 0.3
// over the admitted lambdas) and the last seen irradiance, with the burst
// flag off — the conservative no-sprint assumption. Fallback epochs are
// counted, surfaced as the `feed_stale` health flag through Monitor/tsdb,
// and consume their epoch slot: a late event for a fallback-covered epoch
// is Stale, keeping feed and sim in lockstep.
#pragma once

#include <cstdint>

#include "ckpt/fwd.hpp"
#include "common/ewma.hpp"
#include "serve/protocol.hpp"
#include "sim/day_runner.hpp"

namespace gs::serve {

class LiveFeed {
 public:
  enum class Admit { Accepted, Stale, Gap };

  /// `alpha` is the fallback predictor's EWMA weight (paper: 0.3).
  explicit LiveFeed(double alpha = 0.3) : lambda_ewma_(alpha) {}

  /// Epoch index the next admissible event must carry.
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }

  /// Classify an event; Accepted advances the sequence and updates the
  /// fallback predictor. Call live() afterwards for the admitted epoch.
  Admit admit(const FeedEvent& ev);

  /// The admitted event's epoch inputs (pass-through).
  [[nodiscard]] static sim::LiveEpoch live(const FeedEvent& ev) {
    return {ev.lambda, ev.irradiance, ev.burst};
  }

  /// Synthesize the fallback epoch for a stalled feed and consume its
  /// epoch slot. Deterministic in the admit/fallback history alone.
  [[nodiscard]] sim::LiveEpoch fallback();

  [[nodiscard]] std::uint64_t accepted() const { return accepted_; }
  [[nodiscard]] std::uint64_t stale_drops() const { return stale_drops_; }
  [[nodiscard]] std::uint64_t gap_drops() const { return gap_drops_; }
  [[nodiscard]] std::uint64_t stale_epochs() const { return stale_epochs_; }

  // --- Checkpoint/restore (src/ckpt): the full sequencing + predictor
  // state, so a restarted daemon resumes the exact fallback behavior.
  static constexpr std::uint32_t kStateVersion = 1;
  void save_state(ckpt::StateWriter& w) const;
  void load_state(ckpt::StateReader& r);

 private:
  std::uint64_t next_seq_ = 0;
  Ewma lambda_ewma_;
  double last_irradiance_ = 0.0;
  std::uint64_t accepted_ = 0;
  std::uint64_t stale_drops_ = 0;
  std::uint64_t gap_drops_ = 0;
  std::uint64_t stale_epochs_ = 0;
};

}  // namespace gs::serve
