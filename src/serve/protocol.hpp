// The greensprintd wire protocol (GSRV/1): a length-prefixed line protocol
// over a Unix-domain or TCP stream socket.
//
// Framing: every message is `LLLLLL payload` — six lowercase hex digits of
// payload byte length, one space, then the payload. The fixed-width header
// keeps the decoder allocation-free and makes truncation detectable at the
// first byte. Payloads are UTF-8 text, space-separated tokens, no newline
// requirement (a payload may embed any byte but the tools keep to text).
//
// Session grammar (client -> daemon):
//
//   hello GSRV/<version>
//   feed <seq> <lambda> <irradiance> <burst:0|1>
//   strategy <name>
//   fault-inject <spec>          (faults::FaultSpec::parse grammar)
//   checkpoint <path>
//   stat
//   query <metric> [<lo_s> <hi_s>]
//   drain
//   bye
//
// Replies: `ok <detail...>` or `err <code> <detail...>` with a typed error
// code (ErrorCode). The first message on a connection must be `hello`; the
// daemon answers with its protocol id, current epoch index, and campaign
// fingerprint so a replay client can resynchronize after a daemon restart.
//
// Doubles cross the wire in shortest round-trip form (std::to_chars /
// std::from_chars), so a feed generated from day_feed_plan() and parsed
// back drives the sim with bit-identical values — the foundation of the
// daemon-e2e fingerprint equivalence.
//
// Any change to the message grammar, the framing, or the FeedEvent wire
// struct must bump kProtocolVersion (gs_analyze rule
// serve-protocol-version).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace gs::serve {

/// GSRV wire-protocol version; part of the hello handshake.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Hard payload ceiling; a frame header announcing more is a protocol
/// error (kills the connection, not the daemon).
inline constexpr std::size_t kMaxFrameBytes = 65536;

/// Frame header size: six hex digits + one space.
inline constexpr std::size_t kFrameHeaderBytes = 7;

/// "GSRV/<kProtocolVersion>", the id exchanged in hello.
[[nodiscard]] std::string protocol_id();

// --- Typed error replies ----------------------------------------------------

enum class ErrorCode {
  BadFrame,        ///< Malformed frame header or oversized payload.
  BadVersion,      ///< hello named a protocol version we do not speak.
  NeedHello,       ///< Command before the hello handshake.
  UnknownCommand,  ///< Verb not in the grammar.
  BadArgument,     ///< Verb recognized, operands malformed.
  FeedGap,         ///< Feed seq jumped past the next expected epoch.
  ShuttingDown,    ///< Daemon is draining; command not accepted.
  Internal,        ///< Daemon-side failure (e.g. checkpoint write error).
};

[[nodiscard]] const char* to_string(ErrorCode c);
[[nodiscard]] std::optional<ErrorCode> error_code_from_string(
    std::string_view s);

/// `err <code> <detail>` payload.
[[nodiscard]] std::string make_error(ErrorCode c, std::string_view detail);

// --- Framing ----------------------------------------------------------------

/// Wrap a payload in the `LLLLLL ` length prefix.
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Incremental stream decoder: feed() raw socket bytes, next() pops
/// complete payloads. A malformed header or oversized length poisons the
/// decoder (error() != nullopt); the connection must be dropped.
class FrameDecoder {
 public:
  void feed(std::string_view bytes);
  /// Pop the next complete payload; false when more bytes are needed or
  /// the decoder is poisoned.
  bool next(std::string& payload);
  [[nodiscard]] const std::optional<std::string>& error() const {
    return error_;
  }
  /// Bytes buffered but not yet consumed (tests / backpressure metrics).
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;
  std::optional<std::string> error_;
};

// --- Wire values ------------------------------------------------------------

/// Shortest round-trip double formatting (std::to_chars); parse_double is
/// the exact inverse, so doubles survive the wire bit-identically.
[[nodiscard]] std::string format_double(double v);
[[nodiscard]] std::optional<double> parse_double(std::string_view s);
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view s);

/// One feed tick: the exogenous inputs of epoch `seq` (sim::LiveEpoch plus
/// the sequencing the socket needs). Part of the GSRV/1 wire format.
struct FeedEvent {
  std::uint64_t seq = 0;
  double lambda = 0.0;
  double irradiance = 0.0;
  bool burst = false;
};

/// `feed <seq> <lambda> <irradiance> <burst>` payload.
[[nodiscard]] std::string format_feed(const FeedEvent& ev);

// --- Request parsing --------------------------------------------------------

struct Request {
  enum class Kind {
    Hello,
    Feed,
    Strategy,
    FaultInject,
    Checkpoint,
    Stat,
    Query,
    Drain,
    Bye,
  };
  Kind kind = Kind::Stat;
  FeedEvent feed;          ///< Kind::Feed
  std::string arg;         ///< strategy name / fault spec / path / metric
  double lo = 0.0;         ///< Kind::Query range, seconds
  double hi = 0.0;
  bool has_range = false;  ///< Kind::Query: lo/hi given
  std::uint32_t hello_version = 0;  ///< Kind::Hello
};

/// Outcome of parsing one payload: either a request or a typed error.
struct ParseOutcome {
  std::optional<Request> request;
  ErrorCode error = ErrorCode::Internal;
  std::string detail;
};

[[nodiscard]] ParseOutcome parse_request(std::string_view payload);

}  // namespace gs::serve
