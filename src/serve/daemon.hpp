// greensprintd's engine room: a two-thread, epoll-based serving loop that
// drives a DaySim campaign closed-loop from a live socket feed.
//
//   IO thread (run() caller)          epoch thread
//   ------------------------          ------------------------------
//   epoll: listeners, conns,          one controller epoch per tick
//     wake eventfd, stop fd           (wall-clock paced by sim_speed;
//   decode frames, parse requests     unpaced when sim_speed == 0)
//   feed events  --SPSC queue-->      admit via LiveFeed, step_live()
//   control cmds --mutex deque-->     handle between epochs
//   replies     <--outbox+eventfd--   stat/query/strategy/... replies
//
// The SPSC ring is the only hot-path hand-off and is lock-free; when it
// fills, the IO thread parks on the feed connection (stops reading), so
// backpressure propagates to the feeder through the socket instead of
// dropping events. Control commands are rare and take the mutex path.
//
// Graceful shutdown: `drain` consumes every queued feed event, seals and
// flushes the tsdb engine, writes the final checkpoint, replies with the
// result fingerprint, and exits. SIGTERM (via DaemonConfig::stop_fd) or
// request_stop() does the same minus the reply. A daemon restarted from
// the checkpoint resumes bit-identically: the snapshot carries the sim,
// the feed sequencing/fallback state, and the telemetry engine.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "ckpt/fwd.hpp"

#include "common/thread_annotations.hpp"
#include "serve/live_feed.hpp"
#include "serve/protocol.hpp"
#include "serve/spsc_queue.hpp"
#include "sim/day_runner.hpp"
#include "sim/monitor.hpp"
#include "tsdb/engine.hpp"

namespace gs::serve {

struct DaemonConfig {
  sim::DayRunConfig day;
  /// Unix-domain socket path (required; created, owned, unlinked).
  std::string socket_path;
  /// Optional TCP listener on 127.0.0.1:<tcp_port>; 0 disables.
  int tcp_port = 0;
  /// Wall-clock pacing: one epoch every epoch/sim_speed seconds. 0 runs
  /// unpaced — an epoch fires as soon as its feed event is available
  /// (tests, the perf gate); the stall fallback never fires unpaced.
  double sim_speed = 0.0;
  /// Paced mode: epochs of wall-clock silence past the tick deadline
  /// before the EWMA fallback synthesizes the epoch.
  double stall_grace_epochs = 2.0;
  /// Checkpoint *rotation base* written on drain/stop (and by
  /// --checkpoint-every): generations land beside it as base.gNNNNNN
  /// plus a base.current pointer (see ckpt/rotation.hpp); empty disables
  /// final checkpoints. The `checkpoint <path>` command rotates at
  /// whatever base it names, regardless.
  std::string checkpoint_path;
  /// Periodic checkpoint to checkpoint_path every N epochs; 0 disables.
  std::uint64_t checkpoint_every = 0;
  /// Rotation generations kept per checkpoint base.
  std::uint32_t checkpoint_keep = 4;
  /// Checkpoint to restore before serving (daemon restart): a rotation
  /// base resolved to its newest intact generation (last-known-good), or
  /// a plain pre-rotation snapshot file.
  std::string resume_from;
  /// Telemetry engine under the daemon (MEMORY by default).
  tsdb::EngineOptions tsdb;
  /// Feed ring capacity (power of two).
  std::size_t queue_capacity = std::size_t(1) << 14;
  /// File descriptor that signals termination when readable (the tool
  /// wires its SIGTERM/SIGINT handler's pipe here); -1 disables.
  int stop_fd = -1;
};

struct DaemonReport {
  std::uint64_t epochs = 0;          ///< Epochs actually stepped.
  bool completed = false;            ///< Campaign reached its horizon.
  bool drained = false;              ///< Clean `drain` exit (vs. stop).
  std::uint64_t result_fingerprint = 0;  ///< Valid when completed.
  sim::DayRunResult result;          ///< Valid when completed.
  std::uint64_t ingested = 0;
  std::uint64_t stale_drops = 0;
  std::uint64_t gap_drops = 0;
  std::uint64_t stale_epochs = 0;    ///< EWMA-fallback epochs.
};

class ServeDaemon {
 public:
  explicit ServeDaemon(DaemonConfig cfg);
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Serve until drain or stop; blocks the calling thread (it becomes the
  /// IO thread). Call at most once.
  DaemonReport run();

  /// Async stop from another thread (the in-process SIGTERM equivalent):
  /// the epoch thread writes the final checkpoint and both threads exit.
  void request_stop();

  /// Telemetry surfaces (valid while and after run()).
  [[nodiscard]] const sim::Monitor& monitor() const { return monitor_; }
  [[nodiscard]] tsdb::Engine& engine() { return *engine_; }

  // --- Checkpoint/restore (src/ckpt): the container snapshot nests the
  // live feed, the sim, and the telemetry engine, prefixed with the wire
  // protocol version so a daemon never resumes a foreign dialect.
  static constexpr std::uint32_t kStateVersion = 1;
  void save_state(ckpt::StateWriter& w) const;
  void load_state(ckpt::StateReader& r);

 private:
  struct QueuedFeed {
    std::uint64_t conn_id = 0;
    FeedEvent ev;
  };
  struct Command {
    std::uint64_t conn_id = 0;
    Request req;
  };
  struct Outgoing {
    std::uint64_t conn_id = 0;
    std::string payload;
  };
  struct Conn;
  struct IoState;

  void epoch_loop();
  void process_commands() GS_EXCLUDES(mu_);
  void handle_command(const Command& cmd);
  [[nodiscard]] std::string stat_reply() const;
  [[nodiscard]] std::string query_reply(const Request& req);
  /// Resolve resume_from (plain snapshot file or rotation base) to its
  /// payload; logs last-known-good fallback notes to stderr.
  static std::string load_resume_payload(const std::string& from);
  void write_checkpoint(const std::string& path);
  /// Rotate a checkpoint when the epoch count crosses a checkpoint_every
  /// boundary; a failed write logs and keeps serving (the previous
  /// generation stands). Called from both the paced epoch loop and the
  /// bulk drain path so a crash mid-drain also resumes from a recent
  /// generation.
  void maybe_periodic_checkpoint();
  void finish_if_done();
  void post_reply(std::uint64_t conn_id, std::string payload)
      GS_EXCLUDES(mu_);
  void wake_io();
  void drain_feed_queue();

  // IO-thread helpers (defined over IoState in daemon.cpp).
  void io_loop(IoState& io) GS_EXCLUDES(mu_);
  void handle_payload(Conn& conn, const std::string& payload)
      GS_EXCLUDES(mu_);

  DaemonConfig cfg_;
  std::unique_ptr<tsdb::Engine> engine_;
  sim::DaySim sim_;
  LiveFeed feed_;
  sim::Monitor monitor_;
  SpscQueue<QueuedFeed> queue_;
  tsdb::SeriesId stale_series_ = 0;

  mutable Mutex mu_;
  std::deque<Command> commands_ GS_GUARDED_BY(mu_);
  std::deque<Outgoing> outbox_ GS_GUARDED_BY(mu_);

  std::atomic<bool> terminate_{false};  ///< stop requested (no reply)
  std::atomic<bool> draining_{false};   ///< drain accepted
  std::atomic<bool> stopped_{false};    ///< epoch thread exited
  std::atomic<std::uint64_t> epoch_hint_{0};  ///< next epoch (hello reply)
  int wake_fd_ = -1;

  DaemonReport report_;
  std::uint64_t drain_conn_ = 0;  ///< connection owed the drain reply
  bool last_admit_gap_ = false;
};

}  // namespace gs::serve
