// Client-side connection helpers shared by gs_feed and the e2e harness:
// a single-shot unix-domain connect plus a bounded retrying variant for
// racing a daemon that is still binding its socket. The retry schedule is
// exponential backoff with seeded jitter — deterministic for a given seed,
// so chaos-lane replays reproduce the same connect timing.
#pragma once

#include <cstdint>
#include <string>

namespace gs::serve {

/// Rng stream tag for connect-backoff jitter (unique repo-wide; see the
/// other k*StreamTag constants in src/faults and src/common/failpoint).
constexpr std::uint64_t kConnectJitterStreamTag = 0x50ccull;

struct ConnectRetryOptions {
  /// Total connect attempts before giving up (>= 1).
  int attempts = 40;
  /// Delay after the first failed attempt, in seconds.
  double initial_delay_s = 0.01;
  /// Multiplier applied to the delay after every failed attempt.
  double backoff = 1.6;
  /// Delay ceiling, in seconds.
  double max_delay_s = 0.5;
  /// Seed for the jitter stream; each delay is scaled by a uniform factor
  /// in [0.5, 1.0) so concurrent clients don't reconnect in lockstep.
  std::uint64_t seed = 0;
};

/// Connect to a unix-domain stream socket. Returns the fd, or -1 with
/// errno describing the failure (ENAMETOOLONG for oversized paths).
int connect_unix(const std::string& path);

/// connect_unix with bounded retry: ECONNREFUSED and ENOENT (socket not
/// bound yet / not created yet) are retried on the backoff schedule; any
/// other errno fails immediately. Returns the fd, or -1 with errno from
/// the last attempt.
int connect_unix_retry(const std::string& path,
                       const ConnectRetryOptions& opts = {});

}  // namespace gs::serve
