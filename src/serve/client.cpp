#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/rng.hpp"

namespace gs::serve {

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    errno = ENAMETOOLONG;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

int connect_unix_retry(const std::string& path,
                       const ConnectRetryOptions& opts) {
  Rng jitter = Rng::stream(opts.seed, {kConnectJitterStreamTag});
  double delay_s = opts.initial_delay_s;
  const int attempts = std::max(opts.attempts, 1);
  for (int attempt = 1;; ++attempt) {
    const int fd = connect_unix(path);
    if (fd >= 0) return fd;
    // Only "the daemon isn't listening yet" is worth waiting out.
    if (errno != ECONNREFUSED && errno != ENOENT) return -1;
    if (attempt >= attempts) return -1;
    const double scaled = delay_s * (0.5 + 0.5 * jitter.uniform());
    std::this_thread::sleep_for(
        std::chrono::duration<double>(std::max(scaled, 0.0)));
    delay_s = std::min(delay_s * opts.backoff, opts.max_delay_s);
  }
}

}  // namespace gs::serve
