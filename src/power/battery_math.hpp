// gs:hot-path — shared VRLA battery arithmetic; no heap allocation.
//
// The Peukert / DoD-cap formulas used by both battery representations:
// the scalar `power::Battery` (one object per server, the historical API)
// and the structure-of-arrays `power::BatteryBank` (the epoch kernel's
// layout). Both call exactly these functions, so the two representations
// are bit-identical by construction — there is one copy of every
// floating-point expression in the model.
//
// Mutating operations take the per-battery state as individual double
// references so the bank can pass elements of its parallel arrays without
// gathering into a temporary struct.
#pragma once

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "power/battery.hpp"

namespace gs::power::battmath {

[[nodiscard]] inline double rated_current(const BatteryConfig& cfg) {
  return cfg.capacity.value() / cfg.rated_hours;
}

/// Peukert-corrected effective current for a real current draw. Below the
/// rated rate Peukert gives a bonus; we conservatively clamp the
/// correction at 1 (no free capacity at trickle rates).
[[nodiscard]] inline double effective_current(const BatteryConfig& cfg,
                                              double i) {
  if (i <= 0.0) return 0.0;
  const double ratio = i / rated_current(cfg);
  const double corr = std::max(1.0, std::pow(ratio, cfg.peukert_exponent - 1.0));
  return i * corr;
}

/// Rated capacity times the current fade factor.
[[nodiscard]] inline double faded_capacity_ah(const BatteryConfig& cfg,
                                              double capacity_fade) {
  return cfg.capacity.value() * capacity_fade;
}

/// Effective Ah still usable before the DoD cap.
[[nodiscard]] inline double usable_remaining_ah(const BatteryConfig& cfg,
                                                double used_ah,
                                                double capacity_fade) {
  const double usable =
      cfg.max_dod * faded_capacity_ah(cfg, capacity_fade) - used_ah;
  return std::max(0.0, usable);
}

/// Greatest constant power (W) the battery can deliver for the whole of
/// dt_s seconds without crossing the DoD cap or the current ceiling.
[[nodiscard]] inline double max_discharge_power_w(const BatteryConfig& cfg,
                                                  double used_ah,
                                                  double capacity_fade,
                                                  double dt_s) {
  GS_REQUIRE(dt_s > 0.0, "dt must be positive");
  const double remaining = usable_remaining_ah(cfg, used_ah, capacity_fade);
  if (remaining <= 0.0) return 0.0;
  // Find the real current I whose Peukert-corrected drain just empties the
  // usable capacity over dt: I_eff(I) * dt_h = remaining.
  const double dt_h = dt_s / 3600.0;
  const double budget_eff = remaining / dt_h;  // effective amps available
  const double i_rated = rated_current(cfg);
  const double k = cfg.peukert_exponent;
  // I_eff = I^k / i_rated^(k-1)  (for I >= i_rated)  =>  I = (budget *
  // i_rated^(k-1))^(1/k); below the rated rate the correction is clamped at
  // 1 so I = budget directly.
  double i = budget_eff <= i_rated
                 ? budget_eff
                 : std::pow(budget_eff * std::pow(i_rated, k - 1.0), 1.0 / k);
  i = std::min(i, cfg.max_discharge_c_rate *
                      faded_capacity_ah(cfg, capacity_fade));
  return i * cfg.nominal_voltage.value();
}

/// Draw `p_w` for dt_s; p_w must not exceed max_discharge_power_w
/// (contract). Mutates used_ah / lifetime_ah; returns the energy in J.
inline double discharge_j(const BatteryConfig& cfg, double& used_ah,
                          double& lifetime_ah, double capacity_fade,
                          double p_w, double dt_s) {
  GS_REQUIRE(p_w >= 0.0, "discharge power must be non-negative");
  GS_REQUIRE(dt_s > 0.0, "dt must be positive");
  if (p_w == 0.0) return 0.0;
  GS_REQUIRE(p_w <= max_discharge_power_w(cfg, used_ah, capacity_fade, dt_s) *
                        (1.0 + 1e-6),
             "discharge exceeds the battery's sustainable power for dt");
  const double i = p_w / cfg.nominal_voltage.value();
  const double i_eff = effective_current(cfg, i);
  const double drained_ah = i_eff * dt_s / 3600.0;
  used_ah += drained_ah;
  lifetime_ah += drained_ah;
  // Numerical guard: never exceed the DoD cap by accumulation error.
  used_ah = std::min(used_ah,
                     cfg.max_dod * faded_capacity_ah(cfg, capacity_fade));
  return p_w * dt_s;
}

/// Offer `p_w` of charging power for dt_s; returns the wall power (W)
/// actually accepted (charge-rate cap + remaining headroom).
inline double charge_w(const BatteryConfig& cfg, double& used_ah,
                       double charge_derate, double p_w, double dt_s) {
  GS_REQUIRE(p_w >= 0.0, "charge power must be non-negative");
  GS_REQUIRE(dt_s > 0.0, "dt must be positive");
  if (p_w == 0.0 || used_ah <= 0.0) return 0.0;
  const double offered = std::min(p_w, cfg.max_charge_power.value());
  const double ah_in = offered * cfg.charge_efficiency * charge_derate *
                       dt_s / 3600.0 / cfg.nominal_voltage.value();
  const double accepted_ah = std::min(ah_in, used_ah);
  used_ah -= accepted_ah;
  // Report the wall power that produced the accepted charge.
  return accepted_ah / ah_in * offered;
}

/// Peukert supply time (s) from *full* at constant power draw `p_w`.
[[nodiscard]] inline double supply_time_from_full_s(const BatteryConfig& cfg,
                                                    double capacity_fade,
                                                    double p_w) {
  GS_REQUIRE(p_w > 0.0, "supply time needs positive power");
  const double i = p_w / cfg.nominal_voltage.value();
  const double i_eff = effective_current(cfg, i);
  const double usable = cfg.max_dod * faded_capacity_ah(cfg, capacity_fade);
  return usable / i_eff * 3600.0;
}

/// Capacity (Ah) actually delivered when fully drained at constant current.
[[nodiscard]] inline double delivered_capacity_ah(const BatteryConfig& cfg,
                                                  double i) {
  GS_REQUIRE(i > 0.0, "delivered_capacity needs positive current");
  // Peukert: t = H * (C / (I*H))^k, delivered = I * t. Full drain (DoD=1).
  const double h = cfg.rated_hours;
  const double c = cfg.capacity.value();
  const double t = h * std::pow(c / (i * h), cfg.peukert_exponent);
  return i * t;
}

/// Cumulative equivalent full DoD-cycles.
[[nodiscard]] inline double equivalent_cycles(const BatteryConfig& cfg,
                                              double lifetime_ah) {
  return lifetime_ah / (cfg.max_dod * cfg.capacity.value());
}

}  // namespace gs::power::battmath
