// Solar array + inverter: scales a normalized production trace to AC watts.
// The paper provisions one 275 W-DC panel per green server and derates by
// 0.77 for the inverter/wiring chain, giving 211.75 W AC peak per panel.
#pragma once

#include "common/units.hpp"

namespace gs::power {

struct SolarArrayConfig {
  int panels = 3;
  Watts panel_dc_peak{275.0};
  double ac_derate = 0.77;
};

class SolarArray {
 public:
  explicit SolarArray(SolarArrayConfig cfg);

  /// AC output for a normalized production fraction in [0,1].
  [[nodiscard]] Watts ac_output(double fraction) const;

  /// Peak AC capability (fraction = 1).
  [[nodiscard]] Watts peak_ac() const;

  [[nodiscard]] const SolarArrayConfig& config() const { return cfg_; }

 private:
  SolarArrayConfig cfg_;
};

}  // namespace gs::power
