// gs:hot-path — structure-of-arrays battery state for the epoch kernel.
//
// A BatteryBank holds the per-battery charge / Peukert state of a whole
// green group in four parallel arrays (used Ah, lifetime Ah, capacity
// fade, charge derate) under one shared BatteryConfig. Every operation
// routes through power/battery_math.hpp — the same functions the scalar
// `Battery` calls — so a bank and a vector<Battery> driven by the same
// operation sequence hold bit-identical state at every step.
//
// `BatteryRef` is a Battery-shaped view of one bank element; the PSS
// settlement template accepts either representation through it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ckpt/fwd.hpp"
#include "common/units.hpp"
#include "power/battery.hpp"
#include "power/battery_math.hpp"

namespace gs::power {

class BatteryBank {
 public:
  BatteryBank(BatteryConfig cfg, std::size_t n);

  [[nodiscard]] std::size_t size() const { return used_ah_.size(); }
  [[nodiscard]] const BatteryConfig& config() const { return cfg_; }

  [[nodiscard]] double depth_of_discharge(std::size_t i) const {
    return used_ah_[i] / cfg_.capacity.value();
  }
  [[nodiscard]] double state_of_charge(std::size_t i) const {
    return 1.0 - depth_of_discharge(i);
  }
  [[nodiscard]] Watts max_discharge_power(std::size_t i, Seconds dt) const {
    return Watts(battmath::max_discharge_power_w(cfg_, used_ah_[i], fade_[i],
                                                 dt.value()));
  }
  Joules discharge(std::size_t i, Watts p, Seconds dt) {
    return Joules(battmath::discharge_j(cfg_, used_ah_[i], lifetime_ah_[i],
                                        fade_[i], p.value(), dt.value()));
  }
  Watts charge(std::size_t i, Watts p, Seconds dt) {
    return Watts(battmath::charge_w(cfg_, used_ah_[i], derate_[i], p.value(),
                                    dt.value()));
  }
  [[nodiscard]] double equivalent_cycles(std::size_t i) const {
    return battmath::equivalent_cycles(cfg_, lifetime_ah_[i]);
  }

  /// Fault factors apply bank-wide (the injector derates the whole green
  /// group; see GreenCluster::apply_component_faults).
  void set_capacity_fade_all(double factor);
  void set_charge_derate_all(double factor);

  /// Sum of per-battery state of charge (the kernel's mean_soc numerator).
  [[nodiscard]] double total_soc() const;
  [[nodiscard]] double total_equivalent_cycles() const;

  // Raw arrays for the branch-lean kernel loops.
  [[nodiscard]] const std::vector<double>& used_ah() const { return used_ah_; }
  [[nodiscard]] const std::vector<double>& capacity_fade() const {
    return fade_;
  }

  // --- Checkpoint/restore (src/ckpt) --------------------------------------
  // One element's snapshot is byte-identical to Battery::save_state, so a
  // bank-backed cluster reads (and writes) the same cluster snapshots as
  // the historical vector<Battery> layout.
  void save_state_element(ckpt::StateWriter& w, std::size_t i) const;
  void load_state_element(ckpt::StateReader& r, std::size_t i);

 private:
  BatteryConfig cfg_;
  std::vector<double> used_ah_;      ///< Effective Ah consumed since full.
  std::vector<double> lifetime_ah_;  ///< Cumulative discharge Ah.
  std::vector<double> fade_;         ///< Capacity-fade factor in (0,1].
  std::vector<double> derate_;       ///< Charge-derate factor in (0,1].
};

/// Battery-shaped view of one BatteryBank element (for code templated
/// over the battery representation, e.g. the PSS settlement).
class BatteryRef {
 public:
  BatteryRef(BatteryBank& bank, std::size_t i) : bank_(&bank), i_(i) {}

  [[nodiscard]] Watts max_discharge_power(Seconds dt) const {
    return bank_->max_discharge_power(i_, dt);
  }
  Joules discharge(Watts p, Seconds dt) { return bank_->discharge(i_, p, dt); }
  Watts charge(Watts p, Seconds dt) { return bank_->charge(i_, p, dt); }
  [[nodiscard]] double depth_of_discharge() const {
    return bank_->depth_of_discharge(i_);
  }
  [[nodiscard]] const BatteryConfig& config() const { return bank_->config(); }

 private:
  BatteryBank* bank_;
  std::size_t i_;
};

}  // namespace gs::power
