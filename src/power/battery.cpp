#include "power/battery.hpp"

#include <algorithm>
#include <cmath>

#include "ckpt/state_io.hpp"
#include "common/assert.hpp"
#include "power/battery_math.hpp"

namespace gs::power {

Battery::Battery(BatteryConfig cfg) : cfg_(cfg) {
  GS_REQUIRE(cfg_.capacity.value() > 0.0, "battery capacity must be positive");
  GS_REQUIRE(cfg_.peukert_exponent >= 1.0, "Peukert exponent must be >= 1");
  GS_REQUIRE(cfg_.max_dod > 0.0 && cfg_.max_dod <= 1.0,
             "DoD cap must be in (0,1]");
  GS_REQUIRE(cfg_.charge_efficiency > 0.0 && cfg_.charge_efficiency <= 1.0,
             "charge efficiency must be in (0,1]");
}

// All arithmetic lives in power/battery_math.hpp, shared bit-for-bit with
// the structure-of-arrays BatteryBank; this class is the per-object view.

Amps Battery::rated_current() const {
  return Amps(battmath::rated_current(cfg_));
}

Amps Battery::effective_current(Amps i) const {
  return Amps(battmath::effective_current(cfg_, i.value()));
}

double Battery::depth_of_discharge() const {
  return used_ah_ / cfg_.capacity.value();
}

double Battery::state_of_charge() const { return 1.0 - depth_of_discharge(); }

bool Battery::exhausted() const {
  return usable_remaining().value() <= 1e-9;
}

double Battery::faded_capacity_ah() const {
  return battmath::faded_capacity_ah(cfg_, capacity_fade_);
}

AmpHours Battery::usable_remaining() const {
  return AmpHours(
      battmath::usable_remaining_ah(cfg_, used_ah_, capacity_fade_));
}

Watts Battery::max_discharge_power(Seconds dt) const {
  return Watts(battmath::max_discharge_power_w(cfg_, used_ah_, capacity_fade_,
                                               dt.value()));
}

Joules Battery::discharge(Watts p, Seconds dt) {
  return Joules(battmath::discharge_j(cfg_, used_ah_, lifetime_discharge_ah_,
                                      capacity_fade_, p.value(), dt.value()));
}

Watts Battery::charge(Watts p, Seconds dt) {
  return Watts(
      battmath::charge_w(cfg_, used_ah_, charge_derate_, p.value(),
                         dt.value()));
}

Seconds Battery::supply_time_from_full(Watts p) const {
  return Seconds(
      battmath::supply_time_from_full_s(cfg_, capacity_fade_, p.value()));
}

AmpHours Battery::delivered_capacity(Amps i) const {
  return AmpHours(battmath::delivered_capacity_ah(cfg_, i.value()));
}

double Battery::equivalent_cycles() const {
  return battmath::equivalent_cycles(cfg_, lifetime_discharge_ah_);
}

void Battery::reset_full() { used_ah_ = 0.0; }

void Battery::set_capacity_fade(double factor) {
  GS_REQUIRE(factor > 0.0 && factor <= 1.0,
             "capacity fade factor must be in (0,1]");
  capacity_fade_ = factor;
}

void Battery::set_charge_derate(double factor) {
  GS_REQUIRE(factor > 0.0 && factor <= 1.0,
             "charge derate factor must be in (0,1]");
  charge_derate_ = factor;
}

void Battery::save_state(ckpt::StateWriter& w) const {
  w.begin_section("battery", kStateVersion);
  w.f64(used_ah_);
  w.f64(lifetime_discharge_ah_);
  w.f64(capacity_fade_);
  w.f64(charge_derate_);
  w.end_section();
}

void Battery::load_state(ckpt::StateReader& r) {
  r.begin_section("battery", kStateVersion);
  used_ah_ = r.f64();
  lifetime_discharge_ah_ = r.f64();
  capacity_fade_ = r.f64();
  charge_derate_ = r.f64();
  r.end_section();
}

}  // namespace gs::power
