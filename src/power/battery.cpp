#include "power/battery.hpp"

#include <algorithm>
#include <cmath>

#include "ckpt/state_io.hpp"
#include "common/assert.hpp"

namespace gs::power {

Battery::Battery(BatteryConfig cfg) : cfg_(cfg) {
  GS_REQUIRE(cfg_.capacity.value() > 0.0, "battery capacity must be positive");
  GS_REQUIRE(cfg_.peukert_exponent >= 1.0, "Peukert exponent must be >= 1");
  GS_REQUIRE(cfg_.max_dod > 0.0 && cfg_.max_dod <= 1.0,
             "DoD cap must be in (0,1]");
  GS_REQUIRE(cfg_.charge_efficiency > 0.0 && cfg_.charge_efficiency <= 1.0,
             "charge efficiency must be in (0,1]");
}

Amps Battery::rated_current() const {
  return Amps(cfg_.capacity.value() / cfg_.rated_hours);
}

Amps Battery::effective_current(Amps i) const {
  if (i.value() <= 0.0) return Amps(0.0);
  const double ratio = i.value() / rated_current().value();
  // Below the rated rate Peukert gives a bonus; we conservatively clamp the
  // correction at 1 (no free capacity at trickle rates).
  const double corr =
      std::max(1.0, std::pow(ratio, cfg_.peukert_exponent - 1.0));
  return Amps(i.value() * corr);
}

double Battery::depth_of_discharge() const {
  return used_ah_ / cfg_.capacity.value();
}

double Battery::state_of_charge() const { return 1.0 - depth_of_discharge(); }

bool Battery::exhausted() const {
  return usable_remaining().value() <= 1e-9;
}

double Battery::faded_capacity_ah() const {
  return cfg_.capacity.value() * capacity_fade_;
}

AmpHours Battery::usable_remaining() const {
  const double usable = cfg_.max_dod * faded_capacity_ah() - used_ah_;
  return AmpHours(std::max(0.0, usable));
}

Watts Battery::max_discharge_power(Seconds dt) const {
  GS_REQUIRE(dt.value() > 0.0, "dt must be positive");
  const double remaining = usable_remaining().value();
  if (remaining <= 0.0) return Watts(0.0);
  // Find the real current I whose Peukert-corrected drain just empties the
  // usable capacity over dt: I_eff(I) * dt_h = remaining.
  const double dt_h = dt.value() / 3600.0;
  const double budget_eff = remaining / dt_h;  // effective amps available
  const double i_rated = rated_current().value();
  const double k = cfg_.peukert_exponent;
  // I_eff = I^k / i_rated^(k-1)  (for I >= i_rated)  =>  I = (budget *
  // i_rated^(k-1))^(1/k); below the rated rate the correction is clamped at
  // 1 so I = budget directly.
  double i = budget_eff <= i_rated
                 ? budget_eff
                 : std::pow(budget_eff * std::pow(i_rated, k - 1.0), 1.0 / k);
  i = std::min(i, cfg_.max_discharge_c_rate * faded_capacity_ah());
  return Watts(i * cfg_.nominal_voltage.value());
}

Joules Battery::discharge(Watts p, Seconds dt) {
  GS_REQUIRE(p.value() >= 0.0, "discharge power must be non-negative");
  GS_REQUIRE(dt.value() > 0.0, "dt must be positive");
  if (p.value() == 0.0) return Joules(0.0);
  GS_REQUIRE(p.value() <= max_discharge_power(dt).value() * (1.0 + 1e-6),
             "discharge exceeds the battery's sustainable power for dt");
  const Amps i = p / cfg_.nominal_voltage;
  const Amps i_eff = effective_current(i);
  const double drained_ah = i_eff.value() * dt.value() / 3600.0;
  used_ah_ += drained_ah;
  lifetime_discharge_ah_ += drained_ah;
  // Numerical guard: never exceed the DoD cap by accumulation error.
  used_ah_ = std::min(used_ah_, cfg_.max_dod * faded_capacity_ah());
  return p * dt;
}

Watts Battery::charge(Watts p, Seconds dt) {
  GS_REQUIRE(p.value() >= 0.0, "charge power must be non-negative");
  GS_REQUIRE(dt.value() > 0.0, "dt must be positive");
  if (p.value() == 0.0 || used_ah_ <= 0.0) return Watts(0.0);
  const double offered = std::min(p.value(), cfg_.max_charge_power.value());
  const double ah_in = offered * cfg_.charge_efficiency * charge_derate_ *
                       dt.value() / 3600.0 / cfg_.nominal_voltage.value();
  const double accepted_ah = std::min(ah_in, used_ah_);
  used_ah_ -= accepted_ah;
  // Report the wall power that produced the accepted charge.
  const double accepted_w = accepted_ah / ah_in * offered;
  return Watts(accepted_w);
}

Seconds Battery::supply_time_from_full(Watts p) const {
  GS_REQUIRE(p.value() > 0.0, "supply time needs positive power");
  const Amps i = p / cfg_.nominal_voltage;
  const Amps i_eff = effective_current(i);
  const double usable = cfg_.max_dod * faded_capacity_ah();
  return Seconds(usable / i_eff.value() * 3600.0);
}

AmpHours Battery::delivered_capacity(Amps i) const {
  GS_REQUIRE(i.value() > 0.0, "delivered_capacity needs positive current");
  // Peukert: t = H * (C / (I*H))^k, delivered = I * t. Full drain (DoD=1).
  const double h = cfg_.rated_hours;
  const double c = cfg_.capacity.value();
  const double t = h * std::pow(c / (i.value() * h), cfg_.peukert_exponent);
  return AmpHours(i.value() * t);
}

double Battery::equivalent_cycles() const {
  return lifetime_discharge_ah_ / (cfg_.max_dod * cfg_.capacity.value());
}

void Battery::reset_full() { used_ah_ = 0.0; }

void Battery::set_capacity_fade(double factor) {
  GS_REQUIRE(factor > 0.0 && factor <= 1.0,
             "capacity fade factor must be in (0,1]");
  capacity_fade_ = factor;
}

void Battery::set_charge_derate(double factor) {
  GS_REQUIRE(factor > 0.0 && factor <= 1.0,
             "charge derate factor must be in (0,1]");
  charge_derate_ = factor;
}

void Battery::save_state(ckpt::StateWriter& w) const {
  w.begin_section("battery", kStateVersion);
  w.f64(used_ah_);
  w.f64(lifetime_discharge_ah_);
  w.f64(capacity_fade_);
  w.f64(charge_derate_);
  w.end_section();
}

void Battery::load_state(ckpt::StateReader& r) {
  r.begin_section("battery", kStateVersion);
  used_ah_ = r.f64();
  lifetime_discharge_ah_ = r.f64();
  capacity_fade_ = r.f64();
  charge_derate_ = r.f64();
  r.end_section();
}

}  // namespace gs::power
