// Grid feed with a provisioned power budget and an overloadable circuit
// breaker. The paper's data center is power-constrained: the grid budget
// covers all 10 servers in Normal mode only (1000 W for the prototype);
// sprinting beyond it must come from the green bus or the battery, with
// deliberate short CB overload as the "last resort" (Section III-A Case 3).
#pragma once

#include <cstdint>

#include "ckpt/fwd.hpp"
#include "common/units.hpp"

namespace gs::power {

struct GridConfig {
  Watts budget{1000.0};
  /// Breakers tolerate a bounded overload for a bounded time before
  /// tripping (thermal trip curve approximated by a single point).
  double overload_factor = 1.25;
  Seconds max_overload_time{120.0};
};

class Grid {
 public:
  explicit Grid(GridConfig cfg);

  /// Request `p` for dt. Returns the power actually granted: up to the
  /// budget normally; up to budget*overload_factor while the overload
  /// timer lasts; 0 if the breaker has tripped.
  Watts draw(Watts p, Seconds dt);

  [[nodiscard]] bool tripped() const { return tripped_; }
  [[nodiscard]] Joules energy_drawn() const { return energy_; }
  [[nodiscard]] Seconds overload_time_used() const { return overload_time_; }
  [[nodiscard]] const GridConfig& config() const { return cfg_; }

  /// Manual reset after a trip (maintenance action).
  void reset_breaker();

  // --- Fault hooks (src/faults) -------------------------------------------

  /// Brownout: scale the effective budget (and with it the overload
  /// ceiling) by `factor` in [0, 1]. 1.0 restores the rated feed.
  void set_budget_derate(double factor);
  [[nodiscard]] double budget_derate() const { return budget_derate_; }
  /// Budget currently in force (rated budget x brownout derate).
  [[nodiscard]] Watts effective_budget() const {
    return cfg_.budget * budget_derate_;
  }

  // --- Checkpoint/restore (src/ckpt) --------------------------------------
  static constexpr std::uint32_t kStateVersion = 1;
  void save_state(ckpt::StateWriter& w) const;
  void load_state(ckpt::StateReader& r);

 private:
  GridConfig cfg_;
  Joules energy_{0.0};
  Seconds overload_time_{0.0};
  bool tripped_ = false;
  double budget_derate_ = 1.0;
};

}  // namespace gs::power
