#include "power/battery_bank.hpp"

#include "ckpt/state_io.hpp"
#include "common/assert.hpp"

namespace gs::power {

BatteryBank::BatteryBank(BatteryConfig cfg, std::size_t n)
    : cfg_(cfg),
      used_ah_(n, 0.0),
      lifetime_ah_(n, 0.0),
      fade_(n, 1.0),
      derate_(n, 1.0) {
  GS_REQUIRE(cfg_.capacity.value() > 0.0, "battery capacity must be positive");
  GS_REQUIRE(cfg_.peukert_exponent >= 1.0, "Peukert exponent must be >= 1");
  GS_REQUIRE(cfg_.max_dod > 0.0 && cfg_.max_dod <= 1.0,
             "DoD cap must be in (0,1]");
  GS_REQUIRE(cfg_.charge_efficiency > 0.0 && cfg_.charge_efficiency <= 1.0,
             "charge efficiency must be in (0,1]");
}

void BatteryBank::set_capacity_fade_all(double factor) {
  GS_REQUIRE(factor > 0.0 && factor <= 1.0,
             "capacity fade factor must be in (0,1]");
  for (double& f : fade_) f = factor;
}

void BatteryBank::set_charge_derate_all(double factor) {
  GS_REQUIRE(factor > 0.0 && factor <= 1.0,
             "charge derate factor must be in (0,1]");
  for (double& d : derate_) d = factor;
}

double BatteryBank::total_soc() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < used_ah_.size(); ++i) {
    sum += state_of_charge(i);
  }
  return sum;
}

double BatteryBank::total_equivalent_cycles() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < lifetime_ah_.size(); ++i) {
    sum += equivalent_cycles(i);
  }
  return sum;
}

void BatteryBank::save_state_element(ckpt::StateWriter& w,
                                     std::size_t i) const {
  w.begin_section("battery", Battery::kStateVersion);
  w.f64(used_ah_[i]);
  w.f64(lifetime_ah_[i]);
  w.f64(fade_[i]);
  w.f64(derate_[i]);
  w.end_section();
}

void BatteryBank::load_state_element(ckpt::StateReader& r, std::size_t i) {
  r.begin_section("battery", Battery::kStateVersion);
  used_ah_[i] = r.f64();
  lifetime_ah_[i] = r.f64();
  fade_[i] = r.f64();
  derate_[i] = r.f64();
  r.end_section();
}

}  // namespace gs::power
