// Power Source Selector (paper Section III-A, Figure 4).
//
// Each scheduling epoch the PSS settles the green server group's demand
// against the three sources, in the paper's priority order:
//
//   Case 1  renewable power alone covers the demand; surplus charges the
//           battery (T1-T2 in Fig. 4),
//   Case 2  renewable is insufficient; the battery discharges to cover the
//           shortfall (T2-T3),
//   Case 3  renewable unavailable; the battery sustains sprinting alone
//           and, once the burst completes, the battery is recharged from
//           the grid (T3-T4).
//
// A bounded grid fallback covers green servers running at Normal mode when
// both green sources are dead (the paper's REOnly/min case, "all servers
// return to the Normal mode powered by the grid utility"). If demand still
// cannot be met the settlement reports a deficit and the PMK must lower the
// sprint intensity.
#pragma once

#include <cstdint>

#include "ckpt/fwd.hpp"
#include "common/units.hpp"
#include "power/battery.hpp"
#include "power/battery_bank.hpp"
#include "power/grid.hpp"

namespace gs::power {

enum class PowerCase {
  Idle,              ///< No demand this epoch.
  RenewableOnly,     ///< Case 1: RE covers everything.
  RenewableBattery,  ///< Case 2: RE + battery.
  BatteryOnly,       ///< Case 3: battery alone.
  GridFallback,      ///< Grid backs the green servers (Normal mode).
};

[[nodiscard]] const char* to_string(PowerCase c);

struct PssSettlement {
  PowerCase power_case = PowerCase::Idle;
  Watts demand{0.0};
  Watts re_available{0.0};
  Watts re_used{0.0};
  Watts batt_used{0.0};
  Watts grid_used{0.0};
  Watts re_to_battery{0.0};
  Watts grid_to_battery{0.0};
  /// Demand the sources could not cover; > 0 forces a PMK downgrade.
  Watts shortfall{0.0};
  [[nodiscard]] bool deficit() const { return shortfall.value() > 1e-6; }
};

struct PssConfig {
  /// Charge the battery from the grid when not bursting (Case 3 tail).
  bool grid_charging = true;
};

/// Fault state applied to one settlement (src/faults). The default is
/// healthy and leaves the settlement arithmetic untouched.
struct PssFaultState {
  /// Stuck source selector: the battery path is unreachable — no
  /// discharge, no charging — for the epoch.
  bool battery_offline = false;
  /// Fraction of the epoch lost to source switching; the green sources
  /// deliver only the remaining fraction of their power over the epoch.
  double switch_latency_fraction = 0.0;
};

class PowerSourceSelector {
 public:
  explicit PowerSourceSelector(PssConfig cfg = {}) : cfg_(cfg) {}

  /// Settle one epoch: mutates the battery (discharge/charge) and draws
  /// from the grid. `bursting` gates grid charging per the paper (charge
  /// from grid only in anticipation of future sprints, after the burst).
  /// `grid_fallback_cap` is the grid power available to the green group
  /// this epoch — n_green * normal-mode power when the servers run at
  /// Normal mode, ~0 while they sprint on the dedicated green bus.
  PssSettlement settle(Watts demand, Watts re_supply, Battery& battery,
                       Grid& grid, Seconds dt, bool bursting,
                       Watts grid_fallback_cap = Watts(0.0),
                       const PssFaultState& fault = {}) const;

  /// Settle against one element of a structure-of-arrays BatteryBank. The
  /// body is one shared template over the battery representation, so this
  /// overload is bit-identical to the scalar one by construction.
  PssSettlement settle(Watts demand, Watts re_supply, BatteryRef battery,
                       Grid& grid, Seconds dt, bool bursting,
                       Watts grid_fallback_cap = Watts(0.0),
                       const PssFaultState& fault = {}) const;

  /// Power the strategies may plan against for the next epoch: predicted
  /// renewable + sustainable battery power (green bus only; the grid
  /// backstop applies only to Normal-mode fallback).
  [[nodiscard]] static Watts plannable_supply(Watts re_predicted,
                                              const Battery& battery,
                                              Seconds dt);

  [[nodiscard]] const PssConfig& config() const { return cfg_; }

  // --- Checkpoint/restore (src/ckpt) --------------------------------------
  // The PSS carries no dynamic state (settle() is const); the snapshot
  // records the configuration so a resume against a PSS wired differently
  // fails loudly instead of settling epochs with different arithmetic.
  static constexpr std::uint32_t kStateVersion = 1;
  void save_state(ckpt::StateWriter& w) const;
  void load_state(ckpt::StateReader& r);

 private:
  PssConfig cfg_;
};

}  // namespace gs::power
