#include "power/solar_array.hpp"

#include "common/assert.hpp"

namespace gs::power {

SolarArray::SolarArray(SolarArrayConfig cfg) : cfg_(cfg) {
  GS_REQUIRE(cfg_.panels >= 0, "panel count must be non-negative");
  GS_REQUIRE(cfg_.panel_dc_peak.value() > 0.0, "panel peak must be positive");
  GS_REQUIRE(cfg_.ac_derate > 0.0 && cfg_.ac_derate <= 1.0,
             "derate must be in (0,1]");
}

Watts SolarArray::ac_output(double fraction) const {
  GS_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
             "production fraction must be in [0,1]");
  return Watts(double(cfg_.panels) * cfg_.panel_dc_peak.value() *
               cfg_.ac_derate * fraction);
}

Watts SolarArray::peak_ac() const { return ac_output(1.0); }

}  // namespace gs::power
