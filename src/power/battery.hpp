// Server-level VRLA lead-acid battery model (paper Section II, "Battery").
//
// Two effects dominate sprint-scale battery behaviour and both are modeled:
//
//  * Peukert's law (exponent 1.15 for lead-acid): delivered capacity drops
//    at high discharge currents. We use the standard effective-current
//    formulation I_eff = I * (I / I_rated)^(k-1), where I_rated = C / H at
//    the rated H-hour (20 h) discharge rate. The paper's own calibration
//    point — a 24 Ah battery delivering only ~12 Ah at a 12-minute rate —
//    is a unit test.
//  * Depth-of-discharge cap: discharging stops at DoD = 40% to preserve the
//    ~1300-cycle lifetime; the model counts equivalent cycles for the TCO
//    analysis (Fig. 11).
#pragma once

#include <cstdint>

#include "ckpt/fwd.hpp"
#include "common/units.hpp"

namespace gs::power {

struct BatteryConfig {
  AmpHours capacity{10.0};      ///< Rated capacity at the H-hour rate.
  Volts nominal_voltage{12.0};
  double peukert_exponent = 1.15;
  double rated_hours = 20.0;    ///< H of the rated capacity.
  double max_dod = 0.40;        ///< Discharge stops at this depth.
  double charge_efficiency = 0.90;
  Watts max_charge_power{60.0};
  /// Discharge current ceiling as a multiple of capacity (C-rate). VRLA
  /// units tolerate high pulse rates; 20C comfortably covers full-sprint
  /// draw and the binding constraint remains Peukert energy.
  double max_discharge_c_rate = 20.0;
};

class Battery {
 public:
  explicit Battery(BatteryConfig cfg);

  /// Fraction of rated capacity consumed so far (0 = full).
  [[nodiscard]] double depth_of_discharge() const;
  /// State of charge (1 = full).
  [[nodiscard]] double state_of_charge() const;
  [[nodiscard]] bool exhausted() const;  ///< DoD cap reached.

  /// Effective Ah still usable before the DoD cap.
  [[nodiscard]] AmpHours usable_remaining() const;

  /// Greatest constant power the battery can deliver for the whole of dt
  /// without crossing the DoD cap or the current ceiling (Peukert-aware).
  [[nodiscard]] Watts max_discharge_power(Seconds dt) const;

  /// Draw `p` for dt. p must not exceed max_discharge_power(dt) (contract).
  /// Returns the energy delivered.
  Joules discharge(Watts p, Seconds dt);

  /// Offer `p` of charging power for dt; returns the power actually
  /// accepted (limited by the charge-rate cap and remaining headroom).
  Watts charge(Watts p, Seconds dt);

  /// Peukert supply time from *full* at constant power draw `p` (ignores
  /// current state; the classic datasheet curve).
  [[nodiscard]] Seconds supply_time_from_full(Watts p) const;

  /// Capacity actually delivered when fully drained at constant current I
  /// (the paper's 24 Ah -> 12 Ah illustration).
  [[nodiscard]] AmpHours delivered_capacity(Amps i) const;

  /// Cumulative equivalent full DoD-cycles (for lifetime / TCO accounting).
  [[nodiscard]] double equivalent_cycles() const;

  [[nodiscard]] const BatteryConfig& config() const { return cfg_; }

  /// Refill to full instantly (test / scenario setup helper).
  void reset_full();

  // --- Fault hooks (src/faults) -------------------------------------------
  // Capacity fade shrinks the *usable* window (the DoD cap applies to the
  // faded capacity) so depth_of_discharge stays a fraction of the rated
  // capacity and the 40% lifetime cap remains a hard invariant even while
  // faulted. Both factors are 1.0 in healthy operation, where every
  // computation reduces exactly to the unfaulted formulas.

  /// Set the usable-capacity multiplier in (0, 1].
  void set_capacity_fade(double factor);
  [[nodiscard]] double capacity_fade() const { return capacity_fade_; }

  /// Set the charge-efficiency multiplier in (0, 1].
  void set_charge_derate(double factor);
  [[nodiscard]] double charge_derate() const { return charge_derate_; }

  // --- Checkpoint/restore (src/ckpt) --------------------------------------
  static constexpr std::uint32_t kStateVersion = 1;
  void save_state(ckpt::StateWriter& w) const;
  void load_state(ckpt::StateReader& r);

 private:
  /// Effective (Peukert-corrected) current for a real current draw.
  [[nodiscard]] Amps effective_current(Amps i) const;
  [[nodiscard]] Amps rated_current() const;
  /// Rated capacity times the current fade factor.
  [[nodiscard]] double faded_capacity_ah() const;

  BatteryConfig cfg_;
  double used_ah_ = 0.0;             ///< Effective Ah consumed since full.
  double lifetime_discharge_ah_ = 0.0;
  double capacity_fade_ = 1.0;
  double charge_derate_ = 1.0;
};

}  // namespace gs::power
