#include "power/grid.hpp"

#include <algorithm>

#include "ckpt/state_io.hpp"
#include "common/assert.hpp"

namespace gs::power {

Grid::Grid(GridConfig cfg) : cfg_(cfg) {
  GS_REQUIRE(cfg_.budget.value() > 0.0, "grid budget must be positive");
  GS_REQUIRE(cfg_.overload_factor >= 1.0, "overload factor must be >= 1");
}

Watts Grid::draw(Watts p, Seconds dt) {
  GS_REQUIRE(p.value() >= 0.0, "draw must be non-negative");
  GS_REQUIRE(dt.value() > 0.0, "dt must be positive");
  if (tripped_) return Watts(0.0);
  Watts granted = p;
  const Watts budget = effective_budget();
  const Watts cap = budget * cfg_.overload_factor;
  granted = std::min(granted, cap);
  if (granted > budget) {
    overload_time_ += dt;
    if (overload_time_ > cfg_.max_overload_time) {
      tripped_ = true;
      return Watts(0.0);
    }
  }
  energy_ += granted * dt;
  return granted;
}

void Grid::reset_breaker() {
  tripped_ = false;
  overload_time_ = Seconds(0.0);
}

void Grid::set_budget_derate(double factor) {
  GS_REQUIRE(factor >= 0.0 && factor <= 1.0,
             "grid budget derate must be in [0,1]");
  budget_derate_ = factor;
}

void Grid::save_state(ckpt::StateWriter& w) const {
  w.begin_section("grid", kStateVersion);
  w.f64(energy_.value());
  w.f64(overload_time_.value());
  w.boolean(tripped_);
  w.f64(budget_derate_);
  w.end_section();
}

void Grid::load_state(ckpt::StateReader& r) {
  r.begin_section("grid", kStateVersion);
  energy_ = Joules(r.f64());
  overload_time_ = Seconds(r.f64());
  tripped_ = r.boolean();
  budget_derate_ = r.f64();
  r.end_section();
}

}  // namespace gs::power
