#include "power/pss.hpp"

#include <algorithm>

#include "ckpt/state_io.hpp"
#include "common/assert.hpp"

namespace gs::power {

const char* to_string(PowerCase c) {
  switch (c) {
    case PowerCase::Idle:
      return "Idle";
    case PowerCase::RenewableOnly:
      return "RenewableOnly";
    case PowerCase::RenewableBattery:
      return "RenewableBattery";
    case PowerCase::BatteryOnly:
      return "BatteryOnly";
    case PowerCase::GridFallback:
      return "GridFallback";
  }
  return "?";
}

namespace {

// One settlement body for both battery representations (scalar Battery and
// BatteryBank element): the instantiations run the same statements in the
// same order, so the representations cannot drift apart numerically.
template <typename BatteryLike>
PssSettlement settle_impl(const PssConfig& cfg, Watts demand, Watts re_supply,
                          BatteryLike& battery, Grid& grid, Seconds dt,
                          bool bursting, Watts grid_fallback_cap,
                          const PssFaultState& fault) {
  GS_REQUIRE(demand.value() >= 0.0, "demand must be non-negative");
  GS_REQUIRE(re_supply.value() >= 0.0, "RE supply must be non-negative");
  GS_REQUIRE(fault.switch_latency_fraction >= 0.0 &&
                 fault.switch_latency_fraction < 1.0,
             "PSS switch latency fraction must be in [0,1)");

  PssSettlement s;
  s.demand = demand;
  s.re_available = re_supply;

  // Switch latency burns a slice of the epoch before the green sources
  // engage: their deliverable epoch-average power shrinks accordingly.
  const Watts re_deliverable =
      fault.switch_latency_fraction > 0.0
          ? re_supply * (1.0 - fault.switch_latency_fraction)
          : re_supply;

  // 1) Renewable first (Case 1).
  s.re_used = std::min(demand, re_deliverable);
  Watts residual = demand - s.re_used;

  // 2) Battery covers the shortfall (Cases 2/3), limited by what it can
  //    sustain for the whole epoch. A stuck source selector can cut the
  //    battery path entirely.
  Watts batt_capable =
      fault.battery_offline ? Watts(0.0) : battery.max_discharge_power(dt);
  if (fault.switch_latency_fraction > 0.0) {
    batt_capable = batt_capable * (1.0 - fault.switch_latency_fraction);
  }
  s.batt_used = std::min(residual, batt_capable);
  residual -= s.batt_used;

  // 3) Grid backstop for the green group (bounded; normally sized to keep
  //    the green servers at Normal mode only).
  if (residual.value() > 1e-9 && grid_fallback_cap.value() > 0.0) {
    const Watts want = std::min(residual, grid_fallback_cap);
    s.grid_used = grid.draw(want, dt);
    residual -= s.grid_used;
  }
  s.shortfall = std::max(residual, Watts(0.0));

  // Execute the battery discharge decided above.
  if (s.batt_used.value() > 0.0) {
    battery.discharge(s.batt_used, dt);
  }

  // 4) Charging. Surplus renewable charges the battery whenever present
  //    (Case 1 tail); the grid recharges it only outside bursts (Case 3).
  //    A stuck selector blocks the charge path along with discharge.
  const Watts surplus_re = re_deliverable - s.re_used;
  if (surplus_re.value() > 1e-9 && !fault.battery_offline) {
    s.re_to_battery = battery.charge(surplus_re, dt);
  }
  if (!bursting && cfg.grid_charging && !fault.battery_offline &&
      battery.depth_of_discharge() > 1e-9) {
    const Watts offer = battery.config().max_charge_power;
    const Watts granted = grid.draw(offer, dt);
    if (granted.value() > 0.0) {
      s.grid_to_battery = battery.charge(granted, dt);
    }
  }

  // Classify the epoch.
  const bool re = s.re_used.value() > 1e-9;
  const bool bat = s.batt_used.value() > 1e-9;
  const bool gr = s.grid_used.value() > 1e-9;
  if (demand.value() <= 1e-9) {
    s.power_case = PowerCase::Idle;
  } else if (gr) {
    s.power_case = PowerCase::GridFallback;
  } else if (re && bat) {
    s.power_case = PowerCase::RenewableBattery;
  } else if (re) {
    s.power_case = PowerCase::RenewableOnly;
  } else if (bat) {
    s.power_case = PowerCase::BatteryOnly;
  } else {
    s.power_case = PowerCase::GridFallback;  // all-shortfall epoch
  }
  return s;
}

}  // namespace

PssSettlement PowerSourceSelector::settle(Watts demand, Watts re_supply,
                                          Battery& battery, Grid& grid,
                                          Seconds dt, bool bursting,
                                          Watts grid_fallback_cap,
                                          const PssFaultState& fault) const {
  return settle_impl(cfg_, demand, re_supply, battery, grid, dt, bursting,
                     grid_fallback_cap, fault);
}

PssSettlement PowerSourceSelector::settle(Watts demand, Watts re_supply,
                                          BatteryRef battery, Grid& grid,
                                          Seconds dt, bool bursting,
                                          Watts grid_fallback_cap,
                                          const PssFaultState& fault) const {
  return settle_impl(cfg_, demand, re_supply, battery, grid, dt, bursting,
                     grid_fallback_cap, fault);
}

Watts PowerSourceSelector::plannable_supply(Watts re_predicted,
                                            const Battery& battery,
                                            Seconds dt) {
  return re_predicted + battery.max_discharge_power(dt);
}

void PowerSourceSelector::save_state(ckpt::StateWriter& w) const {
  w.begin_section("pss", kStateVersion);
  w.boolean(cfg_.grid_charging);
  w.end_section();
}

void PowerSourceSelector::load_state(ckpt::StateReader& r) {
  r.begin_section("pss", kStateVersion);
  const bool grid_charging = r.boolean();
  r.end_section();
  if (grid_charging != cfg_.grid_charging) {
    throw ckpt::SnapshotError(
        "pss configuration mismatch: snapshot grid_charging differs from "
        "the configured selector");
  }
}

}  // namespace gs::power
