// Forward declarations for the checkpoint subsystem, so component headers
// can declare save_state/load_state without pulling in the full state-io
// machinery (and without creating include cycles back into src/ckpt).
#pragma once

namespace gs::ckpt {
class StateWriter;
class StateReader;
}  // namespace gs::ckpt
