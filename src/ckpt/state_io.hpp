// Binary state serialization for checkpoint/restore.
//
// Components implement `save_state(StateWriter&)` / `load_state(StateReader&)`
// pairs. Each component wraps its payload in a named, versioned section
// (begin_section / end_section); the reader verifies both the section name
// and the schema version, and that the component consumed exactly the bytes
// the writer produced, so a stale or corrupt snapshot fails with a clean
// SnapshotError instead of silently mis-reading downstream state.
//
// Encoding is fixed-width little-endian (the only byte order the supported
// targets use); doubles are bit-cast to u64 so round-trips are bit-exact,
// which the resume-integrity guarantee (byte-identical exports after
// kill + resume) depends on.
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gs::ckpt {

/// Thrown on any malformed, truncated, or version-mismatched snapshot.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Append-only binary encoder producing a snapshot payload.
class StateWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(char(v)); }
  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  void i64(std::int64_t v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(std::string_view s);

  /// Open a named, versioned section. Sections nest; every begin must be
  /// matched by an end_section() after the payload is written.
  void begin_section(std::string_view name, std::uint32_t schema_version);
  void end_section();

  [[nodiscard]] const std::string& buffer() const;

 private:
  void append(const void* p, std::size_t n);

  std::string buf_;
  std::vector<std::size_t> open_;  // offsets of unpatched section sizes
};

/// Decoder over a snapshot payload; every accessor throws SnapshotError on
/// truncation, and sections enforce name/version/length agreement.
class StateReader {
 public:
  explicit StateReader(std::string_view payload) : buf_(payload) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return std::bit_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean();

  std::string str();

  /// Enter a section, requiring the stored name and schema version to match
  /// exactly. Returns the stored version (== expected_version).
  std::uint32_t begin_section(std::string_view expected_name,
                              std::uint32_t expected_version);
  /// Leave the innermost section, requiring its payload to be fully
  /// consumed (a partial read means writer and reader disagree on layout).
  void end_section();

  [[nodiscard]] bool at_end() const {
    return pos_ == buf_.size() && open_.empty();
  }

 private:
  void take(void* out, std::size_t n);

  std::string_view buf_;
  std::size_t pos_ = 0;
  std::vector<std::size_t> open_;  // end offsets of open sections
};

}  // namespace gs::ckpt
