// save/load helpers for the gs common primitives (Rng, Ewma, RunningStats,
// RingBuffer). gs_common stays ckpt-free: the primitives expose raw-state
// accessors and this header, owned by gs_ckpt, does the encoding.
#pragma once

#include "ckpt/state_io.hpp"
#include "common/ewma.hpp"
#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace gs::ckpt {

inline void save_rng(StateWriter& w, const Rng& rng) {
  for (const std::uint64_t word : rng.state()) w.u64(word);
}

inline void load_rng(StateReader& r, Rng& rng) {
  std::array<std::uint64_t, 4> s{};
  for (auto& word : s) word = r.u64();
  rng.set_state(s);
}

inline void save_ewma(StateWriter& w, const Ewma& e) {
  w.f64(e.raw_value());
  w.boolean(e.primed());
}

inline void load_ewma(StateReader& r, Ewma& e) {
  const double value = r.f64();
  const bool primed = r.boolean();
  e.restore(value, primed);
}

inline void save_running_stats(StateWriter& w, const RunningStats& s) {
  w.u64(s.count());
  w.f64(s.raw_mean());
  w.f64(s.raw_m2());
  w.f64(s.raw_min());
  w.f64(s.raw_max());
}

inline void load_running_stats(StateReader& r, RunningStats& s) {
  const auto n = std::size_t(r.u64());
  const double mean = r.f64();
  const double m2 = r.f64();
  const double mn = r.f64();
  const double mx = r.f64();
  s.restore(n, mean, m2, mn, mx);
}

/// Rebuilds the logical contents (oldest to newest); the head offset inside
/// the backing store is not observable through the RingBuffer interface.
template <typename T, typename SaveItem>
void save_ring_buffer(StateWriter& w, const RingBuffer<T>& rb,
                      SaveItem&& save_item) {
  w.u64(rb.capacity());
  w.u64(rb.size());
  for (std::size_t i = 0; i < rb.size(); ++i) save_item(w, rb[i]);
}

template <typename T, typename LoadItem>
void load_ring_buffer(StateReader& r, RingBuffer<T>& rb,
                      LoadItem&& load_item) {
  const auto capacity = std::size_t(r.u64());
  const auto n = std::size_t(r.u64());
  if (capacity != rb.capacity()) {
    throw SnapshotError("ring buffer capacity mismatch: snapshot has " +
                        std::to_string(capacity) + ", component has " +
                        std::to_string(rb.capacity()));
  }
  if (n > capacity) {
    throw SnapshotError("ring buffer overfull in snapshot: " +
                        std::to_string(n) + " items, capacity " +
                        std::to_string(capacity));
  }
  rb.clear();
  for (std::size_t i = 0; i < n; ++i) {
    T item{};
    load_item(r, item);
    rb.push(item);
  }
}

}  // namespace gs::ckpt
