// Checkpoint rotation with last-known-good recovery.
//
// A RotatingSnapshot turns one snapshot *base path* into a family of
// generation files plus an atomic pointer:
//
//   gsd.gsck            (base, never written)
//   gsd.g000041.gsck    generation 41: a plain snapshot container
//   gsd.g000042.gsck    generation 42 (newest)
//   gsd.gsck.current    pointer: a tiny snapshot naming generation 42
//
// write() lands the payload in the *next* generation file first, then
// atomically swaps the pointer, then prunes generations beyond keep-K —
// so a crash (or an injected torn write) at any instant leaves at least
// one intact older generation on disk. load_last_known_good() trusts
// nothing: it scans generations newest-first and returns the newest one
// whose container validates, logging every damaged file it stepped over.
// A stale or corrupt pointer therefore costs a scan, never the campaign.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/io.hpp"

namespace gs::ckpt {

/// Version of the `ckpt_rotation` pointer-file section.
inline constexpr std::uint32_t kRotationPointerVersion = 1;

struct RotationOptions {
  /// Generations kept on disk; older ones are pruned after each write.
  std::uint32_t keep = 4;
  io::Durability durability = io::Durability::Full;
};

/// A successful last-known-good load.
struct RotatedLoad {
  std::string payload;
  std::uint64_t generation = 0;
  /// True when a generation newer than the chosen one existed but failed
  /// validation (i.e. recovery actually fell back).
  bool fell_back = false;
  /// One line per damaged artifact stepped over during the scan.
  std::vector<std::string> notes;
};

class RotatingSnapshot {
 public:
  explicit RotatingSnapshot(std::filesystem::path base,
                            RotationOptions opts = {});

  /// Write `payload` as the next generation and swap the pointer to it.
  /// Returns the generation number written.
  std::uint64_t write(std::string_view payload);

  /// Newest generation whose snapshot container validates, or nullopt
  /// when no generation survives. Never throws on damaged files.
  [[nodiscard]] std::optional<RotatedLoad> load_last_known_good() const;

  [[nodiscard]] const std::filesystem::path& base() const { return base_; }

  /// "gsd.gsck" + 41 -> "gsd.g000041.gsck" (same directory as base).
  static std::filesystem::path generation_path(
      const std::filesystem::path& base, std::uint64_t generation);

  /// "gsd.gsck" -> "gsd.gsck.current".
  static std::filesystem::path pointer_path(
      const std::filesystem::path& base);

  /// Every generation file for `base`, sorted ascending by generation.
  static std::vector<std::pair<std::uint64_t, std::filesystem::path>>
  list_generations(const std::filesystem::path& base);

  /// Generation named by the pointer file, or nullopt when the pointer
  /// is missing or fails validation (the scan is the authority anyway).
  static std::optional<std::uint64_t> read_pointer(
      const std::filesystem::path& base);

  /// True when `base` has a pointer or at least one generation file —
  /// i.e. resume should go through rotation rather than a plain file.
  static bool exists(const std::filesystem::path& base);

 private:
  std::filesystem::path base_;
  RotationOptions opts_;
};

}  // namespace gs::ckpt
