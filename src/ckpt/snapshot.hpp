// Snapshot file container: a small header (magic, container format version,
// payload size, FNV-1a checksum) around a StateWriter payload. The header
// catches the boring failure modes — wrong file, torn write, bit rot —
// before any component attempts to decode state; writes go through a
// temp-file + rename so a kill mid-write never leaves a half-written
// snapshot under the final name.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>

#include "ckpt/state_io.hpp"
#include "common/io.hpp"

namespace gs::ckpt {

/// Bumped only when the *container* layout changes; component schema
/// evolution is carried by per-section versions inside the payload.
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// FNV-1a 64-bit over the payload bytes.
std::uint64_t payload_checksum(std::string_view payload);

/// Atomically write `payload` (a StateWriter buffer) to `path`: the bytes
/// land in a temp file first and are renamed over the target, so readers
/// either see the previous snapshot or the complete new one. With
/// Durability::Full (the default) the temp file is fdatasynced before the
/// rename and the parent directory fsynced after it, so a crash just
/// after "commit" cannot surface an empty or stale file as committed.
/// Hosts the "ckpt.snapshot.write" failpoint site.
void write_snapshot_file(const std::filesystem::path& path,
                         std::string_view payload,
                         io::Durability durability = io::Durability::Full);

/// Read and validate a snapshot file; returns the payload ready for a
/// StateReader. Throws SnapshotError on missing file, bad magic, unknown
/// format version, truncation, or checksum mismatch.
std::string read_snapshot_file(const std::filesystem::path& path);

}  // namespace gs::ckpt
