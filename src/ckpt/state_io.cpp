#include "ckpt/state_io.hpp"

#include <cstring>

#include "common/assert.hpp"

namespace gs::ckpt {
namespace {

// Section payloads are length-prefixed with a fixed-width u64 so
// end_section() can patch the size in place once the payload is known.
constexpr std::size_t kSizeFieldBytes = sizeof(std::uint64_t);

// Sanity bound on string lengths; real section names and component strings
// are tiny, so anything larger is a corrupt length field.
constexpr std::uint64_t kMaxStringBytes = 1ull << 20;

}  // namespace

void StateWriter::append(const void* p, std::size_t n) {
  buf_.append(static_cast<const char*>(p), n);
}

void StateWriter::str(std::string_view s) {
  u64(s.size());
  append(s.data(), s.size());
}

void StateWriter::begin_section(std::string_view name,
                                std::uint32_t schema_version) {
  str(name);
  u32(schema_version);
  open_.push_back(buf_.size());
  u64(0);  // payload size, patched by end_section()
}

void StateWriter::end_section() {
  GS_ENSURE(!open_.empty(), "end_section without begin_section");
  const std::size_t at = open_.back();
  open_.pop_back();
  const std::uint64_t payload = buf_.size() - at - kSizeFieldBytes;
  std::memcpy(buf_.data() + at, &payload, kSizeFieldBytes);
}

const std::string& StateWriter::buffer() const {
  GS_ENSURE(open_.empty(), "buffer() with unclosed sections");
  return buf_;
}

void StateReader::take(void* out, std::size_t n) {
  // Reads are bounded by the innermost open section, so a reader that
  // disagrees with the writer's layout fails at the overrunning read
  // instead of silently consuming a sibling section's bytes.
  const std::size_t limit = open_.empty() ? buf_.size() : open_.back();
  if (limit - pos_ < n) {
    throw SnapshotError("snapshot truncated: need " + std::to_string(n) +
                        " bytes at offset " + std::to_string(pos_));
  }
  std::memcpy(out, buf_.data() + pos_, n);
  pos_ += n;
}

std::uint8_t StateReader::u8() {
  std::uint8_t v = 0;
  take(&v, sizeof v);
  return v;
}

std::uint32_t StateReader::u32() {
  std::uint32_t v = 0;
  take(&v, sizeof v);
  return v;
}

std::uint64_t StateReader::u64() {
  std::uint64_t v = 0;
  take(&v, sizeof v);
  return v;
}

bool StateReader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) {
    throw SnapshotError("snapshot corrupt: boolean byte " +
                        std::to_string(int(v)));
  }
  return v == 1;
}

std::string StateReader::str() {
  const std::uint64_t n = u64();
  if (n > kMaxStringBytes) {
    throw SnapshotError("snapshot corrupt: string length " +
                        std::to_string(n));
  }
  std::string s(std::size_t(n), '\0');
  take(s.data(), std::size_t(n));
  return s;
}

std::uint32_t StateReader::begin_section(std::string_view expected_name,
                                         std::uint32_t expected_version) {
  const std::string name = str();
  if (name != expected_name) {
    throw SnapshotError("snapshot section mismatch: expected '" +
                        std::string(expected_name) + "', found '" + name +
                        "'");
  }
  const std::uint32_t version = u32();
  if (version != expected_version) {
    throw SnapshotError("snapshot schema version mismatch in '" + name +
                        "': expected " + std::to_string(expected_version) +
                        ", found " + std::to_string(version));
  }
  const std::uint64_t payload = u64();
  if (buf_.size() - pos_ < payload) {
    throw SnapshotError("snapshot truncated: section '" + name + "' claims " +
                        std::to_string(payload) + " bytes, " +
                        std::to_string(buf_.size() - pos_) + " remain");
  }
  open_.push_back(pos_ + std::size_t(payload));
  return version;
}

void StateReader::end_section() {
  if (open_.empty()) {
    throw SnapshotError("end_section without begin_section");
  }
  const std::size_t end = open_.back();
  open_.pop_back();
  if (pos_ != end) {
    throw SnapshotError("snapshot section size mismatch: reader at offset " +
                        std::to_string(pos_) + ", section ends at " +
                        std::to_string(end));
  }
}

}  // namespace gs::ckpt
