// gs:durable-io
#include "ckpt/rotation.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "ckpt/snapshot.hpp"
#include "ckpt/state_io.hpp"
#include "common/assert.hpp"

namespace gs::ckpt {
namespace {

namespace fs = std::filesystem;

/// base "dir/gsd.gsck" -> ("dir/gsd.g", ".gsck"): the pieces around the
/// zero-padded generation number.
std::pair<std::string, std::string> name_pieces(const fs::path& base) {
  const std::string stem = base.stem().string();
  const std::string ext = base.extension().string();
  return {stem + ".g", ext};
}

std::string pad6(std::uint64_t generation) {
  std::string digits = std::to_string(generation);
  while (digits.size() < 6) digits.insert(digits.begin(), '0');
  return digits;
}

}  // namespace

RotatingSnapshot::RotatingSnapshot(fs::path base, RotationOptions opts)
    : base_(std::move(base)), opts_(opts) {
  GS_REQUIRE(opts_.keep >= 1, "checkpoint rotation must keep >= 1");
  GS_REQUIRE(!base_.filename().empty(),
             "checkpoint rotation base must name a file");
}

fs::path RotatingSnapshot::generation_path(const fs::path& base,
                                           std::uint64_t generation) {
  const auto [prefix, ext] = name_pieces(base);
  fs::path p = base.parent_path();
  p /= prefix + pad6(generation) + ext;
  return p;
}

fs::path RotatingSnapshot::pointer_path(const fs::path& base) {
  return fs::path(base.string() + ".current");
}

std::vector<std::pair<std::uint64_t, fs::path>>
RotatingSnapshot::list_generations(const fs::path& base) {
  std::vector<std::pair<std::uint64_t, fs::path>> out;
  fs::path dir = base.parent_path();
  if (dir.empty()) dir = ".";
  if (!fs::is_directory(dir)) return out;
  const auto [prefix, ext] = name_pieces(base);
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() + ext.size()) continue;
    if (name.rfind(prefix, 0) != 0) continue;
    if (name.substr(name.size() - ext.size()) != ext) continue;
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - ext.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.emplace_back(std::strtoull(digits.c_str(), nullptr, 10),
                     entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<std::uint64_t> RotatingSnapshot::read_pointer(
    const fs::path& base) {
  try {
    // StateReader views its argument; keep the payload alive beside it.
    const std::string payload = read_snapshot_file(pointer_path(base));
    StateReader r(payload);
    r.begin_section("ckpt_rotation", kRotationPointerVersion);
    const std::uint64_t generation = r.u64();
    (void)r.u32();  // keep-K at write time; informational
    r.end_section();
    return generation;
  } catch (const SnapshotError&) {
    return std::nullopt;
  }
}

bool RotatingSnapshot::exists(const fs::path& base) {
  return fs::exists(pointer_path(base)) || !list_generations(base).empty();
}

std::uint64_t RotatingSnapshot::write(std::string_view payload) {
  std::uint64_t next = 1;
  const auto generations = list_generations(base_);
  if (!generations.empty()) {
    next = std::max(next, generations.back().first + 1);
  }
  if (const auto pointed = read_pointer(base_)) {
    next = std::max(next, *pointed + 1);
  }
  write_snapshot_file(generation_path(base_, next), payload,
                      opts_.durability);

  StateWriter w;
  w.begin_section("ckpt_rotation", kRotationPointerVersion);
  w.u64(next);
  w.u32(opts_.keep);
  w.end_section();
  write_snapshot_file(pointer_path(base_), w.buffer(), opts_.durability);

  // Prune beyond keep-K. Best-effort: a surviving extra generation is
  // only disk space, and the chaos lane deliberately crashes in here.
  for (const auto& [generation, path] : generations) {
    if (generation + opts_.keep > next) continue;
    std::error_code ec;
    fs::remove(path, ec);
  }
  return next;
}

std::optional<RotatedLoad> RotatingSnapshot::load_last_known_good() const {
  auto generations = list_generations(base_);
  std::reverse(generations.begin(), generations.end());

  RotatedLoad out;
  const auto pointed = read_pointer(base_);
  if (!pointed && fs::exists(pointer_path(base_))) {
    out.notes.push_back("generation pointer " +
                        pointer_path(base_).string() +
                        " failed validation; scanning generations");
  }
  for (const auto& [generation, path] : generations) {
    try {
      out.payload = read_snapshot_file(path);
      out.generation = generation;
      if (pointed && *pointed != generation) {
        out.notes.push_back("generation pointer names " +
                            std::to_string(*pointed) +
                            " but newest intact generation is " +
                            std::to_string(generation));
      }
      return out;
    } catch (const SnapshotError& e) {
      out.fell_back = true;
      out.notes.push_back("checkpoint generation " +
                          std::to_string(generation) + " (" + path.string() +
                          ") failed validation: " + e.what());
    }
  }
  return std::nullopt;
}

}  // namespace gs::ckpt
