// gs:durable-io
#include "ckpt/snapshot.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

namespace gs::ckpt {
namespace {

/// Failpoint site hosted by every snapshot commit (manifest, cells,
/// rotation generations and pointers, daemon checkpoints).
constexpr const char* kFailpointSnapshotWrite = "ckpt.snapshot.write";

constexpr char kMagic[8] = {'G', 'S', 'C', 'K', 'P', 'T', '\r', '\n'};
constexpr std::size_t kHeaderBytes =
    sizeof(kMagic) + sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t);

}  // namespace

std::uint64_t payload_checksum(std::string_view payload) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : payload) {
    h ^= std::uint64_t(static_cast<unsigned char>(c));
    h *= 0x100000001b3ull;
  }
  return h;
}

void write_snapshot_file(const std::filesystem::path& path,
                         std::string_view payload,
                         io::Durability durability) {
  std::string blob;
  blob.reserve(kHeaderBytes + payload.size());
  blob.append(kMagic, sizeof(kMagic));
  const std::uint32_t version = kSnapshotFormatVersion;
  blob.append(reinterpret_cast<const char*>(&version), sizeof version);
  const std::uint64_t size = payload.size();
  blob.append(reinterpret_cast<const char*>(&size), sizeof size);
  const std::uint64_t checksum = payload_checksum(payload);
  blob.append(reinterpret_cast<const char*>(&checksum), sizeof checksum);
  blob.append(payload.data(), payload.size());

  // Derive the temp name from the payload checksum: concurrent writers of
  // the *same* path carry the same bytes, so even a rare collision renames
  // identical content into place.
  std::ostringstream suffix;
  suffix << ".tmp-" << std::hex << checksum;
  const std::filesystem::path tmp = path.string() + suffix.str();
  io::WriteOptions opts;
  opts.durability = durability;
  opts.site = kFailpointSnapshotWrite;
  try {
    io::atomic_write_file(path, tmp, blob, opts);
  } catch (const io::IoError& e) {
    throw SnapshotError(std::string("snapshot write to ") + path.string() +
                        " failed: " + e.what());
  }
}

std::string read_snapshot_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SnapshotError("cannot open snapshot file " + path.string());
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string blob = std::move(ss).str();

  if (blob.size() < kHeaderBytes) {
    throw SnapshotError("snapshot file too small: " + path.string());
  }
  if (std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0) {
    throw SnapshotError("bad snapshot magic in " + path.string());
  }
  std::size_t at = sizeof(kMagic);
  std::uint32_t version = 0;
  std::memcpy(&version, blob.data() + at, sizeof version);
  at += sizeof version;
  if (version != kSnapshotFormatVersion) {
    throw SnapshotError("unsupported snapshot format version " +
                        std::to_string(version) + " in " + path.string());
  }
  std::uint64_t size = 0;
  std::memcpy(&size, blob.data() + at, sizeof size);
  at += sizeof size;
  std::uint64_t checksum = 0;
  std::memcpy(&checksum, blob.data() + at, sizeof checksum);
  at += sizeof checksum;
  if (blob.size() - at != size) {
    throw SnapshotError("snapshot payload truncated in " + path.string() +
                        ": header claims " + std::to_string(size) +
                        " bytes, file holds " +
                        std::to_string(blob.size() - at));
  }
  std::string payload = blob.substr(at);
  if (payload_checksum(payload) != checksum) {
    throw SnapshotError("snapshot checksum mismatch in " + path.string());
  }
  return payload;
}

}  // namespace gs::ckpt
