// The engine's time axis. Simulation clocks are double seconds (trace
// time); the storage layer wants integers it can delta-of-delta compress
// and range-prune on. to_timestamp() is the standard order-preserving bit
// mapping of IEEE-754 doubles onto int64 (flip the magnitude bits of
// negatives): it is monotone over the full finite range and exactly
// invertible, so telemetry read back from the engine reproduces the
// original double bit-for-bit — the property the byte-identical CSV export
// guarantee rests on. For the uniform epoch grids the simulators emit,
// consecutive keys inside one binade differ by a constant, so the
// delta-of-delta codec still collapses them to single-bit tokens.
#pragma once

#include <bit>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "common/units.hpp"
#include "tsdb/fwd.hpp"

namespace gs::tsdb {

inline constexpr Timestamp kMinTimestamp =
    std::numeric_limits<Timestamp>::min();
inline constexpr Timestamp kMaxTimestamp =
    std::numeric_limits<Timestamp>::max();

/// Order-preserving, exactly invertible key for a finite double time.
[[nodiscard]] inline Timestamp to_timestamp(double seconds) {
  GS_REQUIRE(std::isfinite(seconds), "tsdb timestamps must be finite");
  const auto b = std::bit_cast<Timestamp>(seconds);
  return b < 0 ? b ^ std::numeric_limits<Timestamp>::max() : b;
}

[[nodiscard]] inline Timestamp to_timestamp(Seconds t) {
  return to_timestamp(t.value());
}

/// Exact inverse of to_timestamp (the mapping is an involution on the
/// flipped half).
[[nodiscard]] inline double to_seconds(Timestamp t) {
  return std::bit_cast<double>(
      t < 0 ? t ^ std::numeric_limits<Timestamp>::max() : t);
}

}  // namespace gs::tsdb
