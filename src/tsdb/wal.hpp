// Write-ahead log for Strategy::WAL: every append lands in an append-only
// segment file before it is acknowledged, so a killed campaign recovers
// its telemetry by replay. Segments are never modified after rotation; a
// new writer always opens a fresh segment past the highest existing one,
// so a torn tail from a SIGKILL can only live in the last segment, where
// replay tolerates it (the complete-record prefix is recovered, exactly
// like the ckpt snapshot discipline of atomic-or-absent).
//
// Segment layout (version kWalFormatVersion — gs-lint's tsdb-chunk-version
// rule pins this file to the constant):
//   8-byte magic, u32 format version, then records of
//   u32 series_id | u64 timestamp key | u64 value bits | u32 checksum
// where the checksum is the folded FNV-1a of the record's 20 body bytes.
// Replay throws TsdbError on a bad header or a corrupt mid-file record;
// only an incomplete final record is treated as a clean kill.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/io.hpp"
#include "tsdb/fwd.hpp"

namespace gs::tsdb {

inline constexpr std::uint32_t kWalFormatVersion = 1;

/// One logged append, in arrival order.
struct WalRecord {
  std::uint32_t series = 0;   ///< Engine SeriesId at append time.
  Timestamp time = 0;
  std::uint64_t value_bits = 0;

  friend bool operator==(const WalRecord&, const WalRecord&) = default;
};

class WalWriter {
 public:
  /// Opens a fresh segment in `dir` (created if missing), numbered past
  /// any existing segment. `segment_bytes` bounds a segment before
  /// rotation.
  WalWriter(std::filesystem::path dir, std::uint64_t segment_bytes);

  void append(const WalRecord& rec);
  /// Push buffered records to the OS and fdatasync the segment, so an
  /// acknowledged flush survives power loss, not just a process kill.
  void flush();

  [[nodiscard]] std::uint64_t records() const { return records_; }
  [[nodiscard]] std::uint64_t segments() const { return segments_opened_; }

 private:
  void open_segment();

  std::filesystem::path dir_;
  std::uint64_t segment_bytes_;
  io::AppendFile out_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t current_bytes_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t segments_opened_ = 0;
};

/// WAL segment files in `dir`, in replay (sequence) order.
[[nodiscard]] std::vector<std::filesystem::path> wal_segments(
    const std::filesystem::path& dir);

/// Replay every record across all segments, in append order. A truncated
/// final record (kill mid-append) ends the replay cleanly; anything else
/// malformed throws TsdbError.
///
/// With `repair_torn_tail`, a torn tail in the *final* segment is also
/// healed on disk: the segment is truncated back to its complete-record
/// prefix (or removed outright when even the header is torn). Without
/// the repair, the next writer opens a fresh segment and the torn one is
/// no longer final — so the replay after the *next* kill would refuse a
/// tear it survived this time. Writers must replay with repair on.
[[nodiscard]] std::vector<WalRecord> replay_wal(
    const std::filesystem::path& dir, bool repair_torn_tail = false);

/// Verdict on one segment file, for gs_fsck and the repair path.
struct WalSegmentCheck {
  enum class Verdict {
    Ok,        ///< Header and every record validate.
    TornTail,  ///< Complete-record prefix + a torn tail (or torn header).
               ///< Survivable only while this is the final segment.
    Corrupt,   ///< Bad magic/version or a mid-file checksum mismatch.
  };
  Verdict verdict = Verdict::Ok;
  std::uint64_t records = 0;  ///< Complete records in the valid prefix.
  std::string detail;         ///< Human-readable reason for non-Ok.
};

/// Validate one segment without touching it.
[[nodiscard]] WalSegmentCheck check_wal_segment(
    const std::filesystem::path& segment);

}  // namespace gs::tsdb
