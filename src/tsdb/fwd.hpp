// Forward declarations for the telemetry engine, so sim/ headers can carry
// an optional tsdb hook without pulling the storage machinery into every
// translation unit (mirrors ckpt/fwd.hpp).
#pragma once

#include <cstdint>

namespace gs::tsdb {

class Engine;

/// Dense handle for one (metric, rack, server) series inside an Engine.
using SeriesId = std::uint32_t;

/// Engine time axis: a total-order integer mapping of the simulation's
/// double-seconds clock (see time.hpp). Chunk indexes and range queries
/// prune on this key; to_seconds() restores the exact double.
using Timestamp = std::int64_t;

}  // namespace gs::tsdb
