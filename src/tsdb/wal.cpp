#include "tsdb/wal.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <sstream>

#include "ckpt/snapshot.hpp"
#include "common/assert.hpp"
#include "tsdb/error.hpp"

namespace gs::tsdb {
namespace {

constexpr char kWalMagic[8] = {'G', 'S', 'W', 'A', 'L', 'O', 'G', '\n'};
constexpr std::size_t kWalHeaderBytes =
    sizeof(kWalMagic) + sizeof(std::uint32_t);
constexpr std::size_t kRecordBodyBytes =
    sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t);
constexpr std::size_t kRecordBytes = kRecordBodyBytes + sizeof(std::uint32_t);

std::uint32_t record_checksum(const char* body) {
  const std::uint64_t h =
      ckpt::payload_checksum(std::string_view(body, kRecordBodyBytes));
  return std::uint32_t(h) ^ std::uint32_t(h >> 32);
}

void encode_record(const WalRecord& rec, char out[kRecordBytes]) {
  std::size_t at = 0;
  std::memcpy(out + at, &rec.series, sizeof rec.series);
  at += sizeof rec.series;
  const auto time = std::uint64_t(rec.time);
  std::memcpy(out + at, &time, sizeof time);
  at += sizeof time;
  std::memcpy(out + at, &rec.value_bits, sizeof rec.value_bits);
  at += sizeof rec.value_bits;
  const std::uint32_t check = record_checksum(out);
  std::memcpy(out + at, &check, sizeof check);
}

std::filesystem::path segment_path(const std::filesystem::path& dir,
                                   std::uint64_t seq) {
  std::ostringstream name;
  name << "wal-";
  name.width(6);
  name.fill('0');
  name << seq << ".gswal";
  return dir / name.str();
}

/// Sequence number from a segment filename, or nullopt for other files.
std::optional<std::uint64_t> segment_seq(const std::filesystem::path& p) {
  const std::string name = p.filename().string();
  if (name.size() < 11 || name.rfind("wal-", 0) != 0 ||
      name.substr(name.size() - 6) != ".gswal") {
    return std::nullopt;
  }
  const std::string digits = name.substr(4, name.size() - 10);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  return std::strtoull(digits.c_str(), nullptr, 10);
}

}  // namespace

WalWriter::WalWriter(std::filesystem::path dir, std::uint64_t segment_bytes)
    : dir_(std::move(dir)), segment_bytes_(segment_bytes) {
  GS_REQUIRE(segment_bytes_ >= kWalHeaderBytes + kRecordBytes,
             "wal segment size too small for one record");
  std::filesystem::create_directories(dir_);
  // Never append to an existing segment: its tail may be torn from a
  // previous kill. Start numbering past whatever is already there.
  for (const auto& seg : wal_segments(dir_)) {
    if (const auto seq = segment_seq(seg)) {
      next_seq_ = std::max(next_seq_, *seq + 1);
    }
  }
  open_segment();
}

void WalWriter::open_segment() {
  const std::filesystem::path path = segment_path(dir_, next_seq_++);
  out_ = std::ofstream(path, std::ios::binary | std::ios::trunc);
  if (!out_) {
    throw TsdbError("cannot open wal segment " + path.string());
  }
  out_.write(kWalMagic, sizeof(kWalMagic));
  const std::uint32_t version = kWalFormatVersion;
  out_.write(reinterpret_cast<const char*>(&version), sizeof version);
  if (!out_) {
    throw TsdbError("short write to wal segment " + path.string());
  }
  current_bytes_ = kWalHeaderBytes;
  ++segments_opened_;
}

void WalWriter::append(const WalRecord& rec) {
  if (current_bytes_ + kRecordBytes > segment_bytes_) open_segment();
  char buf[kRecordBytes];
  encode_record(rec, buf);
  out_.write(buf, sizeof buf);
  if (!out_) {
    throw TsdbError("short write to wal segment in " + dir_.string());
  }
  current_bytes_ += kRecordBytes;
  ++records_;
}

void WalWriter::flush() {
  out_.flush();
  if (!out_) {
    throw TsdbError("cannot flush wal segment in " + dir_.string());
  }
}

std::vector<std::filesystem::path> wal_segments(
    const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> out;
  if (!std::filesystem::is_directory(dir)) return out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && segment_seq(entry.path())) {
      out.push_back(entry.path());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const std::filesystem::path& a, const std::filesystem::path& b) {
              return *segment_seq(a) < *segment_seq(b);
            });
  return out;
}

std::vector<WalRecord> replay_wal(const std::filesystem::path& dir) {
  std::vector<WalRecord> out;
  const auto segments = wal_segments(dir);
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const std::filesystem::path& seg = segments[i];
    std::ifstream in(seg, std::ios::binary);
    if (!in) {
      throw TsdbError("cannot open wal segment " + seg.string());
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string blob = std::move(ss).str();
    if (blob.size() < kWalHeaderBytes) {
      // A kill between segment creation and the header write leaves a
      // short (possibly empty) header. Like a torn record, that is only
      // survivable in the final segment.
      if (i + 1 != segments.size()) {
        throw TsdbError("wal segment header truncated in " + seg.string() +
                        " before a later segment");
      }
      return out;
    }
    if (std::memcmp(blob.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
      throw TsdbError("bad wal magic in " + seg.string());
    }
    std::uint32_t version = 0;
    std::memcpy(&version, blob.data() + sizeof(kWalMagic), sizeof version);
    if (version != kWalFormatVersion) {
      throw TsdbError("wal format version " + std::to_string(version) +
                      " in " + seg.string() + ", this build reads version " +
                      std::to_string(kWalFormatVersion));
    }
    std::size_t at = kWalHeaderBytes;
    while (at < blob.size()) {
      if (blob.size() - at < kRecordBytes) {
        // A kill mid-append tears only the final record of the final
        // segment; a short tail anywhere else means lost data.
        if (i + 1 != segments.size()) {
          throw TsdbError("wal segment " + seg.string() +
                          " ends mid-record before a later segment");
        }
        return out;
      }
      WalRecord rec;
      std::memcpy(&rec.series, blob.data() + at, sizeof rec.series);
      std::uint64_t time = 0;
      std::memcpy(&time, blob.data() + at + sizeof rec.series, sizeof time);
      rec.time = Timestamp(time);
      std::memcpy(&rec.value_bits,
                  blob.data() + at + sizeof rec.series + sizeof time,
                  sizeof rec.value_bits);
      std::uint32_t stored = 0;
      std::memcpy(&stored, blob.data() + at + kRecordBodyBytes, sizeof stored);
      if (stored != record_checksum(blob.data() + at)) {
        throw TsdbError("wal record checksum mismatch in " + seg.string() +
                        " at offset " + std::to_string(at));
      }
      out.push_back(rec);
      at += kRecordBytes;
    }
  }
  return out;
}

}  // namespace gs::tsdb
