// gs:durable-io
#include "tsdb/wal.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

#include "ckpt/snapshot.hpp"
#include "common/assert.hpp"
#include "common/failpoint.hpp"
#include "tsdb/error.hpp"

namespace gs::tsdb {
namespace {

/// Failpoint sites hosted by the WAL (see DESIGN.md §17).
constexpr const char* kFailpointWalAppend = "tsdb.wal.append";
constexpr const char* kFailpointWalSeal = "tsdb.wal.seal";
constexpr const char* kFailpointWalRepair = "tsdb.wal.repair";

constexpr char kWalMagic[8] = {'G', 'S', 'W', 'A', 'L', 'O', 'G', '\n'};
constexpr std::size_t kWalHeaderBytes =
    sizeof(kWalMagic) + sizeof(std::uint32_t);
constexpr std::size_t kRecordBodyBytes =
    sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t);
constexpr std::size_t kRecordBytes = kRecordBodyBytes + sizeof(std::uint32_t);

std::uint32_t record_checksum(const char* body) {
  const std::uint64_t h =
      ckpt::payload_checksum(std::string_view(body, kRecordBodyBytes));
  return std::uint32_t(h) ^ std::uint32_t(h >> 32);
}

void encode_record(const WalRecord& rec, char out[kRecordBytes]) {
  std::size_t at = 0;
  std::memcpy(out + at, &rec.series, sizeof rec.series);
  at += sizeof rec.series;
  const auto time = std::uint64_t(rec.time);
  std::memcpy(out + at, &time, sizeof time);
  at += sizeof time;
  std::memcpy(out + at, &rec.value_bits, sizeof rec.value_bits);
  at += sizeof rec.value_bits;
  const std::uint32_t check = record_checksum(out);
  std::memcpy(out + at, &check, sizeof check);
}

std::filesystem::path segment_path(const std::filesystem::path& dir,
                                   std::uint64_t seq) {
  std::ostringstream name;
  name << "wal-";
  name.width(6);
  name.fill('0');
  name << seq << ".gswal";
  return dir / name.str();
}

/// Sequence number from a segment filename, or nullopt for other files.
std::optional<std::uint64_t> segment_seq(const std::filesystem::path& p) {
  const std::string name = p.filename().string();
  if (name.size() < 11 || name.rfind("wal-", 0) != 0 ||
      name.substr(name.size() - 6) != ".gswal") {
    return std::nullopt;
  }
  const std::string digits = name.substr(4, name.size() - 10);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  return std::strtoull(digits.c_str(), nullptr, 10);
}

/// Full scan of one segment: the complete-record prefix plus how (and
/// where) the file stops being valid.
struct SegmentScan {
  WalSegmentCheck::Verdict verdict = WalSegmentCheck::Verdict::Ok;
  std::vector<WalRecord> records;
  std::size_t valid_bytes = 0;  ///< Header + complete-record prefix.
  bool torn_header = false;     ///< Not even the header is complete.
  std::string detail;
};

SegmentScan scan_segment(const std::filesystem::path& seg) {
  SegmentScan scan;
  std::ifstream in(seg, std::ios::binary);
  if (!in) {
    throw TsdbError("cannot open wal segment " + seg.string());
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string blob = std::move(ss).str();

  if (blob.size() < kWalHeaderBytes) {
    scan.verdict = WalSegmentCheck::Verdict::TornTail;
    scan.torn_header = true;
    scan.detail = "segment header truncated";
    return scan;
  }
  if (std::memcmp(blob.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    scan.verdict = WalSegmentCheck::Verdict::Corrupt;
    scan.detail = "bad wal magic";
    return scan;
  }
  std::uint32_t version = 0;
  std::memcpy(&version, blob.data() + sizeof(kWalMagic), sizeof version);
  if (version != kWalFormatVersion) {
    scan.verdict = WalSegmentCheck::Verdict::Corrupt;
    scan.detail = "wal format version " + std::to_string(version) +
                  ", this build reads version " +
                  std::to_string(kWalFormatVersion);
    return scan;
  }
  std::size_t at = kWalHeaderBytes;
  scan.valid_bytes = at;
  while (at < blob.size()) {
    if (blob.size() - at < kRecordBytes) {
      scan.verdict = WalSegmentCheck::Verdict::TornTail;
      scan.detail = "ends mid-record at offset " + std::to_string(at);
      return scan;
    }
    WalRecord rec;
    std::memcpy(&rec.series, blob.data() + at, sizeof rec.series);
    std::uint64_t time = 0;
    std::memcpy(&time, blob.data() + at + sizeof rec.series, sizeof time);
    rec.time = Timestamp(time);
    std::memcpy(&rec.value_bits,
                blob.data() + at + sizeof rec.series + sizeof time,
                sizeof rec.value_bits);
    std::uint32_t stored = 0;
    std::memcpy(&stored, blob.data() + at + kRecordBodyBytes, sizeof stored);
    if (stored != record_checksum(blob.data() + at)) {
      // A checksum mismatch on the final record is the other face of a
      // torn append (half-new, half-stale bytes); mid-file it is rot.
      const bool final_record = blob.size() - at == kRecordBytes;
      scan.verdict = final_record ? WalSegmentCheck::Verdict::TornTail
                                  : WalSegmentCheck::Verdict::Corrupt;
      scan.detail = "record checksum mismatch at offset " +
                    std::to_string(at);
      return scan;
    }
    scan.records.push_back(rec);
    at += kRecordBytes;
    scan.valid_bytes = at;
  }
  return scan;
}

}  // namespace

WalWriter::WalWriter(std::filesystem::path dir, std::uint64_t segment_bytes)
    : dir_(std::move(dir)), segment_bytes_(segment_bytes) {
  GS_REQUIRE(segment_bytes_ >= kWalHeaderBytes + kRecordBytes,
             "wal segment size too small for one record");
  std::filesystem::create_directories(dir_);
  // Never append to an existing segment: its tail may be torn from a
  // previous kill. Start numbering past whatever is already there.
  for (const auto& seg : wal_segments(dir_)) {
    if (const auto seq = segment_seq(seg)) {
      next_seq_ = std::max(next_seq_, *seq + 1);
    }
  }
  open_segment();
}

void WalWriter::open_segment() {
  // Sealing the previous segment (and cutting the first one) is its own
  // failure site: a crash here loses nothing already acknowledged.
  GS_FAILPOINT(kFailpointWalSeal);
  const std::filesystem::path path = segment_path(dir_, next_seq_++);
  try {
    if (out_.is_open()) out_.flush(io::Durability::Full);
    out_.open_trunc(path, kFailpointWalAppend);
    char header[kWalHeaderBytes];
    std::memcpy(header, kWalMagic, sizeof(kWalMagic));
    const std::uint32_t version = kWalFormatVersion;
    std::memcpy(header + sizeof(kWalMagic), &version, sizeof version);
    out_.append(std::string_view(header, sizeof header));
  } catch (const io::IoError& e) {
    throw TsdbError(std::string("cannot open wal segment ") + path.string() +
                    ": " + e.what());
  }
  current_bytes_ = kWalHeaderBytes;
  ++segments_opened_;
}

void WalWriter::append(const WalRecord& rec) {
  if (current_bytes_ + kRecordBytes > segment_bytes_) open_segment();
  char buf[kRecordBytes];
  encode_record(rec, buf);
  try {
    out_.append(std::string_view(buf, sizeof buf));
  } catch (const io::IoError& e) {
    throw TsdbError(std::string("wal append in ") + dir_.string() +
                    " failed: " + e.what());
  }
  current_bytes_ += kRecordBytes;
  ++records_;
}

void WalWriter::flush() {
  try {
    out_.flush(io::Durability::Full);
  } catch (const io::IoError& e) {
    throw TsdbError(std::string("cannot flush wal segment in ") +
                    dir_.string() + ": " + e.what());
  }
}

std::vector<std::filesystem::path> wal_segments(
    const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> out;
  if (!std::filesystem::is_directory(dir)) return out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && segment_seq(entry.path())) {
      out.push_back(entry.path());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const std::filesystem::path& a, const std::filesystem::path& b) {
              return *segment_seq(a) < *segment_seq(b);
            });
  return out;
}

std::vector<WalRecord> replay_wal(const std::filesystem::path& dir,
                                  bool repair_torn_tail) {
  std::vector<WalRecord> out;
  const auto segments = wal_segments(dir);
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const std::filesystem::path& seg = segments[i];
    SegmentScan scan = scan_segment(seg);
    const bool final_segment = i + 1 == segments.size();
    switch (scan.verdict) {
      case WalSegmentCheck::Verdict::Ok:
        break;
      case WalSegmentCheck::Verdict::TornTail:
        // A kill mid-append tears only the final record of the final
        // segment; a short tail anywhere else means lost data.
        if (!final_segment) {
          throw TsdbError("wal segment " + seg.string() + " " + scan.detail +
                          " before a later segment");
        }
        if (repair_torn_tail) {
          // Heal the tear now, while the segment is still final: the
          // next writer will open a fresh segment after this one, and
          // an unhealed tear would then be mid-log — fatal.
          GS_FAILPOINT(kFailpointWalRepair);
          if (scan.torn_header) {
            std::filesystem::remove(seg);
          } else {
            io::truncate_file(seg, scan.valid_bytes, kFailpointWalRepair);
          }
        }
        break;
      case WalSegmentCheck::Verdict::Corrupt:
        throw TsdbError("wal segment " + seg.string() + ": " + scan.detail);
    }
    out.insert(out.end(), scan.records.begin(), scan.records.end());
    if (scan.verdict == WalSegmentCheck::Verdict::TornTail) break;
  }
  return out;
}

WalSegmentCheck check_wal_segment(const std::filesystem::path& segment) {
  const SegmentScan scan = scan_segment(segment);
  WalSegmentCheck check;
  check.verdict = scan.verdict;
  check.records = scan.records.size();
  check.detail = scan.detail;
  return check;
}

}  // namespace gs::tsdb
