// The telemetry engine facade. One Engine owns every series of a
// simulation campaign; EngineOptions::strategy picks how sealed history is
// held (see strategy.hpp for the four strategies). The write path is
// append-only per series; the read path is a range query that prunes whole
// chunks on their time bounds before decoding a single sample.
//
// Concurrency: series creation, appends, queries, and snapshots are all
// safe to call from concurrent sweep workers — one engine mutex guards the
// series table (chunk payloads themselves are immutable once sealed, and
// cursors only hold immutable chunks, so iteration happens outside the
// lock).
//
// Checkpointing: save_state/load_state round-trip the *exact* engine
// state — interned names, every open chunk's mid-stream compression
// registers, and the sealed-chunk manifest (resident payloads inline,
// spilled pages by {file, checksum, count, bounds}, re-verified against
// the page bytes on load). A killed-and-resumed campaign therefore
// reproduces bit-identical query results and CSV exports.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "ckpt/fwd.hpp"
#include "common/keyed_cache.hpp"
#include "common/thread_annotations.hpp"
#include "tsdb/store.hpp"
#include "tsdb/strategy.hpp"
#include "tsdb/time.hpp"
#include "tsdb/wal.hpp"

namespace gs::tsdb {

struct EngineOptions {
  Strategy strategy = Strategy::MEMORY;
  /// Storage directory; required for WAL / COMPRESSED / CACHE, ignored for
  /// MEMORY.
  std::filesystem::path dir;
  /// Samples per chunk before it seals (and, per strategy, spills).
  std::uint64_t chunk_capacity = 1024;
  /// LRU entries for Strategy::CACHE page reads.
  std::size_t cache_chunks = 64;
  /// WAL segment rotation threshold, bytes.
  std::uint64_t wal_segment_bytes = std::uint64_t(1) << 20;
};

struct EngineStats {
  std::uint64_t appends = 0;         ///< includes WAL-replayed samples
  std::uint64_t series = 0;
  std::uint64_t resident_chunks = 0;
  std::uint64_t spilled_chunks = 0;
  std::uint64_t open_samples = 0;
  std::uint64_t wal_records = 0;     ///< replayed + written this process
  std::uint64_t page_reads = 0;      ///< spilled pages read back (uncached)
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

struct SeriesInfo {
  SeriesId id = 0;
  std::string metric;
  std::uint32_t rack = 0;
  std::uint32_t server = 0;
  std::uint64_t samples = 0;
};

/// One decoded query row: which series, and the sample.
struct CursorRow {
  SeriesKey key;
  Sample sample;

  friend bool operator==(const CursorRow&, const CursorRow&) = default;
};

/// Streaming result of Engine::query(). Holds only immutable sealed
/// chunks, so it stays valid (and lock-free) while the engine keeps
/// ingesting. Rows come out grouped by server (ascending), time-ordered
/// within each series.
class Cursor {
 public:
  /// Decode the next in-range row; false when exhausted.
  bool next(CursorRow& out);

  /// Remaining-row upper bound before range filtering (chunk-level
  /// counts).
  [[nodiscard]] std::uint64_t chunk_samples() const;

 private:
  friend class Engine;
  struct Part {
    SeriesKey key;
    std::shared_ptr<const SealedChunk> chunk;
  };
  Cursor(std::vector<Part> parts, Timestamp lo, Timestamp hi);

  std::vector<Part> parts_;
  std::size_t part_ = 0;
  std::optional<ChunkCursor> chunk_;
  Timestamp lo_ = kMinTimestamp;
  Timestamp hi_ = kMaxTimestamp;
};

class Engine {
 public:
  static constexpr std::uint32_t kStateVersion = 1;

  /// For WAL, an existing directory is replayed (catalog + log), so a new
  /// engine over a killed campaign's directory recovers its telemetry.
  explicit Engine(EngineOptions opts);

  /// Intern (or look up) the series for (metric, rack, server).
  SeriesId series(std::string_view metric, std::uint32_t rack,
                  std::uint32_t server) GS_EXCLUDES(mu_);

  /// Already-interned series id, if any.
  [[nodiscard]] std::optional<SeriesId> find_series(
      std::string_view metric, std::uint32_t rack,
      std::uint32_t server) const GS_EXCLUDES(mu_);

  /// Append one sample at simulation time `time_s` seconds. Per-series
  /// timestamps must be non-decreasing.
  void append(SeriesId id, double time_s, double value) GS_EXCLUDES(mu_) {
    append_at(id, to_timestamp(time_s), value);
  }
  void append_at(SeriesId id, Timestamp t, double value) GS_EXCLUDES(mu_);

  /// All samples of `metric` in `rack` with time key in [lo, hi]; pass
  /// `server` to restrict to one machine. Unknown metrics yield an empty
  /// cursor (a query is not a spelling oracle).
  [[nodiscard]] Cursor query(std::string_view metric, std::uint32_t rack,
                             Timestamp lo = kMinTimestamp,
                             Timestamp hi = kMaxTimestamp,
                             std::optional<std::uint32_t> server =
                                 std::nullopt) GS_EXCLUDES(mu_);

  /// Seal every open chunk (spilling per strategy). Queries already see
  /// open-chunk samples; sealing is for compression/spill pressure, not
  /// visibility.
  void seal_all() GS_EXCLUDES(mu_);

  /// Push WAL buffers to the OS (no-op for other strategies).
  void flush() GS_EXCLUDES(mu_);

  [[nodiscard]] std::vector<SeriesInfo> list_series() const GS_EXCLUDES(mu_);
  [[nodiscard]] EngineStats stats() const GS_EXCLUDES(mu_);
  [[nodiscard]] const EngineOptions& options() const { return opts_; }

  // Named, versioned "tsdb_engine" section. load_state requires the
  // snapshot's strategy and chunk capacity to match this engine's options
  // (a manifest is meaningless under a different layout) and re-verifies
  // every spilled page, throwing TsdbError on any mismatch.
  void save_state(ckpt::StateWriter& w) const GS_EXCLUDES(mu_);
  void load_state(ckpt::StateReader& r) GS_EXCLUDES(mu_);

 private:
  void seal_if_full(SeriesStore& store) GS_REQUIRES(mu_);
  [[nodiscard]] PageLoader loader() GS_REQUIRES(mu_);
  void replay_existing() GS_REQUIRES(mu_);

  const EngineOptions opts_;  // immutable after construction: unguarded

  mutable Mutex mu_;
  NameDict metrics_ GS_GUARDED_BY(mu_);
  std::vector<SeriesStore> series_ GS_GUARDED_BY(mu_);
  std::unordered_map<SeriesKey, SeriesId, SeriesKeyHash> index_
      GS_GUARDED_BY(mu_);
  /// WAL strategy only: (metric, rack, server) -> id exactly as recorded
  /// in the on-disk series catalog. Unlike the in-memory series table this
  /// is NOT rewound by load_state — the catalog file is append-only, so a
  /// snapshot restore cannot un-write its lines. Re-registration after a
  /// rewind consults this map to keep id assignment consistent with the
  /// file instead of appending duplicate lines that would poison the next
  /// replay. Keyed by name (not interned id) because load_state replaces
  /// the interner.
  std::map<std::tuple<std::string, std::uint32_t, std::uint32_t>, SeriesId>
      catalog_ids_ GS_GUARDED_BY(mu_);
  std::optional<WalWriter> wal_ GS_GUARDED_BY(mu_);
  std::uint64_t replayed_records_ GS_GUARDED_BY(mu_) = 0;
  std::uint64_t appends_ GS_GUARDED_BY(mu_) = 0;
  std::uint64_t page_reads_ GS_GUARDED_BY(mu_) = 0;

  // Internally synchronized; shared by concurrent queries.
  KeyedCache<std::uint64_t, SealedChunk> cache_;
};

}  // namespace gs::tsdb
