#include "tsdb/strategy.hpp"

#include <array>
#include <cctype>
#include <istream>
#include <ostream>

#include "tsdb/error.hpp"

namespace gs::tsdb {
namespace {

constexpr std::array<const char*, kNumStrategies> kNames = {
    "MEMORY",
    "WAL",
    "COMPRESSED",
    "CACHE",
};
static_assert(std::size_t(Strategy::MEMORY) == 0);
static_assert(std::size_t(Strategy::WAL) == 1);
static_assert(std::size_t(Strategy::COMPRESSED) == 2);
static_assert(std::size_t(Strategy::CACHE) == 3);

}  // namespace

const char* to_string(Strategy s) {
  const auto idx = std::size_t(s);
  if (idx >= kNames.size()) {
    throw TsdbError("tsdb: bad strategy value " + std::to_string(idx));
  }
  return kNames[idx];
}

Strategy strategy_from_string(std::string_view token) {
  std::string upper(token);
  for (char& c : upper) c = char(std::toupper(static_cast<unsigned char>(c)));
  for (std::size_t i = 0; i < kNames.size(); ++i) {
    if (upper == kNames[i]) return Strategy(i);
  }
  throw TsdbError("tsdb: bad strategy name \"" + std::string(token) + "\"");
}

std::istream& operator>>(std::istream& in, Strategy& s) {
  std::string token;
  in >> token;
  s = strategy_from_string(token);
  return in;
}

std::ostream& operator<<(std::ostream& out, const Strategy& s) {
  return out << to_string(s);
}

}  // namespace gs::tsdb
