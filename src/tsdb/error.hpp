// The one exception type of the telemetry engine. Mirrors ckpt's
// SnapshotError discipline: every malformed, truncated, corrupt or
// version-skewed on-disk artifact (chunk page, WAL record, manifest entry)
// fails with a typed TsdbError carrying a human-readable cause, never a
// silent mis-read. Contract violations (out-of-order appends, bad query
// arguments) keep throwing gs::ContractError like the rest of src/.
#pragma once

#include <stdexcept>
#include <string>

namespace gs::tsdb {

class TsdbError : public std::runtime_error {
 public:
  explicit TsdbError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace gs::tsdb
