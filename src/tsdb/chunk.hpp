// The chunk codec: one chunk holds up to `capacity` samples of one series,
// timestamps delta-of-delta coded and values XOR-coded (Gorilla-style),
// both bit-packed. An open chunk (ChunkAppender) accepts appends and can
// snapshot its exact compression state for checkpointing; a sealed chunk
// is immutable and carries the time bounds the query planner prunes on.
//
// On disk a sealed chunk is a *page*: a fixed header (magic, format
// version, series key, sample count, time bounds, payload size, FNV-1a
// checksum) followed by the bit-packed payload, written with the same
// atomic tmp+rename discipline as ckpt snapshots. decode_page() throws
// TsdbError on truncation, bad magic, version skew, or checksum mismatch.
//
// kChunkFormatVersion guards the page layout AND the bit-level sample
// encoding: bump it whenever either changes (gs-lint's tsdb-chunk-version
// rule pins this file to the constant).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "ckpt/fwd.hpp"
#include "tsdb/codec.hpp"
#include "tsdb/series.hpp"

namespace gs::tsdb {

/// Bumped on any change to the page header or the sample bit encoding.
inline constexpr std::uint32_t kChunkFormatVersion = 1;

/// One decoded point.
struct Sample {
  Timestamp time = 0;
  double value = 0.0;

  friend bool operator==(const Sample&, const Sample&) = default;
};

class SealedChunk;

/// Append-side compression state of one open chunk.
class ChunkAppender {
 public:
  explicit ChunkAppender(SeriesKey key = {}) : key_(key) {}

  /// Append one sample. Timestamps must be non-decreasing (append-only
  /// telemetry); equal stamps are allowed for idempotent re-records.
  void append(Timestamp t, double value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] Timestamp t_min() const { return t_min_; }
  [[nodiscard]] Timestamp t_max() const { return t_max_; }
  [[nodiscard]] const SeriesKey& key() const { return key_; }

  /// Freeze into an immutable chunk and reset to empty.
  [[nodiscard]] SealedChunk seal();

  /// Immutable snapshot of the samples appended so far (the open chunk's
  /// query path); the appender keeps accepting appends.
  [[nodiscard]] SealedChunk snapshot() const;

  // Exact compression state, for bit-identical kill-and-resume. The
  // schema is versioned by the enclosing Engine::kStateVersion section.
  // gs-lint: allow(ckpt-schema-version)
  void save_state(ckpt::StateWriter& w) const;
  void load_state(ckpt::StateReader& r);

 private:
  SeriesKey key_;
  BitWriter bits_;
  std::uint64_t count_ = 0;
  Timestamp t_min_ = 0;
  Timestamp t_max_ = 0;
  Timestamp prev_t_ = 0;
  std::int64_t prev_delta_ = 0;
  std::uint64_t prev_value_bits_ = 0;
  int prev_leading_ = -1;   // -1: no reusable XOR window yet
  int prev_meaningful_ = 0;
};

/// Immutable, compressed, time-bounded run of samples.
class SealedChunk {
 public:
  SealedChunk() = default;
  SealedChunk(SeriesKey key, std::uint64_t count, Timestamp t_min,
              Timestamp t_max, std::string payload)
      : key_(key),
        count_(count),
        t_min_(t_min),
        t_max_(t_max),
        payload_(std::move(payload)) {}

  [[nodiscard]] const SeriesKey& key() const { return key_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] Timestamp t_min() const { return t_min_; }
  [[nodiscard]] Timestamp t_max() const { return t_max_; }
  [[nodiscard]] const std::string& payload() const { return payload_; }

  /// True when [t_min, t_max] intersects [lo, hi] — the chunk-level prune.
  [[nodiscard]] bool overlaps(Timestamp lo, Timestamp hi) const {
    return count_ > 0 && t_max_ >= lo && t_min_ <= hi;
  }

 private:
  SeriesKey key_;
  std::uint64_t count_ = 0;
  Timestamp t_min_ = 0;
  Timestamp t_max_ = 0;
  std::string payload_;
};

/// Streaming decoder over one sealed chunk.
class ChunkCursor {
 public:
  explicit ChunkCursor(std::shared_ptr<const SealedChunk> chunk);

  /// Decode the next sample; false at the end of the chunk. Throws
  /// TsdbError if the payload ends mid-sample (truncated page).
  bool next(Sample& out);

 private:
  std::shared_ptr<const SealedChunk> chunk_;
  BitReader bits_;
  std::uint64_t index_ = 0;
  Timestamp prev_t_ = 0;
  std::int64_t prev_delta_ = 0;
  std::uint64_t prev_value_bits_ = 0;
  int prev_leading_ = 0;
  int prev_meaningful_ = 0;
};

/// Serialize a sealed chunk as an on-disk page (header + checksummed
/// payload).
[[nodiscard]] std::string encode_page(const SealedChunk& chunk);

/// Parse and validate a page; throws TsdbError on truncation, bad magic,
/// version skew, or checksum mismatch. `origin` names the source in error
/// messages (file path, "wal", ...).
[[nodiscard]] SealedChunk decode_page(std::string_view page,
                                      const std::string& origin);

}  // namespace gs::tsdb
