#include "tsdb/codec.hpp"

#include "ckpt/state_io.hpp"
#include "common/assert.hpp"

namespace gs::tsdb {

void BitWriter::bits(std::uint64_t v, int n) {
  GS_REQUIRE(n >= 0 && n <= 64, "bit count out of range");
  while (n > 0) {
    const int take = n < (8 - pending_bits_) ? n : (8 - pending_bits_);
    const std::uint64_t chunk =
        (v >> (n - take)) & ((std::uint64_t(1) << take) - 1);
    pending_ = std::uint8_t((pending_ << take) | std::uint8_t(chunk));
    pending_bits_ += take;
    n -= take;
    if (pending_bits_ == 8) {
      buf_.push_back(char(pending_));
      pending_ = 0;
      pending_bits_ = 0;
    }
  }
}

std::string BitWriter::bytes() const {
  std::string out = buf_;
  if (pending_bits_ > 0) {
    out.push_back(char(std::uint8_t(pending_ << (8 - pending_bits_))));
  }
  return out;
}

void BitWriter::save_state(ckpt::StateWriter& w) const {
  w.str(buf_);
  w.u8(pending_);
  w.u8(std::uint8_t(pending_bits_));
}

void BitWriter::load_state(ckpt::StateReader& r) {
  buf_ = r.str();
  pending_ = r.u8();
  pending_bits_ = int(r.u8());
  if (pending_bits_ < 0 || pending_bits_ >= 8) {
    throw TsdbError("bit writer snapshot holds invalid carry width " +
                    std::to_string(pending_bits_));
  }
}

std::uint64_t BitReader::bits(int n) {
  GS_REQUIRE(n >= 0 && n <= 64, "bit count out of range");
  if (pos_ + std::uint64_t(n) > std::uint64_t(buf_.size()) * 8) {
    throw TsdbError("chunk bitstream truncated: need " + std::to_string(n) +
                    " bits at offset " + std::to_string(pos_) + ", have " +
                    std::to_string(std::uint64_t(buf_.size()) * 8 - pos_));
  }
  std::uint64_t out = 0;
  int need = n;
  while (need > 0) {
    const std::size_t byte = std::size_t(pos_ >> 3);
    const int offset = int(pos_ & 7);
    const int avail = 8 - offset;
    const int take = need < avail ? need : avail;
    const auto cur = std::uint8_t(buf_[byte]);
    const std::uint64_t chunk =
        (std::uint64_t(cur) >> (avail - take)) &
        ((std::uint64_t(1) << take) - 1);
    out = (out << take) | chunk;
    pos_ += std::uint64_t(take);
    need -= take;
  }
  return out;
}

}  // namespace gs::tsdb
