// gs:durable-io
#include "tsdb/store.hpp"

#include <fstream>
#include <sstream>

#include "ckpt/snapshot.hpp"
#include "ckpt/state_io.hpp"
#include "common/assert.hpp"
#include "common/io.hpp"
#include "tsdb/error.hpp"

// Page framing and version checks live in chunk.cpp's encode_page /
// decode_page; this file only routes the resulting bytes to disk.
// gs-lint: allow(tsdb-chunk-version)

namespace gs::tsdb {
namespace {

std::string page_filename(SeriesId id, std::uint64_t seq) {
  std::ostringstream name;
  name << "chunk-";
  name.width(6);
  name.fill('0');
  name << id << "-";
  name.width(6);
  name.fill('0');
  name << seq << ".gspage";
  return std::move(name).str();
}

/// Atomic-or-absent page write: the bytes land under a tmp name and are
/// renamed into place, the same discipline ckpt snapshots use, so a kill
/// mid-spill leaves either the complete page or no page at all.
/// Failpoint site on every COMPRESSED/CACHE spill-page commit.
constexpr const char* kFailpointPageWrite = "tsdb.page.write";

void write_page_file(const std::filesystem::path& path,
                     const std::string& page, std::uint64_t checksum) {
  std::ostringstream tmp_name;
  tmp_name << path.string() << ".tmp-" << std::hex << checksum;
  const std::filesystem::path tmp(std::move(tmp_name).str());
  io::WriteOptions opts;
  opts.durability = io::Durability::Full;
  opts.site = kFailpointPageWrite;
  try {
    io::atomic_write_file(path, tmp, page, opts);
  } catch (const io::IoError& e) {
    throw TsdbError(std::string("page write to ") + path.string() +
                    " failed: " + e.what());
  }
}

}  // namespace

ChunkRef SeriesStore::seal_common() {
  ChunkRef ref;
  ref.cache_key = (std::uint64_t(id_) << 32) | next_chunk_seq_;
  ++next_chunk_seq_;
  auto chunk = std::make_shared<const SealedChunk>(open_.seal());
  ref.checksum = ckpt::payload_checksum(chunk->payload());
  ref.count = chunk->count();
  ref.t_min = chunk->t_min();
  ref.t_max = chunk->t_max();
  ref.resident = std::move(chunk);
  sealed_samples_ += ref.count;
  return ref;
}

void SeriesStore::seal_resident() {
  if (open_.empty()) return;
  sealed_.push_back(seal_common());
}

void SeriesStore::seal_spilled(const std::filesystem::path& dir) {
  if (open_.empty()) return;
  ChunkRef ref = seal_common();
  ref.file = page_filename(id_, std::uint64_t(ref.cache_key & 0xffffffffu));
  write_page_file(dir / ref.file, encode_page(*ref.resident), ref.checksum);
  ref.resident.reset();  // evict: the page is the copy of record now
  sealed_.push_back(std::move(ref));
}

void SeriesStore::collect(
    Timestamp lo, Timestamp hi, const PageLoader& load,
    std::vector<std::shared_ptr<const SealedChunk>>& out) const {
  for (const ChunkRef& ref : sealed_) {
    if (!ref.overlaps(lo, hi)) continue;
    out.push_back(ref.spilled() ? load(ref) : ref.resident);
  }
  if (!open_.empty() && open_.t_max() >= lo && open_.t_min() <= hi) {
    out.push_back(std::make_shared<const SealedChunk>(open_.snapshot()));
  }
}

void SeriesStore::save_state(ckpt::StateWriter& w) const {
  w.u32(key_.metric_id);
  w.u32(key_.rack_id);
  w.u32(key_.server_id);
  w.u32(id_);
  open_.save_state(w);
  w.u64(sealed_samples_);
  w.u64(next_chunk_seq_);
  w.u64(sealed_.size());
  for (const ChunkRef& ref : sealed_) {
    w.boolean(ref.spilled());
    w.u64(ref.checksum);
    w.u64(ref.cache_key);
    w.u64(ref.count);
    w.i64(ref.t_min);
    w.i64(ref.t_max);
    if (ref.spilled()) {
      w.str(ref.file);
    } else {
      w.str(ref.resident->payload());
    }
  }
}

void SeriesStore::load_state(ckpt::StateReader& r,
                             const std::filesystem::path& dir) {
  key_.metric_id = r.u32();
  key_.rack_id = r.u32();
  key_.server_id = r.u32();
  id_ = r.u32();
  open_.load_state(r);
  sealed_samples_ = r.u64();
  next_chunk_seq_ = r.u64();
  sealed_.clear();
  const auto n = std::size_t(r.u64());
  sealed_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ChunkRef ref;
    const bool spilled = r.boolean();
    ref.checksum = r.u64();
    ref.cache_key = r.u64();
    ref.count = r.u64();
    ref.t_min = r.i64();
    ref.t_max = r.i64();
    if (spilled) {
      ref.file = r.str();
      // Verify the manifest against the page it points at: a missing,
      // swapped, or rotted page must fail the restore, not a later query.
      const SealedChunk chunk = read_page_file(dir / ref.file);
      if (chunk.count() != ref.count || chunk.t_min() != ref.t_min ||
          chunk.t_max() != ref.t_max || chunk.key() != key_ ||
          ckpt::payload_checksum(chunk.payload()) != ref.checksum) {
        throw TsdbError("page " + (dir / ref.file).string() +
                        " does not match the snapshot manifest");
      }
    } else {
      ref.resident = std::make_shared<const SealedChunk>(
          key_, ref.count, ref.t_min, ref.t_max, r.str());
    }
    sealed_.push_back(std::move(ref));
  }
}

SealedChunk read_page_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw TsdbError("cannot open page file: " + path.string());
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string blob = std::move(ss).str();
  return decode_page(blob, path.string());
}

}  // namespace gs::tsdb
