// The per-series storage tier behind the Engine facade. Each series owns
// one open ChunkAppender plus an ordered list of sealed-chunk references.
// A reference is either *resident* (the compressed payload lives in
// memory — MEMORY and WAL strategies) or *spilled* (the payload was
// written to a checksummed on-disk page with the ckpt tmp+rename
// discipline and evicted — COMPRESSED and CACHE strategies). Queries
// materialize the chunks they need through a PageLoader the Engine
// supplies, which is where the CACHE strategy inserts its LRU.
#pragma once

#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/fwd.hpp"
#include "tsdb/chunk.hpp"

namespace gs::tsdb {

/// One sealed chunk: resident in memory, or spilled to an on-disk page.
struct ChunkRef {
  std::shared_ptr<const SealedChunk> resident;  ///< null when spilled
  std::string file;            ///< page filename, relative to the engine dir
  std::uint64_t checksum = 0;  ///< payload FNV-1a, matches the page trailer
  std::uint64_t cache_key = 0; ///< (series id << 32) | per-series chunk seq
  std::uint64_t count = 0;
  Timestamp t_min = 0;
  Timestamp t_max = 0;

  [[nodiscard]] bool spilled() const { return resident == nullptr; }
  [[nodiscard]] bool overlaps(Timestamp lo, Timestamp hi) const {
    return count > 0 && t_max >= lo && t_min <= hi;
  }
};

/// Materializes a spilled ref (direct page read, or LRU-cached read for
/// Strategy::CACHE). Never called for resident refs.
using PageLoader =
    std::function<std::shared_ptr<const SealedChunk>(const ChunkRef&)>;

/// Storage state of one series. Not internally synchronized: the Engine's
/// mutex guards every SeriesStore it owns.
class SeriesStore {
 public:
  SeriesStore() = default;
  SeriesStore(SeriesKey key, SeriesId id) : key_(key), id_(id), open_(key) {}

  [[nodiscard]] const SeriesKey& key() const { return key_; }
  [[nodiscard]] SeriesId id() const { return id_; }
  [[nodiscard]] std::uint64_t open_count() const { return open_.count(); }
  [[nodiscard]] std::uint64_t total_count() const {
    return sealed_samples_ + open_.count();
  }
  [[nodiscard]] const std::vector<ChunkRef>& sealed() const { return sealed_; }

  /// Append into the open chunk (timestamps must be non-decreasing).
  void append(Timestamp t, double value) { open_.append(t, value); }

  /// Seal the open chunk into a resident ref. No-op when the chunk is
  /// empty.
  void seal_resident();

  /// Seal the open chunk, write its page under `dir` (atomic tmp+rename),
  /// and keep only the manifest fields in memory. No-op when empty.
  void seal_spilled(const std::filesystem::path& dir);

  /// Append every chunk overlapping [lo, hi] to `out`, oldest first,
  /// ending with a snapshot of the open chunk. Spilled refs go through
  /// `load`.
  void collect(Timestamp lo, Timestamp hi, const PageLoader& load,
               std::vector<std::shared_ptr<const SealedChunk>>& out) const;

  // Snapshot layout: key, id, exact appender state, then the sealed
  // manifest — resident refs inline their compressed payload, spilled refs
  // persist {file, checksum, count, t_min, t_max} and are re-verified
  // against the page on load (wrong or rotted page -> TsdbError). The
  // schema is versioned by the enclosing Engine::kStateVersion section.
  // gs-lint: allow(ckpt-schema-version)
  void save_state(ckpt::StateWriter& w) const;
  void load_state(ckpt::StateReader& r, const std::filesystem::path& dir);

 private:
  [[nodiscard]] ChunkRef seal_common();

  SeriesKey key_;
  SeriesId id_ = 0;
  ChunkAppender open_;
  std::vector<ChunkRef> sealed_;
  std::uint64_t sealed_samples_ = 0;
  std::uint64_t next_chunk_seq_ = 0;
};

/// Read and validate one on-disk chunk page (decode_page + I/O errors as
/// TsdbError).
[[nodiscard]] SealedChunk read_page_file(const std::filesystem::path& path);

}  // namespace gs::tsdb
