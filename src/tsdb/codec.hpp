// MSB-first bit stream primitives under the chunk codec. The writer packs
// into a byte buffer with one partial byte of carry; the reader throws
// TsdbError on any read past the end, so a truncated chunk surfaces as a
// typed decode error instead of garbage samples.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "ckpt/fwd.hpp"
#include "tsdb/error.hpp"

namespace gs::tsdb {

class BitWriter {
 public:
  /// Append the low `n` bits of `v`, most significant first. n in [0, 64].
  void bits(std::uint64_t v, int n);
  void bit(bool b) { bits(b ? 1u : 0u, 1); }

  /// Bits appended so far.
  [[nodiscard]] std::uint64_t size_bits() const {
    return std::uint64_t(buf_.size()) * 8 + std::uint64_t(pending_bits_);
  }

  /// Byte image with the final partial byte zero-padded. Appending may
  /// continue after a snapshot; the snapshot stays valid for the bits it
  /// covered (pair it with the sample count, as ChunkAppender does).
  [[nodiscard]] std::string bytes() const;

  /// Exact internal state, for bit-identical checkpoint round-trips. The
  /// schema is versioned by the enclosing Engine::kStateVersion section.
  // gs-lint: allow(ckpt-schema-version)
  void save_state(ckpt::StateWriter& w) const;
  void load_state(ckpt::StateReader& r);

 private:
  std::string buf_;
  std::uint8_t pending_ = 0;   // carry byte, high bits first
  int pending_bits_ = 0;       // valid bits in pending_, [0, 8)
};

class BitReader {
 public:
  explicit BitReader(std::string_view bytes) : buf_(bytes) {}

  /// Read `n` bits, MSB-first; throws TsdbError past the end of the buffer.
  std::uint64_t bits(int n);
  bool bit() { return bits(1) != 0; }

  [[nodiscard]] std::uint64_t consumed_bits() const { return pos_; }

 private:
  std::string_view buf_;
  std::uint64_t pos_ = 0;  // bit offset
};

}  // namespace gs::tsdb
