#include "tsdb/series.hpp"

#include "ckpt/state_io.hpp"
#include "common/assert.hpp"

namespace gs::tsdb {

std::uint32_t NameDict::intern(std::string_view name) {
  GS_REQUIRE(!name.empty(), "metric names must be non-empty");
  const auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  const auto id = std::uint32_t(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::uint32_t NameDict::find(std::string_view name) const {
  const auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kNotFound : it->second;
}

const std::string& NameDict::name(std::uint32_t id) const {
  GS_REQUIRE(id < names_.size(), "metric id out of range");
  return names_[id];
}

void NameDict::save_state(ckpt::StateWriter& w) const {
  w.u64(names_.size());
  for (const std::string& n : names_) w.str(n);
}

void NameDict::load_state(ckpt::StateReader& r) {
  names_.clear();
  ids_.clear();
  const auto n = std::size_t(r.u64());
  names_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string name = r.str();
    names_.push_back(name);
    ids_.emplace(name, std::uint32_t(i));
  }
}

}  // namespace gs::tsdb
