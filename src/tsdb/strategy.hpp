// Pluggable storage strategies behind the Engine facade (the dariadb
// engine-strategy pattern): one enum selects how sealed history is held.
//
//   MEMORY      everything resident; fastest ingest/query, no durability.
//   WAL         resident chunks plus an append-only write-ahead log; a new
//               Engine over the same directory replays the log, so a killed
//               campaign loses at most the unflushed tail of one record.
//   COMPRESSED  sealed chunks spill to checksummed on-disk pages and are
//               evicted from memory; queries read pages back on demand.
//   CACHE       COMPRESSED with an LRU cache of recently-read pages, for
//               query-heavy consumers (dashboards, repeated exports).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace gs::tsdb {

enum class Strategy : std::uint8_t {
  MEMORY,
  WAL,
  COMPRESSED,
  CACHE,
};

inline constexpr std::uint8_t kNumStrategies = 4;

[[nodiscard]] const char* to_string(Strategy s);

/// Parse a (case-insensitive) strategy name; throws TsdbError on anything
/// that is not MEMORY / WAL / COMPRESSED / CACHE.
[[nodiscard]] Strategy strategy_from_string(std::string_view token);

/// Stream codec, so strategies round-trip through CLI flags and config
/// text: `in >> strategy` consumes one token and throws TsdbError on a bad
/// name; `out << strategy` writes the canonical upper-case spelling.
std::istream& operator>>(std::istream& in, Strategy& s);
std::ostream& operator<<(std::ostream& out, const Strategy& s);

}  // namespace gs::tsdb
