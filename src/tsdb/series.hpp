// Series identity. A series is one metric stream of one server in one
// rack: (metric_id, rack_id, server_id). Metric names are interned in a
// small append-only dictionary so per-sample bookkeeping is three u32
// compares, never a string hash; rack/server are numeric fleet coordinates
// already. The dictionary round-trips through the engine snapshot, so ids
// are stable across a kill-and-resume.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ckpt/fwd.hpp"
#include "tsdb/fwd.hpp"

namespace gs::tsdb {

/// Interned-metric series key.
struct SeriesKey {
  std::uint32_t metric_id = 0;
  std::uint32_t rack_id = 0;
  std::uint32_t server_id = 0;

  friend bool operator==(const SeriesKey&, const SeriesKey&) = default;
};

/// Hash for unordered indexes over SeriesKey.
struct SeriesKeyHash {
  std::size_t operator()(const SeriesKey& k) const {
    std::uint64_t h = (std::uint64_t(k.metric_id) << 32) | k.rack_id;
    h = (h ^ (std::uint64_t(k.server_id) << 16)) * 0x9e3779b97f4a7c15ull;
    return std::size_t(h ^ (h >> 29));
  }
};

/// Append-only string interner: name -> dense u32 id, id -> name.
class NameDict {
 public:
  /// Return the id for `name`, interning it on first sight.
  std::uint32_t intern(std::string_view name);

  /// Id for an already-interned name, or kNotFound.
  [[nodiscard]] std::uint32_t find(std::string_view name) const;

  [[nodiscard]] const std::string& name(std::uint32_t id) const;
  [[nodiscard]] std::size_t size() const { return names_.size(); }

  static constexpr std::uint32_t kNotFound = 0xffffffffu;

  // Schema versioned by the enclosing Engine::kStateVersion section.
  // gs-lint: allow(ckpt-schema-version)
  void save_state(ckpt::StateWriter& w) const;
  void load_state(ckpt::StateReader& r);

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> ids_;
};

}  // namespace gs::tsdb
