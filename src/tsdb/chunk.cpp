#include "tsdb/chunk.hpp"

#include <bit>
#include <cstring>

#include "ckpt/snapshot.hpp"
#include "ckpt/state_io.hpp"
#include "common/assert.hpp"

namespace gs::tsdb {
namespace {

// Sample bit grammar (version kChunkFormatVersion):
//   first sample   64-bit timestamp key, 64-bit value image
//   timestamp      '0'                         delta-of-delta == 0
//                  '10'  + 7-bit zigzag        |dod| < 64
//                  '110' + 24-bit zigzag       |dod| < 2^23
//                  '111' + 64-bit zigzag       anything else
//   value          '0'                         XOR with previous == 0
//                  '1' '0' + window bits       XOR fits previous window
//                  '1' '1' + 6-bit leading + 6-bit (len-1) + len bits
// All timestamp arithmetic wraps in uint64 so the decoder reverses it
// exactly even at the extremes of the key range.

constexpr char kPageMagic[8] = {'G', 'S', 'T', 'S', 'D', 'B', 'C', 'H'};
constexpr std::size_t kPageHeaderBytes =
    sizeof(kPageMagic) + 4 * sizeof(std::uint32_t) + 4 * sizeof(std::uint64_t);

std::uint64_t zigzag(std::int64_t v) {
  return (std::uint64_t(v) << 1) ^ std::uint64_t(v >> 63);
}

std::int64_t unzigzag(std::uint64_t z) {
  return std::int64_t((z >> 1) ^ (~(z & 1) + 1));
}

void encode_dod(BitWriter& bits, std::int64_t dod) {
  if (dod == 0) {
    bits.bit(false);
    return;
  }
  const std::uint64_t z = zigzag(dod);
  if (z < (std::uint64_t(1) << 7)) {
    bits.bits(0b10, 2);
    bits.bits(z, 7);
  } else if (z < (std::uint64_t(1) << 24)) {
    bits.bits(0b110, 3);
    bits.bits(z, 24);
  } else {
    bits.bits(0b111, 3);
    bits.bits(z, 64);
  }
}

std::int64_t decode_dod(BitReader& bits) {
  if (!bits.bit()) return 0;
  if (!bits.bit()) return unzigzag(bits.bits(7));
  if (!bits.bit()) return unzigzag(bits.bits(24));
  return unzigzag(bits.bits(64));
}

}  // namespace

void ChunkAppender::append(Timestamp t, double value) {
  const std::uint64_t value_bits = std::bit_cast<std::uint64_t>(value);
  if (count_ == 0) {
    bits_.bits(std::uint64_t(t), 64);
    bits_.bits(value_bits, 64);
    t_min_ = t;
    t_max_ = t;
    prev_t_ = t;
    prev_delta_ = 0;
    prev_value_bits_ = value_bits;
    prev_leading_ = -1;
    prev_meaningful_ = 0;
    count_ = 1;
    return;
  }
  GS_REQUIRE(t >= prev_t_,
             "tsdb chunks are append-only: timestamps must be non-decreasing");

  const auto delta =
      std::int64_t(std::uint64_t(t) - std::uint64_t(prev_t_));
  const auto dod =
      std::int64_t(std::uint64_t(delta) - std::uint64_t(prev_delta_));
  encode_dod(bits_, dod);
  prev_delta_ = delta;
  prev_t_ = t;
  t_max_ = t;

  const std::uint64_t x = value_bits ^ prev_value_bits_;
  if (x == 0) {
    bits_.bit(false);
  } else {
    bits_.bit(true);
    const int leading = std::countl_zero(x);
    const int trailing = std::countr_zero(x);
    const int prev_trailing = 64 - prev_leading_ - prev_meaningful_;
    if (prev_leading_ >= 0 && leading >= prev_leading_ &&
        trailing >= prev_trailing) {
      bits_.bit(false);
      bits_.bits(x >> prev_trailing, prev_meaningful_);
    } else {
      const int meaningful = 64 - leading - trailing;
      bits_.bit(true);
      bits_.bits(std::uint64_t(leading), 6);
      bits_.bits(std::uint64_t(meaningful - 1), 6);
      bits_.bits(x >> trailing, meaningful);
      prev_leading_ = leading;
      prev_meaningful_ = meaningful;
    }
  }
  prev_value_bits_ = value_bits;
  ++count_;
}

SealedChunk ChunkAppender::seal() {
  SealedChunk out(key_, count_, t_min_, t_max_, bits_.bytes());
  *this = ChunkAppender(key_);
  return out;
}

SealedChunk ChunkAppender::snapshot() const {
  return SealedChunk(key_, count_, t_min_, t_max_, bits_.bytes());
}

void ChunkAppender::save_state(ckpt::StateWriter& w) const {
  w.u32(key_.metric_id);
  w.u32(key_.rack_id);
  w.u32(key_.server_id);
  bits_.save_state(w);
  w.u64(count_);
  w.i64(t_min_);
  w.i64(t_max_);
  w.i64(prev_t_);
  w.i64(prev_delta_);
  w.u64(prev_value_bits_);
  w.i64(prev_leading_);
  w.i64(prev_meaningful_);
}

void ChunkAppender::load_state(ckpt::StateReader& r) {
  key_.metric_id = r.u32();
  key_.rack_id = r.u32();
  key_.server_id = r.u32();
  bits_.load_state(r);
  count_ = r.u64();
  t_min_ = r.i64();
  t_max_ = r.i64();
  prev_t_ = r.i64();
  prev_delta_ = r.i64();
  prev_value_bits_ = r.u64();
  prev_leading_ = int(r.i64());
  prev_meaningful_ = int(r.i64());
}

ChunkCursor::ChunkCursor(std::shared_ptr<const SealedChunk> chunk)
    : chunk_(std::move(chunk)),
      bits_(chunk_ ? std::string_view(chunk_->payload())
                   : std::string_view{}) {
  GS_REQUIRE(chunk_ != nullptr, "chunk cursor needs a chunk");
}

bool ChunkCursor::next(Sample& out) {
  if (index_ >= chunk_->count()) return false;
  if (index_ == 0) {
    prev_t_ = std::int64_t(bits_.bits(64));
    prev_value_bits_ = bits_.bits(64);
    prev_delta_ = 0;
    prev_leading_ = 0;
    prev_meaningful_ = 0;
  } else {
    const std::int64_t dod = decode_dod(bits_);
    prev_delta_ =
        std::int64_t(std::uint64_t(prev_delta_) + std::uint64_t(dod));
    prev_t_ =
        std::int64_t(std::uint64_t(prev_t_) + std::uint64_t(prev_delta_));
    if (bits_.bit()) {
      std::uint64_t x = 0;
      if (bits_.bit()) {
        const int leading = int(bits_.bits(6));
        const int meaningful = int(bits_.bits(6)) + 1;
        if (leading + meaningful > 64) {
          throw TsdbError("chunk value window exceeds 64 bits");
        }
        prev_leading_ = leading;
        prev_meaningful_ = meaningful;
        x = bits_.bits(meaningful) << (64 - leading - meaningful);
      } else {
        const int trailing = 64 - prev_leading_ - prev_meaningful_;
        x = bits_.bits(prev_meaningful_) << trailing;
      }
      prev_value_bits_ ^= x;
    }
  }
  ++index_;
  out.time = prev_t_;
  out.value = std::bit_cast<double>(prev_value_bits_);
  return true;
}

std::string encode_page(const SealedChunk& chunk) {
  std::string page;
  page.reserve(kPageHeaderBytes + chunk.payload().size());
  page.append(kPageMagic, sizeof(kPageMagic));
  const auto put_u32 = [&page](std::uint32_t v) {
    page.append(reinterpret_cast<const char*>(&v), sizeof v);
  };
  const auto put_u64 = [&page](std::uint64_t v) {
    page.append(reinterpret_cast<const char*>(&v), sizeof v);
  };
  put_u32(kChunkFormatVersion);
  put_u32(chunk.key().metric_id);
  put_u32(chunk.key().rack_id);
  put_u32(chunk.key().server_id);
  put_u64(chunk.count());
  put_u64(std::uint64_t(chunk.t_min()));
  put_u64(std::uint64_t(chunk.t_max()));
  // Payload size and checksum close the header; together they catch torn
  // writes and bit rot before any sample is decoded.
  put_u64(chunk.payload().size());
  page.append(chunk.payload());
  const std::uint64_t checksum = ckpt::payload_checksum(chunk.payload());
  page.append(reinterpret_cast<const char*>(&checksum), sizeof checksum);
  return page;
}

SealedChunk decode_page(std::string_view page, const std::string& origin) {
  if (page.size() < kPageHeaderBytes) {
    throw TsdbError("chunk page truncated in " + origin + ": " +
                    std::to_string(page.size()) + " bytes, header needs " +
                    std::to_string(kPageHeaderBytes));
  }
  if (std::memcmp(page.data(), kPageMagic, sizeof(kPageMagic)) != 0) {
    throw TsdbError("bad chunk page magic in " + origin);
  }
  std::size_t at = sizeof(kPageMagic);
  const auto get_u32 = [&page, &at] {
    std::uint32_t v = 0;
    std::memcpy(&v, page.data() + at, sizeof v);
    at += sizeof v;
    return v;
  };
  const auto get_u64 = [&page, &at] {
    std::uint64_t v = 0;
    std::memcpy(&v, page.data() + at, sizeof v);
    at += sizeof v;
    return v;
  };
  const std::uint32_t version = get_u32();
  if (version != kChunkFormatVersion) {
    throw TsdbError("chunk page format version " + std::to_string(version) +
                    " in " + origin + ", this build reads version " +
                    std::to_string(kChunkFormatVersion));
  }
  SeriesKey key;
  key.metric_id = get_u32();
  key.rack_id = get_u32();
  key.server_id = get_u32();
  const std::uint64_t count = get_u64();
  const auto t_min = Timestamp(get_u64());
  const auto t_max = Timestamp(get_u64());
  const std::uint64_t payload_size = get_u64();
  // Compare without arithmetic on the untrusted size, so a corrupt huge
  // claim cannot wrap the bounds check.
  const std::uint64_t remaining = page.size() - at;
  if (remaining < sizeof(std::uint64_t) ||
      payload_size != remaining - sizeof(std::uint64_t)) {
    throw TsdbError("chunk page payload truncated in " + origin +
                    ": header claims " + std::to_string(payload_size) +
                    " payload bytes, page holds " + std::to_string(remaining) +
                    " past the header");
  }
  const std::string_view payload = page.substr(at, std::size_t(payload_size));
  at += std::size_t(payload_size);
  std::uint64_t checksum = 0;
  std::memcpy(&checksum, page.data() + at, sizeof checksum);
  if (ckpt::payload_checksum(payload) != checksum) {
    throw TsdbError("chunk page checksum mismatch in " + origin);
  }
  if (count > 0 && t_min > t_max) {
    throw TsdbError("chunk page time bounds inverted in " + origin);
  }
  return SealedChunk(key, count, t_min, t_max, std::string(payload));
}

}  // namespace gs::tsdb
