// gs:durable-io
#include "tsdb/engine.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <fstream>
#include <sstream>

#include "ckpt/state_io.hpp"
#include "common/assert.hpp"
#include "common/io.hpp"
#include "tsdb/error.hpp"

// WAL header magic and version checks live in wal.cpp's replay_wal; this
// file only consumes the decoded records.
// gs-lint: allow(tsdb-chunk-version)

namespace gs::tsdb {
namespace {

// Append-only sidecar mapping SeriesId -> (rack, server, metric) for WAL
// recovery: log records carry only the dense id, the catalog restores the
// identity. One line per series, tab-separated, appended and flushed at
// intern time; replay truncates a torn final line (kill mid-intern) exactly
// like the WAL repairs a torn final record.
constexpr const char* kCatalogFile = "series.gscat";

/// Failpoint site on the catalog's append-and-fsync path.
constexpr const char* kFailpointCatalogAppend = "tsdb.catalog.append";

std::uint32_t parse_catalog_u32(std::string_view field,
                                const std::string& origin) {
  std::uint32_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), v);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    throw TsdbError("malformed series catalog field in " + origin);
  }
  return v;
}

}  // namespace

Cursor::Cursor(std::vector<Part> parts, Timestamp lo, Timestamp hi)
    : parts_(std::move(parts)), lo_(lo), hi_(hi) {}

bool Cursor::next(CursorRow& out) {
  while (part_ < parts_.size()) {
    if (!chunk_) chunk_.emplace(parts_[part_].chunk);
    Sample s;
    while (chunk_->next(s)) {
      if (s.time > hi_) break;  // in-chunk order: the rest is later still
      if (s.time < lo_) continue;
      out.key = parts_[part_].key;
      out.sample = s;
      return true;
    }
    chunk_.reset();
    ++part_;
  }
  return false;
}

std::uint64_t Cursor::chunk_samples() const {
  std::uint64_t total = 0;
  for (std::size_t i = part_; i < parts_.size(); ++i) {
    total += parts_[i].chunk->count();
  }
  return total;
}

Engine::Engine(EngineOptions opts)
    : opts_(std::move(opts)),
      cache_(std::max<std::size_t>(std::size_t{1}, opts_.cache_chunks)) {
  GS_REQUIRE(opts_.chunk_capacity >= 2,
             "tsdb chunk capacity must hold at least two samples");
  const bool needs_dir = opts_.strategy != Strategy::MEMORY;
  GS_REQUIRE(!needs_dir || !opts_.dir.empty(),
             std::string("tsdb strategy ") + to_string(opts_.strategy) +
                 " needs a storage directory");
  if (needs_dir) std::filesystem::create_directories(opts_.dir);
  MutexLock lock(mu_);
  if (opts_.strategy == Strategy::WAL) {
    replay_existing();
    wal_.emplace(opts_.dir, opts_.wal_segment_bytes);
  }
}

void Engine::replay_existing() {
  const std::filesystem::path cat = opts_.dir / kCatalogFile;
  if (std::filesystem::exists(cat)) {
    std::ifstream in(cat, std::ios::binary);
    if (!in) {
      throw TsdbError("cannot open series catalog " + cat.string());
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string blob = std::move(ss).str();
    std::size_t at = 0;
    while (true) {
      const std::size_t nl = blob.find('\n', at);
      if (nl == std::string::npos) break;  // torn tail: kill mid-intern
      const std::string_view line(blob.data() + at, nl - at);
      at = nl + 1;
      const std::size_t a = line.find('\t');
      const std::size_t b = a == std::string_view::npos
                                ? std::string_view::npos
                                : line.find('\t', a + 1);
      const std::size_t c = b == std::string_view::npos
                                ? std::string_view::npos
                                : line.find('\t', b + 1);
      if (c == std::string_view::npos || c + 1 >= line.size()) {
        throw TsdbError("malformed series catalog line in " + cat.string());
      }
      const std::uint32_t id =
          parse_catalog_u32(line.substr(0, a), cat.string());
      const std::uint32_t rack =
          parse_catalog_u32(line.substr(a + 1, b - a - 1), cat.string());
      const std::uint32_t server =
          parse_catalog_u32(line.substr(b + 1, c - b - 1), cat.string());
      const std::string_view metric = line.substr(c + 1);
      const auto ident = std::make_tuple(std::string(metric), rack, server);
      if (id < series_.size()) {
        // A crash-resumed writer that restored a snapshot older than the
        // catalog used to re-append registrations it had forgotten. Such a
        // line exactly restates an existing entry and is harmless; anything
        // else claiming a used id is corruption.
        const auto prior = catalog_ids_.find(ident);
        if (prior != catalog_ids_.end() && prior->second == id) continue;
        throw TsdbError("series catalog conflict in " + cat.string() +
                        ": id " + std::to_string(id) +
                        " re-registered with a different identity");
      }
      if (id != series_.size()) {
        throw TsdbError("series catalog out of order in " + cat.string() +
                        ": line claims id " + std::to_string(id) +
                        ", expected " + std::to_string(series_.size()));
      }
      const SeriesKey key{metrics_.intern(metric), rack, server};
      index_.emplace(key, SeriesId(series_.size()));
      catalog_ids_.emplace(ident, SeriesId(series_.size()));
      series_.emplace_back(key, SeriesId(series_.size()));
    }
    // A torn final line (kill mid-intern) must be truncated away while it
    // is still final: the next registration appends right after it, and a
    // fragment glued to a fresh line would read as garbage on the replay
    // after the *next* kill.
    if (at < blob.size()) {
      std::filesystem::resize_file(cat, at);
    }
  }
  // Repair a torn final segment while it is still final: the writer this
  // engine is about to open would otherwise bury the tear mid-log and
  // poison the replay after the *next* kill.
  const std::vector<WalRecord> records =
      replay_wal(opts_.dir, /*repair_torn_tail=*/true);
  for (const WalRecord& rec : records) {
    if (rec.series >= series_.size()) {
      throw TsdbError("wal record references unknown series " +
                      std::to_string(rec.series) + " in " +
                      opts_.dir.string());
    }
    SeriesStore& store = series_[rec.series];
    store.append(rec.time, std::bit_cast<double>(rec.value_bits));
    ++appends_;
    seal_if_full(store);
  }
  replayed_records_ = records.size();
}

SeriesId Engine::series(std::string_view metric, std::uint32_t rack,
                        std::uint32_t server) {
  GS_REQUIRE(metric.find_first_of("\t\n") == std::string_view::npos,
             "metric names must not contain tabs or newlines");
  MutexLock lock(mu_);
  const SeriesKey probe{metrics_.find(metric), rack, server};
  if (probe.metric_id != NameDict::kNotFound) {
    const auto it = index_.find(probe);
    if (it != index_.end()) return it->second;
  }
  const SeriesKey key{metrics_.intern(metric), rack, server};
  const auto id = SeriesId(series_.size());
  if (opts_.strategy == Strategy::WAL) {
    const std::filesystem::path cat = opts_.dir / kCatalogFile;
    const auto ident = std::make_tuple(std::string(metric), rack, server);
    const auto durable = catalog_ids_.find(ident);
    if (durable != catalog_ids_.end()) {
      // Already on disk: this process restored a snapshot older than the
      // catalog (load_state rewinds the series table, the append-only file
      // cannot rewind) and is now re-registering. The rewound assignment
      // must land on the recorded id, or samples keyed by id would be
      // misattributed.
      if (durable->second != id) {
        throw TsdbError("series catalog " + cat.string() + " assigns id " +
                        std::to_string(durable->second) +
                        " to this series, but post-restore registration "
                        "order would assign id " + std::to_string(id));
      }
    } else {
      try {
        io::AppendFile out;
        out.open_append(cat, kFailpointCatalogAppend);
        std::ostringstream line;
        line << id << '\t' << rack << '\t' << server << '\t' << metric
             << '\n';
        out.append(std::move(line).str());
        out.flush(io::Durability::Full);
        out.close();
      } catch (const io::IoError& e) {
        throw TsdbError(std::string("series catalog append to ") +
                        cat.string() + " failed: " + e.what());
      }
      catalog_ids_.emplace(ident, id);
    }
  }
  index_.emplace(key, id);
  series_.emplace_back(key, id);
  return id;
}

std::optional<SeriesId> Engine::find_series(std::string_view metric,
                                            std::uint32_t rack,
                                            std::uint32_t server) const {
  MutexLock lock(mu_);
  const std::uint32_t metric_id = metrics_.find(metric);
  if (metric_id == NameDict::kNotFound) return std::nullopt;
  const auto it = index_.find(SeriesKey{metric_id, rack, server});
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

void Engine::append_at(SeriesId id, Timestamp t, double value) {
  MutexLock lock(mu_);
  GS_REQUIRE(id < series_.size(), "append to unknown tsdb series");
  SeriesStore& store = series_[id];
  store.append(t, value);
  if (wal_) {
    wal_->append(WalRecord{id, t, std::bit_cast<std::uint64_t>(value)});
  }
  ++appends_;
  seal_if_full(store);
}

void Engine::seal_if_full(SeriesStore& store) {
  if (store.open_count() < opts_.chunk_capacity) return;
  if (opts_.strategy == Strategy::COMPRESSED ||
      opts_.strategy == Strategy::CACHE) {
    store.seal_spilled(opts_.dir);
  } else {
    store.seal_resident();
  }
}

PageLoader Engine::loader() {
  const std::filesystem::path dir = opts_.dir;
  if (opts_.strategy == Strategy::CACHE) {
    auto* cache = &cache_;
    return [dir, cache](const ChunkRef& ref) {
      return cache->get_or_create(
          ref.cache_key, [&] { return read_page_file(dir / ref.file); });
    };
  }
  auto* reads = &page_reads_;
  return [dir, reads](const ChunkRef& ref) {
    ++*reads;  // called inside collect(), under the engine mutex
    return std::make_shared<const SealedChunk>(read_page_file(dir / ref.file));
  };
}

Cursor Engine::query(std::string_view metric, std::uint32_t rack,
                     Timestamp lo, Timestamp hi,
                     std::optional<std::uint32_t> server) {
  std::vector<Cursor::Part> parts;
  MutexLock lock(mu_);
  const std::uint32_t metric_id = metrics_.find(metric);
  if (metric_id == NameDict::kNotFound) {
    return Cursor(std::move(parts), lo, hi);
  }
  // Rows come out grouped by server, so order the matching series by
  // (server_id, creation index) before collecting.
  std::vector<std::pair<std::uint64_t, std::size_t>> match;
  for (std::size_t i = 0; i < series_.size(); ++i) {
    const SeriesKey& key = series_[i].key();
    if (key.metric_id != metric_id || key.rack_id != rack) continue;
    if (server && key.server_id != *server) continue;
    match.emplace_back((std::uint64_t(key.server_id) << 32) | std::uint64_t(i),
                       i);
  }
  std::sort(match.begin(), match.end());
  const PageLoader load = loader();
  std::vector<std::shared_ptr<const SealedChunk>> chunks;
  for (const auto& m : match) {
    const std::size_t i = m.second;
    chunks.clear();
    series_[i].collect(lo, hi, load, chunks);
    for (auto& chunk : chunks) {
      parts.push_back(Cursor::Part{series_[i].key(), std::move(chunk)});
    }
  }
  return Cursor(std::move(parts), lo, hi);
}

void Engine::seal_all() {
  MutexLock lock(mu_);
  for (SeriesStore& store : series_) {
    if (store.open_count() == 0) continue;
    if (opts_.strategy == Strategy::COMPRESSED ||
        opts_.strategy == Strategy::CACHE) {
      store.seal_spilled(opts_.dir);
    } else {
      store.seal_resident();
    }
  }
}

void Engine::flush() {
  MutexLock lock(mu_);
  if (wal_) wal_->flush();
}

std::vector<SeriesInfo> Engine::list_series() const {
  MutexLock lock(mu_);
  std::vector<SeriesInfo> out;
  out.reserve(series_.size());
  for (const SeriesStore& store : series_) {
    SeriesInfo info;
    info.id = store.id();
    info.metric = metrics_.name(store.key().metric_id);
    info.rack = store.key().rack_id;
    info.server = store.key().server_id;
    info.samples = store.total_count();
    out.push_back(std::move(info));
  }
  return out;
}

EngineStats Engine::stats() const {
  MutexLock lock(mu_);
  EngineStats s;
  s.appends = appends_;
  s.series = series_.size();
  for (const SeriesStore& store : series_) {
    s.open_samples += store.open_count();
    for (const ChunkRef& ref : store.sealed()) {
      if (ref.spilled()) {
        ++s.spilled_chunks;
      } else {
        ++s.resident_chunks;
      }
    }
  }
  s.wal_records = replayed_records_ + (wal_ ? wal_->records() : 0);
  s.page_reads = page_reads_;
  const CacheStats cs = cache_.stats();
  s.cache_hits = cs.hits;
  s.cache_misses = cs.misses;
  return s;
}

void Engine::save_state(ckpt::StateWriter& w) const {
  MutexLock lock(mu_);
  w.begin_section("tsdb_engine", kStateVersion);
  w.u8(std::uint8_t(opts_.strategy));
  w.u64(opts_.chunk_capacity);
  metrics_.save_state(w);
  w.u64(series_.size());
  for (const SeriesStore& store : series_) store.save_state(w);
  w.u64(appends_);
  w.end_section();
}

void Engine::load_state(ckpt::StateReader& r) {
  MutexLock lock(mu_);
  r.begin_section("tsdb_engine", kStateVersion);
  const auto strategy_raw = r.u8();
  if (strategy_raw >= kNumStrategies) {
    throw TsdbError("engine snapshot holds unknown strategy code " +
                    std::to_string(strategy_raw));
  }
  const auto strategy = Strategy(strategy_raw);
  if (strategy != opts_.strategy) {
    throw TsdbError(std::string("engine snapshot was written under ") +
                    to_string(strategy) + ", this engine runs " +
                    to_string(opts_.strategy));
  }
  const std::uint64_t capacity = r.u64();
  if (capacity != opts_.chunk_capacity) {
    throw TsdbError("engine snapshot chunk capacity " +
                    std::to_string(capacity) + " does not match options " +
                    std::to_string(opts_.chunk_capacity));
  }
  metrics_.load_state(r);
  series_.clear();
  index_.clear();
  // catalog_ids_ deliberately survives: it mirrors the append-only catalog
  // file, which a snapshot restore cannot un-write. Series registered
  // after the snapshot re-register through it on replay without appending
  // duplicate lines.
  cache_.clear();  // cached pages may predate the restored manifest
  const auto n = std::size_t(r.u64());
  series_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SeriesStore store;
    store.load_state(r, opts_.dir);
    if (store.id() != i) {
      throw TsdbError("engine snapshot series table out of order at entry " +
                      std::to_string(i));
    }
    index_.emplace(store.key(), store.id());
    series_.push_back(std::move(store));
  }
  appends_ = r.u64();
  r.end_section();
}

}  // namespace gs::tsdb
