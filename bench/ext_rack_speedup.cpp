// Extension: whole-rack view of sprinting. The paper reports per-green-
// server speedups (4.8x for SPECjbb); this bench co-simulates all 10
// servers — 7 sprinting sub-optimally on the grid budget, 3 on the green
// bus — and reports the cluster-wide speedup and power picture that a
// capacity planner actually sees.
#include <iostream>

#include "common/table.hpp"
#include "power/solar_array.hpp"
#include "sim/rack_runner.hpp"
#include "trace/solar.hpp"

int main() {
  using namespace gs;
  std::cout << "Extension: cluster-wide speedup of the 10-server rack "
               "(SPECjbb, 3 green servers with 10 Ah, Hybrid)\n\n";
  TextTable t({"Availability", "Rack power (W)", "Grid servers (W)",
               "Green speedup", "Cluster speedup"});
  trace::SolarTraceConfig trace_cfg;
  const auto solar = trace::generate_solar_trace(trace_cfg);
  const power::SolarArray array({3, Watts(275.0), 0.77});
  for (auto avail : {trace::Availability::Min, trace::Availability::Med,
                     trace::Availability::Max}) {
    sim::RackConfig cfg;
    cfg.green.battery_per_server = AmpHours(10.0);
    sim::RackRunner rack(workload::specjbb(), cfg);
    const workload::PerfModel perf(workload::specjbb());
    const double lambda = perf.intensity_load(12);
    const auto window =
        trace::find_window(solar, Seconds(900.0), avail);
    const Seconds start = window.value_or(Seconds(0.0));
    // Warm the forecasts on the pre-window trace, then run 15 minutes.
    for (int i = 0; i < 30; ++i) {
      const Seconds ts(std::max(0.0, start.value() - (30 - i) * 60.0));
      rack.idle_step(array.ac_output(solar.at(ts)), 30.0);
    }
    sim::RackEpoch last;
    double cluster_goodput = 0.0, green_goodput = 0.0;
    constexpr int kEpochs = 15;
    for (int e = 0; e < kEpochs; ++e) {
      const Seconds ts = start + Seconds(60.0 * e);
      last = rack.step(array.ac_output(solar.at(ts)), lambda);
      cluster_goodput += last.cluster_goodput;
      green_goodput += last.green.total_goodput;
    }
    cluster_goodput /= kEpochs;
    green_goodput /= kEpochs;
    const double normal_green =
        3.0 * perf.goodput(server::normal_mode(), lambda);
    t.add_row({trace::to_string(avail),
               TextTable::num(last.rack_power.value(), 0),
               TextTable::num(last.grid_servers_power.value(), 0),
               TextTable::num(green_goodput / normal_green),
               TextTable::num(cluster_goodput /
                              rack.normal_cluster_goodput(lambda))});
  }
  t.render(std::cout);
  std::cout << "\nReading: the grid's ~143 W/server share lets the other "
               "7 servers sprint sub-optimally (12 cores at reduced "
               "frequency, ~4.3x), so the whole rack sustains ~4.2-4.5x "
               "while total draw tops the 1000 W budget only by what the "
               "green bus supplies — the paper's Fig. 1 emergencies, "
               "covered.\n";
  return 0;
}
