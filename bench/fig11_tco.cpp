// Figure 11: profit-on-investment of the additional renewable + battery +
// cooling provision as a function of yearly sprinting hours.
#include <iostream>

#include "common/table.hpp"
#include "tco/tco.hpp"

int main() {
  using namespace gs;
  std::cout << "Figure 11: POI with additional renewable energy, battery "
               "and cooling investment\n\n";
  const tco::TcoParams p;
  TextTable t({"Yearly sprint hours", "Benefit ($/KW/year)", ""});
  for (double h = 0.0; h <= 36.0; h += 4.0) {
    const double b = tco::benefit_per_kw_year(p, h);
    t.add_row({TextTable::num(h, 0), TextTable::num(b, 1),
               b > 0.0 ? "profitable" : ""});
  }
  t.render(std::cout);
  std::cout << "\nBreak-even at " << TextTable::num(tco::breakeven_hours(p), 1)
            << " sprint-hours/year (paper: cross-over around 14 h/yr).\n";
  std::cout << "Yearly cost of 1 KW green provision: $"
            << TextTable::num(tco::yearly_cost_per_kw(p), 1)
            << " (PV $4.74/W over 25 y + battery $50/KW/yr + PCM).\n";
  return 0;
}
