// Extension: open-loop vs closed-loop load under overload. The paper
// drives its workloads with Faban, a closed-loop harness; this bench shows
// why that matters: a saturated server under closed-loop load keeps
// serving at capacity with latency bounded by the client population, while
// the open-loop (Poisson) model queues without bound unless admission
// control sheds. The sprint decision looks the same either way — the
// *measured* overload latency does not.
#include <iostream>

#include "common/table.hpp"
#include "workload/des.hpp"
#include "workload/loadgen.hpp"
#include "workload/perf_model.hpp"

int main() {
  using namespace gs;
  using namespace gs::workload;
  const auto app = specjbb();
  const PerfModel perf(app);
  std::cout << "Extension: overload behaviour by load model "
               "(SPECjbb, Normal mode vs max sprint, 10-min window)\n\n";
  TextTable t({"Load model", "Setting", "Throughput", "Goodput",
               "p99 latency (s)"});
  const Seconds window(600.0);
  for (const auto& setting : {server::normal_mode(), server::max_sprint()}) {
    const double lambda = perf.intensity_load(12);
    // Open loop, unbounded queue.
    {
      Rng rng = Rng::stream(1, {std::uint64_t(setting.cores)});
      const auto r = simulate_epoch(rng, app, setting, lambda, window);
      t.add_row({"Open (Poisson)", server::to_string(setting),
                 TextTable::num(double(r.completed) / window.value(), 0),
                 TextTable::num(r.goodput_rate, 0),
                 TextTable::num(r.tail_latency.value(), 2)});
    }
    // Open loop with SLA-aware admission control.
    {
      Rng rng = Rng::stream(2, {std::uint64_t(setting.cores)});
      DesOptions o;
      o.admit_wait_limit_s = 0.35;
      const auto r = simulate_epoch(rng, app, setting, lambda, window, o);
      t.add_row({"Open + admission", server::to_string(setting),
                 TextTable::num(double(r.completed) / window.value(), 0),
                 TextTable::num(r.goodput_rate, 0),
                 TextTable::num(r.tail_latency.value(), 2)});
    }
    // Closed loop (Faban-style), population sized to the same offered rate.
    {
      Rng rng = Rng::stream(3, {std::uint64_t(setting.cores)});
      const ClosedLoopConfig cfg{int(lambda), Seconds(1.0)};
      const auto r = simulate_closed_loop(rng, app, setting, cfg, window);
      t.add_row({"Closed (Faban-like)", server::to_string(setting),
                 TextTable::num(r.throughput, 0),
                 TextTable::num(r.goodput_rate, 0),
                 TextTable::num(r.tail_latency.value(), 2)});
    }
  }
  t.render(std::cout);
  std::cout << "\nReading: all three agree once the sprint relieves the "
               "overload; they differ exactly where the paper's metric is "
               "defined (SLA-constrained throughput of a saturated Normal "
               "server), which is why the substrate's collapse constant is "
               "calibrated rather than derived (DESIGN.md).\n";
  return 0;
}
