// Ablation: sensitivity of the headline result to the goodput-collapse
// coefficient delta — the one free parameter of our workload substrate
// that is calibrated (not measured) against the paper's 4.8x gain. Shows
// how the max-availability speedup moves as delta varies around the
// calibrated value, so readers can judge the calibration's leverage.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace gs;
  std::cout << "Ablation: congestion-collapse coefficient delta "
               "(SPECjbb, RE-Batt, Hybrid, Max availability, 30 min)\n\n";
  const double calibrated = workload::specjbb().congestion_delta;
  TextTable t({"delta", "Max-avail speedup", "note"});
  for (double delta : {0.0, 0.1, 0.2, calibrated, 0.35, 0.5}) {
    auto sc = bench::scenario(workload::specjbb(), sim::re_batt(),
                              core::StrategyKind::Hybrid,
                              trace::Availability::Max, 30.0);
    sc.app.congestion_delta = delta;
    const double p = sim::normalized_performance(sc);
    t.add_row({TextTable::num(delta, 2), TextTable::num(p),
               delta == calibrated ? "<= calibrated (paper: 4.8x)" : ""});
  }
  t.render(std::cout);
  std::cout << "\nReading: delta = 0 reduces the gain to the pure "
               "SLA-capacity ratio (~3.2x); the paper's 4.8x implies a "
               "moderate timeout/retry collapse in the saturated Normal "
               "mode, not an extreme one.\n";
  return 0;
}
