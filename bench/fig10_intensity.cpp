// Figure 10: impact of workload burst intensity. (a) Hybrid with RE-SBatt
// at medium availability across Int={12,10,9,7} and all durations;
// (b) the four strategies at Int=9, minimum availability, 10-minute burst.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace gs;
  const auto app = workload::specjbb();

  std::cout << "Figure 10(a): burst intensity x duration "
               "(Hybrid, RE-SBatt, Medium availability)\n\n";
  const std::vector<int> intensities = {12, 10, 9, 7};
  const std::vector<double> durations = {10.0, 15.0, 30.0, 60.0};
  std::vector<sim::Scenario> cells;
  for (int intensity : intensities) {
    for (double minutes : durations) {
      cells.push_back(bench::scenario(app, sim::re_sbatt(),
                                      core::StrategyKind::Hybrid,
                                      trace::Availability::Med, minutes,
                                      intensity));
    }
  }
  const auto perf_a = sim::sweep_normalized_perf(cells);
  TextTable ta({"Intensity", "10min", "15min", "30min", "60min"});
  std::size_t i = 0;
  for (int intensity : intensities) {
    std::vector<std::string> row{"Int=" + std::to_string(intensity)};
    for (std::size_t d = 0; d < durations.size(); ++d) {
      row.push_back(TextTable::num(perf_a[i++]));
    }
    ta.add_row(std::move(row));
  }
  ta.render(std::cout);

  std::cout << "\nFigure 10(b): strategies at Int=9, Minimum availability, "
               "10-minute burst\n\n";
  std::vector<sim::Scenario> cells_b;
  for (auto k : core::sprinting_strategies()) {
    auto sc = bench::scenario(app, sim::re_sbatt(), k,
                              trace::Availability::Min, 10.0, 9);
    // Finer PMK control interval for the short-burst study: battery
    // exhaustion differences between strategies are sub-minute.
    sc.epoch = Seconds(30.0);
    cells_b.push_back(sc);
  }
  const auto perf_b = sim::sweep_normalized_perf(cells_b);
  TextTable tb({"Strategy", "Performance"});
  std::size_t j = 0;
  for (auto k : core::sprinting_strategies()) {
    tb.add_row({core::to_string(k), TextTable::num(perf_b[j++])});
  }
  tb.render(std::cout);
  std::cout << "\nShape check (paper): gains fall as intensity falls "
               "(3.6x -> 2.6x from Int=12 to Int=7); at Int=9/Min Greedy is "
               "worst because maximal sprinting wastes battery.\n";
  return 0;
}
