// Figure 4: power-source-selector operation across the T1..T4 phases —
// renewable-only sprinting with surplus charging, battery supplementing a
// fading renewable supply, battery-only sprinting, then grid recharge after
// the burst completes.
#include <iostream>

#include "common/table.hpp"
#include "power/pss.hpp"

int main() {
  using namespace gs;
  std::cout << "Figure 4: PSS under different power supply/demand "
               "scenarios (scripted epoch walk)\n\n";

  power::BatteryConfig bc;
  bc.capacity = AmpHours(10.0);
  power::Battery battery(bc);
  battery.discharge(Watts(40.0), Seconds(600.0));  // leave charge headroom
  power::Grid grid({Watts(200.0), 1.25, Seconds(300.0)});
  const power::PowerSourceSelector pss;
  const Seconds epoch(60.0);

  // Scripted supply: abundant -> fading -> gone -> (burst over).
  struct Step {
    double re;
    double demand;
    bool bursting;
  };
  std::vector<Step> script;
  for (int i = 0; i < 5; ++i) script.push_back({211.0, 155.0, true});  // T1
  for (int i = 0; i < 5; ++i)
    script.push_back({211.0 - 30.0 * (i + 1), 155.0, true});           // T2
  for (int i = 0; i < 5; ++i) script.push_back({0.0, 155.0, true});    // T3
  for (int i = 0; i < 5; ++i) script.push_back({0.0, 0.0, false});     // T4

  TextTable t({"Epoch", "RE(W)", "Demand(W)", "Case", "REused", "Batt",
               "Grid", "RE->Batt", "Grid->Batt", "SoC"});
  int i = 0;
  for (const auto& step : script) {
    const auto s = pss.settle(Watts(step.demand), Watts(step.re), battery,
                              grid, epoch, step.bursting);
    t.add_row({std::to_string(i++), TextTable::num(step.re, 0),
               TextTable::num(step.demand, 0), power::to_string(s.power_case),
               TextTable::num(s.re_used.value(), 0),
               TextTable::num(s.batt_used.value(), 0),
               TextTable::num(s.grid_used.value(), 0),
               TextTable::num(s.re_to_battery.value(), 0),
               TextTable::num(s.grid_to_battery.value(), 0),
               TextTable::num(battery.state_of_charge(), 3)});
  }
  t.render(std::cout);
  std::cout << "\nShape check: RenewableOnly (T1) -> RenewableBattery (T2) "
               "-> BatteryOnly (T3) -> grid recharging after the burst (T4)."
            << std::endl;
  return 0;
}
