// Figure 8: Web-Search with RE-SBatt, normalized to Normal.
#include "bench_util.hpp"

int main() {
  gs::bench::print_strategy_panels(
      "Figure 8: Web-Search, RE-SBatt, strategies x availability x duration",
      gs::workload::websearch(), gs::sim::re_sbatt());
  std::cout << "Shape check (paper): up to ~4.1x at Max; Parallel is "
               "competitive with (slightly better than) Pacing at Min "
               "because Web-Search throughput is frequency-bound.\n";
  return 0;
}
