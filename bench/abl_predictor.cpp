// Ablation: renewable-supply forecaster. The paper uses EWMA (Eq. 1) and
// notes solar prediction is easy in stable weather; this bench compares
// EWMA against the persistence baseline and a clear-sky-indexed EWMA on a
// week of synthetic supply for each weather mix.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "common/table.hpp"
#include "core/forecaster.hpp"
#include "power/solar_array.hpp"
#include "trace/solar.hpp"

int main() {
  using namespace gs;
  std::cout << "Ablation: renewable forecasters — mean |error| in W per "
               "60 s epoch, daylight hours only (3-panel array)\n\n";
  const power::SolarArray array({3, Watts(275.0), 0.77});
  TextTable t({"Forecaster", "seed42", "seed7", "seed1234", "mean"});
  for (auto kind :
       {core::ForecasterKind::Persistence, core::ForecasterKind::Ewma,
        core::ForecasterKind::ClearSky}) {
    std::vector<std::string> row{core::to_string(kind)};
    double total = 0.0;
    for (std::uint64_t seed : {42ull, 7ull, 1234ull}) {
      trace::SolarTraceConfig cfg;
      cfg.seed = seed;
      const auto tr = trace::generate_solar_trace(cfg);
      auto envelope = [cfg](Seconds ts) {
        return trace::clear_sky_envelope(
            std::fmod(ts.value() / 3600.0, 24.0), cfg);
      };
      auto f = core::make_forecaster(kind, envelope, array.peak_ac());
      double abs_err = 0.0;
      std::size_t n = 0;
      bool primed = false;
      for (Seconds ts(0.0); ts < tr.duration(); ts += Seconds(60.0)) {
        const Watts obs = array.ac_output(tr.at(ts));
        if (primed && envelope(ts) > 0.01) {
          abs_err += std::abs(f->predict(ts).value() - obs.value());
          ++n;
        }
        f->observe(obs, ts);
        primed = true;
      }
      const double mae = abs_err / double(n);
      row.push_back(TextTable::num(mae, 2));
      total += mae;
    }
    row.push_back(TextTable::num(total / 3.0, 2));
    t.add_row(std::move(row));
  }
  t.render(std::cout);
  std::cout << "\nReading: at one-minute horizons persistence is the "
               "classic near-unbeatable baseline; indexing out the diurnal "
               "ramp (ClearSky) recovers most of the EWMA's lag. The paper "
               "still prefers EWMA because its smoothing damps minute-scale "
               "cloud noise, which stabilizes the PMK's setting choices "
               "(alpha trades accuracy for stability, Section III-A).\n";
  return 0;
}
