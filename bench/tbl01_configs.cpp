// Table I: options for green provision.
#include <iostream>

#include "common/table.hpp"
#include "power/solar_array.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace gs;
  std::cout << "Table I: Options for green provision\n\n";
  TextTable t({"Configuration", "RE (green servers)", "Panels",
               "Max green power (W)", "Batt. (server level)"});
  for (const auto& cfg : sim::table1_configs()) {
    power::SolarArray array({cfg.panels, Watts(275.0), 0.77});
    t.add_row({cfg.name,
               std::to_string(cfg.green_servers) + " of 10 (" +
                   std::to_string(cfg.green_servers * 10) + "%)",
               std::to_string(cfg.panels),
               TextTable::num(array.peak_ac().value()),
               TextTable::num(cfg.battery.value(), 1) + "Ah"});
  }
  t.render(std::cout);
  std::cout << "\nPaper: RE-Batt 30%/10Ah, REOnly 30%/0, RE-SBatt 30%/3.2Ah,"
               " SRE-SBatt small-RE/3.2Ah (635.25W RE, 423.5W SRE).\n";
  return 0;
}
