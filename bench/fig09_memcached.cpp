// Figure 9: Memcached with RE-SBatt, normalized to Normal.
#include "bench_util.hpp"

int main() {
  gs::bench::print_strategy_panels(
      "Figure 9: Memcached, RE-SBatt, strategies x availability x duration",
      gs::workload::memcached(), gs::sim::re_sbatt());
  std::cout << "Shape check (paper): up to ~4.7x at Max; Pacing beats "
               "Parallel (parallelism-hungry, weak frequency sensitivity)."
            << std::endl;
  return 0;
}
