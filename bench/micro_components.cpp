// google-benchmark microbenchmarks of the hot components: the analytic
// queueing evaluation, battery stepping, Q-learning updates, the profile
// build, the DES epoch, and a full scenario run. These bound the cost of
// the control loop (the paper quotes <2 ms per Hybrid decision).
#include <benchmark/benchmark.h>

#include "core/hybrid.hpp"
#include "power/battery.hpp"
#include "sim/burst_runner.hpp"
#include "workload/des.hpp"
#include "workload/perf_model.hpp"

namespace {

using namespace gs;

void BM_ErlangQuantile(benchmark::State& state) {
  const auto app = workload::specjbb();
  const double mu = app.service_rate(Gigahertz(2.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        workload::latency_quantile(12, mu, 0.9 * 12.0 * mu, 0.99));
  }
}
BENCHMARK(BM_ErlangQuantile);

void BM_SlaCapacity(benchmark::State& state) {
  const auto app = workload::specjbb();
  const double mu = app.service_rate(Gigahertz(2.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        workload::sla_capacity(12, mu, 0.99, Seconds(0.5)));
  }
}
BENCHMARK(BM_SlaCapacity);

void BM_BatteryStep(benchmark::State& state) {
  power::BatteryConfig cfg;
  cfg.capacity = AmpHours(10.0);
  power::Battery battery(cfg);
  for (auto _ : state) {
    const Watts p = battery.max_discharge_power(Seconds(60.0));
    if (p.value() > 10.0) {
      battery.discharge(Watts(10.0), Seconds(60.0));
    } else {
      battery.reset_full();
    }
    benchmark::DoNotOptimize(battery.state_of_charge());
  }
}
BENCHMARK(BM_BatteryStep);

void BM_ProfileTableBuild(benchmark::State& state) {
  const workload::PerfModel perf{workload::specjbb()};
  const server::ServerPowerModel power{Watts(76.0)};
  for (auto _ : state) {
    core::ProfileTable table(perf, power);
    benchmark::DoNotOptimize(table.power(0, 0));
  }
}
BENCHMARK(BM_ProfileTableBuild);

void BM_HybridDecide(benchmark::State& state) {
  // The paper: "Hybrid has a simple algorithm ... runtime overhead is
  // negligible (<2ms)". One decision = masked argmax over 63 actions.
  const auto app = workload::specjbb();
  const workload::PerfModel perf{app};
  const server::ServerPowerModel power{Watts(76.0)};
  const core::ProfileTable table(perf, power);
  core::HybridStrategy hybrid(table, app, power.idle_power());
  hybrid.seed_from_profile();
  const core::EpochContext ctx{perf.intensity_load(12), Watts(160.0),
                               Seconds(60.0)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(hybrid.decide(ctx));
  }
}
BENCHMARK(BM_HybridDecide);

void BM_QTableUpdate(benchmark::State& state) {
  core::QTable q(252, 63);
  const core::QLearningConfig cfg;
  std::size_t s = 0;
  for (auto _ : state) {
    q.update(s % 252, s % 63, 1.5, (s + 1) % 252, cfg);
    ++s;
  }
}
BENCHMARK(BM_QTableUpdate);

void BM_DesEpoch(benchmark::State& state) {
  const auto app = workload::specjbb();
  const workload::PerfModel perf{app};
  Rng rng(42);
  const double lambda = perf.intensity_load(12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::simulate_epoch(
        rng, app, server::max_sprint(), lambda, Seconds(60.0)));
  }
}
BENCHMARK(BM_DesEpoch);

void BM_FullScenario(benchmark::State& state) {
  sim::Scenario sc;
  sc.app = workload::specjbb();
  sc.green = sim::re_batt();
  sc.strategy = core::StrategyKind::Hybrid;
  sc.availability = trace::Availability::Med;
  sc.burst_duration = Seconds(900.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_burst(sc));
  }
}
BENCHMARK(BM_FullScenario);

}  // namespace

BENCHMARK_MAIN();
