// Extension: carbon accounting of the green provision. The paper motivates
// renewables with the data center's carbon footprint; this bench runs the
// standard burst day and compares the emissions of the GreenSprint rack
// against the counterfactual of serving every sprint from the grid
// (overloaded breakers / diesel aside).
#include <iostream>

#include "common/table.hpp"
#include "sim/day_runner.hpp"
#include "tco/carbon.hpp"

int main() {
  using namespace gs;
  std::cout << "Extension: burst-serving carbon footprint (SPECjbb, 3 green"
               " servers, 10 Ah, Hybrid, 3-burst day)\n\n";
  sim::DayRunConfig cfg;
  cfg.days = 1;
  cfg.daily_bursts = sim::default_daily_bursts();
  cfg.cluster.battery_per_server = AmpHours(10.0);
  const auto r = sim::run_days(cfg);

  const tco::CarbonParams p;
  // Batteries on this day charge mostly from surplus solar; attribute a
  // conservative half-grid mix.
  const double green_g = tco::co2_grams(p, r.grid_energy, r.re_energy,
                                        r.batt_energy, 0.5);
  const Joules total = r.grid_energy + r.re_energy + r.batt_energy;
  const double all_grid_g =
      tco::co2_grams(p, total, Joules(0.0), Joules(0.0));

  TextTable t({"Scenario", "Burst energy (Wh)", "gCO2e/day", "kg CO2e/yr"});
  t.add_row({"GreenSprint (solar+battery)",
             TextTable::num(to_watt_hours(total).value(), 0),
             TextTable::num(green_g, 0),
             TextTable::num(tco::yearly_kg(green_g), 1)});
  t.add_row({"All-grid counterfactual",
             TextTable::num(to_watt_hours(total).value(), 0),
             TextTable::num(all_grid_g, 0),
             TextTable::num(tco::yearly_kg(all_grid_g), 1)});
  t.render(std::cout);
  std::cout << "\nPer green server, sprinting on the green bus avoids ~"
            << TextTable::num(
                   tco::yearly_kg(all_grid_g - green_g) / 3.0, 1)
            << " kg CO2e per year of burst service (grid at "
            << TextTable::num(p.grid_g_per_kwh, 0) << " g/kWh vs solar "
            << TextTable::num(p.solar_g_per_kwh, 0) << ").\n";
  return 0;
}
