// Shared helpers for the figure benches: run the (strategy x availability)
// grid for one application/configuration and print the paper's per-duration
// panels.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "sim/sweep.hpp"

namespace gs::bench {

inline sim::Scenario scenario(workload::AppDescriptor app,
                              sim::GreenConfig cfg, core::StrategyKind k,
                              trace::Availability a, double minutes,
                              int intensity = 12) {
  sim::Scenario sc;
  sc.app = std::move(app);
  sc.green = std::move(cfg);
  sc.strategy = k;
  sc.availability = a;
  sc.burst_duration = Seconds(minutes * 60.0);
  sc.burst_intensity = intensity;
  return sc;
}

/// Fig. 6/8/9 panel: for each burst duration, a table of rows Min/Med/Max
/// with one column per strategy, values normalized to Normal.
inline void print_strategy_panels(const std::string& title,
                                  const workload::AppDescriptor& app,
                                  const sim::GreenConfig& cfg) {
  std::cout << title << "\n";
  std::cout << "(normalized performance vs Normal mode; config " << cfg.name
            << ")\n\n";
  const auto strategies = core::sprinting_strategies();
  const std::vector<trace::Availability> avails = {
      trace::Availability::Min, trace::Availability::Med,
      trace::Availability::Max};
  for (double minutes : {10.0, 15.0, 30.0, 60.0}) {
    // Build the cell grid and run it in parallel.
    std::vector<sim::Scenario> cells;
    for (auto a : avails) {
      for (auto k : strategies) {
        cells.push_back(scenario(app, cfg, k, a, minutes));
      }
    }
    const auto perf = sim::sweep_normalized_perf(cells);
    TextTable t({"Avail", "Greedy", "Parallel", "Pacing", "Hybrid"});
    std::size_t i = 0;
    for (auto a : avails) {
      std::vector<std::string> row{trace::to_string(a)};
      for (std::size_t s = 0; s < strategies.size(); ++s) {
        row.push_back(TextTable::num(perf[i++]));
      }
      t.add_row(std::move(row));
    }
    std::cout << "--- " << int(minutes) << " min burst ---\n";
    t.render(std::cout);
    std::cout << "\n";
  }
}

}  // namespace gs::bench
