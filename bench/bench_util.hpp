// Shared helpers for the figure benches: run the (strategy x availability)
// grid for one application/configuration and print the paper's per-duration
// panels, plus wall-clock instrumentation for the perf benches.
#pragma once

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/table.hpp"
#include "sim/sweep.hpp"

namespace gs::bench {

/// True when GS_BENCH_SMOKE is set (non-empty, not "0"). The bench-smoke CI
/// lane exports it so every bench binary shrinks its grid/replica counts to
/// a single representative pass; output shape and determinism are unchanged.
inline bool smoke() {
  static const bool v = [] {
    const char* e = std::getenv("GS_BENCH_SMOKE");
    return e != nullptr && *e != '\0' && std::string_view(e) != "0";
  }();
  return v;
}

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void restart() { start_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// One timed run_sweep execution.
struct SweepTiming {
  std::size_t cells = 0;
  double seconds = 0.0;
  double cells_per_sec = 0.0;
  std::uint64_t fingerprint = 0;  ///< sweep_fingerprint of the results.
};

/// Time one sweep over the grid and digest its results.
inline SweepTiming time_sweep(const std::vector<sim::Scenario>& grid,
                              std::size_t threads = 0) {
  WallTimer timer;
  const auto results = sim::run_sweep(grid, threads);
  SweepTiming t;
  t.cells = grid.size();
  t.seconds = timer.elapsed_s();
  t.cells_per_sec = t.seconds > 0.0 ? double(t.cells) / t.seconds : 0.0;
  t.fingerprint = sim::sweep_fingerprint(results);
  return t;
}

/// Minimal order-preserving JSON object writer for BENCH_*.json artifacts
/// (numbers, strings, booleans; no nesting needed by the perf benches).
class JsonWriter {
 public:
  void add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    raw_entries_.push_back("\"" + key + "\": " + buf);
  }
  void add(const std::string& key, std::uint64_t value) {
    raw_entries_.push_back("\"" + key + "\": " + std::to_string(value));
  }
  void add(const std::string& key, const std::string& value) {
    raw_entries_.push_back("\"" + key + "\": \"" + value + "\"");
  }
  void add(const std::string& key, bool value) {
    raw_entries_.push_back(std::string("\"") + key +
                           "\": " + (value ? "true" : "false"));
  }

  [[nodiscard]] std::string str() const {
    std::string out = "{\n";
    for (std::size_t i = 0; i < raw_entries_.size(); ++i) {
      out += "  " + raw_entries_[i];
      if (i + 1 < raw_entries_.size()) out += ",";
      out += "\n";
    }
    out += "}\n";
    return out;
  }

  bool write(const std::string& path) const {
    std::ofstream os(path);
    if (!os) return false;
    os << str();
    return bool(os);
  }

 private:
  std::vector<std::string> raw_entries_;
};

/// Shared checkpoint/resume CLI for the long-campaign benches:
///
///   --checkpoint-dir DIR   enable checkpointing into DIR
///   --checkpoint-every N   persist every Nth completed cell (default 1)
///   --resume               load completed cells from DIR before running
///
/// Wire it into an argv loop with parse(), then call run() instead of
/// sim::run_sweep — without --checkpoint-dir it is a plain run_sweep, so
/// benches keep their exact unflagged behavior.
struct CheckpointCli {
  sim::SweepCheckpointOptions options;

  [[nodiscard]] bool enabled() const { return !options.dir.empty(); }

  /// Consume argv[i] (and its value argument, if any) when it is one of
  /// the checkpoint flags; returns false to let the bench handle it.
  bool parse(int argc, char** argv, int& i) {
    const std::string_view a = argv[i];
    if (a == "--checkpoint-dir" && i + 1 < argc) {
      options.dir = argv[++i];
      return true;
    }
    if (a == "--checkpoint-every" && i + 1 < argc) {
      options.every = std::strtoull(argv[++i], nullptr, 10);
      if (options.every == 0) options.every = 1;
      return true;
    }
    if (a == "--resume") {
      options.resume = true;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::vector<sim::BurstResult> run(
      const std::vector<sim::Scenario>& cells, std::size_t threads = 0,
      sim::SweepCheckpointStats* stats = nullptr) const {
    if (!enabled()) {
      if (stats != nullptr) {
        stats->cells_total = cells.size();
        stats->cells_resumed = 0;
        stats->cells_run = cells.size();
      }
      return sim::run_sweep(cells, threads);
    }
    return sim::run_sweep_checkpointed(cells, options, threads, stats);
  }
};

inline sim::Scenario scenario(workload::AppDescriptor app,
                              sim::GreenConfig cfg, core::StrategyKind k,
                              trace::Availability a, double minutes,
                              int intensity = 12) {
  sim::Scenario sc;
  sc.app = std::move(app);
  sc.green = std::move(cfg);
  sc.strategy = k;
  sc.availability = a;
  sc.burst_duration = Seconds(minutes * 60.0);
  sc.burst_intensity = intensity;
  return sc;
}

/// Fig. 6/8/9 panel: for each burst duration, a table of rows Min/Med/Max
/// with one column per strategy, values normalized to Normal.
inline void print_strategy_panels(const std::string& title,
                                  const workload::AppDescriptor& app,
                                  const sim::GreenConfig& cfg) {
  std::cout << title << "\n";
  std::cout << "(normalized performance vs Normal mode; config " << cfg.name
            << ")\n\n";
  const auto strategies = core::sprinting_strategies();
  const std::vector<trace::Availability> avails = {
      trace::Availability::Min, trace::Availability::Med,
      trace::Availability::Max};
  const std::vector<double> durations =
      smoke() ? std::vector<double>{10.0}
              : std::vector<double>{10.0, 15.0, 30.0, 60.0};
  for (double minutes : durations) {
    // Build the cell grid and run it in parallel.
    std::vector<sim::Scenario> cells;
    for (auto a : avails) {
      for (auto k : strategies) {
        cells.push_back(scenario(app, cfg, k, a, minutes));
      }
    }
    const auto perf = sim::sweep_normalized_perf(cells);
    TextTable t({"Avail", "Greedy", "Parallel", "Pacing", "Hybrid"});
    std::size_t i = 0;
    for (auto a : avails) {
      std::vector<std::string> row{trace::to_string(a)};
      for (std::size_t s = 0; s < strategies.size(); ++s) {
        row.push_back(TextTable::num(perf[i++]));
      }
      t.add_row(std::move(row));
    }
    std::cout << "--- " << int(minutes) << " min burst ---\n";
    t.render(std::cout);
    std::cout << "\n";
  }
}

}  // namespace gs::bench
