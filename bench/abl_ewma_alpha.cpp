// Ablation: the EWMA smoothing factor for renewable-supply prediction
// (paper Section III-A: "When alpha varies, we find alpha=0.3 to be the
// most consistent"). Sweeps alpha over weekly traces of each weather mix
// and reports mean absolute prediction error per epoch.
#include <cmath>
#include <cstdint>
#include <iostream>

#include "common/ewma.hpp"
#include "common/table.hpp"
#include "power/solar_array.hpp"
#include "trace/solar.hpp"

int main() {
  using namespace gs;
  std::cout << "Ablation: EWMA alpha for renewable prediction "
               "(mean |error| in W per 60 s epoch, 3-panel array)\n\n";
  const power::SolarArray array({3, Watts(275.0), 0.77});
  TextTable t({"alpha", "seed42", "seed7", "seed1234", "mean"});
  for (double alpha : {0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9}) {
    std::vector<std::string> row{TextTable::num(alpha, 1)};
    double total = 0.0;
    for (std::uint64_t seed : {42ull, 7ull, 1234ull}) {
      trace::SolarTraceConfig cfg;
      cfg.seed = seed;
      const auto tr = trace::generate_solar_trace(cfg);
      Ewma ewma(alpha);
      double abs_err = 0.0;
      std::size_t n = 0;
      for (Seconds ts(0.0); ts < tr.duration(); ts += Seconds(60.0)) {
        const double obs = array.ac_output(tr.at(ts)).value();
        if (ewma.primed()) {
          abs_err += std::abs(ewma.prediction() - obs);
          ++n;
        }
        ewma.observe(obs);
      }
      const double mae = abs_err / double(n);
      row.push_back(TextTable::num(mae, 2));
      total += mae;
    }
    row.push_back(TextTable::num(total / 3.0, 2));
    t.add_row(std::move(row));
  }
  t.render(std::cout);
  std::cout << "\nShape check: low-alpha (observation-weighted) predictors "
               "track the supply best; the paper's alpha=0.3 sits in the "
               "flat low-error region.\n";
  return 0;
}
