// Ablation: temporal burst shape. The paper injects plateau bursts; real
// spikes ramp and oscillate, which exercises the load predictor (EWMA lag)
// and the PMK's reaction. Compares the strategies across shapes at medium
// availability, where adaptivity matters most.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace gs;
  std::cout << "Ablation: burst shape x strategy "
               "(SPECjbb, RE-SBatt, Medium availability, 30-min bursts, "
               "normalized to Normal under the same shaped load)\n\n";
  TextTable t({"Shape", "Greedy", "Parallel", "Pacing", "Hybrid"});
  for (auto shape : {trace::BurstShape::Plateau, trace::BurstShape::Ramp,
                     trace::BurstShape::Spike, trace::BurstShape::Wave}) {
    std::vector<sim::Scenario> cells;
    for (auto k : core::sprinting_strategies()) {
      auto sc = bench::scenario(workload::specjbb(), sim::re_sbatt(), k,
                                trace::Availability::Med, 30.0);
      sc.burst_shape = shape;
      cells.push_back(sc);
    }
    const auto perf = sim::sweep_normalized_perf(cells);
    std::vector<std::string> row{trace::to_string(shape)};
    for (double p : perf) row.push_back(TextTable::num(p));
    t.add_row(std::move(row));
  }
  t.render(std::cout);
  std::cout << "\nReading: shapes with partial-load phases (Ramp/Spike) "
               "reward the scaling strategies, which match intensity to "
               "the instantaneous load, while Greedy pays full sprint "
               "power for shoulder-load service.\n";
  return 0;
}
